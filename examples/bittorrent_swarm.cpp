// BitTorrent scenario: a post-flash-crowd swarm with realistic 2002-era
// bandwidths. Shows protocol-level stratification (who exchanges with
// whom under Tit-for-Tat) and compares per-peer download rates against
// the matching model's Figure 11 efficiency predictions.
//
//   ./bittorrent_swarm [--peers N] [--rounds R] [--seed S]
#include <iostream>

#include "bittorrent/bandwidth.hpp"
#include "bittorrent/efficiency.hpp"
#include "bittorrent/swarm.hpp"
#include "sim/cli.hpp"
#include "sim/table.hpp"

int main(int argc, char** argv) {
  using namespace strat;
  const sim::Cli cli(argc, argv, {"peers", "rounds", "seed"});
  const auto peers = static_cast<std::size_t>(cli.get_int("peers", 120));
  const auto rounds = static_cast<std::size_t>(cli.get_int("rounds", 60));
  graph::Rng rng(static_cast<std::uint64_t>(cli.get_int("seed", 11)));

  // Upstream capacities drawn from the Saroiu-style distribution the
  // paper feeds its model with (Figure 10).
  const bt::BandwidthModel bandwidth = bt::BandwidthModel::saroiu2002();
  const std::vector<double> upload = bandwidth.representative_sample(peers);

  bt::SwarmConfig cfg;
  cfg.num_peers = peers;
  cfg.seeds = 1;
  cfg.num_pieces = 2048;      // a payload large enough to keep leeching
  cfg.piece_kb = 1024.0;
  cfg.neighbor_degree = 30.0; // tracker hands out ~30 neighbors
  cfg.initial_completion = 0.5;

  bt::Swarm swarm(cfg, upload, rng);
  std::cout << "running " << peers << "-leecher swarm for " << rounds
            << " choke intervals (10 s each)...\n";
  swarm.run(rounds / 2);
  swarm.reset_stratification();  // drop the bootstrap noise
  swarm.run(rounds - rounds / 2);

  const bt::StratificationReport report = swarm.stratification();
  std::cout << "\nTFT stratification (steady-state window):\n"
            << "  reciprocated TFT pairs:        " << report.reciprocated_pairs << "\n"
            << "  partner-rank correlation:      " << sim::fmt(report.partner_rank_correlation, 3)
            << " (1 = perfect stratification)\n"
            << "  mean normalized rank offset:   " << sim::fmt(report.mean_normalized_offset, 3)
            << " (random pairing ~ 0.333)\n";

  // Compare measured download rates with the analytic expectation.
  bt::EfficiencyOptions eff_opt;
  eff_opt.n = peers;
  eff_opt.mean_acceptable = cfg.neighbor_degree;
  const auto curve = bt::expected_efficiency_curve(bandwidth, eff_opt);

  sim::Table table({"bandwidth decile", "upload kbps (mean)", "download kbps (swarm)",
                    "model expected download"});
  const std::size_t decile = peers / 10;
  for (std::size_t d = 0; d < 10; ++d) {
    double up = 0.0;
    double down = 0.0;
    double expect = 0.0;
    for (std::size_t i = d * decile; i < (d + 1) * decile; ++i) {
      up += upload[i];
      down += swarm.leech_download_kbps(static_cast<core::PeerId>(i));
      // Model counts TFT receipts only; the swarm adds optimistic gifts.
      expect += curve[i].expected_download;
    }
    const auto dd = static_cast<double>(decile);
    table.add_row({std::to_string(d + 1), sim::fmt(up / dd, 0), sim::fmt(down / dd, 0),
                   sim::fmt(expect / dd, 0)});
  }
  std::cout << "\n" << table.render();
  std::cout << "\n(decile 1 = fastest peers; the shared shape — download rate tracking\n"
               " upload rank — is the paper's stratification story at protocol level)\n";
  return 0;
}
