// Strategy optimizer: "I have U kbps of upstream — how many TFT slots
// should my client run?" Reproduces §6's rational-peer analysis: fewer
// slots mean a higher per-slot rate and better partners, pulling
// rational peers toward one slot, while the swarm needs b0 >= 3 for a
// connected collaboration graph.
//
//   ./slot_strategy [--upload KBPS] [--n N] [--realizations R]
#include <iostream>

#include "bittorrent/efficiency.hpp"
#include "core/metrics.hpp"
#include "core/solver.hpp"
#include "sim/cli.hpp"
#include "sim/table.hpp"

int main(int argc, char** argv) {
  using namespace strat;
  const sim::Cli cli(argc, argv, {"upload", "n", "realizations", "seed"});
  bt::SlotStrategyOptions opt;
  opt.deviator_upload_kbps = cli.get_double("upload", 640.0);
  opt.n = static_cast<std::size_t>(cli.get_int("n", 400));
  opt.realizations = static_cast<std::size_t>(cli.get_int("realizations", 60));
  opt.max_tft_slots = 8;
  graph::Rng rng(static_cast<std::uint64_t>(cli.get_int("seed", 31)));

  std::cout << "peer with " << opt.deviator_upload_kbps << " kbps upstream among " << opt.n - 1
            << " obedient peers (3 TFT + 1 optimistic each)\n\n";

  const bt::BandwidthModel model = bt::BandwidthModel::saroiu2002();
  const auto sweep = bt::slot_strategy_sweep(model, opt, rng);

  sim::Table table({"TFT slots", "kbps per slot", "mean TFT mates", "expected download (kbps)",
                    "share ratio D/U"});
  std::size_t best = 0;
  for (std::size_t k = 0; k < sweep.size(); ++k) {
    const auto& pt = sweep[k];
    table.add_row({std::to_string(pt.tft_slots), sim::fmt(pt.per_slot_kbps, 1),
                   sim::fmt(pt.mean_mates, 2), sim::fmt(pt.mean_download, 0),
                   sim::fmt(pt.efficiency, 3)});
    if (pt.efficiency > sweep[best].efficiency) best = k;
  }
  std::cout << table.render();
  std::cout << "\nselfish optimum: " << sweep[best].tft_slots
            << " TFT slot(s) — the §6 Nash drift toward one slot.\n";

  std::cout << "\nwhy the default stays at 4 (3 TFT + 1 optimistic):\n";
  for (std::uint32_t b = 1; b <= 4; ++b) {
    const core::Matching m =
        core::stable_configuration_complete(std::vector<std::uint32_t>(16, b));
    std::cout << "  everyone at b0 = " << b << ": collaboration graph has "
              << core::cluster_stats(m).components << " components\n";
  }
  std::cout << "(if every rational peer dropped to 1 slot, the exchange graph would\n"
               " shatter into pairs; obedient defaults keep the swarm connected)\n";
  return 0;
}
