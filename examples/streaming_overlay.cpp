// Streaming scenario (§7): a P2P live-streaming overlay needs both
// incentives (TFT-style rank matching keeps peers contributing) and a
// small diameter (play-out delay grows with hop count). Pure
// stratified matching produces a long chain of bandwidth strata; this
// example builds the hybrid overlay the paper proposes — rank slots
// plus one latency-matched slot — and reports the delay improvement.
//
//   ./streaming_overlay [--n N] [--d D] [--seed S]
#include <iostream>

#include "core/hybrid.hpp"
#include "core/metrics.hpp"
#include "core/solver.hpp"
#include "graph/components.hpp"
#include "graph/erdos_renyi.hpp"
#include "sim/cli.hpp"
#include "sim/table.hpp"

int main(int argc, char** argv) {
  using namespace strat;
  const sim::Cli cli(argc, argv, {"n", "d", "seed"});
  const auto n = static_cast<std::size_t>(cli.get_int("n", 500));
  const double d = cli.get_double("d", 30.0);
  graph::Rng rng(static_cast<std::uint64_t>(cli.get_int("seed", 41)));

  std::cout << "live-streaming overlay: " << n << " peers, ~" << d
            << " known contacts each, ranked by upload capacity\n\n";

  const core::GlobalRanking ranking = core::GlobalRanking::identity(n);
  const graph::Graph contacts = graph::erdos_renyi_gnd(n, d, rng);
  // Network coordinates: position on a latency ring.
  std::vector<double> coords(n);
  for (auto& c : coords) c = rng.uniform();

  // Pure TFT-style overlay: 4 rank-matched slots.
  const core::ExplicitAcceptance acc(contacts, ranking);
  const core::Matching pure =
      core::stable_configuration(acc, ranking, std::vector<std::uint32_t>(n, 4));
  const auto pure_graph = core::collaboration_graph(pure);

  // Hybrid: 3 rank slots + 1 latency slot (same total degree budget).
  core::HybridConfig cfg;
  cfg.rank_slots = 3;
  cfg.proximity_slots = 1;
  const core::HybridOverlay hybrid = core::build_hybrid_overlay(contacts, ranking, coords, cfg);

  sim::Table table({"overlay", "diameter (hops)", "components", "incentive width (MMO)"});
  table.add_row({"pure rank x4", std::to_string(core::largest_component_diameter(pure_graph)),
                 std::to_string(graph::connected_components(pure_graph).count()),
                 sim::fmt(core::mean_max_offset(pure, ranking), 1)});
  table.add_row({"hybrid 3+1",
                 std::to_string(core::largest_component_diameter(hybrid.combined)),
                 std::to_string(graph::connected_components(hybrid.combined).count()),
                 sim::fmt(core::mean_max_offset(hybrid.rank_matching, ranking), 1)});
  std::cout << table.render();

  std::cout << "\nplay-out delay interpretation: each hop adds one forwarding delay, so\n"
               "the diameter bounds the worst-case lag behind the source. The hybrid\n"
               "overlay spends one slot on a latency-close partner and cuts the\n"
               "diameter while the rank-matched slots keep the contribution incentive\n"
               "(stratification width barely moves).\n";
  return 0;
}
