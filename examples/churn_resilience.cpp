// Churn scenario: a collaborative overlay (e.g. cooperative backup or
// streaming) under peer arrivals and departures. Demonstrates §3's
// finding that the stable configuration acts as an attractor — disorder
// stays proportional to the churn rate instead of accumulating — and
// what happens during a churn storm.
//
//   ./churn_resilience [--n N] [--d D] [--seed S]
#include <iostream>

#include "core/churn.hpp"
#include "sim/cli.hpp"
#include "sim/table.hpp"

int main(int argc, char** argv) {
  using namespace strat;
  const sim::Cli cli(argc, argv, {"n", "d", "seed"});
  const auto n = static_cast<std::size_t>(cli.get_int("n", 600));
  const double d = cli.get_double("d", 12.0);
  graph::Rng rng(static_cast<std::uint64_t>(cli.get_int("seed", 21)));

  std::cout << "collaborative overlay with " << n << " peers, ~" << d
            << " acceptable partners each, 2 collaboration slots per peer\n\n";

  core::ChurnParams params;
  params.initial_peers = n;
  params.expected_degree = d;
  params.capacity = 2;
  params.churn_rate = 0.005;  // calm weather: 5 events per 1000 initiatives
  core::ChurnSimulator sim_(params, rng);

  // Phase 1: bootstrap from the empty configuration under light churn.
  std::cout << "phase 1: bootstrap under light churn (rate 5/1000)\n";
  sim::Table t1({"initiatives/peer", "disorder vs instant stable"});
  for (const auto& pt : sim_.run(6.0, 1)) {
    t1.add_row({sim::fmt(pt.initiatives_per_peer, 1), sim::fmt(pt.disorder, 4)});
  }
  std::cout << t1.render() << "\n";

  // Phase 2: steady state — the attractor keeps disorder bounded.
  std::cout << "phase 2: steady state (10 more units at the same rate)\n";
  double plateau = 0.0;
  const auto steady = sim_.run(10.0, 1);
  for (const auto& pt : steady) plateau += pt.disorder;
  std::cout << "  mean disorder: " << sim::fmt(plateau / static_cast<double>(steady.size()), 4)
            << "  (arrivals so far: " << sim_.arrivals()
            << ", departures: " << sim_.departures() << ")\n\n";

  std::cout << "phase 3: churn storm — compare plateaus across rates\n";
  sim::Table t3({"churn rate (events/1000 initiatives)", "plateau disorder"});
  for (const double rate : {0.001, 0.01, 0.05, 0.15}) {
    graph::Rng storm_rng(static_cast<std::uint64_t>(cli.get_int("seed", 21)) + 100);
    core::ChurnParams storm = params;
    storm.churn_rate = rate;
    core::ChurnSimulator storm_sim(storm, storm_rng);
    storm_sim.run(8.0, 1);  // burn-in
    const auto traj = storm_sim.run(8.0, 2);
    double mean = 0.0;
    for (const auto& pt : traj) mean += pt.disorder;
    t3.add_row({sim::fmt(rate * 1000.0, 1),
                sim::fmt(mean / static_cast<double>(traj.size()), 4)});
  }
  std::cout << t3.render();
  std::cout << "\n(the plateau scales roughly linearly with the churn rate — §3's\n"
               " \"disorder kept under control\": the overlay never drifts far from\n"
               " the instant stable configuration)\n";
  return 0;
}
