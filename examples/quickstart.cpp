// Quickstart: the library in ~60 lines.
//
// Build a random acceptance graph over ranked peers, compute the unique
// stable b-matching (Algorithm 1), run decentralized best-mate dynamics
// to the same fixed point, and measure stratification.
//
//   ./quickstart
#include <iostream>

#include "core/dynamics.hpp"
#include "core/metrics.hpp"
#include "core/solver.hpp"
#include "graph/erdos_renyi.hpp"

int main() {
  using namespace strat;

  // 1. A population of 200 peers. Peer 0 is the best (identity ranking:
  //    think "sorted by upload bandwidth").
  const std::size_t n = 200;
  const core::GlobalRanking ranking = core::GlobalRanking::identity(n);

  // 2. Who can collaborate with whom: an Erdős–Rényi acceptance graph
  //    with 12 acceptable partners per peer on average.
  graph::Rng rng(/*seed=*/7);
  const graph::Graph overlay = graph::erdos_renyi_gnd(n, 12.0, rng);
  const core::ExplicitAcceptance acceptance(overlay, ranking);

  // 3. Every peer runs b = 3 collaboration slots. The instance has
  //    exactly one stable configuration; Algorithm 1 computes it.
  const core::Matching stable =
      core::stable_configuration(acceptance, ranking, std::vector<std::uint32_t>(n, 3));
  std::cout << "stable configuration: " << stable.connection_count() << " collaborations, "
            << core::cluster_stats(stable).components << " clusters\n";

  // 4. Decentralized convergence: peers wake up at random and take
  //    best-mate initiatives. Theorem 1 says this reaches the same
  //    stable state; the engine measures the disorder on the way.
  core::DynamicsEngine engine(acceptance, ranking, std::vector<std::uint32_t>(n, 3),
                              core::Strategy::kBestMate, rng);
  const double units = engine.run_until_stable(/*max_units=*/100.0);
  std::cout << "decentralized dynamics converged after " << units
            << " initiatives per peer (disorder " << engine.disorder() << ")\n";

  // 5. Stratification: peers collaborate with peers of similar rank.
  std::cout << "mean |rank offset| between mates: "
            << core::mean_abs_offset(engine.current(), ranking) << " (out of " << n
            << " ranks)\n";
  std::cout << "mean max offset (MMO): " << core::mean_max_offset(engine.current(), ranking)
            << "\n";

  // 6. The best peer's mates are the next-best peers it can reach.
  std::cout << "best peer collaborates with:";
  for (core::PeerId mate : engine.current().mates(0)) std::cout << " " << mate;
  std::cout << "\n";
  return 0;
}
