// Fixture: seeded R3 violations — every banned randomness / wall-clock
// source the rule knows about.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

namespace fixture {

unsigned hidden_seed() {
  std::random_device rd;  // VIOLATION: nondeterministic seed source
  return rd();
}

void seed_globals() {
  std::srand(42);  // VIOLATION: hidden global generator state
}

int global_draw() {
  return std::rand();  // VIOLATION: hidden global generator state
}

long wall_seed() {
  return time(nullptr);  // VIOLATION: wall-clock seeding
}

long long wall_now() {
  return std::chrono::system_clock::now().time_since_epoch().count();  // VIOLATION: wall clock
}

double stdlib_draw() {
  std::mt19937 gen(1234);  // VIOLATION: bypasses graph::Rng
  return static_cast<double>(gen());
}

}  // namespace fixture
