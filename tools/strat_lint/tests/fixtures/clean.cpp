// Fixture: clean file — exercises the patterns each rule is close to,
// the contract-conforming way. strat-lint must report nothing here.
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

namespace fixture {

struct Rng {
  static Rng stream(std::uint64_t key, std::uint64_t id, std::uint64_t round);
  double uniform();
};

template <typename Body>
void parallel_for_chunks(std::size_t count, unsigned threads,
                         std::size_t min_per_chunk, Body body);

std::map<int, double> ordered_rates;           // ordered: iteration is fine
std::unordered_map<int, double> lookup_only;   // unordered: membership only

double sum_ordered() {
  double total = 0.0;
  for (const auto& kv : ordered_rates) {
    total += kv.second;
  }
  return total + (lookup_only.count(7) != 0U ? lookup_only.at(7) : 0.0);
}

double waived_sum() {
  double total = 0.0;
  // strat-lint: allow(unordered-iter) -- commutative integer-free max,
  // order-independent by construction (fixture exercises the waiver
  // grammar across a multi-line comment block).
  for (const auto& kv : lookup_only) {
    total = kv.second > total ? kv.second : total;
  }
  return total;
}

void deterministic_phase(std::vector<double>& out, unsigned threads,
                         std::uint64_t key, std::uint64_t round) {
  std::vector<double> scratch(out.size(), 0.0);
  parallel_for_chunks(out.size(), threads, 64,
                      [&](std::size_t begin, std::size_t end, std::size_t) {
                        for (std::size_t i = begin; i < end; ++i) {
                          Rng stream = Rng::stream(key, i, round);
                          scratch[i] = stream.uniform();
                        }
                      });
  double total = 0.0;  // deterministic serial commit
  for (double v : scratch) {
    total += v;
  }
  out[0] = total;
}

long long profile_now() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

}  // namespace fixture
