// Fixture: R4 snapshot-contract class. Member coverage in
// r4_snapshot.cpp is deliberately incomplete: dropped_ is neither
// saved nor restored and carries no waiver.
#pragma once
#include <cstdint>
#include <vector>

namespace fixture {

class MiniState {
 public:
  void save() const;
  void load();

 private:
  std::uint64_t round_counter_ = 0;
  std::vector<double> rates_ = {};
  double dropped_ = 0.0;  // SEEDED R4 VIOLATION: missing from the serializer
  // strat-lint: not-serialized -- rebuilt from rates_ on first access
  double cached_mean_ = 0.0;
  // strat-lint: serialized-via(encode_flags, decode_flags)
  std::uint32_t flags_ = 0;
};

}  // namespace fixture
