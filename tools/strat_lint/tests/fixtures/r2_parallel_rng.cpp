// Fixture: seeded R2 violations — shared sequential RNG touched from a
// parallel_for_chunks worker, directly, via split(), and via a callee.
#include <cstddef>
#include <vector>

namespace fixture {

struct Rng {
  double uniform();
  Rng split();
};

template <typename Body>
void parallel_for_chunks(std::size_t count, unsigned threads,
                         std::size_t min_per_chunk, Body body);

struct Phase {
  Rng rng_;
  std::vector<double> draws_;

  double draw_helper() { return rng_.uniform(); }

  void run(unsigned threads) {
    parallel_for_chunks(draws_.size(), threads, 64,
                        [&](std::size_t begin, std::size_t end, std::size_t) {
                          for (std::size_t i = begin; i < end; ++i) {
                            draws_[i] = rng_.uniform();  // VIOLATION: shared rng_ in worker
                          }
                          Rng local = rng_.split();  // VIOLATION: order-dependent split
                          draws_[begin] += local.uniform();
                          draws_[end - 1] += draw_helper();  // VIOLATION: callee uses rng_
                        });
  }
};

}  // namespace fixture
