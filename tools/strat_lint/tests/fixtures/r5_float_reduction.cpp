// Fixture: seeded R5 violation — floating-point accumulation into a
// shared captured variable from inside a parallel_for_chunks worker.
#include <cstddef>
#include <vector>

namespace fixture {

template <typename Body>
void parallel_for_chunks(std::size_t count, unsigned threads,
                         std::size_t min_per_chunk, Body body);

double schedule_dependent_sum(const std::vector<double>& xs, unsigned threads) {
  double total = 0.0;
  std::size_t touched = 0;
  parallel_for_chunks(xs.size(), threads, 64,
                      [&](std::size_t begin, std::size_t end, std::size_t) {
                        double chunk_sum = 0.0;  // chunk-local: fine
                        for (std::size_t i = begin; i < end; ++i) {
                          chunk_sum += xs[i];
                        }
                        total += chunk_sum;  // VIOLATION: cross-chunk FP merge order
                        touched++;           // VIOLATION: shared counter, data race
                      });
  (void)touched;
  return total;
}

}  // namespace fixture
