// Fixture: seeded R1 violations — iteration over unordered containers.
#include <cstddef>
#include <string>
#include <unordered_map>
#include <unordered_set>

namespace fixture {

std::unordered_map<int, double> rates_by_peer;
std::unordered_set<std::string> banned_names;

double sum_rates() {
  double total = 0.0;
  for (const auto& kv : rates_by_peer) {  // VIOLATION: range-for over unordered_map
    total += kv.second;
  }
  return total;
}

std::size_t walk_banned() {
  std::size_t n = 0;
  for (auto it = banned_names.begin(); it != banned_names.end(); ++it) {  // VIOLATION: .begin() walk
    n += it->size();
  }
  return n;
}

}  // namespace fixture
