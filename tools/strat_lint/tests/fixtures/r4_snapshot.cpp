// Fixture: serializer for the R4 contract class in r4_state.hpp.
// Covers round_counter_, rates_, and flags_ (via its accessors);
// dropped_ is intentionally absent from both sections.
#include "r4_state.hpp"

namespace fixture {

struct Writer {
  void u64(std::uint64_t);
  void u32(std::uint32_t);
  void f64_vec(const std::vector<double>&);
};

struct Reader {
  std::uint64_t u64();
  std::uint32_t u32();
  std::vector<double> f64_vec();
};

std::uint32_t encode_flags(const MiniState&);
void decode_flags(MiniState&, std::uint32_t);

struct MiniStateAccess {
  static void save_mini(const MiniState& s, Writer& w) {
    w.u64(s.round_counter_);
    w.f64_vec(s.rates_);
    w.u32(encode_flags(s));
  }

  static void load_mini(MiniState& s, Reader& r) {
    s.round_counter_ = r.u64();
    s.rates_ = r.f64_vec();
    decode_flags(s, r.u32());
  }
};

}  // namespace fixture
