#!/usr/bin/env python3
"""Self-tests for strat-lint.

Three layers:

  * fixture detection — every seeded violation in
    ``tests/fixtures/r*.cpp`` is found by its rule, and ``clean.cpp``
    (which walks right up to each rule's edge, the conforming way)
    produces nothing;
  * repo regression — the real tree under ``src/``, ``bench/``,
    ``tests/`` is clean, so any new violation fails tier-1;
  * snapshot-contract demo — deleting a serialized ``Swarm`` member's
    save line from a copy of ``snapshot.cpp`` makes R4 fire without
    running a single simulation.
"""

from __future__ import annotations

import shutil
import sys
import tempfile
import unittest
from pathlib import Path

TESTS_DIR = Path(__file__).resolve().parent
TOOL_DIR = TESTS_DIR.parent
REPO_ROOT = TOOL_DIR.parents[1]
FIXTURES = TESTS_DIR / "fixtures"

sys.path.insert(0, str(TOOL_DIR))

import strat_lint  # noqa: E402
from strat_lint import (  # noqa: E402
    R1, R2, R3, R4, R5,
    LintConfig, SnapshotContract,
    check_snapshot_complete, lint_file, run_lint,
)


def fixture_cfg() -> LintConfig:
    """Config rooted at the fixture directory so R1's hot-path scoping
    covers the fixture files themselves."""
    return LintConfig(root=FIXTURES, unordered_roots=(".",))


def rules_of(findings) -> set:
    return {f.rule for f in findings}


class FixtureDetectionTest(unittest.TestCase):
    """Each seeded violation is caught by exactly the right rule."""

    def lint_fixture(self, name: str):
        return lint_file(FIXTURES / name, fixture_cfg())

    def test_r1_unordered_iteration(self):
        findings = self.lint_fixture("r1_unordered_iter.cpp")
        self.assertEqual(rules_of(findings), {R1})
        self.assertEqual(len(findings), 2)  # range-for + .begin() walk
        messages = " ".join(f.message for f in findings)
        self.assertIn("rates_by_peer", messages)
        self.assertIn("banned_names", messages)

    def test_r2_parallel_rng(self):
        findings = self.lint_fixture("r2_parallel_rng.cpp")
        self.assertEqual(rules_of(findings), {R2})
        messages = [f.message for f in findings]
        self.assertTrue(any("shared sequential rng_" in m for m in messages))
        self.assertTrue(any("split()" in m for m in messages))
        self.assertTrue(any("draw_helper()" in m for m in messages))

    def test_r3_banned_randomness(self):
        findings = self.lint_fixture("r3_banned_randomness.cpp")
        self.assertEqual(rules_of(findings), {R3})
        messages = " ".join(f.message for f in findings)
        for source in ("random_device", "srand", "rand()", "time()",
                       "system_clock", "mt19937"):
            self.assertIn(source, messages)

    def test_r4_incomplete_snapshot(self):
        contract = SnapshotContract(
            class_name="MiniState",
            header="r4_state.hpp",
            serializers=["r4_snapshot.cpp"],
            save_fns=["save_mini"],
            load_fns=["load_mini"],
            check_tags=False,
        )
        findings = check_snapshot_complete(FIXTURES, [contract])
        self.assertEqual(rules_of(findings), {R4})
        # dropped_ is missing from both sections; every covered, waived,
        # or via-annotated member stays silent.
        self.assertEqual(len(findings), 2)
        for f in findings:
            self.assertIn("MiniState::dropped_", f.message)

    def test_r5_shared_accumulation(self):
        findings = self.lint_fixture("r5_float_reduction.cpp")
        self.assertEqual(rules_of(findings), {R5})
        lhs = {f.message.split("'")[1].split(" ")[0] for f in findings}
        self.assertEqual(lhs, {"total", "touched"})

    def test_clean_fixture_is_silent(self):
        findings = self.lint_fixture("clean.cpp")
        self.assertEqual(findings, [],
                         "clean fixture must lint clean: " +
                         "; ".join(f.render(FIXTURES) for f in findings))


class SuppressionTest(unittest.TestCase):
    """The waiver grammar reaches across multi-line comment blocks."""

    def test_unwaived_copy_of_clean_fixture_fires(self):
        raw = (FIXTURES / "clean.cpp").read_text()
        stripped_waiver = raw.replace("strat-lint: allow(unordered-iter)",
                                      "waiver removed")
        with tempfile.TemporaryDirectory() as tmp:
            target = Path(tmp) / "clean.cpp"
            target.write_text(stripped_waiver)
            findings = lint_file(target, LintConfig(root=Path(tmp),
                                                    unordered_roots=(".",)))
        self.assertEqual(rules_of(findings), {R1})


class RepoRegressionTest(unittest.TestCase):
    """The real tree is clean — new violations fail tier-1."""

    def test_repo_tree_is_clean(self):
        compile_commands = REPO_ROOT / "build" / "compile_commands.json"
        cfg = LintConfig(
            root=REPO_ROOT,
            compile_commands=compile_commands if compile_commands.is_file() else None,
        )
        findings = run_lint(cfg)
        self.assertEqual(findings, [],
                         "repo tree must lint clean:\n" +
                         "\n".join(f.render(REPO_ROOT) for f in findings))


class SnapshotDeletionDemoTest(unittest.TestCase):
    """Acceptance demo: removing a serialized Swarm member's save line
    makes R4 fail locally, before any simulation runs."""

    CONTRACT_FILES = [
        "src/bittorrent/swarm.hpp",
        "src/bittorrent/faults.hpp",
        "src/bittorrent/scenario.hpp",
        "src/bittorrent/snapshot.cpp",
        "src/bittorrent/snapshot.hpp",
        "src/bittorrent/tracker_sim.hpp",
        "src/bittorrent/tracker_sim.cpp",
    ]

    def copy_contract_tree(self, tmp: Path) -> None:
        for rel in self.CONTRACT_FILES:
            dst = tmp / rel
            dst.parent.mkdir(parents=True, exist_ok=True)
            shutil.copyfile(REPO_ROOT / rel, dst)

    def test_pristine_copy_is_clean(self):
        with tempfile.TemporaryDirectory() as tmpdir:
            tmp = Path(tmpdir)
            self.copy_contract_tree(tmp)
            findings = check_snapshot_complete(tmp, strat_lint.DEFAULT_CONTRACTS)
        self.assertEqual(findings, [],
                         "\n".join(f.render(tmp) for f in findings))

    def test_deleting_save_line_fires_r4(self):
        with tempfile.TemporaryDirectory() as tmpdir:
            tmp = Path(tmpdir)
            self.copy_contract_tree(tmp)
            serializer = tmp / "src/bittorrent/snapshot.cpp"
            lines = serializer.read_text().splitlines(keepends=True)
            pruned = [ln for ln in lines if "w.pod_span(rate_in_" not in ln]
            self.assertEqual(len(lines) - len(pruned), 1,
                             "expected exactly one rate_in_ save line to prune")
            serializer.write_text("".join(pruned))
            findings = check_snapshot_complete(tmp, strat_lint.DEFAULT_CONTRACTS)
        self.assertTrue(
            any(f.rule == R4 and "Swarm::rate_in_" in f.message
                and "not written" in f.message for f in findings),
            "R4 must flag the dropped rate_in_ save line: " +
            "; ".join(f.message for f in findings))

    def test_deleting_fault_save_line_fires_r4(self):
        # Same demo for the FaultState contract: write_faults must
        # cover every member of faults.hpp, so dropping the
        # retry_round_ span makes R4 fail before any simulation runs.
        with tempfile.TemporaryDirectory() as tmpdir:
            tmp = Path(tmpdir)
            self.copy_contract_tree(tmp)
            serializer = tmp / "src/bittorrent/snapshot.cpp"
            lines = serializer.read_text().splitlines(keepends=True)
            pruned = [ln for ln in lines
                      if "w.pod_span(fs.retry_round_" not in ln]
            self.assertEqual(len(lines) - len(pruned), 1,
                             "expected exactly one retry_round_ save line to prune")
            serializer.write_text("".join(pruned))
            findings = check_snapshot_complete(tmp, strat_lint.DEFAULT_CONTRACTS)
        self.assertTrue(
            any(f.rule == R4 and "FaultState::retry_round_" in f.message
                and "not written" in f.message for f in findings),
            "R4 must flag the dropped fault save line: " +
            "; ".join(f.message for f in findings))


if __name__ == "__main__":
    unittest.main(verbosity=2)
