#!/usr/bin/env python3
"""strat-lint: repo-specific static analysis for the stratification codebase.

The swarm simulator's differential-test tiers rest on three contracts
that, before this tool, were enforced only dynamically:

  * bitwise determinism at any thread count (per-peer counter-based RNG
    streams, no iteration-order-dependent state mutation),
  * the PR-5 parallel-phase discipline (no shared sequential RNG inside
    ``sim::parallel_for_chunks`` lambdas, FP reductions merged serially),
  * snapshot completeness (every ``Swarm``/``ChurnDriver`` state member
    is serialized, or carries a written waiver).

strat-lint pins each contract with one rule:

  R1  unordered-iter     no iteration over ``std::unordered_map`` /
                         ``std::unordered_set`` (bucket order is
                         nondeterministic across implementations and
                         runs; anything order-dependent downstream —
                         FP accumulation, RNG draws, container mutation
                         order — silently breaks bitwise lockstep).
  R2  parallel-rng       no use of the shared sequential ``rng_`` (or
                         any non-``Rng::stream`` / order-dependent
                         randomness such as ``.split()``) inside a
                         ``sim::parallel_for_chunks`` lambda body, nor
                         in same-file functions the lambda calls.
  R3  banned-randomness  no ``std::random_device``, ``std::rand`` /
                         ``srand``, C ``time()``, or
                         ``std::chrono::system_clock`` anywhere —
                         every draw must come from the seeded
                         ``graph::Rng`` (``steady_clock`` is allowed:
                         it feeds wall-clock profiling, never state).
  R4  snapshot-complete  every data member of the snapshot-contract
                         classes (``Swarm``, ``ChurnDriver``) appears
                         in both the save and the load sections of
                         their serializer, or carries an explicit
                         waiver; section tags must round-trip too.
  R5  float-reduction    no compound floating-point/integer
                         accumulation into shared (captured,
                         unindexed) variables inside a
                         ``parallel_for_chunks`` lambda — cross-chunk
                         FP reductions must use per-chunk scratch
                         merged in a deterministic serial commit.

Suppressions (same line or the line directly above the finding)::

    // strat-lint: allow(unordered-iter) -- <why this is order-independent>

R4 member annotations (on the member's declaration line or the line
directly above)::

    // strat-lint: not-serialized -- <why resume can rebuild/ignore it>
    // strat-lint: serialized-via(<save-token>, <load-token>)

``serialized-via`` names the accessor/helper tokens that must appear in
the serializer's save and load sections respectively, for members that
travel through an accessor (e.g. ``ChurnDriver::deadline_snapshot``)
rather than by name.

The tool is Python 3 stdlib-only and does lightweight lexical C++
parsing (comment stripping, brace matching, declaration scans) — it is
deliberately not a compiler front end. ``compile_commands.json`` (when
present) is cross-checked so no compiled source under the scanned roots
escapes the glob. Exit status: 0 clean, 1 findings, 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from dataclasses import dataclass, field
from pathlib import Path

# --------------------------------------------------------------------------
# Rule identifiers
# --------------------------------------------------------------------------

R1 = "unordered-iter"
R2 = "parallel-rng"
R3 = "banned-randomness"
R4 = "snapshot-complete"
R5 = "float-reduction"

RULE_IDS = {R1: "R1", R2: "R2", R3: "R3", R4: "R4", R5: "R5"}

CXX_SUFFIXES = {".cpp", ".cc", ".cxx", ".hpp", ".hh", ".h"}


@dataclass
class Finding:
    path: Path
    line: int  # 1-based
    rule: str
    message: str

    def render(self, root: Path) -> str:
        try:
            rel = self.path.resolve().relative_to(root.resolve())
        except ValueError:
            rel = self.path
        return f"{rel}:{self.line}: {RULE_IDS[self.rule]} [{self.rule}] {self.message}"


# --------------------------------------------------------------------------
# Lexical helpers
# --------------------------------------------------------------------------


def strip_comments(text: str) -> str:
    """Blanks out // and /* */ comments and string/char literals, keeping
    byte offsets and line numbers identical so findings point at real
    source lines. Suppression comments are read from the *raw* text."""
    out = list(text)
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            for k in range(i, j):
                out[k] = " "
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j < 0 else j
            for k in range(i, j + 2):
                if out[k] != "\n":
                    out[k] = " "
            i = j + 2
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j = j + 2 if text[j] == "\\" else j + 1
            for k in range(i + 1, min(j, n)):
                if out[k] != "\n":
                    out[k] = " "
            i = min(j, n) + 1
        else:
            i += 1
    return "".join(out)


def line_of(text: str, offset: int) -> int:
    return text.count("\n", 0, offset) + 1


def match_brace(text: str, open_ix: int) -> int:
    """Index of the '}' matching the '{' at open_ix (comment-stripped
    text). Returns len(text) - 1 when unbalanced."""
    depth = 0
    for i in range(open_ix, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return i
    return len(text) - 1


def match_angle(text: str, open_ix: int) -> int:
    """Index of the '>' closing the '<' at open_ix (handles nesting and
    '>>' closes)."""
    depth = 0
    for i in range(open_ix, len(text)):
        if text[i] == "<":
            depth += 1
        elif text[i] == ">":
            depth -= 1
            if depth == 0:
                return i
    return len(text) - 1


SUPPRESS_RE = re.compile(r"strat-lint:\s*allow\(([\w,\s-]+)\)\s*--\s*\S")


def suppressed_lines(raw_text: str) -> dict[int, set[str]]:
    """Maps line number -> rule names allowed there. A suppression
    covers its own line and — when it sits in a comment block — every
    following comment line plus the first code line below the block, so
    a multi-line waiver justification still reaches the code it waives."""
    allowed: dict[int, set[str]] = {}
    lines = raw_text.splitlines()
    for ix, line in enumerate(lines):
        m = SUPPRESS_RE.search(line)
        if not m:
            continue
        rules = {r.strip() for r in m.group(1).split(",")}
        allowed.setdefault(ix + 1, set()).update(rules)
        j = ix + 1
        while j < len(lines) and lines[j].lstrip().startswith("//"):
            allowed.setdefault(j + 1, set()).update(rules)
            j += 1
        if j < len(lines):
            allowed.setdefault(j + 1, set()).update(rules)
    return allowed


# --------------------------------------------------------------------------
# R1: iteration over unordered containers
# --------------------------------------------------------------------------

UNORDERED_DECL_RE = re.compile(r"std::unordered_(?:map|set|multimap|multiset)\s*<")
IDENT_AFTER_TYPE_RE = re.compile(r"\s*[&*]*\s*(\w+)")


def unordered_names(stripped: str) -> set[str]:
    """Variable/member/parameter names declared with an unordered type
    in this translation unit (its header's declarations are merged in by
    the caller)."""
    names: set[str] = set()
    for m in UNORDERED_DECL_RE.finditer(stripped):
        open_ix = m.end() - 1
        close_ix = match_angle(stripped, open_ix)
        im = IDENT_AFTER_TYPE_RE.match(stripped, close_ix + 1)
        if im:
            names.add(im.group(1))
    return names


RANGE_FOR_RE = re.compile(r"\bfor\s*\([^();]*:\s*(\w+)\s*\)")
BEGIN_CALL_RE = re.compile(r"\b(\w+)\s*\.\s*c?begin\s*\(")


def check_unordered_iter(path: Path, stripped: str, extra_decls: set[str]) -> list[Finding]:
    names = unordered_names(stripped) | extra_decls
    if not names:
        return []
    findings = []
    for m in RANGE_FOR_RE.finditer(stripped):
        if m.group(1) in names:
            findings.append(Finding(
                path, line_of(stripped, m.start()), R1,
                f"range-for over unordered container '{m.group(1)}': bucket order is "
                "nondeterministic; iterate a sorted copy or an ordered structure, or "
                "waive with a written order-independence argument"))
    for m in BEGIN_CALL_RE.finditer(stripped):
        if m.group(1) in names:
            findings.append(Finding(
                path, line_of(stripped, m.start()), R1,
                f"iterator walk of unordered container '{m.group(1)}' (.begin()): "
                "bucket order is nondeterministic; sort before use or waive with a "
                "written order-independence argument"))
    return findings


# --------------------------------------------------------------------------
# R2 + R5: parallel_for_chunks lambda discipline
# --------------------------------------------------------------------------

PARALLEL_CALL_RE = re.compile(r"\bparallel_for_chunks\s*(?:<[^;{>]*>)?\s*\(")
LAMBDA_INTRO_RE = re.compile(r"\[[^\[\]]*\]\s*(?:\([^()]*\))?\s*(?:mutable\s*)?(?:noexcept\s*)?(?:->[^{]*)?\{")
SHARED_RNG_RE = re.compile(r"\brng_\b")
SPLIT_CALL_RE = re.compile(r"\.\s*split\s*\(")
CALLEE_RE = re.compile(r"\b([A-Za-z_]\w*)\s*\(")
CXX_KEYWORDS = {
    "for", "if", "while", "switch", "return", "sizeof", "static_cast",
    "reinterpret_cast", "const_cast", "dynamic_cast", "catch", "assert",
    "decltype", "alignof", "noexcept", "throw",
}
COMPOUND_ACCUM_RE = re.compile(r"(?:^|[;{}()])\s*([A-Za-z_][\w.]*(?:->\w+)?)\s*([+\-*/]=|\+\+|--)")
LOCAL_DECL_RE = re.compile(
    r"\b(?:auto|double|float|bool|char|int|unsigned|long|short|std::(?:u?int\d+_t|size_t|ptrdiff_t)|size_t)"
    r"\s*[&*]?\s+(\w+)\s*(?:=|;|\{|\[)")


def lambda_bodies(stripped: str) -> list[tuple[int, str]]:
    """(body start offset, body text) of every lambda passed to a
    parallel_for_chunks call."""
    bodies = []
    for call in PARALLEL_CALL_RE.finditer(stripped):
        close = match_brace_like(stripped, call.end() - 1, "(", ")")
        args = stripped[call.end():close]
        for lam in LAMBDA_INTRO_RE.finditer(args):
            body_open = call.end() + lam.end() - 1
            body_close = match_brace(stripped, body_open)
            bodies.append((body_open + 1, stripped[body_open + 1:body_close]))
    return bodies


def match_brace_like(text: str, open_ix: int, opener: str, closer: str) -> int:
    depth = 0
    for i in range(open_ix, len(text)):
        if text[i] == opener:
            depth += 1
        elif text[i] == closer:
            depth -= 1
            if depth == 0:
                return i
    return len(text) - 1


def function_body(stripped: str, name: str) -> str | None:
    """Body of the first function *definition* named `name` in this
    file (free, member, or qualified), or None."""
    for m in re.finditer(r"\b" + re.escape(name) + r"\s*\(", stripped):
        close = match_brace_like(stripped, m.end() - 1, "(", ")")
        after = stripped[close + 1:close + 160]
        bm = re.match(r"\s*(?:const\s*)?(?:noexcept\s*)?(?:->\s*[\w:<>,\s&*]+)?\s*\{", after)
        if bm:
            body_open = close + 1 + bm.end() - 1
            return stripped[body_open + 1:match_brace(stripped, body_open)]
    return None


def check_parallel_lambdas(path: Path, stripped: str) -> list[Finding]:
    findings = []
    for body_start, body in lambda_bodies(stripped):
        # R2: the shared sequential generator (or order-dependent
        # derivation) must never be touched from a parallel worker.
        for m in SHARED_RNG_RE.finditer(body):
            findings.append(Finding(
                path, line_of(stripped, body_start + m.start()), R2,
                "shared sequential rng_ used inside a parallel_for_chunks lambda: "
                "draws become schedule-dependent; use a counter-based per-item "
                "stream (Rng::stream(key, id, round)) instead"))
        for m in SPLIT_CALL_RE.finditer(body):
            findings.append(Finding(
                path, line_of(stripped, body_start + m.start()), R2,
                "Rng::split() inside a parallel_for_chunks lambda: the derived "
                "stream depends on how many splits ran before it; use "
                "Rng::stream(key, id, round) instead"))
        # R2, one level deep: same-file functions the lambda calls.
        reported: set[str] = set()
        for m in CALLEE_RE.finditer(body):
            callee = m.group(1)
            if callee in CXX_KEYWORDS or callee in reported or callee == "parallel_for_chunks":
                continue
            callee_body = function_body(stripped, callee)
            if callee_body and SHARED_RNG_RE.search(callee_body):
                reported.add(callee)
                findings.append(Finding(
                    path, line_of(stripped, body_start + m.start()), R2,
                    f"parallel_for_chunks lambda calls {callee}(), which uses the "
                    "shared sequential rng_; route its randomness through "
                    "Rng::stream or hoist the call out of the parallel phase"))
        # R5: compound accumulation into shared unindexed captures.
        locals_ = {d.group(1) for d in LOCAL_DECL_RE.finditer(body)}
        for m in COMPOUND_ACCUM_RE.finditer(body):
            lhs, op = m.group(1), m.group(2)
            base = re.split(r"[.\[]|->", lhs)[0]
            if "[" in lhs or base in locals_:
                continue  # element-indexed (chunk-owned) or chunk-local
            findings.append(Finding(
                path, line_of(stripped, body_start + m.start(1)), R5,
                f"'{lhs} {op}' accumulates into a shared captured variable inside a "
                "parallel_for_chunks lambda: cross-chunk reduction order (and FP "
                "rounding) becomes schedule-dependent; accumulate into per-chunk "
                "scratch and merge in a deterministic serial commit"))
    return findings


# --------------------------------------------------------------------------
# R3: banned randomness / wall-clock sources
# --------------------------------------------------------------------------

BANNED_PATTERNS = [
    (re.compile(r"\brandom_device\b"),
     "std::random_device is nondeterministic; seed a graph::Rng explicitly"),
    (re.compile(r"\bsrand\s*\("),
     "srand() seeds hidden global state; use an explicit graph::Rng"),
    (re.compile(r"(?:\bstd::|[^:.\w])rand\s*\("),
     "rand() draws from hidden global state; use an explicit graph::Rng"),
    (re.compile(r"(?:\bstd::|[^:.\w])time\s*\("),
     "time() makes runs unreproducible; seeds and schedules must be explicit"),
    (re.compile(r"\bsystem_clock\b"),
     "system_clock is wall-clock (non-monotonic, machine-dependent); use "
     "steady_clock for profiling and never a clock for simulation state"),
    (re.compile(r"\bmt19937(?:_64)?\b"),
     "std::mt19937 bypasses graph::Rng (distribution implementations vary "
     "across standard libraries, breaking cross-toolchain reproducibility)"),
]


def check_banned_randomness(path: Path, stripped: str) -> list[Finding]:
    findings = []
    for pattern, why in BANNED_PATTERNS:
        for m in pattern.finditer(stripped):
            findings.append(Finding(path, line_of(stripped, m.start()), R3, why))
    return findings


# --------------------------------------------------------------------------
# R4: snapshot completeness
# --------------------------------------------------------------------------


@dataclass
class SnapshotContract:
    class_name: str
    header: str  # repo-relative path holding the class definition
    serializers: list[str]  # repo-relative paths holding save/load code
    save_fns: list[str]  # function names forming the save section
    load_fns: list[str]  # function names forming the load section
    check_tags: bool = True  # require kTag* constants in both sections


DEFAULT_CONTRACTS = [
    SnapshotContract(
        class_name="Swarm",
        header="src/bittorrent/swarm.hpp",
        serializers=["src/bittorrent/snapshot.cpp"],
        save_fns=["save_impl", "write_config", "write_stats", "write_faults"],
        load_fns=["resume_impl", "read_config", "read_stats", "read_faults"],
    ),
    SnapshotContract(
        class_name="FaultState",
        header="src/bittorrent/faults.hpp",
        serializers=["src/bittorrent/snapshot.cpp"],
        save_fns=["write_faults"],
        load_fns=["read_faults"],
        check_tags=False,  # kTagFaults is owned by the Swarm contract
    ),
    SnapshotContract(
        class_name="ChurnDriver",
        header="src/bittorrent/scenario.hpp",
        serializers=["src/bittorrent/snapshot.hpp"],
        save_fns=["save_churn_driver"],
        load_fns=["restore_churn_driver"],
        check_tags=False,  # the companion section is tagged by magic only
    ),
    SnapshotContract(
        class_name="TrackerSim",
        header="src/bittorrent/tracker_sim.hpp",
        serializers=["src/bittorrent/tracker_sim.cpp"],
        save_fns=["save"],
        load_fns=["resume"],
    ),
]

MEMBER_DECL_RE = re.compile(r"(\w+_)\s*(?:=[^;]*)?;\s*$")
NOT_SERIALIZED_RE = re.compile(r"strat-lint:\s*not-serialized\s*--\s*\S")
SERIALIZED_VIA_RE = re.compile(r"strat-lint:\s*serialized-via\(\s*(\w+)\s*,\s*(\w+)\s*\)")
TAG_CONST_RE = re.compile(r"constexpr\s+std::uint32_t\s+(kTag\w+)")


def class_members(stripped: str, class_name: str) -> list[tuple[str, int]]:
    """(member name, line) for every data member (trailing-underscore
    convention) declared at the top level of `class_name`'s body.
    Nested types and inline method bodies are skipped by brace depth."""
    m = re.search(r"\bclass\s+" + re.escape(class_name) + r"\b[^;{]*\{", stripped)
    if not m:
        return []
    body_open = m.end() - 1
    body_close = match_brace(stripped, body_open)
    members = []
    depth = 0
    stmt_start = body_open + 1
    for i in range(body_open + 1, body_close):
        c = stripped[i]
        if c == "{":
            depth += 1
        elif c == "}":
            depth -= 1
            if depth == 0:
                stmt_start = i + 1  # end of an inline body / nested type
        elif c == ";" and depth == 0:
            stmt = stripped[stmt_start:i + 1]
            dm = MEMBER_DECL_RE.search(stmt)
            # `= default;`-style declarations and using-aliases don't
            # declare state; the trailing-underscore match filters them.
            if dm and "using " not in stmt:
                members.append((dm.group(1), line_of(stripped, stmt_start + dm.start(1))))
            stmt_start = i + 1
    return members


def member_annotations(raw: str, line: int) -> tuple[bool, tuple[str, str] | None]:
    """R4 annotations on the member's declaration line or anywhere in
    the contiguous comment block directly above it:
    (waived as not-serialized, serialized-via tokens or None)."""
    lines = raw.splitlines()
    block = [lines[line - 1]] if line - 1 < len(lines) else []
    ix = line - 2
    while ix >= 0 and lines[ix].lstrip().startswith("//"):
        block.append(lines[ix])
        ix -= 1
    context = "\n".join(block)
    waived = NOT_SERIALIZED_RE.search(context) is not None
    via = SERIALIZED_VIA_RE.search(context)
    return waived, (via.group(1), via.group(2)) if via else None


def check_snapshot_complete(root: Path, contracts: list[SnapshotContract]) -> list[Finding]:
    findings = []
    for contract in contracts:
        header_path = root / contract.header
        if not header_path.is_file():
            findings.append(Finding(header_path, 1, R4,
                                    f"snapshot contract header missing for {contract.class_name}"))
            continue
        raw = header_path.read_text()
        stripped = strip_comments(raw)

        save_text, load_text = "", ""
        for ser in contract.serializers:
            ser_path = root / ser
            if not ser_path.is_file():
                findings.append(Finding(ser_path, 1, R4,
                                        f"serializer file missing for {contract.class_name}"))
                continue
            ser_stripped = strip_comments(ser_path.read_text())
            for fn in contract.save_fns:
                save_text += function_body(ser_stripped, fn) or ""
            for fn in contract.load_fns:
                load_text += function_body(ser_stripped, fn) or ""

        def has_token(text: str, token: str) -> bool:
            return re.search(r"\b" + re.escape(token) + r"\b", text) is not None

        members = class_members(stripped, contract.class_name)
        if not members:
            findings.append(Finding(header_path, 1, R4,
                                    f"no members found for snapshot class {contract.class_name} "
                                    "(class definition missing or unparseable)"))
            continue
        for name, line in members:
            waived, via = member_annotations(raw, line)
            if waived:
                continue
            if via:
                save_tok, load_tok = via
                if not has_token(save_text, save_tok):
                    findings.append(Finding(
                        header_path, line, R4,
                        f"{contract.class_name}::{name} is marked serialized-via({save_tok}, "
                        f"{load_tok}) but '{save_tok}' does not appear in the save sections "
                        f"({', '.join(contract.save_fns)})"))
                if not has_token(load_text, load_tok):
                    findings.append(Finding(
                        header_path, line, R4,
                        f"{contract.class_name}::{name} is marked serialized-via({save_tok}, "
                        f"{load_tok}) but '{load_tok}' does not appear in the load sections "
                        f"({', '.join(contract.load_fns)})"))
                continue
            if not has_token(save_text, name):
                findings.append(Finding(
                    header_path, line, R4,
                    f"{contract.class_name}::{name} is not written in any save section "
                    f"({', '.join(contract.save_fns)}); serialize it, or annotate the "
                    "declaration with '// strat-lint: not-serialized -- <reason>' or "
                    "'// strat-lint: serialized-via(<save>, <load>)'"))
            if not has_token(load_text, name):
                findings.append(Finding(
                    header_path, line, R4,
                    f"{contract.class_name}::{name} is not restored in any load section "
                    f"({', '.join(contract.load_fns)}); a snapshot would silently drop it"))

        # Section tags must round-trip: every kTag* constant declared in a
        # serializer has to be both written and expected.
        if contract.check_tags:
            for ser in contract.serializers:
                ser_path = root / ser
                if not ser_path.is_file():
                    continue
                ser_raw = ser_path.read_text()
                ser_stripped = strip_comments(ser_raw)
                for m in TAG_CONST_RE.finditer(ser_stripped):
                    tag = m.group(1)
                    if not has_token(save_text, tag):
                        findings.append(Finding(ser_path, line_of(ser_stripped, m.start()), R4,
                                                f"section tag {tag} is never written in the save sections"))
                    if not has_token(load_text, tag):
                        findings.append(Finding(ser_path, line_of(ser_stripped, m.start()), R4,
                                                f"section tag {tag} is never expected in the load sections"))
    return findings


# --------------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------------


@dataclass
class LintConfig:
    root: Path
    compile_commands: Path | None = None
    rules: set[str] = field(default_factory=lambda: set(RULE_IDS))
    contracts: list[SnapshotContract] = field(default_factory=lambda: list(DEFAULT_CONTRACTS))
    # Directory roots (repo-relative) scanned per rule. R4 uses the
    # contract file lists instead.
    scan_roots: tuple[str, ...] = ("src", "bench", "tests", "examples", "tools")
    unordered_roots: tuple[str, ...] = ("src",)


def companion_header_decls(path: Path) -> set[str]:
    """Unordered-container declarations from the same-stem header, so a
    member declared in foo.hpp is recognized when foo.cpp iterates it."""
    if path.suffix not in {".cpp", ".cc", ".cxx"}:
        return set()
    for suffix in (".hpp", ".hh", ".h"):
        header = path.with_suffix(suffix)
        if header.is_file():
            return unordered_names(strip_comments(header.read_text()))
    return set()


def lint_file(path: Path, cfg: LintConfig) -> list[Finding]:
    raw = path.read_text()
    stripped = strip_comments(raw)
    findings: list[Finding] = []
    rel = path.resolve()
    under_unordered_scope = any(
        (cfg.root / r).resolve() in rel.parents for r in cfg.unordered_roots)
    if R1 in cfg.rules and under_unordered_scope:
        findings += check_unordered_iter(path, stripped, companion_header_decls(path))
    if R2 in cfg.rules or R5 in cfg.rules:
        lamb = check_parallel_lambdas(path, stripped)
        findings += [f for f in lamb if f.rule in cfg.rules]
    if R3 in cfg.rules:
        findings += check_banned_randomness(path, stripped)
    allowed = suppressed_lines(raw)
    return [f for f in findings if f.rule not in allowed.get(f.line, set())]


def gather_files(cfg: LintConfig) -> list[Path]:
    files: set[Path] = set()
    for rel in cfg.scan_roots:
        base = cfg.root / rel
        if not base.is_dir():
            continue
        for p in base.rglob("*"):
            if p.suffix in CXX_SUFFIXES and p.is_file() and "fixtures" not in p.parts:
                files.add(p)
    return sorted(files)


def compile_commands_coverage(cfg: LintConfig, scanned: list[Path]) -> list[Finding]:
    """Cross-checks compile_commands.json: every compiled file under the
    scanned roots must be in the scanned set (a glob gap would silently
    exempt a new source file from the contracts)."""
    if cfg.compile_commands is None or not cfg.compile_commands.is_file():
        return []
    try:
        entries = json.loads(cfg.compile_commands.read_text())
    except (json.JSONDecodeError, OSError):
        return [Finding(cfg.compile_commands, 1, R4, "compile_commands.json unreadable")]
    scanned_set = {p.resolve() for p in scanned}
    root = cfg.root.resolve()
    findings = []
    for entry in entries:
        src = Path(entry.get("directory", ""), entry.get("file", "")).resolve()
        if not src.is_relative_to(root) or src.suffix not in CXX_SUFFIXES:
            continue
        if any(src.is_relative_to(root / r) for r in cfg.scan_roots) and src not in scanned_set:
            findings.append(Finding(src, 1, R4,
                                    "compiled source escaped the lint file glob "
                                    "(strat-lint would silently skip it)"))
    return findings


def run_lint(cfg: LintConfig, files: list[Path] | None = None) -> list[Finding]:
    scanned = files if files is not None else gather_files(cfg)
    findings: list[Finding] = []
    for path in scanned:
        findings += lint_file(path, cfg)
    if R4 in cfg.rules:
        findings += check_snapshot_complete(cfg.root, cfg.contracts)
        if files is None:
            findings += compile_commands_coverage(cfg, scanned)
    findings.sort(key=lambda f: (str(f.path), f.line, f.rule))
    return findings


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="strat-lint",
        description="static analysis for the determinism/parallelism/snapshot contracts")
    parser.add_argument("--root", type=Path, default=Path.cwd(),
                        help="repository root (default: cwd)")
    parser.add_argument("--compile-commands", type=Path, default=None,
                        help="compile_commands.json for file-coverage cross-checking")
    parser.add_argument("--rules", type=str, default=None,
                        help="comma-separated rule subset (names or R numbers)")
    parser.add_argument("files", nargs="*", type=Path,
                        help="explicit files to lint (default: scan the tree)")
    args = parser.parse_args(argv)

    rules = set(RULE_IDS)
    if args.rules:
        by_id = {v: k for k, v in RULE_IDS.items()}
        rules = set()
        for token in args.rules.split(","):
            token = token.strip()
            if token in RULE_IDS:
                rules.add(token)
            elif token.upper() in by_id:
                rules.add(by_id[token.upper()])
            else:
                print(f"strat-lint: unknown rule '{token}'", file=sys.stderr)
                return 2
    root = args.root.resolve()
    if not root.is_dir():
        print(f"strat-lint: root {root} is not a directory", file=sys.stderr)
        return 2
    compile_commands = args.compile_commands
    if compile_commands is None and (root / "build" / "compile_commands.json").is_file():
        compile_commands = root / "build" / "compile_commands.json"
    cfg = LintConfig(root=root, compile_commands=compile_commands, rules=rules)
    findings = run_lint(cfg, files=args.files or None)
    for f in findings:
        print(f.render(root))
    if findings:
        print(f"strat-lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
