#include "analysis/independent_matching.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace strat::analysis {
namespace {

TEST(Independent1Matching, RejectsBadProbability) {
  EXPECT_THROW(Independent1Matching(5, -0.1), std::invalid_argument);
  EXPECT_THROW(Independent1Matching(5, 1.1), std::invalid_argument);
}

TEST(Independent1Matching, TinyCasesByHand) {
  // n = 2: D(0,1) = p.
  const double p = 0.3;
  const Independent1Matching m2(2, p);
  EXPECT_NEAR(m2.d(0, 1), p, 1e-12);
  // n = 3 (paper's Figure 7, 0-based): D(0,1) = p, D(0,2) = p(1-p),
  // D(1,2) = p(1-D(1,0))(1-D(2,0)) = p(1-p)(1-p(1-p)).
  const Independent1Matching m3(3, p);
  EXPECT_NEAR(m3.d(0, 1), p, 1e-12);
  EXPECT_NEAR(m3.d(0, 2), p * (1.0 - p), 1e-12);
  EXPECT_NEAR(m3.d(1, 2), p * (1.0 - p) * (1.0 - p * (1.0 - p)), 1e-12);
}

TEST(Independent1Matching, SymmetricZeroDiagonal) {
  const Independent1Matching m(20, 0.2);
  for (core::PeerId i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(m.d(i, i), 0.0);
    for (core::PeerId j = 0; j < 20; ++j) EXPECT_DOUBLE_EQ(m.d(i, j), m.d(j, i));
  }
}

TEST(Independent1Matching, RowsAreSubProbabilities) {
  const Independent1Matching m(50, 0.1);
  for (core::PeerId i = 0; i < 50; ++i) {
    double sum = 0.0;
    for (double v : m.row(i)) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);
      sum += v;
    }
    EXPECT_LE(sum, 1.0 + 1e-9);
    EXPECT_NEAR(sum, m.mass(i), 1e-12);
  }
}

TEST(Independent1Matching, Lemma1MassApproachesOne) {
  // Lemma 1: with enough worse peers below, any fixed peer is matched
  // with probability 1 in the limit. Mass must increase with n and get
  // close to 1.
  const double p = 0.05;
  const Independent1Matching small(50, p);
  const Independent1Matching medium(200, p);
  const Independent1Matching large(800, p);
  const double m_small = small.mass(0);
  const double m_medium = medium.mass(0);
  const double m_large = large.mass(0);
  EXPECT_LT(m_small, m_medium);
  EXPECT_LT(m_medium, m_large);
  EXPECT_GT(m_large, 0.99);
}

TEST(Independent1Matching, CutProperty) {
  // Theorem 2's supporting fact: D(i,j) does not depend on peers ranked
  // below max(i,j) — the n-peer matrix is a cut of the larger one.
  const double p = 0.15;
  const Independent1Matching small(30, p);
  const Independent1Matching large(60, p);
  for (core::PeerId i = 0; i < 30; ++i) {
    for (core::PeerId j = 0; j < 30; ++j) {
      EXPECT_NEAR(small.d(i, j), large.d(i, j), 1e-12) << i << "," << j;
    }
  }
}

TEST(Independent1Matching, BestPeerRowIsGeometricLike) {
  // §5.3: for i = 0 the mate distribution is (almost) geometric:
  // D(0,j) = p(1-p)^{j-1}.
  const double p = 0.2;
  const Independent1Matching m(40, p);
  for (core::PeerId j = 1; j < 20; ++j) {
    const double expected = p * std::pow(1.0 - p, static_cast<double>(j - 1));
    EXPECT_NEAR(m.d(0, j), expected, 1e-12) << "j=" << j;
  }
}

TEST(Independent1Matching, MiddlePeerDistributionIsSymmetricAroundRank) {
  // §5.3 / Figure 8(b): central peers see a shift-symmetric mate
  // distribution: D(i, i+k) ~= D(i, i-k) up to boundary effects.
  const std::size_t n = 600;
  const Independent1Matching m(n, 20.0 / static_cast<double>(n - 1));
  const core::PeerId center = n / 2;
  for (std::size_t k = 1; k < 60; ++k) {
    const double right = m.d(center, center + static_cast<core::PeerId>(k));
    const double left = m.d(center, center - static_cast<core::PeerId>(k));
    EXPECT_NEAR(left, right, 0.15 * std::max(left, right) + 1e-9) << "k=" << k;
  }
}

TEST(Independent1Matching, ShiftInvarianceInTheBulk) {
  // §5.3: "the distribution simply shifts with the rank of the peer"
  // for bulk peers (top 25%..80%).
  const std::size_t n = 800;
  const Independent1Matching m(n, 15.0 / static_cast<double>(n - 1));
  const core::PeerId a = 300;
  const core::PeerId b = 400;
  for (int off = -50; off <= 50; ++off) {
    const auto ja = static_cast<core::PeerId>(static_cast<int>(a) + off);
    const auto jb = static_cast<core::PeerId>(static_cast<int>(b) + off);
    const double va = m.d(a, ja);
    const double vb = m.d(b, jb);
    EXPECT_NEAR(va, vb, 0.12 * std::max(va, vb) + 1e-9) << "off=" << off;
  }
}

TEST(Independent1Matching, WorstPeerMatchedAboutHalfTheTime) {
  // §5.3 / Figure 8(c): the worst peer is matched in roughly half the
  // realizations (exactly half in the limit).
  const std::size_t n = 2000;
  const Independent1Matching m(n, 25.0 / static_cast<double>(n - 1));
  EXPECT_NEAR(m.mass(static_cast<core::PeerId>(n - 1)), 0.5, 0.05);
}

TEST(Independent1Matching, EveryoneElseBeatsTheWorstPeer) {
  // §5.3: "All the others are assured to do better in terms of matching
  // frequency."
  const std::size_t n = 500;
  const Independent1Matching m(n, 20.0 / static_cast<double>(n - 1));
  const double worst = m.mass(static_cast<core::PeerId>(n - 1));
  for (core::PeerId i = 0; i + 1 < n; ++i) {
    EXPECT_GE(m.mass(i) + 1e-12, worst) << "peer " << i;
  }
}

TEST(Independent1Matching, ExpectedMateRankTracksOwnRankInBulk) {
  const std::size_t n = 500;
  const Independent1Matching m(n, 20.0 / static_cast<double>(n - 1));
  // Bulk peers: expected mate rank within a small band of own rank.
  for (const core::PeerId i : {150u, 250u, 350u}) {
    EXPECT_NEAR(m.expected_mate_rank(i), static_cast<double>(i), 30.0);
  }
}

TEST(Streaming, MatchesFullMatrix) {
  const std::size_t n = 120;
  const double p = 0.08;
  const Independent1Matching full(n, p);
  StreamingOptions opt;
  opt.n = n;
  opt.p = p;
  opt.capture_rows = {0, 5, 60, 119};
  const StreamingResult streamed = independent_1matching_streaming(opt);
  for (const auto& [peer, row] : streamed.rows) {
    for (core::PeerId j = 0; j < n; ++j) {
      EXPECT_NEAR(row[j], full.d(peer, j), 1e-12) << "peer " << peer << " j " << j;
    }
  }
  for (core::PeerId i = 0; i < n; ++i) {
    EXPECT_NEAR(streamed.mass[i], full.mass(i), 1e-10);
  }
}

TEST(Streaming, Validation) {
  StreamingOptions opt;
  opt.n = 10;
  opt.p = 2.0;
  EXPECT_THROW((void)independent_1matching_streaming(opt), std::invalid_argument);
  opt.p = 0.1;
  opt.capture_rows = {10};
  EXPECT_THROW((void)independent_1matching_streaming(opt), std::invalid_argument);
}

}  // namespace
}  // namespace strat::analysis
