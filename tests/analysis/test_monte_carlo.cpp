#include "analysis/monte_carlo.hpp"

#include <gtest/gtest.h>

#include "analysis/exact_small.hpp"
#include "analysis/independent_matching.hpp"

namespace strat::analysis {
namespace {

MonteCarloOptions base(std::size_t n, double p, std::size_t b0, std::size_t runs) {
  MonteCarloOptions opt;
  opt.n = n;
  opt.p = p;
  opt.b0 = b0;
  opt.realizations = runs;
  return opt;
}

TEST(MonteCarlo, Validation) {
  graph::Rng rng(1);
  EXPECT_THROW((void)estimate_mate_distribution(base(1, 0.5, 1, 10), rng), std::invalid_argument);
  EXPECT_THROW((void)estimate_mate_distribution(base(10, 1.5, 1, 10), rng), std::invalid_argument);
  EXPECT_THROW((void)estimate_mate_distribution(base(10, 0.5, 0, 10), rng), std::invalid_argument);
  auto opt = base(10, 0.5, 1, 10);
  opt.tracked = {10};
  EXPECT_THROW((void)estimate_mate_distribution(opt, rng), std::invalid_argument);
}

TEST(MonteCarlo, CountsAreConsistent) {
  graph::Rng rng(2);
  auto opt = base(20, 0.2, 2, 200);
  opt.tracked = {5, 19};
  const auto result = estimate_mate_distribution(opt, rng);
  EXPECT_EQ(result.realizations, 200u);
  for (std::size_t t = 0; t < 2; ++t) {
    for (std::size_t c = 0; c < 2; ++c) {
      std::uint64_t matched = 0;
      for (core::PeerId j = 0; j < 20; ++j) matched += result.freq[t][c][j];
      EXPECT_EQ(matched + result.unmatched[t][c], 200u);
      EXPECT_NEAR(result.match_mass(t, c),
                  static_cast<double>(matched) / 200.0, 1e-12);
    }
  }
}

TEST(MonteCarlo, AgreesWithExactEnumerationAtTinyN) {
  graph::Rng rng(3);
  const double p = 0.5;
  const ExactSmallModel exact(4, p);
  auto opt = base(4, p, 1, 40000);
  opt.tracked = {1};
  const auto result = estimate_mate_distribution(opt, rng);
  for (core::PeerId j = 0; j < 4; ++j) {
    EXPECT_NEAR(result.probability(0, 0, j), exact.d(1, j), 0.02) << "j=" << j;
  }
}

TEST(MonteCarlo, AgreesWithIndependentModelAtSmallP) {
  // §5.4.3: the independent approximation is accurate at small p. The
  // MC estimator must land near Algorithm 2's row.
  graph::Rng rng(4);
  const std::size_t n = 120;
  const double p = 20.0 / static_cast<double>(n - 1);
  const Independent1Matching model(n, p);
  auto opt = base(n, p, 1, 3000);
  opt.tracked = {60};
  const auto result = estimate_mate_distribution(opt, rng);
  // Compare coarse-grained masses over rank bands, not single ranks.
  auto band_mass = [&](auto&& getter, core::PeerId lo, core::PeerId hi) {
    double sum = 0.0;
    for (core::PeerId j = lo; j < hi; ++j) sum += getter(j);
    return sum;
  };
  for (const auto& [lo, hi] :
       std::vector<std::pair<core::PeerId, core::PeerId>>{{30, 60}, {61, 90}, {0, 30}}) {
    const double mc =
        band_mass([&](core::PeerId j) { return result.probability(0, 0, j); }, lo, hi);
    const double th = band_mass([&](core::PeerId j) { return model.d(60, j); }, lo, hi);
    EXPECT_NEAR(mc, th, 0.05) << "band " << lo << ".." << hi;
  }
}

TEST(MonteCarlo, ParallelMatchesSequentialStatistically) {
  auto opt = base(40, 0.2, 2, 2000);
  opt.tracked = {20};
  graph::Rng rng_seq(5);
  const auto seq = estimate_mate_distribution(opt, rng_seq);
  opt.threads = 4;
  graph::Rng rng_par(6);
  const auto par = estimate_mate_distribution(opt, rng_par);
  EXPECT_EQ(par.realizations, 2000u);
  EXPECT_NEAR(par.match_mass(0, 0), seq.match_mass(0, 0), 0.05);
  EXPECT_NEAR(par.match_mass(0, 1), seq.match_mass(0, 1), 0.05);
}

TEST(MonteCarlo, ProbabilityRowSumsToMatchMass) {
  graph::Rng rng(7);
  auto opt = base(30, 0.3, 2, 500);
  opt.tracked = {15};
  const auto result = estimate_mate_distribution(opt, rng);
  for (std::size_t c = 0; c < 2; ++c) {
    const auto row = result.probability_row(0, c);
    double sum = 0.0;
    for (double v : row) sum += v;
    EXPECT_NEAR(sum, result.match_mass(0, c), 1e-12);
  }
}

TEST(MonteCarlo, SecondChoiceNeverExceedsFirst) {
  graph::Rng rng(8);
  auto opt = base(60, 0.15, 2, 500);
  opt.tracked = {10, 30, 59};
  const auto result = estimate_mate_distribution(opt, rng);
  for (std::size_t t = 0; t < 3; ++t) {
    EXPECT_LE(result.match_mass(t, 1), result.match_mass(t, 0) + 1e-12);
  }
}

}  // namespace
}  // namespace strat::analysis
