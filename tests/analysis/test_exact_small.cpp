#include "analysis/exact_small.hpp"

#include <gtest/gtest.h>

#include "analysis/independent_matching.hpp"

namespace strat::analysis {
namespace {

TEST(ExactSmall, Validation) {
  EXPECT_THROW(ExactSmallModel(8, 0.5), std::invalid_argument);
  EXPECT_THROW(ExactSmallModel(3, -0.1), std::invalid_argument);
  EXPECT_THROW(ExactSmallModel(3, 0.5, 0), std::invalid_argument);
}

TEST(ExactSmall, Figure7ExactProbabilities) {
  // §5.1.2 Figure 7 (0-based): D_exact(0,1) = p, D_exact(0,2) = p(1-p),
  // D_exact(1,2) = p(1-p)^2.
  const double p = 0.37;
  const ExactSmallModel exact(3, p);
  EXPECT_NEAR(exact.d(0, 1), p, 1e-12);
  EXPECT_NEAR(exact.d(0, 2), p * (1.0 - p), 1e-12);
  EXPECT_NEAR(exact.d(1, 2), p * (1.0 - p) * (1.0 - p), 1e-12);
}

TEST(ExactSmall, Figure7ApproximationErrorTerm) {
  // Algorithm 2 overestimates D(1,2) by exactly p^3(1-p) at n = 3.
  const double p = 0.25;
  const ExactSmallModel exact(3, p);
  const Independent1Matching approx(3, p);
  EXPECT_NEAR(approx.d(1, 2) - exact.d(1, 2), p * p * p * (1.0 - p), 1e-12);
  // The first two entries agree exactly.
  EXPECT_NEAR(approx.d(0, 1), exact.d(0, 1), 1e-12);
  EXPECT_NEAR(approx.d(0, 2), exact.d(0, 2), 1e-12);
}

TEST(ExactSmall, SymmetryAndDiagonal) {
  const ExactSmallModel exact(4, 0.4);
  for (core::PeerId i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(exact.d(i, i), 0.0);
    for (core::PeerId j = 0; j < 4; ++j) EXPECT_DOUBLE_EQ(exact.d(i, j), exact.d(j, i));
  }
}

TEST(ExactSmall, RowsSumToMatchProbability) {
  const ExactSmallModel exact(5, 0.3);
  for (core::PeerId i = 0; i < 5; ++i) {
    double sum = 0.0;
    for (core::PeerId j = 0; j < 5; ++j) sum += exact.d(i, j);
    EXPECT_NEAR(sum, exact.match_mass(i), 1e-12);
    EXPECT_LE(sum, 1.0 + 1e-12);
  }
}

TEST(ExactSmall, DegenerateProbabilities) {
  const ExactSmallModel never(4, 0.0);
  for (core::PeerId i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(never.match_mass(i), 0.0);
  const ExactSmallModel always(4, 1.0);
  // Complete graph, 1-matching: adjacent ranks pair up.
  EXPECT_DOUBLE_EQ(always.d(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(always.d(2, 3), 1.0);
  EXPECT_DOUBLE_EQ(always.d(0, 2), 0.0);
}

TEST(ExactSmall, ApproximationIsGoodAtSmallP) {
  // §5.4.3: the independence assumption works well for small p.
  const double p = 0.02;
  const ExactSmallModel exact(6, p);
  const Independent1Matching approx(6, p);
  for (core::PeerId i = 0; i < 6; ++i) {
    for (core::PeerId j = 0; j < 6; ++j) {
      EXPECT_NEAR(exact.d(i, j), approx.d(i, j), 5e-4) << i << "," << j;
    }
  }
}

TEST(ExactSmall, B2ChoiceDistributions) {
  const double p = 0.5;
  const ExactSmallModel exact(4, p, 2);
  // Choice masses are monotone in c and bounded.
  for (core::PeerId i = 0; i < 4; ++i) {
    EXPECT_GE(exact.match_mass(i, 0), exact.match_mass(i, 1));
    EXPECT_LE(exact.match_mass(i, 0), 1.0 + 1e-12);
  }
  // Per-choice rows sum to the choice mass.
  for (core::PeerId i = 0; i < 4; ++i) {
    for (std::size_t c = 0; c < 2; ++c) {
      double sum = 0.0;
      for (core::PeerId j = 0; j < 4; ++j) sum += exact.d_choice(i, c, j);
      EXPECT_NEAR(sum, exact.match_mass(i, c), 1e-12);
    }
  }
}

TEST(ExactSmall, B2CompleteGraphFormsQuads) {
  // p = 1, b0 = 2 on 6 peers: clusters {0,1,2} and {3,4,5}.
  const ExactSmallModel exact(6, 1.0, 2);
  EXPECT_DOUBLE_EQ(exact.d(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(exact.d(0, 2), 1.0);
  EXPECT_DOUBLE_EQ(exact.d(1, 2), 1.0);
  EXPECT_DOUBLE_EQ(exact.d(2, 3), 0.0);
  EXPECT_DOUBLE_EQ(exact.d(3, 4), 1.0);
}

TEST(ExactSmall, BoundsChecking) {
  const ExactSmallModel exact(3, 0.5, 2);
  EXPECT_THROW((void)exact.d(3, 0), std::out_of_range);
  EXPECT_THROW((void)exact.d_choice(0, 2, 1), std::out_of_range);
  EXPECT_THROW((void)exact.match_mass(0, 2), std::out_of_range);
}

}  // namespace
}  // namespace strat::analysis
