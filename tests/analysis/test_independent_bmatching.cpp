#include "analysis/independent_bmatching.hpp"

#include <gtest/gtest.h>

#include "analysis/independent_matching.hpp"

namespace strat::analysis {
namespace {

BMatchingOptions base(std::size_t n, double p, std::size_t b0) {
  BMatchingOptions opt;
  opt.n = n;
  opt.p = p;
  opt.b0 = b0;
  return opt;
}

TEST(BMatching, Validation) {
  EXPECT_THROW((void)analyze_bmatching(base(10, -0.1, 2)), std::invalid_argument);
  EXPECT_THROW((void)analyze_bmatching(base(10, 0.5, 0)), std::invalid_argument);
  auto opt = base(10, 0.5, 2);
  opt.capture_rows = {10};
  EXPECT_THROW((void)analyze_bmatching(opt), std::invalid_argument);
  opt = base(10, 0.5, 2);
  opt.weights = {1.0, 2.0};
  EXPECT_THROW((void)analyze_bmatching(opt), std::invalid_argument);
}

TEST(BMatching, ReducesToAlgorithm2AtB1) {
  const std::size_t n = 100;
  const double p = 0.07;
  const Independent1Matching alg2(n, p);
  auto opt = base(n, p, 1);
  opt.capture_rows = {0, 10, 50, 99};
  const BMatchingResult result = analyze_bmatching(opt);
  for (const auto& [peer, rows] : result.rows) {
    for (core::PeerId j = 0; j < n; ++j) {
      EXPECT_NEAR(rows[0][j], alg2.d(peer, j), 1e-12) << "peer " << peer << " j " << j;
    }
  }
  for (core::PeerId i = 0; i < n; ++i) {
    EXPECT_NEAR(result.expected_mates[i], alg2.mass(i), 1e-10);
  }
}

TEST(BMatching, ChoiceMassesAreMonotone) {
  // P(choice 1 matched) >= P(choice 2 matched) >= ... for every peer.
  const auto result = analyze_bmatching(base(200, 0.05, 3));
  for (core::PeerId i = 0; i < 200; ++i) {
    for (std::size_t c = 1; c < 3; ++c) {
      EXPECT_LE(result.mass(i, c), result.mass(i, c - 1) + 1e-12) << "peer " << i;
    }
  }
}

TEST(BMatching, MassesAreProbabilities) {
  const auto result = analyze_bmatching(base(150, 0.1, 2));
  for (core::PeerId i = 0; i < 150; ++i) {
    for (std::size_t c = 0; c < 2; ++c) {
      EXPECT_GE(result.mass(i, c), 0.0);
      EXPECT_LE(result.mass(i, c), 1.0 + 1e-12);
    }
    EXPECT_NEAR(result.expected_mates[i], result.mass(i, 0) + result.mass(i, 1), 1e-12);
  }
}

TEST(BMatching, CapturedRowsSumToChoiceMass) {
  auto opt = base(80, 0.1, 2);
  opt.capture_rows = {40};
  const auto result = analyze_bmatching(opt);
  const auto& rows = result.rows.at(40);
  for (std::size_t c = 0; c < 2; ++c) {
    double sum = 0.0;
    for (double v : rows[c]) sum += v;
    EXPECT_NEAR(sum, result.mass(40, c), 1e-12);
  }
}

TEST(BMatching, FirstChoiceOfBestPeerIsGeometricLike) {
  // The best peer's first choice behaves like the 1-matching best-peer
  // row near the top (its first pick is unconstrained by better peers).
  const double p = 0.2;
  auto opt = base(40, p, 2);
  opt.capture_rows = {0};
  const auto result = analyze_bmatching(opt);
  const auto& first = result.rows.at(0)[0];
  EXPECT_NEAR(first[1], p, 1e-12);
  EXPECT_NEAR(first[2], p * (1.0 - p), 1e-9);
}

TEST(BMatching, SecondChoiceIsWorseOnAverage) {
  auto opt = base(300, 0.05, 2);
  opt.capture_rows = {150};
  const auto result = analyze_bmatching(opt);
  const auto& rows = result.rows.at(150);
  auto mean_rank = [&](const std::vector<double>& row) {
    double mass = 0.0;
    double weighted = 0.0;
    for (std::size_t j = 0; j < row.size(); ++j) {
      mass += row[j];
      weighted += row[j] * static_cast<double>(j);
    }
    return weighted / mass;
  };
  // Choice ordering is by rank: the second-best mate is worse (higher
  // mean rank) than the best mate.
  EXPECT_GT(mean_rank(rows[1]), mean_rank(rows[0]));
}

TEST(BMatching, CutPropertyHoldsPerChoice) {
  // D_c(i, j) does not depend on peers ranked below max(i, j).
  const double p = 0.15;
  auto opt_small = base(30, p, 2);
  opt_small.capture_rows = {3, 12};
  auto opt_large = base(60, p, 2);
  opt_large.capture_rows = {3, 12};
  const auto small = analyze_bmatching(opt_small);
  const auto large = analyze_bmatching(opt_large);
  for (const core::PeerId peer : {3u, 12u}) {
    for (std::size_t c = 0; c < 2; ++c) {
      for (core::PeerId j = 0; j < 30; ++j) {
        EXPECT_NEAR(small.rows.at(peer)[c][j], large.rows.at(peer)[c][j], 1e-12);
      }
    }
  }
}

TEST(BMatching, WeightsProduceExpectedDownload) {
  const std::size_t n = 60;
  auto opt = base(n, 0.2, 2);
  opt.weights.assign(n, 0.0);
  for (std::size_t j = 0; j < n; ++j) opt.weights[j] = static_cast<double>(n - j);
  opt.capture_rows = {20};
  const auto result = analyze_bmatching(opt);
  ASSERT_EQ(result.expected_weight.size(), n);
  // Cross-check against the captured row.
  double manual = 0.0;
  for (std::size_t c = 0; c < 2; ++c) {
    const auto& row = result.rows.at(20)[c];
    for (std::size_t j = 0; j < n; ++j) manual += row[j] * opt.weights[j];
  }
  EXPECT_NEAR(result.expected_weight[20], manual, 1e-10);
}

TEST(BMatching, UnweightedLeavesExpectedWeightEmpty) {
  const auto result = analyze_bmatching(base(20, 0.3, 2));
  EXPECT_TRUE(result.expected_weight.empty());
}

TEST(BMatching, HigherB0IncreasesExpectedMates) {
  const std::size_t n = 200;
  const double p = 0.05;
  const auto b1 = analyze_bmatching(base(n, p, 1));
  const auto b3 = analyze_bmatching(base(n, p, 3));
  // Middle peer should hold more mates with more slots.
  EXPECT_GT(b3.expected_mates[n / 2], b1.expected_mates[n / 2]);
}

TEST(BMatching, MassBoundsExhaustiveSweep) {
  for (const std::size_t b0 : {1u, 2u, 4u}) {
    for (const double p : {0.02, 0.1, 0.5}) {
      const std::size_t n = 80;
      const auto result = analyze_bmatching(base(n, p, b0));
      for (core::PeerId i = 0; i < n; ++i) {
        EXPECT_LE(result.expected_mates[i], static_cast<double>(b0) + 1e-9);
        EXPECT_GE(result.expected_mates[i], 0.0);
      }
    }
  }
}

}  // namespace
}  // namespace strat::analysis
