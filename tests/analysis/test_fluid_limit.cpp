#include "analysis/fluid_limit.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "analysis/independent_matching.hpp"

namespace strat::analysis {
namespace {

TEST(FluidLimit, DensityBasics) {
  EXPECT_DOUBLE_EQ(fluid_density_alpha0(0.0, 10.0), 10.0);
  EXPECT_NEAR(fluid_density_alpha0(0.1, 10.0), 10.0 * std::exp(-1.0), 1e-12);
  EXPECT_DOUBLE_EQ(fluid_density_alpha0(-0.5, 10.0), 0.0);
  EXPECT_THROW((void)fluid_density_alpha0(0.1, 0.0), std::invalid_argument);
  EXPECT_THROW((void)fluid_density_alpha0(0.1, -1.0), std::invalid_argument);
}

TEST(FluidLimit, DensityIntegratesToOne) {
  const double d = 8.0;
  double integral = 0.0;
  const double step = 1e-4;
  for (double beta = 0.0; beta < 4.0; beta += step) {
    integral += fluid_density_alpha0(beta, d) * step;
  }
  EXPECT_NEAR(integral, 1.0, 1e-3);
}

TEST(RescaleRow, CoordinatesAndValues) {
  const std::vector<double> row{0.0, 0.5, 0.25, 0.125};
  const auto scaled = rescale_row(row, 0);
  ASSERT_EQ(scaled.size(), 3u);
  EXPECT_DOUBLE_EQ(scaled[0].beta, 1.0 / 4.0);
  EXPECT_DOUBLE_EQ(scaled[0].density, 4.0 * 0.5);
  EXPECT_DOUBLE_EQ(scaled[2].beta, 3.0 / 4.0);
}

TEST(RescaleRow, WorseOnlyFiltersBetterPeers) {
  const std::vector<double> row{0.1, 0.0, 0.2, 0.3};
  const auto all = rescale_row(row, 1, /*worse_only=*/false);
  const auto worse = rescale_row(row, 1, /*worse_only=*/true);
  EXPECT_EQ(all.size(), 3u);
  EXPECT_EQ(worse.size(), 2u);
  EXPECT_LT(all.front().beta, 0.0);
  EXPECT_GT(worse.front().beta, 0.0);
}

TEST(FluidLimit, Conjecture1BestPeerRowConverges) {
  // Scaled best-peer mate distribution approaches d e^{-beta d} as n
  // grows with p = d/n: the sup error must shrink.
  const double d = 10.0;
  auto sup_error_at = [&](std::size_t n) {
    StreamingOptions opt;
    opt.n = n;
    opt.p = d / static_cast<double>(n);
    opt.capture_rows = {0};
    const auto result = independent_1matching_streaming(opt);
    return fluid_limit_sup_error(result.rows.at(0), d);
  };
  const double e_small = sup_error_at(200);
  const double e_large = sup_error_at(3200);
  EXPECT_LT(e_large, e_small);
  EXPECT_LT(e_large, 0.5);  // densities are O(d)=10, so 0.5 is ~5% error
}

TEST(FluidLimit, BestPeerRowPointwiseMatch) {
  // Pointwise: n D(1, 1+floor(beta n)) ~= d e^{-beta d}.
  const double d = 6.0;
  const std::size_t n = 4000;
  StreamingOptions opt;
  opt.n = n;
  opt.p = d / static_cast<double>(n);
  opt.capture_rows = {0};
  const auto result = independent_1matching_streaming(opt);
  const auto& row = result.rows.at(0);
  for (const double beta : {0.05, 0.1, 0.2, 0.4}) {
    const auto j = static_cast<std::size_t>(beta * static_cast<double>(n));
    const double scaled = static_cast<double>(n) * row[j];
    EXPECT_NEAR(scaled, fluid_density_alpha0(beta, d), 0.15 * d) << "beta=" << beta;
  }
}

TEST(FluidLimit, ScaleFreeShapeAcrossN) {
  // §5.2/§6: the scaled shape does not depend on n (the paper's
  // argument that the model "does not depend on the network size").
  const double d = 12.0;
  auto scaled_at = [&](std::size_t n, double beta) {
    StreamingOptions opt;
    opt.n = n;
    opt.p = d / static_cast<double>(n);
    opt.capture_rows = {0};
    const auto result = independent_1matching_streaming(opt);
    const auto j = static_cast<std::size_t>(beta * static_cast<double>(n));
    return static_cast<double>(n) * result.rows.at(0)[j];
  };
  for (const double beta : {0.05, 0.15}) {
    const double v1 = scaled_at(1000, beta);
    const double v2 = scaled_at(2000, beta);
    EXPECT_NEAR(v1, v2, 0.08 * std::max(v1, v2)) << "beta=" << beta;
  }
}

}  // namespace
}  // namespace strat::analysis
