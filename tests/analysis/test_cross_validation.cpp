// Cross-validation across the three probability engines: exact
// enumeration (tiny n), Algorithm 2/3 (independence approximation) and
// Monte-Carlo (exact sampling). They must agree wherever their domains
// overlap; this is the test-suite analogue of Figures 7 and 9.
#include <gtest/gtest.h>

#include <tuple>

#include "analysis/exact_small.hpp"
#include "analysis/independent_bmatching.hpp"
#include "analysis/independent_matching.hpp"
#include "analysis/monte_carlo.hpp"

namespace strat::analysis {
namespace {

using Param = std::tuple<std::size_t, double, std::size_t>;  // n, p, b0

class ExactVsApproxSweep : public ::testing::TestWithParam<Param> {};

TEST_P(ExactVsApproxSweep, Algorithm3TracksExactEnumeration) {
  const auto [n, p, b0] = GetParam();
  const ExactSmallModel exact(n, p, b0);
  BMatchingOptions opt;
  opt.n = n;
  opt.p = p;
  opt.b0 = b0;
  for (core::PeerId i = 0; i < n; ++i) opt.capture_rows.push_back(i);
  const auto approx = analyze_bmatching(opt);
  // The independence approximation error is O(p^3) (Figure 7); at these
  // p values a uniform absolute bound holds across all entries.
  const double tolerance = std::max(5e-3, 3.0 * p * p * p);
  for (core::PeerId i = 0; i < n; ++i) {
    for (std::size_t c = 0; c < b0; ++c) {
      for (core::PeerId j = 0; j < n; ++j) {
        EXPECT_NEAR(approx.rows.at(i)[c][j], exact.d_choice(i, c, j), tolerance)
            << "n=" << n << " p=" << p << " b0=" << b0 << " i=" << i << " c=" << c
            << " j=" << j;
      }
      EXPECT_NEAR(approx.mass(i, c), exact.match_mass(i, c), tolerance);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, ExactVsApproxSweep,
                         ::testing::Combine(::testing::Values<std::size_t>(3, 4, 5),
                                            ::testing::Values(0.02, 0.05, 0.1),
                                            ::testing::Values<std::size_t>(1, 2)));

TEST(CrossValidation, MonteCarloMatchesExactEnumeration) {
  // MC is an unbiased sampler of the exact distribution: at tiny n the
  // histogram converges to ExactSmallModel for ANY p, including large p
  // where the independence approximation breaks.
  graph::Rng rng(11);
  const std::size_t n = 4;
  const double p = 0.6;  // far outside the approximation's comfort zone
  const ExactSmallModel exact(n, p, 2);
  MonteCarloOptions opt;
  opt.n = n;
  opt.p = p;
  opt.b0 = 2;
  opt.realizations = 60000;
  opt.tracked = {0, 3};
  const auto mc = estimate_mate_distribution(opt, rng);
  for (std::size_t t = 0; t < 2; ++t) {
    const core::PeerId peer = opt.tracked[t];
    for (std::size_t c = 0; c < 2; ++c) {
      for (core::PeerId j = 0; j < n; ++j) {
        EXPECT_NEAR(mc.probability(t, c, j), exact.d_choice(peer, c, j), 0.01)
            << "peer " << peer << " c " << c << " j " << j;
      }
    }
  }
}

TEST(CrossValidation, Algorithm2EqualsAlgorithm3FirstChoiceAtB1) {
  // Redundant engines must agree exactly, not just approximately.
  const std::size_t n = 200;
  const double p = 0.06;
  const Independent1Matching alg2(n, p);
  BMatchingOptions opt;
  opt.n = n;
  opt.p = p;
  opt.b0 = 1;
  opt.capture_rows = {0, 100, 199};
  const auto alg3 = analyze_bmatching(opt);
  for (const core::PeerId i : {0u, 100u, 199u}) {
    for (core::PeerId j = 0; j < n; ++j) {
      EXPECT_NEAR(alg3.rows.at(i)[0][j], alg2.d(i, j), 1e-13);
    }
  }
}

TEST(CrossValidation, StreamingAndMatrixAlgorithm2AgreeAtScale) {
  const std::size_t n = 600;
  const double p = 12.0 / static_cast<double>(n - 1);
  const Independent1Matching matrix(n, p);
  StreamingOptions opt;
  opt.n = n;
  opt.p = p;
  opt.capture_rows = {0, 300, 599};
  const auto streamed = independent_1matching_streaming(opt);
  for (const core::PeerId i : {0u, 300u, 599u}) {
    const auto& row = streamed.rows.at(i);
    for (core::PeerId j = 0; j < n; ++j) {
      EXPECT_NEAR(row[j], matrix.d(i, j), 1e-13);
    }
  }
  for (core::PeerId i = 0; i < n; ++i) {
    EXPECT_NEAR(streamed.mass[i], matrix.mass(i), 1e-11);
  }
}

}  // namespace
}  // namespace strat::analysis
