// Integration: direct checks of the paper's headline quantitative
// claims, each annotated with its section.
#include <gtest/gtest.h>

#include <cmath>

#include "core/churn.hpp"
#include "core/dynamics.hpp"
#include "core/metrics.hpp"
#include "core/solver.hpp"
#include "graph/erdos_renyi.hpp"

namespace strat {
namespace {

using core::GlobalRanking;
using core::Matching;
using core::PeerId;

TEST(PaperClaims, S3_UniqueStableConfigurationExists) {
  // §3: a global-ranking instance has exactly one stable configuration.
  // We verify by checking that ANY stable configuration found by local
  // search equals the solver's output (uniqueness is exercised more
  // thoroughly in test_theorem1).
  graph::Rng rng(1);
  const std::size_t n = 50;
  const GlobalRanking ranking = GlobalRanking::identity(n);
  const graph::Graph g = graph::erdos_renyi_gnd(n, 8.0, rng);
  const core::ExplicitAcceptance acc(g, ranking);
  const Matching stable =
      core::stable_configuration(acc, ranking, std::vector<std::uint32_t>(n, 2));
  EXPECT_TRUE(core::is_stable(acc, ranking, stable));
}

TEST(PaperClaims, S3_ConvergenceWithinDUnits) {
  // §3: "the stable configuration is reached in less than n d
  // initiatives (that is d base units)" — Figure 1's setting.
  graph::Rng rng(2);
  const std::size_t n = 1000;
  const double d = 10.0;
  const GlobalRanking ranking = GlobalRanking::identity(n);
  const graph::Graph g = graph::erdos_renyi_gnd(n, d, rng);
  const core::ExplicitAcceptance acc(g, ranking);
  core::DynamicsEngine engine(acc, ranking, std::vector<std::uint32_t>(n, 1),
                              core::Strategy::kBestMate, rng);
  const double units = engine.run_until_stable(d);
  EXPECT_LE(units, d);
}

TEST(PaperClaims, S3_RemovingGoodPeerCausesMoreDisorderThanBadPeer) {
  // §3 / Figure 2: "due to a domino effect, removing a good peer
  // generally induces more disorder than removing a bad peer."
  // Averaged over several instances for robustness.
  const std::size_t n = 400;
  const double d = 10.0;
  double disorder_good = 0.0;
  double disorder_bad = 0.0;
  const int trials = 8;
  for (int t = 0; t < trials; ++t) {
    graph::Rng rng(static_cast<std::uint64_t>(100 + t));
    const GlobalRanking ranking = GlobalRanking::identity(n);
    const graph::Graph g = graph::erdos_renyi_gnd(n, d, rng);
    const core::ExplicitAcceptance acc(g, ranking);
    const Matching stable =
        core::stable_configuration(acc, ranking, std::vector<std::uint32_t>(n, 1));
    auto removal_disorder = [&](PeerId victim) {
      graph::Graph perturbed = g;
      perturbed.isolate(victim);
      const core::ExplicitAcceptance acc2(perturbed, ranking);
      std::vector<std::uint32_t> caps(n, 1);
      caps[victim] = 0;
      const Matching new_stable = core::stable_configuration(acc2, ranking, caps);
      Matching seeded{std::vector<std::uint32_t>(caps)};
      for (PeerId p = 0; p < n; ++p) {
        const PeerId q = stable.mate(p);
        if (q != core::kNoPeer && q > p && p != victim && q != victim) {
          seeded.connect(p, q, ranking);
        }
      }
      return core::disorder_1matching(seeded, new_stable, ranking);
    };
    disorder_good += removal_disorder(0);                                // best peer
    disorder_bad += removal_disorder(static_cast<PeerId>(n - 10));       // near-worst
  }
  EXPECT_GT(disorder_good / trials, disorder_bad / trials);
}

TEST(PaperClaims, S4_ConstantB0MatchingClustersHaveSizeB0Plus1) {
  // §4.1: complete graph + constant b0 -> clusters of exactly b0+1.
  for (const std::uint32_t b0 : {2u, 3u, 4u, 5u}) {
    const std::size_t n = (b0 + 1) * 6;
    const Matching m = core::stable_configuration_complete(
        std::vector<std::uint32_t>(n, b0));
    const auto stats = core::cluster_stats(m);
    EXPECT_DOUBLE_EQ(stats.vertex_mean_size, static_cast<double>(b0 + 1)) << "b0=" << b0;
    EXPECT_EQ(stats.largest, b0 + 1u);
  }
}

TEST(PaperClaims, S4_TruncatedRemainderCluster) {
  // §4.1: "the remainder, if any, is a truncated complete subgraph."
  const Matching m = core::stable_configuration_complete(std::vector<std::uint32_t>(10, 2));
  // 10 = 3+3+3+1: the last peer ends up alone (a truncated cluster).
  const auto stats = core::cluster_stats(m);
  EXPECT_EQ(stats.largest, 3u);
  EXPECT_EQ(m.degree(9), 0u);
}

TEST(PaperClaims, S4_PhaseTransitionInSigma) {
  // §4.2 / Figure 6: around sigma ~ 0.15 the cluster size explodes.
  const std::size_t n = 30000;
  auto mean_cluster = [&](double sigma, std::uint64_t seed) {
    graph::Rng rng(seed);
    std::vector<std::uint32_t> caps(n);
    for (auto& b : caps) {
      b = static_cast<std::uint32_t>(
          std::max(1.0, std::round(rng.normal(6.0, sigma))));
    }
    const Matching m = core::stable_configuration_complete(caps);
    return core::cluster_stats(m).vertex_mean_size;
  };
  const double before = mean_cluster(0.01, 3);
  const double after = mean_cluster(0.5, 4);
  EXPECT_NEAR(before, 7.0, 0.5);  // essentially constant 6-matching
  EXPECT_GT(after, 20.0 * before);
}

TEST(PaperClaims, S4_MmoDropsAcrossTheTransition) {
  // §4.2 / Figure 6: as clusters explode, the MMO *decreases*.
  const std::size_t n = 30000;
  const GlobalRanking ranking = GlobalRanking::identity(n);
  auto mmo_at = [&](double sigma, std::uint64_t seed) {
    graph::Rng rng(seed);
    std::vector<std::uint32_t> caps(n);
    for (auto& b : caps) {
      b = static_cast<std::uint32_t>(
          std::max(1.0, std::round(rng.normal(6.0, sigma))));
    }
    const Matching m = core::stable_configuration_complete(caps);
    return core::mean_max_offset(m, ranking);
  };
  const double constant_mmo = mmo_at(0.01, 5);
  const double variable_mmo = mmo_at(0.5, 6);
  EXPECT_NEAR(constant_mmo, core::mmo_closed_form(6), 0.2);
  EXPECT_LT(variable_mmo, constant_mmo);
}

TEST(PaperClaims, S4_B0AtLeast3ForConnectivityHeuristic) {
  // §4.1: 1-regular collaboration graphs are disconnected; 2-regular
  // ones are unions of cycles; b0 >= 3 is the connectivity lower bound
  // argument behind BitTorrent's 4 (3 TFT + 1) default.
  const Matching m1 = core::stable_configuration_complete(std::vector<std::uint32_t>(12, 1));
  EXPECT_GT(core::cluster_stats(m1).components, 1u);
  const Matching m2 = core::stable_configuration_complete(std::vector<std::uint32_t>(12, 2));
  EXPECT_GT(core::cluster_stats(m2).components, 1u);
}

TEST(PaperClaims, S3_ChurnDisorderRoughlyProportionalToRate) {
  // §3 / Figure 3: "The average disorder is roughly proportional to the
  // churn rate." Check monotonicity across three rates (proportionality
  // itself is noisy at test scale).
  auto plateau = [](double rate, std::uint64_t seed) {
    graph::Rng rng(seed);
    core::ChurnParams p;
    p.initial_peers = 300;
    p.expected_degree = 10.0;
    p.churn_rate = rate;
    core::ChurnSimulator sim(p, rng);
    sim.run(8.0, 1);  // burn-in
    const auto traj = sim.run(8.0, 2);
    double mean = 0.0;
    for (const auto& pt : traj) mean += pt.disorder;
    return mean / static_cast<double>(traj.size());
  };
  const double low = plateau(0.0005, 21);
  const double mid = plateau(0.01, 22);
  const double high = plateau(0.03, 23);
  EXPECT_LT(low, mid);
  EXPECT_LT(mid, high);
}

}  // namespace
}  // namespace strat
