// Integration: the Figure 9 agreement between Algorithm 3 and exact
// Monte-Carlo simulation, at a test-sized scale.
#include <gtest/gtest.h>

#include "analysis/independent_bmatching.hpp"
#include "analysis/monte_carlo.hpp"

namespace strat {
namespace {

TEST(ModelVsMonteCarlo, Figure9ShapeAtReducedScale) {
  // Paper: n = 5000, p = 1%, b0 = 2, peer 3000, 10^6 realizations.
  // Test: n = 500, same mean degree (p = 50/499 would be too dense; we
  // keep d = 20), peer 300, 1500 realizations — enough to check the
  // distribution shapes band-wise.
  const std::size_t n = 500;
  const double p = 20.0 / static_cast<double>(n - 1);
  const core::PeerId peer = 300;

  analysis::BMatchingOptions model_opt;
  model_opt.n = n;
  model_opt.p = p;
  model_opt.b0 = 2;
  model_opt.capture_rows = {peer};
  const auto model = analysis::analyze_bmatching(model_opt);

  graph::Rng rng(4242);
  analysis::MonteCarloOptions mc_opt;
  mc_opt.n = n;
  mc_opt.p = p;
  mc_opt.b0 = 2;
  mc_opt.realizations = 1500;
  mc_opt.tracked = {peer};
  const auto mc = analysis::estimate_mate_distribution(mc_opt, rng);

  // Band-wise comparison of first- and second-choice distributions.
  auto band = [&](const std::vector<double>& row, std::size_t lo, std::size_t hi) {
    double sum = 0.0;
    for (std::size_t j = lo; j < hi; ++j) sum += row[j];
    return sum;
  };
  for (std::size_t c = 0; c < 2; ++c) {
    const auto& model_row = model.rows.at(peer)[c];
    const auto mc_row = mc.probability_row(0, c);
    for (const auto& [lo, hi] : std::vector<std::pair<std::size_t, std::size_t>>{
             {200, 280}, {280, 320}, {320, 400}, {0, 200}, {400, 500}}) {
      EXPECT_NEAR(band(mc_row, lo, hi), band(model_row, lo, hi), 0.06)
          << "choice " << c << " band " << lo << ".." << hi;
    }
    // Total match mass agrees.
    EXPECT_NEAR(mc.match_mass(0, c), model.mass(peer, c), 0.05) << "choice " << c;
  }
}

TEST(ModelVsMonteCarlo, FirstChoiceStochasticallyBetterThanSecond) {
  // The first choice is the *best* mate, so its distribution puts
  // strictly more mass on ranks better than the peer's own than the
  // second choice does — in the model and in Monte Carlo alike.
  const std::size_t n = 400;
  const double p = 18.0 / static_cast<double>(n - 1);
  const core::PeerId peer = 200;

  analysis::BMatchingOptions opt;
  opt.n = n;
  opt.p = p;
  opt.b0 = 2;
  opt.capture_rows = {peer};
  const auto model = analysis::analyze_bmatching(opt);
  const auto& first = model.rows.at(peer)[0];
  const auto& second = model.rows.at(peer)[1];
  auto mass_above = [&](const std::vector<double>& row) {
    double sum = 0.0;
    for (std::size_t j = 0; j < peer; ++j) sum += row[j];
    return sum;
  };
  EXPECT_GT(mass_above(first), mass_above(second) + 0.05);

  graph::Rng rng(99);
  analysis::MonteCarloOptions mc_opt;
  mc_opt.n = n;
  mc_opt.p = p;
  mc_opt.b0 = 2;
  mc_opt.realizations = 800;
  mc_opt.tracked = {peer};
  const auto mc = analysis::estimate_mate_distribution(mc_opt, rng);
  EXPECT_GT(mass_above(mc.probability_row(0, 0)), mass_above(mc.probability_row(0, 1)) + 0.05);
}

}  // namespace
}  // namespace strat
