// Parameterized property sweeps across the whole stack: invariants
// that must hold for every sensible parameter combination, not just
// the figures' settings.
#include <gtest/gtest.h>

#include <tuple>

#include "bittorrent/swarm.hpp"
#include "core/bilateral.hpp"
#include "core/blocking.hpp"
#include "core/dynamics.hpp"
#include "core/solver.hpp"
#include "graph/erdos_renyi.hpp"

namespace strat {
namespace {

// ---------------------------------------------------------------- swarm

using SwarmParam = std::tuple<std::size_t, std::size_t, double, bool>;
// (leechers, tft_slots, neighbor_degree, post_flashcrowd)

class SwarmInvariantSweep : public ::testing::TestWithParam<SwarmParam> {};

TEST_P(SwarmInvariantSweep, ConservationAndBounds) {
  const auto [peers, tft, degree, post] = GetParam();
  graph::Rng rng(7000 + peers + tft * 13 + static_cast<std::size_t>(degree));
  bt::SwarmConfig cfg;
  cfg.num_peers = peers;
  cfg.seeds = 1;
  cfg.num_pieces = 64;
  cfg.piece_kb = 32.0;
  cfg.tft_slots = tft;
  cfg.neighbor_degree = degree;
  cfg.post_flashcrowd = post;
  cfg.initial_completion = post ? 0.5 : 0.0;
  std::vector<double> bw(peers);
  for (std::size_t i = 0; i < peers; ++i) {
    bw[i] = 200.0 + 17.0 * static_cast<double>(i);
  }
  bt::Swarm swarm(cfg, bw, rng);
  const std::size_t rounds = 15;
  swarm.run(rounds);

  // Byte conservation.
  double uploaded = 0.0;
  double downloaded = 0.0;
  for (core::PeerId p = 0; p < swarm.peer_count(); ++p) {
    uploaded += swarm.stats(p).uploaded_kb;
    downloaded += swarm.stats(p).downloaded_kb;
  }
  EXPECT_NEAR(uploaded, downloaded, 1e-6);

  // Capacity bounds, piece bounds, seed integrity.
  const double seconds = static_cast<double>(rounds) * cfg.round_seconds;
  for (core::PeerId p = 0; p < swarm.peer_count(); ++p) {
    EXPECT_LE(swarm.stats(p).uploaded_kb, swarm.stats(p).upload_kbps / 8.0 * seconds + 1e-6);
    EXPECT_LE(swarm.stats(p).pieces, 64u);
  }
  EXPECT_EQ(swarm.stats(static_cast<core::PeerId>(peers)).pieces, 64u);
  EXPECT_DOUBLE_EQ(swarm.stats(static_cast<core::PeerId>(peers)).downloaded_kb, 0.0);

  // Availability counters equal the sum of holdings.
  const auto stats = swarm.availability_stats();
  double holdings = 0.0;
  for (core::PeerId p = 0; p < swarm.peer_count(); ++p) {
    holdings += static_cast<double>(swarm.stats(p).pieces);
  }
  EXPECT_NEAR(stats.mean * 64.0, holdings, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Grid, SwarmInvariantSweep,
                         ::testing::Combine(::testing::Values<std::size_t>(20, 60),
                                            ::testing::Values<std::size_t>(1, 3, 5),
                                            ::testing::Values(8.0, 15.0),
                                            ::testing::Bool()));

// ------------------------------------------------------------ bilateral

using BilateralParam = std::tuple<std::uint32_t, std::uint32_t, int>;
// (upload_slots, download_slots, policy)

class BilateralSweep : public ::testing::TestWithParam<BilateralParam> {};

TEST_P(BilateralSweep, StableAndConsistent) {
  const auto [up, down, policy_ix] = GetParam();
  graph::Rng rng(8000 + up * 31 + down * 7 + static_cast<std::uint32_t>(policy_ix));
  const std::size_t n = 60;
  const core::GlobalRanking ranking = core::GlobalRanking::identity(n);
  const graph::Graph g = graph::erdos_renyi_gnd(n, 10.0, rng);
  const core::ExplicitAcceptance acc(g, ranking);
  core::BilateralConfig cfg;
  cfg.upload_slots = up;
  cfg.download_slots = down;
  cfg.policy = static_cast<core::ServerPolicy>(policy_ix);
  const auto a = core::bilateral_assignment(acc, ranking, cfg, rng);
  EXPECT_TRUE(core::bilateral_is_stable(acc, ranking, cfg, a));
  for (core::PeerId p = 0; p < n; ++p) {
    EXPECT_LE(a.serves[p].size(), up);
    EXPECT_LE(a.sources[p].size(), down);
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, BilateralSweep,
                         ::testing::Combine(::testing::Values<std::uint32_t>(1, 2, 4),
                                            ::testing::Values<std::uint32_t>(1, 3),
                                            ::testing::Values(0, 1)));

// ----------------------------------------------------- solver vs dynamics

using EquivalenceParam = std::tuple<std::size_t, double>;

class SolverDynamicsEquivalence : public ::testing::TestWithParam<EquivalenceParam> {};

TEST_P(SolverDynamicsEquivalence, FixedPointIsAlgorithm1Output) {
  // For any (n, d): once best-mate dynamics stop making progress, the
  // configuration equals Algorithm 1's output exactly.
  const auto [n, d] = GetParam();
  graph::Rng rng(9000 + n + static_cast<std::size_t>(d * 10));
  const core::GlobalRanking ranking = core::GlobalRanking::identity(n);
  const graph::Graph g = graph::erdos_renyi_gnd(n, d, rng);
  const core::ExplicitAcceptance acc(g, ranking);
  core::DynamicsEngine engine(acc, ranking, std::vector<std::uint32_t>(n, 2),
                              core::Strategy::kBestMate, rng);
  engine.run_until_stable(200.0);
  ASSERT_DOUBLE_EQ(engine.disorder(), 0.0);
  for (core::PeerId p = 0; p < n; ++p) {
    const auto a = engine.current().mates(p);
    const auto b = engine.stable().mates(p);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t k = 0; k < a.size(); ++k) EXPECT_EQ(a[k], b[k]);
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, SolverDynamicsEquivalence,
                         ::testing::Combine(::testing::Values<std::size_t>(50, 150),
                                            ::testing::Values(4.0, 12.0, 25.0)));

}  // namespace
}  // namespace strat
