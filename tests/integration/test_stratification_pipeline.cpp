// Integration: the full §6 pipeline — bandwidth model -> global ranking
// -> matching model -> protocol-level swarm — tells one consistent
// stratification story.
#include <gtest/gtest.h>

#include <algorithm>

#include "bittorrent/bandwidth.hpp"
#include "bittorrent/efficiency.hpp"
#include "bittorrent/swarm.hpp"
#include "core/metrics.hpp"
#include "core/solver.hpp"
#include "graph/erdos_renyi.hpp"
#include "sim/stats.hpp"

namespace strat {
namespace {

TEST(StratificationPipeline, MatchingModelPredictsRankCloseMates) {
  // Matching-model side: solve one instance with Saroiu bandwidths and
  // measure mate rank offsets.
  const std::size_t n = 600;
  const double d = 20.0;
  const bt::BandwidthModel model = bt::BandwidthModel::saroiu2002();
  const auto bw = model.representative_sample(n);
  std::vector<double> per_slot(n);
  for (std::size_t i = 0; i < n; ++i) per_slot[i] = bw[i] / 4.0;
  const core::GlobalRanking ranking = core::GlobalRanking::from_scores(per_slot);
  graph::Rng rng(7);
  const graph::Graph g = graph::erdos_renyi_gnd(n, d, rng);
  const core::ExplicitAcceptance acc(g, ranking);
  const core::Matching m =
      core::stable_configuration(acc, ranking, std::vector<std::uint32_t>(n, 3));
  // Mean |rank offset| between TFT mates is a small fraction of n.
  const double offset = core::mean_abs_offset(m, ranking);
  EXPECT_GT(offset, 0.0);
  EXPECT_LT(offset / static_cast<double>(n), 0.12);
}

TEST(StratificationPipeline, SwarmAgreesWithMatchingModelOnPartnerRanks) {
  // Protocol side at the same scale: the swarm's reciprocated TFT
  // pairs show the same rank-closeness the matching model predicts.
  const std::size_t n = 100;
  const bt::BandwidthModel model = bt::BandwidthModel::saroiu2002();
  const auto bw = model.representative_sample(n);

  // Matching model offsets (normalized).
  std::vector<double> per_slot(n);
  for (std::size_t i = 0; i < n; ++i) per_slot[i] = bw[i] / 4.0;
  const core::GlobalRanking ranking = core::GlobalRanking::from_scores(per_slot);
  graph::Rng rng_model(11);
  const graph::Graph g = graph::erdos_renyi_gnd(n, 30.0, rng_model);
  const core::ExplicitAcceptance acc(g, ranking);
  const core::Matching matched =
      core::stable_configuration(acc, ranking, std::vector<std::uint32_t>(n, 3));
  const double model_offset =
      core::mean_abs_offset(matched, ranking) / static_cast<double>(n);

  // Swarm offsets: long-lived payload, bootstrap excluded.
  bt::SwarmConfig cfg;
  cfg.num_peers = n;
  cfg.seeds = 1;
  cfg.num_pieces = 2048;
  cfg.piece_kb = 1024.0;
  cfg.neighbor_degree = 30.0;
  cfg.initial_completion = 0.5;
  graph::Rng rng_swarm(12);
  bt::Swarm swarm(cfg, bw, rng_swarm);
  swarm.run(20);
  swarm.reset_stratification();
  swarm.run(30);
  const auto report = swarm.stratification();

  // Both mechanisms stratify: offsets well below random pairing (~1/3)
  // and within a factor ~4 of each other.
  EXPECT_LT(model_offset, 0.15);
  EXPECT_LT(report.mean_normalized_offset, 0.35);
  EXPECT_GT(report.partner_rank_correlation, 0.4);
  EXPECT_LT(report.mean_normalized_offset, std::max(0.12, model_offset * 6.0));
}

TEST(StratificationPipeline, EfficiencyCurveFeedsOnBandwidthModel) {
  // End-to-end Figure 11 smoke: curve generation from the bandwidth
  // model works at moderate n and preserves the qualitative shape.
  const bt::BandwidthModel model = bt::BandwidthModel::saroiu2002();
  bt::EfficiencyOptions opt;
  opt.n = 300;
  const auto curve = bt::expected_efficiency_curve(model, opt);
  ASSERT_EQ(curve.size(), 300u);
  EXPECT_LT(curve.front().efficiency, 1.05);
  const double tail = curve[290].efficiency;
  EXPECT_GT(tail, 0.9);
}

TEST(StratificationPipeline, FasterPeersDownloadFaster) {
  // QoS consequence of stratification (the premise of Figure 11): the
  // download rate a peer obtains through TFT while leeching correlates
  // with its upload rank. Finished peers leave (stay_as_seed = false)
  // so late-stage seed generosity does not wash the signal out.
  const std::size_t n = 80;
  const bt::BandwidthModel model = bt::BandwidthModel::saroiu2002();
  const auto bw = model.representative_sample(n);
  bt::SwarmConfig cfg;
  cfg.num_peers = n;
  cfg.seeds = 2;
  cfg.num_pieces = 256;
  cfg.piece_kb = 256.0;
  cfg.neighbor_degree = 25.0;
  cfg.initial_completion = 0.4;
  cfg.stay_as_seed = false;
  graph::Rng rng(14);
  bt::Swarm swarm(cfg, bw, rng);
  swarm.run(200);
  std::vector<double> ranks;
  std::vector<double> rates;
  for (core::PeerId p = 0; p < n; ++p) {
    const double rate = swarm.leech_download_kbps(p);
    if (rate <= 0.0) continue;
    ranks.push_back(static_cast<double>(p));  // bw sorted descending
    rates.push_back(rate);
  }
  ASSERT_GT(ranks.size(), n / 2);
  // Worse rank (slower upload) -> slower download: negative correlation.
  EXPECT_LT(sim::spearman(ranks, rates), -0.3);
}

}  // namespace
}  // namespace strat
