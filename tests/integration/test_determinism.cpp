// Determinism regression: a single seed must reproduce the whole
// pipeline bit-for-bit — the raw Rng stream, the Erdős–Rényi sample, and
// the stable configuration computed on top of it. Guards against anyone
// introducing hidden global state (time, std::rand, unordered iteration)
// into the graph generators or the solver.
#include <gtest/gtest.h>

#include <vector>

#include "core/acceptance.hpp"
#include "core/ranking.hpp"
#include "core/solver.hpp"
#include "graph/erdos_renyi.hpp"
#include "graph/graph.hpp"
#include "graph/rng.hpp"

namespace strat {
namespace {

/// Flattens a graph's (finalized, hence sorted) adjacency for comparison.
std::vector<std::vector<graph::Vertex>> adjacency_of(const graph::Graph& g) {
  std::vector<std::vector<graph::Vertex>> adj(g.order());
  for (graph::Vertex v = 0; v < g.order(); ++v) {
    const auto nbrs = g.neighbors(v);
    adj[v].assign(nbrs.begin(), nbrs.end());
  }
  return adj;
}

/// Flattens a matching's mate lists for comparison.
std::vector<std::vector<core::PeerId>> mates_of(const core::Matching& m) {
  std::vector<std::vector<core::PeerId>> mates(m.size());
  for (core::PeerId p = 0; p < m.size(); ++p) {
    const auto span = m.mates(p);
    mates[p].assign(span.begin(), span.end());
  }
  return mates;
}

TEST(Determinism, SameSeedSameErdosRenyiGraph) {
  constexpr std::size_t kN = 500;
  constexpr double kDegree = 12.0;
  graph::Rng rng_a(42);
  graph::Rng rng_b(42);
  const graph::Graph ga = graph::erdos_renyi_gnd(kN, kDegree, rng_a);
  const graph::Graph gb = graph::erdos_renyi_gnd(kN, kDegree, rng_b);
  ASSERT_EQ(ga.order(), gb.order());
  ASSERT_EQ(ga.size(), gb.size());
  EXPECT_EQ(adjacency_of(ga), adjacency_of(gb));
}

TEST(Determinism, SameSeedSameGnpGraph) {
  graph::Rng rng_a(7);
  graph::Rng rng_b(7);
  const graph::Graph ga = graph::erdos_renyi_gnp(300, 0.05, rng_a);
  const graph::Graph gb = graph::erdos_renyi_gnp(300, 0.05, rng_b);
  EXPECT_EQ(adjacency_of(ga), adjacency_of(gb));
}

TEST(Determinism, SameSeedSameStableMatchingEndToEnd) {
  constexpr std::size_t kN = 400;
  constexpr double kDegree = 10.0;
  constexpr std::uint32_t kB0 = 3;

  auto run = [&](std::uint64_t seed) {
    graph::Rng rng(seed);
    const core::GlobalRanking ranking = core::GlobalRanking::identity(kN);
    const graph::Graph g = graph::erdos_renyi_gnd(kN, kDegree, rng);
    const core::ExplicitAcceptance acc(g, ranking);
    return core::stable_configuration(acc, ranking,
                                      std::vector<std::uint32_t>(kN, kB0));
  };

  const core::Matching ma = run(123);
  const core::Matching mb = run(123);
  ASSERT_EQ(ma.size(), mb.size());
  EXPECT_EQ(ma.connection_count(), mb.connection_count());
  EXPECT_EQ(mates_of(ma), mates_of(mb));
}

TEST(Determinism, DifferentSeedsGiveDifferentGraphs) {
  graph::Rng rng_a(1);
  graph::Rng rng_b(2);
  const graph::Graph ga = graph::erdos_renyi_gnd(500, 12.0, rng_a);
  const graph::Graph gb = graph::erdos_renyi_gnd(500, 12.0, rng_b);
  EXPECT_NE(adjacency_of(ga), adjacency_of(gb));
}

TEST(Determinism, RngStreamUnaffectedByGraphConstructionOrder) {
  // Consuming the generator through a graph build must leave both
  // replicas in the same state, so downstream draws also agree.
  graph::Rng rng_a(99);
  graph::Rng rng_b(99);
  (void)graph::erdos_renyi_gnd(200, 8.0, rng_a);
  (void)graph::erdos_renyi_gnd(200, 8.0, rng_b);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(rng_a(), rng_b());
}

}  // namespace
}  // namespace strat
