#include "core/blocking.hpp"

#include <gtest/gtest.h>

#include "graph/erdos_renyi.hpp"
#include "graph/rng.hpp"

namespace strat::core {
namespace {

struct Fixture {
  GlobalRanking ranking = GlobalRanking::identity(4);
  CompleteAcceptance acc{4, ranking};
};

TEST(Wishes, FreeSlotAlwaysWishes) {
  Fixture f;
  Matching m(4, 1);
  EXPECT_TRUE(wishes(m, f.ranking, 3, 2));
  EXPECT_TRUE(wishes(m, f.ranking, 0, 3));  // even the best wishes a worse peer
}

TEST(Wishes, FullPeerWishesOnlyBetterThanWorst) {
  Fixture f;
  Matching m(4, 1);
  m.connect(1, 2, f.ranking);
  EXPECT_TRUE(wishes(m, f.ranking, 1, 0));   // 0 better than current mate 2
  EXPECT_FALSE(wishes(m, f.ranking, 1, 3));  // 3 worse than 2
  EXPECT_FALSE(wishes(m, f.ranking, 1, 2));  // its own mate is not an upgrade
}

TEST(BlockingPair, EmptyConfigurationAllAcceptablePairsBlock) {
  Fixture f;
  const Matching m(4, 1);
  for (PeerId p = 0; p < 4; ++p) {
    for (PeerId q = 0; q < 4; ++q) {
      if (p == q) continue;
      EXPECT_TRUE(is_blocking_pair(f.acc, f.ranking, m, p, q));
    }
  }
}

TEST(BlockingPair, RespectsAcceptance) {
  GlobalRanking ranking = GlobalRanking::identity(3);
  graph::Graph g(3);
  g.add_edge(0, 1);
  g.finalize();
  const ExplicitAcceptance acc(g, ranking);
  const Matching m(3, 1);
  EXPECT_TRUE(is_blocking_pair(acc, ranking, m, 0, 1));
  EXPECT_FALSE(is_blocking_pair(acc, ranking, m, 0, 2));  // not acceptable
}

TEST(BlockingPair, MatchedPairNeverBlocks) {
  Fixture f;
  Matching m(4, 1);
  m.connect(0, 1, f.ranking);
  EXPECT_FALSE(is_blocking_pair(f.acc, f.ranking, m, 0, 1));
}

TEST(BlockingPair, SelfNeverBlocks) {
  Fixture f;
  const Matching m(4, 1);
  EXPECT_FALSE(is_blocking_pair(f.acc, f.ranking, m, 2, 2));
}

TEST(BlockingPair, UpgradeOverWorseMate) {
  Fixture f;
  Matching m(4, 1);
  m.connect(0, 3, f.ranking);
  m.connect(1, 2, f.ranking);
  // 0 (matched to 3) and 2 (matched to 1): 0 wants 2 over 3, but 2
  // prefers its current mate 1 over 0? No: rank(0) < rank(1), so 2
  // wishes 0 too -> blocking.
  EXPECT_TRUE(is_blocking_pair(f.acc, f.ranking, m, 0, 2));
  // 3 and 2: 2 is full with the better mate 1 -> not blocking.
  EXPECT_FALSE(is_blocking_pair(f.acc, f.ranking, m, 3, 2));
}

TEST(ExecuteBlockingPair, DropsWorstMatesWhenFull) {
  Fixture f;
  Matching m(4, 1);
  m.connect(0, 3, f.ranking);
  m.connect(1, 2, f.ranking);
  execute_blocking_pair(f.ranking, m, 0, 1);
  EXPECT_TRUE(m.are_matched(0, 1));
  EXPECT_EQ(m.degree(2), 0u);  // dropped by 1
  EXPECT_EQ(m.degree(3), 0u);  // dropped by 0
  EXPECT_EQ(m.connection_count(), 1u);
}

TEST(ExecuteBlockingPair, UsesFreeSlotsWhenAvailable) {
  Fixture f;
  Matching m(4, 2);
  m.connect(0, 3, f.ranking);
  execute_blocking_pair(f.ranking, m, 0, 1);
  EXPECT_TRUE(m.are_matched(0, 1));
  EXPECT_TRUE(m.are_matched(0, 3));  // kept: capacity 2
}

TEST(FindBlockingPair, StableConfigurationHasNone) {
  Fixture f;
  Matching m(4, 1);
  m.connect(0, 1, f.ranking);
  m.connect(2, 3, f.ranking);
  EXPECT_FALSE(find_blocking_pair(f.acc, f.ranking, m).has_value());
  EXPECT_TRUE(is_stable(f.acc, f.ranking, m));
}

TEST(FindBlockingPair, DetectsInstability) {
  Fixture f;
  Matching m(4, 1);
  m.connect(0, 2, f.ranking);
  m.connect(1, 3, f.ranking);
  // 1 and 2 prefer each other to their current mates.
  const auto pair = find_blocking_pair(f.acc, f.ranking, m);
  ASSERT_TRUE(pair.has_value());
  EXPECT_TRUE(is_blocking_pair(f.acc, f.ranking, m, pair->first, pair->second));
}

TEST(AllBlockingPairs, CountsEmptyCompleteGraph) {
  Fixture f;
  const Matching m(4, 1);
  // Every one of the 6 unordered pairs blocks the empty configuration.
  EXPECT_EQ(all_blocking_pairs(f.acc, f.ranking, m).size(), 6u);
}

TEST(AllBlockingPairs, ReportsEachPairOnce) {
  Fixture f;
  Matching m(4, 1);
  m.connect(0, 1, f.ranking);
  const auto pairs = all_blocking_pairs(f.acc, f.ranking, m);
  // Remaining blocking pair: {2, 3} only.
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].first, 2u);
  EXPECT_EQ(pairs[0].second, 3u);
}

TEST(Stability, RandomInstanceStableIffNoBlockingPairBruteForce) {
  graph::Rng rng(77);
  const GlobalRanking ranking = GlobalRanking::identity(12);
  for (int trial = 0; trial < 20; ++trial) {
    const graph::Graph g = graph::erdos_renyi_gnp(12, 0.4, rng);
    const ExplicitAcceptance acc(g, ranking);
    Matching m(12, 1);
    // Random valid 1-matching over acceptance edges.
    for (PeerId p = 0; p < 12; ++p) {
      if (m.is_full(p) || acc.degree(p) == 0) continue;
      const PeerId q = acc.neighbor(p, static_cast<std::size_t>(rng.below(acc.degree(p))));
      if (!m.is_full(q) && !m.are_matched(p, q)) m.connect(p, q, ranking);
    }
    // is_stable must agree with an exhaustive scan.
    bool brute_stable = true;
    for (PeerId p = 0; p < 12 && brute_stable; ++p) {
      for (PeerId q = static_cast<PeerId>(p + 1); q < 12; ++q) {
        if (is_blocking_pair(acc, ranking, m, p, q)) {
          brute_stable = false;
          break;
        }
      }
    }
    EXPECT_EQ(is_stable(acc, ranking, m), brute_stable);
  }
}

}  // namespace
}  // namespace strat::core
