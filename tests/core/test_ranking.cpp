#include "core/ranking.hpp"

#include <gtest/gtest.h>

namespace strat::core {
namespace {

TEST(GlobalRanking, IdentityConvention) {
  const GlobalRanking r = GlobalRanking::identity(5);
  EXPECT_EQ(r.size(), 5u);
  for (PeerId p = 0; p < 5; ++p) {
    EXPECT_EQ(r.rank_of(p), p);
    EXPECT_EQ(r.peer_at(p), p);
  }
  EXPECT_TRUE(r.prefers(0, 1));
  EXPECT_TRUE(r.prefers(3, 4));
  EXPECT_FALSE(r.prefers(4, 3));
}

TEST(GlobalRanking, FromScoresOrdersByScoreDescending) {
  const GlobalRanking r = GlobalRanking::from_scores({1.0, 10.0, 5.0});
  EXPECT_EQ(r.peer_at(0), 1u);
  EXPECT_EQ(r.peer_at(1), 2u);
  EXPECT_EQ(r.peer_at(2), 0u);
  EXPECT_EQ(r.rank_of(1), 0u);
  EXPECT_EQ(r.rank_of(0), 2u);
  EXPECT_TRUE(r.prefers(1, 2));
  EXPECT_TRUE(r.prefers(2, 0));
}

TEST(GlobalRanking, TiesRejected) {
  EXPECT_THROW((void)GlobalRanking::from_scores({1.0, 2.0, 1.0}), std::invalid_argument);
}

TEST(GlobalRanking, ScoreAccess) {
  const GlobalRanking r = GlobalRanking::from_scores({2.5, 7.0});
  EXPECT_DOUBLE_EQ(r.score(0), 2.5);
  EXPECT_DOUBLE_EQ(r.score(1), 7.0);
  EXPECT_THROW((void)r.score(2), std::out_of_range);
}

TEST(GlobalRanking, RankQueriesValidateIds) {
  const GlobalRanking r = GlobalRanking::identity(3);
  EXPECT_THROW((void)r.rank_of(3), std::out_of_range);
  EXPECT_THROW((void)r.peer_at(3), std::out_of_range);
}

TEST(GlobalRanking, AppendExtendsRanking) {
  GlobalRanking r = GlobalRanking::from_scores({3.0, 1.0});
  const PeerId id = r.append(2.0);
  EXPECT_EQ(id, 2u);
  EXPECT_EQ(r.size(), 3u);
  EXPECT_EQ(r.peer_at(0), 0u);
  EXPECT_EQ(r.peer_at(1), 2u);  // the new peer slots into the middle
  EXPECT_EQ(r.peer_at(2), 1u);
  EXPECT_EQ(r.rank_of(2), 1u);
}

TEST(GlobalRanking, AppendRejectsDuplicateScore) {
  GlobalRanking r = GlobalRanking::from_scores({3.0, 1.0});
  EXPECT_THROW(r.append(3.0), std::invalid_argument);
}

TEST(GlobalRanking, AppendKeepsComparisonsValidWithoutRefresh) {
  GlobalRanking r = GlobalRanking::from_scores({3.0, 1.0});
  r.append(2.0);
  // prefers() works straight away (score-based, no rank refresh).
  EXPECT_TRUE(r.prefers(0, 2));
  EXPECT_TRUE(r.prefers(2, 1));
}

TEST(GlobalRanking, EmptyRanking) {
  const GlobalRanking r;
  EXPECT_EQ(r.size(), 0u);
  const GlobalRanking id0 = GlobalRanking::identity(0);
  EXPECT_EQ(id0.size(), 0u);
}

TEST(GlobalRanking, RankRefreshAfterMultipleAppends) {
  GlobalRanking r = GlobalRanking::identity(2);  // scores 2, 1
  r.append(10.0);
  r.append(1.5);
  EXPECT_EQ(r.peer_at(0), 2u);  // 10.0
  EXPECT_EQ(r.peer_at(1), 0u);  // 2.0
  EXPECT_EQ(r.peer_at(2), 3u);  // 1.5
  EXPECT_EQ(r.peer_at(3), 1u);  // 1.0
}

}  // namespace
}  // namespace strat::core
