#include "core/gossip.hpp"

#include "core/metrics.hpp"

#include <gtest/gtest.h>

#include <set>

namespace strat::core {
namespace {

TEST(PeerSampling, Validation) {
  graph::Rng rng(1);
  EXPECT_THROW(PeerSampling(1, 1, rng), std::invalid_argument);
  EXPECT_THROW(PeerSampling(10, 0, rng), std::invalid_argument);
  EXPECT_THROW(PeerSampling(10, 10, rng), std::invalid_argument);
}

TEST(PeerSampling, InitialViewsAreValid) {
  graph::Rng rng(2);
  const PeerSampling sampling(50, 8, rng);
  for (PeerId p = 0; p < 50; ++p) {
    const auto& view = sampling.view(p);
    EXPECT_EQ(view.size(), 8u);
    std::set<PeerId> unique(view.begin(), view.end());
    EXPECT_EQ(unique.size(), view.size());
    EXPECT_EQ(unique.count(p), 0u);  // never self
    for (PeerId q : view) EXPECT_LT(q, 50u);
  }
}

TEST(PeerSampling, ShufflePreservesInvariants) {
  graph::Rng rng(3);
  PeerSampling sampling(40, 6, rng);
  for (int round = 0; round < 500; ++round) {
    sampling.shuffle(static_cast<PeerId>(rng.below(40)), rng);
  }
  for (PeerId p = 0; p < 40; ++p) {
    const auto& view = sampling.view(p);
    EXPECT_LE(view.size(), 6u);
    EXPECT_GE(view.size(), 1u);
    std::set<PeerId> unique(view.begin(), view.end());
    EXPECT_EQ(unique.size(), view.size());
    EXPECT_EQ(unique.count(p), 0u);
  }
}

TEST(PeerSampling, ShuffleMixesKnowledge) {
  // After enough shuffles, a peer should have seen far more distinct
  // peers than its bounded view holds at any instant.
  graph::Rng rng(4);
  PeerSampling sampling(60, 6, rng);
  std::set<PeerId> ever_known(sampling.view(0).begin(), sampling.view(0).end());
  for (int round = 0; round < 3000; ++round) {
    sampling.shuffle(static_cast<PeerId>(rng.below(60)), rng);
    for (PeerId q : sampling.view(0)) ever_known.insert(q);
  }
  EXPECT_GT(ever_known.size(), 30u);
}

TEST(GossipSimulator, RejectsDecrementalStrategy) {
  graph::Rng rng(5);
  GossipParams params;
  params.strategy = Strategy::kDecremental;
  EXPECT_THROW(GossipSimulator(params, rng), std::invalid_argument);
}

TEST(GossipSimulator, SmallSystemReachesTheCompleteKnowledgeStableState) {
  // Gossip dynamics sort peers by random encounters; for a small
  // population the process runs all the way to the complete-knowledge
  // stable configuration (adjacent ranks paired, disorder zero).
  graph::Rng rng(6);
  GossipParams params;
  params.peers = 40;
  params.view_size = 10;
  params.shuffles_per_unit = 4.0;
  GossipSimulator sim_(params, rng);
  sim_.run(200.0, 1);
  EXPECT_LT(sim_.disorder(), 0.02);
  // Perfect stratification: every peer pairs with an adjacent rank.
  const GlobalRanking ranking = GlobalRanking::identity(params.peers);
  EXPECT_NEAR(core::mean_abs_offset(sim_.current(), ranking), 1.0, 0.2);
}

TEST(GossipSimulator, MatchingStaysValid) {
  graph::Rng rng(7);
  GossipParams params;
  params.peers = 100;
  params.view_size = 8;
  params.capacity = 2;
  GossipSimulator sim_(params, rng);
  sim_.run(10.0, 1);
  const GlobalRanking ranking = GlobalRanking::identity(params.peers);
  EXPECT_NO_THROW(sim_.current().validate(ranking));
}

TEST(GossipSimulator, RandomStrategyAlsoProgresses) {
  graph::Rng rng(8);
  GossipParams params;
  params.peers = 120;
  params.view_size = 10;
  params.strategy = Strategy::kRandom;
  GossipSimulator sim_(params, rng);
  const double initial = sim_.disorder();
  sim_.run(60.0, 1);
  EXPECT_LT(sim_.disorder(), initial * 0.5);
}

TEST(GossipSimulator, FrozenViewsPlateauGossipKeepsStratifying) {
  // Without shuffling the views are a static sparse graph: the dynamics
  // stop at *that* instance's stable state, at positive disorder from
  // the complete-knowledge one. With gossip, discovery continues and
  // the matching is strongly stratified (mean mate-rank offset far
  // below the ~n/3 of random pairing), even though full sorting of a
  // large population takes much longer than any test horizon.
  const std::size_t n = 150;
  // Frozen: the plateau is flat (no further improvement possible).
  graph::Rng rng_frozen(100);
  GossipParams frozen;
  frozen.peers = n;
  frozen.view_size = 8;
  frozen.shuffles_per_unit = 0.0;
  GossipSimulator frozen_sim(frozen, rng_frozen);
  frozen_sim.run(40.0, 1);
  const double plateau = frozen_sim.disorder();
  frozen_sim.run(40.0, 1);
  EXPECT_GT(plateau, 0.03);
  EXPECT_NEAR(frozen_sim.disorder(), plateau, 0.02);

  // Gossip: strong stratification of the discovered matching.
  graph::Rng rng_gossip(200);
  GossipParams gossip = frozen;
  gossip.shuffles_per_unit = 4.0;
  GossipSimulator gossip_sim(gossip, rng_gossip);
  gossip_sim.run(100.0, 1);
  const GlobalRanking ranking = GlobalRanking::identity(n);
  const double offset = core::mean_abs_offset(gossip_sim.current(), ranking);
  EXPECT_GT(offset, 0.0);
  EXPECT_LT(offset, static_cast<double>(n) / 6.0);
}

TEST(GossipSimulator, TrajectoryShapes) {
  graph::Rng rng(9);
  GossipParams params;
  params.peers = 80;
  params.view_size = 8;
  GossipSimulator sim_(params, rng);
  const auto traj = sim_.run(5.0, 2);
  ASSERT_GE(traj.size(), 10u);
  EXPECT_DOUBLE_EQ(traj.front().initiatives_per_peer, 0.0);
  for (std::size_t i = 1; i < traj.size(); ++i) {
    EXPECT_GE(traj[i].initiatives_per_peer, traj[i - 1].initiatives_per_peer);
  }
  EXPECT_THROW((void)sim_.run(1.0, 0), std::invalid_argument);
}

}  // namespace
}  // namespace strat::core
