#include "core/matching.hpp"

#include <gtest/gtest.h>

namespace strat::core {
namespace {

TEST(Matching, EmptyConfiguration) {
  const Matching m(4, 2);
  EXPECT_EQ(m.size(), 4u);
  EXPECT_EQ(m.connection_count(), 0u);
  EXPECT_EQ(m.total_capacity(), 8u);
  for (PeerId p = 0; p < 4; ++p) {
    EXPECT_EQ(m.degree(p), 0u);
    EXPECT_EQ(m.capacity(p), 2u);
    EXPECT_FALSE(m.is_full(p));
    EXPECT_EQ(m.mate(p), kNoPeer);
  }
}

TEST(Matching, PerPeerCapacities) {
  const Matching m(std::vector<std::uint32_t>{1, 2, 0});
  EXPECT_EQ(m.capacity(0), 1u);
  EXPECT_EQ(m.capacity(2), 0u);
  EXPECT_TRUE(m.is_full(2));
  EXPECT_EQ(m.total_capacity(), 3u);
}

TEST(Matching, ConnectDisconnectSymmetry) {
  const GlobalRanking ranking = GlobalRanking::identity(4);
  Matching m(4, 2);
  m.connect(0, 2, ranking);
  EXPECT_TRUE(m.are_matched(0, 2));
  EXPECT_TRUE(m.are_matched(2, 0));
  EXPECT_EQ(m.connection_count(), 1u);
  EXPECT_EQ(m.degree(0), 1u);
  m.disconnect(2, 0);
  EXPECT_FALSE(m.are_matched(0, 2));
  EXPECT_EQ(m.connection_count(), 0u);
}

TEST(Matching, ConnectValidation) {
  const GlobalRanking ranking = GlobalRanking::identity(3);
  Matching m(3, 1);
  EXPECT_THROW(m.connect(1, 1, ranking), std::invalid_argument);
  EXPECT_THROW(m.connect(0, 5, ranking), std::invalid_argument);
  m.connect(0, 1, ranking);
  EXPECT_THROW(m.connect(0, 1, ranking), std::invalid_argument);  // already matched
  EXPECT_THROW(m.connect(0, 2, ranking), std::invalid_argument);  // 0 is full
}

TEST(Matching, DisconnectValidation) {
  const GlobalRanking ranking = GlobalRanking::identity(3);
  Matching m(3, 1);
  EXPECT_THROW(m.disconnect(0, 1), std::invalid_argument);
  m.connect(0, 1, ranking);
  EXPECT_THROW(m.disconnect(0, 2), std::invalid_argument);
}

TEST(Matching, MateListsSortedBestFirst) {
  const GlobalRanking ranking = GlobalRanking::identity(5);
  Matching m(5, 3);
  m.connect(4, 2, ranking);
  m.connect(4, 0, ranking);
  m.connect(4, 3, ranking);
  const auto mates = m.mates(4);
  ASSERT_EQ(mates.size(), 3u);
  EXPECT_EQ(mates[0], 0u);
  EXPECT_EQ(mates[1], 2u);
  EXPECT_EQ(mates[2], 3u);
  EXPECT_EQ(m.best_mate(4), 0u);
  EXPECT_EQ(m.worst_mate(4), 3u);
}

TEST(Matching, SortOrderFollowsScores) {
  const GlobalRanking ranking = GlobalRanking::from_scores({1.0, 9.0, 5.0, 7.0});
  Matching m(4, 3);
  m.connect(0, 2, ranking);
  m.connect(0, 1, ranking);
  m.connect(0, 3, ranking);
  const auto mates = m.mates(0);
  EXPECT_EQ(mates[0], 1u);  // score 9
  EXPECT_EQ(mates[1], 3u);  // score 7
  EXPECT_EQ(mates[2], 2u);  // score 5
}

TEST(Matching, WorstBestThrowOnUnmatched) {
  const Matching m(2, 1);
  EXPECT_THROW((void)m.worst_mate(0), std::invalid_argument);
  EXPECT_THROW((void)m.best_mate(0), std::invalid_argument);
}

TEST(Matching, ClearPeerDropsAllCollaborations) {
  const GlobalRanking ranking = GlobalRanking::identity(4);
  Matching m(4, 2);
  m.connect(0, 1, ranking);
  m.connect(0, 2, ranking);
  m.connect(1, 3, ranking);
  m.clear_peer(0);
  EXPECT_EQ(m.degree(0), 0u);
  EXPECT_EQ(m.degree(1), 1u);  // still matched to 3
  EXPECT_EQ(m.degree(2), 0u);
  EXPECT_EQ(m.connection_count(), 1u);
}

TEST(Matching, AddPeerGrows) {
  const GlobalRanking ranking = GlobalRanking::identity(3);
  Matching m(2, 1);
  const PeerId id = m.add_peer(2);
  EXPECT_EQ(id, 2u);
  EXPECT_EQ(m.capacity(2), 2u);
  m.connect(2, 0, ranking);
  EXPECT_TRUE(m.are_matched(0, 2));
}

TEST(Matching, ValidateAcceptsConsistentState) {
  const GlobalRanking ranking = GlobalRanking::identity(4);
  Matching m(4, 2);
  m.connect(0, 3, ranking);
  m.connect(1, 2, ranking);
  EXPECT_NO_THROW(m.validate(ranking));
}

TEST(Matching, AddPeerStartsEmptyAndRespectsCapacity) {
  const GlobalRanking ranking = GlobalRanking::identity(4);
  Matching m(3, 2);
  const PeerId id = m.add_peer(1);
  EXPECT_EQ(m.degree(id), 0u);
  EXPECT_FALSE(m.is_full(id));
  m.connect(id, 0, ranking);
  EXPECT_TRUE(m.is_full(id));
  EXPECT_THROW(m.connect(id, 1, ranking), std::invalid_argument);
  EXPECT_NO_THROW(m.validate(ranking));
}

TEST(Matching, MateOfOneMatchingPeer) {
  const GlobalRanking ranking = GlobalRanking::identity(3);
  Matching m(3, 1);
  m.connect(1, 2, ranking);
  EXPECT_EQ(m.mate(1), 2u);
  EXPECT_EQ(m.mate(2), 1u);
  EXPECT_EQ(m.mate(0), kNoPeer);
}

}  // namespace
}  // namespace strat::core
