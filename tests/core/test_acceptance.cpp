#include "core/acceptance.hpp"

#include <gtest/gtest.h>

#include "graph/erdos_renyi.hpp"
#include "graph/rng.hpp"

namespace strat::core {
namespace {

graph::Graph triangle_plus_isolated() {
  graph::Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 2);
  g.finalize();
  return g;
}

TEST(ExplicitAcceptance, BasicQueries) {
  const GlobalRanking ranking = GlobalRanking::identity(4);
  const ExplicitAcceptance acc(triangle_plus_isolated(), ranking);
  EXPECT_EQ(acc.size(), 4u);
  EXPECT_TRUE(acc.accepts(0, 1));
  EXPECT_TRUE(acc.accepts(1, 0));
  EXPECT_FALSE(acc.accepts(0, 3));
  EXPECT_FALSE(acc.accepts(2, 2));
  EXPECT_EQ(acc.degree(0), 2u);
  EXPECT_EQ(acc.degree(3), 0u);
}

TEST(ExplicitAcceptance, NeighborsInPreferenceOrder) {
  const GlobalRanking ranking = GlobalRanking::identity(4);
  const ExplicitAcceptance acc(triangle_plus_isolated(), ranking);
  // Peer 2 accepts 0 and 1; 0 is better.
  EXPECT_EQ(acc.neighbor(2, 0), 0u);
  EXPECT_EQ(acc.neighbor(2, 1), 1u);
}

TEST(ExplicitAcceptance, PreferenceOrderFollowsScoresNotIds) {
  graph::Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.finalize();
  // Peer 2 outranks peer 1.
  const GlobalRanking ranking = GlobalRanking::from_scores({5.0, 1.0, 3.0});
  const ExplicitAcceptance acc(g, ranking);
  EXPECT_EQ(acc.neighbor(0, 0), 2u);
  EXPECT_EQ(acc.neighbor(0, 1), 1u);
}

TEST(ExplicitAcceptance, AddEdgeKeepsOrder) {
  const GlobalRanking ranking = GlobalRanking::identity(4);
  ExplicitAcceptance acc(triangle_plus_isolated(), ranking);
  acc.add_edge(3, 1);
  EXPECT_TRUE(acc.accepts(1, 3));
  EXPECT_EQ(acc.degree(1), 3u);
  EXPECT_EQ(acc.neighbor(1, 0), 0u);
  EXPECT_EQ(acc.neighbor(1, 1), 2u);
  EXPECT_EQ(acc.neighbor(1, 2), 3u);
}

TEST(ExplicitAcceptance, AddEdgeValidation) {
  const GlobalRanking ranking = GlobalRanking::identity(4);
  ExplicitAcceptance acc(triangle_plus_isolated(), ranking);
  EXPECT_THROW(acc.add_edge(1, 1), std::invalid_argument);
  EXPECT_THROW(acc.add_edge(0, 1), std::invalid_argument);  // duplicate
  EXPECT_THROW(acc.add_edge(0, 9), std::invalid_argument);
}

TEST(ExplicitAcceptance, IsolateClearsBothSides) {
  const GlobalRanking ranking = GlobalRanking::identity(4);
  ExplicitAcceptance acc(triangle_plus_isolated(), ranking);
  acc.isolate(1);
  EXPECT_EQ(acc.degree(1), 0u);
  EXPECT_FALSE(acc.accepts(0, 1));
  EXPECT_FALSE(acc.accepts(2, 1));
  EXPECT_TRUE(acc.accepts(0, 2));
}

TEST(ExplicitAcceptance, AddPeerRequiresScoreFirst) {
  GlobalRanking ranking = GlobalRanking::identity(4);
  ExplicitAcceptance acc(triangle_plus_isolated(), ranking);
  EXPECT_THROW(acc.add_peer(), std::invalid_argument);
  ranking.append(0.5);
  const PeerId id = acc.add_peer();
  EXPECT_EQ(id, 4u);
  EXPECT_EQ(acc.degree(4), 0u);
  acc.add_edge(4, 0);
  EXPECT_TRUE(acc.accepts(0, 4));
}

TEST(ExplicitAcceptance, RankingLargerThanGraphIsAllowed) {
  const GlobalRanking ranking = GlobalRanking::identity(10);
  const ExplicitAcceptance acc(triangle_plus_isolated(), ranking);
  EXPECT_EQ(acc.size(), 4u);
}

TEST(ExplicitAcceptance, GraphLargerThanRankingRejected) {
  const GlobalRanking ranking = GlobalRanking::identity(2);
  EXPECT_THROW(ExplicitAcceptance(triangle_plus_isolated(), ranking), std::invalid_argument);
}

TEST(CompleteAcceptance, EverybodyAcceptsEverybody) {
  const GlobalRanking ranking = GlobalRanking::identity(5);
  const CompleteAcceptance acc(5, ranking);
  for (PeerId p = 0; p < 5; ++p) {
    EXPECT_EQ(acc.degree(p), 4u);
    for (PeerId q = 0; q < 5; ++q) {
      EXPECT_EQ(acc.accepts(p, q), p != q);
    }
  }
}

TEST(CompleteAcceptance, NeighborSkipsSelf) {
  const GlobalRanking ranking = GlobalRanking::identity(4);
  const CompleteAcceptance acc(4, ranking);
  // Peer 2 (rank 2): preference order 0, 1, 3.
  EXPECT_EQ(acc.neighbor(2, 0), 0u);
  EXPECT_EQ(acc.neighbor(2, 1), 1u);
  EXPECT_EQ(acc.neighbor(2, 2), 3u);
  // Best peer: 1, 2, 3.
  EXPECT_EQ(acc.neighbor(0, 0), 1u);
  EXPECT_EQ(acc.neighbor(0, 2), 3u);
}

TEST(CompleteAcceptance, NonIdentityRanking) {
  const GlobalRanking ranking = GlobalRanking::from_scores({1.0, 3.0, 2.0});
  const CompleteAcceptance acc(3, ranking);
  // Rank order: 1, 2, 0. Peer 0's preferences: 1 then 2.
  EXPECT_EQ(acc.neighbor(0, 0), 1u);
  EXPECT_EQ(acc.neighbor(0, 1), 2u);
  // Peer 1 (best): 2 then 0.
  EXPECT_EQ(acc.neighbor(1, 0), 2u);
  EXPECT_EQ(acc.neighbor(1, 1), 0u);
}

TEST(CompleteAcceptance, BoundsChecking) {
  const GlobalRanking ranking = GlobalRanking::identity(3);
  const CompleteAcceptance acc(3, ranking);
  EXPECT_THROW((void)acc.neighbor(0, 2), std::out_of_range);
  EXPECT_THROW((void)acc.degree(3), std::out_of_range);
  EXPECT_THROW(CompleteAcceptance(4, ranking), std::invalid_argument);
}

}  // namespace
}  // namespace strat::core
