#include "core/solver.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "core/blocking.hpp"
#include "core/metrics.hpp"
#include "graph/erdos_renyi.hpp"
#include "graph/rng.hpp"

namespace strat::core {
namespace {

TEST(Solver, CompleteGraphOneMatchingPairsAdjacentRanks) {
  const GlobalRanking ranking = GlobalRanking::identity(6);
  const CompleteAcceptance acc(6, ranking);
  const Matching m = stable_configuration(acc, ranking, std::vector<std::uint32_t>(6, 1));
  EXPECT_TRUE(m.are_matched(0, 1));
  EXPECT_TRUE(m.are_matched(2, 3));
  EXPECT_TRUE(m.are_matched(4, 5));
  EXPECT_TRUE(is_stable(acc, ranking, m));
}

TEST(Solver, OddPopulationLeavesWorstUnmatched) {
  const GlobalRanking ranking = GlobalRanking::identity(5);
  const CompleteAcceptance acc(5, ranking);
  Matching m(5, 1);
  const SolveStats stats = stable_configuration(acc, ranking, m);
  EXPECT_EQ(m.degree(4), 0u);
  EXPECT_EQ(stats.connections, 2u);
  EXPECT_EQ(stats.unfilled_slots, 1u);
}

TEST(Solver, Figure4ConstantTwoMatchingClustersOfThree) {
  // §4.1 / Figure 4: constant b0-matching on a complete graph yields
  // consecutive complete clusters of size b0+1.
  const GlobalRanking ranking = GlobalRanking::identity(9);
  const CompleteAcceptance acc(9, ranking);
  const Matching m = stable_configuration(acc, ranking, std::vector<std::uint32_t>(9, 2));
  for (PeerId base = 0; base < 9; base += 3) {
    EXPECT_TRUE(m.are_matched(base, base + 1));
    EXPECT_TRUE(m.are_matched(base, base + 2));
    EXPECT_TRUE(m.are_matched(base + 1, base + 2));
  }
  EXPECT_FALSE(m.are_matched(2, 3));
  EXPECT_TRUE(is_stable(acc, ranking, m));
}

TEST(Solver, Figure5ExtraConnectionChainsClusters) {
  // §4.2 / Figure 5: granting peer 1 (rank 0) one extra connection
  // turns the disjoint triangles into one connected component.
  const GlobalRanking ranking = GlobalRanking::identity(8);
  const CompleteAcceptance acc(8, ranking);
  std::vector<std::uint32_t> caps(8, 2);
  caps[0] = 3;
  const Matching m = stable_configuration(acc, ranking, caps);
  EXPECT_TRUE(is_stable(acc, ranking, m));
  const auto g = collaboration_graph(m);
  EXPECT_TRUE(graph::is_connected(g));
}

TEST(Solver, EmptyAcceptanceYieldsEmptyMatching) {
  const GlobalRanking ranking = GlobalRanking::identity(4);
  const ExplicitAcceptance acc(graph::Graph(4), ranking);
  const Matching m = stable_configuration(acc, ranking, std::vector<std::uint32_t>(4, 2));
  EXPECT_EQ(m.connection_count(), 0u);
}

TEST(Solver, SizesMustAgree) {
  const GlobalRanking ranking = GlobalRanking::identity(4);
  const CompleteAcceptance acc(4, ranking);
  EXPECT_THROW((void)stable_configuration(acc, ranking, std::vector<std::uint32_t>(3, 1)),
               std::invalid_argument);
  Matching wrong(3, 1);
  EXPECT_THROW((void)stable_configuration(acc, ranking, wrong), std::invalid_argument);
}

TEST(Solver, ZeroCapacityPeersNeverMatch) {
  const GlobalRanking ranking = GlobalRanking::identity(4);
  const CompleteAcceptance acc(4, ranking);
  std::vector<std::uint32_t> caps{1, 0, 1, 0};
  const Matching m = stable_configuration(acc, ranking, caps);
  EXPECT_EQ(m.degree(1), 0u);
  EXPECT_EQ(m.degree(3), 0u);
  EXPECT_TRUE(m.are_matched(0, 2));
}

TEST(Solver, NonIdentityRankingRespected) {
  // Scores invert the id order: peer 3 is the best.
  const GlobalRanking ranking = GlobalRanking::from_scores({1.0, 2.0, 3.0, 4.0});
  const CompleteAcceptance acc(4, ranking);
  const Matching m = stable_configuration(acc, ranking, std::vector<std::uint32_t>(4, 1));
  EXPECT_TRUE(m.are_matched(3, 2));
  EXPECT_TRUE(m.are_matched(1, 0));
  EXPECT_TRUE(is_stable(acc, ranking, m));
}

TEST(Solver, ResultIsStableOnRandomGraphs) {
  graph::Rng rng(42);
  for (const double p : {0.05, 0.2, 0.5}) {
    for (const std::size_t b0 : {1u, 2u, 4u}) {
      const std::size_t n = 60;
      const GlobalRanking ranking = GlobalRanking::identity(n);
      const graph::Graph g = graph::erdos_renyi_gnp(n, p, rng);
      const ExplicitAcceptance acc(g, ranking);
      const Matching m = stable_configuration(
          acc, ranking, std::vector<std::uint32_t>(n, static_cast<std::uint32_t>(b0)));
      EXPECT_TRUE(is_stable(acc, ranking, m)) << "p=" << p << " b0=" << b0;
      EXPECT_NO_THROW(m.validate(ranking));
    }
  }
}

TEST(Solver, MatchingRespectsAcceptanceGraph) {
  graph::Rng rng(43);
  const std::size_t n = 40;
  const GlobalRanking ranking = GlobalRanking::identity(n);
  const graph::Graph g = graph::erdos_renyi_gnp(n, 0.15, rng);
  const ExplicitAcceptance acc(g, ranking);
  const Matching m = stable_configuration(acc, ranking, std::vector<std::uint32_t>(n, 2));
  for (PeerId p = 0; p < n; ++p) {
    for (PeerId q : m.mates(p)) EXPECT_TRUE(acc.accepts(p, q));
  }
}

TEST(SolverCompleteFastPath, MatchesGenericSolver) {
  graph::Rng rng(44);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 30 + static_cast<std::size_t>(rng.below(40));
    std::vector<std::uint32_t> caps(n);
    for (auto& c : caps) c = static_cast<std::uint32_t>(rng.below(5));  // 0..4
    const GlobalRanking ranking = GlobalRanking::identity(n);
    const CompleteAcceptance acc(n, ranking);
    const Matching generic = stable_configuration(acc, ranking, caps);
    const Matching fast = stable_configuration_complete(caps);
    ASSERT_EQ(generic.size(), fast.size());
    for (PeerId p = 0; p < n; ++p) {
      const auto a = generic.mates(p);
      const auto b = fast.mates(p);
      ASSERT_EQ(a.size(), b.size()) << "peer " << p;
      for (std::size_t k = 0; k < a.size(); ++k) EXPECT_EQ(a[k], b[k]);
    }
  }
}

TEST(SolverCompleteFastPath, HandlesDegenerateInputs) {
  EXPECT_EQ(stable_configuration_complete({}).size(), 0u);
  const Matching one = stable_configuration_complete({3});
  EXPECT_EQ(one.degree(0), 0u);
  const Matching zeros = stable_configuration_complete({0, 0, 0});
  EXPECT_EQ(zeros.connection_count(), 0u);
}

TEST(SolverCompleteFastPath, LargePopulationLinearTime) {
  // 200k peers at b=4: must run in well under a second if O(n + B).
  const std::size_t n = 200000;
  const Matching m = stable_configuration_complete(std::vector<std::uint32_t>(n, 4));
  // Clusters of 5: degree 4 everywhere (n divisible by 5).
  EXPECT_EQ(m.degree(0), 4u);
  EXPECT_EQ(m.degree(static_cast<PeerId>(n - 1)), 4u);
  EXPECT_EQ(m.connection_count(), n / 5 * 10);
}

TEST(Solver, UniquenessAcrossEquivalentRankings) {
  // The stable configuration depends on the ranking order only, not on
  // the score magnitudes.
  graph::Rng rng(45);
  const std::size_t n = 25;
  const graph::Graph g = graph::erdos_renyi_gnp(n, 0.3, rng);
  const GlobalRanking r1 = GlobalRanking::identity(n);
  std::vector<double> scores(n);
  for (std::size_t i = 0; i < n; ++i) scores[i] = 1000.0 / (static_cast<double>(i) + 1.0);
  const GlobalRanking r2 = GlobalRanking::from_scores(scores);
  const ExplicitAcceptance a1(g, r1);
  const ExplicitAcceptance a2(g, r2);
  const Matching m1 = stable_configuration(a1, r1, std::vector<std::uint32_t>(n, 2));
  const Matching m2 = stable_configuration(a2, r2, std::vector<std::uint32_t>(n, 2));
  for (PeerId p = 0; p < n; ++p) {
    const auto x = m1.mates(p);
    const auto y = m2.mates(p);
    ASSERT_EQ(x.size(), y.size());
    for (std::size_t k = 0; k < x.size(); ++k) EXPECT_EQ(x[k], y[k]);
  }
}

using SolverSweepParam = std::tuple<std::size_t, double, std::uint32_t>;

class SolverSweep : public ::testing::TestWithParam<SolverSweepParam> {};

TEST_P(SolverSweep, StableAndValidOnRandomInstances) {
  const auto [n, p, b0] = GetParam();
  graph::Rng rng(1000 + n + static_cast<std::size_t>(p * 100) + b0);
  const GlobalRanking ranking = GlobalRanking::identity(n);
  const graph::Graph g = graph::erdos_renyi_gnp(n, p, rng);
  const ExplicitAcceptance acc(g, ranking);
  const Matching m = stable_configuration(acc, ranking, std::vector<std::uint32_t>(n, b0));
  EXPECT_TRUE(is_stable(acc, ranking, m));
  EXPECT_NO_THROW(m.validate(ranking));
  EXPECT_TRUE(all_blocking_pairs(acc, ranking, m).empty());
}

INSTANTIATE_TEST_SUITE_P(
    ParamGrid, SolverSweep,
    ::testing::Combine(::testing::Values<std::size_t>(10, 50, 150),
                       ::testing::Values(0.02, 0.1, 0.4, 0.9),
                       ::testing::Values<std::uint32_t>(1, 2, 3, 5)));

}  // namespace
}  // namespace strat::core
