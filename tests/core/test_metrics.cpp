#include "core/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/solver.hpp"
#include "graph/rng.hpp"

namespace strat::core {
namespace {

TEST(Metrics, CollaborationGraphMirrorsMatching) {
  const GlobalRanking ranking = GlobalRanking::identity(5);
  Matching m(5, 2);
  m.connect(0, 1, ranking);
  m.connect(1, 2, ranking);
  const auto g = collaboration_graph(m);
  EXPECT_EQ(g.order(), 5u);
  EXPECT_EQ(g.size(), 2u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 2));
  EXPECT_FALSE(g.has_edge(0, 2));
}

TEST(Metrics, ClusterStatsOfTwoTriangles) {
  const Matching m = stable_configuration_complete(std::vector<std::uint32_t>(6, 2));
  const ClusterStats s = cluster_stats(m);
  EXPECT_EQ(s.components, 2u);
  EXPECT_EQ(s.largest, 3u);
  EXPECT_DOUBLE_EQ(s.mean_size, 3.0);
  EXPECT_DOUBLE_EQ(s.vertex_mean_size, 3.0);
  EXPECT_EQ(s.isolated_peers, 0u);
}

TEST(Metrics, IsolatedPeersCounted) {
  const GlobalRanking ranking = GlobalRanking::identity(4);
  Matching m(4, 1);
  m.connect(0, 1, ranking);
  const ClusterStats s = cluster_stats(m);
  EXPECT_EQ(s.isolated_peers, 2u);
  EXPECT_EQ(s.components, 3u);  // {0,1}, {2}, {3}
}

TEST(Metrics, MaxOffsetPerPeer) {
  const GlobalRanking ranking = GlobalRanking::identity(6);
  Matching m(6, 2);
  m.connect(0, 5, ranking);
  m.connect(0, 1, ranking);
  EXPECT_EQ(max_offset(m, ranking, 0), 5u);
  EXPECT_EQ(max_offset(m, ranking, 5), 5u);
  EXPECT_EQ(max_offset(m, ranking, 1), 1u);
  EXPECT_EQ(max_offset(m, ranking, 2), 0u);  // unmatched
}

TEST(Metrics, MmoClosedFormMatchesTable1) {
  // Table 1's constant-b0 MMO row: 1.67, 2.5, 3.2, 4, 4.71, 5.5.
  EXPECT_NEAR(mmo_closed_form(2), 5.0 / 3.0, 1e-12);
  EXPECT_NEAR(mmo_closed_form(3), 2.5, 1e-12);
  EXPECT_NEAR(mmo_closed_form(4), 3.2, 1e-12);
  EXPECT_NEAR(mmo_closed_form(5), 4.0, 1e-12);
  EXPECT_NEAR(mmo_closed_form(6), 33.0 / 7.0, 1e-12);  // 4.714...
  EXPECT_NEAR(mmo_closed_form(7), 5.5, 1e-12);
  EXPECT_THROW((void)mmo_closed_form(0), std::invalid_argument);
}

TEST(Metrics, MmoClosedFormLimitIsThreeQuartersB) {
  // §4.2: MMO(b0) -> (3/4) b0 as b0 grows.
  for (const std::size_t b0 : {50u, 200u, 1000u}) {
    EXPECT_NEAR(mmo_closed_form(b0) / static_cast<double>(b0), 0.75, 0.01) << b0;
  }
}

TEST(Metrics, EmpiricalMmoMatchesClosedFormOnCompleteGraph) {
  const GlobalRanking ranking = GlobalRanking::identity(12);
  for (const std::uint32_t b0 : {2u, 3u, 5u}) {
    const std::size_t n = (b0 + 1) * 4;  // whole clusters only
    const Matching m =
        stable_configuration_complete(std::vector<std::uint32_t>(n, b0));
    const GlobalRanking r = GlobalRanking::identity(n);
    EXPECT_NEAR(mean_max_offset(m, r), mmo_closed_form(b0), 1e-9) << "b0=" << b0;
  }
}

TEST(Metrics, MeanMaxOffsetSkipsUnmatched) {
  const GlobalRanking ranking = GlobalRanking::identity(5);
  Matching m(5, 1);
  m.connect(0, 1, ranking);
  // Only peers 0 and 1 are matched; both have offset 1.
  EXPECT_DOUBLE_EQ(mean_max_offset(m, ranking), 1.0);
}

TEST(Metrics, MeanMaxOffsetEmptyIsZero) {
  const GlobalRanking ranking = GlobalRanking::identity(5);
  EXPECT_DOUBLE_EQ(mean_max_offset(Matching(5, 1), ranking), 0.0);
}

TEST(Metrics, MeanAbsOffsetPerEdge) {
  const GlobalRanking ranking = GlobalRanking::identity(6);
  Matching m(6, 2);
  m.connect(0, 1, ranking);  // offset 1
  m.connect(2, 5, ranking);  // offset 3
  EXPECT_DOUBLE_EQ(mean_abs_offset(m, ranking), 2.0);
  EXPECT_DOUBLE_EQ(mean_abs_offset(Matching(6, 1), ranking), 0.0);
}

TEST(Metrics, MateRankProfileByRankOrder) {
  const GlobalRanking ranking = GlobalRanking::from_scores({1.0, 3.0, 2.0});
  // Rank order: peer1 (rank 0), peer2 (rank 1), peer0 (rank 2).
  Matching m(3, 1);
  m.connect(1, 2, ranking);
  const auto profile = mate_rank_profile(m, ranking);
  ASSERT_EQ(profile.size(), 3u);
  EXPECT_DOUBLE_EQ(profile[0], 1.0);   // best peer's mate has rank 1
  EXPECT_DOUBLE_EQ(profile[1], 0.0);   // rank-1 peer's mate has rank 0
  EXPECT_DOUBLE_EQ(profile[2], -1.0);  // unmatched
}

TEST(Metrics, StratificationOnCompleteGraphVariableB) {
  // §4.2: with variable b the clusters merge (bigger vertex-mean size)
  // while MMO stays small relative to n.
  const std::size_t n = 4000;
  std::vector<std::uint32_t> constant(n, 4);
  const Matching mc = stable_configuration_complete(constant);
  const ClusterStats cs = cluster_stats(mc);
  EXPECT_NEAR(cs.vertex_mean_size, 5.0, 1e-9);

  graph::Rng rng(11);
  std::vector<std::uint32_t> variable(n);
  for (auto& b : variable) {
    const double x = rng.normal(4.0, 0.4);
    b = static_cast<std::uint32_t>(std::max(1.0, std::round(x)));
  }
  const Matching mv = stable_configuration_complete(variable);
  const ClusterStats vs = cluster_stats(mv);
  EXPECT_GT(vs.vertex_mean_size, 4.0 * cs.vertex_mean_size);
  const GlobalRanking r = GlobalRanking::identity(n);
  // Stratification: typical offsets stay tiny compared to n.
  EXPECT_LT(mean_max_offset(mv, r), 30.0);
}

}  // namespace
}  // namespace strat::core
