#include "core/preference_cycle.hpp"

#include <gtest/gtest.h>

#include "graph/erdos_renyi.hpp"
#include "graph/rng.hpp"

namespace strat::core {
namespace {

PreferenceSystem odd_cycle_instance() {
  // The classic stable-roommates counterexample: 0 prefers 1 > 2,
  // 1 prefers 2 > 0, 2 prefers 0 > 1. (0,1,2) is a preference cycle.
  return PreferenceSystem{{1, 2}, {2, 0}, {0, 1}};
}

TEST(PreferencesFromRanking, OrdersByRank) {
  const GlobalRanking ranking = GlobalRanking::from_scores({1.0, 3.0, 2.0});
  const std::vector<std::vector<PeerId>> adjacency{{1, 2}, {0, 2}, {0, 1}};
  const PreferenceSystem prefs = preferences_from_ranking(ranking, adjacency);
  EXPECT_EQ(prefs[0], (std::vector<PeerId>{1, 2}));
  EXPECT_EQ(prefs[2], (std::vector<PeerId>{1, 0}));
}

TEST(PrefPrefers, PositionalSemantics) {
  const PreferenceSystem prefs{{2, 1}, {}, {}};
  EXPECT_TRUE(pref_prefers(prefs, 0, 2, 1));
  EXPECT_FALSE(pref_prefers(prefs, 0, 1, 2));
  // Unlisted peers rank last.
  EXPECT_TRUE(pref_prefers(prefs, 0, 1, 7));
  EXPECT_FALSE(pref_prefers(prefs, 0, 7, 1));
}

TEST(IsPreferenceCycle, ValidatesTheClassicTriangle) {
  const PreferenceSystem prefs = odd_cycle_instance();
  EXPECT_TRUE(is_preference_cycle(prefs, {0, 1, 2}));
  EXPECT_TRUE(is_preference_cycle(prefs, {1, 2, 0}));  // rotation
  // The reverse orientation is NOT a preference cycle here.
  EXPECT_FALSE(is_preference_cycle(prefs, {2, 1, 0}));
}

TEST(IsPreferenceCycle, RejectsShortOrDuplicated) {
  const PreferenceSystem prefs = odd_cycle_instance();
  EXPECT_FALSE(is_preference_cycle(prefs, {0, 1}));
  EXPECT_FALSE(is_preference_cycle(prefs, {0, 1, 1}));
}

TEST(FindPreferenceCycle, FindsTheTriangle) {
  const auto cycle = find_preference_cycle(odd_cycle_instance());
  ASSERT_TRUE(cycle.has_value());
  EXPECT_TRUE(is_preference_cycle(odd_cycle_instance(), *cycle));
}

TEST(FindPreferenceCycle, GlobalRankingHasNone) {
  graph::Rng rng(3);
  const std::size_t n = 9;
  const GlobalRanking ranking = GlobalRanking::identity(n);
  const graph::Graph g = graph::erdos_renyi_gnp(n, 0.6, rng);
  std::vector<std::vector<PeerId>> adjacency(n);
  for (PeerId p = 0; p < n; ++p) {
    const auto nbrs = g.neighbors(p);
    adjacency[p].assign(nbrs.begin(), nbrs.end());
  }
  const PreferenceSystem prefs = preferences_from_ranking(ranking, adjacency);
  EXPECT_FALSE(find_preference_cycle(prefs).has_value());
  EXPECT_TRUE(is_cycle_free(prefs));
}

TEST(FindPreferenceCycle, EvenCycleInstance) {
  // 4 peers arranged so (0,1,2,3) is an even preference cycle: each
  // prefers its successor to its predecessor.
  const PreferenceSystem prefs{
      {1, 3},  // 0: prefers 1 (successor) to 3 (predecessor)
      {2, 0},  // 1: prefers 2 to 0
      {3, 1},  // 2: prefers 3 to 1
      {0, 2},  // 3: prefers 0 to 2
  };
  EXPECT_TRUE(is_preference_cycle(prefs, {0, 1, 2, 3}));
  const auto cycle = find_preference_cycle(prefs);
  ASSERT_TRUE(cycle.has_value());
  EXPECT_GE(cycle->size(), 3u);
  EXPECT_FALSE(is_cycle_free(prefs));
}

TEST(IsCycleFree, LargeGlobalRankingInstanceUsesStateGraph) {
  // n > exhaustive limit: exercises the state-graph path.
  graph::Rng rng(4);
  const std::size_t n = 40;
  const GlobalRanking ranking = GlobalRanking::identity(n);
  const graph::Graph g = graph::erdos_renyi_gnp(n, 0.2, rng);
  std::vector<std::vector<PeerId>> adjacency(n);
  for (PeerId p = 0; p < n; ++p) {
    const auto nbrs = g.neighbors(p);
    adjacency[p].assign(nbrs.begin(), nbrs.end());
  }
  EXPECT_TRUE(is_cycle_free(preferences_from_ranking(ranking, adjacency)));
}

TEST(FindPreferenceCycle, LargeCraftedCycleIsDetected) {
  // Embed the classic triangle into a 20-peer system (above the
  // exhaustive limit) where everything else is empty.
  PreferenceSystem prefs(20);
  prefs[0] = {1, 2};
  prefs[1] = {2, 0};
  prefs[2] = {0, 1};
  EXPECT_FALSE(is_cycle_free(prefs));
  const auto cycle = find_preference_cycle(prefs);
  ASSERT_TRUE(cycle.has_value());
  EXPECT_TRUE(is_preference_cycle(prefs, *cycle));
}

TEST(IsCycleFree, EmptySystem) {
  EXPECT_TRUE(is_cycle_free(PreferenceSystem{}));
  EXPECT_TRUE(is_cycle_free(PreferenceSystem{{}, {}, {}}));
}

TEST(TanCriterion, OddCycleInstanceHasNoStable1Matching) {
  // Brute-force all 1-matchings of the triangle instance: each leaves a
  // blocking pair, confirming Tan's theorem for odd cycles.
  const PreferenceSystem prefs = odd_cycle_instance();
  // Configurations on 3 peers with b=1: empty, {01}, {02}, {12}.
  auto blocks = [&](PeerId a, PeerId b, PeerId mate_a, PeerId mate_b) {
    // (a, b) blocks if both prefer each other to their current mates
    // (kNoPeer means single, which always wishes).
    auto wishes = [&](PeerId x, PeerId y, PeerId mate) {
      if (mate == kNoPeer) return true;
      return pref_prefers(prefs, x, y, mate);
    };
    return wishes(a, b, mate_a) && wishes(b, a, mate_b);
  };
  // empty: (0,1) blocks.
  EXPECT_TRUE(blocks(0, 1, kNoPeer, kNoPeer));
  // {0-1}: peer 2 single; 1 prefers 2 to 0 -> (1,2) blocks.
  EXPECT_TRUE(blocks(1, 2, 0, kNoPeer));
  // {0-2}: peer 1 single; 0 prefers 1 to 2 -> (0,1) blocks.
  EXPECT_TRUE(blocks(0, 1, 2, kNoPeer));
  // {1-2}: peer 0 single; 2 prefers 0 to 1 -> (2,0) blocks.
  EXPECT_TRUE(blocks(2, 0, 1, kNoPeer));
}

}  // namespace
}  // namespace strat::core
