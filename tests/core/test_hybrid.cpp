#include "core/hybrid.hpp"

#include <gtest/gtest.h>

#include "core/metrics.hpp"
#include "core/solver.hpp"
#include "graph/components.hpp"
#include "graph/erdos_renyi.hpp"

namespace strat::core {
namespace {

TEST(RingDistance, WrapsAround) {
  EXPECT_DOUBLE_EQ(ring_distance(0.0, 0.25), 0.25);
  EXPECT_DOUBLE_EQ(ring_distance(0.1, 0.9), 0.2);  // across the wrap
  EXPECT_DOUBLE_EQ(ring_distance(0.5, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(ring_distance(0.0, 0.5), 0.5);  // antipodal maximum
}

TEST(LatencyEdges, OneEdgePerAcceptablePair) {
  graph::Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  g.finalize();
  const auto edges = latency_edges(g, {0.0, 0.1, 0.5, 0.9});
  ASSERT_EQ(edges.size(), 2u);
  // Closer pair has higher (less negative) weight.
  const auto& e01 = edges[0].a == 0 ? edges[0] : edges[1];
  const auto& e23 = edges[0].a == 0 ? edges[1] : edges[0];
  EXPECT_GT(e01.weight, e23.weight);  // dist 0.1 < 0.4
}

TEST(LatencyEdges, Validation) {
  graph::Graph g(2);
  g.add_edge(0, 1);
  g.finalize();
  EXPECT_THROW((void)latency_edges(g, {0.0}), std::invalid_argument);
  EXPECT_THROW((void)latency_edges(g, {0.0, 1.0}), std::invalid_argument);  // 1.0 not in [0,1)
}

TEST(HybridOverlay, CombinesBothMatchings) {
  graph::Rng rng(1);
  const std::size_t n = 60;
  const GlobalRanking ranking = GlobalRanking::identity(n);
  const graph::Graph acceptance = graph::erdos_renyi_gnd(n, 16.0, rng);
  std::vector<double> coords(n);
  for (auto& c : coords) c = rng.uniform();
  HybridConfig cfg;
  cfg.rank_slots = 2;
  cfg.proximity_slots = 1;
  const HybridOverlay overlay = build_hybrid_overlay(acceptance, ranking, coords, cfg);

  // Every rank edge and every proximity edge appears in the union.
  for (PeerId p = 0; p < n; ++p) {
    for (PeerId q : overlay.rank_matching.mates(p)) {
      EXPECT_TRUE(overlay.combined.has_edge(p, q));
    }
    for (PeerId q : overlay.proximity_matching.mates(p)) {
      EXPECT_TRUE(overlay.combined.has_edge(p, q));
    }
    EXPECT_LE(overlay.rank_matching.degree(p), cfg.rank_slots);
    EXPECT_LE(overlay.proximity_matching.degree(p), cfg.proximity_slots);
  }
  // The union never exceeds the acceptance graph.
  for (graph::Vertex u = 0; u < n; ++u) {
    for (graph::Vertex v : overlay.combined.neighbors(u)) {
      EXPECT_TRUE(acceptance.has_edge(u, v));
    }
  }
}

TEST(HybridOverlay, ProximityMatchingPrefersCloseness) {
  graph::Rng rng(2);
  const std::size_t n = 80;
  const GlobalRanking ranking = GlobalRanking::identity(n);
  const graph::Graph acceptance = graph::erdos_renyi_gnd(n, 20.0, rng);
  std::vector<double> coords(n);
  for (auto& c : coords) c = rng.uniform();
  HybridConfig cfg;
  const HybridOverlay overlay = build_hybrid_overlay(acceptance, ranking, coords, cfg);

  // Mean coordinate distance of proximity mates is well below the mean
  // over all acceptable pairs (~0.25 for uniform ring positions).
  double mate_dist = 0.0;
  std::size_t mates = 0;
  for (PeerId p = 0; p < n; ++p) {
    for (PeerId q : overlay.proximity_matching.mates(p)) {
      if (q > p) {
        mate_dist += ring_distance(coords[p], coords[q]);
        ++mates;
      }
    }
  }
  ASSERT_GT(mates, 10u);
  EXPECT_LT(mate_dist / static_cast<double>(mates), 0.12);
}

TEST(HybridOverlay, ReducesDiameterVersusPureRankMatching) {
  // The §7 motivation: pure stratified matching has a long, chain-like
  // collaboration graph; adding one proximity slot shortcuts it.
  graph::Rng rng(3);
  const std::size_t n = 300;
  const GlobalRanking ranking = GlobalRanking::identity(n);
  const graph::Graph acceptance = graph::erdos_renyi_gnd(n, 30.0, rng);
  std::vector<double> coords(n);
  for (auto& c : coords) c = rng.uniform();

  HybridConfig pure;
  pure.rank_slots = 3;
  pure.proximity_slots = 0;
  HybridConfig hybrid;
  hybrid.rank_slots = 3;
  hybrid.proximity_slots = 1;

  // proximity_slots = 0 would make an empty symmetric instance; handle
  // by building the rank matching directly.
  const ExplicitAcceptance acc(acceptance, ranking);
  const Matching rank_only =
      stable_configuration(acc, ranking, std::vector<std::uint32_t>(n, 3));
  const auto rank_graph = collaboration_graph(rank_only);
  const HybridOverlay overlay = build_hybrid_overlay(acceptance, ranking, coords, hybrid);

  const std::size_t d_pure = largest_component_diameter(rank_graph);
  const std::size_t d_hybrid = largest_component_diameter(overlay.combined);
  EXPECT_LT(d_hybrid, d_pure);
}

TEST(LargestComponentDiameter, HandlesEdgeCases) {
  EXPECT_EQ(largest_component_diameter(graph::Graph(3)),
            std::numeric_limits<std::size_t>::max());
  graph::Graph path(4);
  path.add_edge(0, 1);
  path.add_edge(1, 2);
  path.finalize();
  EXPECT_EQ(largest_component_diameter(path), 2u);  // isolated vertex ignored
}

}  // namespace
}  // namespace strat::core
