#include "core/initiative.hpp"

#include <gtest/gtest.h>

#include "core/solver.hpp"
#include "graph/erdos_renyi.hpp"
#include "graph/rng.hpp"

namespace strat::core {
namespace {

TEST(ParseStrategy, RoundTrips) {
  EXPECT_EQ(parse_strategy("best"), Strategy::kBestMate);
  EXPECT_EQ(parse_strategy("decremental"), Strategy::kDecremental);
  EXPECT_EQ(parse_strategy("random"), Strategy::kRandom);
  EXPECT_THROW((void)parse_strategy("bogus"), std::invalid_argument);
  EXPECT_STREQ(strategy_name(Strategy::kBestMate), "best");
  EXPECT_STREQ(strategy_name(Strategy::kDecremental), "decremental");
  EXPECT_STREQ(strategy_name(Strategy::kRandom), "random");
}

TEST(BestMateInitiative, PicksTheBestAvailableBlockingMate) {
  const GlobalRanking ranking = GlobalRanking::identity(4);
  const CompleteAcceptance acc(4, ranking);
  Matching m(4, 1);
  // Peer 3 initiates on an empty configuration: best blocking mate is 0.
  EXPECT_TRUE(best_mate_initiative(acc, ranking, m, 3));
  EXPECT_TRUE(m.are_matched(3, 0));
}

TEST(BestMateInitiative, InactiveOnStableConfiguration) {
  const GlobalRanking ranking = GlobalRanking::identity(4);
  const CompleteAcceptance acc(4, ranking);
  Matching m(4, 1);
  m.connect(0, 1, ranking);
  m.connect(2, 3, ranking);
  for (PeerId p = 0; p < 4; ++p) {
    EXPECT_FALSE(best_mate_initiative(acc, ranking, m, p)) << "peer " << p;
  }
}

TEST(BestMateInitiative, StealsFromWorseCouple) {
  const GlobalRanking ranking = GlobalRanking::identity(4);
  const CompleteAcceptance acc(4, ranking);
  Matching m(4, 1);
  m.connect(0, 2, ranking);
  m.connect(1, 3, ranking);
  // 1 initiates: 0 is the best blocking mate (0 prefers 1 over 2).
  EXPECT_TRUE(best_mate_initiative(acc, ranking, m, 1));
  EXPECT_TRUE(m.are_matched(0, 1));
  EXPECT_EQ(m.degree(2), 0u);
  EXPECT_EQ(m.degree(3), 0u);
}

TEST(BestMateInitiative, IsolatedPeerIsInactive) {
  const GlobalRanking ranking = GlobalRanking::identity(3);
  const ExplicitAcceptance acc(graph::Graph(3), ranking);
  Matching m(3, 1);
  EXPECT_FALSE(best_mate_initiative(acc, ranking, m, 0));
}

TEST(DecrementalInitiative, EventuallyFindsBlockingMate) {
  const GlobalRanking ranking = GlobalRanking::identity(5);
  const CompleteAcceptance acc(5, ranking);
  Matching m(5, 1);
  std::vector<std::size_t> cursors(5, 0);
  EXPECT_TRUE(decremental_initiative(acc, ranking, m, 2, cursors));
  EXPECT_EQ(m.degree(2), 1u);
}

TEST(DecrementalInitiative, CursorAdvancesAcrossCalls) {
  const GlobalRanking ranking = GlobalRanking::identity(5);
  const CompleteAcceptance acc(5, ranking);
  Matching m(5, 2);
  std::vector<std::size_t> cursors(5, 0);
  // Two successive active initiatives by peer 4 must pick two distinct
  // mates (the circular scan keeps moving).
  EXPECT_TRUE(decremental_initiative(acc, ranking, m, 4, cursors));
  const PeerId first = m.mates(4)[0];
  EXPECT_TRUE(decremental_initiative(acc, ranking, m, 4, cursors));
  EXPECT_EQ(m.degree(4), 2u);
  const auto mates = m.mates(4);
  EXPECT_NE(mates[0], mates[1]);
  EXPECT_TRUE(mates[0] == first || mates[1] == first);
}

TEST(DecrementalInitiative, InactiveWhenStable) {
  const GlobalRanking ranking = GlobalRanking::identity(4);
  const CompleteAcceptance acc(4, ranking);
  Matching m(4, 1);
  m.connect(0, 1, ranking);
  m.connect(2, 3, ranking);
  std::vector<std::size_t> cursors(4, 0);
  for (PeerId p = 0; p < 4; ++p) {
    EXPECT_FALSE(decremental_initiative(acc, ranking, m, p, cursors));
  }
}

TEST(RandomInitiative, OnlyExecutesBlockingPairs) {
  graph::Rng rng(5);
  const GlobalRanking ranking = GlobalRanking::identity(4);
  const CompleteAcceptance acc(4, ranking);
  Matching m(4, 1);
  m.connect(0, 1, ranking);
  m.connect(2, 3, ranking);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(random_initiative(acc, ranking, m, static_cast<PeerId>(rng.below(4)), rng));
  }
  EXPECT_TRUE(m.are_matched(0, 1));
  EXPECT_TRUE(m.are_matched(2, 3));
}

TEST(RandomInitiative, MakesProgressFromEmpty) {
  graph::Rng rng(6);
  const GlobalRanking ranking = GlobalRanking::identity(6);
  const CompleteAcceptance acc(6, ranking);
  Matching m(6, 1);
  int active = 0;
  for (int i = 0; i < 200; ++i) {
    if (random_initiative(acc, ranking, m, static_cast<PeerId>(rng.below(6)), rng)) ++active;
  }
  EXPECT_GT(active, 0);
  EXPECT_GT(m.connection_count(), 0u);
}

TEST(TakeInitiative, DispatchesEveryStrategy) {
  graph::Rng rng(7);
  const GlobalRanking ranking = GlobalRanking::identity(6);
  const CompleteAcceptance acc(6, ranking);
  std::vector<std::size_t> cursors(6, 0);
  for (const Strategy s : {Strategy::kBestMate, Strategy::kDecremental, Strategy::kRandom}) {
    Matching m(6, 1);
    bool any = false;
    for (int i = 0; i < 300; ++i) {
      any |= take_initiative(acc, ranking, m, static_cast<PeerId>(rng.below(6)), s, cursors, rng);
    }
    EXPECT_TRUE(any) << strategy_name(s);
  }
}

TEST(Initiative, NeverCreatesNonBlockingConnections) {
  // Fuzz: after any prefix of initiatives, the configuration stays a
  // valid b-matching within the acceptance graph.
  graph::Rng rng(8);
  const std::size_t n = 30;
  const GlobalRanking ranking = GlobalRanking::identity(n);
  const graph::Graph g = graph::erdos_renyi_gnp(n, 0.2, rng);
  const ExplicitAcceptance acc(g, ranking);
  Matching m(n, 2);
  std::vector<std::size_t> cursors(n, 0);
  for (int i = 0; i < 2000; ++i) {
    const auto p = static_cast<PeerId>(rng.below(n));
    const auto s = static_cast<Strategy>(rng.below(3));
    take_initiative(acc, ranking, m, p, s, cursors, rng);
  }
  EXPECT_NO_THROW(m.validate(ranking));
  for (PeerId p = 0; p < n; ++p) {
    for (PeerId q : m.mates(p)) EXPECT_TRUE(acc.accepts(p, q));
  }
}

}  // namespace
}  // namespace strat::core
