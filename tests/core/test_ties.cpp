#include "core/ties.hpp"

#include <gtest/gtest.h>

#include "core/metrics.hpp"
#include "core/solver.hpp"
#include "graph/erdos_renyi.hpp"

namespace strat::core {
namespace {

TEST(QuantizeScores, Validation) {
  EXPECT_THROW((void)quantize_scores({}, 4), std::invalid_argument);
  EXPECT_THROW((void)quantize_scores({1.0, 2.0}, 0), std::invalid_argument);
}

TEST(QuantizeScores, LevelsAndOrdering) {
  // Scores 10, 20, 30, 40 into 2 levels: {30, 40} -> level 0,
  // {10, 20} -> level 1.
  const TieLevels ties = quantize_scores({10.0, 20.0, 30.0, 40.0}, 2);
  EXPECT_EQ(ties.levels, 2u);
  EXPECT_EQ(ties.level[0], 1u);
  EXPECT_EQ(ties.level[1], 1u);
  EXPECT_EQ(ties.level[2], 0u);
  EXPECT_EQ(ties.level[3], 0u);
  EXPECT_TRUE(ties.strictly_prefers(3, 0));
  EXPECT_FALSE(ties.strictly_prefers(3, 2));  // same class: tied
  EXPECT_FALSE(ties.strictly_prefers(0, 1));
}

TEST(QuantizeScores, TieBreakByIdInsideClass) {
  const TieLevels ties = quantize_scores({5.0, 5.0, 5.0}, 1);
  EXPECT_EQ(ties.levels, 1u);
  // Strict ranking exists and prefers smaller ids within the class.
  EXPECT_TRUE(ties.ranking.prefers(0, 1));
  EXPECT_TRUE(ties.ranking.prefers(1, 2));
}

TEST(QuantizeScores, StrictRankingRefinesClasses) {
  graph::Rng rng(1);
  std::vector<double> scores(100);
  for (auto& s : scores) s = rng.uniform();
  const TieLevels ties = quantize_scores(scores, 8);
  for (PeerId a = 0; a < 100; ++a) {
    for (PeerId b = 0; b < 100; ++b) {
      if (ties.strictly_prefers(a, b)) {
        EXPECT_TRUE(ties.ranking.prefers(a, b))
            << "class order must be preserved by the tie-broken ranking";
      }
    }
  }
}

TEST(Ties, TieBrokenStableConfigurationIsWeaklyStable) {
  // §3's simulation claim: solving with ANY tie-breaking strict order
  // yields a configuration with no strictly blocking pair.
  graph::Rng rng(2);
  for (const std::size_t levels : {2u, 5u, 20u}) {
    const std::size_t n = 80;
    std::vector<double> scores(n);
    for (auto& s : scores) s = rng.uniform();
    const TieLevels ties = quantize_scores(scores, levels);
    const graph::Graph g = graph::erdos_renyi_gnd(n, 10.0, rng);
    const ExplicitAcceptance acc(g, ties.ranking);
    const Matching m =
        stable_configuration(acc, ties.ranking, std::vector<std::uint32_t>(n, 2));
    EXPECT_TRUE(is_weakly_stable(acc, ties, m)) << "levels=" << levels;
  }
}

TEST(Ties, StrictBlockingDetection) {
  const TieLevels ties = quantize_scores({40.0, 30.0, 20.0, 10.0}, 4);
  const CompleteAcceptance acc(4, ties.ranking);
  Matching m(4, 1);
  m.connect(0, 3, ties.ranking);
  m.connect(1, 2, ties.ranking);
  // 0 (with worst peer 3) and 1 (with 2): both strictly improve.
  EXPECT_TRUE(is_strictly_blocking_pair(acc, ties, m, 0, 1));
  // Matched pairs never block.
  EXPECT_FALSE(is_strictly_blocking_pair(acc, ties, m, 0, 3));
}

TEST(Ties, SameClassSwapsDoNotBlock) {
  // Peers 1 and 2 are tied; 0 is matched with 1 — pair {0, 2} must not
  // strictly block, since 0 would not strictly improve.
  const TieLevels ties = quantize_scores({30.0, 20.0, 20.001, 5.0}, 3);
  ASSERT_EQ(ties.level[1], ties.level[2]);
  const CompleteAcceptance acc(4, ties.ranking);
  Matching m(4, 1);
  m.connect(0, 2, ties.ranking);
  m.connect(1, 3, ties.ranking);
  EXPECT_FALSE(is_strictly_blocking_pair(acc, ties, m, 0, 1));
}

TEST(Ties, StratificationSurvivesCoarseQuantization) {
  // The paper's "results hold with ties": mate-rank offsets stay small
  // relative to n whether the ranking has full resolution or only a
  // handful of tie classes.
  graph::Rng rng(3);
  const std::size_t n = 400;
  std::vector<double> scores(n);
  for (std::size_t i = 0; i < n; ++i) scores[i] = static_cast<double>(n - i);
  const graph::Graph g = graph::erdos_renyi_gnd(n, 16.0, rng);

  auto offset_with_levels = [&](std::size_t levels) {
    const TieLevels ties = quantize_scores(scores, levels);
    const ExplicitAcceptance acc(g, ties.ranking);
    const Matching m =
        stable_configuration(acc, ties.ranking, std::vector<std::uint32_t>(n, 3));
    return mean_abs_offset(m, ties.ranking) / static_cast<double>(n);
  };
  const double full = offset_with_levels(n);  // effectively strict
  const double coarse = offset_with_levels(10);
  EXPECT_LT(full, 0.12);
  EXPECT_LT(coarse, 0.15);
}

}  // namespace
}  // namespace strat::core
