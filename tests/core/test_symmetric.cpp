#include "core/symmetric.hpp"

#include <gtest/gtest.h>

#include "core/preference_cycle.hpp"
#include "graph/erdos_renyi.hpp"
#include "graph/rng.hpp"

namespace strat::core {
namespace {

std::vector<WeightedEdge> triangle(double wab, double wbc, double wac) {
  return {{0, 1, wab}, {1, 2, wbc}, {0, 2, wac}};
}

TEST(SymmetricMatching, Validation) {
  const std::vector<std::uint32_t> caps(3, 1);
  EXPECT_THROW((void)stable_symmetric_matching({{0, 0, 1.0}}, caps), std::invalid_argument);
  EXPECT_THROW((void)stable_symmetric_matching({{0, 5, 1.0}}, caps), std::invalid_argument);
  EXPECT_THROW((void)stable_symmetric_matching({{0, 1, 1.0}, {1, 0, 2.0}}, caps),
               std::invalid_argument);
  EXPECT_THROW((void)stable_symmetric_matching({{0, 1, 1.0}, {1, 2, 1.0}}, caps),
               std::invalid_argument);  // tie
}

TEST(SymmetricMatching, HeaviestEdgeAlwaysMatched) {
  const auto edges = triangle(3.0, 2.0, 1.0);
  const Matching m = stable_symmetric_matching(edges, {1, 1, 1});
  EXPECT_TRUE(m.are_matched(0, 1));  // weight 3 beats everything
  EXPECT_EQ(m.degree(2), 0u);
  EXPECT_TRUE(is_symmetric_stable(edges, m));
}

TEST(SymmetricMatching, TriangleWithCapacityTwo) {
  const auto edges = triangle(3.0, 2.0, 1.0);
  const Matching m = stable_symmetric_matching(edges, {2, 2, 2});
  // All three edges fit.
  EXPECT_TRUE(m.are_matched(0, 1));
  EXPECT_TRUE(m.are_matched(1, 2));
  EXPECT_TRUE(m.are_matched(0, 2));
  EXPECT_TRUE(is_symmetric_stable(edges, m));
}

TEST(SymmetricMatching, GreedyOrderIsNotWeightSum) {
  // Path a-b-c-d with weights 2, 3, 2.5: greedy takes {b,c} then
  // nothing else fits at capacity 1 except {a}-? a only knows b (full).
  const std::vector<WeightedEdge> edges{{0, 1, 2.0}, {1, 2, 3.0}, {2, 3, 2.5}};
  const Matching m = stable_symmetric_matching(edges, {1, 1, 1, 1});
  EXPECT_TRUE(m.are_matched(1, 2));
  EXPECT_EQ(m.degree(0), 0u);
  EXPECT_EQ(m.degree(3), 0u);
  EXPECT_TRUE(is_symmetric_stable(edges, m));
}

TEST(SymmetricMatching, EmptyInstances) {
  const Matching none = stable_symmetric_matching({}, {1, 1});
  EXPECT_EQ(none.connection_count(), 0u);
  const Matching zero_caps = stable_symmetric_matching(triangle(3, 2, 1), {0, 0, 0});
  EXPECT_EQ(zero_caps.connection_count(), 0u);
}

TEST(SymmetricMatching, SymmetricWeightsHaveNoPreferenceCycle) {
  // The §7 theory hook: symmetric utilities admit no preference cycle,
  // so Tan's criterion gives existence + uniqueness.
  graph::Rng rng(5);
  const std::size_t n = 9;
  std::vector<WeightedEdge> edges;
  for (PeerId a = 0; a < n; ++a) {
    for (PeerId b = static_cast<PeerId>(a + 1); b < n; ++b) {
      if (rng.bernoulli(0.6)) edges.push_back({a, b, rng.uniform()});
    }
  }
  const PreferenceSystem prefs = preferences_from_weights(edges, n);
  EXPECT_TRUE(is_cycle_free(prefs));
  EXPECT_FALSE(find_preference_cycle(prefs).has_value());
}

TEST(SymmetricMatching, StableOnRandomInstances) {
  graph::Rng rng(6);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 10 + rng.below(30);
    std::vector<WeightedEdge> edges;
    for (PeerId a = 0; a < n; ++a) {
      for (PeerId b = static_cast<PeerId>(a + 1); b < n; ++b) {
        if (rng.bernoulli(0.3)) edges.push_back({a, b, rng.uniform()});
      }
    }
    std::vector<std::uint32_t> caps(n);
    for (auto& c : caps) c = static_cast<std::uint32_t>(rng.below(4));
    const Matching m = stable_symmetric_matching(edges, caps);
    EXPECT_TRUE(is_symmetric_stable(edges, m)) << "trial " << trial;
    for (PeerId p = 0; p < n; ++p) EXPECT_LE(m.degree(p), caps[p]);
  }
}

TEST(SymmetricMatching, UniquenessViaIndependentGreedyOrders) {
  // Distinct weights make the outcome schedule-independent: shuffling
  // the edge list before solving changes nothing.
  graph::Rng rng(7);
  const std::size_t n = 20;
  std::vector<WeightedEdge> edges;
  for (PeerId a = 0; a < n; ++a) {
    for (PeerId b = static_cast<PeerId>(a + 1); b < n; ++b) {
      if (rng.bernoulli(0.4)) edges.push_back({a, b, rng.uniform()});
    }
  }
  const Matching m1 = stable_symmetric_matching(edges, std::vector<std::uint32_t>(n, 2));
  auto shuffled = edges;
  rng.shuffle(shuffled);
  const Matching m2 = stable_symmetric_matching(shuffled, std::vector<std::uint32_t>(n, 2));
  for (PeerId p = 0; p < n; ++p) {
    const auto a = m1.mates(p);
    const auto b = m2.mates(p);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t k = 0; k < a.size(); ++k) EXPECT_EQ(a[k], b[k]);
  }
}

TEST(SymmetricBlockingPair, DetectsInstability) {
  const auto edges = triangle(3.0, 2.0, 1.0);
  const GlobalRanking id = GlobalRanking::identity(3);
  Matching unstable(3, 1);
  unstable.connect(0, 2, id);  // weight 1; {0,1} with weight 3 blocks
  EXPECT_TRUE(is_symmetric_blocking_pair(edges, unstable, 0, 1));
  EXPECT_FALSE(is_symmetric_stable(edges, unstable));
  // Unacceptable pairs never block.
  EXPECT_FALSE(is_symmetric_blocking_pair({{0, 1, 1.0}}, Matching(3, 1), 1, 2));
}

TEST(PreferencesFromWeights, SortedByDescendingWeight) {
  const auto prefs = preferences_from_weights(triangle(3.0, 2.0, 1.0), 3);
  EXPECT_EQ(prefs[0], (std::vector<PeerId>{1, 2}));  // 3.0 then 1.0
  EXPECT_EQ(prefs[1], (std::vector<PeerId>{0, 2}));  // 3.0 then 2.0
  EXPECT_EQ(prefs[2], (std::vector<PeerId>{1, 0}));  // 2.0 then 1.0
}

}  // namespace
}  // namespace strat::core
