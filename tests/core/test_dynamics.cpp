#include "core/dynamics.hpp"

#include <gtest/gtest.h>

#include "graph/erdos_renyi.hpp"

namespace strat::core {
namespace {

struct Instance {
  GlobalRanking ranking;
  graph::Graph graph;
  std::unique_ptr<ExplicitAcceptance> acc;

  Instance(std::size_t n, double degree, std::uint64_t seed) {
    graph::Rng rng(seed);
    ranking = GlobalRanking::identity(n);
    graph = graph::erdos_renyi_gnd(n, degree, rng);
    acc = std::make_unique<ExplicitAcceptance>(graph, ranking);
  }
};

TEST(Dynamics, StartsEmptyWithFullDisorderScale) {
  Instance inst(100, 10.0, 1);
  graph::Rng rng(2);
  DynamicsEngine engine(*inst.acc, inst.ranking, std::vector<std::uint32_t>(100, 1),
                        Strategy::kBestMate, rng);
  EXPECT_EQ(engine.current().connection_count(), 0u);
  EXPECT_GT(engine.disorder(), 0.5);  // empty vs stable is near 1
}

TEST(Dynamics, ConvergesToStableConfiguration) {
  Instance inst(200, 10.0, 3);
  graph::Rng rng(4);
  DynamicsEngine engine(*inst.acc, inst.ranking, std::vector<std::uint32_t>(200, 1),
                        Strategy::kBestMate, rng);
  const double units = engine.run_until_stable(50.0);
  EXPECT_LT(units, 50.0);
  EXPECT_DOUBLE_EQ(engine.disorder(), 0.0);
  // Converged exactly to the unique stable configuration.
  for (PeerId p = 0; p < 200; ++p) {
    EXPECT_EQ(engine.current().mate(p), engine.stable().mate(p));
  }
}

TEST(Dynamics, Figure1ConvergenceWithinDUnits) {
  // §3: "the stable configuration is reached in less than n·d
  // initiatives (that is d base units)" for best-mate dynamics.
  for (const auto& [n, d] : std::vector<std::pair<std::size_t, double>>{
           {100, 50.0}, {1000, 10.0}, {1000, 50.0}}) {
    Instance inst(n, d, 5 + n);
    graph::Rng rng(6 + n);
    DynamicsEngine engine(*inst.acc, inst.ranking, std::vector<std::uint32_t>(n, 1),
                          Strategy::kBestMate, rng);
    const double units = engine.run_until_stable(d);
    EXPECT_LE(units, d) << "n=" << n << " d=" << d;
    EXPECT_DOUBLE_EQ(engine.disorder(), 0.0);
  }
}

TEST(Dynamics, TrajectoryIsRecorded) {
  Instance inst(100, 8.0, 7);
  graph::Rng rng(8);
  DynamicsEngine engine(*inst.acc, inst.ranking, std::vector<std::uint32_t>(100, 1),
                        Strategy::kBestMate, rng);
  const auto traj = engine.run(5.0, 4);
  ASSERT_GE(traj.size(), 20u);
  EXPECT_DOUBLE_EQ(traj.front().initiatives_per_peer, 0.0);
  EXPECT_GE(traj.front().disorder, traj.back().disorder);
  // x-axis is nondecreasing.
  for (std::size_t i = 1; i < traj.size(); ++i) {
    EXPECT_GE(traj[i].initiatives_per_peer, traj[i - 1].initiatives_per_peer);
  }
}

TEST(Dynamics, DisorderBroadlyDecreases) {
  Instance inst(300, 10.0, 9);
  graph::Rng rng(10);
  DynamicsEngine engine(*inst.acc, inst.ranking, std::vector<std::uint32_t>(300, 1),
                        Strategy::kBestMate, rng);
  const auto traj = engine.run(10.0, 2);
  // Compare first and last thirds.
  double early = 0.0;
  double late = 0.0;
  const std::size_t third = traj.size() / 3;
  for (std::size_t i = 0; i < third; ++i) early += traj[i].disorder;
  for (std::size_t i = traj.size() - third; i < traj.size(); ++i) late += traj[i].disorder;
  EXPECT_LT(late, early);
}

TEST(Dynamics, AllStrategiesReachTheSameStableState) {
  for (const Strategy s : {Strategy::kBestMate, Strategy::kDecremental, Strategy::kRandom}) {
    Instance inst(80, 8.0, 11);
    graph::Rng rng(12);
    DynamicsEngine engine(*inst.acc, inst.ranking, std::vector<std::uint32_t>(80, 1), s, rng);
    engine.run_until_stable(400.0);
    EXPECT_DOUBLE_EQ(engine.disorder(), 0.0) << strategy_name(s);
  }
}

TEST(Dynamics, BMatchingConvergesToo) {
  Instance inst(60, 12.0, 13);
  graph::Rng rng(14);
  DynamicsEngine engine(*inst.acc, inst.ranking, std::vector<std::uint32_t>(60, 3),
                        Strategy::kBestMate, rng);
  engine.run_until_stable(100.0);
  EXPECT_DOUBLE_EQ(engine.disorder(), 0.0);
  EXPECT_NO_THROW(engine.current().validate(inst.ranking));
}

TEST(Dynamics, SetCurrentValidates) {
  Instance inst(20, 5.0, 15);
  graph::Rng rng(16);
  DynamicsEngine engine(*inst.acc, inst.ranking, std::vector<std::uint32_t>(20, 1),
                        Strategy::kBestMate, rng);
  EXPECT_THROW(engine.set_current(Matching(19, 1)), std::invalid_argument);
  EXPECT_THROW(engine.set_current(Matching(20, 2)), std::invalid_argument);
  Matching replacement(20, 1);
  replacement.connect(0, 5, inst.ranking);
  engine.set_current(std::move(replacement));
  EXPECT_TRUE(engine.current().are_matched(0, 5));
}

TEST(Dynamics, Figure2RemovalRecoveryIsSmallAndFast) {
  // Start from the stable configuration, remove one peer, and verify
  // the disorder stays small and vanishes within d base units.
  const std::size_t n = 500;
  const double d = 10.0;
  Instance inst(n, d, 17);
  graph::Rng rng(18);
  // Build the perturbed instance: peer `victim` loses all acceptances.
  const PeerId victim = 50;
  graph::Graph perturbed = inst.graph;
  perturbed.isolate(victim);
  const ExplicitAcceptance acc2(perturbed, inst.ranking);
  std::vector<std::uint32_t> caps(n, 1);
  caps[victim] = 0;
  DynamicsEngine engine(acc2, inst.ranking, caps, Strategy::kBestMate, rng);
  // Seed with the original stable configuration minus the victim.
  Matching start = stable_configuration(*inst.acc, inst.ranking,
                                        std::vector<std::uint32_t>(n, 1));
  if (start.mate(victim) != kNoPeer) start.clear_peer(victim);
  Matching seeded(caps);
  for (PeerId p = 0; p < n; ++p) {
    const PeerId q = start.mate(p);
    if (q != kNoPeer && q > p) seeded.connect(p, q, inst.ranking);
  }
  engine.set_current(std::move(seeded));
  EXPECT_LT(engine.disorder(), 0.05);  // removal perturbs only locally
  const double units = engine.run_until_stable(2.0 * d);
  EXPECT_LE(units, 2.0 * d);
  EXPECT_DOUBLE_EQ(engine.disorder(), 0.0);
}

TEST(Dynamics, ActiveInitiativeCountIsBounded) {
  // Theorem 1: the stable state is reachable in B/2 initiatives; the
  // best-mate schedule may waste some, but active ones stay modest.
  Instance inst(100, 20.0, 19);
  graph::Rng rng(20);
  DynamicsEngine engine(*inst.acc, inst.ranking, std::vector<std::uint32_t>(100, 1),
                        Strategy::kBestMate, rng);
  engine.run_until_stable(100.0);
  EXPECT_GT(engine.initiatives(), 0u);
  EXPECT_LE(engine.active_initiatives(), engine.initiatives());
  // Active initiatives can exceed B/2 (peers may re-pair), but not
  // wildly for best-mate dynamics.
  EXPECT_LT(engine.active_initiatives(), 100u * 5u);
}

}  // namespace
}  // namespace strat::core
