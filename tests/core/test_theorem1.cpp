// Property suite for Theorem 1 (§3): starting from any initial
// configuration, any sequence of active initiatives reaches the unique
// stable configuration; it is reachable in at most B/2 initiatives.
#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "core/blocking.hpp"
#include "core/initiative.hpp"
#include "core/solver.hpp"
#include "graph/erdos_renyi.hpp"
#include "graph/rng.hpp"

namespace strat::core {
namespace {

/// Random valid configuration over the acceptance graph.
Matching random_configuration(const AcceptanceGraph& acc, const GlobalRanking& ranking,
                              const std::vector<std::uint32_t>& caps, graph::Rng& rng) {
  Matching m{std::vector<std::uint32_t>(caps)};
  const std::size_t attempts = acc.size() * 4;
  for (std::size_t a = 0; a < attempts; ++a) {
    const auto p = static_cast<PeerId>(rng.below(acc.size()));
    if (acc.degree(p) == 0 || m.is_full(p)) continue;
    const PeerId q = acc.neighbor(p, static_cast<std::size_t>(rng.below(acc.degree(p))));
    if (!m.is_full(q) && !m.are_matched(p, q)) m.connect(p, q, ranking);
  }
  return m;
}

bool same_matching(const Matching& a, const Matching& b) {
  if (a.size() != b.size()) return false;
  for (PeerId p = 0; p < a.size(); ++p) {
    const auto x = a.mates(p);
    const auto y = b.mates(p);
    if (x.size() != y.size()) return false;
    for (std::size_t k = 0; k < x.size(); ++k) {
      if (x[k] != y[k]) return false;
    }
  }
  return true;
}

using Param = std::tuple<std::size_t, double, std::uint32_t, int>;

class Theorem1Sweep : public ::testing::TestWithParam<Param> {};

TEST_P(Theorem1Sweep, AnyActiveInitiativeScheduleConverges) {
  const auto [n, degree, b0, strategy_ix] = GetParam();
  const auto strategy = static_cast<Strategy>(strategy_ix);
  graph::Rng rng(9000 + n * 7 + static_cast<std::size_t>(degree) + b0 * 31 +
                 static_cast<std::size_t>(strategy_ix));
  const GlobalRanking ranking = GlobalRanking::identity(n);
  const graph::Graph g = graph::erdos_renyi_gnd(n, degree, rng);
  const ExplicitAcceptance acc(g, ranking);
  const std::vector<std::uint32_t> caps(n, b0);
  const Matching stable = stable_configuration(acc, ranking, std::vector<std::uint32_t>(caps));

  // Start from a random (possibly unstable) configuration.
  Matching current = random_configuration(acc, ranking, caps, rng);
  std::vector<std::size_t> cursors(n, 0);
  // Generous budget: random initiatives are mostly inactive near the
  // stable state, so allow many steps; stability only needs re-checking
  // after a configuration change.
  const std::size_t budget = n * n * (b0 + 1) * 50;
  std::size_t steps = 0;
  bool reached = is_stable(acc, ranking, current);
  while (!reached && steps < budget) {
    const auto p = static_cast<PeerId>(rng.below(n));
    if (take_initiative(acc, ranking, current, p, strategy, cursors, rng)) {
      reached = is_stable(acc, ranking, current);
    }
    ++steps;
  }
  ASSERT_TRUE(reached) << "did not converge in " << budget;
  // Uniqueness: the reached stable configuration is THE stable one.
  EXPECT_TRUE(same_matching(current, stable));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, Theorem1Sweep,
    ::testing::Combine(::testing::Values<std::size_t>(12, 30, 60),
                       ::testing::Values(4.0, 10.0),
                       ::testing::Values<std::uint32_t>(1, 2, 3),
                       ::testing::Values(0, 1, 2)));  // best, decremental, random

TEST(Theorem1, ReachableInHalfTotalCapacityInitiatives) {
  // The constructive half: execute Algorithm 1's connections as
  // initiatives — exactly the stable configuration's connection count
  // (<= B/2) active initiatives suffice from the empty configuration.
  graph::Rng rng(77);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 40;
    const std::uint32_t b0 = 1 + static_cast<std::uint32_t>(rng.below(3));
    const GlobalRanking ranking = GlobalRanking::identity(n);
    const graph::Graph g = graph::erdos_renyi_gnd(n, 8.0, rng);
    const ExplicitAcceptance acc(g, ranking);
    const Matching stable =
        stable_configuration(acc, ranking, std::vector<std::uint32_t>(n, b0));

    Matching current(n, b0);
    std::size_t initiatives = 0;
    // Replay the stable configuration's edges in rank order of the
    // better endpoint: each is a blocking pair of the partial config.
    for (Rank r = 0; r < n; ++r) {
      const PeerId p = ranking.peer_at(r);
      for (PeerId q : stable.mates(p)) {
        if (ranking.prefers(p, q)) continue;  // count each edge once
        ASSERT_TRUE(is_blocking_pair(acc, ranking, current, p, q));
        execute_blocking_pair(ranking, current, p, q);
        ++initiatives;
      }
    }
    EXPECT_TRUE(is_stable(acc, ranking, current));
    EXPECT_LE(initiatives, current.total_capacity() / 2);
    EXPECT_TRUE(same_matching(current, stable));
  }
}

TEST(Theorem1, NoConfigurationRepeatsUnderActiveInitiatives) {
  // The proof's core invariant: a sequence of active initiatives never
  // revisits a configuration. We fingerprint configurations and check
  // for repeats along a long active run.
  graph::Rng rng(88);
  const std::size_t n = 14;
  const GlobalRanking ranking = GlobalRanking::identity(n);
  const graph::Graph g = graph::erdos_renyi_gnp(n, 0.5, rng);
  const ExplicitAcceptance acc(g, ranking);
  Matching current(n, 1);
  std::vector<std::size_t> cursors(n, 0);
  std::set<std::vector<PeerId>> seen;
  auto fingerprint = [&]() {
    std::vector<PeerId> f(n);
    for (PeerId p = 0; p < n; ++p) f[p] = current.mate(p);
    return f;
  };
  seen.insert(fingerprint());
  std::size_t actives = 0;
  for (int step = 0; step < 20000 && actives < 500; ++step) {
    const auto p = static_cast<PeerId>(rng.below(n));
    if (random_initiative(acc, ranking, current, p, rng)) {
      ++actives;
      EXPECT_TRUE(seen.insert(fingerprint()).second)
          << "configuration repeated after " << actives << " active initiatives";
    }
  }
  EXPECT_TRUE(is_stable(acc, ranking, current));
}

}  // namespace
}  // namespace strat::core
