#include "core/bilateral.hpp"

#include <gtest/gtest.h>

#include <set>

#include "graph/erdos_renyi.hpp"
#include "sim/stats.hpp"

namespace strat::core {
namespace {

BilateralConfig config(std::uint32_t up, std::uint32_t down, ServerPolicy policy) {
  BilateralConfig cfg;
  cfg.upload_slots = up;
  cfg.download_slots = down;
  cfg.policy = policy;
  return cfg;
}

TEST(Bilateral, Validation) {
  graph::Rng rng(1);
  const GlobalRanking ranking = GlobalRanking::identity(4);
  const CompleteAcceptance acc(4, ranking);
  EXPECT_THROW((void)bilateral_assignment(acc, ranking,
                                          config(0, 2, ServerPolicy::kGlobalRank), rng),
               std::invalid_argument);
  EXPECT_THROW((void)bilateral_assignment(acc, ranking,
                                          config(2, 0, ServerPolicy::kGlobalRank), rng),
               std::invalid_argument);
}

TEST(Bilateral, RespectsSlotBounds) {
  graph::Rng rng(2);
  const std::size_t n = 40;
  const GlobalRanking ranking = GlobalRanking::identity(n);
  const graph::Graph g = graph::erdos_renyi_gnd(n, 12.0, rng);
  const ExplicitAcceptance acc(g, ranking);
  for (const ServerPolicy policy : {ServerPolicy::kRandomQueue, ServerPolicy::kGlobalRank}) {
    const auto cfg = config(3, 2, policy);
    const BilateralAssignment a = bilateral_assignment(acc, ranking, cfg, rng);
    for (PeerId p = 0; p < n; ++p) {
      EXPECT_LE(a.serves[p].size(), 3u);
      EXPECT_LE(a.sources[p].size(), 2u);
      // No duplicates and only acceptable pairs.
      std::set<PeerId> unique(a.sources[p].begin(), a.sources[p].end());
      EXPECT_EQ(unique.size(), a.sources[p].size());
      for (PeerId q : a.sources[p]) EXPECT_TRUE(acc.accepts(p, q));
    }
  }
}

TEST(Bilateral, ServesAndSourcesAreConsistent) {
  graph::Rng rng(3);
  const std::size_t n = 30;
  const GlobalRanking ranking = GlobalRanking::identity(n);
  const graph::Graph g = graph::erdos_renyi_gnd(n, 10.0, rng);
  const ExplicitAcceptance acc(g, ranking);
  const BilateralAssignment a =
      bilateral_assignment(acc, ranking, config(2, 2, ServerPolicy::kRandomQueue), rng);
  std::size_t serve_edges = 0;
  for (PeerId q = 0; q < n; ++q) {
    for (PeerId p : a.serves[q]) {
      const auto& sources = a.sources[p];
      EXPECT_NE(std::find(sources.begin(), sources.end(), q), sources.end())
          << q << " serves " << p << " but is not a source of it";
      ++serve_edges;
    }
  }
  EXPECT_EQ(serve_edges, a.connection_count());
}

TEST(Bilateral, DeferredAcceptanceIsStable) {
  graph::Rng rng(4);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 25 + rng.below(25);
    const GlobalRanking ranking = GlobalRanking::identity(n);
    const graph::Graph g = graph::erdos_renyi_gnd(n, 8.0, rng);
    const ExplicitAcceptance acc(g, ranking);
    for (const ServerPolicy policy : {ServerPolicy::kRandomQueue, ServerPolicy::kGlobalRank}) {
      const auto cfg = config(2, 3, policy);
      const BilateralAssignment a = bilateral_assignment(acc, ranking, cfg, rng);
      EXPECT_TRUE(bilateral_is_stable(acc, ranking, cfg, a)) << "trial " << trial;
    }
  }
}

TEST(Bilateral, CompleteGraphGlobalRankMirrorsTftStratification) {
  // With rank-based server priority on a complete graph, the best
  // clients monopolize the best sources: top peers' sources are other
  // top peers.
  graph::Rng rng(5);
  const std::size_t n = 30;
  const GlobalRanking ranking = GlobalRanking::identity(n);
  const CompleteAcceptance acc(n, ranking);
  const BilateralAssignment a =
      bilateral_assignment(acc, ranking, config(2, 2, ServerPolicy::kGlobalRank), rng);
  // Peer 0 downloads from the two best other peers.
  const std::set<PeerId> sources0(a.sources[0].begin(), a.sources[0].end());
  EXPECT_TRUE(sources0.count(1));
  EXPECT_TRUE(sources0.count(2));
}

TEST(Bilateral, RandomQueueDecouplesDownloadFromRank) {
  // The headline free-riding property: under the arrival-queue policy,
  // download is uncorrelated with a peer's own rank; under the
  // rank-based policy it strongly correlates.
  graph::Rng rng(6);
  const std::size_t n = 300;
  const GlobalRanking ranking = GlobalRanking::identity(n);
  const graph::Graph g = graph::erdos_renyi_gnd(n, 20.0, rng);
  const ExplicitAcceptance acc(g, ranking);
  std::vector<double> weight(n);
  for (std::size_t i = 0; i < n; ++i) weight[i] = static_cast<double>(n - i);

  std::vector<double> ranks(n);
  for (std::size_t i = 0; i < n; ++i) ranks[i] = static_cast<double>(i);

  const auto queue = bilateral_assignment(
      acc, ranking, config(4, 4, ServerPolicy::kRandomQueue), rng);
  const auto credit = bilateral_assignment(
      acc, ranking, config(4, 4, ServerPolicy::kGlobalRank), rng);
  const double corr_queue = sim::spearman(ranks, bilateral_download(queue, weight));
  const double corr_credit = sim::spearman(ranks, bilateral_download(credit, weight));
  // Rank 0 is the best peer, so stratified download decreases in rank:
  // strongly negative correlation under credit, near zero under queue.
  EXPECT_GT(corr_queue, -0.35);
  EXPECT_LT(corr_credit, -0.6);
}

TEST(Bilateral, DownloadValidation) {
  BilateralAssignment a;
  a.serves.resize(3);
  a.sources.resize(3);
  EXPECT_THROW((void)bilateral_download(a, {1.0, 2.0}), std::invalid_argument);
  const auto d = bilateral_download(a, {1.0, 2.0, 3.0});
  EXPECT_EQ(d.size(), 3u);
  for (double v : d) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Bilateral, ClientOptimality) {
  // Deferred acceptance with clients proposing yields the client-optimal
  // stable outcome: on a complete graph with ample server capacity every
  // client simply gets its top choices.
  graph::Rng rng(7);
  const std::size_t n = 12;
  const GlobalRanking ranking = GlobalRanking::identity(n);
  const CompleteAcceptance acc(n, ranking);
  const BilateralAssignment a =
      bilateral_assignment(acc, ranking, config(11, 2, ServerPolicy::kRandomQueue), rng);
  for (PeerId p = 0; p < n; ++p) {
    ASSERT_EQ(a.sources[p].size(), 2u);
    // Top-2 acceptable sources by rank.
    const PeerId first = acc.neighbor(p, 0);
    const PeerId second = acc.neighbor(p, 1);
    EXPECT_TRUE((a.sources[p][0] == first && a.sources[p][1] == second) ||
                (a.sources[p][0] == second && a.sources[p][1] == first));
  }
}

}  // namespace
}  // namespace strat::core
