#include "core/churn.hpp"

#include <gtest/gtest.h>

namespace strat::core {
namespace {

ChurnParams small_params() {
  ChurnParams p;
  p.initial_peers = 100;
  p.expected_degree = 10.0;
  p.capacity = 1;
  p.churn_rate = 0.0;
  return p;
}

TEST(Churn, RejectsDegenerateParams) {
  graph::Rng rng(1);
  ChurnParams p = small_params();
  p.initial_peers = 1;
  EXPECT_THROW(ChurnSimulator(p, rng), std::invalid_argument);
  p = small_params();
  p.churn_rate = 1.5;
  EXPECT_THROW(ChurnSimulator(p, rng), std::invalid_argument);
}

TEST(Churn, NoChurnConvergesToZeroDisorder) {
  graph::Rng rng(2);
  ChurnSimulator sim(small_params(), rng);
  sim.run(30.0, 2);
  EXPECT_NEAR(sim.instant_disorder(), 0.0, 1e-12);
  EXPECT_EQ(sim.arrivals(), 0u);
  EXPECT_EQ(sim.departures(), 0u);
  EXPECT_EQ(sim.active_count(), 100u);
}

TEST(Churn, ReplacementKeepsPopulationStationary) {
  graph::Rng rng(3);
  ChurnParams p = small_params();
  p.churn_rate = 0.05;
  ChurnSimulator sim(p, rng);
  sim.run(10.0, 1);
  EXPECT_EQ(sim.active_count(), 100u);
  EXPECT_GT(sim.arrivals(), 0u);
  EXPECT_EQ(sim.arrivals(), sim.departures());
}

TEST(Churn, RemovalOnlyShrinks) {
  graph::Rng rng(4);
  ChurnParams p = small_params();
  p.churn_rate = 0.02;
  p.kind = ChurnKind::kRemovalOnly;
  ChurnSimulator sim(p, rng);
  sim.run(5.0, 1);
  EXPECT_LT(sim.active_count(), 100u);
  EXPECT_EQ(sim.arrivals(), 0u);
}

TEST(Churn, ArrivalOnlyGrows) {
  graph::Rng rng(5);
  ChurnParams p = small_params();
  p.churn_rate = 0.02;
  p.kind = ChurnKind::kArrivalOnly;
  ChurnSimulator sim(p, rng);
  sim.run(5.0, 1);
  EXPECT_GT(sim.active_count(), 100u);
  EXPECT_EQ(sim.departures(), 0u);
}

TEST(Churn, MatchingStaysValidUnderHeavyChurn) {
  graph::Rng rng(6);
  ChurnParams p = small_params();
  p.churn_rate = 0.2;
  p.capacity = 2;
  ChurnSimulator sim(p, rng);
  sim.run(10.0, 1);
  EXPECT_NO_THROW(sim.current().validate(sim.ranking()));
  // No ghost may hold a collaboration.
  std::vector<bool> active(sim.current().size(), false);
  for (PeerId id : sim.active()) active[id] = true;
  for (PeerId id = 0; id < sim.current().size(); ++id) {
    if (!active[id]) {
      EXPECT_EQ(sim.current().degree(id), 0u) << "ghost " << id;
    }
  }
}

TEST(Churn, DisorderScalesWithChurnRate) {
  // Figure 3's qualitative claim: the residual disorder grows with the
  // churn rate. Compare a light and a heavy rate after burn-in.
  auto plateau = [](double rate, std::uint64_t seed) {
    graph::Rng rng(seed);
    ChurnParams p;
    p.initial_peers = 200;
    p.expected_degree = 10.0;
    p.churn_rate = rate;
    ChurnSimulator sim(p, rng);
    sim.run(10.0, 1);  // burn-in
    const auto traj = sim.run(10.0, 2);
    double mean = 0.0;
    for (const auto& pt : traj) mean += pt.disorder;
    return mean / static_cast<double>(traj.size());
  };
  const double light = plateau(0.002, 7);
  const double heavy = plateau(0.05, 8);
  EXPECT_LT(light, heavy);
}

TEST(Churn, TrajectorySamplesInstantDisorder) {
  graph::Rng rng(9);
  ChurnParams p = small_params();
  p.churn_rate = 0.01;
  ChurnSimulator sim(p, rng);
  const auto traj = sim.run(5.0, 2);
  ASSERT_GE(traj.size(), 10u);
  for (const auto& pt : traj) {
    EXPECT_GE(pt.disorder, 0.0);
    EXPECT_LE(pt.disorder, 1.5);
  }
}

TEST(Churn, RunRejectsZeroSampling) {
  graph::Rng rng(10);
  ChurnSimulator sim(small_params(), rng);
  EXPECT_THROW(sim.run(1.0, 0), std::invalid_argument);
}

}  // namespace
}  // namespace strat::core
