// Adversarial Matching invariant tests: fill-to-capacity churn, invalid
// operations that must not corrupt state, and a randomized
// connect/disconnect fuzz checked against a set-of-edges oracle. The
// happy paths live in test_matching.cpp; everything here leans on
// Matching::validate() to prove internal consistency after each abuse.
#include "core/matching.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/ranking.hpp"
#include "graph/rng.hpp"

namespace strat::core {
namespace {

TEST(MatchingAdversarial, FillToCapacityThenDrainEverySlot) {
  constexpr std::size_t kN = 8;
  constexpr std::uint32_t kB0 = 3;
  const GlobalRanking ranking = GlobalRanking::identity(kN);
  Matching m(kN, kB0);

  // Greedily connect every pair until all endpoints are saturated.
  std::vector<std::pair<PeerId, PeerId>> edges;
  for (PeerId p = 0; p < kN; ++p) {
    for (PeerId q = static_cast<PeerId>(p + 1); q < kN; ++q) {
      if (m.is_full(p) || m.is_full(q)) continue;
      m.connect(p, q, ranking);
      edges.emplace_back(p, q);
    }
  }
  EXPECT_NO_THROW(m.validate(ranking));
  EXPECT_EQ(m.connection_count(), edges.size());
  // Theorem 1 bound: |edges| <= B/2.
  EXPECT_LE(2 * m.connection_count(), m.total_capacity());
  for (PeerId p = 0; p < kN; ++p) EXPECT_LE(m.degree(p), kB0);

  // Any further connect on a saturated endpoint must throw and must not
  // disturb the configuration.
  const std::size_t before = m.connection_count();
  for (PeerId p = 0; p < kN; ++p) {
    if (!m.is_full(p)) continue;
    for (PeerId q = 0; q < kN; ++q) {
      if (q == p || m.are_matched(p, q)) continue;
      EXPECT_THROW(m.connect(p, q, ranking), std::invalid_argument);
    }
  }
  EXPECT_EQ(m.connection_count(), before);
  EXPECT_NO_THROW(m.validate(ranking));

  // Drain in reverse order; the matching must end exactly empty.
  std::reverse(edges.begin(), edges.end());
  for (const auto& [p, q] : edges) m.disconnect(q, p);  // reversed endpoints too
  EXPECT_EQ(m.connection_count(), 0u);
  for (PeerId p = 0; p < kN; ++p) EXPECT_EQ(m.degree(p), 0u);
  EXPECT_NO_THROW(m.validate(ranking));
}

TEST(MatchingAdversarial, SelfConnectRejectedWithoutStateChange) {
  const GlobalRanking ranking = GlobalRanking::identity(4);
  Matching m(4, 2);
  m.connect(0, 1, ranking);
  for (PeerId p = 0; p < 4; ++p) {
    EXPECT_THROW(m.connect(p, p, ranking), std::invalid_argument);
  }
  EXPECT_EQ(m.connection_count(), 1u);
  EXPECT_TRUE(m.are_matched(0, 1));
  EXPECT_NO_THROW(m.validate(ranking));
}

TEST(MatchingAdversarial, DoubleDisconnectThrowsAndPreservesState) {
  const GlobalRanking ranking = GlobalRanking::identity(4);
  Matching m(4, 2);
  m.connect(0, 1, ranking);
  m.connect(0, 2, ranking);
  m.disconnect(0, 1);
  EXPECT_THROW(m.disconnect(0, 1), std::invalid_argument);
  EXPECT_THROW(m.disconnect(1, 0), std::invalid_argument);  // reversed too
  EXPECT_TRUE(m.are_matched(0, 2));
  EXPECT_EQ(m.connection_count(), 1u);
  EXPECT_NO_THROW(m.validate(ranking));
}

TEST(MatchingAdversarial, ReconnectAfterDisconnectIsClean) {
  const GlobalRanking ranking = GlobalRanking::identity(3);
  Matching m(3, 1);
  for (int round = 0; round < 50; ++round) {
    m.connect(0, 1, ranking);
    EXPECT_TRUE(m.is_full(0));
    m.disconnect(0, 1);
    EXPECT_EQ(m.degree(0), 0u);
  }
  EXPECT_EQ(m.connection_count(), 0u);
  EXPECT_NO_THROW(m.validate(ranking));
}

TEST(MatchingAdversarial, ClearPeerOnIsolatedPeerIsANoOp) {
  const GlobalRanking ranking = GlobalRanking::identity(3);
  Matching m(3, 2);
  m.connect(1, 2, ranking);
  m.clear_peer(0);
  m.clear_peer(0);  // twice: still fine
  EXPECT_EQ(m.connection_count(), 1u);
  EXPECT_NO_THROW(m.validate(ranking));
}

TEST(MatchingAdversarial, RandomizedChurnAgainstEdgeSetOracle) {
  constexpr std::size_t kN = 24;
  constexpr std::uint32_t kB0 = 4;
  constexpr int kSteps = 5000;
  const GlobalRanking ranking = GlobalRanking::identity(kN);
  Matching m(kN, kB0);
  graph::Rng rng(2024);

  std::set<std::pair<PeerId, PeerId>> oracle;  // normalized (min, max) pairs
  auto key = [](PeerId p, PeerId q) {
    return std::make_pair(std::min(p, q), std::max(p, q));
  };

  for (int step = 0; step < kSteps; ++step) {
    const auto p = static_cast<PeerId>(rng.below(kN));
    const auto q = static_cast<PeerId>(rng.below(kN));
    if (rng.bernoulli(0.6)) {
      const bool legal =
          p != q && !m.are_matched(p, q) && !m.is_full(p) && !m.is_full(q);
      if (legal) {
        m.connect(p, q, ranking);
        oracle.insert(key(p, q));
      } else {
        EXPECT_THROW(m.connect(p, q, ranking), std::invalid_argument);
      }
    } else {
      if (p != q && m.are_matched(p, q)) {
        m.disconnect(p, q);
        oracle.erase(key(p, q));
      } else {
        EXPECT_THROW(m.disconnect(p, q), std::invalid_argument);
      }
    }
  }

  EXPECT_EQ(m.connection_count(), oracle.size());
  for (PeerId p = 0; p < kN; ++p) {
    std::size_t expected = 0;
    for (const auto& e : oracle) expected += (e.first == p || e.second == p) ? 1 : 0;
    EXPECT_EQ(m.degree(p), expected) << "peer " << p;
    for (PeerId q = 0; q < kN; ++q) {
      if (p == q) continue;
      EXPECT_EQ(m.are_matched(p, q), oracle.count(key(p, q)) == 1);
    }
  }
  EXPECT_NO_THROW(m.validate(ranking));
}

}  // namespace
}  // namespace strat::core
