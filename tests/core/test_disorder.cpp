#include "core/disorder.hpp"

#include <gtest/gtest.h>

#include "core/solver.hpp"
#include "graph/rng.hpp"

namespace strat::core {
namespace {

TEST(Disorder, PaperNormalization) {
  // §3: the distance between a complete (perfect) matching and the
  // empty configuration equals 1.
  const std::size_t n = 10;
  const GlobalRanking ranking = GlobalRanking::identity(n);
  Matching perfect(n, 1);
  for (PeerId p = 0; p < n; p += 2) perfect.connect(p, p + 1, ranking);
  const Matching empty(n, 1);
  EXPECT_NEAR(disorder_1matching(perfect, empty, ranking), 1.0, 1e-12);
}

TEST(Disorder, NormalizationHoldsForAnyPerfectMatching) {
  graph::Rng rng(3);
  const std::size_t n = 12;
  const GlobalRanking ranking = GlobalRanking::identity(n);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<PeerId> ids(n);
    for (PeerId p = 0; p < n; ++p) ids[p] = p;
    rng.shuffle(ids);
    Matching perfect(n, 1);
    for (std::size_t k = 0; k < n; k += 2) perfect.connect(ids[k], ids[k + 1], ranking);
    EXPECT_NEAR(disorder_1matching(perfect, Matching(n, 1), ranking), 1.0, 1e-12);
  }
}

TEST(Disorder, IdenticalConfigurationsAreAtZero) {
  const std::size_t n = 8;
  const GlobalRanking ranking = GlobalRanking::identity(n);
  Matching m(n, 1);
  m.connect(0, 3, ranking);
  m.connect(1, 2, ranking);
  EXPECT_DOUBLE_EQ(disorder_1matching(m, m, ranking), 0.0);
}

TEST(Disorder, SymmetricInArguments) {
  const std::size_t n = 6;
  const GlobalRanking ranking = GlobalRanking::identity(n);
  Matching a(n, 1);
  a.connect(0, 1, ranking);
  Matching b(n, 1);
  b.connect(0, 5, ranking);
  b.connect(2, 3, ranking);
  EXPECT_DOUBLE_EQ(disorder_1matching(a, b, ranking), disorder_1matching(b, a, ranking));
}

TEST(Disorder, SingleSwapValue) {
  // n=4: C1 = {01, 23} (stable), C2 = {03, 21}.
  // sigma differences: peer0 |2-4|=2, peer1 |1-3|=2, peer2 |4-2|=2,
  // peer3 |3-1|=2; sum 8 -> D = 8*2/(4*5) = 0.8.
  const GlobalRanking ranking = GlobalRanking::identity(4);
  Matching c1(4, 1);
  c1.connect(0, 1, ranking);
  c1.connect(2, 3, ranking);
  Matching c2(4, 1);
  c2.connect(0, 3, ranking);
  c2.connect(2, 1, ranking);
  EXPECT_NEAR(disorder_1matching(c1, c2, ranking), 0.8, 1e-12);
}

TEST(Disorder, RejectsNon1Matchings) {
  const GlobalRanking ranking = GlobalRanking::identity(4);
  Matching b2(4, 2);
  b2.connect(0, 1, ranking);
  b2.connect(0, 2, ranking);
  EXPECT_THROW((void)disorder_1matching(b2, Matching(4, 2), ranking), std::invalid_argument);
}

TEST(Disorder, RejectsSizeMismatch) {
  const GlobalRanking ranking = GlobalRanking::identity(4);
  EXPECT_THROW((void)disorder_1matching(Matching(4, 1), Matching(3, 1), ranking),
               std::invalid_argument);
}

TEST(DisorderB, CoincidesWithPaperMetricAtB1) {
  graph::Rng rng(9);
  const std::size_t n = 10;
  const GlobalRanking ranking = GlobalRanking::identity(n);
  for (int trial = 0; trial < 5; ++trial) {
    Matching a(n, 1);
    Matching b(n, 1);
    for (PeerId p = 0; p < n; ++p) {
      const auto q = static_cast<PeerId>(rng.below(n));
      if (p != q && !a.is_full(p) && !a.is_full(q) && !a.are_matched(p, q)) {
        a.connect(p, q, ranking);
      }
      const auto q2 = static_cast<PeerId>(rng.below(n));
      if (p != q2 && !b.is_full(p) && !b.is_full(q2) && !b.are_matched(p, q2)) {
        b.connect(p, q2, ranking);
      }
    }
    EXPECT_NEAR(disorder_bmatching(a, b, ranking), disorder_1matching(a, b, ranking), 1e-12);
  }
}

TEST(DisorderB, DetectsSlotwiseDifferences) {
  const GlobalRanking ranking = GlobalRanking::identity(6);
  Matching a(6, 2);
  a.connect(0, 1, ranking);
  a.connect(0, 2, ranking);
  Matching b(6, 2);
  b.connect(0, 1, ranking);
  EXPECT_GT(disorder_bmatching(a, b, ranking), 0.0);
  EXPECT_DOUBLE_EQ(disorder_bmatching(a, a, ranking), 0.0);
}

TEST(DisorderB, RejectsCapacityMismatch) {
  const GlobalRanking ranking = GlobalRanking::identity(4);
  EXPECT_THROW((void)disorder_bmatching(Matching(4, 1), Matching(4, 2), ranking),
               std::invalid_argument);
}

TEST(DisorderActive, IgnoresInactivePeers) {
  const GlobalRanking ranking = GlobalRanking::identity(6);
  Matching a(6, 1);
  a.connect(0, 1, ranking);
  a.connect(2, 5, ranking);  // 5 will be inactive
  Matching b(6, 1);
  b.connect(0, 1, ranking);
  const std::vector<PeerId> active{0, 1, 2, 3, 4};
  // Peer 2's mate (5) is inactive -> counts as unmatched in both; a and
  // b agree on the active restriction.
  EXPECT_DOUBLE_EQ(disorder_1matching_active(a, b, ranking, active), 0.0);
}

TEST(DisorderActive, ActiveRanksAreRelative) {
  // Active peers {2, 4} with identity scores: 2 has active rank 1, 4
  // active rank 2.
  const GlobalRanking ranking = GlobalRanking::identity(6);
  Matching a(6, 1);
  a.connect(2, 4, ranking);
  const Matching b(6, 1);
  const std::vector<PeerId> active{2, 4};
  // sigma_a = (2, 1), sigma_b = (3, 3): sum = 1 + 2 = 3; D = 3*2/(2*3)=1.
  EXPECT_NEAR(disorder_1matching_active(a, b, ranking, active), 1.0, 1e-12);
}

TEST(DisorderActive, EmptyActiveSetIsZero) {
  const GlobalRanking ranking = GlobalRanking::identity(4);
  EXPECT_DOUBLE_EQ(disorder_1matching_active(Matching(4, 1), Matching(4, 1), ranking, {}), 0.0);
}

}  // namespace
}  // namespace strat::core
