// Dynamic-overlay unit tests: join/leave/re-announce semantics, edge
// slot recycling (free list + generation stamps), mutual-unchoke
// history surviving slot reuse, arrival-aware rate metrics, and the
// determinism of churned scenario runs.
#include <gtest/gtest.h>

#include <algorithm>

#include "bittorrent/scenario.hpp"
#include "bittorrent/swarm.hpp"

namespace strat::bt {
namespace {

std::vector<double> bandwidths(std::size_t n, double base = 400.0) {
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = base * (1.0 + 0.001 * static_cast<double>(i));
  return out;
}

SwarmConfig small_config() {
  SwarmConfig cfg;
  cfg.num_peers = 30;
  cfg.seeds = 2;
  cfg.num_pieces = 32;
  cfg.piece_kb = 16.0;
  cfg.neighbor_degree = 8.0;
  cfg.initial_completion = 0.4;
  return cfg;
}

TEST(SwarmChurn, JoinConnectsTowardTrackerDegree) {
  graph::Rng rng(1);
  const SwarmConfig cfg = small_config();
  Swarm swarm(cfg, bandwidths(30), rng);
  const std::size_t slots_before = swarm.edge_slot_capacity();
  const core::PeerId p = swarm.join(500.0);
  EXPECT_EQ(p, 32u);  // 30 leechers + 2 seeds
  EXPECT_EQ(swarm.degree(p), 8u);
  EXPECT_TRUE(swarm.is_leecher(p));
  EXPECT_FALSE(swarm.departed(p));
  EXPECT_EQ(swarm.arrivals(), 1u);
  EXPECT_EQ(swarm.stats(p).pieces, 0u);
  // 8 fresh edges = 16 directed slots, appended (free list was empty).
  EXPECT_EQ(swarm.edge_slot_capacity(), slots_before + 16);
  // The new peer appears in each chosen neighbor's sorted row.
  for (const core::PeerId q : swarm.neighbors(p)) {
    const auto row = swarm.neighbors(q);
    EXPECT_TRUE(std::binary_search(row.begin(), row.end(), p));
  }
}

TEST(SwarmChurn, JoinRegistersPartialBitfieldAvailability) {
  graph::Rng rng(2);
  const SwarmConfig cfg = small_config();
  Swarm swarm(cfg, bandwidths(30), rng);
  const double copies_before =
      swarm.availability_stats().mean * static_cast<double>(cfg.num_pieces);
  Bitfield have(cfg.num_pieces);
  have.set(3);
  have.set(17);
  have.set(31);
  const core::PeerId p = swarm.join(500.0, have);
  EXPECT_EQ(swarm.stats(p).pieces, 3u);
  const double copies_after =
      swarm.availability_stats().mean * static_cast<double>(cfg.num_pieces);
  EXPECT_NEAR(copies_after - copies_before, 3.0, 1e-9);
}

TEST(SwarmChurn, LeaveReleasesSlotsAndAvailability) {
  graph::Rng rng(3);
  const SwarmConfig cfg = small_config();
  Swarm swarm(cfg, bandwidths(30), rng);
  const core::PeerId p = 5;
  const std::size_t deg = swarm.degree(p);
  ASSERT_GT(deg, 0u);
  const std::vector<core::PeerId> old_neighbors(swarm.neighbors(p).begin(),
                                                swarm.neighbors(p).end());
  const std::size_t held = swarm.stats(p).pieces;
  const double copies_before =
      swarm.availability_stats().mean * static_cast<double>(cfg.num_pieces);
  swarm.leave(p);
  EXPECT_TRUE(swarm.departed(p));
  EXPECT_EQ(swarm.degree(p), 0u);
  EXPECT_EQ(swarm.free_edge_slots(), 2 * deg);
  EXPECT_EQ(swarm.departures(), 1u);
  EXPECT_EQ(swarm.stats(p).leave_round, 0.0);
  const double copies_after =
      swarm.availability_stats().mean * static_cast<double>(cfg.num_pieces);
  EXPECT_NEAR(copies_before - copies_after, static_cast<double>(held), 1e-9);
  // Former neighbors no longer list p.
  for (const core::PeerId q : old_neighbors) {
    const auto row = swarm.neighbors(q);
    EXPECT_FALSE(std::binary_search(row.begin(), row.end(), p));
  }
  // Leaving twice is a no-op.
  swarm.leave(p);
  EXPECT_EQ(swarm.departures(), 1u);
}

TEST(SwarmChurn, SlotRecyclingReusesReleasedSlotsAndBumpsGenerations) {
  graph::Rng rng(4);
  const SwarmConfig cfg = small_config();
  Swarm swarm(cfg, bandwidths(30), rng);
  // Depart peers until at least one full announce worth of slots (2 *
  // target degree 8) is parked on the free list — degrees fluctuate
  // around the mean, so a single departure is not guaranteed to free
  // enough.
  core::PeerId victim = 7;
  while (swarm.free_edge_slots() < 16) swarm.leave(victim++);
  const std::size_t freed = swarm.free_edge_slots();
  ASSERT_GE(freed, 16u);
  const std::size_t capacity = swarm.edge_slot_capacity();
  std::uint32_t generations_before = 0;
  for (std::size_t s = 0; s < capacity; ++s) generations_before += swarm.slot_generation(s);
  EXPECT_EQ(generations_before, freed);  // each released slot bumped once
  // A fresh join claims recycled slots first: the pool must not grow.
  const core::PeerId p = swarm.join(450.0);
  EXPECT_EQ(swarm.degree(p), 8u);
  EXPECT_EQ(swarm.edge_slot_capacity(), capacity);
  EXPECT_EQ(swarm.free_edge_slots(), freed - 16);
}

TEST(SwarmChurn, ReannounceTopsUpDegree) {
  graph::Rng rng(5);
  const SwarmConfig cfg = small_config();
  Swarm swarm(cfg, bandwidths(30), rng);
  // Thin out peer 3's neighborhood by departing its neighbors.
  const std::vector<core::PeerId> nbrs(swarm.neighbors(3).begin(), swarm.neighbors(3).end());
  for (const core::PeerId q : nbrs) swarm.leave(q);
  EXPECT_EQ(swarm.degree(3), 0u);
  const std::size_t added = swarm.reannounce(3);
  EXPECT_EQ(added, 8u);
  EXPECT_EQ(swarm.degree(3), 8u);
  for (const core::PeerId q : swarm.neighbors(3)) {
    EXPECT_FALSE(swarm.departed(q));
  }
  // Already at target: a second re-announce is a no-op.
  EXPECT_EQ(swarm.reannounce(3), 0u);
}

TEST(SwarmChurn, StratificationHistorySurvivesDeparturesAndSlotReuse) {
  graph::Rng rng(6);
  SwarmConfig cfg = small_config();
  cfg.num_peers = 40;
  Swarm swarm(cfg, bandwidths(40), rng);
  swarm.run(25);
  const StratificationReport before = swarm.stratification();
  ASSERT_GT(before.reciprocated_pairs, 0u);
  // Depart a third of the leechers: the accumulated history must be
  // bitwise unchanged — retired records keep exactly what the released
  // slots held.
  for (core::PeerId p = 0; p < 40; p += 3) swarm.leave(p);
  const StratificationReport after_leaves = swarm.stratification();
  EXPECT_EQ(after_leaves.reciprocated_pairs, before.reciprocated_pairs);
  EXPECT_EQ(after_leaves.mean_normalized_offset, before.mean_normalized_offset);
  EXPECT_EQ(after_leaves.partner_rank_correlation, before.partner_rank_correlation);
  // Recycle the freed slots through joins: the pair set must still not
  // change (fresh slots must not leak a previous pair's counters).
  // Rank-dependent aggregates shift — joins rebuild the leecher ranks
  // and the offset normalization — so only the pair count is pinned.
  swarm.join(500.0);
  swarm.join(510.0);
  EXPECT_EQ(swarm.stratification().reciprocated_pairs, before.reciprocated_pairs);
}

TEST(SwarmChurn, ArrivalLeechRateCountsRoundsSinceJoin) {
  graph::Rng rng(7);
  SwarmConfig cfg = small_config();
  cfg.num_peers = 40;
  Swarm swarm(cfg, bandwidths(40, 800.0), rng);
  swarm.run(10);
  const core::PeerId p = swarm.join(600.0);
  EXPECT_EQ(swarm.stats(p).join_round, 10.0);
  swarm.run(5);
  const PeerStats& s = swarm.stats(p);
  ASSERT_GT(s.downloaded_kb, 0.0);
  const double end = s.completion_round >= 0.0 ? s.completion_round : 15.0;
  const double expected = s.downloaded_kb * 8.0 / ((end - 10.0) * cfg.round_seconds);
  EXPECT_DOUBLE_EQ(swarm.leech_download_kbps(p), expected);
}

TEST(SwarmChurn, ChurnedScenarioRunsAreDeterministic) {
  SwarmScenario scenario;
  scenario.config = small_config();
  scenario.config.num_peers = 50;
  scenario.upload_kbps = bandwidths(50);
  scenario.warmup_rounds = 8;
  scenario.measure_rounds = 15;
  scenario.churn.replacement_rate = paper_replacement_rate(20.0, 50);
  scenario.churn.arrivals = ChurnSpec::Arrivals::kPoisson;
  scenario.churn.arrival_rate = 0.5;
  scenario.churn.lifetime = ChurnSpec::Lifetime::kExponential;
  scenario.churn.lifetime_rounds = 20.0;
  scenario.churn.reannounce_interval = 4;
  const ScenarioResult a = run_scenario(scenario, 123);
  const ScenarioResult b = run_scenario(scenario, 123);
  EXPECT_EQ(a.completed_leechers, b.completed_leechers);
  EXPECT_EQ(a.mean_leech_kbps, b.mean_leech_kbps);
  EXPECT_EQ(a.total_uploaded_kb, b.total_uploaded_kb);
  EXPECT_EQ(a.arrivals, b.arrivals);
  EXPECT_EQ(a.departures, b.departures);
  EXPECT_EQ(a.strat.reciprocated_pairs, b.strat.reciprocated_pairs);
  EXPECT_EQ(a.strat.partner_rank_correlation, b.strat.partner_rank_correlation);
  EXPECT_GT(a.arrivals, 0u);
  EXPECT_GT(a.departures, 0u);
  // Thread count must not change per-seed results.
  const std::vector<std::uint64_t> seeds{123, 124, 125};
  const auto serial = run_replications(scenario, seeds, 1);
  const auto parallel = run_replications(scenario, seeds, 3);
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    EXPECT_EQ(serial[i].mean_leech_kbps, parallel[i].mean_leech_kbps);
    EXPECT_EQ(serial[i].arrivals, parallel[i].arrivals);
  }
}

TEST(SwarmChurn, ArrivalBandwidthModelSamplesPerArrival) {
  // Satellite of the peer-table refactor: arrivals can draw capacities
  // from the paper's empirical upstream CDF instead of cycling a pool.
  graph::Rng rng(9);
  SwarmConfig cfg = small_config();
  cfg.num_peers = 40;
  const std::vector<double> bw = bandwidths(40);
  Swarm swarm(cfg, bw, rng);
  ChurnSpec spec;
  spec.arrivals = ChurnSpec::Arrivals::kPoisson;
  spec.arrival_rate = 2.0;
  spec.arrival_bandwidth = ChurnSpec::ArrivalBandwidth::kModel;
  spec.arrival_model = BandwidthModel::saroiu2002();
  // No pool needed in model mode.
  ChurnDriver<Swarm> driver(spec, cfg, {}, rng);
  driver.attach(swarm);
  for (std::size_t r = 0; r < 30; ++r) {
    driver.before_round(swarm);
    swarm.run_round();
  }
  ASSERT_GT(swarm.arrivals(), 20u);
  // Arrival capacities are independent draws: positive, and far more
  // diverse than any cycled pool of one.
  std::vector<double> caps;
  for (core::PeerId p = static_cast<core::PeerId>(42); p < swarm.peer_count(); ++p) {
    const double c = swarm.stats(p).upload_kbps;
    EXPECT_GT(c, 0.0);
    caps.push_back(c);
  }
  std::sort(caps.begin(), caps.end());
  const std::size_t distinct =
      static_cast<std::size_t>(std::unique(caps.begin(), caps.end()) - caps.begin());
  EXPECT_GT(distinct, caps.size() / 2);
}

TEST(SwarmChurn, ArrivalBandwidthModelValidation) {
  const SwarmConfig cfg = small_config();
  ChurnSpec spec;
  spec.arrivals = ChurnSpec::Arrivals::kPoisson;
  spec.arrival_rate = 1.0;
  // Model mode without a model is rejected.
  spec.arrival_bandwidth = ChurnSpec::ArrivalBandwidth::kModel;
  graph::Rng rng(10);
  EXPECT_THROW((ChurnDriver<Swarm>(spec, cfg, {}, rng)), std::invalid_argument);
  // Pool mode without a pool is still rejected.
  spec.arrival_bandwidth = ChurnSpec::ArrivalBandwidth::kCyclePool;
  EXPECT_THROW((ChurnDriver<Swarm>(spec, cfg, {}, rng)), std::invalid_argument);
}

TEST(SwarmChurn, PaperReplacementRateMapsXPerThousand) {
  EXPECT_DOUBLE_EQ(paper_replacement_rate(1.0, 1000), 1.0);
  EXPECT_DOUBLE_EQ(paper_replacement_rate(10.0, 5000), 50.0);
  EXPECT_DOUBLE_EQ(paper_replacement_rate(0.0, 5000), 0.0);
}

TEST(SwarmChurn, EndgameRunCompletesAndConserves) {
  graph::Rng rng(8);
  SwarmConfig cfg = small_config();
  cfg.endgame = true;
  cfg.initial_completion = 0.7;
  Swarm swarm(cfg, bandwidths(30, 900.0), rng);
  for (std::size_t r = 0; r < 60; ++r) {
    swarm.run_round();
    double uploaded = 0.0;
    double downloaded = 0.0;
    for (core::PeerId p = 0; p < swarm.peer_count(); ++p) {
      uploaded += swarm.stats(p).uploaded_kb;
      downloaded += swarm.stats(p).downloaded_kb;
    }
    ASSERT_NEAR(uploaded, downloaded, 1e-6) << "round " << r;
  }
  EXPECT_GT(swarm.completed_leechers(), 25u);
}

}  // namespace
}  // namespace strat::bt
