// Scenario-engine tests: parallel replications must equal serial ones
// bit for bit, the heterogeneous-slot helper must stay in bounds and
// monotone, and the multi-swarm layout must account for every peer.
#include <gtest/gtest.h>

#include <array>

#include "bittorrent/bandwidth.hpp"
#include "bittorrent/scenario.hpp"

namespace strat::bt {
namespace {

SwarmScenario small_scenario() {
  SwarmScenario scenario;
  scenario.config.num_peers = 40;
  scenario.config.seeds = 1;
  scenario.config.num_pieces = 128;
  scenario.config.piece_kb = 64.0;
  scenario.config.neighbor_degree = 12.0;
  scenario.config.initial_completion = 0.5;
  scenario.upload_kbps = BandwidthModel::saroiu2002().representative_sample(40);
  scenario.warmup_rounds = 5;
  scenario.measure_rounds = 15;
  return scenario;
}

void expect_same(const ScenarioResult& a, const ScenarioResult& b) {
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(a.completed_leechers, b.completed_leechers);
  EXPECT_EQ(a.mean_completion_round, b.mean_completion_round);
  EXPECT_EQ(a.mean_leech_kbps, b.mean_leech_kbps);
  EXPECT_EQ(a.top_decile_kbps, b.top_decile_kbps);
  EXPECT_EQ(a.bottom_decile_kbps, b.bottom_decile_kbps);
  EXPECT_EQ(a.strat.reciprocated_pairs, b.strat.reciprocated_pairs);
  EXPECT_EQ(a.strat.mean_normalized_offset, b.strat.mean_normalized_offset);
  EXPECT_EQ(a.total_uploaded_kb, b.total_uploaded_kb);
  EXPECT_EQ(a.total_downloaded_kb, b.total_downloaded_kb);
}

TEST(Scenario, RunIsDeterministicPerSeed) {
  const SwarmScenario scenario = small_scenario();
  expect_same(run_scenario(scenario, 5), run_scenario(scenario, 5));
}

TEST(Scenario, ParallelReplicationsMatchSerial) {
  const SwarmScenario scenario = small_scenario();
  const std::array<std::uint64_t, 6> seeds{1, 2, 3, 4, 5, 6};
  const auto serial = run_replications(scenario, seeds, 1);
  const auto parallel = run_replications(scenario, seeds, 4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) expect_same(serial[i], parallel[i]);
  // Different seeds produce different runs.
  EXPECT_NE(serial[0].total_uploaded_kb, serial[1].total_uploaded_kb);
}

TEST(Scenario, ResultAggregatesAreCoherent) {
  const auto result = run_scenario(small_scenario(), 7);
  EXPECT_GT(result.total_uploaded_kb, 0.0);
  EXPECT_NEAR(result.total_uploaded_kb, result.total_downloaded_kb, 1e-6);
  EXPECT_GT(result.mean_leech_kbps, 0.0);
}

TEST(Scenario, StratifiedDecilesOrderByCapacity) {
  // Stratified swarms download faster at the top of the capacity
  // order. Needs a long-enough window and population for the decile
  // means to rise above per-seed noise (4-peer deciles over 15 rounds
  // flip sign on unlucky seeds).
  SwarmScenario scenario;
  scenario.config.num_peers = 120;
  scenario.config.seeds = 2;
  scenario.config.num_pieces = 256;
  scenario.config.piece_kb = 256.0;
  scenario.config.neighbor_degree = 20.0;
  scenario.config.initial_completion = 0.5;
  scenario.upload_kbps = BandwidthModel::saroiu2002().representative_sample(120);
  scenario.warmup_rounds = 10;
  scenario.measure_rounds = 30;
  const auto result = run_scenario(scenario, 7);
  EXPECT_GT(result.top_decile_kbps, result.bottom_decile_kbps);
}

TEST(Scenario, CapacityScaledSlotsBoundsAndMonotonicity) {
  const std::vector<double> caps{50.0, 100.0, 400.0, 3000.0, 15000.0};
  const auto slots = capacity_scaled_slots(caps, 1, 8);
  ASSERT_EQ(slots.size(), caps.size());
  EXPECT_EQ(slots.front(), 1u);
  EXPECT_EQ(slots.back(), 8u);
  for (std::size_t i = 1; i < slots.size(); ++i) EXPECT_GE(slots[i], slots[i - 1]);
  // Uniform capacities collapse to the middle of the range.
  const auto uniform = capacity_scaled_slots({100.0, 100.0, 100.0}, 2, 6);
  for (const std::size_t s : uniform) EXPECT_EQ(s, 4u);
  EXPECT_THROW(capacity_scaled_slots(caps, 0, 3), std::invalid_argument);
  EXPECT_THROW(capacity_scaled_slots(caps, 5, 3), std::invalid_argument);
  EXPECT_THROW(capacity_scaled_slots({0.0}, 1, 3), std::invalid_argument);
}

TEST(Scenario, HeterogeneousSlotsRunEndToEnd) {
  SwarmScenario scenario = small_scenario();
  scenario.config.tft_slots_per_peer =
      capacity_scaled_slots(scenario.upload_kbps, 1, 6);
  const auto result = run_scenario(scenario, 11);
  EXPECT_GT(result.total_uploaded_kb, 0.0);
  // Mismatched slot vector is rejected.
  scenario.config.tft_slots_per_peer.pop_back();
  EXPECT_THROW((void)run_scenario(scenario, 11), std::invalid_argument);
}

TEST(Scenario, MultiSwarmLayoutAccounting) {
  MultiSwarmSpec spec;
  spec.num_swarms = 3;
  spec.peers_per_swarm = 20;
  spec.overlap_fraction = 0.25;  // 5 shared between consecutive swarms
  EXPECT_EQ(distinct_peer_count(spec), 20u + 15u + 15u);
  spec.config.num_pieces = 64;
  spec.config.piece_kb = 32.0;
  spec.config.neighbor_degree = 8.0;
  spec.config.initial_completion = 0.5;
  spec.upload_kbps = BandwidthModel::saroiu2002().representative_sample(50);
  spec.warmup_rounds = 3;
  spec.measure_rounds = 10;

  const auto serial = run_multi_swarm(spec, 17, 1);
  ASSERT_EQ(serial.per_swarm.size(), 3u);
  EXPECT_EQ(serial.single_home_peers + serial.multi_home_peers, 50u);
  EXPECT_EQ(serial.multi_home_peers, 10u);  // two 5-peer overlaps
  for (const auto& swarm : serial.per_swarm) {
    EXPECT_GT(swarm.total_uploaded_kb, 0.0);
    EXPECT_NEAR(swarm.total_uploaded_kb, swarm.total_downloaded_kb, 1e-6);
  }

  // Thread count must not change results.
  const auto parallel = run_multi_swarm(spec, 17, 3);
  EXPECT_EQ(serial.mean_single_home_kbps, parallel.mean_single_home_kbps);
  EXPECT_EQ(serial.mean_multi_home_kbps, parallel.mean_multi_home_kbps);
  for (std::size_t k = 0; k < 3; ++k) expect_same(serial.per_swarm[k], parallel.per_swarm[k]);

  // Capacity mismatch is rejected.
  spec.upload_kbps.pop_back();
  EXPECT_THROW((void)run_multi_swarm(spec, 17, 1), std::invalid_argument);
}

TEST(Scenario, ChurnDriverDeadlinesStayLiveSized) {
  // Regression for the driver's old 8-bytes-per-arrival-ever deadline
  // vector: with a lifetime model active and peers also departing by
  // completion (which bypasses the driver), tracked deadlines must
  // stay O(live), not O(arrivals).
  SwarmConfig cfg;
  cfg.num_peers = 40;
  cfg.seeds = 2;
  cfg.num_pieces = 24;
  cfg.piece_kb = 8.0;       // fast completions: many driver-invisible departures
  cfg.neighbor_degree = 10.0;
  cfg.initial_completion = 0.5;
  cfg.stay_as_seed = false;
  const auto bw = BandwidthModel::saroiu2002().representative_sample(40);
  graph::Rng rng(23);
  Swarm swarm(cfg, bw, rng);
  ChurnSpec spec;
  spec.arrivals = ChurnSpec::Arrivals::kPoisson;
  spec.arrival_rate = 3.0;
  spec.arrival_completion = 0.5;
  spec.lifetime = ChurnSpec::Lifetime::kExponential;
  spec.lifetime_rounds = 20.0;
  spec.replacement_rate = 1.0;
  ChurnDriver<Swarm> churn(spec, cfg, bw, rng);
  churn.attach(swarm);
  // Instantaneous live count dips below the sweep lag (arrivals land
  // after the sweep, completions after the round), so the O(live)
  // claim is bounded against the peak concurrent population — a
  // constant of the workload, not of how long it runs.
  std::size_t peak_live = swarm.live_peer_count();
  for (std::size_t r = 0; r < 200; ++r) {
    churn.before_round(swarm);
    swarm.run_round();
    peak_live = std::max(peak_live, swarm.live_peer_count());
    ASSERT_LE(churn.tracked_deadlines(), 2 * peak_live + 64) << "round " << r;
  }
  // The bound was actually exercised: cumulative arrivals dwarf it
  // (the old id-indexed vector would have grown past it).
  EXPECT_GT(swarm.arrivals(), 2 * peak_live + 64);
}

}  // namespace
}  // namespace strat::bt
