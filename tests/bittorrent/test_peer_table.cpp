// PeerTable unit tests: dense row assignment, swap-with-last
// compaction, id->row mapping, generation stamps and the id-space /
// live-row split the swarm data plane builds on.
#include <gtest/gtest.h>

#include "bittorrent/peer_table.hpp"

namespace strat::bt {
namespace {

TEST(PeerTable, AddAssignsDenseRowsInOrder) {
  PeerTable table;
  EXPECT_EQ(table.size(), 0u);
  EXPECT_EQ(table.id_space(), 0u);
  for (core::PeerId p = 0; p < 5; ++p) {
    EXPECT_EQ(table.add(p), p);
  }
  EXPECT_EQ(table.size(), 5u);
  EXPECT_EQ(table.id_space(), 5u);
  for (core::PeerId p = 0; p < 5; ++p) {
    EXPECT_EQ(table.row_of(p), p);
    EXPECT_EQ(table.id_at(p), p);
    EXPECT_TRUE(table.contains(p));
  }
  EXPECT_EQ(table.row_of(99), PeerTable::kNoRow);
  EXPECT_FALSE(table.contains(99));
}

TEST(PeerTable, RemoveSwapsLastIntoHole) {
  PeerTable table;
  for (core::PeerId p = 0; p < 4; ++p) table.add(p);
  // Remove a middle peer: the last occupant (3) moves into its row.
  const auto rem = table.remove(1);
  EXPECT_EQ(rem.row, 1u);
  EXPECT_EQ(rem.moved_id, 3u);
  EXPECT_EQ(table.size(), 3u);
  EXPECT_EQ(table.id_at(1), 3u);
  EXPECT_EQ(table.row_of(3), 1u);
  EXPECT_EQ(table.row_of(1), PeerTable::kNoRow);
  EXPECT_FALSE(table.contains(1));
  // The id space never shrinks: departed ids stay addressable.
  EXPECT_EQ(table.id_space(), 4u);
  // Row order is insertion order with swap-removal applied.
  const auto ids = table.ids();
  ASSERT_EQ(ids.size(), 3u);
  EXPECT_EQ(ids[0], 0u);
  EXPECT_EQ(ids[1], 3u);
  EXPECT_EQ(ids[2], 2u);
}

TEST(PeerTable, RemovingTheLastRowMovesNothing) {
  PeerTable table;
  table.add(0);
  table.add(1);
  const auto rem = table.remove(1);
  EXPECT_EQ(rem.row, 1u);
  EXPECT_EQ(rem.moved_id, core::kNoPeer);
  EXPECT_EQ(table.size(), 1u);
}

TEST(PeerTable, GenerationsCountOccupantChanges) {
  PeerTable table;
  for (core::PeerId p = 0; p < 4; ++p) table.add(p);
  EXPECT_EQ(table.generation(0), 0u);
  EXPECT_EQ(table.generation(1), 0u);
  table.remove(1);  // row 1: occupant 1 -> 3
  EXPECT_EQ(table.generation(1), 1u);
  table.remove(3);  // 3 now owns row 1; last (2) moves in
  EXPECT_EQ(table.generation(1), 2u);
  EXPECT_EQ(table.generation(0), 0u);
}

TEST(PeerTable, FreshIdsAfterChurnKeepGrowingTheIdSpace) {
  PeerTable table;
  for (core::PeerId p = 0; p < 3; ++p) table.add(p);
  table.remove(0);
  // Arrival-ordered external ids: the next id is id_space(), never a
  // recycled one.
  const auto next = static_cast<core::PeerId>(table.id_space());
  EXPECT_EQ(next, 3u);
  const auto row = table.add(next);
  EXPECT_EQ(row, 2u);  // dense rows: fills right after the live peers
  EXPECT_EQ(table.id_space(), 4u);
  EXPECT_EQ(table.size(), 3u);
}

TEST(PeerTable, RejectsDuplicateAddAndDeadRemove) {
  PeerTable table;
  table.add(0);
  EXPECT_THROW(table.add(0), std::invalid_argument);
  table.remove(0);
  EXPECT_THROW(table.remove(0), std::invalid_argument);
  EXPECT_THROW(table.remove(7), std::invalid_argument);
  // External ids are never recycled: a departed id is tombstoned, so
  // re-adding it is rejected just like a live duplicate.
  EXPECT_THROW(table.add(0), std::invalid_argument);
  EXPECT_FALSE(table.contains(0));
  EXPECT_EQ(table.row_of(0), PeerTable::kNoRow);
}

}  // namespace
}  // namespace strat::bt
