#include "bittorrent/efficiency.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace strat::bt {
namespace {

EfficiencyOptions small_options() {
  EfficiencyOptions opt;
  opt.n = 400;
  opt.tft_slots = 3;
  opt.total_slots = 4;
  opt.mean_acceptable = 20.0;
  return opt;
}

TEST(EfficiencyCurve, Validation) {
  const BandwidthModel model = BandwidthModel::saroiu2002();
  EfficiencyOptions opt = small_options();
  opt.n = 1;
  EXPECT_THROW((void)expected_efficiency_curve(model, opt), std::invalid_argument);
  opt = small_options();
  opt.tft_slots = 0;
  EXPECT_THROW((void)expected_efficiency_curve(model, opt), std::invalid_argument);
  opt = small_options();
  opt.tft_slots = 5;
  EXPECT_THROW((void)expected_efficiency_curve(model, opt), std::invalid_argument);
  opt = small_options();
  opt.mean_acceptable = 1e9;
  EXPECT_THROW((void)expected_efficiency_curve(model, opt), std::invalid_argument);
}

TEST(EfficiencyCurve, ShapeMatchesFigure11) {
  const BandwidthModel model = BandwidthModel::saroiu2002();
  const auto curve = expected_efficiency_curve(model, small_options());
  ASSERT_EQ(curve.size(), 400u);

  // (a) Best peers suffer: the top peer's ratio is below 1.
  EXPECT_LT(curve.front().efficiency, 1.0);

  // (b) The worst peers enjoy high efficiency (they sometimes grab much
  // faster partners): last decile mean above 1.
  double tail = 0.0;
  for (std::size_t i = 360; i < 400; ++i) tail += curve[i].efficiency;
  EXPECT_GT(tail / 40.0, 1.0);

  // (c) Everything stays near Figure 11's plotted band (0.4 .. 2.4; our
  // synthetic mixture has a slightly wider top tail, see DESIGN.md §5).
  for (const auto& pt : curve) {
    EXPECT_GT(pt.efficiency, 0.25) << "rank " << pt.rank;
    EXPECT_LT(pt.efficiency, 3.0) << "rank " << pt.rank;
  }
}

TEST(EfficiencyCurve, DensityPeakPeersSitNearRatioOne) {
  // §6: peers inside a bandwidth density peak mostly exchange with
  // equals, so their ratio is close to 1. The 128 kbps ISDN peak is the
  // heaviest component.
  const BandwidthModel model = BandwidthModel::saroiu2002();
  const auto curve = expected_efficiency_curve(model, small_options());
  double sum = 0.0;
  std::size_t count = 0;
  for (const auto& pt : curve) {
    if (pt.upload_kbps > 115.0 && pt.upload_kbps < 142.0) {
      sum += pt.efficiency;
      ++count;
    }
  }
  ASSERT_GT(count, 10u);
  EXPECT_NEAR(sum / static_cast<double>(count), 1.0, 0.25);
}

TEST(EfficiencyCurve, PerSlotBandwidthIsUploadOverTotalSlots) {
  const BandwidthModel model = BandwidthModel::saroiu2002();
  const auto curve = expected_efficiency_curve(model, small_options());
  for (const auto& pt : curve) {
    EXPECT_NEAR(pt.per_slot_kbps, pt.upload_kbps / 4.0, 1e-9);
  }
}

TEST(EfficiencyCurve, MatchProbabilityHighInBulk) {
  const BandwidthModel model = BandwidthModel::saroiu2002();
  const auto curve = expected_efficiency_curve(model, small_options());
  // Middle peers almost surely hold at least their first TFT mate.
  EXPECT_GT(curve[200].match_probability, 0.9);
}

TEST(EfficiencyCurve, RanksAreOrderedByBandwidth) {
  const BandwidthModel model = BandwidthModel::saroiu2002();
  const auto curve = expected_efficiency_curve(model, small_options());
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_LT(curve[i].upload_kbps, curve[i - 1].upload_kbps);
    EXPECT_EQ(curve[i].rank, i);
  }
}

TEST(SlotStrategy, Validation) {
  const BandwidthModel model = BandwidthModel::saroiu2002();
  graph::Rng rng(1);
  SlotStrategyOptions opt;
  opt.n = 2;
  EXPECT_THROW((void)slot_strategy_sweep(model, opt, rng), std::invalid_argument);
  opt = SlotStrategyOptions{};
  opt.default_total_slots = 1;
  EXPECT_THROW((void)slot_strategy_sweep(model, opt, rng), std::invalid_argument);
  opt = SlotStrategyOptions{};
  opt.max_tft_slots = 0;
  EXPECT_THROW((void)slot_strategy_sweep(model, opt, rng), std::invalid_argument);
}

TEST(SlotStrategy, SweepCoversRequestedRange) {
  const BandwidthModel model = BandwidthModel::saroiu2002();
  graph::Rng rng(2);
  SlotStrategyOptions opt;
  opt.n = 150;
  opt.realizations = 10;
  opt.max_tft_slots = 5;
  const auto sweep = slot_strategy_sweep(model, opt, rng);
  ASSERT_EQ(sweep.size(), 5u);
  for (std::size_t k = 0; k < sweep.size(); ++k) {
    EXPECT_EQ(sweep[k].tft_slots, k + 1);
    EXPECT_NEAR(sweep[k].per_slot_kbps,
                opt.deviator_upload_kbps / static_cast<double>(k + 2),
                opt.deviator_upload_kbps * 1e-6);
    EXPECT_LE(sweep[k].mean_mates, static_cast<double>(k + 1) + 1e-9);
  }
}

TEST(SlotStrategy, NashPressureTowardFewSlots) {
  // §6: cutting connections raises per-slot bandwidth and hence the
  // quality of TFT partners — a rational peer drifts toward one slot.
  const BandwidthModel model = BandwidthModel::saroiu2002();
  graph::Rng rng(3);
  SlotStrategyOptions opt;
  opt.n = 300;
  opt.realizations = 40;
  opt.max_tft_slots = 6;
  opt.deviator_upload_kbps = 400.0;
  const auto sweep = slot_strategy_sweep(model, opt, rng);
  // Efficiency at 1 TFT slot beats efficiency at 6 TFT slots.
  EXPECT_GT(sweep.front().efficiency, sweep.back().efficiency);
}

}  // namespace
}  // namespace strat::bt
