#include "bittorrent/swarm.hpp"

#include <gtest/gtest.h>

#include "bittorrent/bandwidth.hpp"

namespace strat::bt {
namespace {

SwarmConfig small_config() {
  SwarmConfig cfg;
  cfg.num_peers = 40;
  cfg.seeds = 1;
  cfg.num_pieces = 64;
  cfg.piece_kb = 64.0;
  cfg.neighbor_degree = 12.0;
  return cfg;
}

std::vector<double> uniform_bandwidths(std::size_t n, double kbps = 400.0) {
  // Strictly distinct to keep ranks unambiguous.
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = kbps * (1.0 + 0.001 * static_cast<double>(i));
  }
  return out;
}

TEST(Swarm, Validation) {
  graph::Rng rng(1);
  SwarmConfig cfg = small_config();
  EXPECT_THROW(Swarm(cfg, uniform_bandwidths(5), rng), std::invalid_argument);
  cfg.num_peers = 1;
  EXPECT_THROW(Swarm(cfg, uniform_bandwidths(1), rng), std::invalid_argument);
  cfg = small_config();
  cfg.num_pieces = 0;
  EXPECT_THROW(Swarm(cfg, uniform_bandwidths(40), rng), std::invalid_argument);
  cfg = small_config();
  cfg.initial_completion = 1.0;
  EXPECT_THROW(Swarm(cfg, uniform_bandwidths(40), rng), std::invalid_argument);
}

TEST(Swarm, InitialStatePostFlashCrowd) {
  graph::Rng rng(2);
  SwarmConfig cfg = small_config();
  cfg.initial_completion = 0.5;
  const Swarm swarm(cfg, uniform_bandwidths(40), rng);
  EXPECT_EQ(swarm.peer_count(), 41u);  // 40 leechers + 1 seed
  // The seed holds everything.
  EXPECT_EQ(swarm.stats(40).pieces, 64u);
  EXPECT_TRUE(swarm.stats(40).seed);
  // Leechers start around half completion.
  double total = 0.0;
  for (core::PeerId p = 0; p < 40; ++p) {
    total += static_cast<double>(swarm.stats(p).pieces);
    EXPECT_FALSE(swarm.stats(p).seed);
  }
  EXPECT_NEAR(total / (40.0 * 64.0), 0.5, 0.08);
}

TEST(Swarm, FlashCrowdStartsEmpty) {
  graph::Rng rng(3);
  SwarmConfig cfg = small_config();
  cfg.post_flashcrowd = false;
  const Swarm swarm(cfg, uniform_bandwidths(40), rng);
  for (core::PeerId p = 0; p < 40; ++p) EXPECT_EQ(swarm.stats(p).pieces, 0u);
}

TEST(Swarm, DataFlowsAndConservationHolds) {
  graph::Rng rng(4);
  SwarmConfig cfg = small_config();
  Swarm swarm(cfg, uniform_bandwidths(40), rng);
  swarm.run(10);
  double uploaded = 0.0;
  double downloaded = 0.0;
  for (core::PeerId p = 0; p < swarm.peer_count(); ++p) {
    uploaded += swarm.stats(p).uploaded_kb;
    downloaded += swarm.stats(p).downloaded_kb;
  }
  EXPECT_GT(uploaded, 0.0);
  EXPECT_NEAR(uploaded, downloaded, 1e-6);
}

TEST(Swarm, UploadRespectsCapacity) {
  graph::Rng rng(5);
  SwarmConfig cfg = small_config();
  const auto bw = uniform_bandwidths(40, 200.0);
  Swarm swarm(cfg, bw, rng);
  const std::size_t rounds = 20;
  swarm.run(rounds);
  const double seconds = static_cast<double>(rounds) * cfg.round_seconds;
  for (core::PeerId p = 0; p < 40; ++p) {
    const double max_kb = swarm.stats(p).upload_kbps / 8.0 * seconds;
    EXPECT_LE(swarm.stats(p).uploaded_kb, max_kb + 1e-6) << "peer " << p;
  }
}

TEST(Swarm, PiecesOnlyIncrease) {
  graph::Rng rng(6);
  Swarm swarm(small_config(), uniform_bandwidths(40), rng);
  std::vector<std::size_t> before(40);
  for (core::PeerId p = 0; p < 40; ++p) before[p] = swarm.stats(p).pieces;
  swarm.run(5);
  for (core::PeerId p = 0; p < 40; ++p) {
    EXPECT_GE(swarm.stats(p).pieces, before[p]);
    EXPECT_LE(swarm.stats(p).pieces, 64u);
  }
}

TEST(Swarm, LeechersEventuallyComplete) {
  graph::Rng rng(7);
  SwarmConfig cfg = small_config();
  cfg.num_pieces = 32;
  cfg.piece_kb = 16.0;
  cfg.initial_completion = 0.6;
  Swarm swarm(cfg, uniform_bandwidths(40, 800.0), rng);
  swarm.run(300);
  EXPECT_GT(swarm.completed_leechers(), 30u);
  // Completion rounds recorded and within the horizon.
  for (core::PeerId p = 0; p < 40; ++p) {
    if (swarm.stats(p).pieces == 32u) {
      EXPECT_GE(swarm.stats(p).completion_round, 0.0);
      EXPECT_LE(swarm.stats(p).completion_round, 300.0);
    }
  }
}

TEST(Swarm, MeanDownloadRateIsPositiveForLeechers) {
  graph::Rng rng(8);
  Swarm swarm(small_config(), uniform_bandwidths(40), rng);
  swarm.run(20);
  std::size_t receiving = 0;
  for (core::PeerId p = 0; p < 40; ++p) {
    if (swarm.mean_download_kbps(p) > 0.0) ++receiving;
  }
  EXPECT_GT(receiving, 30u);
}

TEST(Swarm, StratificationEmergesWithWideBandwidths) {
  // The paper's central claim at the protocol level: with a wide
  // bandwidth distribution, reciprocated TFT partners end up rank-close.
  // A large payload keeps every peer leeching through the measurement
  // window; the bootstrap phase is excluded via reset_stratification().
  graph::Rng rng(9);
  SwarmConfig cfg;
  cfg.num_peers = 120;
  cfg.seeds = 1;
  cfg.num_pieces = 2048;
  cfg.piece_kb = 1024.0;
  cfg.neighbor_degree = 30.0;
  cfg.initial_completion = 0.5;
  const BandwidthModel model = BandwidthModel::saroiu2002();
  std::vector<double> bw = model.representative_sample(120);
  Swarm swarm(cfg, bw, rng);
  swarm.run(20);  // burn-in: TFT lock-in takes a few choke intervals
  swarm.reset_stratification();
  swarm.run(30);
  const StratificationReport report = swarm.stratification();
  EXPECT_GT(report.reciprocated_pairs, 100u);
  EXPECT_GT(report.partner_rank_correlation, 0.5);
  // Random pairing would sit around 1/3; stratified exchange is far
  // tighter.
  EXPECT_LT(report.mean_normalized_offset, 0.27);
}

TEST(Swarm, ReciprocatedPairsAreMutualAndOrdered) {
  graph::Rng rng(10);
  Swarm swarm(small_config(), uniform_bandwidths(40), rng);
  swarm.run(5);
  for (const auto& [better, worse] : swarm.reciprocated_pairs()) {
    EXPECT_LT(better, 40u);
    EXPECT_LT(worse, 40u);
    EXPECT_NE(better, worse);
    // `better` has at least the bandwidth of `worse` (ranks ordered).
    EXPECT_GE(swarm.stats(better).upload_kbps, swarm.stats(worse).upload_kbps);
  }
}

TEST(Swarm, SeedsUploadButNeverDownload) {
  graph::Rng rng(11);
  SwarmConfig cfg = small_config();
  cfg.seeds = 2;
  Swarm swarm(cfg, uniform_bandwidths(40), rng);
  swarm.run(15);
  for (core::PeerId s = 40; s < 42; ++s) {
    EXPECT_DOUBLE_EQ(swarm.stats(s).downloaded_kb, 0.0);
    EXPECT_GT(swarm.stats(s).uploaded_kb, 0.0);
  }
}

TEST(Swarm, DeterministicForFixedSeed) {
  SwarmConfig cfg = small_config();
  auto run_once = [&](std::uint64_t seed) {
    graph::Rng rng(seed);
    Swarm swarm(cfg, uniform_bandwidths(40), rng);
    swarm.run(10);
    double fingerprint = 0.0;
    for (core::PeerId p = 0; p < swarm.peer_count(); ++p) {
      fingerprint += swarm.stats(p).downloaded_kb * static_cast<double>(p + 1);
    }
    return fingerprint;
  };
  EXPECT_DOUBLE_EQ(run_once(42), run_once(42));
  EXPECT_NE(run_once(42), run_once(43));
}

}  // namespace
}  // namespace strat::bt
