// Regression tests for the swarm state bugs fixed alongside the CSR
// data-plane rewrite: departed leechers leaking piece availability,
// construction-complete leechers never departing, and upload budget
// stranded mid-round being discarded instead of redistributed.
#include <gtest/gtest.h>

#include "bittorrent/swarm.hpp"

namespace strat::bt {
namespace {

std::vector<double> bandwidths(std::size_t n, double base = 400.0) {
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = base * (1.0 + 0.001 * static_cast<double>(i));
  return out;
}

/// Total piece copies counted by the picker (availability sum).
double total_copies(const Swarm& swarm, std::size_t num_pieces) {
  return swarm.availability_stats().mean * static_cast<double>(num_pieces);
}

/// Piece copies actually held by non-departed peers.
std::size_t held_copies(const Swarm& swarm) {
  std::size_t held = 0;
  for (core::PeerId p = 0; p < swarm.peer_count(); ++p) {
    if (!swarm.departed(p)) held += swarm.stats(p).pieces;
  }
  return held;
}

TEST(SwarmBugfixes, DepartureDecrementsAvailability) {
  // Pre-fix, a departed leecher's copies stayed in the PiecePicker
  // forever, skewing rarest-first and inflating availability_stats().
  graph::Rng rng(21);
  SwarmConfig cfg;
  cfg.num_peers = 30;
  cfg.seeds = 2;
  cfg.num_pieces = 16;
  cfg.piece_kb = 8.0;
  cfg.neighbor_degree = 10.0;
  cfg.initial_completion = 0.7;
  cfg.stay_as_seed = false;
  Swarm swarm(cfg, bandwidths(30, 800.0), rng);
  for (int step = 0; step < 20; ++step) {
    swarm.run(10);
    EXPECT_NEAR(total_copies(swarm, cfg.num_pieces),
                static_cast<double>(held_copies(swarm)), 1e-6)
        << "after " << swarm.rounds_elapsed() << " rounds";
  }
  // The scenario must actually exercise departures.
  std::size_t departures = 0;
  for (core::PeerId p = 0; p < 30; ++p) departures += swarm.departed(p) ? 1u : 0u;
  EXPECT_GT(departures, 10u);
}

TEST(SwarmBugfixes, ConstructionCompleteLeecherIsConsistent) {
  // With few pieces and a high starting fraction, some leechers draw a
  // complete bitfield at construction. Pre-fix they kept
  // completion_round = -1, never departed, and leech_download_kbps()
  // divided their zero download by the whole run length.
  graph::Rng rng(22);
  SwarmConfig cfg;
  cfg.num_peers = 30;
  cfg.seeds = 1;
  cfg.num_pieces = 4;
  cfg.piece_kb = 8.0;
  cfg.neighbor_degree = 10.0;
  cfg.initial_completion = 0.9;
  cfg.stay_as_seed = false;
  Swarm swarm(cfg, bandwidths(30), rng);
  std::size_t born_complete = 0;
  for (core::PeerId p = 0; p < 30; ++p) {
    if (swarm.stats(p).pieces == 4u) {
      ++born_complete;
      EXPECT_DOUBLE_EQ(swarm.stats(p).completion_round, 0.0) << "peer " << p;
      EXPECT_TRUE(swarm.departed(p)) << "peer " << p;
    }
  }
  ASSERT_GT(born_complete, 0u) << "scenario must produce construction-complete leechers";
  // Their copies are not counted as available.
  EXPECT_NEAR(total_copies(swarm, cfg.num_pieces), static_cast<double>(held_copies(swarm)),
              1e-6);
  swarm.run(50);
  for (core::PeerId p = 0; p < 30; ++p) {
    if (swarm.stats(p).completion_round == 0.0 && !swarm.stats(p).seed) {
      // Rate over a zero-round leeching phase is zero, not
      // download / full-run-length.
      EXPECT_DOUBLE_EQ(swarm.leech_download_kbps(p), 0.0) << "peer " << p;
      EXPECT_DOUBLE_EQ(swarm.stats(p).downloaded_kb, 0.0) << "peer " << p;
    }
  }
}

TEST(SwarmBugfixes, StrandedBudgetRedistributedWithinRound) {
  // One seed (24 kbps -> 30 KB per round), a relaying leecher A (fast)
  // and a capacity-less leecher B on a complete 3-vertex overlay. B
  // receives from both the seed and A, so it finishes first; in B's
  // completion round its leftover share must flow to A. Pre-fix the
  // seed silently discarded it, shipping less than its budget while A
  // was still starving.
  graph::Rng rng(23);
  SwarmConfig cfg;
  cfg.num_peers = 2;
  cfg.seeds = 1;
  cfg.num_pieces = 16;
  cfg.piece_kb = 10.0;
  cfg.neighbor_degree = 2.0;  // p = d/(n-1) = 1: deterministic complete overlay
  cfg.post_flashcrowd = false;
  cfg.seed_upload_kbps = 24.0;
  Swarm swarm(cfg, {80.0, 0.0}, rng);
  const double budget_kb = cfg.seed_upload_kbps / 8.0 * cfg.round_seconds;
  const core::PeerId seed_id = 2;
  double prev_uploaded = 0.0;
  bool saw_partial_completion_round = false;
  for (std::size_t r = 0; r < 60; ++r) {
    const std::size_t done_before = swarm.completed_leechers();
    swarm.run_round();
    const double delta = swarm.stats(seed_id).uploaded_kb - prev_uploaded;
    prev_uploaded = swarm.stats(seed_id).uploaded_kb;
    if (swarm.completed_leechers() < 2) {
      // Someone is still hungry and unchoked (complete overlay): the
      // seed must ship its entire budget, stranded shares included.
      EXPECT_NEAR(delta, budget_kb, 1e-6) << "round " << r;
      if (swarm.completed_leechers() > done_before) saw_partial_completion_round = true;
    }
  }
  EXPECT_EQ(swarm.completed_leechers(), 2u);
  // The scenario must hit the interesting case: a leecher completing
  // while the other still downloads.
  EXPECT_TRUE(saw_partial_completion_round);
  // B (fed by seed + relay) finishes before A (fed by seed only).
  EXPECT_LT(swarm.stats(1).completion_round, swarm.stats(0).completion_round);
}

}  // namespace
}  // namespace strat::bt
