// Autosave tier (ctest -L faults): crash-safe periodic checkpoints.
//
// The durability contract under test: autosave_every(n, dir, keep)
// writes a generation at every n-th round boundary via temp-file +
// atomic rename, prunes to the newest `keep`, and recover_latest walks
// the generations newest-first — a truncated or corrupt newest file
// falls back to the previous one, and a recovered run continues
// bitwise identical to one that never crashed. The cadence itself is
// free: saving never consumes RNG, so a run with autosave enabled is
// byte-for-byte the run without it.
#include <gtest/gtest.h>

#include <cstddef>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "bittorrent/autosave.hpp"
#include "bittorrent/bandwidth.hpp"
#include "bittorrent/snapshot.hpp"
#include "bittorrent/swarm.hpp"
#include "bittorrent/tracker_sim.hpp"

namespace strat::bt {
namespace {

namespace fs = std::filesystem;

std::vector<double> capacities(std::size_t n) {
  return BandwidthModel::saroiu2002().representative_sample(n);
}

/// Fresh per-test scratch directory under gtest's temp root.
fs::path scratch_dir(const char* name) {
  const fs::path dir = fs::path(::testing::TempDir()) / "strat_autosave" / name;
  fs::remove_all(dir);
  return dir;
}

SwarmConfig small_config() {
  SwarmConfig cfg;
  cfg.num_peers = 60;
  cfg.seeds = 2;
  cfg.num_pieces = 48;
  cfg.piece_kb = 32.0;
  cfg.neighbor_degree = 8.0;
  cfg.initial_completion = 0.4;
  // Faults on, so recovery also exercises the kTagFaults section and
  // live backoff state.
  cfg.faults.outage_period = 6;
  cfg.faults.outage_duration = 2;
  cfg.faults.connect_failure_prob = 0.1;
  cfg.faults.nat_fraction = 0.2;
  cfg.faults.lane_loss_prob = 0.05;
  return cfg;
}

/// Swarm borrows the caller's Rng by reference, so the generator must
/// outlive it — bundle the two with matching lifetimes.
struct Sim {
  graph::Rng rng{2024};
  Swarm swarm;
  Sim() : swarm(small_config(), capacities(60), rng) {}
};

void corrupt_tail(const fs::path& file) {
  // Truncate to half: the checksum (and usually the bounds checks)
  // must reject it.
  const auto size = fs::file_size(file);
  fs::resize_file(file, size / 2);
}

TEST(Autosaver, RejectsZeroCadenceOrZeroGenerations) {
  EXPECT_THROW(Autosaver(0, "unused"), std::invalid_argument);
  EXPECT_THROW(Autosaver(5, "unused", 0), std::invalid_argument);
}

TEST(Autosaver, DueOnlyAtNonZeroMultiples) {
  const Autosaver saver(5, "unused");
  EXPECT_FALSE(saver.due(0)) << "construction state needs no checkpoint";
  EXPECT_FALSE(saver.due(1));
  EXPECT_FALSE(saver.due(4));
  EXPECT_TRUE(saver.due(5));
  EXPECT_FALSE(saver.due(6));
  EXPECT_TRUE(saver.due(10));
  EXPECT_TRUE(saver.due(100));
}

TEST(Autosaver, WritesPrunesAndIgnoresStrays) {
  const fs::path dir = scratch_dir("prune");
  const Autosaver saver(1, dir, /*keep=*/2);
  saver.write(3, "gen three");
  saver.write(7, "gen seven");
  saver.write(12, "gen twelve");
  // Stray files recovery and pruning must both ignore.
  std::ofstream(dir / "auto-00000099.snap.tmp") << "crash leftover";
  std::ofstream(dir / "notes.txt") << "unrelated";

  const auto files = autosave_files(dir);
  ASSERT_EQ(files.size(), 2u) << "pruned to keep=2";
  EXPECT_EQ(files[0].filename(), "auto-00000012.snap") << "newest first";
  EXPECT_EQ(files[1].filename(), "auto-00000007.snap");
  EXPECT_FALSE(fs::exists(dir / "auto-00000003.snap")) << "oldest pruned";
  EXPECT_TRUE(fs::exists(dir / "auto-00000099.snap.tmp")) << "strays untouched";

  std::ifstream in(files[0]);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_EQ(contents, "gen twelve");
  EXPECT_TRUE(fs::exists(dir / "notes.txt"));
}

TEST(Autosaver, MissingOrEmptyDirectoryRecoversNothing) {
  const fs::path dir = scratch_dir("absent");
  EXPECT_TRUE(autosave_files(dir).empty());
  EXPECT_FALSE(recover_latest_swarm(dir).has_value());
  fs::create_directories(dir);
  EXPECT_TRUE(autosave_files(dir).empty());
  EXPECT_FALSE(recover_latest_swarm(dir).has_value());
  EXPECT_FALSE(recover_latest_tracker(dir, TrackerConfig{}).has_value());
}

TEST(SwarmAutosave, CadenceIsFreeAndGenerationsAppear) {
  const fs::path dir = scratch_dir("cadence");
  Sim plain;
  plain.swarm.run(17);
  const std::string want = save_to_string(plain.swarm);

  Sim saved;
  saved.swarm.autosave_every(5, dir, /*keep=*/2);
  saved.swarm.run(17);
  EXPECT_EQ(save_to_string(saved.swarm), want)
      << "autosave must never perturb the simulation";

  const auto files = autosave_files(dir);
  ASSERT_EQ(files.size(), 2u) << "saves at rounds 5/10/15, pruned to the newest 2";
  EXPECT_EQ(files[0].filename(), "auto-00000015.snap");
  EXPECT_EQ(files[1].filename(), "auto-00000010.snap");
}

TEST(SwarmAutosave, KillAndRecoverContinuesBitwise) {
  const fs::path dir = scratch_dir("recover");
  // The uninterrupted yardstick: 30 rounds straight through.
  Sim full;
  full.swarm.run(30);
  const std::string want = save_to_string(full.swarm);

  // The "crashed" run dies at round 23; the newest checkpoint is 20.
  {
    Sim victim;
    victim.swarm.autosave_every(5, dir, /*keep=*/3);
    victim.swarm.run(23);
  }  // destructor = kill -9 as far as the checkpoint files care

  auto recovered = recover_latest_swarm(dir);
  ASSERT_TRUE(recovered.has_value());
  EXPECT_EQ(recovered->swarm().rounds_elapsed(), 20u);
  recovered->swarm().run(10);
  EXPECT_EQ(save_to_string(recovered->swarm()), want)
      << "recovered run must finish bitwise identical to the uninterrupted one";
}

TEST(SwarmAutosave, CorruptNewestFallsBackThenGivesUp) {
  const fs::path dir = scratch_dir("fallback");
  Sim victim;
  victim.swarm.autosave_every(5, dir, /*keep=*/3);
  victim.swarm.run(23);  // generations 10, 15, 20 on disk

  auto files = autosave_files(dir);
  ASSERT_EQ(files.size(), 3u);
  corrupt_tail(files[0]);  // round 20 truncated mid-write

  auto recovered = recover_latest_swarm(dir);
  ASSERT_TRUE(recovered.has_value());
  EXPECT_EQ(recovered->swarm().rounds_elapsed(), 15u)
      << "corrupt newest generation must fall back to the previous one";

  // A recovered run from the older generation still converges on the
  // uninterrupted end state.
  Sim full;
  full.swarm.run(30);
  recovered->swarm().run(15);
  EXPECT_EQ(save_to_string(recovered->swarm()), save_to_string(full.swarm));

  // Garbage in every generation: recovery reports nothing rather than
  // throwing or resurrecting a half-written state.
  for (const auto& f : autosave_files(dir)) corrupt_tail(f);
  EXPECT_FALSE(recover_latest_swarm(dir).has_value());
}

TEST(TrackerAutosave, KillAndRecoverContinuesBitwise) {
  const fs::path dir = scratch_dir("tracker");
  TrackerConfig tcfg;
  tcfg.shards = 2;
  tcfg.arrival_rate = 1.5;
  tcfg.zipf_exponent = 1.0;
  tcfg.arrival_model = BandwidthModel::saroiu2002();
  tcfg.swarm_churn.lifetime = ChurnSpec::Lifetime::kExponential;
  tcfg.swarm_churn.lifetime_rounds = 20.0;
  tcfg.swarm_churn.arrival_completion = 0.25;
  constexpr std::size_t kSwarms = 4;
  constexpr std::size_t kPeers = 12;
  std::vector<TrackerSwarmSeed> seeds(kSwarms);
  for (std::size_t k = 0; k < kSwarms; ++k) {
    SwarmConfig scfg;
    scfg.num_peers = kPeers;
    scfg.seeds = 1;
    scfg.num_pieces = 32;
    scfg.piece_kb = 32.0;
    scfg.neighbor_degree = 6.0;
    scfg.initial_completion = 0.5;
    scfg.stay_as_seed = false;
    scfg.faults.outage_period = 5;
    scfg.faults.outage_duration = 1;
    scfg.faults.lane_loss_prob = 0.05;
    seeds[k].config = scfg;
    seeds[k].members.resize(kPeers);
    for (std::size_t i = 0; i < kPeers; ++i) {
      seeds[k].members[i] = static_cast<GlobalPeerId>(k * kPeers + i);
    }
  }
  const auto caps = capacities(kSwarms * kPeers);

  TrackerSim full(tcfg, seeds, caps, 909);
  full.run(16);
  std::ostringstream want(std::ios::binary);
  full.save(want);

  {
    TrackerSim victim(tcfg, seeds, caps, 909);
    victim.autosave_every(4, dir, /*keep=*/2);
    victim.run(14);  // dies between checkpoints; newest generation is 12
  }

  auto recovered = recover_latest_tracker(dir, tcfg);
  ASSERT_TRUE(recovered.has_value());
  EXPECT_EQ(recovered->rounds_elapsed(), 12u);
  recovered->run(4);
  std::ostringstream got(std::ios::binary);
  recovered->save(got);
  EXPECT_EQ(std::move(got).str(), std::move(want).str());
}

}  // namespace
}  // namespace strat::bt
