// Long-churn scaling invariants: a stationary open population must
// keep the swarm's per-peer backing storage and per-round cost O(live
// population), not O(arrivals-ever). ~20k replacement events churn
// through a 200-leecher swarm; the dense peer-table compaction is what
// keeps the data plane flat while peer_count() (ids ever) grows into
// the tens of thousands.
#include <gtest/gtest.h>

#include <chrono>

#include "bittorrent/reference_swarm.hpp"
#include "bittorrent/scenario.hpp"
#include "bittorrent/swarm.hpp"

namespace strat::bt {
namespace {

std::vector<double> bandwidths(std::size_t n, double base = 400.0) {
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = base * (1.0 + 0.001 * static_cast<double>(i));
  return out;
}

SwarmConfig churn_config() {
  SwarmConfig cfg;
  cfg.num_peers = 200;
  cfg.seeds = 2;
  cfg.num_pieces = 128;
  cfg.piece_kb = 64.0;  // long-lived content: the population stays leecher-heavy
  cfg.neighbor_degree = 16.0;
  cfg.initial_completion = 0.5;
  return cfg;
}

ChurnSpec replacement_spec() {
  ChurnSpec spec;
  spec.replacement_rate = 50.0;  // ~50 replacement events per round
  spec.arrival_completion = 0.5;
  spec.reannounce_interval = 8;
  return spec;
}

/// Runs `rounds` churned rounds and returns (data-plane bytes, seconds)
/// measured at the end of the window.
struct WindowSample {
  std::size_t data_plane_bytes = 0;
  std::size_t edge_slot_capacity = 0;
  double seconds = 0.0;
};

template <typename DriverT>
WindowSample run_window(Swarm& swarm, DriverT& driver, std::size_t rounds) {
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t r = 0; r < rounds; ++r) {
    driver.before_round(swarm);
    swarm.run_round();
  }
  const auto stop = std::chrono::steady_clock::now();
  WindowSample out;
  const auto fp = swarm.memory_footprint();
  out.data_plane_bytes = fp.peer_state_bytes + fp.edge_slot_bytes;
  out.edge_slot_capacity = swarm.edge_slot_capacity();
  out.seconds = std::chrono::duration<double>(stop - start).count();
  return out;
}

TEST(SwarmLongChurn, DataPlaneStaysBoundedAcross20kReplacements) {
  const SwarmConfig cfg = churn_config();
  const std::vector<double> bw = bandwidths(cfg.num_peers);
  graph::Rng rng(515151);
  Swarm swarm(cfg, bw, rng);
  ChurnDriver<Swarm> driver(replacement_spec(), cfg, bw, rng);
  driver.attach(swarm);

  // Warm-up window: vector capacities reach their live-population
  // high-water marks while the first ~2k replacements flow through.
  const WindowSample early = run_window(swarm, driver, 40);
  ASSERT_GT(swarm.arrivals(), 1000u);

  // Main window: ~18k further replacement events.
  const WindowSample late = run_window(swarm, driver, 360);
  EXPECT_GT(swarm.arrivals(), 15000u);
  EXPECT_GT(swarm.departures(), 15000u);

  // The population is stationary (replacement churn; completed
  // leechers stay as seeds), so live storage must not have grown with
  // the ~10x extra arrivals: O(live), not O(arrivals-ever).
  EXPECT_EQ(swarm.live_peer_count(), cfg.num_peers + cfg.seeds);
  EXPECT_LE(late.data_plane_bytes,
            early.data_plane_bytes + early.data_plane_bytes / 4);
  EXPECT_LE(late.edge_slot_capacity, 2 * early.edge_slot_capacity);
  // The external id space keeps the full arrival history...
  EXPECT_EQ(swarm.peer_count(), cfg.num_peers + cfg.seeds + swarm.arrivals());
  // ...while the dense rows cover only the live population.
  EXPECT_EQ(swarm.peer_table().size(), swarm.live_peer_count());

  // Per-round cost is O(live) too: 9x more cumulative arrivals must
  // not show up in the per-round time. The 5x margin absorbs CI noise;
  // the pre-compaction plane regressed linearly (~10x here).
  EXPECT_LT(late.seconds / 360.0, 5.0 * (early.seconds / 40.0) + 1e-3);

  // Departed peers stay queryable through the retired archive.
  std::size_t departed_seen = 0;
  for (core::PeerId p = 0; p < swarm.peer_count(); ++p) {
    if (!swarm.departed(p)) continue;
    ++departed_seen;
    EXPECT_GE(swarm.stats(p).leave_round, 0.0);
    EXPECT_EQ(swarm.degree(p), 0u);
  }
  EXPECT_EQ(departed_seen, swarm.departures());
}

TEST(SwarmLongChurn, RetainDepartedOffKeepsRetiredBytesFlat) {
  SwarmConfig cfg = churn_config();
  cfg.retain_departed = false;
  const std::vector<double> bw = bandwidths(cfg.num_peers);
  graph::Rng rng(626262);
  Swarm swarm(cfg, bw, rng);
  ChurnSpec spec = replacement_spec();
  spec.replacement_rate = 25.0;
  ChurnDriver<Swarm> driver(spec, cfg, bw, rng);
  driver.attach(swarm);
  for (std::size_t r = 0; r < 120; ++r) {
    driver.before_round(swarm);
    swarm.run_round();
  }
  ASSERT_GT(swarm.departures(), 2000u);
  // No archive: the only growing structure is the id->row index
  // (4 bytes per arrival); retired records stay empty.
  const auto fp = swarm.memory_footprint();
  EXPECT_EQ(fp.retired_bytes, 0u);
  EXPECT_EQ(swarm.live_peer_count(), cfg.num_peers + cfg.seeds);
  // Departed ids are recognized but their stats are gone by design.
  core::PeerId departed_id = core::kNoPeer;
  for (core::PeerId p = 0; p < swarm.peer_count(); ++p) {
    if (swarm.departed(p)) {
      departed_id = p;
      break;
    }
  }
  ASSERT_NE(departed_id, core::kNoPeer);
  EXPECT_THROW((void)swarm.stats(departed_id), std::out_of_range);
  // Live-pair stratification still works without the archive.
  const StratificationReport report = swarm.stratification();
  EXPECT_GT(report.reciprocated_pairs, 0u);
  // Conservation-style sanity on the aggregate: completions are
  // still counted across departures.
  EXPECT_EQ(swarm.peer_count(), cfg.num_peers + cfg.seeds + swarm.arrivals());
}

TEST(SwarmLongChurn, RetainDepartedOffIsRejectedWhereArchivesAreRequired) {
  SwarmConfig cfg = churn_config();
  cfg.retain_departed = false;
  const std::vector<double> bw = bandwidths(cfg.num_peers);
  // The oracle plane needs the full history for the bitwise
  // differential contract.
  {
    graph::Rng rng(1);
    EXPECT_THROW((ReferenceSwarm(cfg, bw, rng)), std::invalid_argument);
  }
  // Scenario summaries read every leecher that ever joined.
  SwarmScenario scenario;
  scenario.config = cfg;
  scenario.upload_kbps = bw;
  EXPECT_THROW((void)run_scenario(scenario, 3), std::invalid_argument);
  MultiSwarmSpec spec;
  spec.config = cfg;
  spec.upload_kbps.assign(distinct_peer_count(spec), 400.0);
  EXPECT_THROW((void)run_multi_swarm(spec, 3, 1), std::invalid_argument);
}

}  // namespace
}  // namespace strat::bt
