// Resume-equivalence differential tier for the checkpoint/restore
// subsystem: Swarm::save() at round k, resume(), and the continued run
// must be bitwise identical to the uninterrupted one — every PeerStats
// field, the stratification report, and every *subsequent* structural
// RNG draw — at any SwarmConfig::threads value, static and churned,
// and still bitwise equal to the map-based ReferenceSwarm oracle that
// never checkpoints at all. Re-saving a resumed swarm must reproduce
// the original byte stream (serialization is a pure function of run
// state). The robustness half feeds the loader hostile streams — bad
// magic, wrong version, every truncation point, single-byte
// corruption — and requires a clean SnapshotError every time (the
// ASan/UBSan CI job runs this binary to certify no UB on any path).
#include <gtest/gtest.h>

#include <cstddef>
#include <sstream>
#include <string>
#include <vector>

#include "bittorrent/bandwidth.hpp"
#include "bittorrent/peer_table.hpp"
#include "bittorrent/reference_swarm.hpp"
#include "bittorrent/scenario.hpp"
#include "bittorrent/snapshot.hpp"
#include "bittorrent/swarm.hpp"

namespace strat::bt {
namespace {

constexpr std::uint64_t kSeed = 90;
constexpr std::size_t kRounds = 40;
constexpr std::size_t kPostDraws = 16;  // structural draws compared after the run

std::vector<double> capacities(std::size_t n) {
  return BandwidthModel::saroiu2002().representative_sample(n);
}

SwarmConfig base_config(std::size_t peers) {
  SwarmConfig cfg;
  cfg.num_peers = peers;
  cfg.seeds = 2;
  cfg.num_pieces = 64;
  cfg.piece_kb = 32.0;
  cfg.neighbor_degree = 14.0;
  cfg.initial_completion = 0.5;
  cfg.endgame = true;        // partial/in-flight/reservation state in the stream
  cfg.stay_as_seed = false;  // completion departures: tombstones + retired records
  return cfg;
}

ChurnSpec churny_spec() {
  ChurnSpec spec;
  spec.arrivals = ChurnSpec::Arrivals::kPoisson;
  spec.arrival_rate = 2.0;
  spec.arrival_completion = 0.4;
  spec.lifetime = ChurnSpec::Lifetime::kExponential;
  spec.lifetime_rounds = 25.0;
  spec.replacement_rate = 2.0;
  spec.reannounce_interval = 5;
  return spec;
}

/// Everything a run exposes, plus the structural draws that follow it.
struct EndState {
  std::vector<PeerStats> stats;
  StratificationReport strat;
  std::size_t arrivals = 0;
  std::size_t departures = 0;
  std::size_t live = 0;
  std::size_t completed = 0;
  std::vector<std::uint64_t> post_draws;
};

template <typename SwarmT>
EndState end_state_of(const SwarmT& swarm, graph::Rng& rng) {
  EndState end;
  for (core::PeerId p = 0; p < swarm.peer_count(); ++p) end.stats.push_back(swarm.stats(p));
  end.strat = swarm.stratification();
  end.arrivals = swarm.arrivals();
  end.departures = swarm.departures();
  end.live = swarm.live_peer_count();
  end.completed = swarm.completed_leechers();
  for (std::size_t i = 0; i < kPostDraws; ++i) end.post_draws.push_back(rng());
  return end;
}

void expect_bitwise_equal(const EndState& a, const EndState& b, const char* what) {
  ASSERT_EQ(a.stats.size(), b.stats.size()) << what;
  for (std::size_t p = 0; p < a.stats.size(); ++p) {
    ASSERT_EQ(a.stats[p].upload_kbps, b.stats[p].upload_kbps) << what << " peer " << p;
    ASSERT_EQ(a.stats[p].uploaded_kb, b.stats[p].uploaded_kb) << what << " peer " << p;
    ASSERT_EQ(a.stats[p].downloaded_kb, b.stats[p].downloaded_kb) << what << " peer " << p;
    ASSERT_EQ(a.stats[p].pieces, b.stats[p].pieces) << what << " peer " << p;
    ASSERT_EQ(a.stats[p].completion_round, b.stats[p].completion_round) << what << " peer " << p;
    ASSERT_EQ(a.stats[p].join_round, b.stats[p].join_round) << what << " peer " << p;
    ASSERT_EQ(a.stats[p].leave_round, b.stats[p].leave_round) << what << " peer " << p;
    ASSERT_EQ(a.stats[p].seed, b.stats[p].seed) << what << " peer " << p;
  }
  EXPECT_EQ(a.strat.reciprocated_pairs, b.strat.reciprocated_pairs) << what;
  EXPECT_EQ(a.strat.mean_normalized_offset, b.strat.mean_normalized_offset) << what;
  EXPECT_EQ(a.strat.partner_rank_correlation, b.strat.partner_rank_correlation) << what;
  EXPECT_EQ(a.arrivals, b.arrivals) << what;
  EXPECT_EQ(a.departures, b.departures) << what;
  EXPECT_EQ(a.live, b.live) << what;
  EXPECT_EQ(a.completed, b.completed) << what;
  ASSERT_EQ(a.post_draws.size(), b.post_draws.size()) << what;
  for (std::size_t i = 0; i < a.post_draws.size(); ++i) {
    ASSERT_EQ(a.post_draws[i], b.post_draws[i]) << what << " post-run draw " << i;
  }
}

/// One uninterrupted run with a checkpoint taken mid-flight: the swarm
/// (and, when churned, the driver) serialized after `save_round`
/// rounds, then driven to `rounds` without interruption.
struct UninterruptedRun {
  std::string swarm_snapshot;
  std::string churn_snapshot;  // empty when not churned
  EndState end;
};

UninterruptedRun run_with_checkpoint(const SwarmConfig& cfg, std::size_t peers, bool churned,
                                     std::size_t save_round, std::size_t rounds = kRounds,
                                     std::uint64_t seed = kSeed) {
  graph::Rng rng(seed);
  Swarm swarm(cfg, capacities(peers), rng);
  ChurnDriver<Swarm> churn(churny_spec(), cfg, capacities(peers), rng);
  if (churned) churn.attach(swarm);
  UninterruptedRun run;
  auto checkpoint = [&] {
    run.swarm_snapshot = save_to_string(swarm);
    if (churned) {
      std::ostringstream out(std::ios::binary);
      save_churn_driver(out, churn);
      run.churn_snapshot = std::move(out).str();
    }
  };
  if (save_round == 0) checkpoint();
  for (std::size_t r = 0; r < rounds; ++r) {
    if (churned) churn.before_round(swarm);
    swarm.run_round();
    if (r + 1 == save_round) checkpoint();
  }
  run.end = end_state_of(swarm, rng);
  return run;
}

/// Resumes `run`'s checkpoint and drives it to `rounds` under the same
/// schedule, returning the continued end state.
EndState continue_from(const UninterruptedRun& run, const SwarmConfig& cfg, std::size_t peers,
                       bool churned, std::size_t rounds = kRounds,
                       const SwarmConfig* override_cfg = nullptr) {
  graph::Rng rng;  // state comes entirely from the snapshot
  std::istringstream in(run.swarm_snapshot, std::ios::binary);
  Swarm swarm = override_cfg != nullptr ? Swarm::resume(in, rng, *override_cfg)
                                        : Swarm::resume(in, rng);
  ChurnDriver<Swarm> churn(churny_spec(), cfg, capacities(peers), rng);
  if (churned) {
    std::istringstream churn_in(run.churn_snapshot, std::ios::binary);
    restore_churn_driver(churn_in, churn);  // NOT attach(): deadlines come from the stream
  }
  for (std::size_t r = swarm.rounds_elapsed(); r < rounds; ++r) {
    if (churned) churn.before_round(swarm);
    swarm.run_round();
  }
  return end_state_of(swarm, rng);
}

/// The oracle never checkpoints: a straight ReferenceSwarm run.
EndState run_reference(const SwarmConfig& cfg, std::size_t peers, bool churned) {
  graph::Rng rng(kSeed);
  ReferenceSwarm swarm(cfg, capacities(peers), rng);
  ChurnDriver<ReferenceSwarm> churn(churny_spec(), cfg, capacities(peers), rng);
  if (churned) churn.attach(swarm);
  for (std::size_t r = 0; r < kRounds; ++r) {
    if (churned) churn.before_round(swarm);
    swarm.run_round();
  }
  return end_state_of(swarm, rng);
}

// --- resume equivalence ---------------------------------------------------

TEST(SwarmSnapshot, StaticRunResumesBitwiseIdentically) {
  constexpr std::size_t kPeers = 200;
  const SwarmConfig cfg = base_config(kPeers);
  const UninterruptedRun run = run_with_checkpoint(cfg, kPeers, /*churned=*/false, 15);
  const EndState resumed = continue_from(run, cfg, kPeers, /*churned=*/false);
  expect_bitwise_equal(run.end, resumed, "resumed vs uninterrupted (static)");
  expect_bitwise_equal(run.end, run_reference(cfg, kPeers, /*churned=*/false),
                       "reference vs uninterrupted (static)");
}

TEST(SwarmSnapshot, ChurnedRunResumesBitwiseIdentically) {
  constexpr std::size_t kPeers = 200;
  const SwarmConfig cfg = base_config(kPeers);
  const UninterruptedRun run = run_with_checkpoint(cfg, kPeers, /*churned=*/true, 20);
  const EndState resumed = continue_from(run, cfg, kPeers, /*churned=*/true);
  expect_bitwise_equal(run.end, resumed, "resumed vs uninterrupted (churned)");
  expect_bitwise_equal(run.end, run_reference(cfg, kPeers, /*churned=*/true),
                       "reference vs uninterrupted (churned)");
}

TEST(SwarmSnapshot, ResumeIsThreadCountInvariant) {
  // A snapshot taken from a serial run resumes bitwise-identically
  // under any fan-out (the config override admits exactly `threads`).
  constexpr std::size_t kPeers = 300;
  const SwarmConfig cfg = base_config(kPeers);
  const UninterruptedRun run = run_with_checkpoint(cfg, kPeers, /*churned=*/true, 20);
  for (const std::size_t threads : {std::size_t{2}, std::size_t{8}, std::size_t{0}}) {
    SwarmConfig threaded = cfg;
    threaded.threads = threads;
    const EndState resumed = continue_from(run, cfg, kPeers, /*churned=*/true, kRounds, &threaded);
    expect_bitwise_equal(run.end, resumed, "threaded resume vs serial uninterrupted");
  }
}

TEST(SwarmSnapshot, EveryCheckpointRoundIsEquivalent) {
  // Round 0 (nothing elapsed), mid-run, and the final round (nothing
  // left to simulate) are all valid checkpoints.
  constexpr std::size_t kPeers = 120;
  const SwarmConfig cfg = base_config(kPeers);
  for (const std::size_t save_round : {std::size_t{0}, std::size_t{7}, std::size_t{23}, kRounds}) {
    const UninterruptedRun run = run_with_checkpoint(cfg, kPeers, /*churned=*/true, save_round);
    const EndState resumed = continue_from(run, cfg, kPeers, /*churned=*/true);
    expect_bitwise_equal(run.end, resumed, "resumed vs uninterrupted (varying save round)");
  }
}

TEST(SwarmSnapshot, ResaveReproducesByteIdenticalStream) {
  // Serialization is a pure function of run state: save -> resume ->
  // save must reproduce the original bytes exactly.
  constexpr std::size_t kPeers = 150;
  const SwarmConfig cfg = base_config(kPeers);
  const UninterruptedRun run = run_with_checkpoint(cfg, kPeers, /*churned=*/true, 18);
  ResumedSwarm resumed = resume_from_string(run.swarm_snapshot);
  EXPECT_EQ(save_to_string(resumed.swarm()), run.swarm_snapshot);
}

TEST(SwarmSnapshot, RoundTripFuzzAcrossSeedsAndRounds) {
  // Randomized save points and run seeds: the resumed run must match
  // the uninterrupted one and re-serialize byte-identically each time.
  constexpr std::size_t kPeers = 80;
  const SwarmConfig cfg = base_config(kPeers);
  graph::Rng meta(0xF0F0);
  for (int trial = 0; trial < 5; ++trial) {
    const std::uint64_t seed = meta();
    const auto save_round = static_cast<std::size_t>(meta.below(kRounds + 1));
    const UninterruptedRun run =
        run_with_checkpoint(cfg, kPeers, /*churned=*/true, save_round, kRounds, seed);
    {
      ResumedSwarm resumed = resume_from_string(run.swarm_snapshot);
      ASSERT_EQ(save_to_string(resumed.swarm()), run.swarm_snapshot)
          << "seed " << seed << " save round " << save_round;
    }
    const EndState resumed = continue_from(run, cfg, kPeers, /*churned=*/true);
    expect_bitwise_equal(run.end, resumed, "fuzz resumed vs uninterrupted");
  }
}

// --- fork ------------------------------------------------------------------

TEST(SwarmSnapshot, ForkUnderOriginalScheduleMatchesUninterrupted) {
  constexpr std::size_t kPeers = 150;
  const SwarmConfig cfg = base_config(kPeers);
  const UninterruptedRun run = run_with_checkpoint(cfg, kPeers, /*churned=*/true, 20);
  std::vector<ResumedSwarm> forks = fork_snapshot(run.swarm_snapshot, 2);
  ASSERT_EQ(forks.size(), 2u);
  // Fork 0 continues the checkpointed schedule: bitwise equal to the
  // uninterrupted run.
  {
    ResumedSwarm& fork = forks[0];
    ChurnDriver<Swarm> churn(churny_spec(), cfg, capacities(kPeers), fork.rng());
    std::istringstream churn_in(run.churn_snapshot, std::ios::binary);
    restore_churn_driver(churn_in, churn);
    for (std::size_t r = fork.swarm().rounds_elapsed(); r < kRounds; ++r) {
      churn.before_round(fork.swarm());
      fork.swarm().run_round();
    }
    expect_bitwise_equal(run.end, end_state_of(fork.swarm(), fork.rng()),
                         "fork 0 vs uninterrupted");
  }
  // Fork 1 explores a divergent future: triple the replacement churn.
  // It must diverge from the original (the what-if has an effect) while
  // both histories share the checkpointed prefix.
  {
    ResumedSwarm& fork = forks[1];
    ChurnSpec divergent = churny_spec();
    divergent.replacement_rate = 6.0;
    ChurnDriver<Swarm> churn(divergent, cfg, capacities(kPeers), fork.rng());
    std::istringstream churn_in(run.churn_snapshot, std::ios::binary);
    restore_churn_driver(churn_in, churn);
    const std::size_t shared_arrivals = fork.swarm().arrivals();
    for (std::size_t r = fork.swarm().rounds_elapsed(); r < kRounds; ++r) {
      churn.before_round(fork.swarm());
      fork.swarm().run_round();
    }
    EXPECT_GE(fork.swarm().arrivals(), shared_arrivals);
    EXPECT_NE(fork.swarm().departures(), run.end.departures)
        << "tripled replacement churn should change the departure count";
  }
}

// --- churn-driver state ----------------------------------------------------

TEST(SwarmSnapshot, ChurnDriverStateRoundTrips) {
  constexpr std::size_t kPeers = 100;
  const SwarmConfig cfg = base_config(kPeers);
  graph::Rng rng(kSeed);
  Swarm swarm(cfg, capacities(kPeers), rng);
  ChurnDriver<Swarm> churn(churny_spec(), cfg, capacities(kPeers), rng);
  churn.attach(swarm);
  for (std::size_t r = 0; r < 10; ++r) {
    churn.before_round(swarm);
    swarm.run_round();
  }
  std::ostringstream out(std::ios::binary);
  save_churn_driver(out, churn);
  const std::string bytes = std::move(out).str();

  graph::Rng rng2(kSeed);
  ChurnDriver<Swarm> restored(churny_spec(), cfg, capacities(kPeers), rng2);
  std::istringstream in(bytes, std::ios::binary);
  restore_churn_driver(in, restored);
  EXPECT_EQ(restored.deadline_snapshot(), churn.deadline_snapshot());
  EXPECT_EQ(restored.capacity_cursor(), churn.capacity_cursor());
}

// --- id-index compaction (the 4 B/arrival-ever fix) ------------------------

TEST(SwarmSnapshot, LoadedIdIndexHasZeroCapacitySlack) {
  // The in-process id->row map grows geometrically (capacity slack on
  // top of 4 B per id ever); PeerTable::restore rebuilds it at exactly
  // id_space entries. The loaded index must be the information-
  // theoretic floor — live rows + tombstones, nothing more.
  constexpr std::size_t kPeers = 100;
  SwarmConfig cfg = base_config(kPeers);
  const UninterruptedRun run = run_with_checkpoint(cfg, kPeers, /*churned=*/true, kRounds);
  ResumedSwarm resumed = resume_from_string(run.swarm_snapshot);
  const PeerTable& table = resumed.swarm().peer_table();
  EXPECT_GT(table.id_space(), kPeers + 2) << "churn should have grown the id space";
  EXPECT_EQ(table.id_map_bytes(), table.id_space() * sizeof(PeerTable::Row))
      << "loaded id->row index must carry zero capacity slack";
}

// --- robustness ------------------------------------------------------------

std::string tiny_snapshot() {
  SwarmConfig cfg = base_config(8);
  cfg.neighbor_degree = 4.0;
  cfg.num_pieces = 16;
  graph::Rng rng(kSeed);
  Swarm swarm(cfg, capacities(8), rng);
  swarm.run(3);
  return save_to_string(swarm);
}

TEST(SwarmSnapshot, RejectsBadMagic) {
  std::string bytes = tiny_snapshot();
  bytes[0] ^= 0x5A;
  EXPECT_THROW((void)resume_from_string(bytes), SnapshotError);
}

TEST(SwarmSnapshot, RejectsWrongVersion) {
  std::string bytes = tiny_snapshot();
  bytes[8] = 99;  // the version u32 follows the 8-byte magic
  EXPECT_THROW((void)resume_from_string(bytes), SnapshotError);
}

TEST(SwarmSnapshot, RejectsEveryTruncationPoint) {
  const std::string bytes = tiny_snapshot();
  // Every strictly-shorter prefix must throw — never crash, never
  // yield a swarm. Small snapshot, so all prefixes are affordable.
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_THROW((void)resume_from_string(bytes.substr(0, len)), SnapshotError)
        << "prefix length " << len;
  }
}

TEST(SwarmSnapshot, RejectsSingleByteCorruption) {
  const std::string bytes = tiny_snapshot();
  // Flip one byte at a time across the whole stream: the checksum (or
  // an earlier structural check) must reject every variant. The loader
  // may throw at any layer, but it must always throw SnapshotError —
  // a corrupt snapshot can never come up as a live swarm.
  for (std::size_t at = 0; at < bytes.size(); ++at) {
    std::string corrupt = bytes;
    corrupt[at] = static_cast<char>(corrupt[at] ^ 0xFF);
    EXPECT_THROW((void)resume_from_string(corrupt), SnapshotError) << "byte offset " << at;
  }
}

TEST(SwarmSnapshot, RejectsConfigOverrideMismatch) {
  const std::string bytes = tiny_snapshot();
  SwarmConfig cfg = base_config(8);
  cfg.neighbor_degree = 4.0;
  cfg.num_pieces = 16;
  cfg.threads = 4;  // allowed to differ
  EXPECT_NO_THROW((void)resume_from_string(bytes, cfg));
  cfg.piece_kb *= 2.0;  // not allowed to differ
  EXPECT_THROW((void)resume_from_string(bytes, cfg), SnapshotError);
}

TEST(SwarmSnapshot, RejectsChurnSectionAsSwarmSnapshot) {
  SwarmConfig cfg = base_config(8);
  graph::Rng rng(kSeed);
  ChurnDriver<Swarm> churn(churny_spec(), cfg, capacities(8), rng);
  std::ostringstream out(std::ios::binary);
  save_churn_driver(out, churn);
  EXPECT_THROW((void)resume_from_string(std::move(out).str()), SnapshotError);
}

}  // namespace
}  // namespace strat::bt
