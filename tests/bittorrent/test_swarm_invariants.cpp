// Swarm conservation/invariant suite guarding the edge-slot data
// plane: byte conservation every round, availability counters that
// track exactly the pieces held by non-departed peers, no leaked edge
// slots under churn, bitwise determinism for a fixed seed, and bitwise
// equivalence between the flat data plane (Swarm) and the retained
// map-based implementation (ReferenceSwarm) — on static and churned
// (join/leave/re-announce) runs alike.
#include <gtest/gtest.h>

#include "bittorrent/bandwidth.hpp"
#include "bittorrent/reference_swarm.hpp"
#include "bittorrent/scenario.hpp"
#include "bittorrent/swarm.hpp"

namespace strat::bt {
namespace {

std::vector<double> bandwidths(std::size_t n, double base = 400.0) {
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = base * (1.0 + 0.001 * static_cast<double>(i));
  return out;
}

TEST(SwarmInvariants, ConservationHoldsEveryRound) {
  graph::Rng rng(31);
  SwarmConfig cfg;
  cfg.num_peers = 50;
  cfg.seeds = 2;
  cfg.num_pieces = 64;
  cfg.piece_kb = 32.0;
  cfg.neighbor_degree = 14.0;
  cfg.initial_completion = 0.4;
  Swarm swarm(cfg, bandwidths(50), rng);
  for (std::size_t r = 0; r < 40; ++r) {
    swarm.run_round();
    double uploaded = 0.0;
    double downloaded = 0.0;
    for (core::PeerId p = 0; p < swarm.peer_count(); ++p) {
      uploaded += swarm.stats(p).uploaded_kb;
      downloaded += swarm.stats(p).downloaded_kb;
    }
    ASSERT_NEAR(uploaded, downloaded, 1e-6) << "round " << r;
  }
}

TEST(SwarmInvariants, AvailabilityEqualsHoldingsUnderDepartures) {
  graph::Rng rng(32);
  SwarmConfig cfg;
  cfg.num_peers = 40;
  cfg.seeds = 2;
  cfg.num_pieces = 24;
  cfg.piece_kb = 8.0;
  cfg.neighbor_degree = 12.0;
  cfg.initial_completion = 0.6;
  cfg.stay_as_seed = false;
  Swarm swarm(cfg, bandwidths(40, 800.0), rng);
  for (std::size_t r = 0; r < 150; ++r) {
    swarm.run_round();
    std::size_t held = 0;
    for (core::PeerId p = 0; p < swarm.peer_count(); ++p) {
      if (!swarm.departed(p)) held += swarm.stats(p).pieces;
    }
    const double copies =
        swarm.availability_stats().mean * static_cast<double>(cfg.num_pieces);
    ASSERT_NEAR(copies, static_cast<double>(held), 1e-6) << "round " << r;
  }
  EXPECT_GT(swarm.completed_leechers(), 20u);
}

TEST(SwarmInvariants, FixedSeedRunsAreBitwiseIdentical) {
  SwarmConfig cfg;
  cfg.num_peers = 40;
  cfg.seeds = 1;
  cfg.num_pieces = 64;
  cfg.piece_kb = 64.0;
  cfg.neighbor_degree = 12.0;
  struct Snapshot {
    std::vector<PeerStats> stats;
    StratificationReport strat;
  };
  auto run_once = [&](std::uint64_t seed) {
    graph::Rng rng(seed);
    Swarm swarm(cfg, bandwidths(40), rng);
    swarm.run(25);
    Snapshot snap;
    for (core::PeerId p = 0; p < swarm.peer_count(); ++p) snap.stats.push_back(swarm.stats(p));
    snap.strat = swarm.stratification();
    return snap;
  };
  const Snapshot a = run_once(99);
  const Snapshot b = run_once(99);
  ASSERT_EQ(a.stats.size(), b.stats.size());
  for (std::size_t p = 0; p < a.stats.size(); ++p) {
    EXPECT_EQ(a.stats[p].uploaded_kb, b.stats[p].uploaded_kb) << "peer " << p;
    EXPECT_EQ(a.stats[p].downloaded_kb, b.stats[p].downloaded_kb) << "peer " << p;
    EXPECT_EQ(a.stats[p].pieces, b.stats[p].pieces) << "peer " << p;
    EXPECT_EQ(a.stats[p].completion_round, b.stats[p].completion_round) << "peer " << p;
  }
  EXPECT_EQ(a.strat.reciprocated_pairs, b.strat.reciprocated_pairs);
  EXPECT_EQ(a.strat.mean_normalized_offset, b.strat.mean_normalized_offset);
  EXPECT_EQ(a.strat.partner_rank_correlation, b.strat.partner_rank_correlation);
}

/// Runs Swarm and ReferenceSwarm from the same seed/config and demands
/// bitwise-identical observable state. Exercised on configs that hit
/// every fixed bug (departures, construction-complete leechers,
/// endgame budget redistribution) plus a stratification workload.
void expect_equivalent(const SwarmConfig& cfg, const std::vector<double>& bw,
                       std::uint64_t seed, std::size_t rounds) {
  graph::Rng rng_flat(seed);
  Swarm flat(cfg, bw, rng_flat);
  graph::Rng rng_ref(seed);
  ReferenceSwarm ref(cfg, bw, rng_ref);
  // Step in sync so a divergence is pinned to a round, not a run.
  const std::size_t stride = 5;
  for (std::size_t done = 0; done < rounds; done += stride) {
    const std::size_t step = std::min(stride, rounds - done);
    flat.run(step);
    ref.run(step);
    for (core::PeerId p = 0; p < flat.peer_count(); ++p) {
      ASSERT_EQ(flat.stats(p).uploaded_kb, ref.stats(p).uploaded_kb)
          << "peer " << p << " after " << flat.rounds_elapsed() << " rounds";
      ASSERT_EQ(flat.stats(p).downloaded_kb, ref.stats(p).downloaded_kb) << "peer " << p;
      ASSERT_EQ(flat.stats(p).pieces, ref.stats(p).pieces) << "peer " << p;
      ASSERT_EQ(flat.stats(p).completion_round, ref.stats(p).completion_round)
          << "peer " << p;
      ASSERT_EQ(flat.departed(p), ref.departed(p)) << "peer " << p;
    }
  }
  const auto availability_flat = flat.availability_stats();
  const auto availability_ref = ref.availability_stats();
  EXPECT_EQ(availability_flat.mean, availability_ref.mean);
  EXPECT_EQ(availability_flat.min, availability_ref.min);
  EXPECT_EQ(availability_flat.max, availability_ref.max);
  const auto strat_flat = flat.stratification();
  const auto strat_ref = ref.stratification();
  EXPECT_EQ(strat_flat.reciprocated_pairs, strat_ref.reciprocated_pairs);
  EXPECT_EQ(strat_flat.mean_normalized_offset, strat_ref.mean_normalized_offset);
  EXPECT_EQ(strat_flat.partner_rank_correlation, strat_ref.partner_rank_correlation);
  EXPECT_EQ(flat.completed_leechers(), ref.completed_leechers());
}

TEST(SwarmInvariants, FlatPlaneMatchesReferenceOnChurnyEndgame) {
  SwarmConfig cfg;
  cfg.num_peers = 40;
  cfg.seeds = 2;
  cfg.num_pieces = 16;
  cfg.piece_kb = 8.0;
  cfg.neighbor_degree = 10.0;
  cfg.initial_completion = 0.8;  // construction-complete leechers likely
  cfg.stay_as_seed = false;      // departures + availability decrements
  expect_equivalent(cfg, bandwidths(40, 800.0), 77, 120);
}

TEST(SwarmInvariants, FlatPlaneMatchesReferenceOnStratificationWorkload) {
  SwarmConfig cfg;
  cfg.num_peers = 80;
  cfg.seeds = 1;
  cfg.num_pieces = 256;
  cfg.piece_kb = 128.0;
  cfg.neighbor_degree = 20.0;
  cfg.initial_completion = 0.5;
  const BandwidthModel model = BandwidthModel::saroiu2002();
  expect_equivalent(cfg, model.representative_sample(80), 78, 40);
}

TEST(SwarmInvariants, FlatPlaneMatchesReferenceWithHeterogeneousSlots) {
  SwarmConfig cfg;
  cfg.num_peers = 30;
  cfg.seeds = 1;
  cfg.num_pieces = 64;
  cfg.piece_kb = 32.0;
  cfg.neighbor_degree = 10.0;
  cfg.tft_slots_per_peer.resize(30);
  for (std::size_t p = 0; p < 30; ++p) cfg.tft_slots_per_peer[p] = 1 + p % 5;
  expect_equivalent(cfg, bandwidths(30), 79, 30);
}

TEST(SwarmInvariants, FlatPlaneMatchesReferenceWithEndgameDiscipline) {
  SwarmConfig cfg;
  cfg.num_peers = 40;
  cfg.seeds = 2;
  cfg.num_pieces = 32;  // small piece space: endgame phase is reached
  cfg.piece_kb = 16.0;
  cfg.neighbor_degree = 12.0;
  cfg.initial_completion = 0.7;
  cfg.endgame = true;
  expect_equivalent(cfg, bandwidths(40, 600.0), 80, 80);
}

/// Replays one churn schedule through both data planes and demands
/// bitwise-identical observable state after every round.
void expect_equivalent_churned(const SwarmConfig& cfg, const ChurnSpec& spec,
                               const std::vector<double>& bw, std::uint64_t seed,
                               std::size_t rounds) {
  graph::Rng rng_flat(seed);
  Swarm flat(cfg, bw, rng_flat);
  ChurnDriver<Swarm> churn_flat(spec, cfg, bw, rng_flat);
  churn_flat.attach(flat);
  graph::Rng rng_ref(seed);
  ReferenceSwarm ref(cfg, bw, rng_ref);
  ChurnDriver<ReferenceSwarm> churn_ref(spec, cfg, bw, rng_ref);
  churn_ref.attach(ref);
  for (std::size_t r = 0; r < rounds; ++r) {
    churn_flat.before_round(flat);
    churn_ref.before_round(ref);
    flat.run_round();
    ref.run_round();
    ASSERT_EQ(flat.peer_count(), ref.peer_count()) << "round " << r;
    ASSERT_EQ(flat.arrivals(), ref.arrivals()) << "round " << r;
    ASSERT_EQ(flat.departures(), ref.departures()) << "round " << r;
    ASSERT_EQ(flat.live_peer_count(), ref.live_peer_count()) << "round " << r;
    for (core::PeerId p = 0; p < flat.peer_count(); ++p) {
      ASSERT_EQ(flat.stats(p).uploaded_kb, ref.stats(p).uploaded_kb)
          << "peer " << p << " round " << r;
      ASSERT_EQ(flat.stats(p).downloaded_kb, ref.stats(p).downloaded_kb)
          << "peer " << p << " round " << r;
      ASSERT_EQ(flat.stats(p).pieces, ref.stats(p).pieces) << "peer " << p << " round " << r;
      ASSERT_EQ(flat.stats(p).completion_round, ref.stats(p).completion_round)
          << "peer " << p << " round " << r;
      ASSERT_EQ(flat.stats(p).join_round, ref.stats(p).join_round) << "peer " << p;
      ASSERT_EQ(flat.stats(p).leave_round, ref.stats(p).leave_round) << "peer " << p;
      ASSERT_EQ(flat.departed(p), ref.departed(p)) << "peer " << p << " round " << r;
      ASSERT_EQ(flat.degree(p), ref.degree(p)) << "peer " << p << " round " << r;
    }
  }
  const auto availability_flat = flat.availability_stats();
  const auto availability_ref = ref.availability_stats();
  EXPECT_EQ(availability_flat.mean, availability_ref.mean);
  EXPECT_EQ(availability_flat.min, availability_ref.min);
  EXPECT_EQ(availability_flat.max, availability_ref.max);
  const auto strat_flat = flat.stratification();
  const auto strat_ref = ref.stratification();
  EXPECT_EQ(strat_flat.reciprocated_pairs, strat_ref.reciprocated_pairs);
  EXPECT_EQ(strat_flat.mean_normalized_offset, strat_ref.mean_normalized_offset);
  EXPECT_EQ(strat_flat.partner_rank_correlation, strat_ref.partner_rank_correlation);
  EXPECT_EQ(flat.completed_leechers(), ref.completed_leechers());
}

TEST(SwarmInvariants, FlatPlaneMatchesReferenceUnderReplacementChurn) {
  SwarmConfig cfg;
  cfg.num_peers = 60;
  cfg.seeds = 2;
  cfg.num_pieces = 64;
  cfg.piece_kb = 64.0;
  cfg.neighbor_degree = 14.0;
  cfg.initial_completion = 0.5;
  ChurnSpec spec;
  spec.replacement_rate = 1.5;  // the paper's x/1000 regime, x = 25
  spec.arrival_completion = 0.3;
  expect_equivalent_churned(cfg, spec, bandwidths(60), 81, 60);
}

TEST(SwarmInvariants, FlatPlaneMatchesReferenceUnderArrivalsLifetimesReannounce) {
  SwarmConfig cfg;
  cfg.num_peers = 50;
  cfg.seeds = 2;
  cfg.num_pieces = 48;
  cfg.piece_kb = 32.0;
  cfg.neighbor_degree = 12.0;
  cfg.initial_completion = 0.4;
  cfg.stay_as_seed = false;  // completion departures interleave with churn
  ChurnSpec spec;
  spec.arrivals = ChurnSpec::Arrivals::kPoisson;
  spec.arrival_rate = 1.2;
  spec.lifetime = ChurnSpec::Lifetime::kExponential;
  spec.lifetime_rounds = 30.0;
  spec.reannounce_interval = 5;
  expect_equivalent_churned(cfg, spec, bandwidths(50, 700.0), 82, 70);
}

TEST(SwarmInvariants, FlatPlaneMatchesReferenceUnderFlashCrowdWithEndgame) {
  SwarmConfig cfg;
  cfg.num_peers = 30;
  cfg.seeds = 2;
  cfg.num_pieces = 32;
  cfg.piece_kb = 24.0;
  cfg.neighbor_degree = 10.0;
  cfg.post_flashcrowd = false;  // arrivals and initial peers all start empty
  cfg.endgame = true;
  ChurnSpec spec;
  spec.arrivals = ChurnSpec::Arrivals::kFlashCrowd;
  spec.flash_crowd_size = 25;
  spec.flash_crowd_round = 8;
  spec.lifetime = ChurnSpec::Lifetime::kFixed;
  spec.lifetime_rounds = 40.0;
  spec.reannounce_interval = 6;
  expect_equivalent_churned(cfg, spec, bandwidths(30, 900.0), 83, 60);
}

TEST(SwarmInvariants, FlatPlaneMatchesReferenceWithModelSampledArrivals) {
  // Arrival capacities drawn from the empirical bandwidth CDF: the
  // inverse-CDF sampling consumes swarm RNG, so this pins the two
  // planes' draw sequences through the model path too.
  SwarmConfig cfg;
  cfg.num_peers = 50;
  cfg.seeds = 2;
  cfg.num_pieces = 48;
  cfg.piece_kb = 32.0;
  cfg.neighbor_degree = 12.0;
  cfg.initial_completion = 0.5;
  ChurnSpec spec;
  spec.replacement_rate = 2.0;
  spec.arrival_completion = 0.4;
  spec.arrival_bandwidth = ChurnSpec::ArrivalBandwidth::kModel;
  spec.arrival_model = BandwidthModel::saroiu2002();
  expect_equivalent_churned(cfg, spec, bandwidths(50), 85, 50);
}

TEST(SwarmInvariants, ChurnedRunConservesAndLeaksNoSlots) {
  graph::Rng rng(84);
  SwarmConfig cfg;
  cfg.num_peers = 50;
  cfg.seeds = 2;
  cfg.num_pieces = 48;
  cfg.piece_kb = 16.0;
  cfg.neighbor_degree = 12.0;
  cfg.initial_completion = 0.4;
  cfg.stay_as_seed = false;
  const std::vector<double> bw = bandwidths(50, 800.0);
  Swarm swarm(cfg, bw, rng);
  ChurnSpec spec;
  spec.replacement_rate = 1.0;
  spec.arrivals = ChurnSpec::Arrivals::kPoisson;
  spec.arrival_rate = 0.8;
  spec.lifetime = ChurnSpec::Lifetime::kExponential;
  spec.lifetime_rounds = 25.0;
  spec.reannounce_interval = 4;
  ChurnDriver<Swarm> churn(spec, cfg, bw, rng);
  churn.attach(swarm);
  for (std::size_t r = 0; r < 80; ++r) {
    churn.before_round(swarm);
    swarm.run_round();
    // Conservation: every KB uploaded was downloaded by someone.
    double uploaded = 0.0;
    double downloaded = 0.0;
    for (core::PeerId p = 0; p < swarm.peer_count(); ++p) {
      uploaded += swarm.stats(p).uploaded_kb;
      downloaded += swarm.stats(p).downloaded_kb;
    }
    ASSERT_NEAR(uploaded, downloaded, 1e-6) << "round " << r;
    // Availability counters == pieces held by live peers.
    std::size_t held = 0;
    for (core::PeerId p = 0; p < swarm.peer_count(); ++p) {
      if (!swarm.departed(p)) held += swarm.stats(p).pieces;
    }
    const double copies =
        swarm.availability_stats().mean * static_cast<double>(cfg.num_pieces);
    ASSERT_NEAR(copies, static_cast<double>(held), 1e-6) << "round " << r;
    // Slot pool: no slot leaked or double-booked — live + free ==
    // capacity, and live slots match the overlay degree sum.
    std::size_t degree_sum = 0;
    for (core::PeerId p = 0; p < swarm.peer_count(); ++p) degree_sum += swarm.degree(p);
    ASSERT_EQ(swarm.live_edge_slots(), degree_sum) << "round " << r;
    ASSERT_EQ(swarm.live_edge_slots() + swarm.free_edge_slots(), swarm.edge_slot_capacity())
        << "round " << r;
    // Adjacency rows never name departed peers.
    for (core::PeerId p = 0; p < swarm.peer_count(); ++p) {
      for (const core::PeerId q : swarm.neighbors(p)) {
        ASSERT_FALSE(swarm.departed(q)) << "round " << r << " edge " << p << "-" << q;
      }
    }
  }
  EXPECT_GT(swarm.arrivals(), 0u);
  EXPECT_GT(swarm.departures(), 0u);
}

}  // namespace
}  // namespace strat::bt
