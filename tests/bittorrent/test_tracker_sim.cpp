// TrackerSim: the determinism contract one level up from Swarm.
//
// The tentpole assertions are differential and bitwise, via save()
// byte equality: any shard count {1, 2, 8, auto} must produce the
// identical ecosystem (a 10^3-swarm run included — the tier-1
// acceptance bar), a closed member swarm must equal the same Swarm run
// standalone, and a save()/resume() round-trip must continue bitwise
// even when the resumed tracker uses a different shard count. On top:
// the capacity-split conservation invariant (shares sum to the
// ecosystem capacity with operator==, not a tolerance), Zipf arrival
// determinism and skew, and the registry's O(live) bound under heavy
// churn (the longchurn regression at tracker level).
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "bittorrent/bandwidth.hpp"
#include "bittorrent/scenario.hpp"
#include "bittorrent/snapshot.hpp"
#include "bittorrent/swarm.hpp"
#include "bittorrent/tracker_sim.hpp"
#include "graph/rng.hpp"

namespace strat::bt {
namespace {

SwarmConfig member_config(std::size_t peers) {
  SwarmConfig cfg;
  cfg.num_peers = peers;
  cfg.seeds = 1;
  cfg.num_pieces = 32;
  cfg.piece_kb = 16.0;
  cfg.neighbor_degree = 6.0;
  cfg.initial_completion = 0.5;
  cfg.stay_as_seed = false;  // completion departures exercise the prune
  return cfg;
}

/// Disjoint member swarms: swarm k owns global ids
/// [k*peers, (k+1)*peers), capacities from the global ecosystem CDF.
std::vector<TrackerSwarmSeed> disjoint_seeds(std::size_t num_swarms, std::size_t peers) {
  std::vector<TrackerSwarmSeed> seeds(num_swarms);
  for (std::size_t k = 0; k < num_swarms; ++k) {
    seeds[k].config = member_config(peers);
    seeds[k].members.resize(peers);
    for (std::size_t local = 0; local < peers; ++local) {
      seeds[k].members[local] = static_cast<GlobalPeerId>(k * peers + local);
    }
  }
  return seeds;
}

TrackerConfig churned_config(std::size_t shards) {
  TrackerConfig cfg;
  cfg.shards = shards;
  cfg.arrival_rate = 6.0;
  cfg.zipf_exponent = 1.0;
  cfg.multi_torrent_fraction = 0.3;
  cfg.arrival_model = BandwidthModel::saroiu2002();
  cfg.swarm_churn.lifetime = ChurnSpec::Lifetime::kExponential;
  cfg.swarm_churn.lifetime_rounds = 25.0;
  cfg.swarm_churn.arrival_completion = 0.25;
  return cfg;
}

TrackerSim churned_tracker(std::size_t shards, std::size_t num_swarms, std::size_t peers,
                           std::uint64_t seed) {
  const auto capacities =
      BandwidthModel::saroiu2002().representative_sample(num_swarms * peers);
  return TrackerSim(churned_config(shards), disjoint_seeds(num_swarms, peers), capacities,
                    seed);
}

std::string save_bytes(const TrackerSim& tracker) {
  std::ostringstream out;
  tracker.save(out);
  return out.str();
}

TEST(TrackerSim, ShardCountIsBitwiseInvariant) {
  const std::string reference = [&] {
    TrackerSim t = churned_tracker(1, 12, 16, 99);
    t.run(12);
    return save_bytes(t);
  }();
  for (const std::size_t shards : {std::size_t{2}, std::size_t{8}, std::size_t{0}}) {
    TrackerSim t = churned_tracker(shards, 12, 16, 99);
    t.run(12);
    EXPECT_EQ(save_bytes(t), reference) << "shards=" << shards;
  }
}

TEST(TrackerSim, ThousandSwarmRunIsShardInvariant) {
  // The acceptance bar: a 10^3-swarm ecosystem, churned and
  // multi-torrent, bitwise identical across shards {1, 2, 8, auto}.
  // Swarms are kept tiny so the 4 runs stay tier-1-fast.
  const auto build = [](std::size_t shards) {
    std::vector<TrackerSwarmSeed> seeds(1000);
    for (std::size_t k = 0; k < seeds.size(); ++k) {
      SwarmConfig cfg;
      cfg.num_peers = 6;
      cfg.seeds = 1;
      cfg.num_pieces = 16;
      cfg.piece_kb = 16.0;
      cfg.neighbor_degree = 4.0;
      cfg.initial_completion = 0.5;
      cfg.stay_as_seed = false;
      seeds[k].config = cfg;
      seeds[k].members.resize(6);
      for (std::size_t local = 0; local < 6; ++local) {
        seeds[k].members[local] = static_cast<GlobalPeerId>(k * 6 + local);
      }
    }
    TrackerConfig cfg = churned_config(shards);
    cfg.arrival_rate = 50.0;
    const auto capacities = BandwidthModel::saroiu2002().representative_sample(6000);
    return TrackerSim(cfg, std::move(seeds), capacities, 1234);
  };
  const std::string reference = [&] {
    TrackerSim t = build(1);
    t.run(3);
    return save_bytes(t);
  }();
  for (const std::size_t shards : {std::size_t{2}, std::size_t{8}, std::size_t{0}}) {
    TrackerSim t = build(shards);
    t.run(3);
    EXPECT_EQ(save_bytes(t), reference) << "shards=" << shards;
  }
}

TEST(TrackerSim, ClosedMemberSwarmsMatchStandaloneRuns) {
  // With no ecosystem churn, member swarm k must reproduce — bitwise,
  // by snapshot bytes — a standalone Swarm run from
  // Rng(seed + kTrackerSwarmSeedStride * (k+1)) with the same config.
  const std::size_t num_swarms = 4;
  const std::size_t peers = 14;
  const std::uint64_t seed = 7;
  const auto capacities =
      BandwidthModel::saroiu2002().representative_sample(num_swarms * peers);
  TrackerConfig cfg;
  cfg.shards = 3;
  TrackerSim tracker(cfg, disjoint_seeds(num_swarms, peers), capacities, seed);
  tracker.run(10);

  for (std::size_t k = 0; k < num_swarms; ++k) {
    SwarmConfig scfg = member_config(peers);
    scfg.threads = 1;  // the tracker forces this under sharding
    std::vector<double> local_caps(peers);
    for (std::size_t local = 0; local < peers; ++local) {
      local_caps[local] = capacities[k * peers + local];
    }
    graph::Rng rng(seed + kTrackerSwarmSeedStride * (k + 1));
    Swarm standalone(scfg, local_caps, rng);
    standalone.run(10);

    std::ostringstream expect_stream;
    standalone.save(expect_stream);
    std::ostringstream got_stream;
    tracker.swarm(k).save(got_stream);
    EXPECT_EQ(got_stream.str(), expect_stream.str()) << "swarm " << k;
  }
}

TEST(TrackerSim, MultiTorrentCapacitySplitIsConserved) {
  // Every round, for every registry peer whose memberships are all
  // live, the per-swarm capacities must sum to the ecosystem capacity
  // *exactly* — membership_capacity_share's remainder construction
  // makes conservation an == invariant, not a tolerance. Records with
  // a mid-round departure are re-split at the next barrier, so they
  // are checked after their next round.
  TrackerConfig cfg = churned_config(1);
  cfg.arrival_rate = 10.0;
  cfg.multi_torrent_fraction = 1.0;  // every arrival splits
  TrackerSim tracker(cfg, disjoint_seeds(4, 16),
                     BandwidthModel::saroiu2002().representative_sample(64), 11);

  std::size_t multi_checked = 0;
  for (std::size_t round = 0; round < 25; ++round) {
    tracker.run_round();
    for (const PeerRegistry::Record& rec : tracker.registry().records()) {
      bool all_live = true;
      double sum = 0.0;
      for (const PeerRegistry::Membership& m : rec.memberships) {
        if (tracker.swarm(m.swarm).departed(m.local)) {
          all_live = false;
          break;
        }
        sum += tracker.swarm(m.swarm).stats(m.local).upload_kbps;
      }
      if (!all_live) continue;
      EXPECT_EQ(sum, rec.upload_kbps) << "peer " << rec.id << " round " << round;
      if (rec.memberships.size() > 1) ++multi_checked;
    }
  }
  // The invariant must actually have been exercised on split peers.
  EXPECT_GT(multi_checked, 50u);
}

TEST(TrackerSim, ZipfArrivalsAreDeterministicAndSkewed) {
  TrackerConfig cfg = churned_config(1);
  cfg.arrival_rate = 30.0;
  cfg.zipf_exponent = 1.2;
  cfg.multi_torrent_fraction = 0.0;
  const auto capacities = BandwidthModel::saroiu2002().representative_sample(6 * 12);

  TrackerSim a(cfg, disjoint_seeds(6, 12), capacities, 21);
  a.run(20);
  TrackerSim b(cfg, disjoint_seeds(6, 12), capacities, 21);
  b.run(20);
  EXPECT_EQ(save_bytes(a), save_bytes(b));

  // Popularity skew: the head swarm must out-draw the tail swarm by a
  // wide margin (expected ratio 7^1.2 ~ 10x at these rates).
  EXPECT_GT(a.swarm(0).arrivals(), a.swarm(5).arrivals() + 20);
  std::size_t total = 0;
  for (std::size_t k = 0; k < 6; ++k) total += a.swarm(k).arrivals();
  EXPECT_GT(total, 400u);  // ~600 expected from 20 rounds at rate 30
}

TEST(TrackerSim, RegistryStaysLiveSizedUnderChurn) {
  // Longchurn regression at tracker level: cumulative arrivals grow
  // without bound, the registry must not — records are pruned when
  // their last membership departs.
  TrackerConfig cfg = churned_config(1);
  cfg.arrival_rate = 25.0;
  cfg.swarm_churn.lifetime_rounds = 4.0;  // fast turnover
  TrackerSim tracker(cfg, disjoint_seeds(2, 16),
                     BandwidthModel::saroiu2002().representative_sample(32), 3);
  tracker.run(50);

  const std::size_t arrivals_ever = tracker.registry().id_space();
  EXPECT_GT(arrivals_ever, 1000u);  // ~1250 expected
  // Every record holds >= 1 membership live at the last barrier; slack
  // covers one round of not-yet-pruned departures.
  EXPECT_LE(tracker.registry().size(), tracker.live_membership_count() + 200);
  EXPECT_LT(tracker.registry().size() * 5, arrivals_ever);
}

TEST(TrackerSim, ResumeContinuesBitwiseAtAnyShardCount) {
  TrackerSim uninterrupted = churned_tracker(2, 8, 16, 42);
  uninterrupted.run(6);
  const std::string snapshot = save_bytes(uninterrupted);
  uninterrupted.run(6);
  const std::string expect = save_bytes(uninterrupted);

  for (const std::size_t shards : {std::size_t{1}, std::size_t{8}}) {
    std::istringstream in(snapshot);
    TrackerSim resumed = TrackerSim::resume(in, churned_config(shards));
    EXPECT_EQ(resumed.rounds_elapsed(), 6u);
    resumed.run(6);
    EXPECT_EQ(save_bytes(resumed), expect) << "shards=" << shards;
  }
}

TEST(TrackerSim, ResumeRejectsCorruptStreams) {
  TrackerSim tracker = churned_tracker(1, 3, 12, 5);
  tracker.run(4);
  const std::string snapshot = save_bytes(tracker);

  {
    std::string bad = snapshot;
    bad[0] ^= 0x01;  // magic
    std::istringstream in(bad);
    EXPECT_THROW((void)TrackerSim::resume(in, churned_config(1)), SnapshotError);
  }
  {
    std::string bad = snapshot;
    bad[40] ^= 0x01;  // inside the tracker header: checksum mismatch
    std::istringstream in(bad);
    EXPECT_THROW((void)TrackerSim::resume(in, churned_config(1)), SnapshotError);
  }
  {
    const std::string truncated = snapshot.substr(0, snapshot.size() / 2);
    std::istringstream in(truncated);
    EXPECT_THROW((void)TrackerSim::resume(in, churned_config(1)), SnapshotError);
  }
}

TEST(TrackerSim, RejectsInvalidConstruction) {
  const auto capacities = BandwidthModel::saroiu2002().representative_sample(32);

  // Empty ecosystem.
  EXPECT_THROW(TrackerSim(TrackerConfig{}, {}, capacities, 1), std::invalid_argument);

  // retain_departed=false (reports cover departed peers).
  {
    auto seeds = disjoint_seeds(2, 16);
    seeds[0].config.retain_departed = false;
    EXPECT_THROW(TrackerSim(TrackerConfig{}, std::move(seeds), capacities, 1),
                 std::invalid_argument);
  }
  // Member id beyond the capacity list.
  {
    auto seeds = disjoint_seeds(2, 16);
    seeds[1].members.back() = 99;
    EXPECT_THROW(TrackerSim(TrackerConfig{}, std::move(seeds), capacities, 1),
                 std::invalid_argument);
  }
  // The same peer twice in one swarm.
  {
    auto seeds = disjoint_seeds(2, 16);
    seeds[0].members[1] = seeds[0].members[0];
    EXPECT_THROW(TrackerSim(TrackerConfig{}, std::move(seeds), capacities, 1),
                 std::invalid_argument);
  }
  // A listed capacity no swarm uses.
  {
    auto bigger = capacities;
    bigger.push_back(100.0);
    EXPECT_THROW(TrackerSim(TrackerConfig{}, disjoint_seeds(2, 16), bigger, 1),
                 std::invalid_argument);
  }
  // Arrivals without a capacity model.
  {
    TrackerConfig cfg;
    cfg.arrival_rate = 5.0;
    EXPECT_THROW(TrackerSim(cfg, disjoint_seeds(2, 16), capacities, 1),
                 std::invalid_argument);
  }
  // The tracker owns arrivals: swarm-local arrival churn is rejected.
  {
    TrackerConfig cfg;
    cfg.swarm_churn.arrivals = ChurnSpec::Arrivals::kPoisson;
    cfg.swarm_churn.arrival_rate = 1.0;
    EXPECT_THROW(TrackerSim(cfg, disjoint_seeds(2, 16), capacities, 1),
                 std::invalid_argument);
  }
}

TEST(TrackerSim, EcosystemReportAndProfileAreCoherent) {
  TrackerSim tracker = churned_tracker(1, 5, 16, 13);
  tracker.run(12);

  const EcosystemReport report = tracker.ecosystem_report();
  ASSERT_EQ(report.per_swarm.size(), 5u);
  std::size_t live = 0;
  for (const auto& s : report.per_swarm) live += s.live_peers;
  EXPECT_EQ(report.live_memberships, live);
  // The registry may briefly exceed the live membership count: records
  // whose last membership departed during the final round are pruned
  // at the *next* barrier. It still tracks the same population.
  EXPECT_EQ(report.live_registry_peers, tracker.registry().size());
  EXPECT_GT(report.live_registry_peers, 0u);
  EXPECT_GT(report.completed_leechers, 0u);
  for (std::size_t i = 1; i < report.completion_round_deciles.size(); ++i) {
    EXPECT_LE(report.completion_round_deciles[i - 1], report.completion_round_deciles[i]);
  }

  const EcosystemProfile profile = tracker.ecosystem_profile();
  EXPECT_EQ(profile.rounds, 12u);
  EXPECT_GT(profile.swarms.transfer_seconds, 0.0);
  EXPECT_GT(profile.shard_seconds, 0.0);
  EXPECT_GE(profile.barrier_seconds, 0.0);
  // One shard: max == min wall every round, so imbalance is exactly 0.
  EXPECT_EQ(profile.shard_imbalance_seconds, 0.0);
}

TEST(TrackerSim, InjectedArrivalsShareDriverBookkeeping) {
  // ChurnDriver::join_injected is the tracker's entry point: the
  // caller brings the capacity, the driver contributes the
  // arrival-completion bitfield and the lifetime deadline — the same
  // path spec-driven arrivals take, not a duplicate.
  SwarmConfig cfg = member_config(12);
  const auto pool = BandwidthModel::saroiu2002().representative_sample(12);
  graph::Rng rng(17);
  Swarm swarm(cfg, pool, rng);
  ChurnSpec spec;
  spec.lifetime = ChurnSpec::Lifetime::kExponential;
  spec.lifetime_rounds = 30.0;
  spec.arrival_completion = 0.5;
  ChurnDriver<Swarm> driver(spec, cfg, {}, rng);
  driver.attach(swarm);
  const std::size_t deadlines_before = driver.tracked_deadlines();

  const core::PeerId fresh = driver.join_injected(swarm, 768.0);
  EXPECT_EQ(fresh, static_cast<core::PeerId>(swarm.peer_count() - 1));
  EXPECT_EQ(swarm.stats(fresh).upload_kbps, 768.0);
  EXPECT_EQ(driver.tracked_deadlines(), deadlines_before + 1);
  // A half-complete arrival actually carries pieces.
  EXPECT_GT(swarm.stats(fresh).pieces, 0u);
}

TEST(TrackerSim, CapacityShareSumsExactly) {
  for (const double kbps : {56.0, 384.0, 768.0, 1537.3, 99999.875}) {
    for (const std::size_t m : {std::size_t{1}, std::size_t{2}, std::size_t{3}}) {
      double sum = 0.0;
      for (std::size_t j = 0; j < m; ++j) sum += membership_capacity_share(kbps, m, j);
      EXPECT_EQ(sum, kbps) << kbps << " over " << m;
    }
  }
}

}  // namespace
}  // namespace strat::bt
