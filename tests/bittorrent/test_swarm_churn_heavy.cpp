// Monte-Carlo churn workload at protocol scale (slow label; enable
// with -DSTRAT_RUN_SLOW_TESTS=ON): the protocol-level analogue of the
// paper's Figure 3 claim — replacement churn at the x/1000 rates does
// not destroy stratification — checked on a 5000-peer swarm, plus the
// slot-pool and availability invariants at that scale.
#include <gtest/gtest.h>

#include "bittorrent/bandwidth.hpp"
#include "bittorrent/scenario.hpp"
#include "bittorrent/swarm.hpp"

namespace strat::bt {
namespace {

TEST(SwarmChurnHeavy, StratificationSurvivesReplacementChurnAt5000Peers) {
  constexpr std::size_t kPeers = 5000;
  SwarmConfig cfg;
  cfg.num_peers = kPeers;
  cfg.seeds = 5;
  cfg.num_pieces = 1024;
  cfg.piece_kb = 1024.0;  // long-lived content: the window stays leecher-dominated
  cfg.neighbor_degree = 25.0;
  cfg.initial_completion = 0.5;
  const std::vector<double> bw = BandwidthModel::saroiu2002().representative_sample(kPeers);

  ChurnSpec spec;
  spec.replacement_rate = paper_replacement_rate(5.0, kPeers);  // 25 events/round
  spec.arrival_completion = 0.5;
  spec.reannounce_interval = 10;

  graph::Rng rng(424242);
  Swarm swarm(cfg, bw, rng);
  ChurnDriver<Swarm> churn(spec, cfg, bw, rng);
  churn.attach(swarm);
  for (std::size_t r = 0; r < 20; ++r) {
    churn.before_round(swarm);
    swarm.run_round();
  }
  swarm.reset_stratification();
  for (std::size_t r = 0; r < 30; ++r) {
    churn.before_round(swarm);
    swarm.run_round();
  }

  EXPECT_GT(swarm.arrivals(), 400u);  // ~25/round * 50 rounds, Poisson
  EXPECT_GT(swarm.departures(), 400u);

  // Slot pool stays tight at scale.
  std::size_t degree_sum = 0;
  for (core::PeerId p = 0; p < swarm.peer_count(); ++p) degree_sum += swarm.degree(p);
  EXPECT_EQ(swarm.live_edge_slots(), degree_sum);
  EXPECT_EQ(swarm.live_edge_slots() + swarm.free_edge_slots(), swarm.edge_slot_capacity());

  // Availability == live holdings.
  std::size_t held = 0;
  for (core::PeerId p = 0; p < swarm.peer_count(); ++p) {
    if (!swarm.departed(p)) held += swarm.stats(p).pieces;
  }
  EXPECT_NEAR(swarm.availability_stats().mean * static_cast<double>(cfg.num_pieces),
              static_cast<double>(held), 1e-3);

  // The Figure 3 claim at the protocol level: moderate replacement
  // churn leaves the TFT stratification clearly visible.
  const StratificationReport report = swarm.stratification();
  EXPECT_GT(report.reciprocated_pairs, 10000u);
  EXPECT_GT(report.partner_rank_correlation, 0.5);
}

}  // namespace
}  // namespace strat::bt
