#include "bittorrent/bandwidth.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

namespace strat::bt {
namespace {

TEST(BandwidthModel, Validation) {
  EXPECT_THROW(BandwidthModel({}), std::invalid_argument);
  EXPECT_THROW(BandwidthModel({{0.5, 100.0, 0.1, "a"}}), std::invalid_argument);  // sum != 1
  EXPECT_THROW(BandwidthModel({{1.0, -5.0, 0.1, "a"}}), std::invalid_argument);
  EXPECT_THROW(BandwidthModel({{1.0, 100.0, 0.0, "a"}}), std::invalid_argument);
}

TEST(BandwidthModel, CdfIsMonotoneFromZeroToOne) {
  const BandwidthModel model = BandwidthModel::saroiu2002();
  EXPECT_DOUBLE_EQ(model.cdf(0.0), 0.0);
  EXPECT_DOUBLE_EQ(model.cdf(-5.0), 0.0);
  double prev = 0.0;
  for (double x = 1.0; x < 1e6; x *= 1.5) {
    const double c = model.cdf(x);
    EXPECT_GE(c, prev);
    prev = c;
  }
  EXPECT_GT(model.cdf(1e6), 0.999);
}

TEST(BandwidthModel, SaroiuAnatomy) {
  // Figure 10's qualitative waypoints (see DESIGN.md §5): roughly 20%
  // below 100 kbps, a wide middle, >90% below 10 Mbps.
  const BandwidthModel model = BandwidthModel::saroiu2002();
  EXPECT_NEAR(model.cdf(100.0), 0.20, 0.07);
  EXPECT_NEAR(model.cdf(1000.0), 0.75, 0.08);
  EXPECT_GT(model.cdf(10000.0), 0.85);
  EXPECT_LT(model.cdf(10.0), 0.02);
}

TEST(BandwidthModel, QuantileInvertsCdf) {
  const BandwidthModel model = BandwidthModel::saroiu2002();
  for (const double q : {0.05, 0.25, 0.5, 0.75, 0.95}) {
    const double x = model.quantile(q);
    EXPECT_NEAR(model.cdf(x), q, 1e-6) << "q=" << q;
  }
  EXPECT_THROW((void)model.quantile(0.0), std::invalid_argument);
  EXPECT_THROW((void)model.quantile(1.0), std::invalid_argument);
}

TEST(BandwidthModel, PdfIntegratesToOne) {
  const BandwidthModel model = BandwidthModel::saroiu2002();
  // Integrate in log space: f(x) dx = f(e^u) e^u du.
  double integral = 0.0;
  const double du = 0.001;
  for (double u = std::log(1.0); u < std::log(1e7); u += du) {
    const double x = std::exp(u);
    integral += model.pdf(x) * x * du;
  }
  EXPECT_NEAR(integral, 1.0, 1e-3);
}

TEST(BandwidthModel, PdfHasDensityPeaks) {
  const BandwidthModel model = BandwidthModel::saroiu2002();
  // Density at a technology median dominates the density between peaks.
  EXPECT_GT(model.pdf(128.0), model.pdf(220.0));
  EXPECT_GT(model.pdf(384.0), model.pdf(220.0));
}

TEST(BandwidthModel, SamplesFollowTheCdf) {
  const BandwidthModel model = BandwidthModel::saroiu2002();
  graph::Rng rng(9);
  const int draws = 20000;
  int below_100 = 0;
  int below_1000 = 0;
  for (int i = 0; i < draws; ++i) {
    const double x = model.sample(rng);
    EXPECT_GT(x, 0.0);
    if (x <= 100.0) ++below_100;
    if (x <= 1000.0) ++below_1000;
  }
  EXPECT_NEAR(static_cast<double>(below_100) / draws, model.cdf(100.0), 0.02);
  EXPECT_NEAR(static_cast<double>(below_1000) / draws, model.cdf(1000.0), 0.02);
}

TEST(BandwidthModel, RepresentativeSampleIsStrictlyDescending) {
  const BandwidthModel model = BandwidthModel::saroiu2002();
  const auto sample = model.representative_sample(500);
  ASSERT_EQ(sample.size(), 500u);
  for (std::size_t i = 1; i < sample.size(); ++i) {
    EXPECT_LT(sample[i], sample[i - 1]) << "at " << i;
  }
  // Extremes span the distribution's support.
  EXPECT_GT(sample.front(), 5000.0);
  EXPECT_LT(sample.back(), 100.0);
}

TEST(BandwidthModel, RepresentativeSampleMedianMatchesQuantile) {
  const BandwidthModel model = BandwidthModel::saroiu2002();
  const auto sample = model.representative_sample(1001);
  EXPECT_NEAR(sample[500], model.quantile(0.5), model.quantile(0.5) * 0.02);
}

}  // namespace
}  // namespace strat::bt
