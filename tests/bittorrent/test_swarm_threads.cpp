// Deterministic intra-round parallelism: for one seed, runs must be
// bitwise identical at every SwarmConfig::threads value — the per-peer
// counter-based choke and transfer streams make the score/select and
// transfer-plan phases independent of row order and worker count — and
// still bitwise equal to the always-serial map-based ReferenceSwarm
// (which runs the same two-stage plan/commit transfer algorithm
// serially). Exercised on a static endgame run, fully churned runs
// (Poisson arrivals, exponential lifetimes, replacement events,
// re-announce sweeps, completion departures), a heavy-churn run that
// forces the transfer commit's conflict-rerun path, and a
// completion-wave run where departures cascade mid-commit — at 400+
// peers, large enough that the chunked phases really fan out
// (kRowGrain rows per chunk); the TSan CI job runs this binary to
// certify the fan-out data-race-free.
#include <gtest/gtest.h>

#include <type_traits>
#include <vector>

#include "bittorrent/bandwidth.hpp"
#include "bittorrent/reference_swarm.hpp"
#include "bittorrent/scenario.hpp"
#include "bittorrent/swarm.hpp"

namespace strat::bt {
namespace {

constexpr std::uint64_t kSeed = 90;
constexpr std::size_t kRounds = 40;

std::vector<double> capacities(std::size_t n) {
  return BandwidthModel::saroiu2002().representative_sample(n);
}

SwarmConfig base_config(std::size_t peers) {
  SwarmConfig cfg;
  cfg.num_peers = peers;
  cfg.seeds = 2;
  cfg.num_pieces = 64;
  cfg.piece_kb = 32.0;
  cfg.neighbor_degree = 14.0;
  cfg.initial_completion = 0.5;
  cfg.endgame = true;           // the endgame count phase must fan out too
  cfg.stay_as_seed = false;     // completion departures compact mid-round
  return cfg;
}

ChurnSpec churny_spec() {
  ChurnSpec spec;
  spec.arrivals = ChurnSpec::Arrivals::kPoisson;
  spec.arrival_rate = 2.0;
  spec.arrival_completion = 0.4;
  spec.lifetime = ChurnSpec::Lifetime::kExponential;
  spec.lifetime_rounds = 25.0;
  spec.replacement_rate = 2.0;
  spec.reannounce_interval = 5;
  return spec;
}

ChurnSpec heavy_churn_spec() {
  // Aggressive enough that a large fraction of the population turns
  // over within the run: many transfer plans go stale (receivers depart
  // or get fed by faster senders), driving the commit stage's conflict
  // rerun path hard instead of just the happy path.
  ChurnSpec spec;
  spec.arrivals = ChurnSpec::Arrivals::kPoisson;
  spec.arrival_rate = 6.0;
  spec.arrival_completion = 0.7;
  spec.lifetime = ChurnSpec::Lifetime::kExponential;
  spec.lifetime_rounds = 8.0;
  spec.replacement_rate = 4.0;
  spec.reannounce_interval = 3;
  return spec;
}

/// Everything a run exposes, for bitwise comparison.
struct Snapshot {
  std::vector<PeerStats> stats;
  StratificationReport strat;
  std::size_t arrivals = 0;
  std::size_t departures = 0;
  std::size_t live = 0;
  std::size_t completed = 0;
};

template <typename SwarmT>
Snapshot snapshot_of(const SwarmT& swarm) {
  Snapshot snap;
  for (core::PeerId p = 0; p < swarm.peer_count(); ++p) snap.stats.push_back(swarm.stats(p));
  snap.strat = swarm.stratification();
  snap.arrivals = swarm.arrivals();
  snap.departures = swarm.departures();
  snap.live = swarm.live_peer_count();
  snap.completed = swarm.completed_leechers();
  return snap;
}

template <typename SwarmT>
Snapshot run_plane_spec(const SwarmConfig& cfg, std::size_t peers, const ChurnSpec* spec,
                        Swarm::PhaseProfile* profile = nullptr) {
  graph::Rng rng(kSeed);
  SwarmT swarm(cfg, capacities(peers), rng);
  if (spec == nullptr) {
    swarm.run(kRounds);
  } else {
    ChurnDriver<SwarmT> churn(*spec, cfg, capacities(peers), rng);
    churn.attach(swarm);
    for (std::size_t r = 0; r < kRounds; ++r) {
      churn.before_round(swarm);
      swarm.run_round();
    }
  }
  if constexpr (std::is_same_v<SwarmT, Swarm>) {
    if (profile != nullptr) *profile = swarm.phase_profile();
  }
  return snapshot_of(swarm);
}

template <typename SwarmT>
Snapshot run_plane(const SwarmConfig& cfg, std::size_t peers, bool churned) {
  const ChurnSpec spec = churny_spec();
  return run_plane_spec<SwarmT>(cfg, peers, churned ? &spec : nullptr);
}

void expect_bitwise_equal(const Snapshot& a, const Snapshot& b, const char* what) {
  ASSERT_EQ(a.stats.size(), b.stats.size()) << what;
  for (std::size_t p = 0; p < a.stats.size(); ++p) {
    ASSERT_EQ(a.stats[p].upload_kbps, b.stats[p].upload_kbps) << what << " peer " << p;
    ASSERT_EQ(a.stats[p].uploaded_kb, b.stats[p].uploaded_kb) << what << " peer " << p;
    ASSERT_EQ(a.stats[p].downloaded_kb, b.stats[p].downloaded_kb) << what << " peer " << p;
    ASSERT_EQ(a.stats[p].pieces, b.stats[p].pieces) << what << " peer " << p;
    ASSERT_EQ(a.stats[p].completion_round, b.stats[p].completion_round)
        << what << " peer " << p;
    ASSERT_EQ(a.stats[p].join_round, b.stats[p].join_round) << what << " peer " << p;
    ASSERT_EQ(a.stats[p].leave_round, b.stats[p].leave_round) << what << " peer " << p;
    ASSERT_EQ(a.stats[p].seed, b.stats[p].seed) << what << " peer " << p;
  }
  EXPECT_EQ(a.strat.reciprocated_pairs, b.strat.reciprocated_pairs) << what;
  EXPECT_EQ(a.strat.mean_normalized_offset, b.strat.mean_normalized_offset) << what;
  EXPECT_EQ(a.strat.partner_rank_correlation, b.strat.partner_rank_correlation) << what;
  EXPECT_EQ(a.arrivals, b.arrivals) << what;
  EXPECT_EQ(a.departures, b.departures) << what;
  EXPECT_EQ(a.live, b.live) << what;
  EXPECT_EQ(a.completed, b.completed) << what;
}

void expect_thread_invariant(bool churned) {
  constexpr std::size_t kPeers = 600;
  SwarmConfig cfg = base_config(kPeers);
  cfg.threads = 1;
  const Snapshot serial = run_plane<Swarm>(cfg, kPeers, churned);
  for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    cfg.threads = threads;
    const Snapshot threaded = run_plane<Swarm>(cfg, kPeers, churned);
    expect_bitwise_equal(serial, threaded,
                         threads == 2 ? "threads=2 vs 1" : "threads=8 vs 1");
  }
  // The always-serial oracle accepts (and ignores) the threads knob
  // and must still match bitwise.
  cfg.threads = 8;
  const Snapshot oracle = run_plane<ReferenceSwarm>(cfg, kPeers, churned);
  expect_bitwise_equal(serial, oracle, "reference vs flat");
}

TEST(SwarmThreads, StaticEndgameRunIsThreadCountInvariant) {
  expect_thread_invariant(/*churned=*/false);
}

TEST(SwarmThreads, ChurnedEndgameRunIsThreadCountInvariant) {
  expect_thread_invariant(/*churned=*/true);
}

TEST(SwarmThreads, AutoThreadsMatchesSerial) {
  // threads = 0 resolves to the hardware concurrency; still bitwise.
  constexpr std::size_t kPeers = 300;
  SwarmConfig cfg = base_config(kPeers);
  cfg.threads = 1;
  const Snapshot serial = run_plane<Swarm>(cfg, kPeers, /*churned=*/true);
  cfg.threads = 0;
  const Snapshot autod = run_plane<Swarm>(cfg, kPeers, /*churned=*/true);
  expect_bitwise_equal(serial, autod, "threads=auto vs 1");
}

TEST(SwarmThreads, HeavyChurnRunIsThreadCountInvariant) {
  // Heavy turnover makes many speculative transfer plans go stale at
  // commit (receiver departed, piece completed by another sender,
  // partial progress moved) — the conflict-rerun path must be exercised
  // and still bitwise thread-count-invariant.
  constexpr std::size_t kPeers = 600;
  SwarmConfig cfg = base_config(kPeers);
  const ChurnSpec spec = heavy_churn_spec();
  cfg.threads = 1;
  const Snapshot serial = run_plane_spec<Swarm>(cfg, kPeers, &spec);
  for (const std::size_t threads : {std::size_t{2}, std::size_t{8}, std::size_t{0}}) {
    cfg.threads = threads;
    const Snapshot threaded = run_plane_spec<Swarm>(cfg, kPeers, &spec);
    expect_bitwise_equal(serial, threaded, "heavy churn threads vs 1");
  }
  cfg.threads = 8;
  const Snapshot oracle = run_plane_spec<ReferenceSwarm>(cfg, kPeers, &spec);
  expect_bitwise_equal(serial, oracle, "heavy churn reference vs flat");
}

TEST(SwarmThreads, CompletionWaveDeparturesAreThreadCountInvariant) {
  // Nearly-done leechers with few pieces left: completion departures
  // cascade mid-round (a receiver departs while later senders still
  // hold plans that target it, and row compaction moves live senders'
  // rows mid-commit). Every thread count must agree bitwise, and the
  // serial oracle too.
  constexpr std::size_t kPeers = 400;
  SwarmConfig cfg = base_config(kPeers);
  cfg.num_pieces = 32;
  cfg.initial_completion = 0.9;
  cfg.threads = 1;
  const Snapshot serial = run_plane_spec<Swarm>(cfg, kPeers, nullptr);
  for (const std::size_t threads : {std::size_t{2}, std::size_t{8}, std::size_t{0}}) {
    cfg.threads = threads;
    const Snapshot threaded = run_plane_spec<Swarm>(cfg, kPeers, nullptr);
    expect_bitwise_equal(serial, threaded, "completion wave threads vs 1");
  }
  cfg.threads = 8;
  const Snapshot oracle = run_plane_spec<ReferenceSwarm>(cfg, kPeers, nullptr);
  expect_bitwise_equal(serial, oracle, "completion wave reference vs flat");
}

TEST(SwarmThreads, ConflictRerunCountersAreThreadCountInvariant) {
  // The plans and their staleness verdicts are a function of the
  // snapshot and the serial commit order alone, so the conflict
  // counters — not just the simulation state — must agree at every
  // thread count. No tight bound on the fraction here: this toy config
  // (64 pieces of 32 KB against ~600 KB/round budgets) completes
  // several pieces per lane per round, so rarest-first concentrates
  // fresh picks onto the same shrinking tie set and most lanes
  // legitimately go stale. RealisticPieceEconomyKeepsRerunsMinor below
  // bounds the fraction at a production-shaped piece economy.
  constexpr std::size_t kPeers = 600;
  SwarmConfig cfg = base_config(kPeers);
  const ChurnSpec spec = heavy_churn_spec();
  cfg.threads = 1;
  Swarm::PhaseProfile serial_prof;
  run_plane_spec<Swarm>(cfg, kPeers, &spec, &serial_prof);
  EXPECT_GT(serial_prof.transfer_lanes, 0u);
  EXPECT_GT(serial_prof.transfer_reruns, 0u) << "heavy churn should force stale plans";
  EXPECT_LT(serial_prof.rerun_fraction(), 1.0);
  for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    cfg.threads = threads;
    Swarm::PhaseProfile prof;
    run_plane_spec<Swarm>(cfg, kPeers, &spec, &prof);
    EXPECT_EQ(serial_prof.transfer_lanes, prof.transfer_lanes) << "threads=" << threads;
    EXPECT_EQ(serial_prof.transfer_reruns, prof.transfer_reruns) << "threads=" << threads;
  }
}

TEST(SwarmThreads, RealisticPieceEconomyKeepsRerunsMinor) {
  // The speculative compute stage only pays off if the commit stage
  // rarely has to re-drive lanes. At a production-shaped piece economy
  // (1 MB pieces, ~1 piece completed per lane every several rounds —
  // unlike the deliberately piece-starved toy config above) a churned
  // 10^4-peer run must keep the stale-lane fraction a small minority.
  // Measured 0.096 at this exact config; the bound is the acceptance
  // bar, not a snug fit, so algorithm changes that genuinely move the
  // conflict rate will trip it.
  SwarmConfig cfg;
  cfg.num_peers = 10000;
  cfg.seeds = 5;
  cfg.num_pieces = 1024;
  cfg.piece_kb = 1024.0;
  cfg.neighbor_degree = 14.0;
  cfg.initial_completion = 0.3;
  cfg.endgame = true;
  cfg.stay_as_seed = false;
  cfg.threads = 1;
  ChurnSpec spec;
  spec.arrivals = ChurnSpec::Arrivals::kPoisson;
  spec.arrival_rate = 20.0;
  spec.arrival_completion = 0.3;
  spec.lifetime = ChurnSpec::Lifetime::kExponential;
  spec.lifetime_rounds = 50.0;
  spec.replacement_rate = 10.0;
  spec.reannounce_interval = 5;
  graph::Rng rng(kSeed);
  Swarm swarm(cfg, capacities(cfg.num_peers), rng);
  ChurnDriver<Swarm> churn(spec, cfg, capacities(cfg.num_peers), rng);
  churn.attach(swarm);
  for (std::size_t r = 0; r < 20; ++r) {
    churn.before_round(swarm);
    swarm.run_round();
  }
  const auto& prof = swarm.phase_profile();
  EXPECT_GT(prof.transfer_reruns, 0u);
  EXPECT_LT(prof.rerun_fraction(), 0.10);
}

TEST(SwarmThreads, PhaseProfileAccumulates) {
  constexpr std::size_t kPeers = 120;
  SwarmConfig cfg = base_config(kPeers);
  graph::Rng rng(kSeed);
  Swarm swarm(cfg, capacities(kPeers), rng);
  swarm.run(5);
  const auto& prof = swarm.phase_profile();
  EXPECT_GT(prof.choke_seconds, 0.0);
  EXPECT_GT(prof.transfer_seconds, 0.0);
  EXPECT_GT(prof.fold_seconds, 0.0);
  // The transfer breakdown nests inside transfer_seconds: compute and
  // commit partition the phase, and reruns happen inside the commit.
  EXPECT_GT(prof.transfer_compute_seconds, 0.0);
  EXPECT_GT(prof.transfer_commit_seconds, 0.0);
  EXPECT_LE(prof.transfer_compute_seconds + prof.transfer_commit_seconds,
            prof.transfer_seconds + 1e-6);
  EXPECT_LE(prof.transfer_rerun_seconds, prof.transfer_commit_seconds + 1e-9);
  EXPECT_GT(prof.transfer_lanes, 0u);
  EXPECT_GE(prof.rerun_fraction(), 0.0);
  EXPECT_LE(prof.rerun_fraction(), 1.0);
}

}  // namespace
}  // namespace strat::bt
