// Deterministic intra-round parallelism: for one seed, runs must be
// bitwise identical at every SwarmConfig::threads value — the per-peer
// counter-based choke streams make the score/select phase independent
// of row order and worker count — and still bitwise equal to the
// always-serial map-based ReferenceSwarm. Exercised on a static
// endgame run and on a fully churned run (Poisson arrivals,
// exponential lifetimes, replacement events, re-announce sweeps,
// completion departures) at 600+ peers, large enough that the chunked
// phases really fan out (kRowGrain rows per chunk); the TSan CI job
// runs this binary to certify the fan-out data-race-free.
#include <gtest/gtest.h>

#include <vector>

#include "bittorrent/bandwidth.hpp"
#include "bittorrent/reference_swarm.hpp"
#include "bittorrent/scenario.hpp"
#include "bittorrent/swarm.hpp"

namespace strat::bt {
namespace {

constexpr std::uint64_t kSeed = 90;
constexpr std::size_t kRounds = 40;

std::vector<double> capacities(std::size_t n) {
  return BandwidthModel::saroiu2002().representative_sample(n);
}

SwarmConfig base_config(std::size_t peers) {
  SwarmConfig cfg;
  cfg.num_peers = peers;
  cfg.seeds = 2;
  cfg.num_pieces = 64;
  cfg.piece_kb = 32.0;
  cfg.neighbor_degree = 14.0;
  cfg.initial_completion = 0.5;
  cfg.endgame = true;           // the endgame count phase must fan out too
  cfg.stay_as_seed = false;     // completion departures compact mid-round
  return cfg;
}

ChurnSpec churny_spec() {
  ChurnSpec spec;
  spec.arrivals = ChurnSpec::Arrivals::kPoisson;
  spec.arrival_rate = 2.0;
  spec.arrival_completion = 0.4;
  spec.lifetime = ChurnSpec::Lifetime::kExponential;
  spec.lifetime_rounds = 25.0;
  spec.replacement_rate = 2.0;
  spec.reannounce_interval = 5;
  return spec;
}

/// Everything a run exposes, for bitwise comparison.
struct Snapshot {
  std::vector<PeerStats> stats;
  StratificationReport strat;
  std::size_t arrivals = 0;
  std::size_t departures = 0;
  std::size_t live = 0;
  std::size_t completed = 0;
};

template <typename SwarmT>
Snapshot snapshot_of(const SwarmT& swarm) {
  Snapshot snap;
  for (core::PeerId p = 0; p < swarm.peer_count(); ++p) snap.stats.push_back(swarm.stats(p));
  snap.strat = swarm.stratification();
  snap.arrivals = swarm.arrivals();
  snap.departures = swarm.departures();
  snap.live = swarm.live_peer_count();
  snap.completed = swarm.completed_leechers();
  return snap;
}

template <typename SwarmT>
Snapshot run_plane(const SwarmConfig& cfg, std::size_t peers, bool churned) {
  graph::Rng rng(kSeed);
  SwarmT swarm(cfg, capacities(peers), rng);
  if (!churned) {
    swarm.run(kRounds);
    return snapshot_of(swarm);
  }
  ChurnDriver<SwarmT> churn(churny_spec(), cfg, capacities(peers), rng);
  churn.attach(swarm);
  for (std::size_t r = 0; r < kRounds; ++r) {
    churn.before_round(swarm);
    swarm.run_round();
  }
  return snapshot_of(swarm);
}

void expect_bitwise_equal(const Snapshot& a, const Snapshot& b, const char* what) {
  ASSERT_EQ(a.stats.size(), b.stats.size()) << what;
  for (std::size_t p = 0; p < a.stats.size(); ++p) {
    ASSERT_EQ(a.stats[p].upload_kbps, b.stats[p].upload_kbps) << what << " peer " << p;
    ASSERT_EQ(a.stats[p].uploaded_kb, b.stats[p].uploaded_kb) << what << " peer " << p;
    ASSERT_EQ(a.stats[p].downloaded_kb, b.stats[p].downloaded_kb) << what << " peer " << p;
    ASSERT_EQ(a.stats[p].pieces, b.stats[p].pieces) << what << " peer " << p;
    ASSERT_EQ(a.stats[p].completion_round, b.stats[p].completion_round)
        << what << " peer " << p;
    ASSERT_EQ(a.stats[p].join_round, b.stats[p].join_round) << what << " peer " << p;
    ASSERT_EQ(a.stats[p].leave_round, b.stats[p].leave_round) << what << " peer " << p;
    ASSERT_EQ(a.stats[p].seed, b.stats[p].seed) << what << " peer " << p;
  }
  EXPECT_EQ(a.strat.reciprocated_pairs, b.strat.reciprocated_pairs) << what;
  EXPECT_EQ(a.strat.mean_normalized_offset, b.strat.mean_normalized_offset) << what;
  EXPECT_EQ(a.strat.partner_rank_correlation, b.strat.partner_rank_correlation) << what;
  EXPECT_EQ(a.arrivals, b.arrivals) << what;
  EXPECT_EQ(a.departures, b.departures) << what;
  EXPECT_EQ(a.live, b.live) << what;
  EXPECT_EQ(a.completed, b.completed) << what;
}

void expect_thread_invariant(bool churned) {
  constexpr std::size_t kPeers = 600;
  SwarmConfig cfg = base_config(kPeers);
  cfg.threads = 1;
  const Snapshot serial = run_plane<Swarm>(cfg, kPeers, churned);
  for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    cfg.threads = threads;
    const Snapshot threaded = run_plane<Swarm>(cfg, kPeers, churned);
    expect_bitwise_equal(serial, threaded,
                         threads == 2 ? "threads=2 vs 1" : "threads=8 vs 1");
  }
  // The always-serial oracle accepts (and ignores) the threads knob
  // and must still match bitwise.
  cfg.threads = 8;
  const Snapshot oracle = run_plane<ReferenceSwarm>(cfg, kPeers, churned);
  expect_bitwise_equal(serial, oracle, "reference vs flat");
}

TEST(SwarmThreads, StaticEndgameRunIsThreadCountInvariant) {
  expect_thread_invariant(/*churned=*/false);
}

TEST(SwarmThreads, ChurnedEndgameRunIsThreadCountInvariant) {
  expect_thread_invariant(/*churned=*/true);
}

TEST(SwarmThreads, AutoThreadsMatchesSerial) {
  // threads = 0 resolves to the hardware concurrency; still bitwise.
  constexpr std::size_t kPeers = 300;
  SwarmConfig cfg = base_config(kPeers);
  cfg.threads = 1;
  const Snapshot serial = run_plane<Swarm>(cfg, kPeers, /*churned=*/true);
  cfg.threads = 0;
  const Snapshot autod = run_plane<Swarm>(cfg, kPeers, /*churned=*/true);
  expect_bitwise_equal(serial, autod, "threads=auto vs 1");
}

TEST(SwarmThreads, PhaseProfileAccumulates) {
  constexpr std::size_t kPeers = 120;
  SwarmConfig cfg = base_config(kPeers);
  graph::Rng rng(kSeed);
  Swarm swarm(cfg, capacities(kPeers), rng);
  swarm.run(5);
  const auto& prof = swarm.phase_profile();
  EXPECT_GT(prof.choke_seconds, 0.0);
  EXPECT_GT(prof.transfer_seconds, 0.0);
  EXPECT_GT(prof.fold_seconds, 0.0);
}

}  // namespace
}  // namespace strat::bt
