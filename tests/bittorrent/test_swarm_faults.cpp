// Fault-injection tier (ctest -L faults): the deterministic fault
// model must satisfy four contracts at once.
//
//  1. Zero-cost-when-off: with FaultSpec disabled, runs are bitwise
//     identical to the pre-fault implementation — pinned here against
//     golden stats digests captured from the tree at the commit before
//     faults landed (churned Swarm run and TrackerSim ecosystem run).
//  2. Determinism under faults: a faulted, churned run is bitwise
//     invariant to SwarmConfig::threads, every fault draw coming from
//     counter streams keyed by (fault salt, external id, round/seq) —
//     and the always-serial ReferenceSwarm oracle, applying the
//     identical fault algorithm, matches the flat plane exactly under
//     a combined churn + outage + loss + NAT storm.
//  3. Degraded operation: announces lost to a tracker outage put the
//     peer on capped exponential backoff (unit-tested here), retries
//     re-announce when the tracker returns, and success resets the
//     schedule.
//  4. Mid-outage checkpoints: save() during an outage carries every
//     backoff deadline, and the resumed run continues bitwise.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "bittorrent/bandwidth.hpp"
#include "bittorrent/faults.hpp"
#include "bittorrent/reference_swarm.hpp"
#include "bittorrent/scenario.hpp"
#include "bittorrent/snapshot.hpp"
#include "bittorrent/swarm.hpp"
#include "bittorrent/tracker_sim.hpp"

namespace strat::bt {
namespace {

std::vector<double> capacities(std::size_t n) {
  return BandwidthModel::saroiu2002().representative_sample(n);
}

// ---------------------------------------------------------------------
// FaultSpec units: backoff schedule and outage windows.
// ---------------------------------------------------------------------

TEST(FaultSpec, RetryDelayDoublesAndCaps) {
  FaultSpec spec;
  spec.backoff_base = 1;
  spec.backoff_cap = 64;
  EXPECT_EQ(spec.retry_delay(1), 1u);
  EXPECT_EQ(spec.retry_delay(2), 2u);
  EXPECT_EQ(spec.retry_delay(3), 4u);
  EXPECT_EQ(spec.retry_delay(7), 64u);
  EXPECT_EQ(spec.retry_delay(8), 64u);
  EXPECT_EQ(spec.retry_delay(1000), 64u);  // no overflow at huge counts

  spec.backoff_base = 3;
  spec.backoff_cap = 10;
  EXPECT_EQ(spec.retry_delay(1), 3u);
  EXPECT_EQ(spec.retry_delay(2), 6u);
  EXPECT_EQ(spec.retry_delay(3), 10u);  // 12 clipped to the cap
  EXPECT_EQ(spec.retry_delay(4), 10u);

  spec.backoff_base = 5;
  spec.backoff_cap = 5;
  EXPECT_EQ(spec.retry_delay(1), 5u);
  EXPECT_EQ(spec.retry_delay(9), 5u);
}

TEST(FaultSpec, TrackerDownWindows) {
  FaultSpec spec;
  spec.outage_period = 8;
  spec.outage_duration = 2;
  spec.outage_phase = 0;
  for (std::size_t r = 0; r < 24; ++r) {
    EXPECT_EQ(spec.tracker_down(r), r % 8 < 2) << "round " << r;
  }
  spec.outage_phase = 6;
  EXPECT_FALSE(spec.tracker_down(0));
  EXPECT_FALSE(spec.tracker_down(1));
  EXPECT_TRUE(spec.tracker_down(2));
  EXPECT_TRUE(spec.tracker_down(3));
  EXPECT_FALSE(spec.tracker_down(4));
  EXPECT_TRUE(spec.tracker_down(10));

  FaultSpec off;
  EXPECT_FALSE(off.enabled());
  EXPECT_FALSE(off.outages());
  EXPECT_FALSE(off.tracker_down(0));
  EXPECT_FALSE(off.flaky_connects());
  EXPECT_FALSE(off.lossy_lanes());
}

TEST(FaultSpec, InvalidSpecsRejectedAtConstruction) {
  SwarmConfig cfg;
  cfg.num_peers = 10;
  cfg.num_pieces = 8;
  const auto caps = capacities(10);
  {
    SwarmConfig bad = cfg;
    bad.faults.connect_failure_prob = 1.5;
    graph::Rng rng(1);
    EXPECT_THROW(Swarm(bad, caps, rng), std::invalid_argument);
  }
  {
    SwarmConfig bad = cfg;
    bad.faults.lane_loss_prob = -0.1;
    graph::Rng rng(1);
    EXPECT_THROW(Swarm(bad, caps, rng), std::invalid_argument);
  }
  {
    SwarmConfig bad = cfg;
    bad.faults.connect_failure_prob = 0.5;
    bad.faults.connect_attempts = 0;
    graph::Rng rng(1);
    EXPECT_THROW(Swarm(bad, caps, rng), std::invalid_argument);
  }
  {
    SwarmConfig bad = cfg;
    bad.faults.outage_period = 4;
    bad.faults.outage_duration = 1;
    bad.faults.backoff_base = 4;
    bad.faults.backoff_cap = 2;  // cap below base
    graph::Rng rng(1);
    EXPECT_THROW(Swarm(bad, caps, rng), std::invalid_argument);
  }
}

// ---------------------------------------------------------------------
// Degraded operation: backoff pending during the outage, reset on the
// first successful re-announce.
// ---------------------------------------------------------------------

TEST(SwarmFaults, OutageBackoffAndResetOnSuccess) {
  SwarmConfig cfg;
  cfg.num_peers = 40;
  cfg.seeds = 2;
  cfg.num_pieces = 32;
  cfg.piece_kb = 16.0;
  cfg.neighbor_degree = 8.0;
  cfg.initial_completion = 0.3;
  // Rounds 2..3 (mod 8) are outages; construction (round 0) is clean.
  cfg.faults.outage_period = 8;
  cfg.faults.outage_duration = 2;
  cfg.faults.outage_phase = 6;
  cfg.faults.backoff_base = 1;
  cfg.faults.backoff_cap = 4;
  graph::Rng rng(11);
  Swarm swarm(cfg, capacities(cfg.num_peers), rng);
  swarm.run(2);  // now at round 2: tracker down

  const core::PeerId p = swarm.join(500.0);
  EXPECT_EQ(swarm.degree(p), 0u) << "join during an outage must start neighborless";
  EXPECT_EQ(swarm.fault_state().degraded_count(), 1u);
  EXPECT_GE(swarm.fault_state().failed_announces_, 1u);

  // Round 3 retry hits the outage again (backoff doubles); the tracker
  // is back at round 4 and the next due retry lands the re-announce.
  swarm.run(6);  // rounds 2..7, all post-outage retries resolved
  EXPECT_EQ(swarm.fault_state().degraded_count(), 0u)
      << "successful re-announce must clear the backoff schedule";
  EXPECT_GT(swarm.degree(p), 0u) << "recovered peer re-announced and connected";
  EXPECT_GE(swarm.fault_state().announce_retries_, 1u);
  EXPECT_GE(swarm.phase_profile().fault_retries, 1u);
  EXPECT_EQ(swarm.phase_profile().fault_failed_announces,
            swarm.fault_state().failed_announces_);
}

TEST(SwarmFaults, FullNatPopulationAcceptsNoInboundConnects) {
  SwarmConfig cfg;
  cfg.num_peers = 30;
  cfg.seeds = 1;
  cfg.num_pieces = 16;
  cfg.piece_kb = 16.0;
  cfg.neighbor_degree = 6.0;
  cfg.initial_completion = 0.4;
  cfg.faults.nat_fraction = 1.0;
  cfg.faults.connect_failure_prob = 0.0;  // isolate the NAT effect
  graph::Rng rng(21);
  Swarm swarm(cfg, capacities(cfg.num_peers), rng);
  swarm.run(3);
  const core::PeerId p = swarm.join(400.0);
  EXPECT_EQ(swarm.degree(p), 0u) << "every candidate rejects inbound";
  EXPECT_GT(swarm.fault_state().nat_rejections_, 0u);
  EXPECT_EQ(swarm.reannounce(p), 0u);
}

TEST(SwarmFaults, TotalLaneLossMovesNoBytes) {
  SwarmConfig cfg;
  cfg.num_peers = 30;
  cfg.seeds = 2;
  cfg.num_pieces = 16;
  cfg.piece_kb = 16.0;
  cfg.neighbor_degree = 8.0;
  cfg.initial_completion = 0.0;  // leechers start empty; only lanes move bytes
  cfg.faults.lane_loss_prob = 1.0;
  graph::Rng rng(31);
  Swarm swarm(cfg, capacities(cfg.num_peers), rng);
  swarm.run(10);
  for (core::PeerId p = 0; p < swarm.peer_count(); ++p) {
    if (!swarm.is_leecher(p)) continue;
    EXPECT_EQ(swarm.stats(p).downloaded_kb, 0.0) << "peer " << p;
    EXPECT_EQ(swarm.stats(p).pieces, 0u) << "peer " << p;
  }
  EXPECT_GT(swarm.fault_state().lost_lanes_, 0u);
  EXPECT_EQ(swarm.phase_profile().fault_lost_lanes, swarm.fault_state().lost_lanes_);
  EXPECT_EQ(swarm.phase_profile().fault_lost_lanes, swarm.phase_profile().transfer_lanes)
      << "with loss probability 1 every planned lane is lost";
}

// ---------------------------------------------------------------------
// The fault storm used by the determinism differentials: outages,
// flaky connects, NAT-ed peers and lane loss all active at once, on
// top of explicit churn (joins, leaves, re-announces).
// ---------------------------------------------------------------------

SwarmConfig storm_config(std::size_t threads) {
  SwarmConfig cfg;
  cfg.num_peers = 200;
  cfg.seeds = 2;
  cfg.num_pieces = 128;
  cfg.piece_kb = 128.0;
  cfg.neighbor_degree = 8.0;
  cfg.initial_completion = 0.5;
  cfg.threads = threads;
  cfg.faults.outage_period = 7;
  cfg.faults.outage_duration = 3;
  cfg.faults.outage_phase = 2;
  cfg.faults.connect_failure_prob = 0.2;
  cfg.faults.connect_attempts = 2;
  cfg.faults.nat_fraction = 0.25;
  cfg.faults.lane_loss_prob = 0.05;
  cfg.faults.backoff_base = 1;
  cfg.faults.backoff_cap = 8;
  return cfg;
}

/// Deterministic churn script both planes (and every thread count)
/// replay identically.
template <typename SwarmT>
void storm_round(SwarmT& swarm, std::size_t r) {
  if (r % 3 == 1) swarm.join(100.0 + 50.0 * static_cast<double>(r % 5));
  if (r % 5 == 4) {
    const auto live = swarm.live_ids();
    if (live.size() > 20) swarm.leave(live[live.size() / 2]);
  }
  if (r % 4 == 2) {
    const auto live = swarm.live_ids();
    if (!live.empty()) swarm.reannounce(live[live.size() / 3]);
  }
  swarm.run_round();
}

struct StormDigest {
  std::vector<PeerStats> stats;
  StratificationReport strat;
  std::size_t live = 0;
  std::uint64_t failed_announces = 0;
  std::uint64_t announce_retries = 0;
  std::uint64_t connect_failures = 0;
  std::uint64_t nat_rejections = 0;
  std::uint64_t lost_lanes = 0;
  std::size_t degraded = 0;
};

template <typename SwarmT>
StormDigest run_storm(SwarmT& swarm, std::size_t rounds) {
  for (std::size_t r = 0; r < rounds; ++r) storm_round(swarm, r);
  StormDigest d;
  for (core::PeerId p = 0; p < swarm.peer_count(); ++p) d.stats.push_back(swarm.stats(p));
  d.strat = swarm.stratification();
  d.live = swarm.live_peer_count();
  const FaultState& fs = swarm.fault_state();
  d.failed_announces = fs.failed_announces_;
  d.announce_retries = fs.announce_retries_;
  d.connect_failures = fs.connect_failures_;
  d.nat_rejections = fs.nat_rejections_;
  d.lost_lanes = fs.lost_lanes_;
  d.degraded = fs.degraded_count();
  return d;
}

void expect_storm_equal(const StormDigest& a, const StormDigest& b, const char* what) {
  ASSERT_EQ(a.stats.size(), b.stats.size()) << what;
  for (std::size_t p = 0; p < a.stats.size(); ++p) {
    ASSERT_EQ(a.stats[p].uploaded_kb, b.stats[p].uploaded_kb) << what << " peer " << p;
    ASSERT_EQ(a.stats[p].downloaded_kb, b.stats[p].downloaded_kb) << what << " peer " << p;
    ASSERT_EQ(a.stats[p].pieces, b.stats[p].pieces) << what << " peer " << p;
    ASSERT_EQ(a.stats[p].completion_round, b.stats[p].completion_round)
        << what << " peer " << p;
    ASSERT_EQ(a.stats[p].leave_round, b.stats[p].leave_round) << what << " peer " << p;
  }
  EXPECT_EQ(a.strat.partner_rank_correlation, b.strat.partner_rank_correlation) << what;
  EXPECT_EQ(a.strat.mean_normalized_offset, b.strat.mean_normalized_offset) << what;
  EXPECT_EQ(a.strat.reciprocated_pairs, b.strat.reciprocated_pairs) << what;
  EXPECT_EQ(a.live, b.live) << what;
  EXPECT_EQ(a.failed_announces, b.failed_announces) << what;
  EXPECT_EQ(a.announce_retries, b.announce_retries) << what;
  EXPECT_EQ(a.connect_failures, b.connect_failures) << what;
  EXPECT_EQ(a.nat_rejections, b.nat_rejections) << what;
  EXPECT_EQ(a.lost_lanes, b.lost_lanes) << what;
  EXPECT_EQ(a.degraded, b.degraded) << what;
}

TEST(SwarmFaults, StormBitwiseInvariantToThreads) {
  graph::Rng ref_rng(4242);
  ReferenceSwarm oracle(storm_config(1), capacities(200), ref_rng);
  const StormDigest want = run_storm(oracle, 30);
  // The storm must actually exercise every fault path, or the
  // differential proves nothing.
  EXPECT_GT(want.failed_announces, 0u);
  EXPECT_GT(want.connect_failures, 0u);
  EXPECT_GT(want.nat_rejections, 0u);
  EXPECT_GT(want.lost_lanes, 0u);
  for (const std::size_t threads :
       {std::size_t{1}, std::size_t{2}, std::size_t{8}, std::size_t{0}}) {
    graph::Rng rng(4242);
    Swarm swarm(storm_config(threads), capacities(200), rng);
    const StormDigest got = run_storm(swarm, 30);
    expect_storm_equal(want, got,
                       threads == 1   ? "threads=1 vs oracle"
                       : threads == 2 ? "threads=2 vs oracle"
                       : threads == 8 ? "threads=8 vs oracle"
                                      : "threads=auto vs oracle");
  }
}

// ---------------------------------------------------------------------
// Mid-outage checkpointing: a save taken while peers are waiting out
// backoff must carry the deadlines, and the resumed run continues
// bitwise (the uninterrupted flat run is the yardstick).
// ---------------------------------------------------------------------

TEST(SwarmFaults, MidOutageSnapshotResumesBitwise) {
  const SwarmConfig cfg = storm_config(2);
  // Rounds with (r+2)%7 < 3 are outages: {5,6,7, 12,13,14, ...}. The
  // storm's join at round 13 fails its announce and schedules a retry
  // for round 14, so a checkpoint at round 14 is both mid-outage and
  // carries a live backoff deadline.
  const std::size_t save_round = 14;
  const std::size_t total_rounds = 30;

  graph::Rng full_rng(4242);
  Swarm full(cfg, capacities(200), full_rng);
  std::string snapshot;
  for (std::size_t r = 0; r < total_rounds; ++r) {
    if (r == save_round) {
      EXPECT_TRUE(cfg.faults.tracker_down(full.rounds_elapsed()))
          << "checkpoint round must fall inside an outage window";
      EXPECT_GT(full.fault_state().degraded_count(), 0u)
          << "someone must be waiting out backoff at the checkpoint";
      snapshot = save_to_string(full);
    }
    storm_round(full, r);
  }
  ASSERT_FALSE(snapshot.empty());
  const StormDigest want = run_storm(full, 0);  // digest only, no extra rounds

  ResumedSwarm resumed = resume_from_string(snapshot);
  // Backoff deadlines survive the round-trip verbatim.
  {
    graph::Rng probe_rng(4242);
    Swarm probe(cfg, capacities(200), probe_rng);
    for (std::size_t r = 0; r < save_round; ++r) storm_round(probe, r);
    const FaultState& a = probe.fault_state();
    const FaultState& b = resumed.swarm().fault_state();
    ASSERT_EQ(a.retry_round_, b.retry_round_);
    ASSERT_EQ(a.retry_count_, b.retry_count_);
    ASSERT_EQ(a.announce_seq_, b.announce_seq_);
    ASSERT_EQ(a.nat_, b.nat_);
    EXPECT_EQ(a.failed_announces_, b.failed_announces_);
    EXPECT_GT(b.degraded_count(), 0u);
  }
  for (std::size_t r = save_round; r < total_rounds; ++r) storm_round(resumed.swarm(), r);
  const StormDigest got = run_storm(resumed.swarm(), 0);
  expect_storm_equal(want, got, "mid-outage resume vs uninterrupted");
}

// ---------------------------------------------------------------------
// TrackerSim: faulted member swarms stay bitwise invariant to the
// shard count (save() byte equality, the established tracker yardstick).
// ---------------------------------------------------------------------

TrackerConfig storm_tracker_config(std::size_t shards) {
  TrackerConfig cfg;
  cfg.shards = shards;
  cfg.arrival_rate = 2.0;
  cfg.zipf_exponent = 1.0;
  cfg.multi_torrent_fraction = 0.3;
  cfg.arrival_model = BandwidthModel::saroiu2002();
  cfg.swarm_churn.lifetime = ChurnSpec::Lifetime::kExponential;
  cfg.swarm_churn.lifetime_rounds = 25.0;
  cfg.swarm_churn.arrival_completion = 0.25;
  return cfg;
}

std::vector<TrackerSwarmSeed> storm_tracker_seeds() {
  constexpr std::size_t kSwarms = 6;
  constexpr std::size_t kPeers = 16;
  std::vector<TrackerSwarmSeed> seeds(kSwarms);
  for (std::size_t k = 0; k < kSwarms; ++k) {
    SwarmConfig scfg;
    scfg.num_peers = kPeers;
    scfg.seeds = 1;
    scfg.num_pieces = 64;
    scfg.piece_kb = 64.0;
    scfg.neighbor_degree = 6.0;
    scfg.initial_completion = 0.5;
    scfg.stay_as_seed = false;
    scfg.faults.outage_period = 6;
    scfg.faults.outage_duration = 2;
    scfg.faults.outage_phase = k;  // stagger outages across swarms
    scfg.faults.connect_failure_prob = 0.15;
    scfg.faults.connect_attempts = 2;
    scfg.faults.nat_fraction = 0.2;
    scfg.faults.lane_loss_prob = 0.05;
    seeds[k].config = scfg;
    seeds[k].members.resize(kPeers);
    for (std::size_t i = 0; i < kPeers; ++i) {
      seeds[k].members[i] = static_cast<GlobalPeerId>(k * kPeers + i);
    }
  }
  return seeds;
}

TEST(TrackerFaults, FaultedEcosystemBitwiseInvariantToShards) {
  std::string want_bytes;
  std::uint64_t want_lost = 0;
  for (const std::size_t shards : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    TrackerSim tracker(storm_tracker_config(shards), storm_tracker_seeds(),
                       capacities(6 * 16), 777);
    tracker.run(14);
    const EcosystemReport report = tracker.ecosystem_report();
    std::ostringstream out(std::ios::binary);
    tracker.save(out);
    if (shards == 1) {
      want_bytes = std::move(out).str();
      want_lost = report.fault_lost_lanes;
      EXPECT_GT(report.fault_failed_announces, 0u);
      EXPECT_GT(report.fault_nat_rejections, 0u);
      EXPECT_GT(report.fault_lost_lanes, 0u);
    } else {
      EXPECT_EQ(std::move(out).str(), want_bytes) << "shards=" << shards;
      EXPECT_EQ(report.fault_lost_lanes, want_lost) << "shards=" << shards;
    }
  }
}

TEST(TrackerFaults, FaultedEcosystemSnapshotRoundTrips) {
  TrackerSim tracker(storm_tracker_config(2), storm_tracker_seeds(), capacities(6 * 16), 777);
  tracker.run(8);  // swarm k is mid-outage for several k (staggered phases)
  std::ostringstream out(std::ios::binary);
  tracker.save(out);
  tracker.run(6);
  std::ostringstream want(std::ios::binary);
  tracker.save(want);

  std::istringstream in(std::move(out).str(), std::ios::binary);
  TrackerSim resumed = TrackerSim::resume(in, storm_tracker_config(8));
  resumed.run(6);
  std::ostringstream got(std::ios::binary);
  resumed.save(got);
  EXPECT_EQ(std::move(got).str(), std::move(want).str());
}

// ---------------------------------------------------------------------
// Zero-cost-when-off: stats digests pinned against the pre-fault tree.
// ---------------------------------------------------------------------

struct Fnv {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  void bytes(const void* p, std::size_t n) {
    const auto* c = static_cast<const unsigned char*>(p);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= c[i];
      h *= 0x100000001B3ULL;
    }
  }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    bytes(&bits, sizeof bits);
  }
  void u64(std::uint64_t v) { bytes(&v, sizeof v); }
};

void digest_stats(Fnv& f, const PeerStats& s) {
  f.f64(s.upload_kbps);
  f.f64(s.uploaded_kb);
  f.f64(s.downloaded_kb);
  f.u64(s.pieces);
  f.f64(s.completion_round);
  f.u64(s.seed ? 1 : 0);
  f.f64(s.join_round);
  f.f64(s.leave_round);
}

TEST(FaultsOffGolden, ChurnedSwarmMatchesPreFaultTree) {
  // Scenario and digest captured from the commit before the fault
  // subsystem landed. A default FaultSpec must leave every byte of the
  // run's output untouched — no draws, no behavior change.
  SwarmConfig cfg;
  cfg.num_peers = 300;
  cfg.seeds = 2;
  cfg.num_pieces = 256;
  cfg.piece_kb = 256.0;
  cfg.neighbor_degree = 12.0;
  cfg.initial_completion = 0.5;
  const auto caps = capacities(300);
  graph::Rng rng(12345);
  Swarm swarm(cfg, caps, rng);
  ChurnSpec spec;
  spec.replacement_rate = 3.0;
  spec.arrival_completion = 0.5;
  spec.reannounce_interval = 5;
  ChurnDriver<Swarm> churn(spec, cfg, caps, rng);
  churn.attach(swarm);
  for (int r = 0; r < 25; ++r) {
    churn.before_round(swarm);
    swarm.run_round();
  }
  Fnv f;
  f.u64(swarm.peer_count());
  f.u64(swarm.live_peer_count());
  f.u64(swarm.arrivals());
  f.u64(swarm.departures());
  for (core::PeerId p = 0; p < swarm.peer_count(); ++p) digest_stats(f, swarm.stats(p));
  const StratificationReport report = swarm.stratification();
  f.f64(report.partner_rank_correlation);
  f.f64(report.mean_normalized_offset);
  f.u64(report.reciprocated_pairs);
  EXPECT_EQ(f.h, 0x62edd9b68d408508ULL)
      << "faults-off churned run diverged from the pre-fault golden digest";
  std::uint64_t corr_bits = 0;
  const double want_corr = 0.080379019231747548;
  std::uint64_t want_bits = 0;
  std::memcpy(&want_bits, &want_corr, sizeof want_bits);
  std::memcpy(&corr_bits, &report.partner_rank_correlation, sizeof corr_bits);
  EXPECT_EQ(corr_bits, want_bits);
  // And the fault machinery must report all-zeros.
  EXPECT_EQ(swarm.fault_state().failed_announces_, 0u);
  EXPECT_EQ(swarm.fault_state().lost_lanes_, 0u);
  EXPECT_EQ(swarm.fault_state().degraded_count(), 0u);
}

TEST(FaultsOffGolden, TrackerEcosystemMatchesPreFaultTree) {
  TrackerConfig tcfg;
  tcfg.shards = 1;
  tcfg.arrival_rate = 2.0;
  tcfg.zipf_exponent = 1.0;
  tcfg.multi_torrent_fraction = 0.3;
  tcfg.arrival_model = BandwidthModel::saroiu2002();
  tcfg.swarm_churn.lifetime = ChurnSpec::Lifetime::kExponential;
  tcfg.swarm_churn.lifetime_rounds = 25.0;
  tcfg.swarm_churn.arrival_completion = 0.25;
  constexpr std::size_t kSwarms = 8;
  constexpr std::size_t kPeers = 16;
  std::vector<TrackerSwarmSeed> seeds(kSwarms);
  for (std::size_t k = 0; k < kSwarms; ++k) {
    SwarmConfig scfg;
    scfg.num_peers = kPeers;
    scfg.seeds = 1;
    scfg.num_pieces = 64;
    scfg.piece_kb = 64.0;
    scfg.neighbor_degree = 6.0;
    scfg.initial_completion = 0.5;
    scfg.stay_as_seed = false;
    seeds[k].config = scfg;
    seeds[k].members.resize(kPeers);
    for (std::size_t i = 0; i < kPeers; ++i) {
      seeds[k].members[i] = static_cast<GlobalPeerId>(k * kPeers + i);
    }
  }
  TrackerSim tracker(tcfg, seeds, capacities(kSwarms * kPeers), 777);
  tracker.run(12);
  const EcosystemReport report = tracker.ecosystem_report();
  Fnv f;
  f.u64(report.per_swarm.size());
  for (const auto& s : report.per_swarm) {
    f.u64(s.live_peers);
    f.u64(s.arrivals);
    f.u64(s.departures);
    f.u64(s.completed_leechers);
    f.f64(s.partner_rank_correlation);
    f.u64(s.reciprocated_pairs);
  }
  f.f64(report.mean_partner_rank_correlation);
  f.u64(report.live_registry_peers);
  f.u64(report.live_memberships);
  for (double v : report.decile_leech_kbps) f.f64(v);
  for (double v : report.completion_round_deciles) f.f64(v);
  f.u64(report.completed_leechers);
  EXPECT_EQ(f.h, 0xd860223c8fdb695cULL)
      << "faults-off ecosystem run diverged from the pre-fault golden digest";
  EXPECT_EQ(report.fault_failed_announces, 0u);
  EXPECT_EQ(report.fault_lost_lanes, 0u);
  EXPECT_EQ(report.degraded_peers, 0u);
}

}  // namespace
}  // namespace strat::bt
