// Exhaustive checkpoint sweep (slow suite): at n=5000 churned peers,
// save at EVERY round boundary of the run and resume each snapshot
// under threads 1, 2 and 8 — all 3 * (rounds + 1) continuations must
// land bitwise on the uninterrupted end state. The tier-1 snapshot
// tests spot-check a handful of save rounds; this sweep closes the
// gap nightly by proving no round leaves hidden state out of the
// stream (mid-endgame reservations, freshly compacted rows, stale
// free-list tails — whatever a particular round boundary happens to
// hold).
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "bittorrent/bandwidth.hpp"
#include "bittorrent/scenario.hpp"
#include "bittorrent/snapshot.hpp"
#include "bittorrent/swarm.hpp"

namespace strat::bt {
namespace {

constexpr std::uint64_t kSeed = 90;
constexpr std::size_t kPeers = 5000;
constexpr std::size_t kRounds = 30;

std::vector<double> capacities() {
  return BandwidthModel::saroiu2002().representative_sample(kPeers);
}

SwarmConfig sweep_config() {
  SwarmConfig cfg;
  cfg.num_peers = kPeers;
  cfg.seeds = 4;
  cfg.num_pieces = 64;
  cfg.piece_kb = 32.0;
  cfg.neighbor_degree = 14.0;
  cfg.initial_completion = 0.5;
  cfg.endgame = true;
  cfg.stay_as_seed = false;
  return cfg;
}

ChurnSpec sweep_spec() {
  ChurnSpec spec;
  spec.arrivals = ChurnSpec::Arrivals::kPoisson;
  spec.arrival_rate = 20.0;
  spec.arrival_completion = 0.4;
  spec.lifetime = ChurnSpec::Lifetime::kExponential;
  spec.lifetime_rounds = 25.0;
  spec.replacement_rate = 20.0;
  spec.reannounce_interval = 5;
  return spec;
}

struct EndState {
  std::vector<PeerStats> stats;
  std::size_t arrivals = 0;
  std::size_t departures = 0;
  std::size_t live = 0;
  std::uint64_t next_draw = 0;
};

EndState end_state_of(const Swarm& swarm, graph::Rng& rng) {
  EndState end;
  for (core::PeerId p = 0; p < swarm.peer_count(); ++p) end.stats.push_back(swarm.stats(p));
  end.arrivals = swarm.arrivals();
  end.departures = swarm.departures();
  end.live = swarm.live_peer_count();
  end.next_draw = rng();
  return end;
}

void expect_bitwise_equal(const EndState& a, const EndState& b, std::size_t save_round,
                          std::size_t threads) {
  ASSERT_EQ(a.stats.size(), b.stats.size()) << "save round " << save_round;
  for (std::size_t p = 0; p < a.stats.size(); ++p) {
    ASSERT_EQ(a.stats[p].uploaded_kb, b.stats[p].uploaded_kb)
        << "save round " << save_round << " threads " << threads << " peer " << p;
    ASSERT_EQ(a.stats[p].downloaded_kb, b.stats[p].downloaded_kb)
        << "save round " << save_round << " threads " << threads << " peer " << p;
    ASSERT_EQ(a.stats[p].pieces, b.stats[p].pieces)
        << "save round " << save_round << " threads " << threads << " peer " << p;
    ASSERT_EQ(a.stats[p].completion_round, b.stats[p].completion_round)
        << "save round " << save_round << " threads " << threads << " peer " << p;
    ASSERT_EQ(a.stats[p].leave_round, b.stats[p].leave_round)
        << "save round " << save_round << " threads " << threads << " peer " << p;
  }
  ASSERT_EQ(a.arrivals, b.arrivals) << "save round " << save_round << " threads " << threads;
  ASSERT_EQ(a.departures, b.departures) << "save round " << save_round << " threads " << threads;
  ASSERT_EQ(a.live, b.live) << "save round " << save_round << " threads " << threads;
  ASSERT_EQ(a.next_draw, b.next_draw) << "save round " << save_round << " threads " << threads;
}

TEST(SwarmSnapshotSweep, EveryRoundEveryThreadCountResumesIdentically) {
  const SwarmConfig cfg = sweep_config();

  // One uninterrupted run, checkpointing (swarm + churn driver) at
  // every round boundary, 0 through kRounds inclusive.
  std::vector<std::string> swarm_snaps;
  std::vector<std::string> churn_snaps;
  graph::Rng rng(kSeed);
  Swarm swarm(cfg, capacities(), rng);
  ChurnDriver<Swarm> churn(sweep_spec(), cfg, capacities(), rng);
  churn.attach(swarm);
  auto checkpoint = [&] {
    swarm_snaps.push_back(save_to_string(swarm));
    std::ostringstream out(std::ios::binary);
    save_churn_driver(out, churn);
    churn_snaps.push_back(std::move(out).str());
  };
  checkpoint();
  for (std::size_t r = 0; r < kRounds; ++r) {
    churn.before_round(swarm);
    swarm.run_round();
    checkpoint();
  }
  const EndState expected = end_state_of(swarm, rng);

  for (std::size_t save_round = 0; save_round <= kRounds; ++save_round) {
    for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
      SwarmConfig resumed_cfg = cfg;
      resumed_cfg.threads = threads;
      graph::Rng resumed_rng;
      std::istringstream in(swarm_snaps[save_round], std::ios::binary);
      Swarm resumed = Swarm::resume(in, resumed_rng, resumed_cfg);
      ASSERT_EQ(resumed.rounds_elapsed(), save_round);
      ChurnDriver<Swarm> resumed_churn(sweep_spec(), cfg, capacities(), resumed_rng);
      std::istringstream churn_in(churn_snaps[save_round], std::ios::binary);
      restore_churn_driver(churn_in, resumed_churn);
      for (std::size_t r = save_round; r < kRounds; ++r) {
        resumed_churn.before_round(resumed);
        resumed.run_round();
      }
      expect_bitwise_equal(expected, end_state_of(resumed, resumed_rng), save_round, threads);
    }
  }
}

}  // namespace
}  // namespace strat::bt
