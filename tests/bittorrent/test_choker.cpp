#include "bittorrent/choker.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace strat::bt {
namespace {

std::vector<ChokeCandidate> make_candidates(
    std::initializer_list<std::tuple<core::PeerId, double, bool>> entries) {
  std::vector<ChokeCandidate> out;
  for (const auto& [peer, score, interested] : entries) {
    out.push_back({peer, score, interested});
  }
  return out;
}

TEST(Choker, SelectsTopScorersPlusOptimistic) {
  graph::Rng rng(1);
  TftChoker choker(2, 3);
  const auto unchoked = choker.select(
      make_candidates({{1, 10.0, true}, {2, 50.0, true}, {3, 30.0, true}, {4, 5.0, true}}),
      rng);
  // Two regular slots: peers 2 and 3; one optimistic from {1, 4}.
  ASSERT_EQ(unchoked.size(), 3u);
  EXPECT_NE(std::find(unchoked.begin(), unchoked.end(), 2u), unchoked.end());
  EXPECT_NE(std::find(unchoked.begin(), unchoked.end(), 3u), unchoked.end());
  EXPECT_TRUE(unchoked[2] == 1u || unchoked[2] == 4u);
  EXPECT_EQ(choker.optimistic(), unchoked[2]);
}

TEST(Choker, IgnoresUninterestedCandidates) {
  graph::Rng rng(2);
  TftChoker choker(2, 3);
  const auto unchoked = choker.select(
      make_candidates({{1, 100.0, false}, {2, 1.0, true}, {3, 2.0, true}}), rng);
  EXPECT_EQ(unchoked.size(), 2u);
  EXPECT_EQ(std::find(unchoked.begin(), unchoked.end(), 1u), unchoked.end());
}

TEST(Choker, FewerCandidatesThanSlots) {
  graph::Rng rng(3);
  TftChoker choker(3, 3);
  const auto unchoked = choker.select(make_candidates({{7, 1.0, true}}), rng);
  EXPECT_EQ(unchoked.size(), 1u);
  EXPECT_EQ(unchoked[0], 7u);
  EXPECT_EQ(choker.optimistic(), core::kNoPeer);
}

TEST(Choker, EmptyCandidates) {
  graph::Rng rng(4);
  TftChoker choker(3, 3);
  EXPECT_TRUE(choker.select({}, rng).empty());
}

TEST(Choker, OptimisticPersistsAcrossRounds) {
  graph::Rng rng(5);
  TftChoker choker(1, 3);
  const auto candidates =
      make_candidates({{1, 10.0, true}, {2, 0.0, true}, {3, 0.0, true}, {4, 0.0, true}});
  const auto first = choker.select(candidates, rng);
  const core::PeerId target = choker.optimistic();
  ASSERT_NE(target, core::kNoPeer);
  // Round 2 (rotation period 3 not yet reached): same optimistic target.
  (void)choker.select(candidates, rng);
  EXPECT_EQ(choker.optimistic(), target);
}

TEST(Choker, OptimisticEventuallyRotates) {
  graph::Rng rng(6);
  TftChoker choker(1, 2);
  const auto candidates = make_candidates(
      {{1, 10.0, true}, {2, 0.0, true}, {3, 0.0, true}, {4, 0.0, true}, {5, 0.0, true}});
  std::set<core::PeerId> seen;
  for (int round = 0; round < 40; ++round) {
    (void)choker.select(candidates, rng);
    if (choker.optimistic() != core::kNoPeer) seen.insert(choker.optimistic());
  }
  // Rotation explores multiple targets over 40 rounds.
  EXPECT_GE(seen.size(), 3u);
}

TEST(Choker, OptimisticRefreshedWhenPromoted) {
  graph::Rng rng(7);
  TftChoker choker(1, 100);  // long rotation: only promotion forces refresh
  auto candidates = make_candidates({{1, 10.0, true}, {2, 0.0, true}, {3, 0.0, true}});
  (void)choker.select(candidates, rng);
  const core::PeerId target = choker.optimistic();
  ASSERT_NE(target, core::kNoPeer);
  // The optimistic target starts reciprocating heavily -> becomes a
  // regular unchoke; the optimistic slot must move elsewhere.
  for (auto& c : candidates) {
    if (c.peer == target) c.score = 100.0;
  }
  const auto unchoked = choker.select(candidates, rng);
  EXPECT_EQ(unchoked.front(), target);            // regular slot now
  EXPECT_NE(choker.optimistic(), target);         // refreshed
}

TEST(Choker, ScoreTiesBrokenRandomly) {
  // With all scores zero and 1 regular slot, repeated fresh chokers
  // should not always pick the same peer.
  std::set<core::PeerId> picks;
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    graph::Rng rng(seed);
    TftChoker choker(1, 3);
    const auto unchoked =
        choker.select(make_candidates({{1, 0.0, true}, {2, 0.0, true}, {3, 0.0, true}}), rng);
    ASSERT_GE(unchoked.size(), 1u);
    picks.insert(unchoked[0]);
  }
  EXPECT_GE(picks.size(), 2u);
}

TEST(Choker, NeverUnchokesMoreThanSlotsPlusOne) {
  graph::Rng rng(8);
  TftChoker choker(3, 3);
  std::vector<ChokeCandidate> many;
  for (core::PeerId p = 0; p < 20; ++p) many.push_back({p, static_cast<double>(p), true});
  const auto unchoked = choker.select(many, rng);
  EXPECT_LE(unchoked.size(), 4u);
  // No duplicates.
  const std::set<core::PeerId> unique(unchoked.begin(), unchoked.end());
  EXPECT_EQ(unique.size(), unchoked.size());
}

}  // namespace
}  // namespace strat::bt
