// Swarm::phase_profile() plumbing: the per-phase wall-clock
// accumulators behind the BM_SwarmRoundThreads speedup counters. The
// contract the bench (and the thread-scaling acceptance bar) relies
// on: every phase a config exercises accumulates, nothing is ever
// negative, and the phase sum never exceeds the measured whole-round
// wall time (the phases are disjoint sections of run_round()).
#include <gtest/gtest.h>

#include <chrono>
#include <vector>

#include "bittorrent/bandwidth.hpp"
#include "bittorrent/swarm.hpp"

namespace strat::bt {
namespace {

constexpr std::uint64_t kSeed = 90;

SwarmConfig profiled_config(std::size_t peers, std::size_t threads) {
  SwarmConfig cfg;
  cfg.num_peers = peers;
  cfg.seeds = 2;
  cfg.num_pieces = 64;
  cfg.piece_kb = 32.0;
  cfg.neighbor_degree = 14.0;
  cfg.initial_completion = 0.5;
  cfg.endgame = true;  // so the endgame count phase runs too
  cfg.threads = threads;
  return cfg;
}

double phase_sum(const Swarm::PhaseProfile& prof) {
  return prof.choke_seconds + prof.endgame_seconds + prof.mutual_seconds +
         prof.transfer_seconds + prof.fold_seconds;
}

void expect_profile_contract(std::size_t threads) {
  constexpr std::size_t kPeers = 150;
  const SwarmConfig cfg = profiled_config(kPeers, threads);
  graph::Rng rng(kSeed);
  Swarm swarm(cfg, BandwidthModel::saroiu2002().representative_sample(kPeers), rng);

  const auto t0 = std::chrono::steady_clock::now();
  swarm.run(10);
  const double wall = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  const Swarm::PhaseProfile& prof = swarm.phase_profile();
  // Every phase this config exercises must have accumulated.
  EXPECT_GT(prof.choke_seconds, 0.0);
  EXPECT_GT(prof.endgame_seconds, 0.0);
  EXPECT_GT(prof.mutual_seconds, 0.0);
  EXPECT_GT(prof.transfer_seconds, 0.0);
  EXPECT_GT(prof.fold_seconds, 0.0);
  // Phases are disjoint sections of run_round(): their sum is bounded
  // by the wall time of the rounds that contained them.
  EXPECT_LE(phase_sum(prof), wall);
}

TEST(SwarmProfile, PhaseTimesPopulatedAndBoundedSerial) { expect_profile_contract(1); }

TEST(SwarmProfile, PhaseTimesPopulatedAndBoundedThreaded) { expect_profile_contract(2); }

TEST(SwarmProfile, ProfileAccumulatesMonotonically) {
  const SwarmConfig cfg = profiled_config(100, 1);
  graph::Rng rng(kSeed);
  Swarm swarm(cfg, BandwidthModel::saroiu2002().representative_sample(100), rng);
  swarm.run(3);
  const double after3 = phase_sum(swarm.phase_profile());
  EXPECT_GT(after3, 0.0);
  swarm.run(3);
  EXPECT_GE(phase_sum(swarm.phase_profile()), after3);
}

}  // namespace
}  // namespace strat::bt
