#include "bittorrent/piece_picker.hpp"

#include <gtest/gtest.h>

#include <set>

namespace strat::bt {
namespace {

TEST(Bitfield, StartsEmpty) {
  const Bitfield b(100);
  EXPECT_EQ(b.size(), 100u);
  EXPECT_EQ(b.count(), 0u);
  EXPECT_FALSE(b.complete());
  EXPECT_FALSE(b.test(0));
  EXPECT_FALSE(b.test(99));
}

TEST(Bitfield, SetResetCount) {
  Bitfield b(70);
  b.set(0);
  b.set(63);
  b.set(64);  // crosses the word boundary
  b.set(69);
  EXPECT_EQ(b.count(), 4u);
  EXPECT_TRUE(b.test(63));
  EXPECT_TRUE(b.test(64));
  b.set(64);  // idempotent
  EXPECT_EQ(b.count(), 4u);
  b.reset(64);
  EXPECT_EQ(b.count(), 3u);
  EXPECT_FALSE(b.test(64));
  b.reset(64);  // idempotent
  EXPECT_EQ(b.count(), 3u);
}

TEST(Bitfield, CompleteDetection) {
  Bitfield b(3);
  b.set(0);
  b.set(1);
  EXPECT_FALSE(b.complete());
  b.set(2);
  EXPECT_TRUE(b.complete());
}

TEST(Bitfield, BoundsChecking) {
  Bitfield b(8);
  EXPECT_THROW((void)b.test(8), std::out_of_range);
  EXPECT_THROW(b.set(8), std::out_of_range);
  EXPECT_THROW(b.reset(100), std::out_of_range);
}

TEST(Bitfield, InterestedInSemantics) {
  Bitfield local(10);
  Bitfield remote(10);
  EXPECT_FALSE(local.interested_in(remote));  // remote has nothing
  remote.set(4);
  EXPECT_TRUE(local.interested_in(remote));
  local.set(4);
  EXPECT_FALSE(local.interested_in(remote));  // already have it
  remote.set(9);
  EXPECT_TRUE(local.interested_in(remote));
}

TEST(Bitfield, InterestedInSizeMismatchThrows) {
  const Bitfield a(4);
  const Bitfield b(5);
  EXPECT_THROW((void)a.interested_in(b), std::invalid_argument);
}

TEST(PiecePicker, AvailabilityBookkeeping) {
  PiecePicker picker(5);
  EXPECT_EQ(picker.availability(3), 0u);
  picker.add_availability(3);
  picker.add_availability(3);
  EXPECT_EQ(picker.availability(3), 2u);
  EXPECT_THROW((void)picker.add_availability(5), std::out_of_range);
}

TEST(PiecePicker, PicksRarestUsefulPiece) {
  graph::Rng rng(1);
  PiecePicker picker(4);
  // Piece availabilities: 0 -> 3 copies, 1 -> 1 copy, 2 -> 2, 3 -> 5.
  for (int i = 0; i < 3; ++i) picker.add_availability(0);
  picker.add_availability(1);
  for (int i = 0; i < 2; ++i) picker.add_availability(2);
  for (int i = 0; i < 5; ++i) picker.add_availability(3);
  Bitfield local(4);
  Bitfield remote(4);
  remote.set(0);
  remote.set(1);
  remote.set(3);
  const auto pick = picker.pick_rarest(local, remote, rng);
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(*pick, 1u);  // rarest among {0, 1, 3}
}

TEST(PiecePicker, SkipsPiecesAlreadyHeld) {
  graph::Rng rng(2);
  PiecePicker picker(3);
  picker.add_availability(0);
  for (int i = 0; i < 4; ++i) picker.add_availability(1);
  Bitfield local(3);
  local.set(0);  // the rarest piece is already held
  Bitfield remote(3);
  remote.set(0);
  remote.set(1);
  const auto pick = picker.pick_rarest(local, remote, rng);
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(*pick, 1u);
}

TEST(PiecePicker, NothingUsefulReturnsNullopt) {
  graph::Rng rng(3);
  PiecePicker picker(3);
  Bitfield local(3);
  local.set(0);
  local.set(1);
  local.set(2);
  Bitfield remote(3);
  remote.set(1);
  EXPECT_FALSE(picker.pick_rarest(local, remote, rng).has_value());
  const Bitfield empty_remote(3);
  const Bitfield empty_local(3);
  EXPECT_FALSE(picker.pick_rarest(empty_local, empty_remote, rng).has_value());
}

TEST(PiecePicker, TieBreakingIsUniformish) {
  PiecePicker picker(3);  // all availabilities zero: 3-way tie
  Bitfield local(3);
  Bitfield remote(3);
  remote.set(0);
  remote.set(1);
  remote.set(2);
  graph::Rng rng(4);
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 3000; ++i) {
    const auto pick = picker.pick_rarest(local, remote, rng);
    ASSERT_TRUE(pick.has_value());
    ++counts[*pick];
  }
  for (int c : counts) EXPECT_NEAR(static_cast<double>(c) / 3000.0, 1.0 / 3.0, 0.05);
}

TEST(PiecePicker, RemoveAvailabilityUndoesAddAndGuardsZero) {
  PiecePicker picker(4);
  picker.add_availability(2);
  picker.add_availability(2);
  picker.remove_availability(2);
  EXPECT_EQ(picker.availability(2), 1u);
  picker.remove_availability(2);
  EXPECT_EQ(picker.availability(2), 0u);
  EXPECT_THROW(picker.remove_availability(2), std::logic_error);
  EXPECT_THROW(picker.remove_availability(9), std::out_of_range);
  // A removed holder changes rarest-first decisions: piece 3 becomes
  // strictly rarer than piece 1 once its extra copy is gone.
  picker.add_availability(1);
  picker.add_availability(3);
  picker.add_availability(3);
  picker.remove_availability(3);
  picker.remove_availability(3);
  Bitfield local(4);
  Bitfield remote(4);
  remote.set(1);
  remote.set(3);
  graph::Rng rng(5);
  const auto pick = picker.pick_rarest(local, remote, rng);
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(*pick, 3u);
}

// Independent scalar reimplementation of the pick contract: minimum
// availability among candidates, ties counted in piece order, one
// rng.below(ties) draw (none for a single tie), k-th tie in piece
// order. pick_rarest dispatches to a vector kernel on machines that
// have it; this pins the kernel to the exact scalar semantics — same
// pick AND same RNG consumption — on whatever path this machine runs.
std::optional<PieceId> reference_pick(const PiecePicker& picker, const Bitfield& local,
                                      const Bitfield& remote, const Bitfield* excluded,
                                      graph::Rng& rng) {
  std::uint32_t best = 0;
  std::uint64_t ties = 0;
  for (PieceId t = 0; t < local.size(); ++t) {
    if (local.test(t) || !remote.test(t) || (excluded != nullptr && excluded->test(t))) continue;
    const std::uint32_t avail = picker.availability(t);
    if (ties == 0 || avail < best) {
      best = avail;
      ties = 1;
    } else if (avail == best) {
      ++ties;
    }
  }
  if (ties == 0) return std::nullopt;
  std::uint64_t k = ties == 1 ? 0 : rng.below(ties);
  for (PieceId t = 0; t < local.size(); ++t) {
    if (local.test(t) || !remote.test(t) || (excluded != nullptr && excluded->test(t))) continue;
    if (picker.availability(t) != best) continue;
    if (k == 0) return t;
    --k;
  }
  return std::nullopt;
}

TEST(PiecePicker, PickMatchesScalarContractAtEveryDensity) {
  // 1029 pieces: a ragged tail word, so the kernel's masked loads and
  // the tail-lane handling are exercised too.
  const std::size_t n = 1029;
  PiecePicker picker(n);
  graph::Rng setup(2024);
  for (PieceId t = 0; t < n; ++t) {
    // Clustered availability (many ties) to stress tie counting.
    const auto copies = 1 + static_cast<std::uint32_t>(setup.below(7));
    for (std::uint32_t c = 0; c < copies; ++c) picker.add_availability(t);
  }
  for (const double density : {0.01, 0.1, 0.4, 0.8, 0.99}) {
    Bitfield local(n);
    Bitfield remote(n);
    Bitfield excluded(n);
    for (PieceId t = 0; t < n; ++t) {
      if (setup.bernoulli(0.4)) local.set(t);
      if (setup.bernoulli(density)) remote.set(t);
      if (setup.bernoulli(0.1)) excluded.set(t);
    }
    graph::Rng a(99);
    graph::Rng b(99);
    for (int i = 0; i < 200; ++i) {
      ASSERT_EQ(picker.pick_rarest(local, remote, a), reference_pick(picker, local, remote, nullptr, b))
          << "density " << density << " iter " << i;
      ASSERT_EQ(picker.pick_rarest(local, remote, excluded, a),
                reference_pick(picker, local, remote, &excluded, b))
          << "density " << density << " iter " << i;
      // Same draw count: the streams must stay in lockstep.
      ASSERT_EQ(a(), b()) << "RNG divergence at density " << density << " iter " << i;
    }
  }
}

}  // namespace
}  // namespace strat::bt
