// Tests for the swarm features added beyond the basic round loop:
// departures, rate smoothing, seed capacity, availability statistics,
// leech-phase rates and stratification windows.
#include <gtest/gtest.h>

#include "bittorrent/bandwidth.hpp"
#include "bittorrent/swarm.hpp"

namespace strat::bt {
namespace {

std::vector<double> bandwidths(std::size_t n, double base = 400.0) {
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = base * (1.0 + 0.001 * static_cast<double>(i));
  return out;
}

TEST(SwarmExtensions, DepartureRemovesUploaders) {
  graph::Rng rng(1);
  SwarmConfig cfg;
  cfg.num_peers = 30;
  cfg.seeds = 2;
  cfg.num_pieces = 16;
  cfg.piece_kb = 8.0;
  cfg.neighbor_degree = 10.0;
  cfg.initial_completion = 0.7;
  cfg.stay_as_seed = false;
  Swarm swarm(cfg, bandwidths(30, 800.0), rng);
  swarm.run(200);
  ASSERT_GT(swarm.completed_leechers(), 20u);
  for (core::PeerId p = 0; p < 30; ++p) {
    if (swarm.stats(p).pieces == 16u) {
      EXPECT_TRUE(swarm.departed(p)) << "completed leecher " << p << " should depart";
    }
  }
  // Seeds never depart.
  EXPECT_FALSE(swarm.departed(30));
  EXPECT_FALSE(swarm.departed(31));
  // Departed peers stop uploading: run more rounds and check their
  // upload counters freeze.
  std::vector<double> uploaded(30);
  for (core::PeerId p = 0; p < 30; ++p) uploaded[p] = swarm.stats(p).uploaded_kb;
  swarm.run(10);
  for (core::PeerId p = 0; p < 30; ++p) {
    if (swarm.departed(p)) {
      EXPECT_DOUBLE_EQ(swarm.stats(p).uploaded_kb, uploaded[p]) << "peer " << p;
    }
  }
}

TEST(SwarmExtensions, StayAsSeedKeepsUploading) {
  graph::Rng rng(2);
  SwarmConfig cfg;
  cfg.num_peers = 20;
  cfg.seeds = 1;
  cfg.num_pieces = 16;
  cfg.piece_kb = 8.0;
  cfg.neighbor_degree = 8.0;
  cfg.initial_completion = 0.7;
  cfg.stay_as_seed = true;
  Swarm swarm(cfg, bandwidths(20, 800.0), rng);
  swarm.run(100);
  for (core::PeerId p = 0; p < 20; ++p) EXPECT_FALSE(swarm.departed(p));
}

TEST(SwarmExtensions, SeedCapacityDefaultsToMedian) {
  graph::Rng rng(3);
  SwarmConfig cfg;
  cfg.num_peers = 5;
  cfg.seeds = 1;
  cfg.num_pieces = 8;
  cfg.neighbor_degree = 3.0;
  std::vector<double> bw{100.0, 200.0, 300.0, 400.0, 500.0};
  const Swarm swarm(cfg, bw, rng);
  EXPECT_DOUBLE_EQ(swarm.stats(5).upload_kbps, 300.0);  // median
}

TEST(SwarmExtensions, SeedCapacityOverride) {
  graph::Rng rng(4);
  SwarmConfig cfg;
  cfg.num_peers = 5;
  cfg.seeds = 1;
  cfg.num_pieces = 8;
  cfg.neighbor_degree = 3.0;
  cfg.seed_upload_kbps = 1234.0;
  const Swarm swarm(cfg, bandwidths(5), rng);
  EXPECT_DOUBLE_EQ(swarm.stats(5).upload_kbps, 1234.0);
}

TEST(SwarmExtensions, AvailabilityStatsTrackPieceSpread) {
  graph::Rng rng(5);
  SwarmConfig cfg;
  cfg.num_peers = 40;
  cfg.seeds = 1;
  cfg.num_pieces = 64;
  cfg.piece_kb = 16.0;
  cfg.post_flashcrowd = false;  // only the seed holds pieces
  Swarm swarm(cfg, bandwidths(40), rng);
  const auto before = swarm.availability_stats();
  EXPECT_DOUBLE_EQ(before.mean, 1.0);  // exactly the seed's copy
  EXPECT_EQ(before.min, 1u);
  EXPECT_EQ(before.max, 1u);
  EXPECT_DOUBLE_EQ(before.coefficient_of_variation, 0.0);
  swarm.run(40);
  const auto after = swarm.availability_stats();
  EXPECT_GT(after.mean, before.mean);  // pieces spread
  EXPECT_GE(after.max, after.min);
}

TEST(SwarmExtensions, RarestFirstReducesDispersionFromFlashCrowd) {
  // Availability dispersion rises while the seed is the only source,
  // peaks, then falls as rarest-first replicates the scarce pieces —
  // establishing the post-flash-crowd regime of §6. Compare the early
  // peak against the late phase (mirrors bench/swarm_flashcrowd).
  graph::Rng rng(6);
  SwarmConfig cfg;
  cfg.num_peers = 100;
  cfg.seeds = 1;
  cfg.num_pieces = 256;
  cfg.piece_kb = 128.0;
  cfg.neighbor_degree = 25.0;
  cfg.post_flashcrowd = false;
  const BandwidthModel model = BandwidthModel::saroiu2002();
  Swarm swarm(cfg, model.representative_sample(100), rng);
  swarm.run(10);
  const double peak_cv = swarm.availability_stats().coefficient_of_variation;
  swarm.run(50);
  const double late_cv = swarm.availability_stats().coefficient_of_variation;
  EXPECT_GT(peak_cv, 1.0);  // flash crowd: wildly uneven
  EXPECT_LT(late_cv, peak_cv * 0.6);
}

TEST(SwarmExtensions, LeechRateStopsAtCompletion) {
  graph::Rng rng(7);
  SwarmConfig cfg;
  cfg.num_peers = 20;
  cfg.seeds = 2;
  cfg.num_pieces = 16;
  cfg.piece_kb = 8.0;
  cfg.neighbor_degree = 10.0;
  cfg.initial_completion = 0.6;
  Swarm swarm(cfg, bandwidths(20, 800.0), rng);
  swarm.run(100);
  for (core::PeerId p = 0; p < 20; ++p) {
    const auto& stats = swarm.stats(p);
    if (stats.completion_round < 0.0) continue;
    const double expected = stats.downloaded_kb * 8.0 /
                            (stats.completion_round * cfg.round_seconds);
    EXPECT_NEAR(swarm.leech_download_kbps(p), expected, 1e-9);
  }
}

TEST(SwarmExtensions, ResetStratificationClearsHistory) {
  graph::Rng rng(8);
  SwarmConfig cfg;
  cfg.num_peers = 40;
  cfg.seeds = 1;
  cfg.num_pieces = 512;
  cfg.piece_kb = 512.0;
  cfg.neighbor_degree = 15.0;
  cfg.initial_completion = 0.5;
  Swarm swarm(cfg, bandwidths(40), rng);
  swarm.run(10);
  EXPECT_GT(swarm.stratification().reciprocated_pairs, 0u);
  swarm.reset_stratification();
  EXPECT_EQ(swarm.stratification().reciprocated_pairs, 0u);
  swarm.run(5);
  EXPECT_GT(swarm.stratification().reciprocated_pairs, 0u);
}

TEST(SwarmExtensions, RateSmoothingBoundsRespected) {
  // Degenerate alpha = 1.0 (raw last round) must still run fine.
  graph::Rng rng(9);
  SwarmConfig cfg;
  cfg.num_peers = 30;
  cfg.seeds = 1;
  cfg.num_pieces = 64;
  cfg.piece_kb = 32.0;
  cfg.rate_smoothing = 1.0;
  Swarm swarm(cfg, bandwidths(30), rng);
  swarm.run(20);
  double down = 0.0;
  for (core::PeerId p = 0; p < 30; ++p) down += swarm.stats(p).downloaded_kb;
  EXPECT_GT(down, 0.0);
}

}  // namespace
}  // namespace strat::bt
