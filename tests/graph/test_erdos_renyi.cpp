#include "graph/erdos_renyi.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace strat::graph {
namespace {

TEST(ErdosRenyi, RejectsBadProbability) {
  Rng rng(1);
  EXPECT_THROW((void)erdos_renyi_gnp(10, -0.1, rng), std::invalid_argument);
  EXPECT_THROW((void)erdos_renyi_gnp(10, 1.1, rng), std::invalid_argument);
}

TEST(ErdosRenyi, ZeroProbabilityIsEdgeless) {
  Rng rng(2);
  const Graph g = erdos_renyi_gnp(20, 0.0, rng);
  EXPECT_EQ(g.size(), 0u);
}

TEST(ErdosRenyi, ProbabilityOneIsComplete) {
  Rng rng(3);
  const Graph g = erdos_renyi_gnp(12, 1.0, rng);
  EXPECT_EQ(g.size(), 12u * 11u / 2u);
}

TEST(ErdosRenyi, EdgeCountConcentratesAroundMean) {
  Rng rng(4);
  const std::size_t n = 400;
  const double p = 0.05;
  const double expected = p * static_cast<double>(n * (n - 1) / 2);
  double total = 0.0;
  const int runs = 20;
  for (int r = 0; r < runs; ++r) {
    total += static_cast<double>(erdos_renyi_gnp(n, p, rng).size());
  }
  const double mean = total / runs;
  // 20-run average is within a few standard deviations of the mean.
  const double sd = std::sqrt(expected * (1.0 - p) / runs);
  EXPECT_NEAR(mean, expected, 5.0 * sd);
}

TEST(ErdosRenyi, NoLoopsNoDuplicates) {
  Rng rng(5);
  const Graph g = erdos_renyi_gnp(60, 0.2, rng);
  for (Vertex u = 0; u < g.order(); ++u) {
    std::set<Vertex> seen;
    for (Vertex v : g.neighbors(u)) {
      EXPECT_NE(v, u);
      EXPECT_TRUE(seen.insert(v).second) << "duplicate edge at " << u;
    }
  }
}

TEST(ErdosRenyi, SymmetricAdjacency) {
  Rng rng(6);
  const Graph g = erdos_renyi_gnp(50, 0.1, rng);
  for (Vertex u = 0; u < g.order(); ++u) {
    for (Vertex v : g.neighbors(u)) EXPECT_TRUE(g.has_edge(v, u));
  }
}

TEST(ErdosRenyi, GndMeanDegree) {
  Rng rng(7);
  const std::size_t n = 1000;
  const double d = 10.0;
  double total_degree = 0.0;
  const int runs = 5;
  for (int r = 0; r < runs; ++r) {
    total_degree += erdos_renyi_gnd(n, d, rng).mean_degree();
  }
  EXPECT_NEAR(total_degree / runs, d, 0.5);
}

TEST(ErdosRenyi, GndRejectsExcessDegree) {
  Rng rng(8);
  EXPECT_THROW((void)erdos_renyi_gnd(10, 9.5, rng), std::invalid_argument);
  EXPECT_THROW((void)erdos_renyi_gnd(10, -1.0, rng), std::invalid_argument);
}

TEST(ErdosRenyi, GndTinyPopulation) {
  Rng rng(9);
  const Graph g = erdos_renyi_gnd(1, 0.0, rng);
  EXPECT_EQ(g.order(), 1u);
  EXPECT_THROW((void)erdos_renyi_gnd(1, 1.0, rng), std::invalid_argument);
}

TEST(CompleteGraph, AllPairsPresent) {
  const Graph g = complete_graph(6);
  EXPECT_EQ(g.size(), 15u);
  for (Vertex u = 0; u < 6; ++u) {
    EXPECT_EQ(g.degree(u), 5u);
  }
}

TEST(RingLattice, CycleIsTwoRegularConnected) {
  const Graph g = ring_lattice(8, 1);
  for (Vertex u = 0; u < 8; ++u) EXPECT_EQ(g.degree(u), 2u);
  EXPECT_EQ(g.size(), 8u);
}

TEST(RingLattice, RejectsDegenerate) {
  EXPECT_THROW((void)ring_lattice(4, 0), std::invalid_argument);
  EXPECT_THROW((void)ring_lattice(4, 2), std::invalid_argument);
}

TEST(ConfigurationModel, DegreesBounded) {
  Rng rng(10);
  const Graph g = configuration_model(200, 4, rng);
  std::size_t at_capacity = 0;
  for (Vertex u = 0; u < g.order(); ++u) {
    EXPECT_LE(g.degree(u), 4u);
    if (g.degree(u) == 4u) ++at_capacity;
  }
  // The vast majority reach full degree when n >> b.
  EXPECT_GT(at_capacity, 150u);
}

TEST(ConfigurationModel, RejectsBTooLarge) {
  Rng rng(11);
  EXPECT_THROW((void)configuration_model(4, 4, rng), std::invalid_argument);
}

TEST(ConfigurationModel, SameSeedSameGraph) {
  Rng rng_a(77);
  Rng rng_b(77);
  const Graph ga = configuration_model(150, 3, rng_a);
  const Graph gb = configuration_model(150, 3, rng_b);
  ASSERT_EQ(ga.size(), gb.size());
  for (Vertex u = 0; u < ga.order(); ++u) {
    const auto na = ga.neighbors(u);
    const auto nb = gb.neighbors(u);
    ASSERT_EQ(na.size(), nb.size()) << "vertex " << u;
    for (std::size_t i = 0; i < na.size(); ++i) EXPECT_EQ(na[i], nb[i]);
  }
}

}  // namespace
}  // namespace strat::graph
