#include "graph/graph.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace strat::graph {
namespace {

TEST(Graph, EmptyGraph) {
  Graph g;
  EXPECT_EQ(g.order(), 0u);
  EXPECT_EQ(g.size(), 0u);
  EXPECT_DOUBLE_EQ(g.mean_degree(), 0.0);
}

TEST(Graph, AddEdgeUpdatesDegreesAndCount) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  EXPECT_EQ(g.size(), 2u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(1), 2u);
  EXPECT_EQ(g.degree(2), 1u);
  EXPECT_EQ(g.degree(3), 0u);
  EXPECT_DOUBLE_EQ(g.mean_degree(), 1.0);
}

TEST(Graph, RejectsLoopsAndBadVertices) {
  Graph g(3);
  EXPECT_THROW(g.add_edge(1, 1), std::invalid_argument);
  EXPECT_THROW(g.add_edge(0, 3), std::invalid_argument);
  EXPECT_THROW(g.add_edge(5, 0), std::invalid_argument);
}

TEST(Graph, DuplicateDetectionOptIn) {
  Graph g(3);
  g.add_edge(0, 1);
  EXPECT_THROW(g.add_edge(0, 1, /*check_duplicate=*/true), std::invalid_argument);
  EXPECT_THROW(g.add_edge(1, 0, /*check_duplicate=*/true), std::invalid_argument);
}

TEST(Graph, HasEdgeSymmetric) {
  Graph g(4);
  g.add_edge(2, 0);
  EXPECT_TRUE(g.has_edge(0, 2));
  EXPECT_TRUE(g.has_edge(2, 0));
  EXPECT_FALSE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(0, 0));
  EXPECT_FALSE(g.has_edge(0, 9));
}

TEST(Graph, FinalizeSortsNeighborsAndKeepsLookups) {
  Graph g(5);
  g.add_edge(0, 4);
  g.add_edge(0, 2);
  g.add_edge(0, 3);
  EXPECT_FALSE(g.finalized());
  g.finalize();
  EXPECT_TRUE(g.finalized());
  const auto nbrs = g.neighbors(0);
  EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
  EXPECT_TRUE(g.has_edge(0, 3));
  EXPECT_FALSE(g.has_edge(0, 1));
}

TEST(Graph, IsolateRemovesBothDirections) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 2);
  g.isolate(0);
  EXPECT_EQ(g.degree(0), 0u);
  EXPECT_EQ(g.degree(1), 1u);
  EXPECT_EQ(g.degree(2), 1u);
  EXPECT_EQ(g.size(), 1u);
  EXPECT_FALSE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 2));
}

TEST(Graph, IsolateOutOfRangeThrows) {
  Graph g(2);
  EXPECT_THROW(g.isolate(2), std::invalid_argument);
}

TEST(Graph, GrowAddsIsolatedVertices) {
  Graph g(2);
  g.add_edge(0, 1);
  const Vertex first = g.grow(3);
  EXPECT_EQ(first, 2u);
  EXPECT_EQ(g.order(), 5u);
  EXPECT_EQ(g.degree(4), 0u);
  g.add_edge(4, 0);
  EXPECT_TRUE(g.has_edge(0, 4));
}

TEST(Graph, NeighborsSpanReflectsEdges) {
  Graph g(3);
  g.add_edge(1, 0);
  g.add_edge(1, 2);
  const auto nbrs = g.neighbors(1);
  EXPECT_EQ(nbrs.size(), 2u);
}

}  // namespace
}  // namespace strat::graph
