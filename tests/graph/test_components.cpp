#include "graph/components.hpp"

#include <gtest/gtest.h>

#include "graph/erdos_renyi.hpp"

namespace strat::graph {
namespace {

TEST(Components, EmptyGraph) {
  const Components c = connected_components(Graph{});
  EXPECT_EQ(c.count(), 0u);
  EXPECT_EQ(c.largest(), 0u);
  EXPECT_DOUBLE_EQ(c.mean_size(), 0.0);
  EXPECT_DOUBLE_EQ(c.vertex_mean_size(), 0.0);
}

TEST(Components, IsolatedVertices) {
  const Components c = connected_components(Graph(5));
  EXPECT_EQ(c.count(), 5u);
  EXPECT_EQ(c.largest(), 1u);
  EXPECT_DOUBLE_EQ(c.mean_size(), 1.0);
}

TEST(Components, TwoTriangles) {
  Graph g(6);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  g.add_edge(3, 4);
  g.add_edge(4, 5);
  g.add_edge(5, 3);
  const Components c = connected_components(g);
  EXPECT_EQ(c.count(), 2u);
  EXPECT_EQ(c.largest(), 3u);
  EXPECT_DOUBLE_EQ(c.mean_size(), 3.0);
  EXPECT_DOUBLE_EQ(c.vertex_mean_size(), 3.0);
  EXPECT_EQ(c.label[0], c.label[1]);
  EXPECT_EQ(c.label[1], c.label[2]);
  EXPECT_NE(c.label[0], c.label[3]);
}

TEST(Components, VertexMeanSizeWeightsBigComponents) {
  // Component sizes 4 and 1: component-mean 2.5, vertex-mean (16+1)/5.
  Graph g(5);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  const Components c = connected_components(g);
  EXPECT_DOUBLE_EQ(c.mean_size(), 2.5);
  EXPECT_DOUBLE_EQ(c.vertex_mean_size(), 17.0 / 5.0);
}

TEST(Components, IsConnectedCases) {
  EXPECT_TRUE(is_connected(Graph{}));
  EXPECT_TRUE(is_connected(Graph(1)));
  EXPECT_FALSE(is_connected(Graph(2)));
  EXPECT_TRUE(is_connected(ring_lattice(5, 1)));
}

TEST(Components, OneRegularGraphCannotBeConnected) {
  // §4.1: a 1-regular graph on n >= 3 vertices is a perfect matching,
  // hence disconnected.
  Graph g(6);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  g.add_edge(4, 5);
  EXPECT_FALSE(is_connected(g));
  EXPECT_EQ(connected_components(g).count(), 3u);
}

TEST(Components, CycleIsUniqueConnectedTwoRegular) {
  // §4.1: the cycle is the unique connected 2-regular graph; two
  // disjoint cycles are 2-regular but disconnected.
  EXPECT_TRUE(is_connected(ring_lattice(7, 1)));
  Graph two_cycles(6);
  for (Vertex u = 0; u < 3; ++u) two_cycles.add_edge(u, (u + 1) % 3);
  for (Vertex u = 0; u < 3; ++u) two_cycles.add_edge(3 + u, 3 + (u + 1) % 3);
  EXPECT_FALSE(is_connected(two_cycles));
}

TEST(BfsDistances, PathGraph) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  const auto dist = bfs_distances(g, 0);
  EXPECT_EQ(dist[0], 0u);
  EXPECT_EQ(dist[1], 1u);
  EXPECT_EQ(dist[2], 2u);
  EXPECT_EQ(dist[3], 3u);
}

TEST(BfsDistances, UnreachableIsMax) {
  Graph g(3);
  g.add_edge(0, 1);
  const auto dist = bfs_distances(g, 0);
  EXPECT_EQ(dist[2], std::numeric_limits<std::size_t>::max());
}

TEST(BfsDistances, BadSourceThrows) {
  Graph g(2);
  EXPECT_THROW((void)bfs_distances(g, 5), std::invalid_argument);
}

TEST(Diameter, CycleAndPath) {
  EXPECT_EQ(diameter(ring_lattice(8, 1)), 4u);
  Graph path(5);
  for (Vertex u = 0; u + 1 < 5; ++u) path.add_edge(u, u + 1);
  EXPECT_EQ(diameter(path), 4u);
}

TEST(Diameter, DisconnectedThrows) {
  EXPECT_THROW((void)diameter(Graph(3)), std::invalid_argument);
}

TEST(Diameter, TrivialGraphs) {
  EXPECT_EQ(diameter(Graph{}), 0u);
  EXPECT_EQ(diameter(Graph(1)), 0u);
}

}  // namespace
}  // namespace strat::graph
