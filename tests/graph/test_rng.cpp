#include "graph/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace strat::graph {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LE(same, 1);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  double lo = 1.0;
  double hi = 0.0;
  double sum = 0.0;
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    lo = std::min(lo, u);
    hi = std::max(hi, u);
    sum += u;
  }
  EXPECT_NEAR(sum / kDraws, 0.5, 0.02);
  EXPECT_LT(lo, 0.01);
  EXPECT_GT(hi, 0.99);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 5.0);
  }
}

TEST(Rng, BelowIsUnbiasedOverSmallRange) {
  Rng rng(9);
  std::vector<int> counts(5, 0);
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) ++counts[rng.below(5)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / kDraws, 0.2, 0.02);
  }
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng rng(10);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.range(-2, 2);
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(12);
  double sum = 0.0;
  double sumsq = 0.0;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) {
    const double z = rng.normal();
    sum += z;
    sumsq += z * z;
  }
  const double mean = sum / kDraws;
  const double var = sumsq / kDraws - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(Rng, NormalWithParameters) {
  Rng rng(13);
  double sum = 0.0;
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / kDraws, 10.0, 0.1);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(14);
  int hits = 0;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.3, 0.02);
}

TEST(Rng, BernoulliDegenerate) {
  Rng rng(15);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, SkipGeometricMeanMatches) {
  Rng rng(16);
  const double p = 0.05;
  double sum = 0.0;
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) sum += static_cast<double>(rng.skip_geometric(p));
  // Mean of failures-before-success is (1-p)/p = 19.
  EXPECT_NEAR(sum / kDraws, (1.0 - p) / p, 0.5);
}

TEST(Rng, SkipGeometricCertainSuccess) {
  Rng rng(17);
  EXPECT_EQ(rng.skip_geometric(1.0), 0u);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(18);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[static_cast<std::size_t>(i)] = i;
  auto shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng parent(19);
  Rng child = parent.split();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent() == child()) ++same;
  }
  EXPECT_LE(same, 1);
}

TEST(Rng, DistributionStreamsDeterministicForSameSeed) {
  // Same-seed determinism must hold through every derived distribution,
  // not just the raw stream — mixed consumption included.
  Rng a(321);
  Rng b(321);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(a.uniform(), b.uniform());
    EXPECT_EQ(a.below(1000), b.below(1000));
    EXPECT_EQ(a.normal(), b.normal());
    EXPECT_EQ(a.bernoulli(0.5), b.bernoulli(0.5));
    EXPECT_EQ(a.skip_geometric(0.1), b.skip_geometric(0.1));
  }
}

TEST(Rng, SplitIsDeterministicForSameSeed) {
  Rng a(55);
  Rng b(55);
  Rng child_a = a.split();
  Rng child_b = b.split();
  for (int i = 0; i < 64; ++i) EXPECT_EQ(child_a(), child_b());
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Rng>);
  SUCCEED();
}

TEST(Rng, StreamIsAPureFunctionOfItsCoordinates) {
  // Same (key, a, b) -> same stream, no matter what else was derived
  // in between: the per-peer choke-stream contract.
  Rng first = Rng::stream(42, 7, 3);
  (void)Rng::stream(9999, 1, 1)();  // unrelated derivation in between
  Rng second = Rng::stream(42, 7, 3);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(first(), second());
}

TEST(Rng, StreamCoordinatesDecorrelate) {
  // Changing any single coordinate must give an unrelated stream.
  Rng base = Rng::stream(42, 7, 3);
  for (Rng other : {Rng::stream(43, 7, 3), Rng::stream(42, 8, 3), Rng::stream(42, 7, 4)}) {
    int same = 0;
    Rng b = base;
    for (int i = 0; i < 64; ++i) {
      if (b() == other()) ++same;
    }
    EXPECT_LE(same, 1);
  }
  // Swapping coordinates matters too (a and b are not interchangeable).
  Rng swapped = Rng::stream(42, 3, 7);
  Rng b = base;
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (b() == swapped()) ++same;
  }
  EXPECT_LE(same, 1);
}

}  // namespace
}  // namespace strat::graph
