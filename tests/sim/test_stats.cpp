#include "sim/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace strat::sim {
namespace {

TEST(OnlineStats, EmptyAccumulator) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(OnlineStats, SingleValue) {
  OnlineStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(OnlineStats, KnownMoments) {
  OnlineStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Population variance 4 -> sample variance 4 * 8/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(OnlineStats, MergeMatchesSequential) {
  OnlineStats a;
  OnlineStats b;
  OnlineStats whole;
  for (int i = 0; i < 100; ++i) {
    const double v = std::sin(static_cast<double>(i)) * 10.0;
    whole.add(v);
    (i % 2 == 0 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(OnlineStats, MergeWithEmpty) {
  OnlineStats a;
  a.add(1.0);
  a.add(3.0);
  OnlineStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  OnlineStats target;
  target.merge(a);
  EXPECT_EQ(target.count(), 2u);
  EXPECT_DOUBLE_EQ(target.mean(), 2.0);
}

TEST(Quantile, ThrowsOnEmptyAndBadQ) {
  EXPECT_THROW((void)quantile_sorted({}, 0.5), std::invalid_argument);
  EXPECT_THROW((void)quantile_sorted({1.0}, -0.1), std::invalid_argument);
  EXPECT_THROW((void)quantile_sorted({1.0}, 1.1), std::invalid_argument);
}

TEST(Quantile, InterpolatesLinearly) {
  const std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 1.0), 10.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 0.25), 2.5);
}

TEST(Summary, OrderStatistics) {
  std::vector<double> values;
  for (int i = 100; i >= 1; --i) values.push_back(static_cast<double>(i));
  const Summary s = summarize(values);
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.mean, 50.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_NEAR(s.median, 50.5, 1e-12);
  EXPECT_NEAR(s.p25, 25.75, 1e-12);
  EXPECT_NEAR(s.p75, 75.25, 1e-12);
}

TEST(Summary, EmptyIsAllZero) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(Pearson, PerfectCorrelation) {
  const std::vector<double> xs{1, 2, 3, 4, 5};
  const std::vector<double> ys{2, 4, 6, 8, 10};
  EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
  std::vector<double> neg(ys.rbegin(), ys.rend());
  EXPECT_NEAR(pearson(xs, neg), -1.0, 1e-12);
}

TEST(Pearson, ZeroVarianceReturnsZero) {
  EXPECT_DOUBLE_EQ(pearson({1, 1, 1}, {1, 2, 3}), 0.0);
}

TEST(Pearson, Preconditions) {
  EXPECT_THROW((void)pearson({1.0}, {1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW((void)pearson({1.0}, {1.0}), std::invalid_argument);
}

TEST(Spearman, MonotoneNonlinearIsOne) {
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 1; i <= 20; ++i) {
    xs.push_back(static_cast<double>(i));
    ys.push_back(std::exp(static_cast<double>(i) * 0.3));  // monotone, nonlinear
  }
  EXPECT_NEAR(spearman(xs, ys), 1.0, 1e-12);
}

TEST(Spearman, HandlesTiesWithAverageRanks) {
  const std::vector<double> xs{1, 2, 2, 3};
  const std::vector<double> ys{1, 2, 2, 3};
  EXPECT_NEAR(spearman(xs, ys), 1.0, 1e-12);
}

}  // namespace
}  // namespace strat::sim
