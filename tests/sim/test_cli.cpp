#include "sim/cli.hpp"

#include <gtest/gtest.h>

#include <array>

namespace strat::sim {
namespace {

Cli make(std::initializer_list<const char*> args, std::vector<std::string> known) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Cli(static_cast<int>(argv.size()), argv.data(), std::move(known));
}

TEST(Cli, EqualsForm) {
  const Cli cli = make({"--n=100", "--p=0.5"}, {"n", "p"});
  EXPECT_EQ(cli.get_int("n", 0), 100);
  EXPECT_DOUBLE_EQ(cli.get_double("p", 0.0), 0.5);
}

TEST(Cli, SpaceForm) {
  const Cli cli = make({"--n", "42"}, {"n"});
  EXPECT_EQ(cli.get_int("n", 0), 42);
}

TEST(Cli, BooleanFlagWithoutValue) {
  const Cli cli = make({"--csv"}, {"csv"});
  EXPECT_TRUE(cli.get_bool("csv"));
  EXPECT_TRUE(cli.has("csv"));
}

TEST(Cli, DefaultsWhenAbsent) {
  const Cli cli = make({}, {"n", "csv"});
  EXPECT_EQ(cli.get_int("n", 7), 7);
  EXPECT_FALSE(cli.get_bool("csv"));
  EXPECT_FALSE(cli.has("n"));
  EXPECT_EQ(cli.get_string("n", "x"), "x");
}

TEST(Cli, UnknownFlagThrows) {
  EXPECT_THROW(make({"--oops=1"}, {"n"}), std::invalid_argument);
}

TEST(Cli, NonFlagTokenThrows) {
  EXPECT_THROW(make({"positional"}, {"n"}), std::invalid_argument);
}

TEST(Cli, BoolExplicitValues) {
  EXPECT_TRUE(make({"--x=true"}, {"x"}).get_bool("x"));
  EXPECT_TRUE(make({"--x=1"}, {"x"}).get_bool("x"));
  EXPECT_TRUE(make({"--x=yes"}, {"x"}).get_bool("x"));
  EXPECT_FALSE(make({"--x=false"}, {"x"}).get_bool("x", true));
}

TEST(Cli, ProgramName) {
  const Cli cli = make({}, {});
  EXPECT_EQ(cli.program(), "prog");
}

}  // namespace
}  // namespace strat::sim
