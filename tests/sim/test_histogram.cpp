#include "sim/histogram.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace strat::sim {
namespace {

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(2.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Histogram, BinsAndEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_EQ(h.bins(), 5u);
  EXPECT_DOUBLE_EQ(h.edge(0), 0.0);
  EXPECT_DOUBLE_EQ(h.edge(5), 10.0);
  EXPECT_DOUBLE_EQ(h.center(0), 1.0);
  EXPECT_DOUBLE_EQ(h.center(4), 9.0);
}

TEST(Histogram, AccumulatesAndClamps) {
  Histogram h(0.0, 10.0, 5);
  h.add(1.0);
  h.add(3.0);
  h.add(-5.0);   // clamps into bin 0
  h.add(50.0);   // clamps into bin 4
  h.add(10.0);   // exactly hi: clamps into bin 4
  EXPECT_DOUBLE_EQ(h.count(0), 2.0);
  EXPECT_DOUBLE_EQ(h.count(1), 1.0);
  EXPECT_DOUBLE_EQ(h.count(4), 2.0);
  EXPECT_DOUBLE_EQ(h.total(), 5.0);
}

TEST(Histogram, WeightsRespected) {
  Histogram h(0.0, 1.0, 2);
  h.add(0.25, 2.5);
  h.add(0.75, 0.5);
  EXPECT_DOUBLE_EQ(h.count(0), 2.5);
  EXPECT_DOUBLE_EQ(h.count(1), 0.5);
  EXPECT_DOUBLE_EQ(h.total(), 3.0);
}

TEST(Histogram, DensityIntegratesToOne) {
  Histogram h(0.0, 4.0, 8);
  for (int i = 0; i < 100; ++i) h.add(static_cast<double>(i % 4) + 0.3);
  const auto d = h.density();
  double integral = 0.0;
  for (double v : d) integral += v * (4.0 / 8.0);
  EXPECT_NEAR(integral, 1.0, 1e-12);
}

TEST(Histogram, DensityOfEmptyIsZero) {
  Histogram h(0.0, 1.0, 4);
  for (double v : h.density()) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Histogram, RenderContainsEveryBin) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  const std::string text = h.render();
  EXPECT_NE(text.find("[0, 1)"), std::string::npos);
  EXPECT_NE(text.find("[1, 2)"), std::string::npos);
}

TEST(LogHistogram, RejectsBadConstruction) {
  EXPECT_THROW(LogHistogram(0.0, 10.0, 4), std::invalid_argument);
  EXPECT_THROW(LogHistogram(-1.0, 10.0, 4), std::invalid_argument);
  EXPECT_THROW(LogHistogram(10.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(LogHistogram(1.0, 10.0, 0), std::invalid_argument);
}

TEST(LogHistogram, GeometricBinning) {
  LogHistogram h(1.0, 10000.0, 4);  // decades: [1,10),[10,100),...
  EXPECT_NEAR(h.edge(1), 10.0, 1e-9);
  EXPECT_NEAR(h.edge(2), 100.0, 1e-9);
  h.add(5.0);
  h.add(50.0);
  h.add(5000.0);
  EXPECT_DOUBLE_EQ(h.count(0), 1.0);
  EXPECT_DOUBLE_EQ(h.count(1), 1.0);
  EXPECT_DOUBLE_EQ(h.count(3), 1.0);
}

TEST(LogHistogram, RejectsNonPositiveSamples) {
  LogHistogram h(1.0, 100.0, 2);
  EXPECT_THROW(h.add(0.0), std::invalid_argument);
  EXPECT_THROW(h.add(-2.0), std::invalid_argument);
}

TEST(LogHistogram, CumulativeFractionIsMonotoneAndEndsAtOne) {
  LogHistogram h(1.0, 1000.0, 6);
  for (double v : {2.0, 3.0, 30.0, 300.0, 900.0}) h.add(v);
  const auto cum = h.cumulative_fraction();
  for (std::size_t i = 1; i < cum.size(); ++i) EXPECT_GE(cum[i], cum[i - 1]);
  EXPECT_NEAR(cum.back(), 1.0, 1e-12);
}

}  // namespace
}  // namespace strat::sim
