// parallel_for contract: every index exactly once, any thread count,
// exceptions surfaced on the caller.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "sim/parallel.hpp"

namespace strat::sim {
namespace {

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{3}, std::size_t{16}}) {
    const std::size_t count = 257;
    std::vector<std::atomic<int>> hits(count);
    parallel_for(count, threads, [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < count; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " threads " << threads;
    }
  }
}

TEST(ParallelFor, HandlesDegenerateSizes) {
  std::atomic<int> calls{0};
  parallel_for(0, 4, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
  parallel_for(1, 8, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 1);
}

TEST(ParallelFor, SingleThreadRunsInOrder) {
  std::vector<std::size_t> order;
  parallel_for(5, 1, [&](std::size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ParallelFor, PropagatesExceptions) {
  const auto boom = [](std::size_t i) {
    if (i == 3) throw std::runtime_error("boom");
  };
  EXPECT_THROW(parallel_for(8, 4, boom), std::runtime_error);
  EXPECT_THROW(parallel_for(8, 1, boom), std::runtime_error);
}

TEST(ParallelFor, RecommendedThreadsIsPositive) {
  EXPECT_GE(recommended_threads(), 1u);
}

TEST(ParallelForChunks, PartitionCoversEveryIndexExactlyOnce) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{3}, std::size_t{8}}) {
    for (const std::size_t count : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                                    std::size_t{64}, std::size_t{257}}) {
      std::vector<std::atomic<int>> hits(count);
      parallel_for_chunks(count, threads, 8,
                          [&](std::size_t begin, std::size_t end, std::size_t) {
                            for (std::size_t i = begin; i < end; ++i) ++hits[i];
                          });
      for (std::size_t i = 0; i < count; ++i) {
        EXPECT_EQ(hits[i].load(), 1)
            << "index " << i << " count " << count << " threads " << threads;
      }
    }
  }
}

TEST(ParallelForChunks, ChunkIdsAreDenseAndClaimedOnce) {
  const std::size_t count = 100;
  const std::size_t threads = 4;
  const std::size_t chunks = chunk_count(count, threads, 8);
  ASSERT_GE(chunks, 2u);
  std::vector<std::atomic<int>> claims(chunks);
  parallel_for_chunks(count, threads, 8,
                      [&](std::size_t, std::size_t, std::size_t chunk) {
                        ASSERT_LT(chunk, chunks);
                        ++claims[chunk];
                      });
  for (std::size_t c = 0; c < chunks; ++c) EXPECT_EQ(claims[c].load(), 1) << "chunk " << c;
}

TEST(ParallelForChunks, GrainKeepsSmallRangesInline) {
  // Below one grain the whole range must run as a single inline chunk
  // (no thread spawn) — the per-round overhead guard for tiny swarms.
  EXPECT_EQ(chunk_count(63, 8, 64), 1u);
  EXPECT_EQ(chunk_count(0, 8, 64), 0u);
  EXPECT_EQ(chunk_count(1000, 1, 64), 1u);
  // One chunk per grain's worth of work, capped by the thread count.
  EXPECT_EQ(chunk_count(128, 8, 64), 2u);
  EXPECT_EQ(chunk_count(100000, 8, 64), 8u);
  std::vector<std::size_t> order;
  parallel_for_chunks(10, 8, 64, [&](std::size_t begin, std::size_t end, std::size_t chunk) {
    EXPECT_EQ(chunk, 0u);
    for (std::size_t i = begin; i < end; ++i) order.push_back(i);
  });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}));
}

}  // namespace
}  // namespace strat::sim
