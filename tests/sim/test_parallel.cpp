// parallel_for contract: every index exactly once, any thread count,
// exceptions surfaced on the caller.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "sim/parallel.hpp"

namespace strat::sim {
namespace {

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{3}, std::size_t{16}}) {
    const std::size_t count = 257;
    std::vector<std::atomic<int>> hits(count);
    parallel_for(count, threads, [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < count; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " threads " << threads;
    }
  }
}

TEST(ParallelFor, HandlesDegenerateSizes) {
  std::atomic<int> calls{0};
  parallel_for(0, 4, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
  parallel_for(1, 8, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 1);
}

TEST(ParallelFor, SingleThreadRunsInOrder) {
  std::vector<std::size_t> order;
  parallel_for(5, 1, [&](std::size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ParallelFor, PropagatesExceptions) {
  const auto boom = [](std::size_t i) {
    if (i == 3) throw std::runtime_error("boom");
  };
  EXPECT_THROW(parallel_for(8, 4, boom), std::runtime_error);
  EXPECT_THROW(parallel_for(8, 1, boom), std::runtime_error);
}

TEST(ParallelFor, RecommendedThreadsIsPositive) {
  EXPECT_GE(recommended_threads(), 1u);
}

}  // namespace
}  // namespace strat::sim
