#include "sim/table.hpp"

#include <gtest/gtest.h>

namespace strat::sim {
namespace {

TEST(Fmt, FixedPrecision) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(1.0, 0), "1");
  EXPECT_EQ(fmt(-0.5, 1), "-0.5");
}

TEST(Fmt, Scientific) {
  EXPECT_EQ(fmt_sci(12345.0, 2), "1.23e+04");
}

TEST(Table, RejectsEmptyHeader) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, RejectsWidthMismatch) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"1"}), std::invalid_argument);
  EXPECT_THROW(t.add_row({"1", "2", "3"}), std::invalid_argument);
}

TEST(Table, StoresRows) {
  Table t({"x", "y"});
  t.add_row({"1", "2"});
  t.add_row({"3", "4"});
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_EQ(t.row(1)[1], "4");
}

TEST(Table, RenderAlignsColumns) {
  Table t({"name", "v"});
  t.add_row({"a", "1.5"});
  t.add_row({"long-name", "2"});
  const std::string text = t.render();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("long-name"), std::string::npos);
  EXPECT_NE(text.find("----"), std::string::npos);
  // Header line and both rows -> at least 4 lines with the separator.
  EXPECT_GE(std::count(text.begin(), text.end(), '\n'), 4);
}

TEST(Table, CsvEscaping) {
  Table t({"a", "b"});
  t.add_row({"plain", "with,comma"});
  t.add_row({"with\"quote", "with\nnewline"});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"with\"\"quote\""), std::string::npos);
  EXPECT_NE(csv.find("\"with\nnewline\""), std::string::npos);
  EXPECT_EQ(csv.rfind("a,b", 0), 0u);
}

TEST(AsciiSeries, RendersOneLinePerPoint) {
  const std::string text = ascii_series({0.0, 1.0, 2.0}, {0.0, 0.5, 1.0});
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 3);
  EXPECT_NE(text.find('#'), std::string::npos);
}

TEST(AsciiSeries, EmptyAndMismatch) {
  EXPECT_EQ(ascii_series({}, {}), "");
  EXPECT_THROW((void)ascii_series({1.0}, {}), std::invalid_argument);
}

TEST(AsciiSeries, FlatSeriesDoesNotDivideByZero) {
  const std::string text = ascii_series({0.0, 1.0}, {3.0, 3.0});
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 2);
}

}  // namespace
}  // namespace strat::sim
