// WorkerPool contract: persistent threads reused across run() calls,
// inline fallbacks for degenerate and nested jobs, exception capture
// with the pool still usable afterwards, and clean teardown (no thread
// leaks across construct/destroy cycles). The TSan CI job runs this
// binary, so the claim loop and job publication are exercised under a
// race detector, not just asserted.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "sim/worker_pool.hpp"

namespace strat::sim {
namespace {

TEST(WorkerPool, RunsEveryTaskExactlyOnce) {
  WorkerPool pool;
  const std::size_t tasks = 311;
  std::vector<std::atomic<int>> hits(tasks);
  pool.run(tasks, 8, [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < tasks; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "task " << i;
  }
}

TEST(WorkerPool, ReusesThreadsAcrossRuns) {
  WorkerPool pool;
  EXPECT_EQ(pool.spawned(), 0u) << "construction must not spawn";
  pool.run(64, 4, [](std::size_t) {});
  const std::size_t after_first = pool.spawned();
  EXPECT_GE(after_first, 1u);
  EXPECT_LE(after_first, 3u) << "caller participates; at most max_workers - 1 pool threads";
  // Many further runs at the same width must not grow the pool — that
  // is the whole point of keeping it persistent.
  for (int round = 0; round < 50; ++round) {
    pool.run(64, 4, [](std::size_t) {});
    EXPECT_EQ(pool.spawned(), after_first) << "round " << round;
  }
  // A wider request may grow it, a narrower one never shrinks it.
  pool.run(64, 6, [](std::size_t) {});
  const std::size_t after_wide = pool.spawned();
  EXPECT_GE(after_wide, after_first);
  pool.run(64, 2, [](std::size_t) {});
  EXPECT_EQ(pool.spawned(), after_wide);
}

TEST(WorkerPool, DegenerateJobsRunInlineInOrder) {
  WorkerPool pool;
  std::vector<std::size_t> order;
  const std::thread::id caller = std::this_thread::get_id();
  // tasks <= 1 and max_workers <= 1 both bypass the pool entirely: the
  // body runs on the calling thread and no workers are ever spawned.
  pool.run(0, 8, [&](std::size_t i) { order.push_back(i); });
  EXPECT_TRUE(order.empty());
  pool.run(1, 8, [&](std::size_t i) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    order.push_back(i);
  });
  pool.run(5, 1, [&](std::size_t i) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    order.push_back(i);
  });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 0, 1, 2, 3, 4}));
  EXPECT_EQ(pool.spawned(), 0u);
}

TEST(WorkerPool, NestedRunExecutesInline) {
  WorkerPool pool;
  std::atomic<int> inner_calls{0};
  std::atomic<int> mismatched_thread{0};
  pool.run(8, 4, [&](std::size_t) {
    const std::thread::id outer = std::this_thread::get_id();
    // A run() issued from inside a pool task must not hand work to
    // other workers (deadlock/over-subscription risk); it degrades to
    // an inline loop on the same thread.
    pool.run(16, 4, [&](std::size_t) {
      ++inner_calls;
      if (std::this_thread::get_id() != outer) ++mismatched_thread;
    });
  });
  EXPECT_EQ(inner_calls.load(), 8 * 16);
  EXPECT_EQ(mismatched_thread.load(), 0);
}

TEST(WorkerPool, PropagatesFirstExceptionAndStaysUsable) {
  WorkerPool pool;
  std::vector<std::atomic<int>> hits(32);
  EXPECT_THROW(pool.run(32, 4,
                        [&](std::size_t i) {
                          ++hits[i];
                          if (i % 2 == 0) throw std::runtime_error("boom");
                        }),
               std::runtime_error);
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "remaining tasks must still run after a throw";
  }
  // The failed job must not wedge the workers: the next run completes.
  std::atomic<int> ok{0};
  pool.run(32, 4, [&](std::size_t) { ++ok; });
  EXPECT_EQ(ok.load(), 32);
}

TEST(WorkerPool, TasksSpreadAcrossThreads) {
  WorkerPool pool;
  std::mutex mu;
  std::set<std::thread::id> seen;
  // Slow tasks so the atomic claim counter cannot be drained by one
  // thread before the others wake. 8 workers on any core count — the
  // pool intentionally over-subscribes so TSan sees real interleavings.
  pool.run(64, 8, [&](std::size_t) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    const std::lock_guard<std::mutex> lock(mu);
    seen.insert(std::this_thread::get_id());
  });
  EXPECT_GE(seen.size(), 2u);
  EXPECT_LE(seen.size(), 8u);
}

TEST(WorkerPool, ConstructDestroyCyclesDoNotLeakOrHang) {
  // Each pool joins its threads in the destructor; cycling many pools
  // through real multi-worker jobs must terminate promptly (a leaked
  // or wedged worker would hang the join and time the test out).
  for (int cycle = 0; cycle < 20; ++cycle) {
    WorkerPool pool;
    std::atomic<int> calls{0};
    pool.run(32, 4, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls.load(), 32);
    EXPECT_GE(pool.spawned(), 1u);
  }
}

TEST(WorkerPool, SharedPoolIsASingleton) {
  WorkerPool& a = WorkerPool::shared();
  WorkerPool& b = WorkerPool::shared();
  EXPECT_EQ(&a, &b);
  std::atomic<int> calls{0};
  a.run(16, 4, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 16);
}

}  // namespace
}  // namespace strat::sim
