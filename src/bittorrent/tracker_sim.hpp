// Tracker-scale ecosystem simulation: N swarms, one tracker.
//
// TrackerSim owns a fleet of Swarm instances — each with its own
// structural Rng and ChurnDriver — and advances the whole ecosystem in
// lockstep rounds. Each round has two phases:
//
//  1. A serial barrier phase (the "tracker"): prune departed
//     memberships from the global PeerRegistry, re-split multi-torrent
//     peers' capacities across their surviving memberships, and admit
//     ecosystem-level arrivals — a single Poisson process whose
//     arrivals pick swarms from a Zipf popularity distribution and
//     whose per-arrival randomness (capacity draw, multi-torrent coin,
//     swarm picks) comes from counter-based streams keyed by (tracker
//     key, global peer id, round), the PR-5 recipe lifted to ecosystem
//     level: no arrival's draws depend on how many arrivals precede it
//     in the same round.
//  2. A sharded round phase: swarm k belongs to shard k % shards (a
//     deterministic key, not a load balancer), and each shard runs its
//     swarms' rounds in ascending k over sim::WorkerPool. Intra-swarm
//     `threads` is forced to 1 under sharding so the pool is never
//     oversubscribed: the parallel unit is the whole swarm round.
//
// Determinism contract, one level up from Swarm's: every swarm's round
// touches only its own slot (swarm + driver + rng), every cross-swarm
// decision happens in the serial barrier, and shard wall-times go to
// per-shard slots — so results are bitwise identical at any `shards`
// value, and a closed (no-churn) member swarm is bitwise identical to
// the same Swarm run standalone with Rng(seed + stride * (k+1)).
// test_tracker_sim proves both differentials, at 10^3 swarms included.
//
// Capacity-split semantics: a peer in m swarms brings
// membership_capacity_share(kbps, m, j) to its j-th membership — every
// membership gets kbps/m except the last, which absorbs the exact
// remainder, so the shares always sum to kbps bit-exactly. When
// dynamic_capacity_split is on, the barrier re-splits after each
// departure, so a multi-torrent peer whose other swarm ends regains
// its full capacity the next round.
//
// Scale: memory is O(live) end to end — PeerTable per swarm, a pruned
// registry at the tracker — so 10^3 swarms / 10^5..10^6 cumulative
// arrivals run flat; BM_TrackerSimShards measures round throughput and
// shard imbalance across shards 1/2/4/8 × swarms 10/100/1000.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <iosfwd>
#include <memory>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "bittorrent/autosave.hpp"
#include "bittorrent/bandwidth.hpp"
#include "bittorrent/scenario.hpp"
#include "bittorrent/swarm.hpp"
#include "core/types.hpp"
#include "graph/rng.hpp"

namespace strat::bt {

/// Ecosystem-wide peer identifier. Each member swarm still speaks its
/// own local core::PeerId space; the PeerRegistry maps between them.
using GlobalPeerId = core::PeerId;

/// "STRATTRK" — the tracker header section's magic (the per-swarm
/// STRATSWM/STRATCHN sections follow it on the same stream).
inline constexpr std::uint64_t kTrackerMagic = 0x535452415454524BULL;

/// Seed offset per member swarm (SplitMix64 increment): member swarm k
/// draws from Rng(seed + kTrackerSwarmSeedStride * (k+1)) — the same
/// derivation run_multi_swarm() has always used, which is what makes
/// the standalone-Swarm differential possible.
inline constexpr std::uint64_t kTrackerSwarmSeedStride = 0x9E3779B97F4A7C15ULL;

/// Share of a peer's capacity its j-th of m memberships receives:
/// kbps/m for all but the last membership, which absorbs the exact
/// remainder — so the shares sum to kbps bit-exactly for any m (for
/// the common m == 2 the remainder equals kbps/2 exactly whenever
/// kbps/2 is exact, by Sterbenz's lemma). Conservation is an invariant
/// the capacity-split tests assert with operator==, not a tolerance.
[[nodiscard]] inline double membership_capacity_share(double kbps, std::size_t memberships,
                                                      std::size_t index) {
  const auto m = static_cast<double>(memberships);
  const double even = kbps / m;
  if (index + 1 < memberships) return even;
  double others = 0.0;
  for (std::size_t j = 0; j + 1 < memberships; ++j) others += even;
  return kbps - others;
}

/// One member swarm's construction recipe: a per-swarm config plus the
/// global ids of its initial population (in local-id order — member j
/// becomes local peer j). num_peers is overridden with members.size()
/// and threads is forced to 1 (the shard loop owns the parallelism).
struct TrackerSwarmSeed {
  SwarmConfig config;
  std::vector<GlobalPeerId> members;
};

/// Ecosystem-level knobs.
struct TrackerConfig {
  /// Worker shards for the round fan-out (0 = one per hardware
  /// thread). A runtime knob, not simulation state: results are
  /// bitwise identical at any value, and save()/resume() round-trips
  /// across different shard counts.
  std::size_t shards = 1;

  /// Mean fresh peers per round across the whole ecosystem (Poisson;
  /// 0 = closed system). Requires arrival_model when > 0.
  double arrival_rate = 0.0;

  /// Swarm-popularity exponent: swarm k attracts arrivals with
  /// probability proportional to (k+1)^-zipf_exponent (0 = uniform) —
  /// order the seeds most-popular-first.
  double zipf_exponent = 1.0;

  /// Probability an arrival is multi-torrent: it joins two *distinct*
  /// Zipf-picked swarms with its capacity split across them.
  double multi_torrent_fraction = 0.0;

  /// Capacity distribution for ecosystem arrivals (e.g.
  /// BandwidthModel::saroiu2002()); sampled from the arrival's
  /// counter-based stream, never from a shared sequential generator.
  std::optional<BandwidthModel> arrival_model;

  /// Swarm-local churn applied by each member swarm's ChurnDriver
  /// (lifetime departures, re-announce sweeps, arrival-completion
  /// bitfields for injected arrivals). Its arrival and replacement
  /// processes must be off — the tracker owns arrivals.
  ChurnSpec swarm_churn;

  /// Re-split multi-torrent capacities every round as memberships
  /// depart (the open-system default). false freezes the
  /// construction-time split — the historical run_multi_swarm
  /// semantics the shim relies on.
  bool dynamic_capacity_split = true;
};

/// Global peer directory: ecosystem id -> capacity + per-swarm
/// memberships. Dense storage compacted swap-with-last as peers' last
/// memberships depart (the PeerTable discipline at tracker level), so
/// the registry is O(live ecosystem peers), never O(arrivals-ever).
/// The id index is an unordered_map that is looked up and erased but
/// never iterated — no simulation decision can see its bucket order.
class PeerRegistry {
 public:
  struct Membership {
    std::uint32_t swarm = 0;
    core::PeerId local = 0;
  };
  struct Record {
    GlobalPeerId id = 0;
    double upload_kbps = 0.0;
    /// Join order; index j is the peer's j-th capacity share.
    std::vector<Membership> memberships;
  };

  /// Registers a fresh peer; ids are arrival-ordered, never recycled.
  GlobalPeerId add(double upload_kbps) {
    const GlobalPeerId g = next_id_++;
    index_.emplace(g, static_cast<std::uint32_t>(records_.size()));
    records_.push_back(Record{g, upload_kbps, {}});
    return g;
  }

  void add_membership(GlobalPeerId g, std::uint32_t swarm, core::PeerId local) {
    records_[index_.at(g)].memberships.push_back(Membership{swarm, local});
  }

  /// Live records in dense (compaction) order.
  [[nodiscard]] std::span<const Record> records() const noexcept { return records_; }
  [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }
  /// One past the largest id ever issued (= cumulative arrivals).
  [[nodiscard]] GlobalPeerId id_space() const noexcept { return next_id_; }
  [[nodiscard]] const Record* find(GlobalPeerId g) const {
    const auto it = index_.find(g);
    return it == index_.end() ? nullptr : &records_[it->second];
  }

  /// Visits every record in dense order; `edit` may mutate the record
  /// and returns true to drop it (swap-with-last). The visit history —
  /// and therefore the surviving dense order — is deterministic.
  template <typename EditFn>
  void prune(EditFn&& edit) {
    std::size_t i = 0;
    while (i < records_.size()) {
      if (!edit(records_[i])) {
        ++i;
        continue;
      }
      index_.erase(records_[i].id);
      if (i + 1 != records_.size()) {
        records_[i] = std::move(records_.back());
        index_[records_[i].id] = static_cast<std::uint32_t>(i);
      }
      records_.pop_back();
    }
  }

  /// Snapshot loader: re-seats a serialized record list verbatim.
  /// Throws std::invalid_argument on duplicate ids, ids outside
  /// [0, id_space), or membership-less records.
  void restore(std::vector<Record> records, GlobalPeerId id_space);

 private:
  std::vector<Record> records_;
  /// id -> dense index of live records. Never iterated (strat-lint R1).
  std::unordered_map<GlobalPeerId, std::uint32_t> index_;
  GlobalPeerId next_id_ = 0;
};

/// Ecosystem aggregates: the paper's stratification statistic per
/// swarm, cross-referenced against the *global* capacity distribution,
/// plus the ecosystem completion-time CDF.
struct EcosystemReport {
  struct SwarmSummary {
    std::size_t live_peers = 0;
    std::size_t arrivals = 0;
    std::size_t departures = 0;
    std::size_t completed_leechers = 0;
    double partner_rank_correlation = 0.0;
    std::size_t reciprocated_pairs = 0;
    /// Peers currently running degraded (waiting out announce backoff).
    std::size_t degraded_peers = 0;
  };
  std::vector<SwarmSummary> per_swarm;
  /// Fault-injection totals summed over member swarms (all zero with
  /// faults disabled): announces lost to outages, backoff retries,
  /// connects abandoned after the attempt budget, inbound connects
  /// refused by NAT-ed peers, transfer lanes whose bytes were dropped.
  std::uint64_t fault_failed_announces = 0;
  std::uint64_t fault_retries = 0;
  std::uint64_t fault_connect_failures = 0;
  std::uint64_t fault_nat_rejections = 0;
  std::uint64_t fault_lost_lanes = 0;
  /// Degraded peers summed over member swarms right now.
  std::size_t degraded_peers = 0;
  /// Mean per-swarm correlation weighted by reciprocated pairs.
  double mean_partner_rank_correlation = 0.0;
  std::size_t live_registry_peers = 0;
  std::size_t live_memberships = 0;
  /// Mean per-membership leech rate by *global* capacity decile over
  /// live registry peers (decile 0 = fastest tenth of the ecosystem) —
  /// stratification against the ecosystem-wide bandwidth distribution,
  /// not any single swarm's.
  std::array<double, 10> decile_leech_kbps{};
  /// Completion-time CDF: p10..p90 of completion rounds over every
  /// leecher that ever completed in any member swarm.
  std::array<double, 9> completion_round_deciles{};
  std::size_t completed_leechers = 0;
};

/// Where the ecosystem's wall-clock went. `swarms` sums the member
/// swarms' own phase profiles (CPU work, additive across shards);
/// the shard_* fields describe the fan-out itself: shard_seconds is
/// the critical path (sum over rounds of the slowest shard's wall) and
/// shard_imbalance_seconds the sum of (max - min) shard wall per round
/// — the headroom a better shard key could still reclaim.
struct EcosystemProfile {
  Swarm::PhaseProfile swarms;
  double barrier_seconds = 0.0;
  double shard_seconds = 0.0;
  double shard_imbalance_seconds = 0.0;
  std::size_t rounds = 0;
};

/// The tracker. See the file comment for the phase structure and the
/// determinism contract.
class TrackerSim {
 public:
  /// `member_upload_kbps` holds one ecosystem-wide capacity per
  /// distinct initial peer, indexed by global id; every id in
  /// [0, member_upload_kbps.size()) must appear in >= 1 seed's member
  /// list (and at most once per swarm). Swarm k's Rng is seeded
  /// seed + kTrackerSwarmSeedStride * (k+1); the tracker's own
  /// generator (arrival counts) is seeded `seed`, and its first draw
  /// becomes the key of the per-arrival counter streams.
  TrackerSim(const TrackerConfig& cfg, std::vector<TrackerSwarmSeed> seeds,
             const std::vector<double>& member_upload_kbps, std::uint64_t seed);

  TrackerSim(TrackerSim&&) = default;
  TrackerSim& operator=(TrackerSim&&) = default;

  /// One ecosystem round: serial barrier (registry prune, capacity
  /// re-split, arrivals), then every member swarm's round, sharded.
  void run_round();
  void run(std::size_t rounds);

  /// Clears every member swarm's stratification window (warm-up /
  /// measurement split, as in run_scenario).
  void reset_stratification();

  [[nodiscard]] std::size_t swarm_count() const noexcept { return swarms_.size(); }
  [[nodiscard]] const Swarm& swarm(std::size_t k) const;
  [[nodiscard]] const PeerRegistry& registry() const noexcept { return registry_; }
  [[nodiscard]] std::size_t rounds_elapsed() const noexcept { return round_; }
  /// Live peers summed over member swarms (multi-torrent peers count
  /// once per membership; registry().size() counts them once).
  [[nodiscard]] std::size_t live_membership_count() const;

  [[nodiscard]] EcosystemReport ecosystem_report() const;
  [[nodiscard]] EcosystemProfile ecosystem_profile() const;

  /// Serializes the whole ecosystem onto one stream: a checksummed
  /// tracker header section (round counter, arrival-stream key,
  /// tracker generator, registry), then each member swarm's STRATSWM
  /// snapshot followed by its driver's STRATCHN companion, in swarm
  /// order. Call between rounds only. Two trackers in lockstep emit
  /// identical bytes regardless of their shard counts — the byte
  /// equality the shard differential tests assert.
  void save(std::ostream& out) const;

  /// Restores a save()d ecosystem. `cfg` is a construction input, not
  /// state (the ChurnDriver restore() precedent): pass the same
  /// arrival/churn semantics or the continued run diverges — but
  /// `shards` is free, and the resumed run is bitwise-equal to the
  /// uninterrupted one at any value. Throws SnapshotError on bad
  /// magic/version, truncation, checksum failure, or any structurally
  /// inconsistent registry (every id and membership is bounds-checked
  /// against the restored swarms before wiring).
  [[nodiscard]] static TrackerSim resume(std::istream& in, const TrackerConfig& cfg);

  /// Arms periodic crash-safe checkpoints: every `every` rounds,
  /// run_round() serializes the whole ecosystem through save() and
  /// publishes it under `dir` via temp-file + atomic rename, keeping
  /// the newest `keep` generations (see autosave.hpp). Host-side
  /// policy, not simulation state: snapshots don't carry it, and it
  /// never affects results.
  void autosave_every(std::size_t every, const std::filesystem::path& dir, std::size_t keep = 3);

 private:
  /// One member swarm: the structural Rng at a stable heap-slot
  /// address (Swarm and ChurnDriver hold references into it — the
  /// ResumedSwarm pattern), the swarm, and its churn driver.
  struct SwarmSlot {
    graph::Rng rng;
    std::optional<Swarm> swarm;
    std::optional<ChurnDriver<Swarm>> driver;
  };

  /// Resume shell: binds the config, leaves the rest to resume().
  explicit TrackerSim(const TrackerConfig& cfg);

  static void validate_config(const TrackerConfig& cfg);
  void build_zipf();
  [[nodiscard]] std::uint32_t zipf_pick(graph::Rng& stream) const;
  [[nodiscard]] std::size_t resolve_shards() const;
  /// Barrier phase 1: drop departed memberships, compact the registry,
  /// re-split surviving multi-torrent capacities.
  void maintain_registry();
  /// Barrier phase 2: ecosystem Poisson arrivals.
  void admit_arrivals();
  void admit_one();

  // strat-lint: not-serialized -- construction input; resume() takes the
  // same config again (the ChurnDriver spec/pool precedent).
  TrackerConfig cfg_;
  std::vector<std::unique_ptr<SwarmSlot>> swarms_;
  PeerRegistry registry_;
  /// Key of the per-arrival counter streams: the tracker generator's
  /// first draw, mirroring Swarm's choke_key_ derivation.
  std::uint64_t tracker_key_ = 0;
  /// Serial tracker generator — arrival *counts* only; everything
  /// per-arrival comes from Rng::stream(tracker_key_, id, round).
  graph::Rng tracker_rng_;
  std::size_t round_ = 0;
  // strat-lint: not-serialized -- derived from cfg_ and swarm count,
  // rebuilt by build_zipf() on both construction paths.
  std::vector<double> zipf_cdf_;
  // strat-lint: not-serialized -- per-round wall-clock scratch, one slot
  // per shard (each shard writes only its own).
  std::vector<double> shard_wall_;
  // strat-lint: not-serialized -- profiling accumulators; like Swarm's
  // profile_, a resumed run restarts its timers at zero yet stays
  // bitwise-identical.
  double barrier_seconds_ = 0.0;
  // strat-lint: not-serialized -- profiling accumulator (see above)
  double shard_seconds_ = 0.0;
  // strat-lint: not-serialized -- profiling accumulator (see above)
  double shard_imbalance_seconds_ = 0.0;
  // strat-lint: not-serialized -- host-side checkpoint policy
  // (autosave_every), never simulation state; a resumed run re-arms it.
  std::optional<Autosaver> autosaver_;
};

/// Crash recovery for a tracker ecosystem: resumes from the newest
/// autosave generation under `dir` that passes resume()'s full
/// validation, falling back past corrupt or truncated generations.
/// Returns nullopt when none loads. `cfg` follows the resume()
/// contract (construction input, `shards` free). Implemented in
/// autosave.cpp.
[[nodiscard]] std::optional<TrackerSim> recover_latest_tracker(const std::filesystem::path& dir,
                                                               const TrackerConfig& cfg);

}  // namespace strat::bt
