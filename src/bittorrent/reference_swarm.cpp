#include "bittorrent/reference_swarm.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "graph/erdos_renyi.hpp"
#include "sim/stats.hpp"

namespace strat::bt {

ReferenceSwarm::ReferenceSwarm(const SwarmConfig& config, std::vector<double> upload_kbps,
                               graph::Rng& rng)
    : config_(config),
      rng_(rng),
      picker_(config.num_pieces),
      reserved_scratch_(config.num_pieces),
      leechers_(config.num_peers) {
  if (upload_kbps.size() != config.num_peers) {
    throw std::invalid_argument("ReferenceSwarm: one upload capacity per leecher required");
  }
  if (config.num_peers < 2) throw std::invalid_argument("ReferenceSwarm: need at least 2 peers");
  if (config.num_pieces == 0 || config.piece_kb <= 0.0) {
    throw std::invalid_argument("ReferenceSwarm: pieces must be positive");
  }
  if (config.initial_completion < 0.0 || config.initial_completion >= 1.0) {
    throw std::invalid_argument("ReferenceSwarm: initial_completion in [0, 1)");
  }
  if (!config.tft_slots_per_peer.empty() &&
      config.tft_slots_per_peer.size() != config.num_peers) {
    throw std::invalid_argument("ReferenceSwarm: tft_slots_per_peer needs one entry per leecher");
  }
  if (!config.retain_departed) {
    // The oracle keeps every peer's state forever by design; accepting
    // the flag would silently diverge from the flat plane's
    // aggregates-only semantics (dropped retired pairs, live-only rank
    // normalization) and break the bitwise differential contract.
    throw std::invalid_argument("ReferenceSwarm: retain_departed=false is unsupported");
  }
  const FaultSpec& fspec = config.faults;
  if (fspec.connect_failure_prob < 0.0 || fspec.connect_failure_prob > 1.0 ||
      fspec.nat_fraction < 0.0 || fspec.nat_fraction > 1.0 || fspec.lane_loss_prob < 0.0 ||
      fspec.lane_loss_prob > 1.0) {
    throw std::invalid_argument("ReferenceSwarm: fault probabilities must be in [0, 1]");
  }
  if (fspec.connect_attempts == 0) {
    throw std::invalid_argument("ReferenceSwarm: faults.connect_attempts must be >= 1");
  }
  if (fspec.backoff_base == 0 || fspec.backoff_cap < fspec.backoff_base) {
    throw std::invalid_argument("ReferenceSwarm: faults.backoff_cap >= backoff_base >= 1 required");
  }
  // Same single structural draw as Swarm, at the same point, so both
  // planes key identical per-peer choke streams.
  choke_key_ = rng();
  const std::size_t total = config.num_peers + config.seeds;
  overlay_ = graph::erdos_renyi_gnd(total, config.neighbor_degree, rng);
  stats_.resize(total);
  have_.assign(total, Bitfield(config.num_pieces));
  chokers_.reserve(total);
  for (std::size_t p = 0; p < total; ++p) {
    const std::size_t slots = (p < config.num_peers && !config.tft_slots_per_peer.empty())
                                  ? config.tft_slots_per_peer[p]
                                  : config.tft_slots;
    chokers_.emplace_back(slots, config.optimistic_rounds);
  }
  unchoked_.resize(total);
  received_rate_.resize(total);
  received_now_.resize(total);
  sent_rate_.resize(total);
  sent_now_.resize(total);
  partial_.resize(total);
  inflight_.resize(total);
  departed_.assign(total, false);
  for (std::size_t p = 0; p < total; ++p) table_.add(static_cast<core::PeerId>(p));
  // Same NAT membership draws as the flat plane (counter streams keyed
  // by external id; zero draws when the NAT fraction is off). Filled
  // before the init walk below, which can depart complete leechers.
  for (std::size_t p = 0; p < total; ++p) {
    const bool nat =
        fspec.nat_fraction > 0.0 &&
        graph::Rng::stream(choke_key_ ^ kFaultNatSalt, static_cast<core::PeerId>(p), 0)
            .bernoulli(fspec.nat_fraction);
    faults_.add_peer(nat);
  }

  double seed_capacity = config.seed_upload_kbps;
  if (seed_capacity <= 0.0) {
    std::vector<double> sorted = upload_kbps;
    std::sort(sorted.begin(), sorted.end());
    seed_capacity = sorted[sorted.size() / 2];
  }
  for (std::size_t p = 0; p < total; ++p) {
    const bool is_seed = p >= config.num_peers;
    stats_[p].seed = is_seed;
    stats_[p].upload_kbps = is_seed ? seed_capacity : upload_kbps[p];
    if (is_seed) {
      for (PieceId piece = 0; piece < config.num_pieces; ++piece) {
        have_[p].set(piece);
        picker_.add_availability(piece);
      }
      stats_[p].pieces = config.num_pieces;
      stats_[p].completion_round = 0.0;
    } else if (config.post_flashcrowd) {
      for (PieceId piece = 0; piece < config.num_pieces; ++piece) {
        if (rng.bernoulli(config.initial_completion)) {
          have_[p].set(piece);
          picker_.add_availability(piece);
        }
      }
      stats_[p].pieces = have_[p].count();
      if (have_[p].complete()) {
        stats_[p].completion_round = 0.0;
        if (!config.stay_as_seed) depart_peer(static_cast<core::PeerId>(p), 0.0);
      }
    }
  }
  leechers_ = detail::rebuild_bandwidth_ranks(stats_, bandwidth_rank_);
}

std::size_t ReferenceSwarm::target_degree() const {
  return static_cast<std::size_t>(std::llround(config_.neighbor_degree));
}

std::size_t ReferenceSwarm::connect_random_live(core::PeerId p, std::size_t need) {
  const std::size_t made = detail::announce_connect(
      table_.ids(), p, need, rng_,
      [&](core::PeerId q) { return overlay_.has_edge(p, q); },
      [&](core::PeerId q) { overlay_.add_edge(p, q); });
  // finalize() re-sorts every adjacency list, not just the touched
  // rows — O(|V|) per join/re-announce. Acceptable at the oracle scale
  // this plane runs at; the flat plane's sorted inserts are the fast
  // path.
  overlay_.finalize();
  return made;
}

std::size_t ReferenceSwarm::announce_with_faults(core::PeerId p, std::size_t need) {
  if (!config_.faults.flaky_connects()) return connect_random_live(p, need);
  // Same trial stream as the flat plane: keyed by the per-peer announce
  // sequence number (id-indexed here, row-indexed there — same peer,
  // same count, same draws).
  graph::Rng trials =
      graph::Rng::stream(choke_key_ ^ kFaultConnectSalt, p, faults_.announce_seq_[p]++);
  const double fail_prob = config_.faults.connect_failure_prob;
  const std::size_t max_attempts = config_.faults.connect_attempts;
  const std::size_t made = detail::announce_connect_faulty(
      table_.ids(), p, need, rng_,
      [&](core::PeerId q) { return overlay_.has_edge(p, q); },
      [&](core::PeerId q) {
        if (!faults_.rejects_inbound(q)) return false;
        ++faults_.nat_rejections_;
        return true;
      },
      [&](core::PeerId) {
        if (fail_prob <= 0.0) return true;
        for (std::size_t a = 0; a < max_attempts; ++a) {
          if (!trials.bernoulli(fail_prob)) return true;
        }
        ++faults_.connect_failures_;
        return false;
      },
      [&](core::PeerId q) { overlay_.add_edge(p, q); });
  overlay_.finalize();
  return made;
}

void ReferenceSwarm::fault_step() {
  const FaultSpec& fspec = config_.faults;
  if (!fspec.outages()) return;
  const bool down = fspec.tracker_down(round_);
  const std::size_t target = target_degree();
  // Identical walk to Swarm::fault_step: the shared table's ascending
  // row order, state looked up by external id.
  for (PeerTable::Row r = 0; r < table_.size(); ++r) {
    const core::PeerId p = table_.id_at(r);
    if (!faults_.retry_pending(p) || faults_.retry_round_[p] > round_) continue;
    ++faults_.announce_retries_;
    if (down) {
      faults_.fail_announce(p, round_, fspec);
      continue;
    }
    faults_.reset_retry(p);
    if (overlay_.degree(p) < target) {
      announce_with_faults(p, target - overlay_.degree(p));
    }
  }
}

core::PeerId ReferenceSwarm::join(double upload_kbps, const Bitfield& have) {
  if (have.size() != config_.num_pieces) {
    throw std::invalid_argument("ReferenceSwarm::join: bitfield size mismatch");
  }
  if (upload_kbps <= 0.0) {
    throw std::invalid_argument("ReferenceSwarm::join: capacity must be positive");
  }
  const core::PeerId p = overlay_.grow(1);
  stats_.emplace_back();
  stats_[p].upload_kbps = upload_kbps;
  stats_[p].join_round = static_cast<double>(round_);
  stats_[p].pieces = have.count();
  have_.push_back(have);
  picker_.add_bitfield(have);
  chokers_.emplace_back(config_.tft_slots, config_.optimistic_rounds);
  unchoked_.emplace_back();
  received_rate_.emplace_back();
  received_now_.emplace_back();
  sent_rate_.emplace_back();
  sent_now_.emplace_back();
  partial_.emplace_back();
  inflight_.emplace_back();
  departed_.push_back(false);
  table_.add(p);
  faults_.add_peer(config_.faults.nat_fraction > 0.0 &&
                   graph::Rng::stream(choke_key_ ^ kFaultNatSalt, p, 0)
                       .bernoulli(config_.faults.nat_fraction));
  ++arrivals_;
  if (config_.faults.tracker_down(round_)) {
    // Announce lost to the outage: the arrival starts with no
    // neighbors and retries on backoff, like the flat plane.
    faults_.fail_announce(p, round_, config_.faults);
  } else {
    announce_with_faults(p, target_degree());
  }
  ++leechers_;
  ranks_dirty_ = true;
  if (have_[p].complete()) {
    stats_[p].completion_round = static_cast<double>(round_);
    if (!config_.stay_as_seed) depart_peer(p, static_cast<double>(round_));
  }
  return p;
}

core::PeerId ReferenceSwarm::join(double upload_kbps) {
  return join(upload_kbps, Bitfield(config_.num_pieces));
}

void ReferenceSwarm::leave(core::PeerId p) {
  if (departed_.at(p)) return;
  depart_peer(p, static_cast<double>(round_));
}

std::size_t ReferenceSwarm::reannounce(core::PeerId p) {
  if (departed_.at(p)) return 0;
  if (config_.faults.outages()) {
    if (config_.faults.tracker_down(round_)) {
      if (!faults_.retry_pending(p)) faults_.fail_announce(p, round_, config_.faults);
      return 0;
    }
    faults_.reset_retry(p);
  }
  const std::size_t target = target_degree();
  if (overlay_.degree(p) >= target) return 0;
  return announce_with_faults(p, target - overlay_.degree(p));
}

void ReferenceSwarm::set_upload_capacity(core::PeerId p, double kbps) {
  if (p >= stats_.size()) {
    throw std::out_of_range("ReferenceSwarm::set_upload_capacity: unknown peer");
  }
  if (!(kbps > 0.0)) {
    throw std::invalid_argument(
        "ReferenceSwarm::set_upload_capacity: capacity must be positive");
  }
  if (departed_.at(p)) return;
  if (stats_[p].upload_kbps == kbps) return;
  stats_[p].upload_kbps = kbps;
  ranks_dirty_ = true;
}

bool ReferenceSwarm::wants_from(core::PeerId receiver, core::PeerId sender) const {
  return have_[receiver].interested_in(have_[sender]);
}

void ReferenceSwarm::choke_step() {
  // Table-row order, matching the flat plane's dense iteration.
  // Randomness comes from each peer's own counter-based stream, so the
  // iteration order no longer matters for the draws — but candidate
  // content (sorted neighbor lists, rates) must still match the flat
  // plane exactly. Departed peers have no row and their unchoke sets
  // were cleared at departure.
  for (PeerTable::Row r = 0; r < table_.size(); ++r) {
    const core::PeerId p = table_.id_at(r);
    std::vector<ChokeCandidate> candidates;
    const auto nbrs = overlay_.neighbors(p);
    candidates.reserve(nbrs.size());
    const bool serve_fastest = stats_[p].seed || have_[p].complete();
    // Departed peers are isolated from the overlay, so every neighbor
    // is a candidate (same invariant as the flat plane's rows).
    for (graph::Vertex vq : nbrs) {
      const auto q = static_cast<core::PeerId>(vq);
      ChokeCandidate c;
      c.peer = q;
      c.interested = wants_from(q, p);
      if (serve_fastest) {
        auto it = sent_rate_[p].find(q);
        c.score = it == sent_rate_[p].end() ? 0.0 : it->second;
      } else {
        auto it = received_rate_[p].find(q);
        c.score = it == received_rate_[p].end() ? 0.0 : it->second;
      }
      candidates.push_back(c);
    }
    graph::Rng stream = graph::Rng::stream(choke_key_, p, round_);
    unchoked_[p] = chokers_[p].select(std::move(candidates), stream);
  }
}

void ReferenceSwarm::count_incoming_unchokes() {
  // Departed peers' unchoke sets are empty, so the full id scan counts
  // exactly what the flat plane's row scan counts.
  incoming_unchokes_.assign(unchoked_.size(), 0);
  for (const auto& row : unchoked_) {
    for (const core::PeerId q : row) ++incoming_unchokes_[q];
  }
}

std::optional<PieceId> ReferenceSwarm::pick_for(core::PeerId q, core::PeerId p, graph::Rng& rng) {
  if (config_.endgame) {
    const std::size_t missing = config_.num_pieces - stats_[q].pieces;
    if (missing >= incoming_unchokes_[q]) {
      for (const PieceId piece : reserved_list_) reserved_scratch_.reset(piece);
      reserved_list_.clear();
      // Map iteration order is irrelevant: the exclusion set is a
      // bitfield, identical to the flat plane's slot scan.
      for (const auto& [sender, t] : inflight_[q]) {
        if (sender == p) continue;
        if (t != kNoPiece && !have_[q].test(t)) {
          reserved_scratch_.set(t);
          reserved_list_.push_back(t);
        }
      }
      return picker_.pick_rarest(have_[q], have_[p], reserved_scratch_, rng);
    }
  }
  return picker_.pick_rarest(have_[q], have_[p], rng);
}

std::optional<PieceId> ReferenceSwarm::plan_pick(const detail::TransferLane& lane, core::PeerId q,
                                                core::PeerId p, graph::Rng& rng) {
  bool endgame_dup = false;
  if (config_.endgame) {
    const std::size_t missing =
        config_.num_pieces - (stats_[q].pieces + lane.completed.size());
    endgame_dup = missing < incoming_unchokes_[q];
  }
  if (endgame_dup && lane.completed.empty()) {
    return picker_.pick_rarest(have_[q], have_[p], rng);
  }
  for (const PieceId piece : reserved_list_) reserved_scratch_.reset(piece);
  reserved_list_.clear();
  reserved_partials_.clear();
  // Completed-first like the flat plane: keeps lane-completed pieces
  // out of the releasable soft tier.
  for (const PieceId t : lane.completed) {
    if (reserved_scratch_.test(t)) continue;
    reserved_scratch_.set(t);
    reserved_list_.push_back(t);
  }
  if (!endgame_dup) {
    if (config_.endgame) {
      // Reservations come from the phase-start in-flight snapshot, like
      // the flat plane's plan_pick — not the live mid-phase state the old
      // serial algorithm saw.
      // strat-lint: allow(unordered-iter) -- the exclusion set is a
      // bitfield; set order is commutative, identical to the flat
      // plane's slot scan.
      for (const auto& [sender, t] : inflight_[q]) {
        if (sender == p) continue;
        if (t != kNoPiece && !have_[q].test(t)) {
          reserved_scratch_.set(t);
          reserved_list_.push_back(t);
        }
      }
    }
    // Soft tier mirroring the flat plane: partially-downloaded pieces
    // are held back from fresh picks and released only as a fallback.
    // strat-lint: allow(unordered-iter) -- commutative bitfield sets;
    // the list orders only feed reset loops.
    for (const auto& entry : partial_[q]) {
      if (reserved_scratch_.test(entry.first)) continue;
      reserved_scratch_.set(entry.first);
      reserved_list_.push_back(entry.first);
      reserved_partials_.push_back(entry.first);
    }
  }
  const auto pick = picker_.pick_rarest(have_[q], have_[p], reserved_scratch_, rng);
  if (pick || reserved_partials_.empty()) return pick;
  for (const PieceId t : reserved_partials_) reserved_scratch_.reset(t);
  return picker_.pick_rarest(have_[q], have_[p], reserved_scratch_, rng);
}

double ReferenceSwarm::partial_progress(core::PeerId q, PieceId piece) const {
  const auto it = partial_[q].find(piece);
  return it == partial_[q].end() ? 0.0 : it->second;
}

void ReferenceSwarm::complete_piece(core::PeerId p, PieceId piece) {
  have_[p].set(piece);
  picker_.add_availability(piece);
  stats_[p].pieces = have_[p].count();
  if (have_[p].complete() && stats_[p].completion_round < 0.0) {
    stats_[p].completion_round = static_cast<double>(round_ + 1);
    if (!config_.stay_as_seed && !stats_[p].seed) {
      depart_peer(p, static_cast<double>(round_ + 1));
    }
  }
}

void ReferenceSwarm::depart_peer(core::PeerId p, double when) {
  departed_[p] = true;
  stats_[p].leave_round = when;
  table_.remove(p);  // the same compaction decision as the flat plane
  ++departures_;
  picker_.remove_bitfield(have_[p]);
  partial_[p].clear();
  inflight_[p].clear();
  unchoked_[p].clear();
  // Release per-edge state on both sides, mirroring the flat plane's
  // slot recycling (the mutual_rounds_ map keeps the pair history —
  // that's the retired-record analogue).
  for (graph::Vertex vq : overlay_.neighbors(p)) {
    const auto q = static_cast<core::PeerId>(vq);
    received_rate_[q].erase(p);
    received_now_[q].erase(p);
    sent_rate_[q].erase(p);
    sent_now_[q].erase(p);
    inflight_[q].erase(p);
  }
  received_rate_[p].clear();
  received_now_[p].clear();
  sent_rate_[p].clear();
  sent_now_[p].clear();
  overlay_.isolate(p);
}

double ReferenceSwarm::send_to(core::PeerId p, core::PeerId q, double budget, graph::Rng& rng) {
  double remaining = budget;
  while (remaining > 0.0) {
    PieceId target;
    auto locked = inflight_[q].find(p);
    if (locked != inflight_[q].end() && !have_[q].test(locked->second) &&
        have_[p].test(locked->second)) {
      target = locked->second;
    } else {
      const auto pick = pick_for(q, p, rng);
      if (!pick) break;
      target = *pick;
      inflight_[q][p] = target;
    }
    double& progress = partial_[q][target];
    const double need = config_.piece_kb - progress;
    const double chunk = std::min(need, remaining);
    progress += chunk;
    remaining -= chunk;
    stats_[p].uploaded_kb += chunk;
    stats_[q].downloaded_kb += chunk;
    received_now_[q][p] += chunk;
    sent_now_[p][q] += chunk;
    if (progress >= config_.piece_kb - 1e-9) {
      partial_[q].erase(target);
      inflight_[q].erase(p);
      complete_piece(q, target);
    }
  }
  return budget - remaining;
}

void ReferenceSwarm::plan_transfers(core::PeerId p) {
  if (departed_[p]) return;
  hungry_scratch_.clear();
  for (core::PeerId q : unchoked_[p]) {
    if (departed_[q]) continue;
    if (wants_from(q, p)) hungry_scratch_.push_back(q);
  }
  if (hungry_scratch_.empty()) return;
  const std::size_t lane_count = hungry_scratch_.size();
  if (lanes_.size() < lane_count) lanes_.resize(lane_count);
  for (std::size_t i = 0; i < lane_count; ++i) {
    const core::PeerId q = hungry_scratch_[i];
    const auto locked = inflight_[q].find(p);
    const PieceId snapshot_target = locked == inflight_[q].end() ? kNoPiece : locked->second;
    // This plane has no edge slots; the lane is keyed by receiver id.
    lanes_[i].reset(q, q, 0, 0, snapshot_target);
    lanes_[i].ordinal = static_cast<std::uint32_t>(i);
  }
  const std::uint32_t grants_begin = static_cast<std::uint32_t>(grants_.size());
  graph::Rng stream = transfer_stream(p);
  const double budget = stats_[p].upload_kbps / 8.0 * config_.round_seconds;
  detail::redistribute_upload(
      budget, hungry_scratch_, next_hungry_scratch_, [&](core::PeerId q, double share) {
        detail::TransferLane* lane = nullptr;
        for (std::size_t i = 0; i < lane_count; ++i) {
          if (lanes_[i].receiver == q) {
            lane = &lanes_[i];
            break;
          }
        }
        return detail::plan_lane_send(
            config_.piece_kb, *lane, grants_, share,
            [&](PieceId t) { return have_[p].test(t); },
            [&](PieceId t) { return have_[q].test(t); },
            [&](PieceId t) { return partial_progress(q, t); },
            [&](const detail::TransferLane& l) { return plan_pick(l, q, p, stream); });
      });
  if (grants_.size() > grants_begin) {
    plans_.push_back({p, grants_begin, static_cast<std::uint32_t>(grants_.size()),
                      static_cast<std::uint32_t>(lane_count)});
  }
}

void ReferenceSwarm::commit_transfers() {
  // Per-lane validation and repair, exactly like the flat plane's
  // commit: group each plan's grants by plan-local lane ordinal,
  // discard a lane whose receiver departed / piece completed /
  // progress moved, apply the valid lanes' grants verbatim in planned
  // order, then re-drive each stale lane's planned KB live from the
  // per-sender repair stream. Indexing by ordinal (not a receiver
  // lookup) keeps the lane walk order — and therefore the fault
  // injection's lane-loss draw order — bit-identical to the flat
  // plane's commit_lanes_ table.
  struct CommitLane {
    core::PeerId receiver = 0;
    double kb = 0.0;
    bool used = false;
    bool stale = false;
    bool lost = false;
  };
  std::vector<CommitLane> lanes;
  for (const detail::SenderPlan& plan : plans_) {
    if (departed_[plan.sender]) continue;
    const core::PeerId p = plan.sender;
    lanes.assign(plan.lane_count, CommitLane{});
    std::size_t used_lanes = 0;
    for (std::uint32_t g = plan.begin; g != plan.end; ++g) {
      const detail::TransferGrant& grant = grants_[g];
      CommitLane& lane = lanes[grant.lane];
      if (!lane.used) {
        lane.used = true;
        ++used_lanes;
        lane.receiver = grant.receiver;
      }
      lane.kb += grant.kb;
      if (lane.stale) continue;
      lane.stale = departed_[grant.receiver] || have_[grant.receiver].test(grant.piece) ||
                   partial_progress(grant.receiver, grant.piece) != grant.base_kb;
    }
    // Same lane-loss draws as the flat plane: per-sender counter
    // stream, lane-ordinal order, stale lanes draw too.
    if (config_.faults.lossy_lanes() && used_lanes > 0) {
      graph::Rng loss = graph::Rng::stream(choke_key_ ^ kFaultLaneSalt, p, round_);
      for (CommitLane& lane : lanes) {
        if (!lane.used) continue;
        if (!loss.bernoulli(config_.faults.lane_loss_prob)) continue;
        lane.lost = true;
        ++faults_.lost_lanes_;
      }
    }
    for (std::uint32_t g = plan.begin; g != plan.end; ++g) {
      const detail::TransferGrant& grant = grants_[g];
      const core::PeerId q = grant.receiver;
      const CommitLane& lane = lanes[grant.lane];
      if (lane.stale || lane.lost) continue;
      // An earlier grant in this plan can complete and depart q; later
      // grants to it are void (same rule as the flat plane's commit).
      if (departed_[q]) continue;
      stats_[p].uploaded_kb += grant.kb;
      stats_[q].downloaded_kb += grant.kb;
      received_now_[q][p] += grant.kb;
      sent_now_[p][q] += grant.kb;
      if (grant.completes) {
        partial_[q].erase(grant.piece);
        inflight_[q].erase(p);
        complete_piece(q, grant.piece);
      } else {
        partial_[q][grant.piece] = grant.final_kb;
        inflight_[q][p] = grant.piece;
      }
    }
    // Re-drive each stale lane's planned KB against live state on the
    // per-sender repair stream: directly at its own receiver first,
    // then any budget the lane could not absorb (receiver complete or
    // departed) as a redistribution round over the live still-hungry
    // receivers (same repair rule as the flat plane's commit: early
    // completions strand no budget).
    bool any_stale = false;
    for (const CommitLane& lane : lanes) {
      // A lost lane forfeits its bytes outright — no repair (the flat
      // plane decrements its stale count the same way).
      if (lane.stale && !lane.lost) {
        any_stale = true;
        break;
      }
    }
    if (any_stale) {
      graph::Rng repairs = rerun_stream(p);
      double leftover = 0.0;
      for (const CommitLane& lane : lanes) {
        if (!lane.stale || lane.lost) continue;
        leftover += lane.kb - send_to(p, lane.receiver, lane.kb, repairs);
      }
      if (leftover > kBudgetEpsilon) {
        hungry_scratch_.clear();
        for (core::PeerId q : unchoked_[p]) {
          if (departed_[q]) continue;
          if (wants_from(q, p)) hungry_scratch_.push_back(q);
        }
        if (!hungry_scratch_.empty()) {
          detail::redistribute_upload(
              leftover, hungry_scratch_, next_hungry_scratch_,
              [&](core::PeerId q, double share) { return send_to(p, q, share, repairs); });
        }
      }
    }
  }
}

void ReferenceSwarm::transfer_step() {
  // Sender-order snapshot by external id in table-row order, exactly
  // like the flat plane. The planning pass never mutates shared state
  // (the flat plane runs it across worker chunks); the commit pass
  // replays plans in the same sender order and re-runs conflicted
  // senders serially.
  order_scratch_.assign(table_.ids().begin(), table_.ids().end());
  grants_.clear();
  plans_.clear();
  for (const core::PeerId p : order_scratch_) plan_transfers(p);
  commit_transfers();
}

void ReferenceSwarm::run_round() {
  fault_step();
  choke_step();
  if (config_.endgame) count_incoming_unchokes();
  for (PeerTable::Row r = 0; r < table_.size(); ++r) {
    const core::PeerId p = table_.id_at(r);
    if (!is_leecher(p) || have_[p].complete()) continue;
    for (core::PeerId q : unchoked_[p]) {
      if (q <= p || !is_leecher(q) || have_[q].complete()) continue;
      const auto& back = unchoked_[q];
      if (std::find(back.begin(), back.end(), p) != back.end()) {
        const std::uint64_t key = (static_cast<std::uint64_t>(p) << 32) | q;
        ++mutual_rounds_[key];
      }
    }
  }
  transfer_step();
  const double alpha = config_.rate_smoothing;
  auto fold = [&](std::unordered_map<core::PeerId, double>& rate,
                  std::unordered_map<core::PeerId, double>& now) {
    // strat-lint: allow(unordered-iter) -- each key's smoothing update is
    // independent of every other key's, so visit order cannot change any
    // stored value; no RNG is drawn and nothing order-dependent follows.
    for (auto& [peer, kb] : rate) {
      auto it = now.find(peer);
      const double fresh = it == now.end() ? 0.0 : it->second;
      kb = alpha * fresh + (1.0 - alpha) * kb;
      if (it != now.end()) now.erase(it);
    }
    // strat-lint: allow(unordered-iter) -- per-key inserts into a distinct
    // map; the resulting contents are order-independent.
    for (const auto& [peer, kb] : now) rate[peer] = alpha * kb;
    now.clear();
  };
  for (std::size_t p = 0; p < stats_.size(); ++p) {
    fold(received_rate_[p], received_now_[p]);
    fold(sent_rate_[p], sent_now_[p]);
  }
  ++round_;
}

void ReferenceSwarm::run(std::size_t rounds) {
  for (std::size_t r = 0; r < rounds; ++r) run_round();
}

std::size_t ReferenceSwarm::completed_leechers() const {
  std::size_t done = 0;
  for (core::PeerId p = 0; p < stats_.size(); ++p) {
    if (is_leecher(p) && have_[p].complete()) ++done;
  }
  return done;
}

double ReferenceSwarm::leech_download_kbps(core::PeerId p) const {
  const PeerStats& s = stats_.at(p);
  const double end = s.completion_round >= 0.0
                         ? s.completion_round
                         : (s.leave_round >= 0.0 ? s.leave_round : static_cast<double>(round_));
  const double rounds = end - s.join_round;
  if (rounds <= 0.0) return 0.0;
  return s.downloaded_kb * 8.0 / (rounds * config_.round_seconds);
}

Swarm::AvailabilityStats ReferenceSwarm::availability_stats() const {
  Swarm::AvailabilityStats out;
  const std::size_t pieces = config_.num_pieces;
  if (pieces == 0) return out;
  out.min = picker_.availability(0);
  out.max = out.min;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (PieceId piece = 0; piece < pieces; ++piece) {
    const std::uint32_t a = picker_.availability(piece);
    out.min = std::min(out.min, a);
    out.max = std::max(out.max, a);
    sum += static_cast<double>(a);
    sum_sq += static_cast<double>(a) * static_cast<double>(a);
  }
  out.mean = sum / static_cast<double>(pieces);
  const double variance = sum_sq / static_cast<double>(pieces) - out.mean * out.mean;
  out.coefficient_of_variation =
      out.mean > 0.0 ? std::sqrt(std::max(0.0, variance)) / out.mean : 0.0;
  return out;
}

void ReferenceSwarm::refresh_ranks() const {
  if (!ranks_dirty_) return;
  detail::rebuild_bandwidth_ranks(stats_, bandwidth_rank_);
  ranks_dirty_ = false;
}

StratificationReport ReferenceSwarm::stratification() const {
  refresh_ranks();
  StratificationReport report;
  report.reciprocated_pairs = mutual_rounds_.size();
  if (mutual_rounds_.empty() || leechers_ < 3) return report;

  // Iterate pairs in sorted (p, q) order so the floating-point
  // accumulation order matches the flat implementation exactly.
  // strat-lint: allow(unordered-iter) -- copied then sorted on the next
  // line; the FP accumulation below walks the sorted copy only.
  std::vector<std::pair<std::uint64_t, std::uint32_t>> sorted(mutual_rounds_.begin(),
                                                              mutual_rounds_.end());
  std::sort(sorted.begin(), sorted.end());

  double offset_sum = 0.0;
  double weight_sum = 0.0;
  std::vector<double> partner_rank_sum(stats_.size(), 0.0);
  std::vector<double> partner_weight(stats_.size(), 0.0);
  for (const auto& [key, rounds] : sorted) {
    const auto a = static_cast<core::PeerId>(key >> 32);
    const auto b = static_cast<core::PeerId>(key & 0xFFFFFFFFu);
    const double w = static_cast<double>(rounds);
    const double ra = static_cast<double>(bandwidth_rank_[a]);
    const double rb = static_cast<double>(bandwidth_rank_[b]);
    offset_sum += w * std::abs(ra - rb) / static_cast<double>(leechers_);
    weight_sum += w;
    partner_rank_sum[a] += w * rb;
    partner_weight[a] += w;
    partner_rank_sum[b] += w * ra;
    partner_weight[b] += w;
  }
  report.mean_normalized_offset = offset_sum / weight_sum;

  std::vector<double> own;
  std::vector<double> partner;
  for (std::size_t p = 0; p < stats_.size(); ++p) {
    if (partner_weight[p] == 0.0) continue;
    own.push_back(static_cast<double>(bandwidth_rank_[p]));
    partner.push_back(partner_rank_sum[p] / partner_weight[p]);
  }
  if (own.size() >= 3) {
    report.partner_rank_correlation = sim::spearman(own, partner);
  }
  return report;
}

}  // namespace strat::bt
