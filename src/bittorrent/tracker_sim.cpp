#include "bittorrent/tracker_sim.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <istream>
#include <limits>
#include <numeric>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>

#include "bittorrent/snapshot.hpp"
#include "sim/parallel.hpp"

namespace strat::bt {

namespace {

// Tracker header section tags (the per-swarm sections carry their own).
constexpr std::uint32_t kTagTrackerMeta = 1;
constexpr std::uint32_t kTagTrackerRegistry = 2;

constexpr std::size_t kMaxSwarms = std::size_t{1} << 20;

double seconds_between(std::chrono::steady_clock::time_point a,
                       std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

}  // namespace

void PeerRegistry::restore(std::vector<Record> records, GlobalPeerId id_space) {
  std::unordered_map<GlobalPeerId, std::uint32_t> index;
  index.reserve(records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    const Record& rec = records[i];
    if (rec.id >= id_space) {
      throw std::invalid_argument("PeerRegistry::restore: id beyond id space");
    }
    if (!index.emplace(rec.id, static_cast<std::uint32_t>(i)).second) {
      throw std::invalid_argument("PeerRegistry::restore: duplicate id");
    }
    if (rec.memberships.empty()) {
      throw std::invalid_argument("PeerRegistry::restore: record without memberships");
    }
    if (!(rec.upload_kbps > 0.0)) {
      throw std::invalid_argument("PeerRegistry::restore: non-positive capacity");
    }
  }
  records_ = std::move(records);
  index_ = std::move(index);
  next_id_ = id_space;
}

void TrackerSim::validate_config(const TrackerConfig& cfg) {
  if (cfg.arrival_rate < 0.0) {
    throw std::invalid_argument("TrackerConfig: arrival_rate must be >= 0");
  }
  if (cfg.arrival_rate > 0.0 && !cfg.arrival_model.has_value()) {
    throw std::invalid_argument("TrackerConfig: arrival_model required when arrival_rate > 0");
  }
  if (cfg.zipf_exponent < 0.0) {
    throw std::invalid_argument("TrackerConfig: zipf_exponent must be >= 0");
  }
  if (cfg.multi_torrent_fraction < 0.0 || cfg.multi_torrent_fraction > 1.0) {
    throw std::invalid_argument("TrackerConfig: multi_torrent_fraction in [0, 1]");
  }
  if (cfg.swarm_churn.arrivals != ChurnSpec::Arrivals::kNone ||
      cfg.swarm_churn.replacement_rate > 0.0) {
    throw std::invalid_argument(
        "TrackerConfig: swarm_churn must not generate arrivals — the tracker owns the "
        "ecosystem arrival process (lifetime/re-announce churn is fine)");
  }
}

TrackerSim::TrackerSim(const TrackerConfig& cfg) : cfg_(cfg) { validate_config(cfg_); }

TrackerSim::TrackerSim(const TrackerConfig& cfg, std::vector<TrackerSwarmSeed> seeds,
                       const std::vector<double>& member_upload_kbps, std::uint64_t seed)
    : cfg_(cfg) {
  validate_config(cfg_);
  if (seeds.empty()) throw std::invalid_argument("TrackerSim: need at least one swarm");
  if (seeds.size() > kMaxSwarms) throw std::invalid_argument("TrackerSim: too many swarms");
  for (const double kbps : member_upload_kbps) {
    if (!(kbps > 0.0)) throw std::invalid_argument("TrackerSim: capacities must be positive");
  }

  // Membership count per global id, with per-swarm duplicate detection.
  std::vector<std::uint32_t> member_count(member_upload_kbps.size(), 0);
  std::vector<std::uint32_t> last_swarm(member_upload_kbps.size(),
                                        std::numeric_limits<std::uint32_t>::max());
  for (std::size_t k = 0; k < seeds.size(); ++k) {
    for (const GlobalPeerId g : seeds[k].members) {
      if (g >= member_upload_kbps.size()) {
        throw std::invalid_argument("TrackerSim: member id beyond the capacity list");
      }
      if (last_swarm[g] == static_cast<std::uint32_t>(k)) {
        throw std::invalid_argument("TrackerSim: peer listed twice in one swarm");
      }
      last_swarm[g] = static_cast<std::uint32_t>(k);
      ++member_count[g];
    }
  }
  for (const std::uint32_t count : member_count) {
    if (count == 0) {
      throw std::invalid_argument("TrackerSim: every listed peer must join at least one swarm");
    }
  }

  tracker_rng_ = graph::Rng(seed);
  tracker_key_ = tracker_rng_();

  for (GlobalPeerId g = 0; g < member_upload_kbps.size(); ++g) {
    registry_.add(member_upload_kbps[g]);
  }

  // Capacity-share cursor per global id: membership j of m gets share
  // j, in swarm order — the same order the registry records them.
  std::vector<std::uint32_t> seen(member_upload_kbps.size(), 0);
  swarms_.reserve(seeds.size());
  for (std::size_t k = 0; k < seeds.size(); ++k) {
    TrackerSwarmSeed& sd = seeds[k];
    SwarmConfig scfg = sd.config;
    scfg.num_peers = sd.members.size();
    scfg.threads = 1;  // the shard loop owns the parallelism
    if (!scfg.retain_departed) {
      throw std::invalid_argument(
          "TrackerSim: retain_departed=false is unsupported (ecosystem reports cover "
          "departed peers)");
    }
    std::vector<double> capacities(sd.members.size());
    for (std::size_t local = 0; local < sd.members.size(); ++local) {
      const GlobalPeerId g = sd.members[local];
      capacities[local] =
          membership_capacity_share(member_upload_kbps[g], member_count[g], seen[g]++);
    }
    auto slot = std::make_unique<SwarmSlot>();
    slot->rng = graph::Rng(seed + kTrackerSwarmSeedStride * (static_cast<std::uint64_t>(k) + 1));
    slot->swarm.emplace(scfg, std::move(capacities), slot->rng);
    slot->driver.emplace(cfg_.swarm_churn, scfg, std::vector<double>{}, slot->rng);
    slot->driver->attach(*slot->swarm);
    swarms_.push_back(std::move(slot));
    for (std::size_t local = 0; local < sd.members.size(); ++local) {
      registry_.add_membership(sd.members[local], static_cast<std::uint32_t>(k),
                               static_cast<core::PeerId>(local));
    }
  }
  build_zipf();
}

void TrackerSim::build_zipf() {
  zipf_cdf_.resize(swarms_.size());
  double total = 0.0;
  for (std::size_t k = 0; k < swarms_.size(); ++k) {
    total += std::pow(static_cast<double>(k + 1), -cfg_.zipf_exponent);
  }
  double acc = 0.0;
  for (std::size_t k = 0; k < swarms_.size(); ++k) {
    acc += std::pow(static_cast<double>(k + 1), -cfg_.zipf_exponent) / total;
    zipf_cdf_[k] = acc;
  }
  zipf_cdf_.back() = 1.0;  // guard the cumulative rounding tail
}

std::uint32_t TrackerSim::zipf_pick(graph::Rng& stream) const {
  const double u = stream.uniform();
  const auto it = std::upper_bound(zipf_cdf_.begin(), zipf_cdf_.end(), u);
  const auto ix = static_cast<std::size_t>(it - zipf_cdf_.begin());
  return static_cast<std::uint32_t>(std::min(ix, zipf_cdf_.size() - 1));
}

std::size_t TrackerSim::resolve_shards() const {
  const std::size_t requested = cfg_.shards == 0 ? sim::recommended_threads() : cfg_.shards;
  return std::max<std::size_t>(1, std::min(requested, swarms_.size()));
}

const Swarm& TrackerSim::swarm(std::size_t k) const {
  if (k >= swarms_.size()) throw std::out_of_range("TrackerSim::swarm: index out of range");
  return *swarms_[k]->swarm;
}

std::size_t TrackerSim::live_membership_count() const {
  std::size_t live = 0;
  for (const auto& slot : swarms_) live += slot->swarm->live_peer_count();
  return live;
}

void TrackerSim::maintain_registry() {
  registry_.prune([&](PeerRegistry::Record& rec) {
    std::erase_if(rec.memberships, [&](const PeerRegistry::Membership& m) {
      return swarms_[m.swarm]->swarm->departed(m.local);
    });
    return rec.memberships.empty();
  });
  if (!cfg_.dynamic_capacity_split) return;
  for (const PeerRegistry::Record& rec : registry_.records()) {
    const std::size_t m = rec.memberships.size();
    for (std::size_t j = 0; j < m; ++j) {
      const PeerRegistry::Membership& mem = rec.memberships[j];
      swarms_[mem.swarm]->swarm->set_upload_capacity(
          mem.local, membership_capacity_share(rec.upload_kbps, m, j));
    }
  }
}

void TrackerSim::admit_arrivals() {
  if (cfg_.arrival_rate <= 0.0) return;
  const std::uint64_t n = tracker_rng_.poisson(cfg_.arrival_rate);
  for (std::uint64_t i = 0; i < n; ++i) admit_one();
}

void TrackerSim::admit_one() {
  // Counter-based stream keyed by (tracker key, global id, round): the
  // arrival's capacity and swarm choices are a pure function of who it
  // is and when it arrives, independent of its siblings' draws.
  const GlobalPeerId g = registry_.id_space();
  graph::Rng stream = graph::Rng::stream(tracker_key_, g, round_);
  const double kbps = cfg_.arrival_model->sample(stream);
  std::size_t m = 1;
  if (swarms_.size() > 1 && cfg_.multi_torrent_fraction > 0.0 &&
      stream.bernoulli(cfg_.multi_torrent_fraction)) {
    m = 2;
  }
  std::array<std::uint32_t, 2> chosen{};
  chosen[0] = zipf_pick(stream);
  if (m == 2) {
    do {
      chosen[1] = zipf_pick(stream);
    } while (chosen[1] == chosen[0]);
  }
  registry_.add(kbps);
  for (std::size_t j = 0; j < m; ++j) {
    SwarmSlot& slot = *swarms_[chosen[j]];
    const double share = membership_capacity_share(kbps, m, j);
    const core::PeerId local = slot.driver->join_injected(*slot.swarm, share);
    registry_.add_membership(g, chosen[j], local);
  }
}

void TrackerSim::run_round() {
  const auto barrier_start = std::chrono::steady_clock::now();
  maintain_registry();
  admit_arrivals();
  const auto barrier_end = std::chrono::steady_clock::now();
  barrier_seconds_ += seconds_between(barrier_start, barrier_end);

  const std::size_t shards = resolve_shards();
  shard_wall_.assign(shards, 0.0);
  // Shard s owns swarms {k : k % shards == s}, run in ascending k —
  // the deterministic key. Each task touches only its own slots
  // (swarm + driver + rng) and its own shard_wall_ entry.
  sim::parallel_for(shards, shards, [this, shards](std::size_t s) {
    const auto shard_start = std::chrono::steady_clock::now();
    for (std::size_t k = s; k < swarms_.size(); k += shards) {
      SwarmSlot& slot = *swarms_[k];
      slot.driver->before_round(*slot.swarm);
      slot.swarm->run_round();
    }
    shard_wall_[s] = seconds_between(shard_start, std::chrono::steady_clock::now());
  });
  const auto [mn, mx] = std::minmax_element(shard_wall_.begin(), shard_wall_.end());
  shard_seconds_ += *mx;
  shard_imbalance_seconds_ += *mx - *mn;
  ++round_;
  // Round boundary — the valid checkpoint point; save() consumes no
  // RNG, so autosave cadence cannot perturb the run.
  if (autosaver_.has_value() && autosaver_->due(round_)) {
    std::ostringstream payload;
    save(payload);
    autosaver_->write(round_, payload.view());
  }
}

void TrackerSim::run(std::size_t rounds) {
  for (std::size_t r = 0; r < rounds; ++r) run_round();
}

void TrackerSim::autosave_every(std::size_t every, const std::filesystem::path& dir,
                                std::size_t keep) {
  autosaver_.emplace(every, dir, keep);
}

void TrackerSim::reset_stratification() {
  for (const auto& slot : swarms_) slot->swarm->reset_stratification();
}

EcosystemReport TrackerSim::ecosystem_report() const {
  EcosystemReport out;
  out.per_swarm.reserve(swarms_.size());
  double corr_weighted = 0.0;
  std::size_t corr_weight = 0;
  std::vector<double> completions;
  for (const auto& slot : swarms_) {
    const Swarm& s = *slot->swarm;
    const StratificationReport strat = s.stratification();
    EcosystemReport::SwarmSummary sum;
    sum.live_peers = s.live_peer_count();
    sum.arrivals = s.arrivals();
    sum.departures = s.departures();
    sum.completed_leechers = s.completed_leechers();
    sum.partner_rank_correlation = strat.partner_rank_correlation;
    sum.reciprocated_pairs = strat.reciprocated_pairs;
    const FaultState& fs = s.fault_state();
    sum.degraded_peers = fs.degraded_count();
    out.fault_failed_announces += fs.failed_announces_;
    out.fault_retries += fs.announce_retries_;
    out.fault_connect_failures += fs.connect_failures_;
    out.fault_nat_rejections += fs.nat_rejections_;
    out.fault_lost_lanes += fs.lost_lanes_;
    out.degraded_peers += sum.degraded_peers;
    out.per_swarm.push_back(sum);
    corr_weighted +=
        strat.partner_rank_correlation * static_cast<double>(strat.reciprocated_pairs);
    corr_weight += strat.reciprocated_pairs;
    for (core::PeerId p = 0; p < s.peer_count(); ++p) {
      if (!s.is_leecher(p)) continue;
      const double done = s.stats(p).completion_round;
      if (done >= 0.0) completions.push_back(done);
    }
  }
  out.mean_partner_rank_correlation =
      corr_weight == 0 ? 0.0 : corr_weighted / static_cast<double>(corr_weight);
  out.live_memberships = live_membership_count();
  out.live_registry_peers = registry_.size();

  out.completed_leechers = completions.size();
  std::sort(completions.begin(), completions.end());
  if (!completions.empty()) {
    for (std::size_t i = 0; i < out.completion_round_deciles.size(); ++i) {
      const std::size_t ix =
          std::min(completions.size() - 1, ((i + 1) * completions.size()) / 10);
      out.completion_round_deciles[i] = completions[ix];
    }
  }

  // Stratification vs the *global* capacity distribution: rank live
  // registry peers by ecosystem capacity, then average each decile's
  // per-membership leech rate.
  const auto records = registry_.records();
  if (!records.empty()) {
    std::vector<std::size_t> order(records.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      if (records[a].upload_kbps != records[b].upload_kbps) {
        return records[a].upload_kbps > records[b].upload_kbps;
      }
      return records[a].id < records[b].id;
    });
    std::array<double, 10> decile_sum{};
    std::array<std::size_t, 10> decile_count{};
    for (std::size_t r = 0; r < order.size(); ++r) {
      const PeerRegistry::Record& rec = records[order[r]];
      double rate = 0.0;
      for (const PeerRegistry::Membership& m : rec.memberships) {
        rate += swarms_[m.swarm]->swarm->leech_download_kbps(m.local);
      }
      rate /= static_cast<double>(rec.memberships.size());
      const std::size_t d = std::min<std::size_t>(9, (r * 10) / order.size());
      decile_sum[d] += rate;
      ++decile_count[d];
    }
    for (std::size_t d = 0; d < 10; ++d) {
      out.decile_leech_kbps[d] =
          decile_count[d] == 0 ? 0.0 : decile_sum[d] / static_cast<double>(decile_count[d]);
    }
  }
  return out;
}

EcosystemProfile TrackerSim::ecosystem_profile() const {
  EcosystemProfile out;
  for (const auto& slot : swarms_) {
    const Swarm::PhaseProfile& p = slot->swarm->phase_profile();
    out.swarms.choke_seconds += p.choke_seconds;
    out.swarms.endgame_seconds += p.endgame_seconds;
    out.swarms.mutual_seconds += p.mutual_seconds;
    out.swarms.transfer_seconds += p.transfer_seconds;
    out.swarms.fold_seconds += p.fold_seconds;
    out.swarms.transfer_compute_seconds += p.transfer_compute_seconds;
    out.swarms.transfer_commit_seconds += p.transfer_commit_seconds;
    out.swarms.transfer_rerun_seconds += p.transfer_rerun_seconds;
    out.swarms.transfer_lanes += p.transfer_lanes;
    out.swarms.transfer_reruns += p.transfer_reruns;
    out.swarms.fault_seconds += p.fault_seconds;
    out.swarms.fault_failed_announces += p.fault_failed_announces;
    out.swarms.fault_retries += p.fault_retries;
    out.swarms.fault_connect_failures += p.fault_connect_failures;
    out.swarms.fault_nat_rejections += p.fault_nat_rejections;
    out.swarms.fault_lost_lanes += p.fault_lost_lanes;
    out.swarms.fault_degraded_peers += p.fault_degraded_peers;
  }
  out.barrier_seconds = barrier_seconds_;
  out.shard_seconds = shard_seconds_;
  out.shard_imbalance_seconds = shard_imbalance_seconds_;
  out.rounds = round_;
  return out;
}

void TrackerSim::save(std::ostream& out) const {
  {
    snapshot_detail::Writer w(out);
    w.u64(kTrackerMagic);
    w.u32(kSnapshotVersion);

    w.tag(kTagTrackerMeta);
    w.u64(swarms_.size());
    w.u64(round_);
    w.u64(tracker_key_);
    const graph::Rng::State st = tracker_rng_.state();
    for (const std::uint64_t word : st.s) w.u64(word);
    w.f64(st.cached_normal);
    w.u8(st.has_cached_normal ? 1 : 0);

    w.tag(kTagTrackerRegistry);
    w.u64(registry_.id_space());
    w.u64(registry_.size());
    for (const PeerRegistry::Record& rec : registry_.records()) {
      w.u32(rec.id);
      w.f64(rec.upload_kbps);
      w.u64(rec.memberships.size());
      for (const PeerRegistry::Membership& m : rec.memberships) {
        w.u32(m.swarm);
        w.u32(m.local);
      }
    }
    w.finish();
  }
  if (!out) throw SnapshotError("tracker snapshot: stream write failed");
  for (const auto& slot : swarms_) {
    slot->swarm->save(out);
    save_churn_driver(out, *slot->driver);
  }
}

TrackerSim TrackerSim::resume(std::istream& in, const TrackerConfig& cfg) {
  TrackerSim t(cfg);
  std::size_t num_swarms = 0;
  std::vector<PeerRegistry::Record> records;
  GlobalPeerId id_space = 0;
  {
    snapshot_detail::Reader r(in);
    if (r.u64() != kTrackerMagic) throw SnapshotError("tracker snapshot: bad magic");
    const std::uint32_t version = r.u32();
    if (version != kSnapshotVersion) {
      throw SnapshotError("tracker snapshot: unsupported version " + std::to_string(version));
    }

    r.expect_tag(kTagTrackerMeta, "tracker meta");
    const std::uint64_t swarm_count = r.u64();
    if (swarm_count == 0 || swarm_count > kMaxSwarms) {
      throw SnapshotError("tracker snapshot: implausible swarm count");
    }
    num_swarms = static_cast<std::size_t>(swarm_count);
    t.round_ = static_cast<std::size_t>(r.u64());
    t.tracker_key_ = r.u64();
    graph::Rng::State st;
    for (std::uint64_t& word : st.s) word = r.u64();
    st.cached_normal = r.f64();
    st.has_cached_normal = r.u8() != 0;
    try {
      t.tracker_rng_.restore(st);
    } catch (const std::invalid_argument&) {
      throw SnapshotError("tracker snapshot: invalid generator state");
    }

    r.expect_tag(kTagTrackerRegistry, "tracker registry");
    const std::uint64_t space = r.u64();
    if (space > std::numeric_limits<GlobalPeerId>::max()) {
      throw SnapshotError("tracker snapshot: implausible id space");
    }
    id_space = static_cast<GlobalPeerId>(space);
    const std::uint64_t count = r.u64();
    if (count > space) throw SnapshotError("tracker snapshot: more records than ids");
    records.reserve(static_cast<std::size_t>(count));
    for (std::uint64_t i = 0; i < count; ++i) {
      PeerRegistry::Record rec;
      rec.id = r.u32();
      rec.upload_kbps = r.f64();
      const std::uint64_t memberships = r.u64();
      if (memberships == 0 || memberships > swarm_count) {
        throw SnapshotError("tracker snapshot: implausible membership count");
      }
      rec.memberships.reserve(static_cast<std::size_t>(memberships));
      for (std::uint64_t j = 0; j < memberships; ++j) {
        PeerRegistry::Membership m;
        m.swarm = r.u32();
        m.local = r.u32();
        if (m.swarm >= swarm_count) {
          throw SnapshotError("tracker snapshot: membership names an unknown swarm");
        }
        rec.memberships.push_back(m);
      }
      records.push_back(std::move(rec));
    }
    r.verify_checksum();
  }

  t.swarms_.reserve(num_swarms);
  for (std::size_t k = 0; k < num_swarms; ++k) {
    auto slot = std::make_unique<SwarmSlot>();
    slot->swarm.emplace(Swarm::resume(in, slot->rng));
    slot->driver.emplace(t.cfg_.swarm_churn, slot->swarm->config(), std::vector<double>{},
                         slot->rng);
    restore_churn_driver(in, *slot->driver);
    t.swarms_.push_back(std::move(slot));
  }

  for (const PeerRegistry::Record& rec : records) {
    for (const PeerRegistry::Membership& m : rec.memberships) {
      if (m.local >= t.swarms_[m.swarm]->swarm->peer_count()) {
        throw SnapshotError("tracker snapshot: membership names an unknown peer");
      }
    }
  }
  try {
    t.registry_.restore(std::move(records), id_space);
  } catch (const std::invalid_argument& e) {
    throw SnapshotError(std::string("tracker snapshot: ") + e.what());
  }
  t.build_zipf();
  return t;
}

}  // namespace strat::bt
