#include "bittorrent/faults.hpp"

namespace strat::bt {

void FaultState::add_peer(bool nat) {
  nat_.push_back(nat ? 1 : 0);
  retry_round_.push_back(kNoRetry);
  retry_count_.push_back(0);
  announce_seq_.push_back(0);
}

void FaultState::compact(std::size_t row, std::size_t last) {
  nat_[row] = nat_[last];
  retry_round_[row] = retry_round_[last];
  retry_count_[row] = retry_count_[last];
  announce_seq_[row] = announce_seq_[last];
  nat_.pop_back();
  retry_round_.pop_back();
  retry_count_.pop_back();
  announce_seq_.pop_back();
}

void FaultState::fail_announce(std::size_t i, std::size_t round, const FaultSpec& spec) {
  ++failed_announces_;
  ++retry_count_[i];
  const std::size_t due = round + spec.retry_delay(retry_count_[i]);
  retry_round_[i] =
      due < kNoRetry ? static_cast<std::uint32_t>(due) : kNoRetry - 1;
}

void FaultState::reset_retry(std::size_t i) {
  retry_round_[i] = kNoRetry;
  retry_count_[i] = 0;
}

std::size_t FaultState::degraded_count() const noexcept {
  std::size_t n = 0;
  for (const std::uint32_t r : retry_round_) {
    if (r != kNoRetry) ++n;
  }
  return n;
}

}  // namespace strat::bt
