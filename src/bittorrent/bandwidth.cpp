#include "bittorrent/bandwidth.hpp"

#include <cmath>
#include <stdexcept>

namespace strat::bt {

namespace {

double standard_normal_cdf(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }

double standard_normal_pdf(double z) {
  return std::exp(-0.5 * z * z) / std::sqrt(2.0 * M_PI);
}

}  // namespace

BandwidthModel::BandwidthModel(std::vector<BandwidthComponent> components)
    : components_(std::move(components)) {
  if (components_.empty()) throw std::invalid_argument("BandwidthModel: no components");
  double total = 0.0;
  for (const auto& c : components_) {
    if (c.weight <= 0.0 || c.median_kbps <= 0.0 || c.log10_sigma <= 0.0) {
      throw std::invalid_argument("BandwidthModel: component fields must be positive");
    }
    total += c.weight;
  }
  if (std::abs(total - 1.0) > 1e-9) {
    throw std::invalid_argument("BandwidthModel: weights must sum to 1");
  }
}

BandwidthModel BandwidthModel::saroiu2002() {
  // Upstream medians per 2002 access technology; weights calibrated so
  // the CDF matches the published curve's waypoints (~20% below
  // 100 kbps, ~3/4 below 1 Mbps, >90% below 10 Mbps).
  return BandwidthModel({
      {0.20, 45.0, 0.10, "dial-up 56k"},
      {0.25, 128.0, 0.08, "ISDN / DSL-lite"},
      {0.15, 384.0, 0.10, "ADSL 384"},
      {0.15, 768.0, 0.13, "cable 768"},
      {0.15, 3000.0, 0.25, "T1 / business"},
      {0.10, 15000.0, 0.18, "campus LAN"},
  });
}

double BandwidthModel::cdf(double kbps) const {
  if (kbps <= 0.0) return 0.0;
  const double lx = std::log10(kbps);
  double acc = 0.0;
  for (const auto& c : components_) {
    acc += c.weight * standard_normal_cdf((lx - std::log10(c.median_kbps)) / c.log10_sigma);
  }
  return acc;
}

double BandwidthModel::pdf(double kbps) const {
  if (kbps <= 0.0) return 0.0;
  const double lx = std::log10(kbps);
  // d(lx)/d(kbps) = 1 / (kbps ln 10).
  const double jacobian = 1.0 / (kbps * std::log(10.0));
  double acc = 0.0;
  for (const auto& c : components_) {
    acc += c.weight *
           standard_normal_pdf((lx - std::log10(c.median_kbps)) / c.log10_sigma) /
           c.log10_sigma;
  }
  return acc * jacobian;
}

double BandwidthModel::quantile(double q) const {
  if (q <= 0.0 || q >= 1.0) throw std::invalid_argument("BandwidthModel::quantile: q in (0,1)");
  double lo = 1e-3;
  double hi = 1e9;
  // cdf is strictly increasing and continuous: plain bisection.
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = std::sqrt(lo * hi);  // geometric: the scale is log
    if (cdf(mid) < q) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return std::sqrt(lo * hi);
}

double BandwidthModel::sample(graph::Rng& rng) const {
  double pick = rng.uniform();
  std::size_t idx = components_.size() - 1;
  for (std::size_t i = 0; i < components_.size(); ++i) {
    if (pick < components_[i].weight) {
      idx = i;
      break;
    }
    pick -= components_[i].weight;
  }
  const auto& c = components_[idx];
  const double lx = std::log10(c.median_kbps) + c.log10_sigma * rng.normal();
  return std::pow(10.0, lx);
}

std::vector<double> BandwidthModel::representative_sample(std::size_t n) const {
  std::vector<double> sample(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double q = (static_cast<double>(i) + 0.5) / static_cast<double>(n);
    // Best peer first: take the upper quantiles first.
    sample[i] = quantile(1.0 - q);
  }
  // Enforce strict descending order (quantile plateaus can collide after
  // rounding): nudge each entry just below its predecessor.
  for (std::size_t i = 1; i < n; ++i) {
    if (sample[i] >= sample[i - 1]) {
      sample[i] = sample[i - 1] * (1.0 - 1e-12 * static_cast<double>(i + 1));
    }
  }
  return sample;
}

}  // namespace strat::bt
