// Piece bookkeeping and rarest-first selection.
//
// BitTorrent's "download rarest first" policy equalizes block
// repartition across the swarm, which is exactly the paper's §6
// assumption that content availability does not constrain the
// acceptance graph in the post-flash-crowd phase. The swarm simulator
// uses this module for per-peer piece bitfields and piece selection.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "graph/rng.hpp"

namespace strat::bt {

using PieceId = std::uint32_t;

/// Compact piece bitfield.
class Bitfield {
 public:
  Bitfield() = default;
  explicit Bitfield(std::size_t bits);

  [[nodiscard]] std::size_t size() const noexcept { return bits_; }
  [[nodiscard]] bool test(PieceId i) const;
  void set(PieceId i);
  void reset(PieceId i);
  /// Number of set bits.
  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  /// True when every piece is held.
  [[nodiscard]] bool complete() const noexcept { return count_ == bits_; }
  /// True if `other` holds at least one piece this bitfield lacks
  /// (the BitTorrent "interested" predicate).
  [[nodiscard]] bool interested_in(const Bitfield& other) const;

  /// Raw 64-bit words (bit i of word w = piece w*64+i); bits beyond
  /// size() are always zero. Lets pick_rarest skip non-candidate
  /// pieces a word at a time.
  [[nodiscard]] std::span<const std::uint64_t> words() const noexcept { return words_; }

  /// Rebuilds a bitfield from raw words (the checkpoint path). The
  /// word count must match `bits` and bits beyond `bits` must be zero
  /// — a corrupt tail would silently break interested_in()/count()
  /// invariants — else std::invalid_argument. The set-bit count is
  /// recomputed, never trusted from the caller.
  [[nodiscard]] static Bitfield from_words(std::size_t bits, std::vector<std::uint64_t> words);

 private:
  std::size_t bits_ = 0;
  std::size_t count_ = 0;
  std::vector<std::uint64_t> words_;
};

/// Tracks global piece availability and picks rarest-first.
class PiecePicker {
 public:
  explicit PiecePicker(std::size_t num_pieces);

  /// Registers that one more peer holds `piece`.
  void add_availability(PieceId piece);

  /// Registers that a holder of `piece` left the swarm. Throws
  /// std::logic_error if the availability is already zero.
  void remove_availability(PieceId piece);

  /// Registers every piece of a joining peer's (partial) bitfield.
  /// Throws std::invalid_argument on a size mismatch.
  void add_bitfield(const Bitfield& have);

  /// Drops every piece of a departing peer's bitfield. Throws
  /// std::logic_error if any counter is already zero.
  void remove_bitfield(const Bitfield& have);

  /// Number of holders of `piece`.
  [[nodiscard]] std::uint32_t availability(PieceId piece) const;

  /// Chooses the rarest piece that `remote` has and `local` lacks; ties
  /// broken uniformly at random. nullopt when the remote has nothing
  /// useful. O(num_pieces).
  [[nodiscard]] std::optional<PieceId> pick_rarest(const Bitfield& local, const Bitfield& remote,
                                                   graph::Rng& rng) const;

  /// pick_rarest restricted to pieces outside `excluded` — the
  /// non-endgame request discipline (don't target a piece another
  /// neighbor is already delivering). Same tie-breaking RNG consumption
  /// for a given candidate set as the unrestricted overload.
  [[nodiscard]] std::optional<PieceId> pick_rarest(const Bitfield& local, const Bitfield& remote,
                                                   const Bitfield& excluded,
                                                   graph::Rng& rng) const;

 private:
  std::vector<std::uint32_t> availability_;
};

}  // namespace strat::bt
