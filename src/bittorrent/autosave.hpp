// Crash-safe periodic checkpoints: temp-file + atomic-rename autosave
// with bounded generations, plus validation-first recovery.
//
// Autosaver is pure host-side checkpoint policy — which rounds to save
// on, where the files go, how many generations to keep. It never
// touches simulation state, so it is deliberately *not* part of any
// snapshot (a resumed run re-arms its own policy). Swarm and
// TrackerSim expose it through autosave_every(): at the end of each
// due run_round() the owner serializes itself with its ordinary
// save() path and hands the bytes to write().
//
// Durability discipline: the payload lands in `auto-<round>.snap.tmp`
// first and is renamed to `auto-<round>.snap` only after the write
// fully succeeds — a crash mid-write leaves at worst a stale .tmp, and
// a reader never observes a half-written .snap under POSIX rename
// atomicity. Filenames carry the zero-padded round number (never a
// wall-clock timestamp — strat-lint R3 bans time-derived values), so
// lexicographic order is generation order and pruning/recovery need no
// filesystem metadata.
//
// Recovery is validation-first: recover_latest_swarm() /
// recover_latest_tracker() (declared in snapshot.hpp / tracker_sim.hpp
// to keep this header dependency-free) walk the generations newest
// first and return the first snapshot that passes the loader's full
// magic/bounds/checksum gauntlet — a truncated or corrupt newest
// generation silently falls back to the previous one.
#pragma once

#include <cstddef>
#include <filesystem>
#include <stdexcept>
#include <string_view>
#include <vector>

namespace strat::bt {

/// Periodic checkpoint policy: every N rounds, write one generation,
/// keep the newest K. See the file comment for the durability rules.
class Autosaver {
 public:
  /// Throws std::invalid_argument if `every` or `keep` is zero.
  Autosaver(std::size_t every, std::filesystem::path dir, std::size_t keep = 3);

  /// True when `round` is a checkpoint boundary (every N rounds, round
  /// 0 excluded — construction state needs no checkpoint).
  [[nodiscard]] bool due(std::size_t round) const noexcept {
    return round != 0 && round % every_ == 0;
  }

  /// Writes one generation: payload to `auto-<round>.snap.tmp`, fsync'd
  /// close, atomic rename to `auto-<round>.snap`, then prunes the
  /// oldest generations beyond `keep`. Creates the directory on first
  /// use. Throws std::runtime_error if the filesystem write fails.
  void write(std::size_t round, std::string_view payload) const;

  [[nodiscard]] std::size_t every() const noexcept { return every_; }
  [[nodiscard]] std::size_t keep() const noexcept { return keep_; }
  [[nodiscard]] const std::filesystem::path& dir() const noexcept { return dir_; }

 private:
  std::size_t every_;
  std::size_t keep_;
  std::filesystem::path dir_;
};

/// The autosave generations under `dir`, newest first (filenames embed
/// zero-padded round numbers, so lexicographic descending is newest
/// first). Ignores .tmp leftovers and unrelated files; an absent
/// directory yields an empty list.
[[nodiscard]] std::vector<std::filesystem::path> autosave_files(const std::filesystem::path& dir);

}  // namespace strat::bt
