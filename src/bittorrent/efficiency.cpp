#include "bittorrent/efficiency.hpp"

#include <algorithm>
#include <stdexcept>

#include "analysis/independent_bmatching.hpp"
#include "core/acceptance.hpp"
#include "core/matching.hpp"
#include "core/ranking.hpp"
#include "core/solver.hpp"
#include "graph/erdos_renyi.hpp"

namespace strat::bt {

std::vector<EfficiencyPoint> expected_efficiency_curve(const BandwidthModel& model,
                                                       const EfficiencyOptions& options) {
  if (options.n < 2) throw std::invalid_argument("expected_efficiency_curve: n >= 2");
  if (options.tft_slots == 0 || options.total_slots == 0) {
    throw std::invalid_argument("expected_efficiency_curve: slot counts must be >= 1");
  }
  if (options.tft_slots > options.total_slots) {
    throw std::invalid_argument("expected_efficiency_curve: tft_slots > total_slots");
  }
  const double p = options.mean_acceptable / static_cast<double>(options.n - 1);
  if (p <= 0.0 || p > 1.0) {
    throw std::invalid_argument("expected_efficiency_curve: mean_acceptable out of range");
  }

  const std::vector<double> upload = model.representative_sample(options.n);
  std::vector<double> per_slot(options.n);
  for (std::size_t i = 0; i < options.n; ++i) {
    per_slot[i] = upload[i] / static_cast<double>(options.total_slots);
  }
  // upload is descending, so peer index == rank — the convention the
  // analysis module expects.
  analysis::BMatchingOptions bm;
  bm.n = options.n;
  bm.p = p;
  bm.b0 = options.tft_slots;
  bm.weights = per_slot;
  const analysis::BMatchingResult result = analysis::analyze_bmatching(bm);

  std::vector<EfficiencyPoint> curve(options.n);
  for (std::size_t i = 0; i < options.n; ++i) {
    EfficiencyPoint& pt = curve[i];
    pt.rank = i;
    pt.upload_kbps = upload[i];
    pt.per_slot_kbps = per_slot[i];
    pt.expected_download = result.expected_weight[i];
    // Share ratio = download / upload actually spent: an unmatched TFT
    // slot uploads nothing, so the denominator scales with the expected
    // number of matched slots (== b0 for bulk peers, < b0 at the very
    // bottom of the ranking — exactly the §6 remark that the lowest
    // peers combine high efficiency with a chance of not being matched).
    const double spent = per_slot[i] * result.expected_mates[i];
    pt.efficiency = spent > 0.0 ? pt.expected_download / spent : 0.0;
    pt.match_probability = result.mass(static_cast<core::PeerId>(i), 0);
  }
  return curve;
}

std::vector<SlotStrategyPoint> slot_strategy_sweep(const BandwidthModel& model,
                                                   const SlotStrategyOptions& options,
                                                   graph::Rng& rng) {
  if (options.n < 3) throw std::invalid_argument("slot_strategy_sweep: n >= 3");
  if (options.default_total_slots < 2) {
    throw std::invalid_argument("slot_strategy_sweep: default_total_slots >= 2");
  }
  if (options.max_tft_slots == 0) {
    throw std::invalid_argument("slot_strategy_sweep: max_tft_slots >= 1");
  }
  const std::size_t obedient = options.n - 1;
  const std::vector<double> upload = model.representative_sample(obedient);
  const auto default_tft = static_cast<std::uint32_t>(options.default_total_slots - 1);

  std::vector<SlotStrategyPoint> sweep;
  sweep.reserve(options.max_tft_slots);
  for (std::size_t k = 1; k <= options.max_tft_slots; ++k) {
    // The deviator splits its upload over k TFT slots plus the generous
    // one; obedient peers split theirs over the default total.
    const double deviator_per_slot =
        options.deviator_upload_kbps / static_cast<double>(k + 1);
    std::vector<double> scores(options.n);
    for (std::size_t i = 0; i < obedient; ++i) {
      scores[i] = upload[i] / static_cast<double>(options.default_total_slots);
    }
    scores[obedient] = deviator_per_slot;
    // Break exact collisions with the obedient grid.
    while (std::find(scores.begin(), scores.begin() + static_cast<long>(obedient),
                     scores[obedient]) != scores.begin() + static_cast<long>(obedient)) {
      scores[obedient] *= 1.0 + 1e-12;
    }
    const core::GlobalRanking ranking = core::GlobalRanking::from_scores(scores);
    std::vector<std::uint32_t> capacities(options.n, default_tft);
    const auto deviator = static_cast<core::PeerId>(obedient);
    capacities[deviator] = static_cast<std::uint32_t>(k);

    SlotStrategyPoint pt;
    pt.tft_slots = k;
    pt.per_slot_kbps = scores[obedient];
    for (std::size_t r = 0; r < options.realizations; ++r) {
      const graph::Graph g =
          graph::erdos_renyi_gnd(options.n, options.mean_acceptable, rng);
      const core::ExplicitAcceptance acc(g, ranking);
      const core::Matching m =
          core::stable_configuration(acc, ranking, std::vector<std::uint32_t>(capacities));
      double download = 0.0;
      for (core::PeerId mate : m.mates(deviator)) download += scores[mate];
      pt.mean_download += download;
      pt.mean_mates += static_cast<double>(m.degree(deviator));
    }
    const auto runs = static_cast<double>(options.realizations);
    pt.mean_download /= runs;
    pt.mean_mates /= runs;
    pt.efficiency = pt.mean_download / options.deviator_upload_kbps;
    sweep.push_back(pt);
  }
  return sweep;
}

}  // namespace strat::bt
