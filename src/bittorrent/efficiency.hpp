// Expected download/upload efficiency under Tit-for-Tat (§6, Figure 11).
//
// Assuming content availability is not a bottleneck (post-flash-crowd,
// rarest-first has equalized block repartition), TFT behaves as the
// global-ranking b-matching with the upload bandwidth *per slot* as the
// intrinsic mark. A peer's expected download rate through its TFT
// exchanges is  sum_{c,j} D_c(i,j) · s_j  with s_j = u_j / slots, and
// its efficiency (share ratio within the TFT economy) is that download
// divided by the upload it actually spends, s_i · E[matched slots] —
// an unmatched slot uploads nothing (== b0 · s_i for bulk peers whose
// slots are always filled).
//
// The module also quantifies the §6 strategy discussion: a rational
// peer tweaking its own slot count while obedient peers keep the
// default, evaluated exactly with the variable-capacity stable solver
// over sampled acceptance graphs.
#pragma once

#include <cstddef>
#include <vector>

#include "bittorrent/bandwidth.hpp"
#include "graph/rng.hpp"

namespace strat::bt {

/// One peer of the analytic efficiency curve.
struct EfficiencyPoint {
  std::size_t rank = 0;            // 0 = best
  double upload_kbps = 0.0;        // full upstream u_i
  double per_slot_kbps = 0.0;      // s_i = u_i / total_slots
  double expected_download = 0.0;  // sum_{c,j} D_c(i,j) s_j
  double efficiency = 0.0;         // expected_download / (s_i E[matched slots])
  double match_probability = 0.0;  // P(at least one TFT mate)
};

/// Parameters of the Figure 11 computation.
struct EfficiencyOptions {
  std::size_t n = 2000;          // population (result shape is n-free)
  std::size_t tft_slots = 3;     // b0
  std::size_t total_slots = 4;   // b0 + 1 generous/optimistic slot
  double mean_acceptable = 20.0; // d: expected acceptable peers
};

/// Computes the expected-efficiency curve for a bandwidth distribution.
/// Peers are the deterministic representative sample of `model`, ranked
/// by per-slot upload. Throws std::invalid_argument on degenerate
/// options (n < 2, slots == 0, tft_slots > total_slots, d out of range).
[[nodiscard]] std::vector<EfficiencyPoint> expected_efficiency_curve(
    const BandwidthModel& model, const EfficiencyOptions& options);

/// One row of the §6 slot-strategy study.
struct SlotStrategyPoint {
  std::size_t tft_slots = 0;        // the deviator's TFT slot count
  double per_slot_kbps = 0.0;       // upload / (tft_slots + 1)
  double mean_download = 0.0;       // across sampled acceptance graphs
  double efficiency = 0.0;          // mean_download / upload
  double mean_mates = 0.0;          // average TFT mates obtained
};

/// Parameters of the strategy study: one rational peer with upload
/// `deviator_upload_kbps` varies its slot count; the other n-1 peers
/// keep `default_total_slots`. Each configuration is evaluated on
/// `realizations` sampled ER acceptance graphs with the exact
/// variable-capacity stable solver.
struct SlotStrategyOptions {
  std::size_t n = 500;
  double mean_acceptable = 20.0;
  std::size_t default_total_slots = 4;  // obedient peers: 3 TFT + 1
  double deviator_upload_kbps = 400.0;
  std::size_t max_tft_slots = 8;
  std::size_t realizations = 50;
};

/// Runs the sweep over the deviator's slot count 1..max_tft_slots.
[[nodiscard]] std::vector<SlotStrategyPoint> slot_strategy_sweep(const BandwidthModel& model,
                                                                 const SlotStrategyOptions& options,
                                                                 graph::Rng& rng);

}  // namespace strat::bt
