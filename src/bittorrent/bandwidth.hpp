// Upstream-capacity distribution (Figure 10).
//
// The paper feeds its BitTorrent efficiency model with the upstream
// bandwidth distribution Saroiu et al. measured on Gnutella (2002). The
// raw data is unavailable offline, so we model it as a mixture of
// log-normal components centered on the access technologies of that era
// (dial-up, ISDN, ADSL tiers, cable, T1/LAN). The mixture reproduces
// the published CDF's anatomy — support 10^1..10^5 kbps with plateaus
// at technology "density peaks" — which is what drives the shape of the
// Figure 11 efficiency curve (see DESIGN.md §5 on this substitution).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "graph/rng.hpp"

namespace strat::bt {

/// One log-normal mixture component (log10 domain).
struct BandwidthComponent {
  double weight = 0.0;       // mixture weight (components must sum to 1)
  double median_kbps = 0.0;  // component median
  double log10_sigma = 0.1;  // spread in decades
  std::string label;         // e.g. "ADSL 384"
};

/// Mixture model over upstream capacities in kbps.
class BandwidthModel {
 public:
  /// Builds from components. Throws std::invalid_argument if weights do
  /// not sum to 1 (1e-9 tolerance), any weight/median/sigma is
  /// non-positive, or the list is empty.
  explicit BandwidthModel(std::vector<BandwidthComponent> components);

  /// The 2002-era preset approximating Saroiu et al.'s Figure 10.
  [[nodiscard]] static BandwidthModel saroiu2002();

  [[nodiscard]] const std::vector<BandwidthComponent>& components() const noexcept {
    return components_;
  }

  /// P(upstream <= kbps). 0 for kbps <= 0.
  [[nodiscard]] double cdf(double kbps) const;

  /// Probability density at kbps (w.r.t. linear kbps).
  [[nodiscard]] double pdf(double kbps) const;

  /// Inverse CDF by bisection; q in (0, 1). Throws std::invalid_argument
  /// outside that range.
  [[nodiscard]] double quantile(double q) const;

  /// One random draw.
  [[nodiscard]] double sample(graph::Rng& rng) const;

  /// Deterministic representative sample: quantiles at (i+0.5)/n,
  /// sorted descending (best peer first) — the ranking convention of
  /// the efficiency model. Values are nudged to be strictly distinct so
  /// they can serve as strict global-ranking scores.
  [[nodiscard]] std::vector<double> representative_sample(std::size_t n) const;

 private:
  std::vector<BandwidthComponent> components_;
};

}  // namespace strat::bt
