// Versioned swarm checkpoints: durable, resumable, forkable runs.
//
// A snapshot is a third representation of swarm run state, next to the
// flat data plane and the map-based ReferenceSwarm — and like those
// two it is held to a bitwise contract: Swarm::save() between any two
// rounds, then Swarm::resume(), continues the run bitwise-identically
// to the uninterrupted one at any SwarmConfig::threads value (the
// resume-equivalence differential test tier proves it against both the
// uninterrupted flat run and the oracle). That works because the
// determinism model is explicit state: counter-based per-peer choke
// streams (key + round suffice), one sequential structural generator
// (xoshiro words are captured and restored), and row/slot orders that
// are themselves serialized rather than re-derived.
//
// Format (version 2, little-endian, not endian-portable — the magic
// word doubles as the byte-order probe):
//
//   u64 magic, u32 version, then tagged sections in fixed order —
//   config (incl. the fault-injection spec), RNG (choke key +
//   structural generator), peer table (live ids in row order,
//   generation stamps, id space), run counters, edge-slot pool
//   (neighbor/mirror/generation/free-list/rates/in-flight/mutual
//   arrays), per-row peer state (stats, bitfields, choker state,
//   unchoke sets, sorted adjacency + slots, partial pieces), retired
//   records, a piece-availability cross-check, and the live fault
//   state (NAT flags, retry deadlines/counts, announce sequence
//   numbers, fault counters — a mid-outage save resumes with every
//   backoff deadline intact) — closed by a 64-bit running checksum of
//   every byte written.
//
// Loading rejects bad magic, unknown versions, truncation, checksum
// mismatches and any structurally inconsistent state (every index is
// bounds-checked before the swarm is wired together), throwing
// SnapshotError with a message naming the failure; a corrupt snapshot
// can never produce a swarm with broken invariants, let alone UB.
// Deliberately *not* serialized: phase-profile wall clocks, per-worker
// scratch buffers, and the transient per-round accumulators that are
// provably zero between rounds (now_in_/now_out_) — none of them feed
// back into simulation state. See README "Snapshot format and resume
// contract".
//
// ChurnDriver state (lifetime deadlines + capacity-pool cursor) rides
// in a companion section via save_churn_driver()/restore_churn_driver()
// — the driver's spec/config/pool are construction inputs the resuming
// caller supplies, the snapshot carries only the mutable remainder.
//
// fork_snapshot() opens warm-started what-if sweeps: resume one
// equilibrated snapshot into N independent (rng, swarm) pairs and
// drive each under a divergent ChurnSpec without re-simulating the
// ramp-up.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <istream>
#include <memory>
#include <optional>
#include <ostream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "bittorrent/scenario.hpp"
#include "bittorrent/swarm.hpp"
#include "core/types.hpp"
#include "graph/rng.hpp"

namespace strat::bt {

/// Any snapshot failure: bad magic, version/config mismatch,
/// truncation, checksum failure, structural inconsistency, stream
/// errors. The message names the offending field.
class SnapshotError : public std::runtime_error {
 public:
  explicit SnapshotError(const std::string& what) : std::runtime_error(what) {}
};

/// "STRATSWM" — also the byte-order probe: a big-endian reader sees
/// garbage and rejects the stream at the first field.
inline constexpr std::uint64_t kSnapshotMagic = 0x535452415453574DULL;
/// "STRATCHN" for the churn-driver companion section.
inline constexpr std::uint64_t kChurnMagic = 0x535452415443484EULL;
/// Version 2 added the fault-injection spec to the config section and
/// the tagged fault-state section (kTagFaults).
inline constexpr std::uint32_t kSnapshotVersion = 2;

namespace snapshot_detail {

inline constexpr std::size_t kIoBuf = 64 * 1024;
// Odd multiplier (golden-ratio constant): any change to any lane
// changes the polynomial sum mod 2^64, so every single-lane corruption
// is detected even before the final avalanche.
inline constexpr std::uint64_t kFoldMul = 0x9E3779B97F4A7C15ULL;

/// SplitMix64 finalizer, applied once when the checksum footer is
/// emitted / verified: the per-lane fold below is a plain
/// multiply-accumulate (one mul per 8 bytes — an avalanche round per
/// lane would serialize a ~15-cycle dependency chain and cost more
/// than the serialization itself at 10^5 peers), and this final pass
/// supplies the diffusion.
constexpr std::uint64_t mix64(std::uint64_t z) noexcept {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Folds `n` bytes into `hash`, 8-byte lanes plus a zero-padded,
/// length-salted tail. Writer and Reader call this once per *logical*
/// field/array, so both sides fold identical lane sequences regardless
/// of I/O buffering. Inline (with the small-op fast paths below)
/// because a 10^5-peer snapshot makes ~2M logical writes — per-call
/// overhead would dominate the pass.
inline std::uint64_t fold_bytes(std::uint64_t hash, const void* data, std::size_t n) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  while (n >= 8) {
    std::uint64_t lane;
    std::memcpy(&lane, p, 8);
    hash = hash * kFoldMul + lane;
    p += 8;
    n -= 8;
  }
  if (n > 0) {
    std::uint64_t lane = 0;
    std::memcpy(&lane, p, n);
    hash = hash * kFoldMul + (lane + n);
  }
  return hash;
}

/// Checksummed little-endian binary writer. Small writes coalesce into
/// an internal buffer (one ostream call per ~64 KB, not per field);
/// the string-sink constructor appends straight to the string instead,
/// skipping the ostream machinery entirely (it costs more than the
/// serialization itself at 10^5 peers). The running 64-bit hash folds
/// every *logical* write, so buffering never changes the checksum.
/// finish() appends the checksum.
class Writer {
 public:
  explicit Writer(std::ostream& out);
  explicit Writer(std::string& sink);
  ~Writer();
  Writer(const Writer&) = delete;
  Writer& operator=(const Writer&) = delete;

  void bytes(const void* data, std::size_t n) {
    if (n == 0) return;
    hash_ = fold_bytes(hash_, data, n);
    if (sink_ != nullptr) {
      sink_->append(static_cast<const char*>(data), n);
      return;
    }
    write_stream(data, n);
  }
  void u8(std::uint8_t v) { bytes(&v, 1); }
  void u32(std::uint32_t v) { bytes(&v, 4); }
  void u64(std::uint64_t v) { bytes(&v, 8); }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, 8);
    u64(bits);
  }
  void tag(std::uint32_t t) { u32(t); }

  /// Length-prefixed contiguous POD span (no internal padding!).
  template <typename T>
  void pod_span(const T* data, std::size_t n) {
    u64(n);
    bytes(data, n * sizeof(T));
  }

  /// Writes the checksum footer and flushes. Must be the last call.
  void finish();

 private:
  /// ostream mode: coalesces into buf_, one ostream call per ~64 KB.
  void write_stream(const void* data, std::size_t n);
  void flush();

  std::ostream* out_ = nullptr;  // exactly one of out_/sink_ is set
  std::string* sink_ = nullptr;
  std::vector<unsigned char> buf_;  // ostream mode only
  std::uint64_t hash_;
  bool finished_ = false;
};

/// Checksummed reader, mirror of Writer: every read throws
/// SnapshotError("...truncated") on a short stream, and
/// verify_checksum() compares the running hash with the stored footer.
/// On seekable streams, small reads are served from a ~64 KB
/// read-ahead buffer (one istream call per refill, not per field —
/// per-call overhead would otherwise dominate a 10^5-peer load);
/// verify_checksum() seeks the stream back over any unconsumed
/// read-ahead so a companion section can follow on the same stream.
class Reader {
 public:
  explicit Reader(std::istream& in);

  void bytes(void* data, std::size_t n) {
    raw_read(data, n);
    fold(data, n);
  }
  std::uint8_t u8() {
    std::uint8_t v;
    bytes(&v, 1);
    return v;
  }
  std::uint32_t u32() {
    std::uint32_t v;
    bytes(&v, 4);
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v;
    bytes(&v, 8);
    return v;
  }
  double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, 8);
    return v;
  }
  void expect_tag(std::uint32_t t, const char* section);

  /// Length-prefixed POD vector. A corrupt length field cannot force a
  /// giant allocation: on a seekable stream the prefix is checked
  /// against the bytes actually remaining before anything is sized (so
  /// the result is allocated exactly once, with zero capacity slack);
  /// on a non-seekable stream the buffer grows in ~1 MB chunks and a
  /// lying prefix dies on the first short read. Either way the
  /// checksum folds once over the assembled buffer, matching the
  /// writer's single pod_span() fold exactly.
  template <typename T>
  std::vector<T> pod_vec(std::size_t max_elems, const char* what) {
    const std::uint64_t n64 = u64();
    if (n64 > max_elems) {
      throw SnapshotError(std::string("snapshot: implausible ") + what + " count");
    }
    const auto n = static_cast<std::size_t>(n64);
    std::vector<T> out;
    if (remaining_known_) {
      if (n64 * sizeof(T) > remaining_) {
        throw SnapshotError("snapshot: truncated stream");
      }
      out.resize(n);
      raw_read(out.data(), n * sizeof(T));
    } else {
      const std::size_t chunk = std::max<std::size_t>(1, (std::size_t{1} << 20) / sizeof(T));
      out.reserve(std::min(n, chunk));
      while (out.size() < n) {
        const std::size_t take = std::min(chunk, n - out.size());
        const std::size_t have = out.size();
        out.resize(have + take);
        raw_read(out.data() + have, take * sizeof(T));
      }
      out.shrink_to_fit();  // loaded state should carry no growth slack
    }
    fold(out.data(), n * sizeof(T));
    return out;
  }

  void verify_checksum();

 private:
  /// Reads without folding (pod_vec folds the assembled buffer once);
  /// small reads come straight out of the read-ahead buffer.
  void raw_read(void* data, std::size_t n) {
    if (n == 0) return;
    if (remaining_known_) remaining_ -= std::min<std::uint64_t>(remaining_, n);
    if (n <= rend_ - rpos_) {
      std::memcpy(data, rbuf_.data() + rpos_, n);
      rpos_ += n;
      return;
    }
    raw_read_slow(data, n);
  }
  /// Buffer exhausted: drain it, then refill (seekable) or read the
  /// stream directly (large reads, non-seekable streams).
  void raw_read_slow(void* data, std::size_t n);
  /// Folds `n` bytes into the running checksum without reading.
  void fold(const void* data, std::size_t n) {
    if (n == 0) return;
    hash_ = fold_bytes(hash_, data, n);
  }

  std::istream& in_;
  std::uint64_t hash_;
  std::uint64_t remaining_ = 0;   // bytes left of the *logical* position
  bool remaining_known_ = false;  // false on pipes: fall back to chunked reads
  std::vector<unsigned char> rbuf_;  // read-ahead, seekable streams only
  std::size_t rpos_ = 0;
  std::size_t rend_ = 0;
};

}  // namespace snapshot_detail

/// Serializes a ChurnDriver's mutable state (sorted lifetime
/// deadlines + capacity-pool cursor) as a checksummed companion
/// section, typically appended to the same stream right after
/// Swarm::save(). The driver's spec/config/pool are construction
/// inputs, not state — the resuming side must rebuild the driver with
/// the same ones (and the same Rng the swarm resumes into) before
/// calling restore_churn_driver().
template <typename SwarmT>
void save_churn_driver(std::ostream& out, const ChurnDriver<SwarmT>& driver) {
  snapshot_detail::Writer w(out);
  w.u64(kChurnMagic);
  w.u32(kSnapshotVersion);
  const auto deadlines = driver.deadline_snapshot();
  w.u64(deadlines.size());
  for (const auto& [peer, deadline] : deadlines) {
    w.u32(peer);
    w.f64(deadline);
  }
  w.u64(driver.capacity_cursor());
  w.finish();
  if (!out) throw SnapshotError("churn snapshot: stream write failed");
}

/// Restores state saved by save_churn_driver() into a freshly
/// constructed driver. Throws SnapshotError on bad magic, version
/// mismatch, truncation, unordered/duplicate deadline ids, or
/// checksum failure.
template <typename SwarmT>
void restore_churn_driver(std::istream& in, ChurnDriver<SwarmT>& driver) {
  snapshot_detail::Reader r(in);
  if (r.u64() != kChurnMagic) throw SnapshotError("churn snapshot: bad magic");
  const std::uint32_t version = r.u32();
  if (version != kSnapshotVersion) {
    throw SnapshotError("churn snapshot: unsupported version " + std::to_string(version));
  }
  const std::uint64_t n = r.u64();
  if (n > (std::uint64_t{1} << 32)) throw SnapshotError("churn snapshot: implausible deadline count");
  std::vector<std::pair<core::PeerId, double>> deadlines;
  deadlines.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    const core::PeerId peer = r.u32();
    const double deadline = r.f64();
    if (!deadlines.empty() && peer <= deadlines.back().first) {
      throw SnapshotError("churn snapshot: deadline ids not strictly ascending");
    }
    deadlines.emplace_back(peer, deadline);
  }
  const std::uint64_t cursor = r.u64();
  r.verify_checksum();
  driver.restore(deadlines, static_cast<std::size_t>(cursor));
}

/// One resumed run: owns the structural Rng (at a stable heap address
/// — Swarm keeps a reference to it) together with the Swarm resumed
/// against it. Move-only; moving keeps the reference valid.
class ResumedSwarm {
 public:
  explicit ResumedSwarm(std::istream& in)
      : rng_(std::make_unique<graph::Rng>()), swarm_(Swarm::resume(in, *rng_)) {}
  ResumedSwarm(std::istream& in, const SwarmConfig& config)
      : rng_(std::make_unique<graph::Rng>()), swarm_(Swarm::resume(in, *rng_, config)) {}

  ResumedSwarm(ResumedSwarm&&) = default;
  ResumedSwarm& operator=(ResumedSwarm&&) = delete;  // Swarm holds a reference member

  [[nodiscard]] Swarm& swarm() noexcept { return *swarm_; }
  [[nodiscard]] const Swarm& swarm() const noexcept { return *swarm_; }
  /// The structural generator the swarm draws from — pass it to any
  /// ChurnDriver that should continue in lockstep.
  [[nodiscard]] graph::Rng& rng() noexcept { return *rng_; }

 private:
  std::unique_ptr<graph::Rng> rng_;
  std::optional<Swarm> swarm_;
};

/// save() into a string buffer — the fork input.
[[nodiscard]] std::string save_to_string(const Swarm& swarm);

/// Resumes one (rng, swarm) pair from an in-memory snapshot.
[[nodiscard]] ResumedSwarm resume_from_string(const std::string& snapshot);
[[nodiscard]] ResumedSwarm resume_from_string(const std::string& snapshot,
                                              const SwarmConfig& config);

/// Crash recovery: resumes from the newest autosave generation under
/// `dir` that passes the loader's full validation (magic, bounds,
/// checksum) — a corrupt or truncated newest generation falls back to
/// the previous one. Returns nullopt when no generation loads (or the
/// directory doesn't exist). Pairs with Swarm::autosave_every();
/// implemented in autosave.cpp.
[[nodiscard]] std::optional<ResumedSwarm> recover_latest_swarm(const std::filesystem::path& dir);

/// Warm-started what-if sweeps: resumes `copies` fully independent
/// (rng, swarm) pairs from one snapshot. Every fork starts bitwise
/// identical — drive each under a divergent ChurnSpec (or any other
/// schedule) to explore futures of the same equilibrated swarm without
/// re-simulating the ramp-up; drive one under the original schedule
/// and it reproduces the uninterrupted run exactly.
[[nodiscard]] std::vector<ResumedSwarm> fork_snapshot(const std::string& snapshot,
                                                      std::size_t copies);

}  // namespace strat::bt
