#include "bittorrent/piece_picker.hpp"

#include <bit>
#include <stdexcept>

namespace strat::bt {

Bitfield::Bitfield(std::size_t bits) : bits_(bits), words_((bits + 63) / 64, 0) {}

bool Bitfield::test(PieceId i) const {
  if (i >= bits_) throw std::out_of_range("Bitfield::test: bad piece");
  return (words_[i >> 6] >> (i & 63)) & 1u;
}

void Bitfield::set(PieceId i) {
  if (i >= bits_) throw std::out_of_range("Bitfield::set: bad piece");
  const std::uint64_t bit = std::uint64_t{1} << (i & 63);
  if (!(words_[i >> 6] & bit)) {
    words_[i >> 6] |= bit;
    ++count_;
  }
}

void Bitfield::reset(PieceId i) {
  if (i >= bits_) throw std::out_of_range("Bitfield::reset: bad piece");
  const std::uint64_t bit = std::uint64_t{1} << (i & 63);
  if (words_[i >> 6] & bit) {
    words_[i >> 6] &= ~bit;
    --count_;
  }
}

Bitfield Bitfield::from_words(std::size_t bits, std::vector<std::uint64_t> words) {
  if (words.size() != (bits + 63) / 64) {
    throw std::invalid_argument("Bitfield::from_words: word count mismatch");
  }
  if (bits % 64 != 0 && !words.empty() &&
      (words.back() & ~((std::uint64_t{1} << (bits % 64)) - 1)) != 0) {
    throw std::invalid_argument("Bitfield::from_words: bits set beyond size");
  }
  Bitfield out;
  out.bits_ = bits;
  out.words_ = std::move(words);
  out.count_ = 0;
  for (const std::uint64_t w : out.words_) {
    out.count_ += static_cast<std::size_t>(std::popcount(w));
  }
  return out;
}

bool Bitfield::interested_in(const Bitfield& other) const {
  if (other.bits_ != bits_) throw std::invalid_argument("Bitfield::interested_in: size mismatch");
  for (std::size_t w = 0; w < words_.size(); ++w) {
    if (other.words_[w] & ~words_[w]) return true;
  }
  return false;
}

PiecePicker::PiecePicker(std::size_t num_pieces) : availability_(num_pieces, 0) {}

void PiecePicker::add_availability(PieceId piece) { ++availability_.at(piece); }

void PiecePicker::remove_availability(PieceId piece) {
  std::uint32_t& copies = availability_.at(piece);
  if (copies == 0) throw std::logic_error("PiecePicker::remove_availability: already zero");
  --copies;
}

void PiecePicker::add_bitfield(const Bitfield& have) {
  if (have.size() != availability_.size()) {
    throw std::invalid_argument("PiecePicker::add_bitfield: size mismatch");
  }
  const std::span<const std::uint64_t> words = have.words();
  for (std::size_t w = 0; w < words.size(); ++w) {
    std::uint64_t mask = words[w];
    while (mask != 0) {
      const auto piece =
          static_cast<PieceId>(w * 64 + static_cast<std::size_t>(std::countr_zero(mask)));
      mask &= mask - 1;
      ++availability_[piece];
    }
  }
}

void PiecePicker::remove_bitfield(const Bitfield& have) {
  if (have.size() != availability_.size()) {
    throw std::invalid_argument("PiecePicker::remove_bitfield: size mismatch");
  }
  const std::span<const std::uint64_t> words = have.words();
  for (std::size_t w = 0; w < words.size(); ++w) {
    std::uint64_t mask = words[w];
    while (mask != 0) {
      const auto piece =
          static_cast<PieceId>(w * 64 + static_cast<std::size_t>(std::countr_zero(mask)));
      mask &= mask - 1;
      remove_availability(piece);
    }
  }
}

std::uint32_t PiecePicker::availability(PieceId piece) const { return availability_.at(piece); }

namespace {

/// Two-pass rarest-first over the candidate words (remote \ local,
/// minus an optional exclusion mask): pass 1 finds the minimum
/// availability and the tie count without touching the RNG, one draw
/// picks the winner's index, pass 2 walks to it. Exactly uniform over
/// the ties, and orders of magnitude fewer RNG calls than per-tie
/// reservoir sampling — this is the swarm simulator's hottest loop.
template <typename WordFn>
std::optional<PieceId> pick_rarest_masked(const std::vector<std::uint32_t>& availability,
                                          std::size_t words, WordFn&& candidate_word,
                                          graph::Rng& rng) {
  std::uint32_t best_avail = 0;
  std::uint64_t ties = 0;
  for (std::size_t w = 0; w < words; ++w) {
    std::uint64_t mask = candidate_word(w);
    while (mask != 0) {
      const auto piece =
          static_cast<PieceId>(w * 64 + static_cast<std::size_t>(std::countr_zero(mask)));
      mask &= mask - 1;
      const std::uint32_t avail = availability[piece];
      if (ties == 0 || avail < best_avail) {
        best_avail = avail;
        ties = 1;
      } else if (avail == best_avail) {
        ++ties;
      }
    }
  }
  if (ties == 0) return std::nullopt;
  std::uint64_t k = ties == 1 ? 0 : rng.below(ties);
  for (std::size_t w = 0; w < words; ++w) {
    std::uint64_t mask = candidate_word(w);
    while (mask != 0) {
      const auto piece =
          static_cast<PieceId>(w * 64 + static_cast<std::size_t>(std::countr_zero(mask)));
      mask &= mask - 1;
      if (availability[piece] == best_avail) {
        if (k == 0) return piece;
        --k;
      }
    }
  }
  return std::nullopt;  // unreachable: pass 2 revisits pass 1's candidates
}

}  // namespace

std::optional<PieceId> PiecePicker::pick_rarest(const Bitfield& local, const Bitfield& remote,
                                                graph::Rng& rng) const {
  if (local.size() != remote.size() || local.size() != availability_.size()) {
    throw std::invalid_argument("PiecePicker::pick_rarest: size mismatch");
  }
  const std::span<const std::uint64_t> lw = local.words();
  const std::span<const std::uint64_t> rw = remote.words();
  return pick_rarest_masked(
      availability_, rw.size(), [&](std::size_t w) { return rw[w] & ~lw[w]; }, rng);
}

std::optional<PieceId> PiecePicker::pick_rarest(const Bitfield& local, const Bitfield& remote,
                                                const Bitfield& excluded, graph::Rng& rng) const {
  if (local.size() != remote.size() || local.size() != availability_.size() ||
      excluded.size() != local.size()) {
    throw std::invalid_argument("PiecePicker::pick_rarest: size mismatch");
  }
  const std::span<const std::uint64_t> lw = local.words();
  const std::span<const std::uint64_t> rw = remote.words();
  const std::span<const std::uint64_t> ew = excluded.words();
  return pick_rarest_masked(
      availability_, rw.size(), [&](std::size_t w) { return rw[w] & ~lw[w] & ~ew[w]; }, rng);
}

}  // namespace strat::bt
