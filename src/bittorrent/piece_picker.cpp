#include "bittorrent/piece_picker.hpp"

#include <bit>
#include <stdexcept>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#include <immintrin.h>
#define STRAT_PICK_AVX512_DISPATCH 1
#endif

namespace strat::bt {

Bitfield::Bitfield(std::size_t bits) : bits_(bits), words_((bits + 63) / 64, 0) {}

bool Bitfield::test(PieceId i) const {
  if (i >= bits_) throw std::out_of_range("Bitfield::test: bad piece");
  return (words_[i >> 6] >> (i & 63)) & 1u;
}

void Bitfield::set(PieceId i) {
  if (i >= bits_) throw std::out_of_range("Bitfield::set: bad piece");
  const std::uint64_t bit = std::uint64_t{1} << (i & 63);
  if (!(words_[i >> 6] & bit)) {
    words_[i >> 6] |= bit;
    ++count_;
  }
}

void Bitfield::reset(PieceId i) {
  if (i >= bits_) throw std::out_of_range("Bitfield::reset: bad piece");
  const std::uint64_t bit = std::uint64_t{1} << (i & 63);
  if (words_[i >> 6] & bit) {
    words_[i >> 6] &= ~bit;
    --count_;
  }
}

Bitfield Bitfield::from_words(std::size_t bits, std::vector<std::uint64_t> words) {
  if (words.size() != (bits + 63) / 64) {
    throw std::invalid_argument("Bitfield::from_words: word count mismatch");
  }
  if (bits % 64 != 0 && !words.empty() &&
      (words.back() & ~((std::uint64_t{1} << (bits % 64)) - 1)) != 0) {
    throw std::invalid_argument("Bitfield::from_words: bits set beyond size");
  }
  Bitfield out;
  out.bits_ = bits;
  out.words_ = std::move(words);
  out.count_ = 0;
  for (const std::uint64_t w : out.words_) {
    out.count_ += static_cast<std::size_t>(std::popcount(w));
  }
  return out;
}

bool Bitfield::interested_in(const Bitfield& other) const {
  if (other.bits_ != bits_) throw std::invalid_argument("Bitfield::interested_in: size mismatch");
  for (std::size_t w = 0; w < words_.size(); ++w) {
    if (other.words_[w] & ~words_[w]) return true;
  }
  return false;
}

PiecePicker::PiecePicker(std::size_t num_pieces) : availability_(num_pieces, 0) {}

void PiecePicker::add_availability(PieceId piece) { ++availability_.at(piece); }

void PiecePicker::remove_availability(PieceId piece) {
  std::uint32_t& copies = availability_.at(piece);
  if (copies == 0) throw std::logic_error("PiecePicker::remove_availability: already zero");
  --copies;
}

void PiecePicker::add_bitfield(const Bitfield& have) {
  if (have.size() != availability_.size()) {
    throw std::invalid_argument("PiecePicker::add_bitfield: size mismatch");
  }
  const std::span<const std::uint64_t> words = have.words();
  for (std::size_t w = 0; w < words.size(); ++w) {
    std::uint64_t mask = words[w];
    while (mask != 0) {
      const auto piece =
          static_cast<PieceId>(w * 64 + static_cast<std::size_t>(std::countr_zero(mask)));
      mask &= mask - 1;
      ++availability_[piece];
    }
  }
}

void PiecePicker::remove_bitfield(const Bitfield& have) {
  if (have.size() != availability_.size()) {
    throw std::invalid_argument("PiecePicker::remove_bitfield: size mismatch");
  }
  const std::span<const std::uint64_t> words = have.words();
  for (std::size_t w = 0; w < words.size(); ++w) {
    std::uint64_t mask = words[w];
    while (mask != 0) {
      const auto piece =
          static_cast<PieceId>(w * 64 + static_cast<std::size_t>(std::countr_zero(mask)));
      mask &= mask - 1;
      remove_availability(piece);
    }
  }
}

std::uint32_t PiecePicker::availability(PieceId piece) const { return availability_.at(piece); }

namespace {

/// Two-pass rarest-first over the candidate words (remote \ local,
/// minus an optional exclusion mask): pass 1 finds the minimum
/// availability and the tie count without touching the RNG, one draw
/// picks the winner's index, pass 2 walks to it. Exactly uniform over
/// the ties, and orders of magnitude fewer RNG calls than per-tie
/// reservoir sampling — this is the swarm simulator's hottest loop.
template <typename WordFn>
std::optional<PieceId> pick_rarest_scalar(const std::vector<std::uint32_t>& availability,
                                          std::size_t words, WordFn&& candidate_word,
                                          graph::Rng& rng) {
  std::uint32_t best_avail = 0;
  std::uint64_t ties = 0;
  for (std::size_t w = 0; w < words; ++w) {
    std::uint64_t mask = candidate_word(w);
    while (mask != 0) {
      const auto piece =
          static_cast<PieceId>(w * 64 + static_cast<std::size_t>(std::countr_zero(mask)));
      mask &= mask - 1;
      const std::uint32_t avail = availability[piece];
      if (ties == 0 || avail < best_avail) {
        best_avail = avail;
        ties = 1;
      } else if (avail == best_avail) {
        ++ties;
      }
    }
  }
  if (ties == 0) return std::nullopt;
  std::uint64_t k = ties == 1 ? 0 : rng.below(ties);
  for (std::size_t w = 0; w < words; ++w) {
    std::uint64_t mask = candidate_word(w);
    while (mask != 0) {
      const auto piece =
          static_cast<PieceId>(w * 64 + static_cast<std::size_t>(std::countr_zero(mask)));
      mask &= mask - 1;
      if (availability[piece] == best_avail) {
        if (k == 0) return piece;
        --k;
      }
    }
  }
  return std::nullopt;  // unreachable: pass 2 revisits pass 1's candidates
}

#ifdef STRAT_PICK_AVX512_DISPATCH

// GCC's own avx512fintrin.h trips -Wmaybe-uninitialized when the
// masked-load intrinsics inline under -O2.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"

/// A bitfield word maps directly onto four 16-lane mask registers, so
/// the per-set-bit availability gather of the scalar loop becomes four
/// masked vector loads per word, flat in candidate density. Produces
/// exactly the scalar loop's (best, tie count, k-th tie) — bitwise
/// identical picks and RNG consumption on every machine, with or
/// without the instruction set.
__attribute__((target("avx512f,avx512bw"), always_inline)) inline std::uint32_t word_min_avx512(
    const std::uint32_t* avail, std::uint64_t mask) {
  const __m512i inf = _mm512_set1_epi32(-1);
  __m512i vmin = inf;
  for (int j = 0; j < 4; ++j) {
    const auto m = static_cast<__mmask16>(mask >> (16 * j));
    if (!m) continue;
    vmin = _mm512_min_epu32(vmin, _mm512_mask_loadu_epi32(inf, m, avail + 16 * j));
  }
  return _mm512_reduce_min_epu32(vmin);
}

__attribute__((target("avx512f,avx512bw"), always_inline)) inline std::uint32_t
word_eq_count_avx512(const std::uint32_t* avail, std::uint64_t mask, std::uint32_t best) {
  const __m512i inf = _mm512_set1_epi32(-1);
  const __m512i vb = _mm512_set1_epi32(static_cast<int>(best));
  std::uint32_t count = 0;
  for (int j = 0; j < 4; ++j) {
    const auto m = static_cast<__mmask16>(mask >> (16 * j));
    if (!m) continue;
    const __m512i v = _mm512_mask_loadu_epi32(inf, m, avail + 16 * j);
    count += static_cast<std::uint32_t>(
        std::popcount(static_cast<std::uint32_t>(_mm512_mask_cmpeq_epu32_mask(m, v, vb))));
  }
  return count;
}

template <typename WordFn>
__attribute__((target("avx512f,avx512bw"))) std::optional<PieceId> pick_rarest_avx512(
    const std::vector<std::uint32_t>& availability, std::size_t words, WordFn&& candidate_word,
    graph::Rng& rng) {
  std::uint32_t best = 0xFFFFFFFFu;
  bool any = false;
  for (std::size_t w = 0; w < words; ++w) {
    const std::uint64_t mask = candidate_word(w);
    if (!mask) continue;
    any = true;
    // The last word's tail lanes (beyond num_pieces) are never
    // candidates — Bitfield keeps them zero — so the masked loads
    // stay inside the availability array.
    const std::uint32_t m = word_min_avx512(&availability[w * 64], mask);
    best = m < best ? m : best;
  }
  if (!any) return std::nullopt;
  std::uint64_t ties = 0;
  for (std::size_t w = 0; w < words; ++w) {
    const std::uint64_t mask = candidate_word(w);
    if (!mask) continue;
    ties += word_eq_count_avx512(&availability[w * 64], mask, best);
  }
  std::uint64_t k = ties == 1 ? 0 : rng.below(ties);
  for (std::size_t w = 0; w < words; ++w) {
    const std::uint64_t mask = candidate_word(w);
    if (!mask) continue;
    const std::uint32_t count = word_eq_count_avx512(&availability[w * 64], mask, best);
    if (k >= count) {
      k -= count;
      continue;
    }
    std::uint64_t bits = mask;
    while (bits != 0) {
      const auto piece =
          static_cast<PieceId>(w * 64 + static_cast<std::size_t>(std::countr_zero(bits)));
      bits &= bits - 1;
      if (availability[piece] == best) {
        if (k == 0) return piece;
        --k;
      }
    }
  }
  return std::nullopt;  // unreachable: pass 3 revisits pass 1's candidates
}

#pragma GCC diagnostic pop

bool pick_has_avx512() {
  static const bool ok =
      __builtin_cpu_supports("avx512f") && __builtin_cpu_supports("avx512bw");
  return ok;
}

#endif  // STRAT_PICK_AVX512_DISPATCH

/// Dense candidate sets pay ~1 availability load per candidate in the
/// scalar loop; the vector path is flat (~4 masked loads per word), so
/// it wins once a pick sees more than about two candidates per lane
/// group. Sparse sets (endgame tails, nearly-done receivers) stay on
/// the scalar loop, which is faster there and the only path on
/// machines without the instruction set.
template <typename WordFn>
std::optional<PieceId> pick_rarest_masked(const std::vector<std::uint32_t>& availability,
                                          std::size_t words, WordFn&& candidate_word,
                                          graph::Rng& rng) {
#ifdef STRAT_PICK_AVX512_DISPATCH
  if (pick_has_avx512()) {
    std::size_t candidates = 0;
    for (std::size_t w = 0; w < words; ++w) {
      candidates += static_cast<std::size_t>(std::popcount(candidate_word(w)));
    }
    if (candidates >= 128) {
      return pick_rarest_avx512(availability, words, candidate_word, rng);
    }
  }
#endif
  return pick_rarest_scalar(availability, words, candidate_word, rng);
}

}  // namespace

std::optional<PieceId> PiecePicker::pick_rarest(const Bitfield& local, const Bitfield& remote,
                                                graph::Rng& rng) const {
  if (local.size() != remote.size() || local.size() != availability_.size()) {
    throw std::invalid_argument("PiecePicker::pick_rarest: size mismatch");
  }
  const std::span<const std::uint64_t> lw = local.words();
  const std::span<const std::uint64_t> rw = remote.words();
  return pick_rarest_masked(
      availability_, rw.size(), [&](std::size_t w) { return rw[w] & ~lw[w]; }, rng);
}

std::optional<PieceId> PiecePicker::pick_rarest(const Bitfield& local, const Bitfield& remote,
                                                const Bitfield& excluded, graph::Rng& rng) const {
  if (local.size() != remote.size() || local.size() != availability_.size() ||
      excluded.size() != local.size()) {
    throw std::invalid_argument("PiecePicker::pick_rarest: size mismatch");
  }
  const std::span<const std::uint64_t> lw = local.words();
  const std::span<const std::uint64_t> rw = remote.words();
  const std::span<const std::uint64_t> ew = excluded.words();
  return pick_rarest_masked(
      availability_, rw.size(), [&](std::size_t w) { return rw[w] & ~lw[w] & ~ew[w]; }, rng);
}

}  // namespace strat::bt
