#include "bittorrent/piece_picker.hpp"

#include <bit>
#include <stdexcept>

namespace strat::bt {

Bitfield::Bitfield(std::size_t bits) : bits_(bits), words_((bits + 63) / 64, 0) {}

bool Bitfield::test(PieceId i) const {
  if (i >= bits_) throw std::out_of_range("Bitfield::test: bad piece");
  return (words_[i >> 6] >> (i & 63)) & 1u;
}

void Bitfield::set(PieceId i) {
  if (i >= bits_) throw std::out_of_range("Bitfield::set: bad piece");
  const std::uint64_t bit = std::uint64_t{1} << (i & 63);
  if (!(words_[i >> 6] & bit)) {
    words_[i >> 6] |= bit;
    ++count_;
  }
}

void Bitfield::reset(PieceId i) {
  if (i >= bits_) throw std::out_of_range("Bitfield::reset: bad piece");
  const std::uint64_t bit = std::uint64_t{1} << (i & 63);
  if (words_[i >> 6] & bit) {
    words_[i >> 6] &= ~bit;
    --count_;
  }
}

bool Bitfield::interested_in(const Bitfield& other) const {
  if (other.bits_ != bits_) throw std::invalid_argument("Bitfield::interested_in: size mismatch");
  for (std::size_t w = 0; w < words_.size(); ++w) {
    if (other.words_[w] & ~words_[w]) return true;
  }
  return false;
}

PiecePicker::PiecePicker(std::size_t num_pieces) : availability_(num_pieces, 0) {}

void PiecePicker::add_availability(PieceId piece) { ++availability_.at(piece); }

void PiecePicker::remove_availability(PieceId piece) {
  std::uint32_t& copies = availability_.at(piece);
  if (copies == 0) throw std::logic_error("PiecePicker::remove_availability: already zero");
  --copies;
}

std::uint32_t PiecePicker::availability(PieceId piece) const { return availability_.at(piece); }

std::optional<PieceId> PiecePicker::pick_rarest(const Bitfield& local, const Bitfield& remote,
                                                graph::Rng& rng) const {
  if (local.size() != remote.size() || local.size() != availability_.size()) {
    throw std::invalid_argument("PiecePicker::pick_rarest: size mismatch");
  }
  // Candidates are remote \ local; walking the set bits of the masked
  // words visits them in ascending piece order while skipping
  // everything else — this is the swarm simulator's hottest loop.
  const std::span<const std::uint64_t> lw = local.words();
  const std::span<const std::uint64_t> rw = remote.words();
  std::optional<PieceId> best;
  std::uint32_t best_avail = 0;
  std::uint64_t ties = 0;
  for (std::size_t w = 0; w < rw.size(); ++w) {
    std::uint64_t mask = rw[w] & ~lw[w];
    while (mask != 0) {
      const auto piece =
          static_cast<PieceId>(w * 64 + static_cast<std::size_t>(std::countr_zero(mask)));
      mask &= mask - 1;
      const std::uint32_t avail = availability_[piece];
      if (!best || avail < best_avail) {
        best = piece;
        best_avail = avail;
        ties = 1;
      } else if (avail == best_avail) {
        // Reservoir-style uniform tie-breaking.
        ++ties;
        if (rng.below(ties) == 0) best = piece;
      }
    }
  }
  return best;
}

}  // namespace strat::bt
