#include "bittorrent/choker.hpp"

#include <algorithm>

namespace strat::bt {

TftChoker::TftChoker(std::size_t tft_slots, std::size_t optimistic_rounds)
    : tft_slots_(tft_slots), optimistic_rounds_(std::max<std::size_t>(1, optimistic_rounds)) {}

std::vector<core::PeerId> TftChoker::select(std::vector<ChokeCandidate> candidates,
                                            graph::Rng& rng) {
  std::vector<ChokeCandidate> interested;
  interested.reserve(candidates.size());
  for (const ChokeCandidate& c : candidates) {
    if (c.interested) interested.push_back(c);
  }
  // Random shuffle first so that sorting breaks score ties uniformly.
  rng.shuffle(interested);
  std::stable_sort(interested.begin(), interested.end(),
                   [](const ChokeCandidate& a, const ChokeCandidate& b) {
                     return a.score > b.score;
                   });
  std::vector<core::PeerId> unchoked;
  const std::size_t regular = std::min(tft_slots_, interested.size());
  unchoked.reserve(regular + 1);
  for (std::size_t i = 0; i < regular; ++i) unchoked.push_back(interested[i].peer);

  // Optimistic slot: rotate periodically, or refresh if the current
  // target vanished from the candidate set or got a regular slot.
  const bool target_taken =
      std::find(unchoked.begin(), unchoked.end(), optimistic_) != unchoked.end();
  const bool target_alive =
      std::any_of(interested.begin() + static_cast<long>(regular), interested.end(),
                  [&](const ChokeCandidate& c) { return c.peer == optimistic_; });
  ++rounds_since_rotation_;
  if (rounds_since_rotation_ >= optimistic_rounds_ || target_taken || !target_alive) {
    optimistic_ = core::kNoPeer;
    const std::size_t pool = interested.size() - regular;
    if (pool > 0) {
      const std::size_t pick = regular + static_cast<std::size_t>(rng.below(pool));
      optimistic_ = interested[pick].peer;
    }
    rounds_since_rotation_ = 0;
  }
  if (optimistic_ != core::kNoPeer) unchoked.push_back(optimistic_);
  return unchoked;
}

}  // namespace strat::bt
