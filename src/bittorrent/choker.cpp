#include "bittorrent/choker.hpp"

#include <algorithm>

namespace strat::bt {

TftChoker::TftChoker(std::size_t tft_slots, std::size_t optimistic_rounds)
    : tft_slots_(tft_slots), optimistic_rounds_(std::max<std::size_t>(1, optimistic_rounds)) {}

std::vector<core::PeerId> TftChoker::select(std::vector<ChokeCandidate> candidates,
                                            graph::Rng& rng) {
  std::vector<core::PeerId> unchoked;
  select_into(candidates, rng, unchoked);
  return unchoked;
}

void TftChoker::select_into(std::vector<ChokeCandidate>& candidates, graph::Rng& rng,
                            std::vector<core::PeerId>& out) {
  // Drop uninterested candidates in place (relative order preserved, so
  // the shuffle below sees the same sequence the copy-out version did).
  candidates.erase(std::remove_if(candidates.begin(), candidates.end(),
                                  [](const ChokeCandidate& c) { return !c.interested; }),
                   candidates.end());
  // Random shuffle first so that sorting breaks score ties uniformly.
  rng.shuffle(candidates);
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const ChokeCandidate& a, const ChokeCandidate& b) {
                     return a.score > b.score;
                   });
  out.clear();
  const std::size_t regular = std::min(tft_slots_, candidates.size());
  out.reserve(regular + 1);
  for (std::size_t i = 0; i < regular; ++i) out.push_back(candidates[i].peer);

  // Optimistic slot: rotate periodically, or refresh if the current
  // target vanished from the candidate set or got a regular slot.
  const bool target_taken = std::find(out.begin(), out.end(), optimistic_) != out.end();
  const bool target_alive =
      std::any_of(candidates.begin() + static_cast<long>(regular), candidates.end(),
                  [&](const ChokeCandidate& c) { return c.peer == optimistic_; });
  ++rounds_since_rotation_;
  if (rounds_since_rotation_ >= optimistic_rounds_ || target_taken || !target_alive) {
    optimistic_ = core::kNoPeer;
    const std::size_t pool = candidates.size() - regular;
    if (pool > 0) {
      const std::size_t pick = regular + static_cast<std::size_t>(rng.below(pool));
      optimistic_ = candidates[pick].peer;
    }
    rounds_since_rotation_ = 0;
  }
  if (optimistic_ != core::kNoPeer) out.push_back(optimistic_);
}

}  // namespace strat::bt
