#include "bittorrent/autosave.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <system_error>

#include "bittorrent/snapshot.hpp"
#include "bittorrent/tracker_sim.hpp"

namespace strat::bt {

namespace {

/// `auto-<zero-padded round>.snap` — round numbers, never timestamps,
/// so generation order == lexicographic filename order and the whole
/// scheme stays deterministic (strat-lint R3).
std::filesystem::path generation_path(const std::filesystem::path& dir, std::size_t round) {
  char name[32];
  std::snprintf(name, sizeof name, "auto-%08zu.snap", round);
  return dir / name;
}

}  // namespace

Autosaver::Autosaver(std::size_t every, std::filesystem::path dir, std::size_t keep)
    : every_(every), keep_(keep), dir_(std::move(dir)) {
  if (every_ == 0) throw std::invalid_argument("Autosaver: every must be >= 1");
  if (keep_ == 0) throw std::invalid_argument("Autosaver: keep must be >= 1");
}

void Autosaver::write(std::size_t round, std::string_view payload) const {
  std::filesystem::create_directories(dir_);
  const std::filesystem::path final_path = generation_path(dir_, round);
  std::filesystem::path tmp_path = final_path;
  tmp_path += ".tmp";
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
    out.flush();
    if (!out) {
      throw std::runtime_error("autosave: write failed: " + tmp_path.string());
    }
  }
  // The atomic publish: a crash before this line leaves only a .tmp
  // (ignored by recovery); after it, a complete generation.
  std::filesystem::rename(tmp_path, final_path);
  const std::vector<std::filesystem::path> generations = autosave_files(dir_);
  for (std::size_t i = keep_; i < generations.size(); ++i) {
    std::error_code ec;  // best-effort: a prune failure must not kill the run
    std::filesystem::remove(generations[i], ec);
  }
}

std::vector<std::filesystem::path> autosave_files(const std::filesystem::path& dir) {
  std::vector<std::filesystem::path> out;
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) return out;
  for (const std::filesystem::directory_entry& entry : it) {
    const std::string name = entry.path().filename().string();
    if (name.starts_with("auto-") && name.ends_with(".snap")) out.push_back(entry.path());
  }
  std::sort(out.begin(), out.end(), std::greater<>());
  return out;
}

std::optional<ResumedSwarm> recover_latest_swarm(const std::filesystem::path& dir) {
  for (const std::filesystem::path& path : autosave_files(dir)) {
    std::ifstream in(path, std::ios::binary);
    if (!in) continue;
    try {
      return std::optional<ResumedSwarm>(std::in_place, in);
    } catch (const SnapshotError&) {
      // Corrupt or truncated generation: fall back to the next-newest.
    }
  }
  return std::nullopt;
}

std::optional<TrackerSim> recover_latest_tracker(const std::filesystem::path& dir,
                                                 const TrackerConfig& cfg) {
  for (const std::filesystem::path& path : autosave_files(dir)) {
    std::ifstream in(path, std::ios::binary);
    if (!in) continue;
    try {
      return TrackerSim::resume(in, cfg);
    } catch (const SnapshotError&) {
      // Corrupt or truncated generation: fall back to the next-newest.
    }
  }
  return std::nullopt;
}

}  // namespace strat::bt
