#include "bittorrent/swarm.hpp"

#include <chrono>
#include <cmath>
#include <stdexcept>
#include <type_traits>

#include "graph/erdos_renyi.hpp"
#include "graph/graph.hpp"
#include "sim/parallel.hpp"
#include "sim/stats.hpp"

namespace strat::bt {

namespace {
constexpr std::uint32_t kNoRetired = std::numeric_limits<std::uint32_t>::max();

// Minimum work per chunk before the parallel phases actually spawn
// threads: rows for the per-peer phases, slots for the pool-wide fold.
// Small enough that test-scale swarms (hundreds of peers) exercise the
// threaded paths under TSan, large enough that a chunk amortizes its
// thread.
constexpr std::size_t kRowGrain = 64;
constexpr std::size_t kSlotGrain = 4096;

double seconds_since(std::chrono::steady_clock::time_point start,
                     std::chrono::steady_clock::time_point stop) {
  return std::chrono::duration<double>(stop - start).count();
}
}  // namespace

Swarm::Swarm(const SwarmConfig& config, std::vector<double> upload_kbps, graph::Rng& rng)
    : config_(config),
      rng_(rng),
      picker_(config.num_pieces),
      reserved_scratch_(config.num_pieces),
      leechers_(config.num_peers) {
  if (upload_kbps.size() != config.num_peers) {
    throw std::invalid_argument("Swarm: one upload capacity per leecher required");
  }
  if (config.num_peers < 2) throw std::invalid_argument("Swarm: need at least 2 peers");
  if (config.num_pieces == 0 || config.piece_kb <= 0.0) {
    throw std::invalid_argument("Swarm: pieces must be positive");
  }
  if (config.initial_completion < 0.0 || config.initial_completion >= 1.0) {
    throw std::invalid_argument("Swarm: initial_completion in [0, 1)");
  }
  if (!config.tft_slots_per_peer.empty() &&
      config.tft_slots_per_peer.size() != config.num_peers) {
    throw std::invalid_argument("Swarm: tft_slots_per_peer needs one entry per leecher");
  }
  const FaultSpec& fspec = config.faults;
  if (fspec.connect_failure_prob < 0.0 || fspec.connect_failure_prob > 1.0 ||
      fspec.nat_fraction < 0.0 || fspec.nat_fraction > 1.0 || fspec.lane_loss_prob < 0.0 ||
      fspec.lane_loss_prob > 1.0) {
    throw std::invalid_argument("Swarm: fault probabilities must be in [0, 1]");
  }
  if (fspec.connect_attempts == 0) {
    throw std::invalid_argument("Swarm: faults.connect_attempts must be >= 1");
  }
  if (fspec.backoff_base == 0 || fspec.backoff_cap < fspec.backoff_base) {
    throw std::invalid_argument("Swarm: faults.backoff_cap >= backoff_base >= 1 required");
  }
  // The per-peer choke streams are keyed off one structural draw, made
  // before any other RNG use so both data planes derive the same key.
  choke_key_ = rng();
  const std::size_t total = config.num_peers + config.seeds;
  const graph::Graph overlay = graph::erdos_renyi_gnd(total, config.neighbor_degree, rng);

  // The initial population occupies rows 0..total-1 in id order, so a
  // static (churn-free) run keeps row == external id throughout.
  for (std::size_t p = 0; p < total; ++p) table_.add(static_cast<core::PeerId>(p));

  // Ingest the (finalized, sorted) overlay adjacency into the slot
  // pool, row-contiguous so a static run keeps CSR-like locality.
  nbr_.resize(total);
  nslot_.resize(total);
  std::size_t slot_count = 0;
  for (std::size_t p = 0; p < total; ++p) {
    slot_count += overlay.degree(static_cast<graph::Vertex>(p));
  }
  edge_peer_.reserve(slot_count);
  for (std::size_t p = 0; p < total; ++p) {
    const auto nbrs = overlay.neighbors(static_cast<graph::Vertex>(p));
    nbr_[p].assign(nbrs.begin(), nbrs.end());
    nslot_[p].resize(nbrs.size());
    for (std::size_t i = 0; i < nbr_[p].size(); ++i) {
      nslot_[p][i] = edge_peer_.size();
      edge_peer_.push_back(nbr_[p][i]);
    }
  }
  mirror_.resize(edge_peer_.size());
  for (std::size_t p = 0; p < total; ++p) {
    for (std::size_t i = 0; i < nbr_[p].size(); ++i) {
      mirror_[nslot_[p][i]] = slot_of(static_cast<Row>(nbr_[p][i]), static_cast<core::PeerId>(p));
    }
  }
  slot_gen_.assign(edge_peer_.size(), 0);
  rate_in_.assign(edge_peer_.size(), 0.0);
  now_in_.assign(edge_peer_.size(), 0.0);
  rate_out_.assign(edge_peer_.size(), 0.0);
  now_out_.assign(edge_peer_.size(), 0.0);
  inflight_.assign(edge_peer_.size(), kNoPiece);
  mutual_rounds_.assign(edge_peer_.size(), 0);

  stats_.resize(total);
  have_.assign(total, Bitfield(config.num_pieces));
  chokers_.reserve(total);
  for (std::size_t p = 0; p < total; ++p) {
    const std::size_t slots = (p < config.num_peers && !config.tft_slots_per_peer.empty())
                                  ? config.tft_slots_per_peer[p]
                                  : config.tft_slots;
    chokers_.emplace_back(slots, config.optimistic_rounds);
  }
  unchoked_.resize(total);
  partial_.resize(total);
  // Fault rows are filled before the init walk below (which can depart
  // Bernoulli-complete leechers, compacting rows). NAT membership is a
  // counter-stream draw keyed by external id — zero draws when the NAT
  // fraction is off, and independent of the structural generator either
  // way. The initial erdos-renyi overlay is NAT-exempt: it models
  // pre-existing connectivity, not fresh announce dials.
  for (std::size_t p = 0; p < total; ++p) {
    const bool nat =
        fspec.nat_fraction > 0.0 &&
        graph::Rng::stream(choke_key_ ^ kFaultNatSalt, static_cast<core::PeerId>(p), 0)
            .bernoulli(fspec.nat_fraction);
    faults_.add_peer(nat);
  }

  double seed_capacity = config.seed_upload_kbps;
  if (seed_capacity <= 0.0) {
    // Default: the median leecher capacity, so seeds neither starve the
    // swarm nor flood a lucky few.
    std::vector<double> sorted = upload_kbps;
    std::sort(sorted.begin(), sorted.end());
    seed_capacity = sorted[sorted.size() / 2];
  }
  // Initialization walks external ids ascending; a Bernoulli-complete
  // leecher can depart (compacting rows) mid-walk, so every access goes
  // through the table.
  for (std::size_t p = 0; p < total; ++p) {
    const auto id = static_cast<core::PeerId>(p);
    const Row r = table_.row_of(id);
    const bool is_seed = p >= config.num_peers;
    stats_[r].seed = is_seed;
    stats_[r].upload_kbps = is_seed ? seed_capacity : upload_kbps[p];
    if (is_seed) {
      for (PieceId piece = 0; piece < config.num_pieces; ++piece) {
        have_[r].set(piece);
        picker_.add_availability(piece);
      }
      stats_[r].pieces = config.num_pieces;
      stats_[r].completion_round = 0.0;
    } else if (config.post_flashcrowd) {
      for (PieceId piece = 0; piece < config.num_pieces; ++piece) {
        if (rng.bernoulli(config.initial_completion)) {
          have_[r].set(piece);
          picker_.add_availability(piece);
        }
      }
      stats_[r].pieces = have_[r].count();
      if (have_[r].complete()) {
        // The Bernoulli draws can complete a leecher outright; treat it
        // like a round-0 completion so it never divides by the full run
        // length in leech_download_kbps() and departs consistently.
        stats_[r].completion_round = 0.0;
        if (!config.stay_as_seed) depart_peer(id, 0.0);
      }
    }
  }
  refresh_ranks_force();
}

std::size_t Swarm::slot_of(Row pr, core::PeerId q) const {
  const auto& row = nbr_[pr];
  const auto it = std::lower_bound(row.begin(), row.end(), q);
  return nslot_[pr][static_cast<std::size_t>(it - row.begin())];
}

std::size_t Swarm::target_degree() const {
  return static_cast<std::size_t>(std::llround(config_.neighbor_degree));
}

std::size_t Swarm::claim_slot() {
  if (free_slots_.empty()) {
    const std::size_t s = edge_peer_.size();
    edge_peer_.push_back(0);
    mirror_.push_back(0);
    slot_gen_.push_back(0);
    rate_in_.push_back(0.0);
    now_in_.push_back(0.0);
    rate_out_.push_back(0.0);
    now_out_.push_back(0.0);
    inflight_.push_back(kNoPiece);
    mutual_rounds_.push_back(0);
    return s;
  }
  const std::size_t s = free_slots_.back();
  free_slots_.pop_back();
  return s;
}

void Swarm::release_slot(std::size_t s) {
  // edge_peer_/mirror_ go stale on purpose; the generation bump marks
  // every outstanding reference to this slot as dead.
  rate_in_[s] = 0.0;
  now_in_[s] = 0.0;
  rate_out_[s] = 0.0;
  now_out_[s] = 0.0;
  inflight_[s] = kNoPiece;
  mutual_rounds_[s] = 0;
  ++slot_gen_[s];
  free_slots_.push_back(s);
}

void Swarm::connect(core::PeerId p, core::PeerId q) {
  const std::size_t spq = claim_slot();
  const std::size_t sqp = claim_slot();
  edge_peer_[spq] = q;
  edge_peer_[sqp] = p;
  mirror_[spq] = sqp;
  mirror_[sqp] = spq;
  const auto insert_row = [this](Row owner, core::PeerId nb, std::size_t slot) {
    auto& row = nbr_[owner];
    const auto it = std::lower_bound(row.begin(), row.end(), nb);
    const auto idx = it - row.begin();
    row.insert(it, nb);
    nslot_[owner].insert(nslot_[owner].begin() + idx, slot);
  };
  insert_row(table_.row_of(p), q, spq);
  insert_row(table_.row_of(q), p, sqp);
}

void Swarm::flush_mutual(core::PeerId p, core::PeerId q, std::size_t slot_min) {
  if (mutual_rounds_[slot_min] == 0) return;
  if (config_.retain_departed) {
    const core::PeerId a = std::min(p, q);
    const core::PeerId b = std::max(p, q);
    retired_mutual_.emplace_back((static_cast<std::uint64_t>(a) << 32) | b,
                                 mutual_rounds_[slot_min]);
  }
  mutual_rounds_[slot_min] = 0;
}

void Swarm::release_all_edges(core::PeerId p, Row pr) {
  for (std::size_t i = 0; i < nbr_[pr].size(); ++i) {
    const core::PeerId q = nbr_[pr][i];
    const std::size_t spq = nslot_[pr][i];
    const std::size_t sqp = mirror_[spq];
    flush_mutual(p, q, p < q ? spq : sqp);
    release_slot(spq);
    release_slot(sqp);
    const Row qr = table_.row_of(q);
    auto& qrow = nbr_[qr];
    const auto it = std::lower_bound(qrow.begin(), qrow.end(), p);
    const auto idx = it - qrow.begin();
    qrow.erase(it);
    nslot_[qr].erase(nslot_[qr].begin() + idx);
  }
  nbr_[pr].clear();
  nslot_[pr].clear();
}

std::size_t Swarm::connect_random_live(core::PeerId p, std::size_t need) {
  const Row pr = table_.row_of(p);
  return detail::announce_connect(
      table_.ids(), p, need, rng_,
      [&](core::PeerId q) {
        return std::binary_search(nbr_[pr].begin(), nbr_[pr].end(), q);
      },
      [&](core::PeerId q) { connect(p, q); });
}

std::size_t Swarm::announce_with_faults(core::PeerId p, std::size_t need) {
  if (!config_.faults.flaky_connects()) return connect_random_live(p, need);
  const Row pr = table_.row_of(p);
  // One trial stream per announce operation, keyed by the per-peer
  // announce sequence number — the draws depend only on (peer, how many
  // announces it made), never on threads or shard layout.
  graph::Rng trials =
      graph::Rng::stream(choke_key_ ^ kFaultConnectSalt, p, faults_.announce_seq_[pr]++);
  const double fail_prob = config_.faults.connect_failure_prob;
  const std::size_t max_attempts = config_.faults.connect_attempts;
  return detail::announce_connect_faulty(
      table_.ids(), p, need, rng_,
      [&](core::PeerId q) {
        return std::binary_search(nbr_[pr].begin(), nbr_[pr].end(), q);
      },
      [&](core::PeerId q) {
        if (!faults_.rejects_inbound(table_.row_of(q))) return false;
        ++faults_.nat_rejections_;
        return true;
      },
      [&](core::PeerId) {
        if (fail_prob <= 0.0) return true;
        for (std::size_t a = 0; a < max_attempts; ++a) {
          if (!trials.bernoulli(fail_prob)) return true;
        }
        ++faults_.connect_failures_;
        return false;
      },
      [&](core::PeerId q) { connect(p, q); });
}

void Swarm::fault_step() {
  const FaultSpec& fspec = config_.faults;
  if (!fspec.outages()) return;
  const bool down = fspec.tracker_down(round_);
  const std::size_t target = target_degree();
  // Serial ascending row walk. No departures happen here, so rows are
  // stable; announces mutate only adjacency and the structural RNG,
  // exactly like the ChurnDriver's reannounce sweep.
  for (Row r = 0; r < table_.size(); ++r) {
    if (!faults_.retry_pending(r) || faults_.retry_round_[r] > round_) continue;
    ++faults_.announce_retries_;
    if (down) {
      // Still down: the failed retry backs off further (capped).
      faults_.fail_announce(r, round_, fspec);
      continue;
    }
    faults_.reset_retry(r);
    if (nbr_[r].size() < target) {
      announce_with_faults(table_.id_at(r), target - nbr_[r].size());
    }
  }
}

core::PeerId Swarm::join(double upload_kbps, const Bitfield& have) {
  if (have.size() != config_.num_pieces) {
    throw std::invalid_argument("Swarm::join: bitfield size mismatch");
  }
  if (upload_kbps <= 0.0) throw std::invalid_argument("Swarm::join: capacity must be positive");
  const auto p = static_cast<core::PeerId>(table_.id_space());
  const Row r = table_.add(p);
  stats_.emplace_back();
  stats_[r].upload_kbps = upload_kbps;
  stats_[r].join_round = static_cast<double>(round_);
  stats_[r].pieces = have.count();
  have_.push_back(have);
  picker_.add_bitfield(have);
  chokers_.emplace_back(config_.tft_slots, config_.optimistic_rounds);
  unchoked_.emplace_back();
  partial_.emplace_back();
  nbr_.emplace_back();
  nslot_.emplace_back();
  faults_.add_peer(config_.faults.nat_fraction > 0.0 &&
                   graph::Rng::stream(choke_key_ ^ kFaultNatSalt, p, 0)
                       .bernoulli(config_.faults.nat_fraction));
  ++arrivals_;
  if (config_.faults.tracker_down(round_)) {
    // The arrival's announce never reaches the tracker: it enters with
    // no neighbors (degraded from birth) and retries on backoff.
    faults_.fail_announce(r, round_, config_.faults);
  } else {
    // Tracker announce: uniform picks from the live population.
    announce_with_faults(p, target_degree());
  }
  ++leechers_;
  ranks_dirty_ = true;
  if (have_[r].complete()) {
    stats_[r].completion_round = static_cast<double>(round_);
    if (!config_.stay_as_seed) depart_peer(p, static_cast<double>(round_));
  }
  return p;
}

core::PeerId Swarm::join(double upload_kbps) {
  return join(upload_kbps, Bitfield(config_.num_pieces));
}

void Swarm::leave(core::PeerId p) {
  if (p >= table_.id_space()) throw std::out_of_range("Swarm::leave: unknown peer");
  if (!table_.contains(p)) return;
  depart_peer(p, static_cast<double>(round_));
}

std::size_t Swarm::reannounce(core::PeerId p) {
  if (p >= table_.id_space()) throw std::out_of_range("Swarm::reannounce: unknown peer");
  const Row pr = table_.row_of(p);
  if (pr == PeerTable::kNoRow) return 0;
  if (config_.faults.outages()) {
    if (config_.faults.tracker_down(round_)) {
      // A retry already on the books keeps its (longer) schedule; a
      // fresh failure starts the backoff clock.
      if (!faults_.retry_pending(pr)) faults_.fail_announce(pr, round_, config_.faults);
      return 0;
    }
    // Reached the tracker: reset-on-success, whether or not the degree
    // check below makes any new connections.
    faults_.reset_retry(pr);
  }
  const std::size_t target = target_degree();
  if (nbr_[pr].size() >= target) return 0;
  return announce_with_faults(p, target - nbr_[pr].size());
}

void Swarm::set_upload_capacity(core::PeerId p, double kbps) {
  if (p >= table_.id_space()) {
    throw std::out_of_range("Swarm::set_upload_capacity: unknown peer");
  }
  if (!(kbps > 0.0)) {
    throw std::invalid_argument(
        "Swarm::set_upload_capacity: capacity must be positive");
  }
  const Row pr = table_.row_of(p);
  if (pr == PeerTable::kNoRow) return;
  if (stats_[pr].upload_kbps == kbps) return;
  stats_[pr].upload_kbps = kbps;
  ranks_dirty_ = true;
}

std::size_t Swarm::fan_out() const noexcept {
  return config_.threads == 0 ? sim::recommended_threads() : config_.threads;
}

void Swarm::choke_row(Row r, std::vector<ChokeCandidate>& candidates) {
  const auto& row = nbr_[r];
  const auto& slots = nslot_[r];
  candidates.clear();
  const bool serve_fastest = stats_[r].seed || have_[r].complete();
  // Adjacency rows never contain departed peers (their edges were
  // released), so every neighbor is a candidate.
  for (std::size_t i = 0; i < row.size(); ++i) {
    const core::PeerId q = row[i];
    ChokeCandidate c;
    c.peer = q;
    c.interested = wants_from(table_.row_of(q), r);
    // Seed policy: serve the fastest downloaders.
    c.score = serve_fastest ? rate_out_[slots[i]] : rate_in_[slots[i]];
    candidates.push_back(c);
  }
  // All randomness from the row's own counter-based stream: the result
  // depends only on (run key, peer, round), never on which worker or in
  // what order the row was processed.
  graph::Rng stream = graph::Rng::stream(choke_key_, table_.id_at(r), round_);
  chokers_[r].select_into(candidates, stream, unchoked_[r]);
}

void Swarm::choke_step() {
  // Score/select fan-out: every read (rates, bitfields, stats, table)
  // is phase-immutable, every write (choker state, unchoke set) is
  // row-owned, so chunks over disjoint row ranges never race.
  const std::size_t n = table_.size();
  const std::size_t threads = fan_out();
  const std::size_t chunks = sim::chunk_count(n, threads, kRowGrain);
  if (choke_scratch_.size() < chunks) choke_scratch_.resize(chunks);
  sim::parallel_for_chunks(n, threads, kRowGrain,
                           [&](std::size_t begin, std::size_t end, std::size_t chunk) {
                             auto& scratch = choke_scratch_[chunk];
                             for (std::size_t r = begin; r < end; ++r) {
                               choke_row(static_cast<Row>(r), scratch);
                             }
                           });
}

void Swarm::count_incoming_unchokes() {
  const std::size_t n = table_.size();
  const std::size_t threads = fan_out();
  const std::size_t chunks = sim::chunk_count(n, threads, kRowGrain);
  if (chunks <= 1) {
    incoming_unchokes_.assign(n, 0);
    for (Row r = 0; r < table_.size(); ++r) {
      for (const core::PeerId q : unchoked_[r]) ++incoming_unchokes_[table_.row_of(q)];
    }
    return;
  }
  // No zero-fill on this path: the merge pass overwrites every element.
  incoming_unchokes_.resize(n);
  // Scatter increments race, so each chunk tallies into its own buffer;
  // the merge is integer addition — associative and commutative, hence
  // bitwise identical to the serial count at any thread count.
  if (incoming_scratch_.size() < chunks) incoming_scratch_.resize(chunks);
  sim::parallel_for_chunks(n, threads, kRowGrain,
                           [&](std::size_t begin, std::size_t end, std::size_t chunk) {
                             auto& local = incoming_scratch_[chunk];
                             local.assign(n, 0);
                             for (std::size_t r = begin; r < end; ++r) {
                               for (const core::PeerId q : unchoked_[r]) {
                                 ++local[table_.row_of(q)];
                               }
                             }
                           });
  sim::parallel_for_chunks(n, threads, kRowGrain,
                           [&](std::size_t begin, std::size_t end, std::size_t) {
                             for (std::size_t r = begin; r < end; ++r) {
                               std::uint32_t sum = 0;
                               for (std::size_t c = 0; c < chunks; ++c) {
                                 sum += incoming_scratch_[c][r];
                               }
                               incoming_unchokes_[r] = sum;
                             }
                           });
}

void Swarm::record_mutual_unchokes() {
  // Mutual unchokes among present, still-downloading leechers: these
  // are the effective TFT collaborations the matching model describes.
  // No departures can occur between the choke step and here, so every
  // unchoked target still owns a live row.
  for (Row r = 0; r < table_.size(); ++r) {
    if (stats_[r].seed || have_[r].complete()) continue;
    const core::PeerId p = table_.id_at(r);
    for (core::PeerId q : unchoked_[r]) {
      if (q <= p) continue;
      const Row qr = table_.row_of(q);
      if (stats_[qr].seed || have_[qr].complete()) continue;
      const auto& back = unchoked_[qr];
      if (std::find(back.begin(), back.end(), p) != back.end()) {
        ++mutual_rounds_[slot_of(r, q)];
      }
    }
  }
}

std::optional<PieceId> Swarm::pick_for(Row qr, Row pr, std::size_t slot_qp, graph::Rng& rng) {
  if (config_.endgame) {
    const std::size_t missing = config_.num_pieces - stats_[qr].pieces;
    if (missing >= incoming_unchokes_[qr]) {
      // Non-endgame phase: each sender gets a distinct missing piece —
      // exclude pieces already in flight to q from other neighbors.
      for (const PieceId piece : reserved_list_) reserved_scratch_.reset(piece);
      reserved_list_.clear();
      const auto& slots = nslot_[qr];
      for (const std::size_t s : slots) {
        if (s == slot_qp) continue;
        const PieceId t = inflight_[s];
        if (t != kNoPiece && !have_[qr].test(t)) {
          reserved_scratch_.set(t);
          reserved_list_.push_back(t);
        }
      }
      return picker_.pick_rarest(have_[qr], have_[pr], reserved_scratch_, rng);
    }
    // Endgame phase: the missing set is smaller than the receiver's
    // inbound unchoke count — duplicate in-flight targets are allowed
    // (first completion cancels the rest via the staleness re-pick).
  }
  return picker_.pick_rarest(have_[qr], have_[pr], rng);
}

std::optional<PieceId> Swarm::plan_pick(const detail::TransferLane& lane, Row qr, Row pr,
                                        graph::Rng& rng, TransferScratch& scratch) {
  bool endgame_dup = false;
  if (config_.endgame) {
    // Endgame discipline against the *local* view: the receiver's
    // snapshot piece count plus what this lane completed for it.
    const std::size_t missing =
        config_.num_pieces - (stats_[qr].pieces + lane.completed.size());
    endgame_dup = missing < incoming_unchokes_[qr];
  }
  if (endgame_dup && lane.completed.empty()) {
    // Endgame phase: duplicate in-flight targets are allowed and there
    // is no lane-local state to hold back — pick over the raw bitfields.
    return picker_.pick_rarest(have_[qr], have_[pr], rng);
  }
  if (scratch.reserved.size() != config_.num_pieces) {
    scratch.reserved = Bitfield(config_.num_pieces);
  }
  for (const PieceId piece : scratch.reserved_list) scratch.reserved.reset(piece);
  scratch.reserved_list.clear();
  scratch.reserved_partials.clear();
  // Locally completed pieces are held in the plan's view even though
  // the snapshot bitfield doesn't know yet. Reserved FIRST so the
  // partial scan below can't classify them into the releasable soft
  // tier (a lane-completed piece usually still has snapshot partial
  // progress) — releasing one would let the lane re-complete it.
  for (const PieceId t : lane.completed) {
    if (scratch.reserved.test(t)) continue;
    scratch.reserved.set(t);
    scratch.reserved_list.push_back(t);
  }
  if (!endgame_dup) {
    if (config_.endgame) {
      // Non-endgame phase of an endgame run: each sender gets a distinct
      // missing piece — hard-exclude pieces already in flight to q from
      // other neighbors. Reservations come from the phase-start
      // in-flight snapshot (the compute stage never mutates it), not the
      // live mid-phase state the serial algorithm used to see.
      for (const std::size_t s : nslot_[qr]) {
        if (s == lane.slot_qp) continue;
        const PieceId t = inflight_[s];
        if (t != kNoPiece && !have_[qr].test(t)) {
          scratch.reserved.set(t);
          scratch.reserved_list.push_back(t);
        }
      }
    }
    // Soft-demote every piece the receiver already has partial progress
    // on: some lane is (or recently was) feeding it, so a speculative
    // fresh pick landing there is nearly guaranteed stale at commit.
    // Unlike the in-flight tier this one is released below if no other
    // candidate exists, so orphaned partials still get adopted.
    for (const auto& entry : partial_[qr]) {
      if (scratch.reserved.test(entry.first)) continue;
      scratch.reserved.set(entry.first);
      scratch.reserved_list.push_back(entry.first);
      scratch.reserved_partials.push_back(entry.first);
    }
  }
  const auto pick = picker_.pick_rarest(have_[qr], have_[pr], scratch.reserved, rng);
  if (pick || scratch.reserved_partials.empty()) return pick;
  // Fallback tier: everything else is reserved or held — let the
  // partially-downloaded pieces back in. The bits stay in
  // reserved_list, so the next call's reset loop remains correct.
  for (const PieceId t : scratch.reserved_partials) scratch.reserved.reset(t);
  return picker_.pick_rarest(have_[qr], have_[pr], scratch.reserved, rng);
}

double Swarm::partial_progress(Row qr, PieceId piece) const {
  for (const auto& entry : partial_[qr]) {
    if (entry.first == piece) return entry.second;
  }
  return 0.0;
}

void Swarm::complete_piece(core::PeerId q, Row qr, PieceId piece) {
  have_[qr].set(piece);
  picker_.add_availability(piece);
  stats_[qr].pieces = have_[qr].count();
  if (have_[qr].complete() && stats_[qr].completion_round < 0.0) {
    stats_[qr].completion_round = static_cast<double>(round_ + 1);
    if (!config_.stay_as_seed && !stats_[qr].seed) {
      depart_peer(q, static_cast<double>(round_ + 1));
    }
  }
}

void Swarm::depart_peer(core::PeerId p, double when) {
  const Row pr = table_.row_of(p);
  stats_[pr].leave_round = when;
  ++departures_;
  // Its copies leave the swarm: rarest-first must stop counting them.
  picker_.remove_bitfield(have_[pr]);
  partial_[pr].clear();
  unchoked_[pr].clear();
  release_all_edges(p, pr);
  if (!stats_[pr].seed && stats_[pr].pieces == config_.num_pieces) ++retired_completed_;
  if (config_.retain_departed) {
    if (retired_ix_.size() < table_.id_space()) {
      retired_ix_.resize(table_.id_space(), kNoRetired);
    }
    retired_ix_[p] = static_cast<std::uint32_t>(retired_stats_.size());
    retired_stats_.push_back(stats_[pr]);
  } else {
    // Live-only bandwidth ranks change when the live set shrinks.
    ranks_dirty_ = true;
  }
  // Compact the row space: the table swaps the last row's occupant into
  // the hole, and every row-indexed container mirrors that move.
  const auto rem = table_.remove(p);
  const auto last = static_cast<Row>(table_.size());  // the old last row
  if (rem.row != last) {
    stats_[rem.row] = stats_[last];
    have_[rem.row] = std::move(have_[last]);
    chokers_[rem.row] = std::move(chokers_[last]);
    unchoked_[rem.row] = std::move(unchoked_[last]);
    nbr_[rem.row] = std::move(nbr_[last]);
    nslot_[rem.row] = std::move(nslot_[last]);
    partial_[rem.row] = std::move(partial_[last]);
    // Mid-round (endgame) the incoming counts are row-aligned too.
    if (incoming_unchokes_.size() == static_cast<std::size_t>(last) + 1) {
      incoming_unchokes_[rem.row] = incoming_unchokes_[last];
    }
  }
  faults_.compact(rem.row, last);
  stats_.pop_back();
  have_.pop_back();
  chokers_.pop_back();
  unchoked_.pop_back();
  nbr_.pop_back();
  nslot_.pop_back();
  partial_.pop_back();
  if (incoming_unchokes_.size() == static_cast<std::size_t>(last) + 1) {
    incoming_unchokes_.pop_back();
  }
}

double Swarm::send_to(core::PeerId p, core::PeerId q, std::size_t slot_pq, double budget,
                      graph::Rng& rng) {
  double remaining = budget;
  // Apply bytes to pieces until the budget is spent or q stops wanting
  // anything p has. Rows are re-resolved every pass: a completion can
  // depart q (or compact p's row) mid-transfer.
  while (remaining > 0.0) {
    const Row qr = table_.row_of(q);
    if (qr == PeerTable::kNoRow) break;  // q completed and departed
    const Row pr = table_.row_of(p);
    const std::size_t slot_qp = mirror_[slot_pq];  // receiver-owned slot
    PieceId target = inflight_[slot_qp];
    if (target == kNoPiece || have_[qr].test(target) || !have_[pr].test(target)) {
      const auto pick = pick_for(qr, pr, slot_qp, rng);
      if (!pick) break;
      target = *pick;
      inflight_[slot_qp] = target;
    }
    auto& partial = partial_[qr];
    auto it = std::find_if(partial.begin(), partial.end(),
                           [&](const auto& entry) { return entry.first == target; });
    if (it == partial.end()) {
      partial.emplace_back(target, 0.0);
      it = partial.end() - 1;
    }
    const double need = config_.piece_kb - it->second;
    const double chunk = std::min(need, remaining);
    it->second += chunk;
    remaining -= chunk;
    stats_[pr].uploaded_kb += chunk;
    stats_[qr].downloaded_kb += chunk;
    now_in_[slot_qp] += chunk;
    now_out_[slot_pq] += chunk;
    if (it->second >= config_.piece_kb - 1e-9) {
      partial.erase(it);
      inflight_[slot_qp] = kNoPiece;
      complete_piece(q, qr, target);
    }
  }
  return budget - remaining;
}

void Swarm::plan_transfers(core::PeerId p, TransferScratch& scratch) {
  const Row pr = table_.row_of(p);
  if (pr == PeerTable::kNoRow) return;
  // Active transfers: unchoked neighbors that actually want data.
  // (receiver, sender-side slot): the slot is loop-invariant per pair,
  // so resolve it once instead of per redistribution pass.
  scratch.hungry.clear();
  for (core::PeerId q : unchoked_[pr]) {
    const Row qr = table_.row_of(q);
    if (qr == PeerTable::kNoRow) continue;  // departed before this phase
    if (wants_from(qr, pr)) scratch.hungry.emplace_back(q, slot_of(pr, q));
  }
  if (scratch.hungry.empty()) return;
  // One lane per receiver: the lane carries the plan-local view of the
  // in-flight target and partial progress so repeated redistribution
  // passes against the same receiver resume where the last one stopped
  // instead of re-reading the (immutable) snapshot.
  const std::size_t lane_count = scratch.hungry.size();
  if (scratch.lanes.size() < lane_count) scratch.lanes.resize(lane_count);
  for (std::size_t i = 0; i < lane_count; ++i) {
    const auto [q, slot_pq] = scratch.hungry[i];
    const std::size_t slot_qp = mirror_[slot_pq];
    scratch.lanes[i].reset(q, table_.row_of(q), slot_pq, slot_qp, inflight_[slot_qp]);
    scratch.lanes[i].ordinal = static_cast<std::uint32_t>(i);
    // Repoint the hungry item at its lane: redistribute_upload swaps
    // survivors between its two vectors but never invents items, so
    // the index stays valid for the whole plan.
    scratch.hungry[i].second = i;
  }
  const std::uint32_t grants_begin = static_cast<std::uint32_t>(scratch.grants.size());
  graph::Rng stream = transfer_stream(p);
  // kbps -> KB per round.
  const double budget = stats_[pr].upload_kbps / 8.0 * config_.round_seconds;
  detail::redistribute_upload(
      budget, scratch.hungry, scratch.next_hungry,
      [&](const std::pair<core::PeerId, std::size_t>& item, double share) {
        detail::TransferLane* lane = &scratch.lanes[item.second];
        const Row qr = static_cast<Row>(lane->row);
        return detail::plan_lane_send(
            config_.piece_kb, *lane, scratch.grants, share,
            [&](PieceId t) { return have_[pr].test(t); },
            [&](PieceId t) { return have_[qr].test(t); },
            [&](PieceId t) { return partial_progress(qr, t); },
            [&](const detail::TransferLane& l) { return plan_pick(l, qr, pr, stream, scratch); });
      });
  if (scratch.grants.size() > grants_begin) {
    scratch.plans.push_back({p, grants_begin, static_cast<std::uint32_t>(scratch.grants.size()),
                             static_cast<std::uint32_t>(lane_count)});
  }
}

void Swarm::commit_transfers(std::size_t chunks) {
  // Chunk-major replay: chunks partition the sender order contiguously
  // and ascending, so walking chunk 0's plans, then chunk 1's, ... is
  // exactly the serial sender order regardless of thread count.
  for (std::size_t c = 0; c < chunks; ++c) {
    for (const detail::SenderPlan& plan : transfer_scratch_[c].plans) {
      const std::vector<detail::TransferGrant>& grants = transfer_scratch_[c].grants;
      if (table_.row_of(plan.sender) == PeerTable::kNoRow) continue;  // departed mid-commit
      // Group the plan's grants by lane (receiver) and validate each
      // lane against live state: a grant is stale if its receiver
      // departed, already holds the piece (an earlier commit completed
      // it first), or the piece's partial progress moved since the
      // snapshot (another sender fed it). Staleness discards the
      // *lane*, not the whole plan — lanes are independent receivers,
      // and rarest-first makes same-receiver pick collisions common
      // enough that plan-level invalidation would re-run a majority of
      // senders.
      commit_lanes_.assign(plan.lane_count, CommitLane{});
      std::size_t used_lanes = 0;
      std::size_t stale_lanes = 0;
      for (std::uint32_t g = plan.begin; g != plan.end; ++g) {
        const detail::TransferGrant& grant = grants[g];
        CommitLane& lane = commit_lanes_[grant.lane];
        if (!lane.used) {
          lane.used = true;
          ++used_lanes;
          lane.receiver = grant.receiver;
          lane.slot_pq = grant.slot_pq;
          lane.row = table_.row_of(grant.receiver);  // rows cannot move during grouping
        }
        lane.kb += grant.kb;
        if (lane.stale) continue;
        const Row qr = lane.row;
        if (qr == PeerTable::kNoRow || have_[qr].test(grant.piece) ||
            partial_progress(qr, grant.piece) != grant.base_kb) {
          lane.stale = true;
          ++stale_lanes;
        }
      }
      profile_.transfer_lanes += used_lanes;
      // Fault injection: each used lane may be lost at commit time
      // (transfer timeout). Draws come from the per-sender counter
      // stream in lane-ordinal order — stale lanes draw too, so the
      // sequence is a pure function of the plan's shape and both data
      // planes consume identically. A lost lane forfeits its bytes
      // outright: no verbatim apply, no stale repair; the receivers
      // re-enter the normal redistribute path next round.
      if (config_.faults.lossy_lanes() && used_lanes > 0) {
        graph::Rng loss =
            graph::Rng::stream(choke_key_ ^ kFaultLaneSalt, plan.sender, round_);
        for (CommitLane& lane : commit_lanes_) {
          if (!lane.used) continue;
          if (!loss.bernoulli(config_.faults.lane_loss_prob)) continue;
          lane.lost = true;
          ++faults_.lost_lanes_;
          if (lane.stale) --stale_lanes;  // lost wins: never repaired
        }
      }
      // Apply the valid lanes' grants verbatim, in planned order.
      Row pr = table_.row_of(plan.sender);
      bool moved = false;  // a completion departure compacted rows mid-plan
      for (std::uint32_t g = plan.begin; g != plan.end; ++g) {
        const detail::TransferGrant& grant = grants[g];
        const CommitLane* lane = &commit_lanes_[grant.lane];
        if (lane->stale || lane->lost) continue;
        Row qr = lane->row;
        if (moved) {
          // An earlier grant in this very plan completed a receiver and
          // departed it (slots released and zeroed), compacting rows:
          // the cached lane rows — and the sender's own row — are void,
          // and this grant's receiver may itself be gone. Validation
          // can't see this; it only proves the receiver was live at
          // plan granularity.
          qr = table_.row_of(grant.receiver);
          if (qr == PeerTable::kNoRow) continue;
          pr = table_.row_of(plan.sender);
        }
        stats_[pr].uploaded_kb += grant.kb;
        stats_[qr].downloaded_kb += grant.kb;
        now_in_[grant.slot_qp] += grant.kb;
        now_out_[grant.slot_pq] += grant.kb;
        auto& partial = partial_[qr];
        auto it = std::find_if(partial.begin(), partial.end(),
                               [&](const auto& entry) { return entry.first == grant.piece; });
        if (grant.completes) {
          if (it != partial.end()) partial.erase(it);
          inflight_[grant.slot_qp] = kNoPiece;
          complete_piece(grant.receiver, qr, grant.piece);
          moved = true;
        } else {
          // Committed verbatim (assignment, not +=): the plan accumulated
          // final_kb add-by-add in the serial order, so the stored double
          // is bit-identical to what the serial algorithm would hold.
          if (it != partial.end()) {
            it->second = grant.final_kb;
          } else {
            partial.emplace_back(grant.piece, grant.final_kb);
          }
          inflight_[grant.slot_qp] = grant.piece;
        }
      }
      // Re-drive each stale lane's planned KB against live state on the
      // per-sender repair stream: directly at its own receiver first —
      // usually still live and hungry, so the common repair is one
      // cheap single-lane re-plan. Budget a lane can no longer absorb
      // (receiver complete or departed) falls back to a redistribution
      // round over the sender's live still-hungry receivers, keeping
      // the serial-era contract that an early completion strands no
      // budget while a sibling still starves.
      if (stale_lanes > 0) {
        const auto r0 = std::chrono::steady_clock::now();
        profile_.transfer_reruns += stale_lanes;
        graph::Rng repairs = rerun_stream(plan.sender);
        double leftover = 0.0;
        for (const CommitLane& lane : commit_lanes_) {
          if (!lane.stale || lane.lost) continue;
          leftover +=
              lane.kb - send_to(plan.sender, lane.receiver, lane.slot_pq, lane.kb, repairs);
        }
        if (leftover > kBudgetEpsilon) {
          const Row rpr = table_.row_of(plan.sender);
          hungry_scratch_.clear();
          for (core::PeerId q : unchoked_[rpr]) {
            const Row qr = table_.row_of(q);
            if (qr == PeerTable::kNoRow) continue;  // completed and departed
            if (wants_from(qr, rpr)) hungry_scratch_.emplace_back(q, slot_of(rpr, q));
          }
          if (!hungry_scratch_.empty()) {
            detail::redistribute_upload(leftover, hungry_scratch_, next_hungry_scratch_,
                                        [&](const std::pair<core::PeerId, std::size_t>& item,
                                            double share) {
                                          return send_to(plan.sender, item.first, item.second,
                                                         share, repairs);
                                        });
          }
        }
        profile_.transfer_rerun_seconds += seconds_since(r0, std::chrono::steady_clock::now());
      }
    }
  }
}

void Swarm::transfer_step() {
  const auto t0 = std::chrono::steady_clock::now();
  // Sender order snapshot by external id: completion departures compact
  // rows at commit time, so iterating rows directly would skip or
  // repeat peers. A sender that departed mid-round resolves to no row
  // and is skipped (its unchoke set was cleared anyway).
  order_scratch_.assign(table_.ids().begin(), table_.ids().end());
  const std::size_t n = order_scratch_.size();
  const std::size_t threads = fan_out();
  const std::size_t chunks = sim::chunk_count(n, threads, kRowGrain);
  if (transfer_scratch_.size() < chunks) transfer_scratch_.resize(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    transfer_scratch_[c].grants.clear();
    transfer_scratch_[c].plans.clear();
  }
  // Compute stage: every sender plans against the immutable phase-start
  // snapshot, writing only into its chunk's buffers. No shared state is
  // mutated, so chunks are free to run concurrently; the commit stage
  // below replays the plans in serial sender order.
  sim::parallel_for_chunks(n, threads, kRowGrain,
                           [&](std::size_t begin, std::size_t end, std::size_t chunk) {
                             TransferScratch& scratch = transfer_scratch_[chunk];
                             for (std::size_t i = begin; i < end; ++i) {
                               plan_transfers(order_scratch_[i], scratch);
                             }
                           });
  const auto t1 = std::chrono::steady_clock::now();
  commit_transfers(chunks);
  const auto t2 = std::chrono::steady_clock::now();
  profile_.transfer_compute_seconds += seconds_since(t0, t1);
  profile_.transfer_commit_seconds += seconds_since(t1, t2);
}

void Swarm::fold_rates() {
  // Fold this round's transfers into the smoothed per-neighbor rates:
  // one pass over the whole slot pool, no hashing. Free slots are
  // zeroed at release, so folding them is a no-op. Slots are
  // independent, so the pool maps cleanly over contiguous chunks.
  const double alpha = config_.rate_smoothing;
  sim::parallel_for_chunks(edge_peer_.size(), fan_out(), kSlotGrain,
                           [&](std::size_t begin, std::size_t end, std::size_t) {
                             for (std::size_t s = begin; s < end; ++s) {
                               rate_in_[s] = alpha * now_in_[s] + (1.0 - alpha) * rate_in_[s];
                               now_in_[s] = 0.0;
                               rate_out_[s] = alpha * now_out_[s] + (1.0 - alpha) * rate_out_[s];
                               now_out_[s] = 0.0;
                             }
                           });
}

void Swarm::run_round() {
  using clock = std::chrono::steady_clock;
  if (config_.faults.outages()) {
    const auto f0 = clock::now();
    fault_step();
    profile_.fault_seconds += seconds_since(f0, clock::now());
  }
  const auto t0 = clock::now();
  choke_step();
  const auto t1 = clock::now();
  if (config_.endgame) count_incoming_unchokes();
  const auto t2 = clock::now();
  record_mutual_unchokes();
  const auto t3 = clock::now();
  transfer_step();
  const auto t4 = clock::now();
  fold_rates();
  const auto t5 = clock::now();
  profile_.choke_seconds += seconds_since(t0, t1);
  profile_.endgame_seconds += seconds_since(t1, t2);
  profile_.mutual_seconds += seconds_since(t2, t3);
  profile_.transfer_seconds += seconds_since(t3, t4);
  profile_.fold_seconds += seconds_since(t4, t5);
  ++round_;
  if (config_.faults.enabled()) {
    profile_.fault_failed_announces = faults_.failed_announces_;
    profile_.fault_retries = faults_.announce_retries_;
    profile_.fault_connect_failures = faults_.connect_failures_;
    profile_.fault_nat_rejections = faults_.nat_rejections_;
    profile_.fault_lost_lanes = faults_.lost_lanes_;
    profile_.fault_degraded_peers = faults_.degraded_count();
  }
  // Round boundary — the valid checkpoint point. The save itself never
  // consumes RNG, so autosave cadence cannot perturb the run.
  if (autosaver_.has_value() && autosaver_->due(round_)) {
    std::string payload;
    save(payload);
    autosaver_->write(round_, payload);
  }
}

void Swarm::run(std::size_t rounds) {
  for (std::size_t r = 0; r < rounds; ++r) run_round();
}

void Swarm::autosave_every(std::size_t every, const std::filesystem::path& dir,
                           std::size_t keep) {
  autosaver_.emplace(every, dir, keep);
}

void Swarm::reset_stratification() {
  std::fill(mutual_rounds_.begin(), mutual_rounds_.end(), 0);
  retired_mutual_.clear();
}

const PeerStats& Swarm::stats(core::PeerId p) const {
  const Row r = table_.row_of(p);
  if (r != PeerTable::kNoRow) return stats_[r];
  if (p >= table_.id_space()) throw std::out_of_range("Swarm::stats: unknown peer");
  if (!config_.retain_departed || p >= retired_ix_.size() || retired_ix_[p] == kNoRetired) {
    throw std::out_of_range("Swarm::stats: departed peer not retained");
  }
  return retired_stats_[retired_ix_[p]];
}

bool Swarm::departed(core::PeerId p) const {
  if (p >= table_.id_space()) throw std::out_of_range("Swarm::departed: unknown peer");
  return !table_.contains(p);
}

std::span<const core::PeerId> Swarm::neighbors(core::PeerId p) const {
  const Row r = table_.row_of(p);
  if (r == PeerTable::kNoRow) {
    if (p >= table_.id_space()) throw std::out_of_range("Swarm::neighbors: unknown peer");
    return {};
  }
  return {nbr_[r].data(), nbr_[r].size()};
}

std::size_t Swarm::completed_leechers() const {
  // O(live) + the running count of departed-complete leechers — the
  // bitwise equivalent of scanning every bitfield ever.
  std::size_t done = retired_completed_;
  for (Row r = 0; r < table_.size(); ++r) {
    if (!stats_[r].seed && have_[r].complete()) ++done;
  }
  return done;
}

double Swarm::mean_download_kbps(core::PeerId p) const {
  const PeerStats& s = stats(p);
  const double end = s.leave_round >= 0.0 ? s.leave_round : static_cast<double>(round_);
  const double rounds = end - s.join_round;
  if (rounds <= 0.0) return 0.0;
  return s.downloaded_kb * 8.0 / (rounds * config_.round_seconds);
}

double Swarm::leech_download_kbps(core::PeerId p) const {
  const PeerStats& s = stats(p);
  const double end = s.completion_round >= 0.0
                         ? s.completion_round
                         : (s.leave_round >= 0.0 ? s.leave_round : static_cast<double>(round_));
  const double rounds = end - s.join_round;
  if (rounds <= 0.0) return 0.0;
  return s.downloaded_kb * 8.0 / (rounds * config_.round_seconds);
}

Swarm::AvailabilityStats Swarm::availability_stats() const {
  AvailabilityStats out;
  const std::size_t pieces = config_.num_pieces;
  if (pieces == 0) return out;
  out.min = picker_.availability(0);
  out.max = out.min;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (PieceId piece = 0; piece < pieces; ++piece) {
    const std::uint32_t a = picker_.availability(piece);
    out.min = std::min(out.min, a);
    out.max = std::max(out.max, a);
    sum += static_cast<double>(a);
    sum_sq += static_cast<double>(a) * static_cast<double>(a);
  }
  out.mean = sum / static_cast<double>(pieces);
  const double variance = sum_sq / static_cast<double>(pieces) - out.mean * out.mean;
  out.coefficient_of_variation =
      out.mean > 0.0 ? std::sqrt(std::max(0.0, variance)) / out.mean : 0.0;
  return out;
}

void Swarm::refresh_ranks_force() const {
  if (config_.retain_departed) {
    leechers_ranked_ = detail::rebuild_bandwidth_ranks_by(
        table_.id_space(), [&](core::PeerId p) -> const PeerStats& { return stats(p); },
        bandwidth_rank_);
  } else {
    // Without the archive, departed capacities are gone: rank the live
    // leechers only (same shared (capacity desc, id asc) assignment).
    std::vector<core::PeerId> order;
    order.reserve(table_.size());
    for (Row r = 0; r < table_.size(); ++r) {
      if (!stats_[r].seed) order.push_back(table_.id_at(r));
    }
    detail::assign_capacity_ranks(
        order, [&](core::PeerId p) { return stats_[table_.row_of(p)].upload_kbps; },
        table_.id_space(), bandwidth_rank_);
    leechers_ranked_ = order.size();
  }
  ranks_dirty_ = false;
}

void Swarm::refresh_ranks() const {
  if (!ranks_dirty_) return;
  refresh_ranks_force();
}

std::vector<std::pair<core::PeerId, core::PeerId>> Swarm::reciprocated_pairs() const {
  refresh_ranks();
  std::vector<std::pair<core::PeerId, core::PeerId>> pairs;
  for (Row r = 0; r < table_.size(); ++r) {
    if (stats_[r].seed) continue;
    const core::PeerId p = table_.id_at(r);
    for (core::PeerId q : unchoked_[r]) {
      if (q <= p) continue;
      const Row qr = table_.row_of(q);
      if (qr == PeerTable::kNoRow || stats_[qr].seed) continue;
      const auto& back = unchoked_[qr];
      if (std::find(back.begin(), back.end(), p) != back.end()) {
        if (bandwidth_rank_[p] <= bandwidth_rank_[q]) {
          pairs.emplace_back(p, q);
        } else {
          pairs.emplace_back(q, p);
        }
      }
    }
  }
  return pairs;
}

StratificationReport Swarm::stratification() const {
  refresh_ranks();
  StratificationReport report;
  // Collect every pair's accumulated rounds: live slots plus the
  // retired records of released edges, merged per pair so a
  // disconnected-then-reconnected pair counts once — exactly the
  // map-per-pair semantics of ReferenceSwarm.
  std::vector<std::pair<std::uint64_t, std::uint32_t>> records = retired_mutual_;
  for (Row r = 0; r < table_.size(); ++r) {
    if (stats_[r].seed) continue;
    const core::PeerId p = table_.id_at(r);
    const auto& row = nbr_[r];
    for (std::size_t i = 0; i < row.size(); ++i) {
      const core::PeerId q = row[i];
      if (q <= p) continue;
      const Row qr = table_.row_of(q);
      if (stats_[qr].seed) continue;
      const std::uint32_t rounds = mutual_rounds_[nslot_[r][i]];
      if (rounds == 0) continue;
      records.emplace_back((static_cast<std::uint64_t>(p) << 32) | q, rounds);
    }
  }
  std::sort(records.begin(), records.end());
  std::size_t merged = 0;
  for (std::size_t i = 0; i < records.size();) {
    std::uint64_t key = records[i].first;
    std::uint32_t rounds = records[i].second;
    for (++i; i < records.size() && records[i].first == key; ++i) rounds += records[i].second;
    records[merged++] = {key, rounds};
  }
  records.resize(merged);

  // Offsets are normalized by the leecher population the ranks cover:
  // leechers-ever with the archive, live leechers without it.
  const std::size_t norm = config_.retain_departed ? leechers_ : leechers_ranked_;
  report.reciprocated_pairs = records.size();
  if (records.empty() || norm < 3) return report;

  double offset_sum = 0.0;
  double weight_sum = 0.0;
  std::vector<double> partner_rank_sum(table_.id_space(), 0.0);
  std::vector<double> partner_weight(table_.id_space(), 0.0);
  // Pair order = (a ascending, b ascending): deterministic accumulation
  // shared with ReferenceSwarm.
  for (const auto& [key, rounds] : records) {
    const auto a = static_cast<core::PeerId>(key >> 32);
    const auto b = static_cast<core::PeerId>(key & 0xFFFFFFFFu);
    const double w = static_cast<double>(rounds);
    const double ra = static_cast<double>(bandwidth_rank_[a]);
    const double rb = static_cast<double>(bandwidth_rank_[b]);
    offset_sum += w * std::abs(ra - rb) / static_cast<double>(norm);
    weight_sum += w;
    partner_rank_sum[a] += w * rb;
    partner_weight[a] += w;
    partner_rank_sum[b] += w * ra;
    partner_weight[b] += w;
  }
  report.mean_normalized_offset = offset_sum / weight_sum;

  std::vector<double> own;
  std::vector<double> partner;
  for (std::size_t p = 0; p < partner_weight.size(); ++p) {
    if (partner_weight[p] == 0.0) continue;
    own.push_back(static_cast<double>(bandwidth_rank_[p]));
    partner.push_back(partner_rank_sum[p] / partner_weight[p]);
  }
  if (own.size() >= 3) {
    report.partner_rank_correlation = sim::spearman(own, partner);
  }
  return report;
}

Swarm::MemoryFootprint Swarm::memory_footprint() const {
  MemoryFootprint out;
  out.live_peers = table_.size();
  const auto flat = [](const auto& v) {
    return v.capacity() * sizeof(typename std::decay_t<decltype(v)>::value_type);
  };
  const auto nested = [&flat](const auto& outer) {
    std::size_t bytes = flat(outer);
    for (const auto& inner : outer) bytes += flat(inner);
    return bytes;
  };
  out.peer_state_bytes = table_.row_bytes() + flat(stats_) + flat(chokers_) +
                         nested(unchoked_) + nested(nbr_) + nested(nslot_) + nested(partial_) +
                         flat(incoming_unchokes_) + flat(order_scratch_) +
                         nested(choke_scratch_) + nested(incoming_scratch_) +
                         flat(commit_lanes_) + flat(transfer_scratch_) +
                         flat(hungry_scratch_) + flat(next_hungry_scratch_) +
                         flat(faults_.nat_) + flat(faults_.retry_round_) +
                         flat(faults_.retry_count_) + flat(faults_.announce_seq_);
  for (const TransferScratch& s : transfer_scratch_) {
    out.peer_state_bytes += flat(s.hungry) + flat(s.next_hungry) + flat(s.lanes) +
                            flat(s.grants) + flat(s.plans) +
                            s.reserved.words().size() * sizeof(std::uint64_t) +
                            flat(s.reserved_list) + flat(s.reserved_partials);
    for (const detail::TransferLane& lane : s.lanes) {
      out.peer_state_bytes += flat(lane.completed);
    }
  }
  for (const Bitfield& b : have_) {
    out.peer_state_bytes += sizeof(Bitfield) + b.words().size() * sizeof(std::uint64_t);
  }
  out.edge_slot_bytes = flat(edge_peer_) + flat(mirror_) + flat(slot_gen_) + flat(free_slots_) +
                        flat(rate_in_) + flat(now_in_) + flat(rate_out_) + flat(now_out_) +
                        flat(inflight_) + flat(mutual_rounds_);
  out.id_index_bytes = table_.id_map_bytes() + flat(retired_ix_) + flat(bandwidth_rank_);
  out.retired_bytes = flat(retired_stats_) + flat(retired_mutual_);
  return out;
}

}  // namespace strat::bt
