#include "bittorrent/swarm.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "graph/erdos_renyi.hpp"
#include "sim/stats.hpp"

namespace strat::bt {

Swarm::Swarm(const SwarmConfig& config, std::vector<double> upload_kbps, graph::Rng& rng)
    : config_(config),
      rng_(rng),
      picker_(config.num_pieces),
      leechers_(config.num_peers) {
  if (upload_kbps.size() != config.num_peers) {
    throw std::invalid_argument("Swarm: one upload capacity per leecher required");
  }
  if (config.num_peers < 2) throw std::invalid_argument("Swarm: need at least 2 peers");
  if (config.num_pieces == 0 || config.piece_kb <= 0.0) {
    throw std::invalid_argument("Swarm: pieces must be positive");
  }
  if (config.initial_completion < 0.0 || config.initial_completion >= 1.0) {
    throw std::invalid_argument("Swarm: initial_completion in [0, 1)");
  }
  if (!config.tft_slots_per_peer.empty() &&
      config.tft_slots_per_peer.size() != config.num_peers) {
    throw std::invalid_argument("Swarm: tft_slots_per_peer needs one entry per leecher");
  }
  const std::size_t total = config.num_peers + config.seeds;
  overlay_ = graph::erdos_renyi_gnd(total, config.neighbor_degree, rng);

  // CSR mirror of the (finalized, sorted) overlay adjacency.
  edge_offset_.assign(total + 1, 0);
  for (std::size_t p = 0; p < total; ++p) {
    edge_offset_[p + 1] = edge_offset_[p] + overlay_.degree(static_cast<graph::Vertex>(p));
  }
  edge_peer_.reserve(edge_offset_[total]);
  for (std::size_t p = 0; p < total; ++p) {
    for (graph::Vertex q : overlay_.neighbors(static_cast<graph::Vertex>(p))) {
      edge_peer_.push_back(static_cast<core::PeerId>(q));
    }
  }
  mirror_.resize(edge_peer_.size());
  for (std::size_t p = 0; p < total; ++p) {
    for (std::size_t s = edge_offset_[p]; s < edge_offset_[p + 1]; ++s) {
      mirror_[s] = slot_of(edge_peer_[s], static_cast<core::PeerId>(p));
    }
  }
  rate_in_.assign(edge_peer_.size(), 0.0);
  now_in_.assign(edge_peer_.size(), 0.0);
  rate_out_.assign(edge_peer_.size(), 0.0);
  now_out_.assign(edge_peer_.size(), 0.0);
  inflight_.assign(edge_peer_.size(), kNoPiece);
  mutual_rounds_.assign(edge_peer_.size(), 0);

  stats_.resize(total);
  have_.assign(total, Bitfield(config.num_pieces));
  chokers_.reserve(total);
  for (std::size_t p = 0; p < total; ++p) {
    const std::size_t slots = (p < config.num_peers && !config.tft_slots_per_peer.empty())
                                  ? config.tft_slots_per_peer[p]
                                  : config.tft_slots;
    chokers_.emplace_back(slots, config.optimistic_rounds);
  }
  unchoked_.resize(total);
  partial_.resize(total);
  departed_.assign(total, false);

  double seed_capacity = config.seed_upload_kbps;
  if (seed_capacity <= 0.0) {
    // Default: the median leecher capacity, so seeds neither starve the
    // swarm nor flood a lucky few.
    std::vector<double> sorted = upload_kbps;
    std::sort(sorted.begin(), sorted.end());
    seed_capacity = sorted[sorted.size() / 2];
  }
  for (std::size_t p = 0; p < total; ++p) {
    const bool is_seed = p >= config.num_peers;
    stats_[p].seed = is_seed;
    stats_[p].upload_kbps = is_seed ? seed_capacity : upload_kbps[p];
    if (is_seed) {
      for (PieceId piece = 0; piece < config.num_pieces; ++piece) {
        have_[p].set(piece);
        picker_.add_availability(piece);
      }
      stats_[p].pieces = config.num_pieces;
      stats_[p].completion_round = 0.0;
    } else if (config.post_flashcrowd) {
      for (PieceId piece = 0; piece < config.num_pieces; ++piece) {
        if (rng.bernoulli(config.initial_completion)) {
          have_[p].set(piece);
          picker_.add_availability(piece);
        }
      }
      stats_[p].pieces = have_[p].count();
      if (have_[p].complete()) {
        // The Bernoulli draws can complete a leecher outright; treat it
        // like a round-0 completion so it never divides by the full run
        // length in leech_download_kbps() and departs consistently.
        stats_[p].completion_round = 0.0;
        if (!config.stay_as_seed) depart_peer(static_cast<core::PeerId>(p));
      }
    }
  }
  // Bandwidth ranks over leechers (0 = fastest), ties by id.
  std::vector<core::PeerId> order(leechers_);
  std::iota(order.begin(), order.end(), core::PeerId{0});
  std::sort(order.begin(), order.end(), [&](core::PeerId a, core::PeerId b) {
    if (stats_[a].upload_kbps != stats_[b].upload_kbps) {
      return stats_[a].upload_kbps > stats_[b].upload_kbps;
    }
    return a < b;
  });
  bandwidth_rank_.assign(leechers_, 0);
  for (std::size_t r = 0; r < order.size(); ++r) bandwidth_rank_[order[r]] = r;
}

std::size_t Swarm::slot_of(core::PeerId p, core::PeerId q) const {
  const auto first = edge_peer_.begin() + static_cast<std::ptrdiff_t>(edge_offset_[p]);
  const auto last = edge_peer_.begin() + static_cast<std::ptrdiff_t>(edge_offset_[p + 1]);
  const auto it = std::lower_bound(first, last, q);
  return static_cast<std::size_t>(it - edge_peer_.begin());
}

bool Swarm::wants_from(core::PeerId receiver, core::PeerId sender) const {
  return have_[receiver].interested_in(have_[sender]);
}

void Swarm::choke_step() {
  for (core::PeerId p = 0; p < stats_.size(); ++p) {
    if (departed_[p]) {
      unchoked_[p].clear();
      continue;
    }
    std::vector<ChokeCandidate> candidates;
    candidates.reserve(edge_offset_[p + 1] - edge_offset_[p]);
    const bool serve_fastest = stats_[p].seed || have_[p].complete();
    for (std::size_t s = edge_offset_[p]; s < edge_offset_[p + 1]; ++s) {
      const core::PeerId q = edge_peer_[s];
      if (departed_[q]) continue;
      ChokeCandidate c;
      c.peer = q;
      c.interested = wants_from(q, p);
      // Seed policy: serve the fastest downloaders.
      c.score = serve_fastest ? rate_out_[s] : rate_in_[s];
      candidates.push_back(c);
    }
    unchoked_[p] = chokers_[p].select(std::move(candidates), rng_);
  }
}

void Swarm::record_mutual_unchokes() {
  // Mutual unchokes among still-downloading leechers: these are the
  // effective TFT collaborations the matching model describes.
  for (core::PeerId p = 0; p < leechers_; ++p) {
    if (have_[p].complete()) continue;
    for (core::PeerId q : unchoked_[p]) {
      if (q <= p || q >= leechers_ || have_[q].complete()) continue;
      const auto& back = unchoked_[q];
      if (std::find(back.begin(), back.end(), p) != back.end()) {
        ++mutual_rounds_[slot_of(p, q)];
      }
    }
  }
}

void Swarm::complete_piece(core::PeerId p, PieceId piece) {
  have_[p].set(piece);
  picker_.add_availability(piece);
  stats_[p].pieces = have_[p].count();
  if (have_[p].complete() && stats_[p].completion_round < 0.0) {
    stats_[p].completion_round = static_cast<double>(round_ + 1);
    if (!config_.stay_as_seed && !stats_[p].seed) depart_peer(p);
  }
}

void Swarm::depart_peer(core::PeerId p) {
  departed_[p] = true;
  // Its copies leave the swarm: rarest-first must stop counting them.
  for (PieceId piece = 0; piece < config_.num_pieces; ++piece) {
    if (have_[p].test(piece)) picker_.remove_availability(piece);
  }
  partial_[p].clear();
  for (std::size_t s = edge_offset_[p]; s < edge_offset_[p + 1]; ++s) {
    inflight_[s] = kNoPiece;
  }
  unchoked_[p].clear();
}

double Swarm::send_to(core::PeerId p, core::PeerId q, std::size_t slot_pq, double budget) {
  const std::size_t slot_qp = mirror_[slot_pq];  // receiver-owned slot
  double remaining = budget;
  // Apply bytes to pieces until the budget is spent or q stops wanting
  // anything p has.
  while (remaining > 0.0) {
    PieceId target = inflight_[slot_qp];
    if (target == kNoPiece || have_[q].test(target) || !have_[p].test(target)) {
      const auto pick = picker_.pick_rarest(have_[q], have_[p], rng_);
      if (!pick) break;
      target = *pick;
      inflight_[slot_qp] = target;
    }
    auto& partial = partial_[q];
    auto it = std::find_if(partial.begin(), partial.end(),
                           [&](const auto& entry) { return entry.first == target; });
    if (it == partial.end()) {
      partial.emplace_back(target, 0.0);
      it = partial.end() - 1;
    }
    const double need = config_.piece_kb - it->second;
    const double chunk = std::min(need, remaining);
    it->second += chunk;
    remaining -= chunk;
    stats_[p].uploaded_kb += chunk;
    stats_[q].downloaded_kb += chunk;
    now_in_[slot_qp] += chunk;
    now_out_[slot_pq] += chunk;
    if (it->second >= config_.piece_kb - 1e-9) {
      partial.erase(it);
      inflight_[slot_qp] = kNoPiece;
      complete_piece(q, target);
    }
  }
  return budget - remaining;
}

void Swarm::transfer_step() {
  // (receiver, sender-side slot): the slot is loop-invariant per pair,
  // so resolve it once instead of per redistribution pass.
  std::vector<std::pair<core::PeerId, std::size_t>> hungry;
  std::vector<std::pair<core::PeerId, std::size_t>> next_hungry;
  for (core::PeerId p = 0; p < stats_.size(); ++p) {
    // Active transfers: unchoked neighbors that actually want data.
    hungry.clear();
    for (core::PeerId q : unchoked_[p]) {
      if (wants_from(q, p)) hungry.emplace_back(q, slot_of(p, q));
    }
    if (hungry.empty()) continue;
    // kbps -> KB per round. Split evenly across active transfers, then
    // redistribute whatever a finished receiver left on the table among
    // the ones still able to take data.
    double leftover = stats_[p].upload_kbps / 8.0 * config_.round_seconds;
    while (leftover > kBudgetEpsilon && !hungry.empty()) {
      const double share = leftover / static_cast<double>(hungry.size());
      leftover = 0.0;
      next_hungry.clear();
      for (const auto& [q, slot] : hungry) {
        const double spent = send_to(p, q, slot, share);
        // A receiver that absorbed its whole share can take more; one
        // that ran out of pickable pieces is dropped from this round.
        if (spent >= share - kBudgetEpsilon) next_hungry.emplace_back(q, slot);
        leftover += share - spent;
      }
      hungry.swap(next_hungry);
    }
  }
}

void Swarm::fold_rates() {
  // Fold this round's transfers into the smoothed per-neighbor rates:
  // one pass over every edge slot, no hashing.
  const double alpha = config_.rate_smoothing;
  for (std::size_t s = 0; s < edge_peer_.size(); ++s) {
    rate_in_[s] = alpha * now_in_[s] + (1.0 - alpha) * rate_in_[s];
    now_in_[s] = 0.0;
    rate_out_[s] = alpha * now_out_[s] + (1.0 - alpha) * rate_out_[s];
    now_out_[s] = 0.0;
  }
}

void Swarm::run_round() {
  choke_step();
  record_mutual_unchokes();
  transfer_step();
  fold_rates();
  ++round_;
}

void Swarm::run(std::size_t rounds) {
  for (std::size_t r = 0; r < rounds; ++r) run_round();
}

void Swarm::reset_stratification() {
  std::fill(mutual_rounds_.begin(), mutual_rounds_.end(), 0);
}

std::size_t Swarm::completed_leechers() const {
  std::size_t done = 0;
  for (std::size_t p = 0; p < leechers_; ++p) {
    if (have_[p].complete()) ++done;
  }
  return done;
}

double Swarm::mean_download_kbps(core::PeerId p) const {
  if (round_ == 0) return 0.0;
  const double seconds = static_cast<double>(round_) * config_.round_seconds;
  return stats_.at(p).downloaded_kb * 8.0 / seconds;
}

double Swarm::leech_download_kbps(core::PeerId p) const {
  const PeerStats& s = stats_.at(p);
  const double rounds =
      s.completion_round >= 0.0 ? s.completion_round : static_cast<double>(round_);
  if (rounds <= 0.0) return 0.0;
  return s.downloaded_kb * 8.0 / (rounds * config_.round_seconds);
}

Swarm::AvailabilityStats Swarm::availability_stats() const {
  AvailabilityStats out;
  const std::size_t pieces = config_.num_pieces;
  if (pieces == 0) return out;
  out.min = picker_.availability(0);
  out.max = out.min;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (PieceId piece = 0; piece < pieces; ++piece) {
    const std::uint32_t a = picker_.availability(piece);
    out.min = std::min(out.min, a);
    out.max = std::max(out.max, a);
    sum += static_cast<double>(a);
    sum_sq += static_cast<double>(a) * static_cast<double>(a);
  }
  out.mean = sum / static_cast<double>(pieces);
  const double variance = sum_sq / static_cast<double>(pieces) - out.mean * out.mean;
  out.coefficient_of_variation =
      out.mean > 0.0 ? std::sqrt(std::max(0.0, variance)) / out.mean : 0.0;
  return out;
}

std::vector<std::pair<core::PeerId, core::PeerId>> Swarm::reciprocated_pairs() const {
  std::vector<std::pair<core::PeerId, core::PeerId>> pairs;
  for (core::PeerId p = 0; p < leechers_; ++p) {
    for (core::PeerId q : unchoked_[p]) {
      if (q >= leechers_ || q <= p) continue;
      const auto& back = unchoked_[q];
      if (std::find(back.begin(), back.end(), p) != back.end()) {
        if (bandwidth_rank_[p] <= bandwidth_rank_[q]) {
          pairs.emplace_back(p, q);
        } else {
          pairs.emplace_back(q, p);
        }
      }
    }
  }
  return pairs;
}

StratificationReport Swarm::stratification() const {
  StratificationReport report;
  double offset_sum = 0.0;
  double weight_sum = 0.0;
  std::vector<double> partner_rank_sum(leechers_, 0.0);
  std::vector<double> partner_weight(leechers_, 0.0);
  // Slot order = (p ascending, q ascending): deterministic accumulation.
  for (core::PeerId p = 0; p < leechers_; ++p) {
    for (std::size_t s = edge_offset_[p]; s < edge_offset_[p + 1]; ++s) {
      const core::PeerId q = edge_peer_[s];
      if (q <= p || q >= leechers_ || mutual_rounds_[s] == 0) continue;
      ++report.reciprocated_pairs;
      const double w = static_cast<double>(mutual_rounds_[s]);
      const double ra = static_cast<double>(bandwidth_rank_[p]);
      const double rb = static_cast<double>(bandwidth_rank_[q]);
      offset_sum += w * std::abs(ra - rb) / static_cast<double>(leechers_);
      weight_sum += w;
      partner_rank_sum[p] += w * rb;
      partner_weight[p] += w;
      partner_rank_sum[q] += w * ra;
      partner_weight[q] += w;
    }
  }
  if (report.reciprocated_pairs == 0 || leechers_ < 3) return report;
  report.mean_normalized_offset = offset_sum / weight_sum;

  std::vector<double> own;
  std::vector<double> partner;
  for (std::size_t p = 0; p < leechers_; ++p) {
    if (partner_weight[p] == 0.0) continue;
    own.push_back(static_cast<double>(bandwidth_rank_[p]));
    partner.push_back(partner_rank_sum[p] / partner_weight[p]);
  }
  if (own.size() >= 3) {
    report.partner_rank_correlation = sim::spearman(own, partner);
  }
  return report;
}

}  // namespace strat::bt
