#include "bittorrent/swarm.hpp"

#include <cmath>
#include <stdexcept>

#include "graph/erdos_renyi.hpp"
#include "graph/graph.hpp"
#include "sim/stats.hpp"

namespace strat::bt {

Swarm::Swarm(const SwarmConfig& config, std::vector<double> upload_kbps, graph::Rng& rng)
    : config_(config),
      rng_(rng),
      picker_(config.num_pieces),
      reserved_scratch_(config.num_pieces),
      leechers_(config.num_peers) {
  if (upload_kbps.size() != config.num_peers) {
    throw std::invalid_argument("Swarm: one upload capacity per leecher required");
  }
  if (config.num_peers < 2) throw std::invalid_argument("Swarm: need at least 2 peers");
  if (config.num_pieces == 0 || config.piece_kb <= 0.0) {
    throw std::invalid_argument("Swarm: pieces must be positive");
  }
  if (config.initial_completion < 0.0 || config.initial_completion >= 1.0) {
    throw std::invalid_argument("Swarm: initial_completion in [0, 1)");
  }
  if (!config.tft_slots_per_peer.empty() &&
      config.tft_slots_per_peer.size() != config.num_peers) {
    throw std::invalid_argument("Swarm: tft_slots_per_peer needs one entry per leecher");
  }
  const std::size_t total = config.num_peers + config.seeds;
  const graph::Graph overlay = graph::erdos_renyi_gnd(total, config.neighbor_degree, rng);

  // Ingest the (finalized, sorted) overlay adjacency into the slot
  // pool, row-contiguous so a static run keeps CSR-like locality.
  nbr_.resize(total);
  nslot_.resize(total);
  std::size_t slot_count = 0;
  for (std::size_t p = 0; p < total; ++p) {
    slot_count += overlay.degree(static_cast<graph::Vertex>(p));
  }
  edge_peer_.reserve(slot_count);
  for (std::size_t p = 0; p < total; ++p) {
    const auto nbrs = overlay.neighbors(static_cast<graph::Vertex>(p));
    nbr_[p].assign(nbrs.begin(), nbrs.end());
    nslot_[p].resize(nbrs.size());
    for (std::size_t i = 0; i < nbr_[p].size(); ++i) {
      nslot_[p][i] = edge_peer_.size();
      edge_peer_.push_back(nbr_[p][i]);
    }
  }
  mirror_.resize(edge_peer_.size());
  for (std::size_t p = 0; p < total; ++p) {
    for (std::size_t i = 0; i < nbr_[p].size(); ++i) {
      mirror_[nslot_[p][i]] = slot_of(nbr_[p][i], static_cast<core::PeerId>(p));
    }
  }
  slot_gen_.assign(edge_peer_.size(), 0);
  rate_in_.assign(edge_peer_.size(), 0.0);
  now_in_.assign(edge_peer_.size(), 0.0);
  rate_out_.assign(edge_peer_.size(), 0.0);
  now_out_.assign(edge_peer_.size(), 0.0);
  inflight_.assign(edge_peer_.size(), kNoPiece);
  mutual_rounds_.assign(edge_peer_.size(), 0);

  stats_.resize(total);
  have_.assign(total, Bitfield(config.num_pieces));
  chokers_.reserve(total);
  for (std::size_t p = 0; p < total; ++p) {
    const std::size_t slots = (p < config.num_peers && !config.tft_slots_per_peer.empty())
                                  ? config.tft_slots_per_peer[p]
                                  : config.tft_slots;
    chokers_.emplace_back(slots, config.optimistic_rounds);
  }
  unchoked_.resize(total);
  partial_.resize(total);
  departed_.assign(total, false);
  live_ids_.reserve(total);
  live_ix_.reserve(total);
  for (std::size_t p = 0; p < total; ++p) {
    live_ids_.push_back(static_cast<core::PeerId>(p));
    live_ix_.push_back(p);
  }

  double seed_capacity = config.seed_upload_kbps;
  if (seed_capacity <= 0.0) {
    // Default: the median leecher capacity, so seeds neither starve the
    // swarm nor flood a lucky few.
    std::vector<double> sorted = upload_kbps;
    std::sort(sorted.begin(), sorted.end());
    seed_capacity = sorted[sorted.size() / 2];
  }
  for (std::size_t p = 0; p < total; ++p) {
    const bool is_seed = p >= config.num_peers;
    stats_[p].seed = is_seed;
    stats_[p].upload_kbps = is_seed ? seed_capacity : upload_kbps[p];
    if (is_seed) {
      for (PieceId piece = 0; piece < config.num_pieces; ++piece) {
        have_[p].set(piece);
        picker_.add_availability(piece);
      }
      stats_[p].pieces = config.num_pieces;
      stats_[p].completion_round = 0.0;
    } else if (config.post_flashcrowd) {
      for (PieceId piece = 0; piece < config.num_pieces; ++piece) {
        if (rng.bernoulli(config.initial_completion)) {
          have_[p].set(piece);
          picker_.add_availability(piece);
        }
      }
      stats_[p].pieces = have_[p].count();
      if (have_[p].complete()) {
        // The Bernoulli draws can complete a leecher outright; treat it
        // like a round-0 completion so it never divides by the full run
        // length in leech_download_kbps() and departs consistently.
        stats_[p].completion_round = 0.0;
        if (!config.stay_as_seed) depart_peer(static_cast<core::PeerId>(p), 0.0);
      }
    }
  }
  leechers_ = detail::rebuild_bandwidth_ranks(stats_, bandwidth_rank_);
}

std::size_t Swarm::slot_of(core::PeerId p, core::PeerId q) const {
  const auto& row = nbr_[p];
  const auto it = std::lower_bound(row.begin(), row.end(), q);
  return nslot_[p][static_cast<std::size_t>(it - row.begin())];
}

std::size_t Swarm::target_degree() const {
  return static_cast<std::size_t>(std::llround(config_.neighbor_degree));
}

std::size_t Swarm::claim_slot() {
  if (free_slots_.empty()) {
    const std::size_t s = edge_peer_.size();
    edge_peer_.push_back(0);
    mirror_.push_back(0);
    slot_gen_.push_back(0);
    rate_in_.push_back(0.0);
    now_in_.push_back(0.0);
    rate_out_.push_back(0.0);
    now_out_.push_back(0.0);
    inflight_.push_back(kNoPiece);
    mutual_rounds_.push_back(0);
    return s;
  }
  const std::size_t s = free_slots_.back();
  free_slots_.pop_back();
  return s;
}

void Swarm::release_slot(std::size_t s) {
  // edge_peer_/mirror_ go stale on purpose; the generation bump marks
  // every outstanding reference to this slot as dead.
  rate_in_[s] = 0.0;
  now_in_[s] = 0.0;
  rate_out_[s] = 0.0;
  now_out_[s] = 0.0;
  inflight_[s] = kNoPiece;
  mutual_rounds_[s] = 0;
  ++slot_gen_[s];
  free_slots_.push_back(s);
}

void Swarm::connect(core::PeerId p, core::PeerId q) {
  const std::size_t spq = claim_slot();
  const std::size_t sqp = claim_slot();
  edge_peer_[spq] = q;
  edge_peer_[sqp] = p;
  mirror_[spq] = sqp;
  mirror_[sqp] = spq;
  const auto insert_row = [this](core::PeerId owner, core::PeerId nb, std::size_t slot) {
    auto& row = nbr_[owner];
    const auto it = std::lower_bound(row.begin(), row.end(), nb);
    const auto idx = it - row.begin();
    row.insert(it, nb);
    nslot_[owner].insert(nslot_[owner].begin() + idx, slot);
  };
  insert_row(p, q, spq);
  insert_row(q, p, sqp);
}

void Swarm::flush_mutual(core::PeerId p, core::PeerId q, std::size_t slot_min) {
  if (mutual_rounds_[slot_min] == 0) return;
  const core::PeerId a = std::min(p, q);
  const core::PeerId b = std::max(p, q);
  retired_mutual_.emplace_back((static_cast<std::uint64_t>(a) << 32) | b,
                               mutual_rounds_[slot_min]);
  mutual_rounds_[slot_min] = 0;
}

void Swarm::release_all_edges(core::PeerId p) {
  for (std::size_t i = 0; i < nbr_[p].size(); ++i) {
    const core::PeerId q = nbr_[p][i];
    const std::size_t spq = nslot_[p][i];
    const std::size_t sqp = mirror_[spq];
    flush_mutual(p, q, p < q ? spq : sqp);
    release_slot(spq);
    release_slot(sqp);
    auto& qrow = nbr_[q];
    const auto it = std::lower_bound(qrow.begin(), qrow.end(), p);
    const auto idx = it - qrow.begin();
    qrow.erase(it);
    nslot_[q].erase(nslot_[q].begin() + idx);
  }
  nbr_[p].clear();
  nslot_[p].clear();
}

std::size_t Swarm::connect_random_live(core::PeerId p, std::size_t need) {
  return detail::announce_connect(
      live_ids_, departed_, stats_.size(), p, need, rng_,
      [&](core::PeerId q) {
        return std::binary_search(nbr_[p].begin(), nbr_[p].end(), q);
      },
      [&](core::PeerId q) { connect(p, q); });
}

core::PeerId Swarm::join(double upload_kbps, const Bitfield& have) {
  if (have.size() != config_.num_pieces) {
    throw std::invalid_argument("Swarm::join: bitfield size mismatch");
  }
  if (upload_kbps <= 0.0) throw std::invalid_argument("Swarm::join: capacity must be positive");
  const auto p = static_cast<core::PeerId>(stats_.size());
  stats_.emplace_back();
  stats_[p].upload_kbps = upload_kbps;
  stats_[p].join_round = static_cast<double>(round_);
  stats_[p].pieces = have.count();
  have_.push_back(have);
  picker_.add_bitfield(have);
  chokers_.emplace_back(config_.tft_slots, config_.optimistic_rounds);
  unchoked_.emplace_back();
  partial_.emplace_back();
  departed_.push_back(false);
  nbr_.emplace_back();
  nslot_.emplace_back();
  detail::live_insert(live_ids_, live_ix_, stats_.size(), p);
  ++arrivals_;
  // Tracker announce: uniform picks from the live population.
  connect_random_live(p, target_degree());
  ++leechers_;
  ranks_dirty_ = true;
  if (have_[p].complete()) {
    stats_[p].completion_round = static_cast<double>(round_);
    if (!config_.stay_as_seed) depart_peer(p, static_cast<double>(round_));
  }
  return p;
}

core::PeerId Swarm::join(double upload_kbps) {
  return join(upload_kbps, Bitfield(config_.num_pieces));
}

void Swarm::leave(core::PeerId p) {
  if (departed_.at(p)) return;
  depart_peer(p, static_cast<double>(round_));
}

std::size_t Swarm::reannounce(core::PeerId p) {
  if (departed_.at(p)) return 0;
  const std::size_t target = target_degree();
  if (nbr_[p].size() >= target) return 0;
  return connect_random_live(p, target - nbr_[p].size());
}

bool Swarm::wants_from(core::PeerId receiver, core::PeerId sender) const {
  return have_[receiver].interested_in(have_[sender]);
}

void Swarm::choke_step() {
  for (core::PeerId p = 0; p < stats_.size(); ++p) {
    if (departed_[p]) {
      unchoked_[p].clear();
      continue;
    }
    const auto& row = nbr_[p];
    const auto& slots = nslot_[p];
    std::vector<ChokeCandidate> candidates;
    candidates.reserve(row.size());
    const bool serve_fastest = stats_[p].seed || have_[p].complete();
    // Adjacency rows never contain departed peers (their edges were
    // released), so every neighbor is a candidate.
    for (std::size_t i = 0; i < row.size(); ++i) {
      const core::PeerId q = row[i];
      ChokeCandidate c;
      c.peer = q;
      c.interested = wants_from(q, p);
      // Seed policy: serve the fastest downloaders.
      c.score = serve_fastest ? rate_out_[slots[i]] : rate_in_[slots[i]];
      candidates.push_back(c);
    }
    unchoked_[p] = chokers_[p].select(std::move(candidates), rng_);
  }
}

void Swarm::count_incoming_unchokes() {
  detail::count_incoming_unchokes(unchoked_, incoming_unchokes_);
}

void Swarm::record_mutual_unchokes() {
  // Mutual unchokes among present, still-downloading leechers: these
  // are the effective TFT collaborations the matching model describes.
  // Departed peers have empty unchoke sets and released edges, so every
  // counted round had both endpoints in the swarm.
  for (core::PeerId p = 0; p < stats_.size(); ++p) {
    if (!is_leecher(p) || have_[p].complete()) continue;
    for (core::PeerId q : unchoked_[p]) {
      if (q <= p || !is_leecher(q) || have_[q].complete()) continue;
      const auto& back = unchoked_[q];
      if (std::find(back.begin(), back.end(), p) != back.end()) {
        ++mutual_rounds_[slot_of(p, q)];
      }
    }
  }
}

std::optional<PieceId> Swarm::pick_for(core::PeerId q, core::PeerId p, std::size_t slot_qp) {
  if (config_.endgame) {
    const std::size_t missing = config_.num_pieces - stats_[q].pieces;
    if (missing >= incoming_unchokes_[q]) {
      // Non-endgame phase: each sender gets a distinct missing piece —
      // exclude pieces already in flight to q from other neighbors.
      for (const PieceId piece : reserved_list_) reserved_scratch_.reset(piece);
      reserved_list_.clear();
      const auto& slots = nslot_[q];
      for (const std::size_t s : slots) {
        if (s == slot_qp) continue;
        const PieceId t = inflight_[s];
        if (t != kNoPiece && !have_[q].test(t)) {
          reserved_scratch_.set(t);
          reserved_list_.push_back(t);
        }
      }
      return picker_.pick_rarest(have_[q], have_[p], reserved_scratch_, rng_);
    }
    // Endgame phase: the missing set is smaller than the receiver's
    // inbound unchoke count — duplicate in-flight targets are allowed
    // (first completion cancels the rest via the staleness re-pick).
  }
  return picker_.pick_rarest(have_[q], have_[p], rng_);
}

void Swarm::complete_piece(core::PeerId p, PieceId piece) {
  have_[p].set(piece);
  picker_.add_availability(piece);
  stats_[p].pieces = have_[p].count();
  if (have_[p].complete() && stats_[p].completion_round < 0.0) {
    stats_[p].completion_round = static_cast<double>(round_ + 1);
    if (!config_.stay_as_seed && !stats_[p].seed) {
      depart_peer(p, static_cast<double>(round_ + 1));
    }
  }
}

void Swarm::depart_peer(core::PeerId p, double when) {
  departed_[p] = true;
  stats_[p].leave_round = when;
  detail::live_remove(live_ids_, live_ix_, p);
  ++departures_;
  // Its copies leave the swarm: rarest-first must stop counting them.
  picker_.remove_bitfield(have_[p]);
  partial_[p].clear();
  unchoked_[p].clear();
  release_all_edges(p);
}

double Swarm::send_to(core::PeerId p, core::PeerId q, std::size_t slot_pq, double budget) {
  const std::size_t slot_qp = mirror_[slot_pq];  // receiver-owned slot
  double remaining = budget;
  // Apply bytes to pieces until the budget is spent or q stops wanting
  // anything p has.
  while (remaining > 0.0) {
    PieceId target = inflight_[slot_qp];
    if (target == kNoPiece || have_[q].test(target) || !have_[p].test(target)) {
      const auto pick = pick_for(q, p, slot_qp);
      if (!pick) break;
      target = *pick;
      inflight_[slot_qp] = target;
    }
    auto& partial = partial_[q];
    auto it = std::find_if(partial.begin(), partial.end(),
                           [&](const auto& entry) { return entry.first == target; });
    if (it == partial.end()) {
      partial.emplace_back(target, 0.0);
      it = partial.end() - 1;
    }
    const double need = config_.piece_kb - it->second;
    const double chunk = std::min(need, remaining);
    it->second += chunk;
    remaining -= chunk;
    stats_[p].uploaded_kb += chunk;
    stats_[q].downloaded_kb += chunk;
    now_in_[slot_qp] += chunk;
    now_out_[slot_pq] += chunk;
    if (it->second >= config_.piece_kb - 1e-9) {
      partial.erase(it);
      inflight_[slot_qp] = kNoPiece;
      complete_piece(q, target);
    }
  }
  return budget - remaining;
}

void Swarm::transfer_step() {
  // (receiver, sender-side slot): the slot is loop-invariant per pair,
  // so resolve it once instead of per redistribution pass.
  std::vector<std::pair<core::PeerId, std::size_t>> hungry;
  std::vector<std::pair<core::PeerId, std::size_t>> next_hungry;
  for (core::PeerId p = 0; p < stats_.size(); ++p) {
    // Active transfers: unchoked neighbors that actually want data.
    hungry.clear();
    for (core::PeerId q : unchoked_[p]) {
      if (wants_from(q, p)) hungry.emplace_back(q, slot_of(p, q));
    }
    if (hungry.empty()) continue;
    // kbps -> KB per round.
    const double budget = stats_[p].upload_kbps / 8.0 * config_.round_seconds;
    detail::redistribute_upload(budget, hungry, next_hungry,
                                [&](const std::pair<core::PeerId, std::size_t>& item,
                                    double share) {
                                  return send_to(p, item.first, item.second, share);
                                });
  }
}

void Swarm::fold_rates() {
  // Fold this round's transfers into the smoothed per-neighbor rates:
  // one pass over the whole slot pool, no hashing. Free slots are
  // zeroed at release, so folding them is a no-op.
  const double alpha = config_.rate_smoothing;
  for (std::size_t s = 0; s < edge_peer_.size(); ++s) {
    rate_in_[s] = alpha * now_in_[s] + (1.0 - alpha) * rate_in_[s];
    now_in_[s] = 0.0;
    rate_out_[s] = alpha * now_out_[s] + (1.0 - alpha) * rate_out_[s];
    now_out_[s] = 0.0;
  }
}

void Swarm::run_round() {
  choke_step();
  if (config_.endgame) count_incoming_unchokes();
  record_mutual_unchokes();
  transfer_step();
  fold_rates();
  ++round_;
}

void Swarm::run(std::size_t rounds) {
  for (std::size_t r = 0; r < rounds; ++r) run_round();
}

void Swarm::reset_stratification() {
  std::fill(mutual_rounds_.begin(), mutual_rounds_.end(), 0);
  retired_mutual_.clear();
}

std::size_t Swarm::completed_leechers() const {
  std::size_t done = 0;
  for (core::PeerId p = 0; p < stats_.size(); ++p) {
    if (is_leecher(p) && have_[p].complete()) ++done;
  }
  return done;
}

double Swarm::mean_download_kbps(core::PeerId p) const {
  const PeerStats& s = stats_.at(p);
  const double end = s.leave_round >= 0.0 ? s.leave_round : static_cast<double>(round_);
  const double rounds = end - s.join_round;
  if (rounds <= 0.0) return 0.0;
  return s.downloaded_kb * 8.0 / (rounds * config_.round_seconds);
}

double Swarm::leech_download_kbps(core::PeerId p) const {
  const PeerStats& s = stats_.at(p);
  const double end = s.completion_round >= 0.0
                         ? s.completion_round
                         : (s.leave_round >= 0.0 ? s.leave_round : static_cast<double>(round_));
  const double rounds = end - s.join_round;
  if (rounds <= 0.0) return 0.0;
  return s.downloaded_kb * 8.0 / (rounds * config_.round_seconds);
}

Swarm::AvailabilityStats Swarm::availability_stats() const {
  AvailabilityStats out;
  const std::size_t pieces = config_.num_pieces;
  if (pieces == 0) return out;
  out.min = picker_.availability(0);
  out.max = out.min;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (PieceId piece = 0; piece < pieces; ++piece) {
    const std::uint32_t a = picker_.availability(piece);
    out.min = std::min(out.min, a);
    out.max = std::max(out.max, a);
    sum += static_cast<double>(a);
    sum_sq += static_cast<double>(a) * static_cast<double>(a);
  }
  out.mean = sum / static_cast<double>(pieces);
  const double variance = sum_sq / static_cast<double>(pieces) - out.mean * out.mean;
  out.coefficient_of_variation =
      out.mean > 0.0 ? std::sqrt(std::max(0.0, variance)) / out.mean : 0.0;
  return out;
}

void Swarm::refresh_ranks() const {
  if (!ranks_dirty_) return;
  detail::rebuild_bandwidth_ranks(stats_, bandwidth_rank_);
  ranks_dirty_ = false;
}

std::vector<std::pair<core::PeerId, core::PeerId>> Swarm::reciprocated_pairs() const {
  refresh_ranks();
  std::vector<std::pair<core::PeerId, core::PeerId>> pairs;
  for (core::PeerId p = 0; p < stats_.size(); ++p) {
    if (!is_leecher(p)) continue;
    for (core::PeerId q : unchoked_[p]) {
      if (q <= p || !is_leecher(q)) continue;
      const auto& back = unchoked_[q];
      if (std::find(back.begin(), back.end(), p) != back.end()) {
        if (bandwidth_rank_[p] <= bandwidth_rank_[q]) {
          pairs.emplace_back(p, q);
        } else {
          pairs.emplace_back(q, p);
        }
      }
    }
  }
  return pairs;
}

StratificationReport Swarm::stratification() const {
  refresh_ranks();
  StratificationReport report;
  // Collect every pair's accumulated rounds: live slots plus the
  // retired records of released edges, merged per pair so a
  // disconnected-then-reconnected pair counts once — exactly the
  // map-per-pair semantics of ReferenceSwarm.
  std::vector<std::pair<std::uint64_t, std::uint32_t>> records = retired_mutual_;
  for (core::PeerId p = 0; p < stats_.size(); ++p) {
    if (!is_leecher(p)) continue;
    const auto& row = nbr_[p];
    for (std::size_t i = 0; i < row.size(); ++i) {
      const core::PeerId q = row[i];
      if (q <= p || !is_leecher(q)) continue;
      const std::uint32_t rounds = mutual_rounds_[nslot_[p][i]];
      if (rounds == 0) continue;
      records.emplace_back((static_cast<std::uint64_t>(p) << 32) | q, rounds);
    }
  }
  std::sort(records.begin(), records.end());
  std::size_t merged = 0;
  for (std::size_t i = 0; i < records.size();) {
    std::uint64_t key = records[i].first;
    std::uint32_t rounds = records[i].second;
    for (++i; i < records.size() && records[i].first == key; ++i) rounds += records[i].second;
    records[merged++] = {key, rounds};
  }
  records.resize(merged);

  report.reciprocated_pairs = records.size();
  if (records.empty() || leechers_ < 3) return report;

  double offset_sum = 0.0;
  double weight_sum = 0.0;
  std::vector<double> partner_rank_sum(stats_.size(), 0.0);
  std::vector<double> partner_weight(stats_.size(), 0.0);
  // Pair order = (a ascending, b ascending): deterministic accumulation
  // shared with ReferenceSwarm.
  for (const auto& [key, rounds] : records) {
    const auto a = static_cast<core::PeerId>(key >> 32);
    const auto b = static_cast<core::PeerId>(key & 0xFFFFFFFFu);
    const double w = static_cast<double>(rounds);
    const double ra = static_cast<double>(bandwidth_rank_[a]);
    const double rb = static_cast<double>(bandwidth_rank_[b]);
    offset_sum += w * std::abs(ra - rb) / static_cast<double>(leechers_);
    weight_sum += w;
    partner_rank_sum[a] += w * rb;
    partner_weight[a] += w;
    partner_rank_sum[b] += w * ra;
    partner_weight[b] += w;
  }
  report.mean_normalized_offset = offset_sum / weight_sum;

  std::vector<double> own;
  std::vector<double> partner;
  for (std::size_t p = 0; p < stats_.size(); ++p) {
    if (partner_weight[p] == 0.0) continue;
    own.push_back(static_cast<double>(bandwidth_rank_[p]));
    partner.push_back(partner_rank_sum[p] / partner_weight[p]);
  }
  if (own.size() >= 3) {
    report.partner_rank_correlation = sim::spearman(own, partner);
  }
  return report;
}

}  // namespace strat::bt
