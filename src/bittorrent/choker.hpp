// The Tit-for-Tat choker (§1, §6).
//
// Every choke interval (10 s in the reference client) a peer unchokes
// the `tft_slots` interested neighbors it downloaded the most from in
// the last interval, plus one *optimistic* unchoke rotated every
// `optimistic_rounds` intervals. The optimistic slot is the probing
// mechanism the paper identifies with the random-peer initiative of its
// matching model. Seeds have no download to reciprocate; they rank
// candidates by how much they served them instead (fastest-downloader
// policy).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/types.hpp"
#include "graph/rng.hpp"

namespace strat::bt {

/// One unchoke candidate as seen by the choker.
struct ChokeCandidate {
  core::PeerId peer = 0;
  /// Bytes received from this neighbor during the last interval
  /// (bytes *sent to* it when the chooser is a seed).
  double score = 0.0;
  /// Whether the neighbor wants data from the chooser.
  bool interested = false;
};

/// Per-peer stateful choker.
class TftChoker {
 public:
  TftChoker(std::size_t tft_slots, std::size_t optimistic_rounds);

  /// Computes this round's unchoke set. Regular slots go to the
  /// top-`tft_slots` interested candidates by score (ties uniformly at
  /// random); one extra optimistic slot goes to a random interested
  /// candidate outside that set, kept for `optimistic_rounds` rounds.
  [[nodiscard]] std::vector<core::PeerId> select(std::vector<ChokeCandidate> candidates,
                                                 graph::Rng& rng);

  /// Allocation-free select(): `candidates` is caller-owned scratch
  /// (filtered and permuted in place, capacity retained across rounds)
  /// and the unchoke set is written into `out`. The swarm choke phase
  /// calls this with per-thread scratch — one heap allocation per peer
  /// per round hoisted into a reusable buffer. Identical semantics and
  /// RNG consumption to select() (which delegates here).
  void select_into(std::vector<ChokeCandidate>& candidates, graph::Rng& rng,
                   std::vector<core::PeerId>& out);

  /// Current optimistic-unchoke target (kNoPeer when none).
  [[nodiscard]] core::PeerId optimistic() const noexcept { return optimistic_; }

  /// The choker's complete state, exposed for checkpointing: slot
  /// configuration plus the optimistic-rotation position. Restoring it
  /// reproduces the exact select() behavior from that point on.
  struct State {
    std::size_t tft_slots = 0;
    std::size_t optimistic_rounds = 1;
    std::size_t rounds_since_rotation = 0;
    core::PeerId optimistic = core::kNoPeer;
  };

  [[nodiscard]] State state() const noexcept {
    return State{tft_slots_, optimistic_rounds_, rounds_since_rotation_, optimistic_};
  }

  /// Rebuilds a choker from a captured State.
  [[nodiscard]] static TftChoker from_state(const State& st) {
    TftChoker c(st.tft_slots, st.optimistic_rounds);
    c.rounds_since_rotation_ = st.rounds_since_rotation;
    c.optimistic_ = st.optimistic;
    return c;
  }

 private:
  std::size_t tft_slots_;
  std::size_t optimistic_rounds_;
  std::size_t rounds_since_rotation_ = 0;
  core::PeerId optimistic_ = core::kNoPeer;
};

}  // namespace strat::bt
