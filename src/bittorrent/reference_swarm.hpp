// The retained map-based swarm data plane.
//
// This is the original per-neighbor `unordered_map` implementation of
// the round-based simulator (with the same state-bug fixes as the CSR
// rewrite: departure availability decrements, construction-complete
// leechers, and upload-budget redistribution). It exists for two jobs:
//
//  1. Differential testing — a fixed-seed single-threaded run of
//     ReferenceSwarm and Swarm must produce bitwise-identical PeerStats
//     and stratification output (tests/bittorrent/test_swarm_invariants).
//  2. Benchmarking — micro_swarm times both planes so the CSR layout's
//     speedup at n = 5000+ stays measured, not assumed.
//
// Keep the two implementations' per-round operation and RNG-consumption
// order in lockstep; any intentional behavior change must land in both.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "bittorrent/choker.hpp"
#include "bittorrent/piece_picker.hpp"
#include "bittorrent/swarm.hpp"
#include "core/types.hpp"
#include "graph/graph.hpp"
#include "graph/rng.hpp"

namespace strat::bt {

/// Map-based reference implementation of Swarm (same config/semantics).
class ReferenceSwarm {
 public:
  ReferenceSwarm(const SwarmConfig& config, std::vector<double> upload_kbps, graph::Rng& rng);

  void run_round();
  void run(std::size_t rounds);

  [[nodiscard]] std::size_t rounds_elapsed() const noexcept { return round_; }
  [[nodiscard]] std::size_t peer_count() const noexcept { return stats_.size(); }
  [[nodiscard]] const PeerStats& stats(core::PeerId p) const { return stats_.at(p); }
  [[nodiscard]] std::size_t completed_leechers() const;
  [[nodiscard]] double leech_download_kbps(core::PeerId p) const;
  [[nodiscard]] StratificationReport stratification() const;
  void reset_stratification() { mutual_rounds_.clear(); }
  [[nodiscard]] bool departed(core::PeerId p) const { return departed_.at(p); }
  [[nodiscard]] Swarm::AvailabilityStats availability_stats() const;

 private:
  void choke_step();
  void transfer_step();
  double send_to(core::PeerId p, core::PeerId q, double budget);
  void complete_piece(core::PeerId p, PieceId piece);
  void depart_peer(core::PeerId p);
  [[nodiscard]] bool wants_from(core::PeerId receiver, core::PeerId sender) const;

  SwarmConfig config_;
  graph::Rng& rng_;
  graph::Graph overlay_;
  PiecePicker picker_;
  std::vector<PeerStats> stats_;
  std::vector<Bitfield> have_;
  std::vector<TftChoker> chokers_;
  std::vector<std::vector<core::PeerId>> unchoked_;
  std::vector<std::unordered_map<core::PeerId, double>> received_rate_;
  std::vector<std::unordered_map<core::PeerId, double>> received_now_;
  std::vector<std::unordered_map<core::PeerId, double>> sent_rate_;
  std::vector<std::unordered_map<core::PeerId, double>> sent_now_;
  std::vector<std::unordered_map<PieceId, double>> partial_;
  std::vector<std::unordered_map<core::PeerId, PieceId>> inflight_;
  std::vector<std::size_t> bandwidth_rank_;
  std::vector<bool> departed_;
  // key = (min id << 32) | max id.
  std::unordered_map<std::uint64_t, std::uint32_t> mutual_rounds_;
  std::size_t round_ = 0;
  std::size_t leechers_ = 0;
};

}  // namespace strat::bt
