// The retained map-based swarm data plane.
//
// This is the original per-neighbor `unordered_map` implementation of
// the round-based simulator, extended with the same dynamic-overlay
// operations as the slot-recycling rewrite (join/leave/re-announce,
// endgame request discipline). It exists for two jobs:
//
//  1. Differential testing — a fixed-seed single-threaded run of
//     ReferenceSwarm and Swarm must produce bitwise-identical PeerStats
//     and stratification output, churned runs included
//     (tests/bittorrent/test_swarm_invariants, test_swarm_churn).
//  2. Benchmarking — micro_swarm times both planes so the flat
//     layout's speedup at n = 5000+ stays measured, not assumed.
//
// Keep the two implementations' per-round operation and RNG-consumption
// order in lockstep; any intentional behavior change must land in both.
// Choke and transfer randomness is drawn from the same per-peer
// counter-based streams (Rng::stream keyed by run key / external id /
// round) as the flat plane, and the transfer phase runs the same
// two-stage plan-against-snapshot / commit-in-sender-order algorithm
// (serially), so this oracle stays bitwise equal to Swarm at *any*
// SwarmConfig::threads value — the plane accepts the threads knob but
// always runs single-threaded.
// Overlay mutations here go through graph::Graph (grow/add_edge/
// isolate + finalize), whose sorted adjacency matches the flat plane's
// sorted rows, so choke candidate order — and therefore every RNG
// draw — stays aligned. The plane embeds the same PeerTable and applies
// identical add/remove (compaction) sequences, so per-peer loop order —
// which the flat plane derives from table rows — matches too; its own
// containers stay keyed by external id (O(arrivals-ever) memory is fine
// at oracle scale).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "bittorrent/choker.hpp"
#include "bittorrent/peer_table.hpp"
#include "bittorrent/piece_picker.hpp"
#include "bittorrent/swarm.hpp"
#include "core/types.hpp"
#include "graph/graph.hpp"
#include "graph/rng.hpp"

namespace strat::bt {

/// Map-based reference implementation of Swarm (same config/semantics).
class ReferenceSwarm {
 public:
  ReferenceSwarm(const SwarmConfig& config, std::vector<double> upload_kbps, graph::Rng& rng);

  void run_round();
  void run(std::size_t rounds);

  /// Dynamic-overlay operations, mirroring Swarm.
  core::PeerId join(double upload_kbps, const Bitfield& have);
  core::PeerId join(double upload_kbps);
  void leave(core::PeerId p);
  std::size_t reannounce(core::PeerId p);
  /// Externally-driven capacity update, mirroring
  /// Swarm::set_upload_capacity (between rounds only; no-op for
  /// departed peers or an unchanged value).
  void set_upload_capacity(core::PeerId p, double kbps);

  [[nodiscard]] std::size_t rounds_elapsed() const noexcept { return round_; }
  [[nodiscard]] std::size_t peer_count() const noexcept { return stats_.size(); }
  [[nodiscard]] const PeerStats& stats(core::PeerId p) const { return stats_.at(p); }
  [[nodiscard]] bool is_leecher(core::PeerId p) const { return !stats_.at(p).seed; }
  [[nodiscard]] std::size_t live_peer_count() const noexcept { return table_.size(); }
  /// Live external ids in dense row order (mirrors Swarm::live_ids()).
  [[nodiscard]] std::span<const core::PeerId> live_ids() const noexcept { return table_.ids(); }
  [[nodiscard]] std::size_t arrivals() const noexcept { return arrivals_; }
  [[nodiscard]] std::size_t departures() const noexcept { return departures_; }
  [[nodiscard]] std::size_t degree(core::PeerId p) const { return overlay_.degree(p); }
  [[nodiscard]] std::size_t completed_leechers() const;
  [[nodiscard]] double leech_download_kbps(core::PeerId p) const;
  [[nodiscard]] StratificationReport stratification() const;
  void reset_stratification() { mutual_rounds_.clear(); }
  [[nodiscard]] bool departed(core::PeerId p) const { return departed_.at(p); }
  [[nodiscard]] Swarm::AvailabilityStats availability_stats() const;
  /// Live fault state, mirroring Swarm::fault_state(). Counters must
  /// match the flat plane bitwise under identical fault specs; the
  /// per-peer vectors here are id-indexed (departed entries inert)
  /// where the flat plane compacts by row.
  [[nodiscard]] const FaultState& fault_state() const noexcept { return faults_; }

 private:
  void choke_step();
  void count_incoming_unchokes();
  void transfer_step();
  /// Two-stage transfer, mirroring Swarm: plan against the phase-start
  /// snapshot into grants_/plans_, then replay in sender order,
  /// validating per (sender, receiver) lane and re-driving stale lanes
  /// live. Run single-threaded here — the point is that the *algorithm*
  /// (snapshot reads, RNG stream per sender, lane validation, repair
  /// rule) is identical, so the parallel flat plane has a serial oracle
  /// for the exact same semantics.
  void plan_transfers(core::PeerId p);
  [[nodiscard]] std::optional<PieceId> plan_pick(const detail::TransferLane& lane, core::PeerId q,
                                                core::PeerId p, graph::Rng& rng);
  void commit_transfers();
  double send_to(core::PeerId p, core::PeerId q, double budget, graph::Rng& rng);
  [[nodiscard]] std::optional<PieceId> pick_for(core::PeerId q, core::PeerId p, graph::Rng& rng);
  /// Same per-sender transfer stream as the flat plane: keyed off the run
  /// key, the sender's external id, and the round.
  [[nodiscard]] graph::Rng transfer_stream(core::PeerId p) const {
    return graph::Rng::stream(choke_key_ ^ kTransferStreamSalt, p, round_);
  }
  /// Same per-sender lane-repair stream as the flat plane.
  [[nodiscard]] graph::Rng rerun_stream(core::PeerId p) const {
    return graph::Rng::stream(choke_key_ ^ kTransferRerunSalt, p, round_);
  }
  [[nodiscard]] double partial_progress(core::PeerId q, PieceId piece) const;
  void complete_piece(core::PeerId p, PieceId piece);
  void depart_peer(core::PeerId p, double when);
  [[nodiscard]] bool wants_from(core::PeerId receiver, core::PeerId sender) const;
  [[nodiscard]] std::size_t target_degree() const;
  std::size_t connect_random_live(core::PeerId p, std::size_t need);
  /// Faulted announce, mirroring Swarm::announce_with_faults (same
  /// shared detail::announce_connect_faulty algorithm, same trial
  /// stream keyed by the per-peer announce sequence number).
  std::size_t announce_with_faults(core::PeerId p, std::size_t need);
  /// Serial backoff sweep at the top of run_round, mirroring
  /// Swarm::fault_step over the identical table-row order.
  void fault_step();
  void refresh_ranks() const;

  SwarmConfig config_;
  graph::Rng& rng_;
  /// Run key for the per-peer choke streams — the same single
  /// structural draw Swarm makes at the same construction point.
  std::uint64_t choke_key_ = 0;
  graph::Graph overlay_;
  PiecePicker picker_;
  std::vector<PeerStats> stats_;
  std::vector<Bitfield> have_;
  std::vector<TftChoker> chokers_;
  std::vector<std::vector<core::PeerId>> unchoked_;
  std::vector<std::unordered_map<core::PeerId, double>> received_rate_;
  std::vector<std::unordered_map<core::PeerId, double>> received_now_;
  std::vector<std::unordered_map<core::PeerId, double>> sent_rate_;
  std::vector<std::unordered_map<core::PeerId, double>> sent_now_;
  std::vector<std::unordered_map<PieceId, double>> partial_;
  std::vector<std::unordered_map<core::PeerId, PieceId>> inflight_;
  // Live fault state, id-indexed (this plane never compacts): departed
  // peers' entries simply go inert. Counters match the flat plane.
  FaultState faults_;
  std::vector<std::uint32_t> incoming_unchokes_;
  Bitfield reserved_scratch_;
  std::vector<PieceId> reserved_list_;
  std::vector<PieceId> reserved_partials_;
  // Lazily rebuilt on read, like the flat plane (derived state — no
  // RNG involved, so laziness cannot break lockstep).
  mutable std::vector<std::size_t> bandwidth_rank_;
  mutable bool ranks_dirty_ = false;
  std::vector<bool> departed_;
  // key = (min id << 32) | max id. Entries persist across departures —
  // the map-per-pair analogue of the flat plane's retired records.
  std::unordered_map<std::uint64_t, std::uint32_t> mutual_rounds_;
  // The same dense peer table as the flat plane, fed identical
  // add/remove sequences: row order drives announce sampling and every
  // per-peer loop, so both planes' RNG consumption stays in lockstep.
  PeerTable table_;
  // Sender-order snapshot for transfer_step (mirrors Swarm's).
  std::vector<core::PeerId> order_scratch_;
  // Two-stage transfer scratch (mirrors Swarm's per-chunk TransferScratch;
  // one set suffices since this plane plans serially).
  std::vector<core::PeerId> hungry_scratch_;
  std::vector<core::PeerId> next_hungry_scratch_;
  std::vector<detail::TransferLane> lanes_;
  std::vector<detail::TransferGrant> grants_;
  std::vector<detail::SenderPlan> plans_;
  std::size_t round_ = 0;
  std::size_t leechers_ = 0;  // leechers ever (initial + arrivals)
  std::size_t arrivals_ = 0;
  std::size_t departures_ = 0;
};

}  // namespace strat::bt
