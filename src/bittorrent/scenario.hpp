// Scenario engine over the swarm simulator.
//
// A SwarmScenario bundles a SwarmConfig with a capacity assignment and a
// warm-up/measurement schedule; run_scenario() executes one seeded run
// and distills the aggregates the §6 validation cares about (completion,
// leech-phase rates by capacity decile, stratification, availability
// dispersion). run_replications() fans independent seeds out over a
// thread pool (sim::parallel_for) — results are deterministic per seed
// regardless of the thread count.
//
// On top of single swarms, MultiSwarmSpec models peers split across
// several overlapping swarms: a peer in k swarms divides its upload
// capacity k ways, so multi-homed peers rank lower *within* each swarm
// — the stratification penalty of divided attention, a scenario the
// paper's single-swarm model cannot express directly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "bittorrent/swarm.hpp"

namespace strat::bt {

/// One parameterized swarm experiment.
struct SwarmScenario {
  SwarmConfig config;
  /// One capacity per leecher (config.num_peers entries).
  std::vector<double> upload_kbps;
  /// Rounds run before the stratification window opens (TFT lock-in).
  std::size_t warmup_rounds = 20;
  /// Rounds measured after the warm-up.
  std::size_t measure_rounds = 40;
};

/// Aggregates of one seeded scenario run.
struct ScenarioResult {
  std::uint64_t seed = 0;
  std::size_t completed_leechers = 0;
  /// Mean completion round over completed leechers (0 when none).
  double mean_completion_round = 0.0;
  /// Mean leech-phase download rate over all leechers (kbps).
  double mean_leech_kbps = 0.0;
  /// Mean leech-phase rate of the fastest / slowest 10% by capacity.
  double top_decile_kbps = 0.0;
  double bottom_decile_kbps = 0.0;
  StratificationReport strat;
  double availability_cv = 0.0;
  double total_uploaded_kb = 0.0;
  double total_downloaded_kb = 0.0;
};

/// Runs one scenario with the given seed (warm-up, reset, measure).
[[nodiscard]] ScenarioResult run_scenario(const SwarmScenario& scenario, std::uint64_t seed);

/// Runs one replication per seed, distributed over `threads` workers.
/// Results are indexed like `seeds` and independent of `threads`.
[[nodiscard]] std::vector<ScenarioResult> run_replications(const SwarmScenario& scenario,
                                                           std::span<const std::uint64_t> seeds,
                                                           std::size_t threads = 1);

/// Heterogeneous-slot helper: maps capacities to per-peer TFT slot
/// counts in [lo, hi], linear in log-capacity (fastest peer gets hi).
/// Requires lo >= 1, lo <= hi, and positive capacities.
[[nodiscard]] std::vector<std::size_t> capacity_scaled_slots(const std::vector<double>& upload_kbps,
                                                             std::size_t lo, std::size_t hi);

/// Peers spread across `num_swarms` overlapping swarms.
struct MultiSwarmSpec {
  std::size_t num_swarms = 2;
  std::size_t peers_per_swarm = 80;
  /// Fraction of each swarm's leechers shared with the next swarm
  /// (in [0, 1); consecutive swarms overlap on that many peers).
  double overlap_fraction = 0.2;
  /// Per-swarm config; num_peers is overridden with peers_per_swarm.
  SwarmConfig config;
  /// One capacity per *distinct* peer (distinct_peer_count entries).
  std::vector<double> upload_kbps;
  std::size_t warmup_rounds = 20;
  std::size_t measure_rounds = 40;
};

/// Number of distinct peers implied by the overlap layout.
[[nodiscard]] std::size_t distinct_peer_count(const MultiSwarmSpec& spec);

/// Multi-swarm aggregates: per-swarm results plus the single- vs
/// multi-homed comparison. Rates are *per swarm membership* (a peer in
/// two swarms contributes the average of its two in-swarm rates), so a
/// ratio below 1 is the stratification penalty of divided capacity —
/// each swarm downloads distinct content, so summing would compare
/// different workloads.
struct MultiSwarmResult {
  std::vector<ScenarioResult> per_swarm;
  std::size_t single_home_peers = 0;
  std::size_t multi_home_peers = 0;
  double mean_single_home_kbps = 0.0;  // mean in-swarm leech rate, 1 swarm
  double mean_multi_home_kbps = 0.0;   // mean in-swarm leech rate, 2+ swarms
};

/// Runs every member swarm (in parallel when threads > 1; swarms are
/// independent once capacities are split, so this is deterministic).
[[nodiscard]] MultiSwarmResult run_multi_swarm(const MultiSwarmSpec& spec, std::uint64_t seed,
                                               std::size_t threads = 1);

}  // namespace strat::bt
