// Scenario engine over the swarm simulator.
//
// A SwarmScenario bundles a SwarmConfig with a capacity assignment, a
// warm-up/measurement schedule and an optional churn schedule;
// run_scenario() executes one seeded run and distills the aggregates
// the §6 validation cares about (completion, leech-phase rates by
// capacity decile, stratification, availability dispersion).
// run_replications() fans independent seeds out over a thread pool
// (sim::parallel_for) — results are deterministic per seed regardless
// of the thread count.
//
// ChurnSpec + ChurnDriver turn the closed swarm into an open system:
// they mirror core/churn.hpp's replacement/removal/arrival event
// taxonomy (§3, Figure 3) at the protocol level. Arrivals follow a
// Poisson process or a one-shot flash crowd; departures follow
// exponential or fixed seedless lifetimes; replacement events keep the
// population stationary at the paper's x/1000 rates; and a periodic
// tracker re-announce sweep tops degrees back up as departures thin
// the overlay. The driver is a template over the data plane so the
// Swarm-vs-ReferenceSwarm differential tests replay identical churn
// schedules through both.
//
// On top of single swarms, MultiSwarmSpec models peers split across
// several overlapping swarms: a peer in k swarms divides its upload
// capacity k ways, so multi-homed peers rank lower *within* each swarm
// — the stratification penalty of divided attention, a scenario the
// paper's single-swarm model cannot express directly.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <optional>
#include <span>
#include <stdexcept>
#include <unordered_map>
#include <utility>
#include <vector>

#include "bittorrent/bandwidth.hpp"
#include "bittorrent/swarm.hpp"
#include "graph/rng.hpp"

namespace strat::bt {

/// Protocol-level churn schedule (all rates are per round).
struct ChurnSpec {
  /// Arrival process for fresh leechers (empty bitfield unless
  /// arrival_completion > 0).
  enum class Arrivals { kNone, kPoisson, kFlashCrowd };
  Arrivals arrivals = Arrivals::kNone;
  double arrival_rate = 0.0;         // mean arrivals per round (Poisson)
  std::size_t flash_crowd_size = 0;  // burst size (flash crowd)
  std::size_t flash_crowd_round = 0; // burst round (flash crowd)

  /// Seedless-departure lifetime model: a peer leaves once it has been
  /// in the swarm this long, complete or not (initial seeds stay).
  enum class Lifetime { kNone, kExponential, kFixed };
  Lifetime lifetime = Lifetime::kNone;
  double lifetime_rounds = 0.0;  // mean (exponential) or exact (fixed)

  /// Replacement events per round (Poisson): one uniformly random live
  /// leecher departs and one fresh leecher arrives, keeping the
  /// population stationary — the paper's x/1000 churn regime.
  double replacement_rate = 0.0;

  /// Fraction of pieces an arrival already holds (independent
  /// Bernoulli per piece), mirroring post_flashcrowd initialization.
  double arrival_completion = 0.0;

  /// How arrivals get their upload capacity: cycle a fixed pool (the
  /// pre-existing behavior) or draw each arrival independently from an
  /// empirical capacity distribution — the open-system analogue of the
  /// paper's Figure 10 / Table 1 upstream-bandwidth CDF.
  enum class ArrivalBandwidth { kCyclePool, kModel };
  ArrivalBandwidth arrival_bandwidth = ArrivalBandwidth::kCyclePool;

  /// Distribution sampled per arrival when arrival_bandwidth == kModel
  /// (e.g. BandwidthModel::saroiu2002()). One inverse-CDF draw from the
  /// swarm RNG per arrival, so both data planes stay in lockstep.
  std::optional<BandwidthModel> arrival_model;

  /// Capacities handed to arrivals, cycled in order (kCyclePool only).
  /// Empty = cycle the scenario's leecher capacity list.
  std::vector<double> arrival_upload_kbps;

  /// Rounds between tracker re-announce sweeps topping every live
  /// peer's degree back up toward neighbor_degree (0 = arrivals only).
  std::size_t reannounce_interval = 0;

  [[nodiscard]] bool active() const noexcept {
    return arrivals != Arrivals::kNone || lifetime != Lifetime::kNone ||
           replacement_rate > 0.0 || reannounce_interval > 0;
  }
};

/// The paper's "x/1000" churn notation mapped to a per-round
/// replacement rate: x events per 1000 peers per round.
[[nodiscard]] inline double paper_replacement_rate(double x, std::size_t peers) {
  return x * static_cast<double>(peers) / 1000.0;
}

/// Applies a ChurnSpec to a running swarm, one round at a time.
/// Templated over the data plane (Swarm or ReferenceSwarm) so
/// differential tests replay identical schedules through both: all
/// randomness is drawn from `rng` — pass the same generator the swarm
/// was constructed with, and two planes in lockstep stay in lockstep.
template <typename SwarmT>
class ChurnDriver {
 public:
  /// `arrival_pool` provides arrival capacities (cycled); required
  /// whenever the spec can create arrivals.
  ChurnDriver(const ChurnSpec& spec, const SwarmConfig& config, std::vector<double> arrival_pool,
              graph::Rng& rng)
      : spec_(spec), config_(config), pool_(std::move(arrival_pool)), rng_(rng) {
    const bool makes_arrivals =
        spec_.arrivals != ChurnSpec::Arrivals::kNone || spec_.replacement_rate > 0.0;
    if (makes_arrivals && spec_.arrival_bandwidth == ChurnSpec::ArrivalBandwidth::kCyclePool &&
        pool_.empty()) {
      throw std::invalid_argument("ChurnDriver: arrival capacity pool required");
    }
    if (spec_.arrival_bandwidth == ChurnSpec::ArrivalBandwidth::kModel &&
        !spec_.arrival_model.has_value()) {
      throw std::invalid_argument("ChurnDriver: arrival bandwidth model required");
    }
  }

  /// Call once, right after constructing the swarm: draws lifetimes
  /// for the initial leecher population (dense-table order).
  void attach(SwarmT& swarm) {
    if (spec_.lifetime == ChurnSpec::Lifetime::kNone) return;
    for (const core::PeerId p : swarm.live_ids()) {
      if (swarm.is_leecher(p)) set_deadline(p, 0.0);
    }
  }

  /// Applies this round's churn events; call immediately before each
  /// run_round(). Event order is fixed (and therefore reproducible):
  /// lifetime departures, replacement events, arrivals, re-announce.
  /// Every scan walks the swarm's dense live table — O(live
  /// population), never O(arrivals-ever).
  void before_round(SwarmT& swarm) {
    const std::size_t r = swarm.rounds_elapsed();
    const auto now = static_cast<double>(r);
    if (spec_.lifetime != ChurnSpec::Lifetime::kNone) {
      // Snapshot: leave() compacts the live table mid-scan.
      const auto ids = swarm.live_ids();
      live_scratch_.assign(ids.begin(), ids.end());
      for (const core::PeerId p : live_scratch_) {
        if (!swarm.is_leecher(p)) continue;
        if (deadline(p) <= now) {
          swarm.leave(p);
          deadline_.erase(p);
        }
      }
      // Completion departures bypass the driver, so their deadlines
      // linger; sweep them out once the stale fraction dominates. This
      // keeps driver memory O(live) across unbounded arrivals (it used
      // to grow 8 bytes per arrival-ever) without consuming RNG.
      if (deadline_.size() > 2 * swarm.live_peer_count() + 64) {
        // strat-lint: allow(unordered-iter) -- erasure sweep: the surviving
        // map contents are independent of visit order and no RNG is drawn.
        for (auto it = deadline_.begin(); it != deadline_.end();) {
          it = swarm.departed(it->first) ? deadline_.erase(it) : std::next(it);
        }
      }
    }
    if (spec_.replacement_rate > 0.0) {
      const std::uint64_t events = rng_.poisson(spec_.replacement_rate);
      if (events > 0) {
        // One live-table scan for the whole round, maintained
        // incrementally per event (swap-remove keeps the pick uniform).
        live_scratch_.clear();
        for (const core::PeerId p : swarm.live_ids()) {
          if (swarm.is_leecher(p)) live_scratch_.push_back(p);
        }
        for (std::uint64_t e = 0; e < events; ++e) {
          if (!live_scratch_.empty()) {
            const auto j = static_cast<std::size_t>(rng_.below(live_scratch_.size()));
            swarm.leave(live_scratch_[j]);
            deadline_.erase(live_scratch_[j]);
            live_scratch_[j] = live_scratch_.back();
            live_scratch_.pop_back();
          }
          const core::PeerId fresh = join_fresh(swarm);
          // (a Bernoulli-complete arrival can depart on the spot)
          if (!swarm.departed(fresh)) live_scratch_.push_back(fresh);
        }
      }
    }
    std::size_t arriving = 0;
    if (spec_.arrivals == ChurnSpec::Arrivals::kPoisson) {
      arriving = static_cast<std::size_t>(rng_.poisson(spec_.arrival_rate));
    } else if (spec_.arrivals == ChurnSpec::Arrivals::kFlashCrowd &&
               r == spec_.flash_crowd_round) {
      arriving = spec_.flash_crowd_size;
    }
    for (std::size_t i = 0; i < arriving; ++i) join_fresh(swarm);
    if (spec_.reannounce_interval > 0 && r > 0 && r % spec_.reannounce_interval == 0) {
      // reannounce() never joins or departs anyone, so the live span
      // itself is stable here.
      for (const core::PeerId p : swarm.live_ids()) swarm.reannounce(p);
    }
  }

  /// Injected arrival: the caller supplies the capacity (e.g.
  /// TrackerSim's ecosystem-level arrival process, which samples it
  /// from a counter-based stream and may split it across swarms), and
  /// the driver contributes everything swarm-local — the
  /// arrival-completion bitfield and the lifetime bookkeeping — so
  /// injected and spec-driven arrivals share one code path. Draw order
  /// against `rng` matches join_fresh minus the capacity draw. Returns
  /// the new peer's external id. Call between rounds only.
  core::PeerId join_injected(SwarmT& swarm, double kbps) {
    Bitfield have(config_.num_pieces);
    if (spec_.arrival_completion > 0.0) {
      for (PieceId piece = 0; piece < config_.num_pieces; ++piece) {
        if (rng_.bernoulli(spec_.arrival_completion)) have.set(piece);
      }
    }
    const core::PeerId p = swarm.join(kbps, have);
    set_deadline(p, static_cast<double>(swarm.rounds_elapsed()));
    return p;
  }

  /// Deadlines currently tracked — O(live) by construction (erased on
  /// driver-issued departures, swept when completion departures leave
  /// stale entries behind). Exposed for the leak-regression tests.
  [[nodiscard]] std::size_t tracked_deadlines() const noexcept { return deadline_.size(); }

  // --- checkpoint state -----------------------------------------------
  // The driver's only mutable state is the deadline map and the
  // capacity-pool cursor: everything else (spec, config, pool) is a
  // construction input the resuming caller must supply unchanged.
  // Deadlines are exported sorted by peer id so two lockstep drivers
  // serialize identically (the unordered_map's bucket order is not
  // deterministic, but no simulation decision ever iterates it).

  /// Deadline entries sorted ascending by external peer id.
  [[nodiscard]] std::vector<std::pair<core::PeerId, double>> deadline_snapshot() const {
    // strat-lint: allow(unordered-iter) -- copied then sorted below; the
    // bucket order never reaches the serialized bytes.
    std::vector<std::pair<core::PeerId, double>> out(deadline_.begin(), deadline_.end());
    std::sort(out.begin(), out.end());
    return out;
  }

  /// Arrivals served from the cycled capacity pool so far.
  [[nodiscard]] std::size_t capacity_cursor() const noexcept { return next_capacity_; }

  /// Restores the state exported by deadline_snapshot()/
  /// capacity_cursor(). The driver must have been constructed with the
  /// same spec, config and pool as the one that was checkpointed —
  /// those are inputs, not state — or the continued run diverges.
  void restore(std::span<const std::pair<core::PeerId, double>> deadlines,
               std::size_t capacity_cursor) {
    deadline_.clear();
    deadline_.reserve(deadlines.size());
    for (const auto& [p, d] : deadlines) deadline_.emplace(p, d);
    next_capacity_ = capacity_cursor;
  }

 private:
  // Spec-driven arrival: sample the capacity (model draw or pool
  // cycle), then hand off to the shared injected-arrival path. The
  // `now` deadlines join_injected stamps equal the `now` callers used
  // to pass — rounds_elapsed() is constant across a before_round().
  core::PeerId join_fresh(SwarmT& swarm) {
    const double kbps = spec_.arrival_bandwidth == ChurnSpec::ArrivalBandwidth::kModel
                            ? spec_.arrival_model->sample(rng_)
                            : pool_[next_capacity_++ % pool_.size()];
    return join_injected(swarm, kbps);
  }

  void set_deadline(core::PeerId p, double now) {
    if (spec_.lifetime == ChurnSpec::Lifetime::kNone) return;
    const double life = spec_.lifetime == ChurnSpec::Lifetime::kFixed
                            ? spec_.lifetime_rounds
                            : rng_.exponential(spec_.lifetime_rounds);
    deadline_[p] = now + life;
  }

  [[nodiscard]] double deadline(core::PeerId p) const {
    const auto it = deadline_.find(p);
    return it == deadline_.end() ? std::numeric_limits<double>::infinity() : it->second;
  }

  // strat-lint: not-serialized -- construction input; the resuming caller
  // rebuilds the driver with the same spec (see restore()).
  ChurnSpec spec_;
  // strat-lint: not-serialized -- construction input, equal to the swarm's
  SwarmConfig config_;
  // strat-lint: not-serialized -- construction input (arrival capacity pool)
  std::vector<double> pool_;
  // strat-lint: not-serialized -- the swarm's structural generator; its
  // words travel in the swarm snapshot, never in the companion section.
  graph::Rng& rng_;
  // Departure deadlines of live leechers, keyed by external id
  // (populated only when a lifetime model is active). Entries are
  // erased when the driver departs a peer and swept when completion
  // departures strand them, so the map stays O(live) — external ids
  // grow forever, a vector indexed by them would too.
  // strat-lint: serialized-via(deadline_snapshot, restore)
  std::unordered_map<core::PeerId, double> deadline_;
  // Live-id snapshot scratch, O(live), reused across rounds.
  // strat-lint: not-serialized -- scratch, reassigned before every use
  std::vector<core::PeerId> live_scratch_;
  // strat-lint: serialized-via(capacity_cursor, restore)
  std::size_t next_capacity_ = 0;
};

/// One parameterized swarm experiment.
struct SwarmScenario {
  SwarmConfig config;
  /// One capacity per initial leecher (config.num_peers entries).
  std::vector<double> upload_kbps;
  /// Rounds run before the stratification window opens (TFT lock-in).
  std::size_t warmup_rounds = 20;
  /// Rounds measured after the warm-up.
  std::size_t measure_rounds = 40;
  /// Churn schedule applied across both phases (inert by default).
  ChurnSpec churn;
};

/// Aggregates of one seeded scenario run. Leecher aggregates cover
/// every leecher that ever joined (initial population + arrivals).
struct ScenarioResult {
  std::uint64_t seed = 0;
  std::size_t completed_leechers = 0;
  /// Mean completion round over completed leechers (0 when none).
  double mean_completion_round = 0.0;
  /// Mean leech-phase download rate over all leechers (kbps).
  double mean_leech_kbps = 0.0;
  /// Mean leech-phase rate of the fastest / slowest 10% by capacity.
  double top_decile_kbps = 0.0;
  double bottom_decile_kbps = 0.0;
  StratificationReport strat;
  double availability_cv = 0.0;
  double total_uploaded_kb = 0.0;
  double total_downloaded_kb = 0.0;
  /// Churn accounting: join() arrivals, departures (voluntary and
  /// completion-driven), and peers still present at the end.
  std::size_t arrivals = 0;
  std::size_t departures = 0;
  std::size_t live_peers = 0;
  /// Fault-injection totals (all zero with faults disabled): announces
  /// lost to tracker outages, backoff retries, connects abandoned
  /// after the attempt budget, inbound connects refused by NAT-ed
  /// peers, transfer lanes whose bytes were dropped.
  std::uint64_t fault_failed_announces = 0;
  std::uint64_t fault_retries = 0;
  std::uint64_t fault_connect_failures = 0;
  std::uint64_t fault_nat_rejections = 0;
  std::uint64_t fault_lost_lanes = 0;
};

/// Runs one scenario with the given seed (warm-up, reset, measure),
/// churn schedule included.
[[nodiscard]] ScenarioResult run_scenario(const SwarmScenario& scenario, std::uint64_t seed);

/// Runs one replication per seed, distributed over `threads` workers.
/// Results are indexed like `seeds` and independent of `threads`.
[[nodiscard]] std::vector<ScenarioResult> run_replications(const SwarmScenario& scenario,
                                                           std::span<const std::uint64_t> seeds,
                                                           std::size_t threads = 1);

/// Heterogeneous-slot helper: maps capacities to per-peer TFT slot
/// counts in [lo, hi], linear in log-capacity (fastest peer gets hi).
/// Requires lo >= 1, lo <= hi, and positive capacities.
[[nodiscard]] std::vector<std::size_t> capacity_scaled_slots(const std::vector<double>& upload_kbps,
                                                             std::size_t lo, std::size_t hi);

/// Peers spread across `num_swarms` overlapping swarms.
struct MultiSwarmSpec {
  std::size_t num_swarms = 2;
  std::size_t peers_per_swarm = 80;
  /// Fraction of each swarm's leechers shared with the next swarm
  /// (in [0, 1); consecutive swarms overlap on that many peers).
  double overlap_fraction = 0.2;
  /// Per-swarm config; num_peers is overridden with peers_per_swarm.
  SwarmConfig config;
  /// One capacity per *distinct* peer (distinct_peer_count entries).
  std::vector<double> upload_kbps;
  std::size_t warmup_rounds = 20;
  std::size_t measure_rounds = 40;
};

/// Number of distinct peers implied by the overlap layout.
[[nodiscard]] std::size_t distinct_peer_count(const MultiSwarmSpec& spec);

/// Multi-swarm aggregates: per-swarm results plus the single- vs
/// multi-homed comparison. Rates are *per swarm membership* (a peer in
/// two swarms contributes the average of its two in-swarm rates), so a
/// ratio below 1 is the stratification penalty of divided capacity —
/// each swarm downloads distinct content, so summing would compare
/// different workloads.
struct MultiSwarmResult {
  std::vector<ScenarioResult> per_swarm;
  std::size_t single_home_peers = 0;
  std::size_t multi_home_peers = 0;
  double mean_single_home_kbps = 0.0;  // mean in-swarm leech rate, 1 swarm
  double mean_multi_home_kbps = 0.0;   // mean in-swarm leech rate, 2+ swarms
};

/// Runs every member swarm. A thin shim over TrackerSim
/// (tracker_sim.hpp) since the tracker layer landed: `threads` maps to
/// TrackerConfig::shards and the capacity split is frozen at
/// construction (the historical semantics). Deterministic at any
/// thread count, bitwise.
[[nodiscard]] MultiSwarmResult run_multi_swarm(const MultiSwarmSpec& spec, std::uint64_t seed,
                                               std::size_t threads = 1);

}  // namespace strat::bt
