// Dense peer table: the indirection layer between stable external
// peer identities and compact internal storage rows.
//
// External `core::PeerId`s are handed out in arrival order and never
// reused — they are what scenarios, trackers, churn drivers and
// reports speak. Internally, every *live* peer owns one dense row in
// [0, size()), and all per-peer hot-path state in the swarm data plane
// is row-indexed. A departure compacts the row space with the same
// swap-with-last discipline the edge-slot pool uses for its free list:
// the last row's occupant moves into the vacated row, the id->row map
// is patched, and the row's generation stamp is bumped so any stale
// cached row reference is detectable. Long churned runs therefore keep
// per-peer storage and per-peer loops O(live population), while the
// external id space keeps growing monotonically (the id->row map is
// the only O(ids-ever) structure, at 4 bytes per id ever seen).
//
// The table's row order is exactly the old dense live-list order
// (insertion order, swap-removed on departure), so announce rejection
// sampling over ids() consumes the same RNG stream as before the
// indirection existed. Both swarm data planes embed one table each and
// apply identical add/remove sequences, which keeps their row orders —
// and therefore every order-dependent RNG draw — in lockstep.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <stdexcept>
#include <vector>

#include "core/types.hpp"

namespace strat::bt {

class PeerTable {
 public:
  /// Internal row index. Rows are dense: always < size().
  using Row = std::uint32_t;

  /// Sentinel "not live" row.
  static constexpr Row kNoRow = std::numeric_limits<Row>::max();

  /// Registers external id `id` and assigns it the next row. Ids must
  /// be fresh (never added before — departed ids are tombstoned, not
  /// recycled); throws std::invalid_argument on reuse. Returns the new
  /// row (== size() - 1).
  Row add(core::PeerId id) {
    if (id < row_of_.size() && row_of_[id] != kNoRow) {
      throw std::invalid_argument("PeerTable::add: id already used");
    }
    if (id >= row_of_.size()) row_of_.resize(id + 1, kNoRow);
    const auto row = static_cast<Row>(ids_.size());
    row_of_[id] = row;
    ids_.push_back(id);
    if (row_gen_.size() <= row) row_gen_.resize(row + 1, 0);
    return row;
  }

  /// Outcome of a removal, so the owner can apply the same
  /// swap-with-last move to every row-indexed container: the state at
  /// row `size()` (the old last row) belongs at `row` now, unless
  /// `moved_id` is kNoPeer (the removed peer already owned the last
  /// row — a plain pop_back suffices).
  struct Removal {
    Row row = kNoRow;                    // the vacated row
    core::PeerId moved_id = core::kNoPeer;  // occupant swapped into it
  };

  /// Swap-with-last compaction: removes `id` (leaving a tombstone so
  /// the id can never be re-added), moves the last row's occupant into
  /// its row and bumps that row's generation stamp. Throws
  /// std::invalid_argument if `id` is not live.
  Removal remove(core::PeerId id) {
    if (!contains(id)) throw std::invalid_argument("PeerTable::remove: id not live");
    Removal out;
    out.row = row_of_[id];
    const core::PeerId last = ids_.back();
    ids_[out.row] = last;
    row_of_[last] = out.row;
    ids_.pop_back();
    row_of_[id] = kTombstone;
    ++row_gen_[out.row];
    if (last != id) out.moved_id = last;
    return out;
  }

  /// Row of `id`, or kNoRow when it is not live (departed or unknown).
  [[nodiscard]] Row row_of(core::PeerId id) const noexcept {
    if (id >= row_of_.size()) return kNoRow;
    const Row r = row_of_[id];
    return r >= kTombstone ? kNoRow : r;
  }

  /// External id occupying `row` (row must be < size()).
  [[nodiscard]] core::PeerId id_at(Row row) const { return ids_.at(row); }

  [[nodiscard]] bool contains(core::PeerId id) const noexcept { return row_of(id) != kNoRow; }

  /// Live peer count (== the dense row count).
  [[nodiscard]] std::size_t size() const noexcept { return ids_.size(); }

  /// Live external ids in row order. Valid until the next add/remove.
  [[nodiscard]] std::span<const core::PeerId> ids() const noexcept {
    return {ids_.data(), ids_.size()};
  }

  /// One past the largest id ever registered (the external id space).
  [[nodiscard]] std::size_t id_space() const noexcept { return row_of_.size(); }

  /// Times `row`'s occupant changed through compaction; a cached
  /// (row, generation) handle is stale once this no longer matches.
  [[nodiscard]] std::uint32_t generation(Row row) const { return row_gen_.at(row); }

  /// Bytes behind the dense side (rows + generations) and the
  /// O(ids-ever) id->row map, separately — the map is the price of
  /// stable external ids and is reported apart from the O(live) state.
  [[nodiscard]] std::size_t row_bytes() const noexcept {
    return ids_.capacity() * sizeof(core::PeerId) + row_gen_.capacity() * sizeof(std::uint32_t);
  }
  [[nodiscard]] std::size_t id_map_bytes() const noexcept {
    return row_of_.capacity() * sizeof(Row);
  }

  /// Rebuilds a table from checkpointed state: `ids` is the live
  /// external ids in row order, `row_gen` the per-row generation stamps
  /// (its size is the peak concurrent row count, >= ids.size()), and
  /// `id_space` one past the largest id ever registered. Every id in
  /// [0, id_space) outside `ids` is marked tombstoned — the swarm hands
  /// ids out sequentially, so "not live" means "departed", never
  /// "skipped". The id->row index is rebuilt at exactly id_space
  /// entries with zero capacity slack, so a loaded table never carries
  /// the geometric growth overhead the in-process map accumulates over
  /// long churn (the 4 B/arrival-ever growth noted in the PR 4 bench is
  /// trimmed to its information-theoretic floor of live + tombstones).
  /// Throws std::invalid_argument on duplicate/out-of-range ids or a
  /// row_gen shorter than the live row count.
  [[nodiscard]] static PeerTable restore(std::vector<core::PeerId> ids,
                                         std::vector<std::uint32_t> row_gen,
                                         std::size_t id_space) {
    if (row_gen.size() < ids.size()) {
      throw std::invalid_argument("PeerTable::restore: row_gen shorter than live rows");
    }
    PeerTable t;
    t.row_of_.reserve(id_space);
    t.row_of_.resize(id_space, kTombstone);
    for (std::size_t r = 0; r < ids.size(); ++r) {
      const core::PeerId id = ids[r];
      if (id >= id_space) throw std::invalid_argument("PeerTable::restore: id out of range");
      if (t.row_of_[id] != kTombstone) {
        throw std::invalid_argument("PeerTable::restore: duplicate id");
      }
      t.row_of_[id] = static_cast<Row>(r);
    }
    t.ids_ = std::move(ids);
    t.row_gen_ = std::move(row_gen);
    return t;
  }

  /// Per-row generation stamps in row order (size = peak concurrent
  /// rows, not the current live count) — checkpoint companion of
  /// restore().
  [[nodiscard]] std::span<const std::uint32_t> row_generations() const noexcept {
    return {row_gen_.data(), row_gen_.size()};
  }

 private:
  /// Internal marker for "was live once, departed": distinguishes a
  /// removed id (rejected by add()) from a never-seen one. Collapsed to
  /// kNoRow by row_of().
  static constexpr Row kTombstone = kNoRow - 1;

  std::vector<core::PeerId> ids_;  // row -> external id
  std::vector<Row> row_of_;        // external id -> row (kNoRow fresh, kTombstone departed)
  std::vector<std::uint32_t> row_gen_;  // per-row occupant-change count
};

}  // namespace strat::bt
