// Swarm checkpoint serialization: Writer/Reader primitives plus
// Swarm::save()/resume() (members of Swarm so no friend surface is
// needed). See snapshot.hpp for the format contract.
#include "bittorrent/snapshot.hpp"

#include <cstring>
#include <limits>
#include <sstream>

#include "bittorrent/peer_table.hpp"
#include "bittorrent/piece_picker.hpp"

namespace strat::bt {

namespace snapshot_detail {

namespace {

constexpr std::uint64_t kHashBasis = 0xCBF29CE484222325ULL;  // FNV-64 offset

}  // namespace

Writer::Writer(std::ostream& out) : out_(&out), hash_(kHashBasis) { buf_.reserve(kIoBuf); }

Writer::Writer(std::string& sink) : sink_(&sink), hash_(kHashBasis) {}

Writer::~Writer() = default;

void Writer::flush() {
  if (out_ != nullptr && !buf_.empty()) {
    out_->write(reinterpret_cast<const char*>(buf_.data()),
                static_cast<std::streamsize>(buf_.size()));
    buf_.clear();
  }
}

void Writer::write_stream(const void* data, std::size_t n) {
  if (n >= kIoBuf) {
    flush();
    out_->write(static_cast<const char*>(data), static_cast<std::streamsize>(n));
    return;
  }
  if (buf_.size() + n > kIoBuf) flush();
  const auto* p = static_cast<const unsigned char*>(data);
  buf_.insert(buf_.end(), p, p + n);
}

void Writer::finish() {
  if (finished_) return;
  finished_ = true;
  const std::uint64_t checksum = mix64(hash_);  // footer itself is not folded
  if (sink_ != nullptr) {
    sink_->append(reinterpret_cast<const char*>(&checksum), 8);
    return;
  }
  buf_.insert(buf_.end(), reinterpret_cast<const unsigned char*>(&checksum),
              reinterpret_cast<const unsigned char*>(&checksum) + 8);
  flush();
  out_->flush();
}

Reader::Reader(std::istream& in) : in_(in), hash_(kHashBasis) {
  // On a seekable stream, learn how many bytes remain so pod_vec can
  // reject a lying length prefix before allocating anything.
  const std::istream::pos_type cur = in_.tellg();
  if (cur != std::istream::pos_type(-1)) {
    in_.seekg(0, std::ios::end);
    const std::istream::pos_type end = in_.tellg();
    in_.seekg(cur);
    if (end != std::istream::pos_type(-1) && end >= cur && in_.good()) {
      remaining_ = static_cast<std::uint64_t>(end - cur);
      remaining_known_ = true;
    } else {
      in_.clear();
      in_.seekg(cur);
    }
  } else {
    in_.clear();  // tellg on a pipe sets failbit; reads must still work
  }
}

void Reader::raw_read_slow(void* data, std::size_t n) {
  // Caller (the inline raw_read) already accounted `remaining_` and
  // handled the served-entirely-from-buffer case.
  auto* dst = static_cast<unsigned char*>(data);
  const std::size_t buffered = rend_ - rpos_;
  if (buffered > 0) {
    std::memcpy(dst, rbuf_.data() + rpos_, buffered);
    dst += buffered;
    n -= buffered;
  }
  rpos_ = rend_ = 0;
  // Large reads go straight through; so does everything on a
  // non-seekable stream, where an over-read could not be seeked back
  // for a companion section that follows on the same stream.
  if (n >= kIoBuf || !remaining_known_) {
    in_.read(reinterpret_cast<char*>(dst), static_cast<std::streamsize>(n));
    if (static_cast<std::size_t>(in_.gcount()) != n) {
      throw SnapshotError("snapshot: truncated stream");
    }
    return;
  }
  if (rbuf_.empty()) rbuf_.resize(kIoBuf);
  in_.read(reinterpret_cast<char*>(rbuf_.data()), static_cast<std::streamsize>(rbuf_.size()));
  rend_ = static_cast<std::size_t>(in_.gcount());
  if (rend_ < n) throw SnapshotError("snapshot: truncated stream");
  in_.clear();  // a short final refill sets eofbit; the bytes are still good
  std::memcpy(dst, rbuf_.data(), n);
  rpos_ = n;
}

void Reader::expect_tag(std::uint32_t t, const char* section) {
  if (u32() != t) {
    throw SnapshotError(std::string("snapshot: missing section tag '") + section + "'");
  }
}

void Reader::verify_checksum() {
  const std::uint64_t expected = mix64(hash_);  // snapshot hash before the footer
  std::uint64_t stored;
  raw_read(&stored, 8);
  // Return any unconsumed read-ahead so the stream position lands
  // exactly after the footer — a companion section may follow.
  const std::size_t leftover = rend_ - rpos_;
  if (leftover > 0) {
    in_.seekg(-static_cast<std::istream::off_type>(leftover), std::ios::cur);
    rpos_ = rend_ = 0;
  }
  if (stored != expected) throw SnapshotError("snapshot: checksum mismatch (corrupt stream)");
}

}  // namespace snapshot_detail

namespace {

using snapshot_detail::Reader;
using snapshot_detail::Writer;

constexpr std::uint32_t kNoRetired = std::numeric_limits<std::uint32_t>::max();

/// Section tags, in stream order. Each section below lists the Swarm
/// members it carries — strat-lint R4 (snapshot-complete) cross-checks
/// this file against the member list in swarm.hpp, so this checklist
/// doubles as the format documentation: a member added to the class
/// must show up in one of these sections (or carry a written waiver)
/// before the tree lints clean. R4 also verifies every tag is both
/// written by save_impl and expected by resume_impl.
/// Scenario/config values (SwarmConfig, field-by-field).
constexpr std::uint32_t kTagConfig = 1;
/// RNG: choke_key_ plus the xoshiro word state and the Box-Muller
/// cache of the structural rng_.
constexpr std::uint32_t kTagRng = 2;
/// Peer table: id space, live ids (row order), row generations.
constexpr std::uint32_t kTagTable = 3;
/// Scalar counters: round_, leechers_, arrivals_, departures_,
/// retired_completed_.
constexpr std::uint32_t kTagCounters = 4;
/// Edge-slot pool: edge_peer_, mirror_, slot_gen_, free_slots_,
/// rate_in_, rate_out_, inflight_, mutual_rounds_ (now_in_/now_out_
/// deliberately absent — zeroed at every round boundary).
constexpr std::uint32_t kTagSlots = 5;
/// Per-row hot state in row order: stats_, have_, chokers_, unchoked_,
/// nbr_/nslot_, partial_.
constexpr std::uint32_t kTagPeers = 6;
/// Retired records: retirement-order ids (the inverse of retired_ix_),
/// retired_stats_, retired_mutual_.
constexpr std::uint32_t kTagRetired = 7;
/// Piece-availability cross-check (derived from live have_ bitfields;
/// the loader recomputes and must match).
constexpr std::uint32_t kTagAvail = 8;
/// Live fault state (Swarm::faults_, row order): nat_, retry_round_,
/// retry_count_, announce_seq_, plus the run-total fault counters.
/// Serialized even with faults disabled (all-empty vectors, zero
/// counters) so the section layout never depends on config.
constexpr std::uint32_t kTagFaults = 9;

// Allocation guards for length-prefixed vectors: generous multiples of
// any real run, tight enough that a corrupt length can't OOM the host.
constexpr std::size_t kMaxPeersEver = std::size_t{1} << 32;
constexpr std::size_t kMaxSlots = std::size_t{1} << 33;
// 2^24 pieces x 256 KB is a 4 TB torrent — anything above is a corrupt
// config, and it must be rejected *before* the piece-sized containers
// (picker, per-row bitfields) are allocated.
constexpr std::size_t kMaxPieces = std::size_t{1} << 24;

void write_config(Writer& w, const SwarmConfig& c) {
  w.tag(kTagConfig);
  w.u64(c.num_peers);
  w.u64(c.seeds);
  w.u64(c.num_pieces);
  w.f64(c.piece_kb);
  w.u64(c.tft_slots);
  w.u64(c.optimistic_rounds);
  w.f64(c.round_seconds);
  w.f64(c.neighbor_degree);
  w.u8(c.post_flashcrowd ? 1 : 0);
  w.f64(c.initial_completion);
  w.u8(c.stay_as_seed ? 1 : 0);
  w.f64(c.seed_upload_kbps);
  w.f64(c.rate_smoothing);
  w.pod_span(c.tft_slots_per_peer.data(), c.tft_slots_per_peer.size());
  w.u8(c.endgame ? 1 : 0);
  w.u8(c.retain_departed ? 1 : 0);
  w.u64(c.threads);
  w.u64(c.faults.outage_period);
  w.u64(c.faults.outage_duration);
  w.u64(c.faults.outage_phase);
  w.f64(c.faults.connect_failure_prob);
  w.u64(c.faults.connect_attempts);
  w.f64(c.faults.nat_fraction);
  w.f64(c.faults.lane_loss_prob);
  w.u64(c.faults.backoff_base);
  w.u64(c.faults.backoff_cap);
}

SwarmConfig read_config(Reader& r) {
  r.expect_tag(kTagConfig, "config");
  SwarmConfig c;
  c.num_peers = static_cast<std::size_t>(r.u64());
  c.seeds = static_cast<std::size_t>(r.u64());
  c.num_pieces = static_cast<std::size_t>(r.u64());
  c.piece_kb = r.f64();
  c.tft_slots = static_cast<std::size_t>(r.u64());
  c.optimistic_rounds = static_cast<std::size_t>(r.u64());
  c.round_seconds = r.f64();
  c.neighbor_degree = r.f64();
  c.post_flashcrowd = r.u8() != 0;
  c.initial_completion = r.f64();
  c.stay_as_seed = r.u8() != 0;
  c.seed_upload_kbps = r.f64();
  c.rate_smoothing = r.f64();
  c.tft_slots_per_peer = r.pod_vec<std::size_t>(kMaxPeersEver, "tft_slots_per_peer");
  c.endgame = r.u8() != 0;
  c.retain_departed = r.u8() != 0;
  c.threads = static_cast<std::size_t>(r.u64());
  c.faults.outage_period = static_cast<std::size_t>(r.u64());
  c.faults.outage_duration = static_cast<std::size_t>(r.u64());
  c.faults.outage_phase = static_cast<std::size_t>(r.u64());
  c.faults.connect_failure_prob = r.f64();
  c.faults.connect_attempts = static_cast<std::size_t>(r.u64());
  c.faults.nat_fraction = r.f64();
  c.faults.lane_loss_prob = r.f64();
  c.faults.backoff_base = static_cast<std::size_t>(r.u64());
  c.faults.backoff_cap = static_cast<std::size_t>(r.u64());
  return c;
}

/// The resume() config-override contract: every simulation-semantic
/// field must match the checkpointed config bitwise; only `threads`
/// (which cannot change results, just wall clock) may differ.
void check_config_override(const SwarmConfig& stored, const SwarmConfig& override_config) {
  const bool same = stored.num_peers == override_config.num_peers &&
                    stored.seeds == override_config.seeds &&
                    stored.num_pieces == override_config.num_pieces &&
                    stored.piece_kb == override_config.piece_kb &&
                    stored.tft_slots == override_config.tft_slots &&
                    stored.optimistic_rounds == override_config.optimistic_rounds &&
                    stored.round_seconds == override_config.round_seconds &&
                    stored.neighbor_degree == override_config.neighbor_degree &&
                    stored.post_flashcrowd == override_config.post_flashcrowd &&
                    stored.initial_completion == override_config.initial_completion &&
                    stored.stay_as_seed == override_config.stay_as_seed &&
                    stored.seed_upload_kbps == override_config.seed_upload_kbps &&
                    stored.rate_smoothing == override_config.rate_smoothing &&
                    stored.tft_slots_per_peer == override_config.tft_slots_per_peer &&
                    stored.endgame == override_config.endgame &&
                    stored.retain_departed == override_config.retain_departed &&
                    stored.faults.outage_period == override_config.faults.outage_period &&
                    stored.faults.outage_duration == override_config.faults.outage_duration &&
                    stored.faults.outage_phase == override_config.faults.outage_phase &&
                    stored.faults.connect_failure_prob ==
                        override_config.faults.connect_failure_prob &&
                    stored.faults.connect_attempts == override_config.faults.connect_attempts &&
                    stored.faults.nat_fraction == override_config.faults.nat_fraction &&
                    stored.faults.lane_loss_prob == override_config.faults.lane_loss_prob &&
                    stored.faults.backoff_base == override_config.faults.backoff_base &&
                    stored.faults.backoff_cap == override_config.faults.backoff_cap;
  if (!same) {
    throw SnapshotError(
        "snapshot: config override differs from the checkpointed config "
        "in a simulation-semantic field (only `threads` may change)");
  }
}

void write_stats(Writer& w, const PeerStats& s) {
  w.f64(s.upload_kbps);
  w.f64(s.uploaded_kb);
  w.f64(s.downloaded_kb);
  w.u64(s.pieces);
  w.f64(s.completion_round);
  w.u8(s.seed ? 1 : 0);
  w.f64(s.join_round);
  w.f64(s.leave_round);
}

PeerStats read_stats(Reader& r) {
  PeerStats s;
  s.upload_kbps = r.f64();
  s.uploaded_kb = r.f64();
  s.downloaded_kb = r.f64();
  s.pieces = static_cast<std::size_t>(r.u64());
  s.completion_round = r.f64();
  s.seed = r.u8() != 0;
  s.join_round = r.f64();
  s.leave_round = r.f64();
  return s;
}

/// The kTagFaults section: per-row fault vectors (nat_, retry_round_,
/// retry_count_, announce_seq_) in the same row order as kTagPeers,
/// then the five run-total counters (failed_announces_,
/// announce_retries_, connect_failures_, nat_rejections_,
/// lost_lanes_). Written unconditionally — with faults off the vectors
/// are still row-sized (all-default) so the loader's size checks stay
/// uniform.
void write_faults(Writer& w, const FaultState& fs) {
  w.tag(kTagFaults);
  w.pod_span(fs.nat_.data(), fs.nat_.size());
  w.pod_span(fs.retry_round_.data(), fs.retry_round_.size());
  w.pod_span(fs.retry_count_.data(), fs.retry_count_.size());
  w.pod_span(fs.announce_seq_.data(), fs.announce_seq_.size());
  w.u64(fs.failed_announces_);
  w.u64(fs.announce_retries_);
  w.u64(fs.connect_failures_);
  w.u64(fs.nat_rejections_);
  w.u64(fs.lost_lanes_);
}

void read_faults(Reader& r, FaultState& fs, std::size_t rows) {
  r.expect_tag(kTagFaults, "faults");
  fs.nat_ = r.pod_vec<std::uint8_t>(rows, "nat flag");
  fs.retry_round_ = r.pod_vec<std::uint32_t>(rows, "retry round");
  fs.retry_count_ = r.pod_vec<std::uint32_t>(rows, "retry count");
  fs.announce_seq_ = r.pod_vec<std::uint32_t>(rows, "announce sequence");
  if (fs.nat_.size() != rows || fs.retry_round_.size() != rows ||
      fs.retry_count_.size() != rows || fs.announce_seq_.size() != rows) {
    throw SnapshotError("snapshot: fault-state array size mismatch");
  }
  for (const std::uint8_t flag : fs.nat_) {
    if (flag > 1) throw SnapshotError("snapshot: invalid NAT flag");
  }
  fs.failed_announces_ = r.u64();
  fs.announce_retries_ = r.u64();
  fs.connect_failures_ = r.u64();
  fs.nat_rejections_ = r.u64();
  fs.lost_lanes_ = r.u64();
}

std::vector<std::uint32_t> to_u32(const std::vector<std::size_t>& v, const char* what) {
  std::vector<std::uint32_t> out;
  out.reserve(v.size());
  for (const std::size_t x : v) {
    if (x > std::numeric_limits<std::uint32_t>::max()) {
      throw SnapshotError(std::string("snapshot: ") + what + " exceeds the u32 format limit");
    }
    out.push_back(static_cast<std::uint32_t>(x));
  }
  return out;
}

std::vector<std::size_t> to_size(const std::vector<std::uint32_t>& v) {
  return {v.begin(), v.end()};
}

}  // namespace

void Swarm::save(std::ostream& out) const {
  Writer w(out);
  save_impl(w);
  if (!out) throw SnapshotError("snapshot: stream write failed");
}

void Swarm::save(std::string& out) const {
  out.reserve(out.size() + snapshot_byte_bound());
  Writer w(out);
  save_impl(w);
}

std::size_t Swarm::snapshot_byte_bound() const {
  const std::size_t rows = table_.size();
  const std::size_t pool = edge_peer_.size();
  const std::size_t bitfield_bytes = ((config_.num_pieces + 63) / 64) * 8;
  // Per-element constants round the actual field widths up, never
  // down — the bound must be an upper bound or one mid-save doubling
  // re-copies the whole buffer anyway. Slack covers headers, tags and
  // length prefixes.
  std::size_t b = 1024 + config_.tft_slots_per_peer.size() * 8;
  b += rows * 16;                          // live ids + row generations
  b += pool * 48 + free_slots_.size() * 8; // edge-slot pool arrays
  b += rows * (64 + bitfield_bytes + 28 + 24);  // stats, bitfield, choker, prefixes
  for (std::size_t r = 0; r < rows; ++r) {
    b += unchoked_[r].size() * 4 + nbr_[r].size() * 8 + partial_[r].size() * 12;
  }
  b += retired_stats_.size() * 72 + retired_mutual_.size() * 12 + 64;
  b += static_cast<std::size_t>(config_.num_pieces) * 4 + 32;
  b += rows * 13 + 5 * 8 + 64;  // fault state: 4 per-row arrays + counters
  return b;
}

void Swarm::save_impl(Writer& w) const {
  w.u64(kSnapshotMagic);
  w.u32(kSnapshotVersion);

  write_config(w, config_);

  w.tag(kTagRng);
  w.u64(choke_key_);
  const graph::Rng::State rng_state = rng_.state();
  for (const std::uint64_t word : rng_state.s) w.u64(word);
  w.f64(rng_state.cached_normal);
  w.u8(rng_state.has_cached_normal ? 1 : 0);

  w.tag(kTagTable);
  w.u64(table_.id_space());
  const auto live = table_.ids();
  w.pod_span(live.data(), live.size());
  const auto gens = table_.row_generations();
  w.pod_span(gens.data(), gens.size());

  w.tag(kTagCounters);
  w.u64(round_);
  w.u64(leechers_);
  w.u64(arrivals_);
  w.u64(departures_);
  w.u64(retired_completed_);

  // Edge-slot pool. mirror_/free_slots_ (size_t in memory) travel as
  // u32 — a pool past 4G directed slots is beyond any simulated scale
  // and is rejected rather than truncated. now_in_/now_out_ are
  // deliberately absent: fold_rates() zeroes them at every round
  // boundary, the only place save() may be called.
  w.tag(kTagSlots);
  w.u64(edge_peer_.size());
  w.pod_span(edge_peer_.data(), edge_peer_.size());
  const auto mirror32 = to_u32(mirror_, "mirror slot");
  w.pod_span(mirror32.data(), mirror32.size());
  w.pod_span(slot_gen_.data(), slot_gen_.size());
  const auto free32 = to_u32(free_slots_, "free-list slot");
  w.pod_span(free32.data(), free32.size());
  w.pod_span(rate_in_.data(), rate_in_.size());
  w.pod_span(rate_out_.data(), rate_out_.size());
  w.pod_span(inflight_.data(), inflight_.size());
  w.pod_span(mutual_rounds_.data(), mutual_rounds_.size());

  // Per-row hot state, row order. Every row-indexed container is
  // written in the same order the table serialized its rows, so resume
  // rebuilds the exact iteration order every RNG draw depends on.
  w.tag(kTagPeers);
  const std::size_t rows = table_.size();
  w.u64(rows);
  for (std::size_t r = 0; r < rows; ++r) write_stats(w, stats_[r]);
  for (std::size_t r = 0; r < rows; ++r) {
    const auto words = have_[r].words();
    w.bytes(words.data(), words.size() * sizeof(std::uint64_t));
  }
  for (std::size_t r = 0; r < rows; ++r) {
    const TftChoker::State cs = chokers_[r].state();
    w.u64(cs.tft_slots);
    w.u64(cs.optimistic_rounds);
    w.u64(cs.rounds_since_rotation);
    w.u32(cs.optimistic);
  }
  for (std::size_t r = 0; r < rows; ++r) w.pod_span(unchoked_[r].data(), unchoked_[r].size());
  for (std::size_t r = 0; r < rows; ++r) {
    w.pod_span(nbr_[r].data(), nbr_[r].size());
    const auto slots32 = to_u32(nslot_[r], "adjacency slot");
    w.bytes(slots32.data(), slots32.size() * sizeof(std::uint32_t));
  }
  for (std::size_t r = 0; r < rows; ++r) {
    w.u64(partial_[r].size());
    for (const auto& [piece, kb] : partial_[r]) {
      w.u32(piece);
      w.f64(kb);
    }
  }

  // Retired records, retirement order. The id->index map is stored as
  // its inverse (one id per record), so the snapshot pays 4 bytes per
  // *departure*, not per id-ever.
  w.tag(kTagRetired);
  std::vector<core::PeerId> retired_order(retired_stats_.size(), core::kNoPeer);
  for (std::size_t id = 0; id < retired_ix_.size(); ++id) {
    if (retired_ix_[id] != kNoRetired) retired_order[retired_ix_[id]] = static_cast<core::PeerId>(id);
  }
  w.pod_span(retired_order.data(), retired_order.size());
  for (const PeerStats& s : retired_stats_) write_stats(w, s);
  w.u64(retired_mutual_.size());
  for (const auto& [key, mutual] : retired_mutual_) {
    w.u64(key);
    w.u32(mutual);
  }

  // Piece-availability cross-check: derived state (the sum of live
  // bitfields), serialized anyway so the loader can prove the
  // recomputation matches — a stronger-than-checksum consistency gate.
  w.tag(kTagAvail);
  w.u64(config_.num_pieces);
  for (PieceId piece = 0; piece < config_.num_pieces; ++piece) w.u32(picker_.availability(piece));

  write_faults(w, faults_);

  w.finish();
}

Swarm Swarm::resume(std::istream& in, graph::Rng& rng) { return resume_impl(in, rng, nullptr); }

Swarm Swarm::resume(std::istream& in, graph::Rng& rng, const SwarmConfig& config) {
  return resume_impl(in, rng, &config);
}

Swarm Swarm::resume_impl(std::istream& in, graph::Rng& rng, const SwarmConfig* override_config) {
  try {
    Reader r(in);
    if (r.u64() != kSnapshotMagic) throw SnapshotError("snapshot: bad magic");
    const std::uint32_t version = r.u32();
    if (version != kSnapshotVersion) {
      throw SnapshotError("snapshot: unsupported version " + std::to_string(version) +
                          " (this build reads version " + std::to_string(kSnapshotVersion) + ")");
    }

    SwarmConfig cfg = read_config(r);
    if (cfg.num_peers < 2 || cfg.num_pieces == 0 || cfg.piece_kb <= 0.0 ||
        cfg.num_pieces > kMaxPieces || cfg.num_peers + cfg.seeds > kMaxPeersEver) {
      throw SnapshotError("snapshot: invalid config");
    }
    if (override_config != nullptr) {
      check_config_override(cfg, *override_config);
      cfg.threads = override_config->threads;
    }

    Swarm s(ResumeTag{}, cfg, rng);

    r.expect_tag(kTagRng, "rng");
    s.choke_key_ = r.u64();
    graph::Rng::State rng_state;
    for (std::uint64_t& word : rng_state.s) word = r.u64();
    rng_state.cached_normal = r.f64();
    rng_state.has_cached_normal = r.u8() != 0;

    r.expect_tag(kTagTable, "table");
    const auto id_space = static_cast<std::size_t>(r.u64());
    if (id_space > kMaxPeersEver) throw SnapshotError("snapshot: implausible id space");
    if (id_space < cfg.num_peers + cfg.seeds) {
      throw SnapshotError("snapshot: id space smaller than the initial population");
    }
    auto live_ids = r.pod_vec<core::PeerId>(id_space, "live id");
    auto row_gens = r.pod_vec<std::uint32_t>(id_space, "row generation");
    const std::size_t rows = live_ids.size();

    r.expect_tag(kTagCounters, "counters");
    s.round_ = static_cast<std::size_t>(r.u64());
    s.leechers_ = static_cast<std::size_t>(r.u64());
    s.arrivals_ = static_cast<std::size_t>(r.u64());
    s.departures_ = static_cast<std::size_t>(r.u64());
    s.retired_completed_ = static_cast<std::size_t>(r.u64());
    if (s.arrivals_ != id_space - (cfg.num_peers + cfg.seeds)) {
      throw SnapshotError("snapshot: arrival counter inconsistent with id space");
    }
    if (s.leechers_ != cfg.num_peers + s.arrivals_) {
      throw SnapshotError("snapshot: leecher counter inconsistent with arrivals");
    }
    if (s.departures_ != id_space - rows) {
      throw SnapshotError("snapshot: departure counter inconsistent with live count");
    }

    r.expect_tag(kTagSlots, "slots");
    const auto pool = static_cast<std::size_t>(r.u64());
    if (pool > kMaxSlots) throw SnapshotError("snapshot: implausible slot-pool size");
    s.edge_peer_ = r.pod_vec<core::PeerId>(pool, "edge slot");
    auto mirror32 = r.pod_vec<std::uint32_t>(pool, "mirror slot");
    s.slot_gen_ = r.pod_vec<std::uint32_t>(pool, "slot generation");
    auto free32 = r.pod_vec<std::uint32_t>(pool, "free slot");
    s.rate_in_ = r.pod_vec<double>(pool, "rate-in");
    s.rate_out_ = r.pod_vec<double>(pool, "rate-out");
    s.inflight_ = r.pod_vec<PieceId>(pool, "in-flight piece");
    s.mutual_rounds_ = r.pod_vec<std::uint32_t>(pool, "mutual rounds");
    // Size checks before the zero-filled allocations below: every
    // array length here is stream-backed (pod_vec only grows by bytes
    // actually delivered), so a lying `pool` scalar must die *before*
    // it can size a multi-GB assign.
    if (s.edge_peer_.size() != pool || mirror32.size() != pool || s.slot_gen_.size() != pool ||
        s.rate_in_.size() != pool || s.rate_out_.size() != pool || s.inflight_.size() != pool ||
        s.mutual_rounds_.size() != pool) {
      throw SnapshotError("snapshot: slot-pool array size mismatch");
    }
    s.mirror_ = to_size(mirror32);
    s.free_slots_ = to_size(free32);
    s.now_in_.assign(pool, 0.0);
    s.now_out_.assign(pool, 0.0);

    r.expect_tag(kTagPeers, "peers");
    if (static_cast<std::size_t>(r.u64()) != rows) {
      throw SnapshotError("snapshot: per-row state size mismatch");
    }
    s.stats_.reserve(rows);
    for (std::size_t row = 0; row < rows; ++row) s.stats_.push_back(read_stats(r));
    const std::size_t words_per_peer = (cfg.num_pieces + 63) / 64;
    s.have_.reserve(rows);
    for (std::size_t row = 0; row < rows; ++row) {
      std::vector<std::uint64_t> words(words_per_peer);
      r.bytes(words.data(), words.size() * sizeof(std::uint64_t));
      s.have_.push_back(Bitfield::from_words(cfg.num_pieces, std::move(words)));
    }
    s.chokers_.reserve(rows);
    for (std::size_t row = 0; row < rows; ++row) {
      TftChoker::State cs;
      cs.tft_slots = static_cast<std::size_t>(r.u64());
      cs.optimistic_rounds = static_cast<std::size_t>(r.u64());
      cs.rounds_since_rotation = static_cast<std::size_t>(r.u64());
      cs.optimistic = r.u32();
      if (cs.optimistic_rounds == 0) throw SnapshotError("snapshot: zero optimistic rounds");
      s.chokers_.push_back(TftChoker::from_state(cs));
    }
    s.unchoked_.reserve(rows);
    for (std::size_t row = 0; row < rows; ++row) {
      s.unchoked_.push_back(r.pod_vec<core::PeerId>(id_space, "unchoke target"));
    }
    s.nbr_.reserve(rows);
    s.nslot_.reserve(rows);
    for (std::size_t row = 0; row < rows; ++row) {
      auto nbrs = r.pod_vec<core::PeerId>(rows, "neighbor");
      std::vector<std::uint32_t> slots32(nbrs.size());
      r.bytes(slots32.data(), slots32.size() * sizeof(std::uint32_t));
      s.nbr_.push_back(std::move(nbrs));
      s.nslot_.push_back(to_size(slots32));
    }
    s.partial_.reserve(rows);
    for (std::size_t row = 0; row < rows; ++row) {
      const auto count = static_cast<std::size_t>(r.u64());
      if (count > cfg.num_pieces) throw SnapshotError("snapshot: implausible partial count");
      std::vector<std::pair<PieceId, double>> partial;
      partial.reserve(count);
      for (std::size_t i = 0; i < count; ++i) {
        const PieceId piece = r.u32();
        const double kb = r.f64();
        partial.emplace_back(piece, kb);
      }
      s.partial_.push_back(std::move(partial));
    }

    r.expect_tag(kTagRetired, "retired");
    auto retired_order = r.pod_vec<core::PeerId>(id_space, "retired id");
    std::vector<PeerStats> retired_stats;
    retired_stats.reserve(retired_order.size());
    for (std::size_t i = 0; i < retired_order.size(); ++i) retired_stats.push_back(read_stats(r));
    const auto retired_mutual_count = static_cast<std::size_t>(r.u64());
    if (retired_mutual_count > kMaxSlots) {
      throw SnapshotError("snapshot: implausible retired-pair count");
    }
    s.retired_mutual_.reserve(retired_mutual_count);
    for (std::size_t i = 0; i < retired_mutual_count; ++i) {
      const std::uint64_t key = r.u64();
      const std::uint32_t mutual = r.u32();
      s.retired_mutual_.emplace_back(key, mutual);
    }

    r.expect_tag(kTagAvail, "availability");
    if (static_cast<std::size_t>(r.u64()) != cfg.num_pieces) {
      throw SnapshotError("snapshot: availability size mismatch");
    }
    std::vector<std::uint32_t> stored_avail(cfg.num_pieces);
    // Read per-u32 to mirror save()'s per-piece logical writes — the
    // checksum folds once per logical call, so the partitions must
    // match exactly.
    for (std::uint32_t& avail : stored_avail) avail = r.u32();

    read_faults(r, s.faults_, rows);

    r.verify_checksum();

    // --- everything read and checksummed; validate and wire up -------

    s.table_ = PeerTable::restore(std::move(live_ids), std::move(row_gens), id_space);

    if (cfg.retain_departed) {
      if (retired_order.size() != s.departures_) {
        throw SnapshotError("snapshot: retired archive inconsistent with departures");
      }
      if (!retired_order.empty()) s.retired_ix_.assign(id_space, kNoRetired);
      for (std::size_t i = 0; i < retired_order.size(); ++i) {
        const core::PeerId id = retired_order[i];
        if (id >= id_space || s.table_.contains(id)) {
          throw SnapshotError("snapshot: retired id is live or out of range");
        }
        if (s.retired_ix_[id] != kNoRetired) throw SnapshotError("snapshot: duplicate retired id");
        s.retired_ix_[id] = static_cast<std::uint32_t>(i);
      }
      s.retired_stats_ = std::move(retired_stats);
    } else if (!retired_order.empty() || !s.retired_mutual_.empty()) {
      throw SnapshotError("snapshot: retired records present with retain_departed off");
    }

    // Slot pool: free list sane, then adjacency rows sorted, live, and
    // mutually consistent with the pool (slot -> neighbor id, mirror
    // round-trips). After these checks no stale index can survive into
    // the data plane.
    std::vector<bool> is_free(pool, false);
    for (const std::size_t slot : s.free_slots_) {
      if (slot >= pool || is_free[slot]) {
        throw SnapshotError("snapshot: free list slot invalid or duplicated");
      }
      is_free[slot] = true;
    }
    std::size_t adjacency_slots = 0;
    for (std::size_t row = 0; row < rows; ++row) {
      const core::PeerId owner = s.table_.id_at(static_cast<PeerTable::Row>(row));
      const auto& nbrs = s.nbr_[row];
      const auto& slots = s.nslot_[row];
      if (slots.size() != nbrs.size()) {
        throw SnapshotError("snapshot: adjacency slot row size mismatch");
      }
      adjacency_slots += slots.size();
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        if (i > 0 && nbrs[i] <= nbrs[i - 1]) {
          throw SnapshotError("snapshot: adjacency row not strictly sorted");
        }
        if (nbrs[i] == owner || !s.table_.contains(nbrs[i])) {
          throw SnapshotError("snapshot: adjacency names a departed or self peer");
        }
        const std::size_t slot = slots[i];
        if (slot >= pool || is_free[slot]) {
          throw SnapshotError("snapshot: adjacency uses a freed or out-of-range slot");
        }
        if (s.edge_peer_[slot] != nbrs[i]) {
          throw SnapshotError("snapshot: slot neighbor id mismatch");
        }
        const std::size_t mirror = s.mirror_[slot];
        if (mirror >= pool || s.mirror_[mirror] != slot || s.edge_peer_[mirror] != owner) {
          throw SnapshotError("snapshot: mirror slot does not round-trip");
        }
      }
    }
    if (adjacency_slots + s.free_slots_.size() != pool) {
      throw SnapshotError("snapshot: slot pool leaks (live + free != capacity)");
    }
    for (const PieceId piece : s.inflight_) {
      if (piece != kNoPiece && piece >= cfg.num_pieces) {
        throw SnapshotError("snapshot: in-flight piece out of range");
      }
    }
    for (std::size_t row = 0; row < rows; ++row) {
      if (s.stats_[row].pieces != s.have_[row].count()) {
        throw SnapshotError("snapshot: piece counter disagrees with bitfield");
      }
      for (const core::PeerId q : s.unchoked_[row]) {
        if (q >= id_space) throw SnapshotError("snapshot: unchoke target out of range");
      }
      for (const auto& [piece, kb] : s.partial_[row]) {
        if (piece >= cfg.num_pieces || s.have_[row].test(piece)) {
          throw SnapshotError("snapshot: partial piece invalid or already held");
        }
        if (!(kb >= 0.0) || kb >= cfg.piece_kb) {
          throw SnapshotError("snapshot: partial piece progress out of range");
        }
      }
      const core::PeerId opt = s.chokers_[row].optimistic();
      if (opt != core::kNoPeer && opt >= id_space) {
        throw SnapshotError("snapshot: optimistic target out of range");
      }
    }

    // Availability: recompute from the live bitfields and prove the
    // stored words match — the derived-state consistency gate.
    for (std::size_t row = 0; row < rows; ++row) s.picker_.add_bitfield(s.have_[row]);
    for (PieceId piece = 0; piece < cfg.num_pieces; ++piece) {
      if (s.picker_.availability(piece) != stored_avail[piece]) {
        throw SnapshotError("snapshot: availability disagrees with live bitfields");
      }
    }

    // Derived caches: ranks rebuild deterministically (no RNG), the
    // structural generator resumes the checkpointed sequence.
    rng.restore(rng_state);
    s.refresh_ranks_force();
    return s;
  } catch (const SnapshotError&) {
    throw;
  } catch (const std::bad_alloc&) {
    throw SnapshotError("snapshot: allocation failed (corrupt length field?)");
  } catch (const std::exception& e) {
    throw SnapshotError(std::string("snapshot: invalid state: ") + e.what());
  }
}

std::string save_to_string(const Swarm& swarm) {
  std::string out;
  swarm.save(out);  // reserves its snapshot_byte_bound() up front
  return out;
}

ResumedSwarm resume_from_string(const std::string& snapshot) {
  std::istringstream in(snapshot, std::ios::binary);
  return ResumedSwarm(in);
}

ResumedSwarm resume_from_string(const std::string& snapshot, const SwarmConfig& config) {
  std::istringstream in(snapshot, std::ios::binary);
  return ResumedSwarm(in, config);
}

std::vector<ResumedSwarm> fork_snapshot(const std::string& snapshot, std::size_t copies) {
  std::vector<ResumedSwarm> forks;
  forks.reserve(copies);
  for (std::size_t i = 0; i < copies; ++i) forks.push_back(resume_from_string(snapshot));
  return forks;
}

}  // namespace strat::bt
