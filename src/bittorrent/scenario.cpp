#include "bittorrent/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "bittorrent/tracker_sim.hpp"
#include "sim/parallel.hpp"

namespace strat::bt {

namespace {

ScenarioResult summarize(const Swarm& swarm, std::uint64_t seed) {
  ScenarioResult out;
  out.seed = seed;
  out.completed_leechers = swarm.completed_leechers();
  const FaultState& faults = swarm.fault_state();
  out.fault_failed_announces = faults.failed_announces_;
  out.fault_retries = faults.announce_retries_;
  out.fault_connect_failures = faults.connect_failures_;
  out.fault_nat_rejections = faults.nat_rejections_;
  out.fault_lost_lanes = faults.lost_lanes_;

  // Every leecher that ever joined (initial population + arrivals),
  // with capacities read back from the swarm.
  std::vector<core::PeerId> leechers;
  leechers.reserve(swarm.peer_count());
  for (core::PeerId p = 0; p < swarm.peer_count(); ++p) {
    if (swarm.is_leecher(p)) leechers.push_back(p);
  }

  double completion_sum = 0.0;
  std::size_t completion_count = 0;
  double rate_sum = 0.0;
  std::vector<double> rates(leechers.size(), 0.0);
  for (std::size_t i = 0; i < leechers.size(); ++i) {
    const core::PeerId id = leechers[i];
    rates[i] = swarm.leech_download_kbps(id);
    rate_sum += rates[i];
    const double done = swarm.stats(id).completion_round;
    if (done >= 0.0) {
      completion_sum += done;
      ++completion_count;
    }
  }
  out.mean_completion_round =
      completion_count == 0 ? 0.0 : completion_sum / static_cast<double>(completion_count);
  out.mean_leech_kbps =
      leechers.empty() ? 0.0 : rate_sum / static_cast<double>(leechers.size());

  if (!leechers.empty()) {
    // Deciles by capacity descending (ties by id) — the ranking
    // convention of the efficiency model.
    std::vector<std::size_t> order(leechers.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      const double ca = swarm.stats(leechers[a]).upload_kbps;
      const double cb = swarm.stats(leechers[b]).upload_kbps;
      if (ca != cb) return ca > cb;
      return leechers[a] < leechers[b];
    });
    const std::size_t decile = std::max<std::size_t>(1, leechers.size() / 10);
    double top = 0.0;
    double bottom = 0.0;
    for (std::size_t i = 0; i < decile; ++i) {
      top += rates[order[i]];
      bottom += rates[order[leechers.size() - 1 - i]];
    }
    out.top_decile_kbps = top / static_cast<double>(decile);
    out.bottom_decile_kbps = bottom / static_cast<double>(decile);
  }

  out.strat = swarm.stratification();
  out.availability_cv = swarm.availability_stats().coefficient_of_variation;
  for (core::PeerId p = 0; p < swarm.peer_count(); ++p) {
    out.total_uploaded_kb += swarm.stats(p).uploaded_kb;
    out.total_downloaded_kb += swarm.stats(p).downloaded_kb;
  }
  out.arrivals = swarm.arrivals();
  out.departures = swarm.departures();
  out.live_peers = swarm.live_peer_count();
  return out;
}

}  // namespace

ScenarioResult run_scenario(const SwarmScenario& scenario, std::uint64_t seed) {
  if (!scenario.config.retain_departed) {
    // summarize() reads every leecher that ever joined; without the
    // archive those queries throw mid-aggregation. Fail up front with
    // an actionable message instead.
    throw std::invalid_argument(
        "run_scenario: retain_departed=false is unsupported (summaries cover departed peers)");
  }
  graph::Rng rng(seed);
  Swarm swarm(scenario.config, scenario.upload_kbps, rng);
  if (!scenario.churn.active()) {
    swarm.run(scenario.warmup_rounds);
    swarm.reset_stratification();
    swarm.run(scenario.measure_rounds);
    return summarize(swarm, seed);
  }
  std::vector<double> pool = scenario.churn.arrival_upload_kbps.empty()
                                 ? scenario.upload_kbps
                                 : scenario.churn.arrival_upload_kbps;
  ChurnDriver<Swarm> driver(scenario.churn, scenario.config, std::move(pool), rng);
  driver.attach(swarm);
  for (std::size_t r = 0; r < scenario.warmup_rounds; ++r) {
    driver.before_round(swarm);
    swarm.run_round();
  }
  swarm.reset_stratification();
  for (std::size_t r = 0; r < scenario.measure_rounds; ++r) {
    driver.before_round(swarm);
    swarm.run_round();
  }
  return summarize(swarm, seed);
}

std::vector<ScenarioResult> run_replications(const SwarmScenario& scenario,
                                             std::span<const std::uint64_t> seeds,
                                             std::size_t threads) {
  std::vector<ScenarioResult> results(seeds.size());
  sim::parallel_for(seeds.size(), threads,
                    [&](std::size_t i) { results[i] = run_scenario(scenario, seeds[i]); });
  return results;
}

std::vector<std::size_t> capacity_scaled_slots(const std::vector<double>& upload_kbps,
                                               std::size_t lo, std::size_t hi) {
  if (lo < 1 || lo > hi) {
    throw std::invalid_argument("capacity_scaled_slots: need 1 <= lo <= hi");
  }
  double log_min = 0.0;
  double log_max = 0.0;
  bool first = true;
  for (double kbps : upload_kbps) {
    if (kbps <= 0.0) throw std::invalid_argument("capacity_scaled_slots: capacities > 0");
    const double l = std::log(kbps);
    log_min = first ? l : std::min(log_min, l);
    log_max = first ? l : std::max(log_max, l);
    first = false;
  }
  std::vector<std::size_t> slots(upload_kbps.size());
  const double span = log_max - log_min;
  for (std::size_t i = 0; i < upload_kbps.size(); ++i) {
    if (span <= 0.0) {
      slots[i] = (lo + hi) / 2;  // uniform capacities: middle of the range
      continue;
    }
    const double t = (std::log(upload_kbps[i]) - log_min) / span;
    slots[i] = lo + static_cast<std::size_t>(
                        std::llround(t * static_cast<double>(hi - lo)));
  }
  return slots;
}

std::size_t distinct_peer_count(const MultiSwarmSpec& spec) {
  if (spec.num_swarms == 0 || spec.peers_per_swarm < 2) {
    throw std::invalid_argument("MultiSwarmSpec: need >= 1 swarm of >= 2 peers");
  }
  if (spec.overlap_fraction < 0.0 || spec.overlap_fraction >= 1.0) {
    throw std::invalid_argument("MultiSwarmSpec: overlap_fraction in [0, 1)");
  }
  const auto overlap = static_cast<std::size_t>(spec.overlap_fraction *
                                                static_cast<double>(spec.peers_per_swarm));
  const std::size_t stride = spec.peers_per_swarm - overlap;
  return (spec.num_swarms - 1) * stride + spec.peers_per_swarm;
}

MultiSwarmResult run_multi_swarm(const MultiSwarmSpec& spec, std::uint64_t seed,
                                 std::size_t threads) {
  if (!spec.config.retain_departed) {
    throw std::invalid_argument(
        "run_multi_swarm: retain_departed=false is unsupported (summaries cover departed peers)");
  }
  const std::size_t distinct = distinct_peer_count(spec);
  if (spec.upload_kbps.size() != distinct) {
    throw std::invalid_argument("MultiSwarmSpec: one capacity per distinct peer required");
  }
  const auto overlap = static_cast<std::size_t>(spec.overlap_fraction *
                                                static_cast<double>(spec.peers_per_swarm));
  const std::size_t stride = spec.peers_per_swarm - overlap;

  // Membership count per distinct peer: swarm k covers global ids
  // [k*stride, k*stride + peers_per_swarm).
  std::vector<std::size_t> memberships(distinct, 0);
  for (std::size_t k = 0; k < spec.num_swarms; ++k) {
    for (std::size_t local = 0; local < spec.peers_per_swarm; ++local) {
      ++memberships[k * stride + local];
    }
  }

  // Thin shim over the tracker layer: the overlap layout becomes the
  // seed list of a closed (no arrivals) TrackerSim, `threads` becomes
  // the shard count, and the construction-time capacity split is
  // frozen — the historical semantics. Per-swarm Rng seeding
  // (seed + stride * (k+1)) is identical, so a member swarm still
  // reproduces the same run a standalone Swarm would.
  std::vector<TrackerSwarmSeed> seeds(spec.num_swarms);
  for (std::size_t k = 0; k < spec.num_swarms; ++k) {
    seeds[k].config = spec.config;
    seeds[k].members.resize(spec.peers_per_swarm);
    for (std::size_t local = 0; local < spec.peers_per_swarm; ++local) {
      seeds[k].members[local] = static_cast<core::PeerId>(k * stride + local);
    }
  }
  TrackerConfig tcfg;
  tcfg.shards = threads == 0 ? 1 : threads;
  tcfg.dynamic_capacity_split = false;
  TrackerSim tracker(tcfg, std::move(seeds), spec.upload_kbps, seed);
  tracker.run(spec.warmup_rounds);
  tracker.reset_stratification();
  tracker.run(spec.measure_rounds);

  MultiSwarmResult out;
  out.per_swarm.resize(spec.num_swarms);
  // Aggregate leech rate per distinct peer, summed over member swarms.
  std::vector<double> total_rate(distinct, 0.0);
  for (std::size_t k = 0; k < spec.num_swarms; ++k) {
    const Swarm& swarm = tracker.swarm(k);
    out.per_swarm[k] = summarize(swarm, seed + kTrackerSwarmSeedStride * (k + 1));
    for (std::size_t local = 0; local < spec.peers_per_swarm; ++local) {
      total_rate[k * stride + local] +=
          swarm.leech_download_kbps(static_cast<core::PeerId>(local));
    }
  }
  double single_sum = 0.0;
  double multi_sum = 0.0;
  for (std::size_t i = 0; i < distinct; ++i) {
    // Per-membership mean: each swarm carries distinct content, so the
    // comparable figure is the rate achieved inside one swarm.
    const double per_swarm_rate = total_rate[i] / static_cast<double>(memberships[i]);
    if (memberships[i] <= 1) {
      ++out.single_home_peers;
      single_sum += per_swarm_rate;
    } else {
      ++out.multi_home_peers;
      multi_sum += per_swarm_rate;
    }
  }
  out.mean_single_home_kbps =
      out.single_home_peers == 0 ? 0.0 : single_sum / static_cast<double>(out.single_home_peers);
  out.mean_multi_home_kbps =
      out.multi_home_peers == 0 ? 0.0 : multi_sum / static_cast<double>(out.multi_home_peers);
  return out;
}

}  // namespace strat::bt
