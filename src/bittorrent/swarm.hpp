// Round-based BitTorrent swarm simulator (§6 validation substrate).
//
// Simulates a swarm at the choke-interval granularity (10 s rounds):
// every round each peer runs its TFT choker, then upload capacity flows
// from unchokers to interested unchokees, with bytes applied to pieces
// chosen rarest-first. The simulator exists to check, at the protocol
// level, the matching-model predictions the paper derives analytically:
// TFT exchanges stratify by bandwidth, and per-peer download rates
// follow the Figure 11 efficiency curve — including under the §3
// churn regime (Figure 3), where peers join and leave mid-run.
//
// In post-flash-crowd mode each leecher starts with a uniformly random
// subset of pieces (the paper's assumption that rarest-first has
// already equalized block repartition); flash-crowd mode starts all
// leechers empty with `seeds` complete peers.
//
// Peer lifecycle: external `core::PeerId`s are arrival-ordered and
// stable forever — they are what join()/leave()/stats() and every
// report speak. Internally a PeerTable maps them to *dense rows*, and
// all per-peer state (stats, bitfields, chokers, adjacency rows,
// partial-piece progress) is row-indexed; a departure archives the
// peer's final PeerStats into a retired record and compacts its row
// away (swap-with-last, generation-stamped). Per-peer loops therefore
// cost O(live population) and per-peer memory O(live + retired
// records) no matter how many peers ever churned through — the regime
// the paper's Figure 3 replacement process generates. Set
// SwarmConfig::retain_departed = false to drop even the per-departure
// archive (aggregates only), for week-long open-system runs at truly
// flat memory.
//
// Data plane: a *dynamic* overlay over flat edge-slot arrays with slot
// recycling. Every directed (peer, neighbor) pair owns one slot in a
// preallocated pool; all per-neighbor state (smoothed rate estimates,
// in-flight piece locks, mutual-unchoke counters) is indexed by slot,
// so a round stays O(edges) with no hashing or allocation on the hot
// path. Per-peer adjacency is a pair of parallel, neighbor-sorted
// vectors (neighbor id, slot id) held on the owner's row; entries name
// *external* ids (stable across row compaction), resolved to rows via
// the table's O(1) map on use:
//
//  - leave()/completion departures release both directed slots of each
//    incident edge onto a free list (state zeroed, generation stamp
//    bumped so any stale reference is detectable) and flush the pair's
//    mutual-unchoke history into retired records, so recycled slots
//    never leak a previous pair's counters into StratificationReport;
//  - join() claims recycled slots for a fresh leecher's announce
//    (uniform picks from the live population, deterministic from the
//    swarm RNG) and registers its partial bitfield with the picker;
//  - reannounce() tops a peer's degree back up toward neighbor_degree
//    from the live non-neighbor population — the tracker re-announce
//    that keeps the overlay connected as departures thin it out.
//
// Determinism model (two RNG tiers):
//
//  - *Per-peer streams.* Every choke-phase draw (tie-break shuffle,
//    optimistic pick) comes from a counter-based generator keyed by
//    (run key, external peer id, round) — Rng::stream — so a peer's
//    choke randomness is a pure function of who it is and which round
//    it is, independent of row iteration order and thread count. The
//    run key is one draw from the structural stream at construction.
//    The transfer phase draws the same way: sender p's rarest-first
//    tie-breaks come from Rng::stream(choke_key_ ^ kTransferStreamSalt,
//    p, round), so the phase consumes no structural draws at all.
//  - *Sequential structural stream.* Everything that mutates shared
//    state in a defined order — overlay construction, tracker
//    announces, churn-driver and scenario sampling — keeps consuming
//    the single `rng_` passed in, in program order.
//
// That split is what lets SwarmConfig::threads fan the intra-round
// phases out: choke score/select (per-row reads of an effectively
// immutable rate/bitfield snapshot, per-row writes of the unchoke
// sets), the endgame incoming-unchoke count (per-chunk tallies merged
// by integer addition) and the rate fold (slot-pool map) run over
// sim::parallel_for_chunks. The transfer phase — where mid-round
// completion departures mutate shared state — splits into a parallel
// *compute* stage (every sender plans its whole round against the
// immutable phase-start snapshot, writing piece grants into per-chunk
// plan buffers) and a serial *commit* stage that validates and applies
// the plans in sender order, re-running a sender serially when an
// earlier commit made its plan stale (receiver departed, piece
// completed, or the assumed partial progress moved). Results are
// bitwise identical for any `threads` value and still bitwise equal to
// the single-threaded ReferenceSwarm, which runs the identical
// two-stage algorithm serially.
//
// See reference_swarm.hpp for the retained map-based implementation:
// both planes implement the same operations in strict FP + RNG
// lockstep — including identical PeerTable compaction decisions and
// the same per-peer choke streams, so their row iteration orders and
// draws match — and are differential-tested for bitwise equality,
// churned and threaded runs included.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <iosfwd>
#include <limits>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "bittorrent/autosave.hpp"
#include "bittorrent/choker.hpp"
#include "bittorrent/faults.hpp"
#include "bittorrent/peer_table.hpp"
#include "bittorrent/piece_picker.hpp"
#include "core/types.hpp"
#include "graph/rng.hpp"

namespace strat::bt {

/// Swarm parameters.
struct SwarmConfig {
  std::size_t num_peers = 200;    // leechers (seeds are extra)
  std::size_t seeds = 1;          // initial complete peers
  std::size_t num_pieces = 256;
  double piece_kb = 256.0;        // KB per piece
  std::size_t tft_slots = 3;      // regular unchoke slots
  std::size_t optimistic_rounds = 3;
  double round_seconds = 10.0;
  double neighbor_degree = 20.0;  // tracker-provided mean degree
  bool post_flashcrowd = true;
  double initial_completion = 0.5;  // post-flash-crowd starting fraction
  bool stay_as_seed = true;         // finished leechers keep uploading
  /// Upload capacity of the initial seeds; 0 = median leecher capacity.
  double seed_upload_kbps = 0.0;
  /// Exponential smoothing of the per-neighbor rate estimate the choker
  /// ranks on: score = alpha * last_round + (1 - alpha) * previous.
  /// 1.0 reproduces the raw last-interval estimate; the reference client
  /// effectively averages over ~2 intervals (alpha ~ 0.5).
  double rate_smoothing = 0.5;
  /// Per-leecher regular unchoke slots. Empty = every leecher uses
  /// `tft_slots`; otherwise one entry per *initial* leecher (seeds and
  /// join() arrivals always use `tft_slots`). Enables upload-slot
  /// heterogeneity scenarios.
  std::vector<std::size_t> tft_slots_per_peer;
  /// Piece-level endgame mode. Off (default): a sender may target any
  /// piece the receiver lacks, so duplicate in-flight targets are
  /// always possible. On: outside the endgame phase a receiver hands
  /// each sender a distinct missing piece (no duplicate in-flight
  /// requests — a sender with only already-reserved pieces to offer
  /// idles and its budget is redistributed); once the receiver's
  /// missing set is smaller than the number of peers currently
  /// unchoking it, the restriction lifts (duplicates allowed) and the
  /// first completion cancels every other in-flight request for that
  /// piece (stale targets are re-picked on the sender's next transfer).
  bool endgame = false;
  /// Keep one archived PeerStats record per departed peer (default),
  /// so stats()/leech_download_kbps()/stratification() keep answering
  /// for every peer that ever joined. false = fold departures into
  /// aggregate counters only: per-departed-peer queries throw,
  /// stratification covers live pairs only, and total peer-state
  /// memory stays flat across unbounded cumulative arrivals (the
  /// 10^6-arrival open-system regime). Flat-plane only: ReferenceSwarm
  /// and the scenario summaries (run_scenario/run_multi_swarm) need
  /// the archive and reject this flag.
  bool retain_departed = true;
  /// Worker threads for the intra-round parallel phases (choke
  /// score/select, endgame unchoke counting, rate folding). Results
  /// are bitwise identical at any value: choke randomness comes from
  /// per-peer counter-based streams, so neither row order nor thread
  /// count can reorder draws. 1 = serial (default); 0 = one worker per
  /// hardware thread. ReferenceSwarm accepts but ignores it (the
  /// oracle always runs serial — and still matches bitwise).
  std::size_t threads = 1;
  /// Deterministic fault injection (faults.hpp): tracker outage
  /// windows with capped-exponential announce backoff, per-connect
  /// failure probability with bounded retry, NAT-ed peers rejecting
  /// inbound connects, and per-lane transfer loss. All knobs default
  /// to off, and a disabled spec draws no randomness — faults-off runs
  /// are bitwise identical to the pre-fault simulator. Fault draws use
  /// counter-based streams, so faulted results stay bitwise invariant
  /// to `threads` (and TrackerSim shard count).
  FaultSpec faults;
};

/// Per-peer accounting, exposed for metrics.
struct PeerStats {
  double upload_kbps = 0.0;     // capacity
  double uploaded_kb = 0.0;     // total sent
  double downloaded_kb = 0.0;   // total received
  std::size_t pieces = 0;       // currently held
  double completion_round = -1.0;  // first round with all pieces (-1: not yet)
  bool seed = false;            // started as a seed
  double join_round = 0.0;      // when the peer entered the swarm
  double leave_round = -1.0;    // when it departed (-1: still present)
};

/// Swarm-level stratification summary, accumulated over every elapsed
/// round while both endpoints were present and still downloading.
struct StratificationReport {
  /// Spearman correlation between peers' bandwidth rank and the mean
  /// bandwidth rank of their *reciprocated* TFT partners. 1 = perfect
  /// stratification.
  double partner_rank_correlation = 0.0;
  /// Mean absolute rank offset between reciprocated TFT partners,
  /// normalized by the number of leechers (0..1), weighted by how many
  /// rounds each pair exchanged.
  double mean_normalized_offset = 0.0;
  /// Number of distinct reciprocated (mutual-unchoke) TFT pairs seen.
  std::size_t reciprocated_pairs = 0;
};

/// Sentinel "no piece in flight on this edge" value.
inline constexpr PieceId kNoPiece = std::numeric_limits<PieceId>::max();

/// Salt folded into the run key to derive the per-sender transfer
/// streams: sender p's round-r transfer randomness is
/// Rng::stream(choke_key ^ kTransferStreamSalt, p, r) in both data
/// planes. Deriving from the existing key means the transfer phase
/// costs no extra construction draw and stays independent of the choke
/// streams (the stream mixer decorrelates any key pair).
inline constexpr std::uint64_t kTransferStreamSalt = 0x7472616e73666572ull;  // "transfer"

/// Salt for the per-sender *repair* streams the transfer commit uses
/// when a planned lane went stale: a distinct stream (not a replay of
/// the planning stream) so repair picks are uncorrelated with the very
/// picks that conflicted.
inline constexpr std::uint64_t kTransferRerunSalt = 0x7265706c616eull;  // "replan"

/// Upload budget (KB) below which a round's redistribution loop stops.
/// Shared by Swarm and ReferenceSwarm: both transfer loops must agree
/// on which receivers count as satiated or the differential tests
/// diverge.
inline constexpr double kBudgetEpsilon = 1e-9;

namespace detail {

/// Splits `budget` KB evenly across the hungry receivers, then
/// redistributes whatever a finished receiver left on the table among
/// the ones still able to take data. `send(item, share)` returns the KB
/// actually transferred. One definition shared by both data planes so
/// their satiation arithmetic cannot drift (see kBudgetEpsilon).
template <typename Item, typename SendFn>
void redistribute_upload(double budget, std::vector<Item>& hungry, std::vector<Item>& next_hungry,
                         SendFn&& send) {
  double leftover = budget;
  while (leftover > kBudgetEpsilon && !hungry.empty()) {
    const double share = leftover / static_cast<double>(hungry.size());
    leftover = 0.0;
    next_hungry.clear();
    for (const Item& item : hungry) {
      const double spent = send(item, share);
      // A receiver that absorbed its whole share can take more; one
      // that ran out of pickable pieces is dropped from this round.
      if (spent >= share - kBudgetEpsilon) next_hungry.push_back(item);
      leftover += share - spent;
    }
    hungry.swap(next_hungry);
  }
}

/// One planned sender→receiver contribution from the transfer compute
/// stage, recorded against the immutable phase-start snapshot.
/// `base_kb` is the snapshot partial progress the plan assumed — the
/// staleness witness the commit validates against live state (an exact
/// double compare: contributions are strictly positive and completions
/// clear the entry, so any interleaved writer moves it). `final_kb` is
/// the progress after this sender's chunks, accumulated add-by-add in
/// the same order the serial loop would have used, and committed
/// verbatim so the stored double is bit-identical. `kb` is the total
/// contribution (the stat / per-slot rate delta). The slot fields are
/// the flat plane's; the reference plane leaves them zero.
struct TransferGrant {
  core::PeerId receiver = 0;
  PieceId piece = 0;
  std::uint32_t lane = 0;  // ordinal of the receiver's lane within the plan
  double kb = 0.0;
  double base_kb = 0.0;
  double final_kb = 0.0;
  std::size_t slot_pq = 0;  // sender-owned slot toward receiver (now_out_)
  std::size_t slot_qp = 0;  // receiver-owned slot toward sender (now_in_, inflight_)
  bool completes = false;
};

/// Half-open range of one sender's grants in a chunk's grant buffer,
/// in planning order. Plans with zero grants are not recorded.
/// `lane_count` bounds the grant lane ordinals, so the commit can
/// index its per-lane table directly instead of searching by receiver.
struct SenderPlan {
  core::PeerId sender = 0;
  std::uint32_t begin = 0;
  std::uint32_t end = 0;
  std::uint32_t lane_count = 0;
};

/// Per-receiver lane state while planning one sender's round: the
/// current target piece (seeded from the snapshot in-flight state),
/// its locally accumulated progress, the open grant, and the pieces
/// this lane completed locally — excluded from later picks and have
/// tests because the snapshot bitfields never change during compute.
struct TransferLane {
  core::PeerId receiver = 0;
  std::size_t row = 0;       // plane-defined receiver index (flat: dense row)
  std::size_t slot_pq = 0;   // flat plane only
  std::size_t slot_qp = 0;   // flat plane only
  std::uint32_t ordinal = 0;  // index of this lane within its sender's plan
  PieceId target = kNoPiece;
  double progress = -1.0;    // local KB of `target`; -1 = not yet based
  std::int32_t grant = -1;   // open grant index; -1 = none
  std::vector<PieceId> completed;

  void reset(core::PeerId q, std::size_t row_ix, std::size_t spq, std::size_t sqp,
             PieceId snapshot_target) {
    receiver = q;
    row = row_ix;
    slot_pq = spq;
    slot_qp = sqp;
    target = snapshot_target;
    progress = -1.0;
    grant = -1;
    completed.clear();
  }
  [[nodiscard]] bool has_completed(PieceId t) const {
    return std::find(completed.begin(), completed.end(), t) != completed.end();
  }
};

/// The send-to-one-receiver loop of the transfer compute stage — one
/// definition shared by both data planes so the budget/satiation and
/// piece-progress arithmetic cannot drift (the transfer analogue of
/// redistribute_upload). Runs entirely against phase-start state: the
/// plane supplies `sender_has`/`receiver_has` (snapshot bitfield
/// tests), `snapshot_progress` (snapshot partial KB of a piece) and
/// `pick` (rarest-first from the sender's own counter stream,
/// excluding the lane's local completions). Grants append to `grants`;
/// a piece reaching piece_kb is recorded on the lane so later picks
/// and target checks for this receiver treat it as held. Returns the
/// KB spent of `share`.
template <typename SenderHasFn, typename ReceiverHasFn, typename ProgressFn, typename PickFn>
double plan_lane_send(double piece_kb, TransferLane& lane, std::vector<TransferGrant>& grants,
                      double share, SenderHasFn&& sender_has, ReceiverHasFn&& receiver_has,
                      ProgressFn&& snapshot_progress, PickFn&& pick) {
  double remaining = share;
  while (remaining > 0.0) {
    PieceId target = lane.target;
    const bool usable = target != kNoPiece && !receiver_has(target) &&
                        !lane.has_completed(target) && sender_has(target);
    if (!usable) {
      const std::optional<PieceId> picked = pick(lane);
      if (!picked) break;
      target = *picked;
      lane.target = target;
      lane.progress = snapshot_progress(target);
      lane.grant = -1;
    } else if (lane.progress < 0.0) {
      // First touch of the carried-over in-flight target: base it on
      // the snapshot partial progress (never >= the completion
      // threshold — the serial loop completes pieces the instant they
      // cross it, so stored partials sit strictly below).
      lane.progress = snapshot_progress(target);
    }
    if (lane.grant < 0) {
      lane.grant = static_cast<std::int32_t>(grants.size());
      TransferGrant g;
      g.receiver = lane.receiver;
      g.piece = target;
      g.lane = lane.ordinal;
      g.base_kb = lane.progress;
      g.final_kb = lane.progress;
      g.slot_pq = lane.slot_pq;
      g.slot_qp = lane.slot_qp;
      grants.push_back(g);
    }
    TransferGrant& g = grants[static_cast<std::size_t>(lane.grant)];
    const double need = piece_kb - lane.progress;
    const double chunk = std::min(need, remaining);
    lane.progress += chunk;
    remaining -= chunk;
    g.kb += chunk;
    g.final_kb = lane.progress;
    if (lane.progress >= piece_kb - 1e-9) {
      g.completes = true;
      lane.completed.push_back(target);
      lane.target = kNoPiece;
      lane.progress = -1.0;
      lane.grant = -1;
    }
  }
  return share - remaining;
}

/// Draws up to `k` entries uniformly without replacement from
/// `candidates` (which is consumed: the active range is permuted in
/// place). Returned in draw order. Shared by both data planes so the
/// tracker announce/re-announce RNG consumption stays in lockstep.
inline std::vector<core::PeerId> sample_without_replacement(std::vector<core::PeerId>& candidates,
                                                            std::size_t k, graph::Rng& rng) {
  k = std::min(k, candidates.size());
  std::vector<core::PeerId> out;
  out.reserve(k);
  std::size_t live = candidates.size();
  for (std::size_t i = 0; i < k; ++i) {
    const auto j = static_cast<std::size_t>(rng.below(live));
    out.push_back(candidates[j]);
    candidates[j] = candidates[--live];
  }
  return out;
}

/// The tracker announce: connects `p` to up to `need` distinct live
/// non-neighbors chosen uniformly. Rejection-samples the dense live
/// table (O(need) against a large population), falling back to an
/// exact candidate scan — over the *live table*, never the
/// arrivals-ever id space — when the population is nearly exhausted.
/// Parameterized on the plane's edge test and connect primitive — one
/// definition shared by both data planes so the accept/reject RNG
/// draw sequence cannot drift. Returns the connections made.
template <typename HasEdgeFn, typename ConnectFn>
std::size_t announce_connect(std::span<const core::PeerId> live_ids, core::PeerId p,
                             std::size_t need, graph::Rng& rng, HasEdgeFn&& has_edge,
                             ConnectFn&& connect) {
  std::size_t made = 0;
  std::size_t attempts = 0;
  const std::size_t cap = 8 * need + 64;
  while (made < need && attempts < cap && live_ids.size() > 1) {
    ++attempts;
    const core::PeerId q = live_ids[static_cast<std::size_t>(rng.below(live_ids.size()))];
    if (q == p || has_edge(q)) continue;
    connect(q);
    ++made;
  }
  if (made < need) {
    std::vector<core::PeerId> candidates;
    candidates.reserve(live_ids.size());
    for (const core::PeerId q : live_ids) {
      if (q == p || has_edge(q)) continue;
      candidates.push_back(q);
    }
    const auto chosen = sample_without_replacement(candidates, need - made, rng);
    for (const core::PeerId q : chosen) connect(q);
    made += chosen.size();
  }
  return made;
}

/// announce_connect with connect-level faults: `rejects_inbound(q)`
/// models a NAT-ed candidate (the dial is refused before any connect
/// trial draws), `connect_ok(q)` runs the bounded connect-retry trials
/// and reports whether the connection stuck. The same rejection-
/// sampling structure and cap as the fault-free announce, so the
/// structural draw sequence from `rng` is identical per candidate
/// visited; fault draws come from the caller's counter-based trial
/// stream inside `connect_ok`. The fallback exact scan excludes NAT-ed
/// candidates before sampling (the dialer can never hold them), while
/// a sampled candidate whose connect trials all fail is simply lost —
/// the peer runs below target degree until a later re-announce tops it
/// up. One definition shared by both data planes.
template <typename HasEdgeFn, typename RejectsFn, typename TrialFn, typename ConnectFn>
std::size_t announce_connect_faulty(std::span<const core::PeerId> live_ids, core::PeerId p,
                                    std::size_t need, graph::Rng& rng, HasEdgeFn&& has_edge,
                                    RejectsFn&& rejects_inbound, TrialFn&& connect_ok,
                                    ConnectFn&& connect) {
  std::size_t made = 0;
  std::size_t attempts = 0;
  const std::size_t cap = 8 * need + 64;
  while (made < need && attempts < cap && live_ids.size() > 1) {
    ++attempts;
    const core::PeerId q = live_ids[static_cast<std::size_t>(rng.below(live_ids.size()))];
    if (q == p || has_edge(q)) continue;
    if (rejects_inbound(q)) continue;
    if (!connect_ok(q)) continue;
    connect(q);
    ++made;
  }
  if (made < need) {
    std::vector<core::PeerId> candidates;
    candidates.reserve(live_ids.size());
    for (const core::PeerId q : live_ids) {
      if (q == p || has_edge(q) || rejects_inbound(q)) continue;
      candidates.push_back(q);
    }
    const auto chosen = sample_without_replacement(candidates, need - made, rng);
    for (const core::PeerId q : chosen) {
      if (!connect_ok(q)) continue;
      connect(q);
      ++made;
    }
  }
  return made;
}

/// Sorts `order` (external leecher ids) by (capacity desc, id asc) and
/// writes dense ranks indexed by external id over [0, rank_size)
/// (entries outside `order` stay 0 and are never read). The one
/// rank-assignment definition every caller shares, so the tie-break
/// cannot drift between data planes or retention modes.
template <typename CapacityFn>
void assign_capacity_ranks(std::vector<core::PeerId>& order, CapacityFn&& capacity_of,
                           std::size_t rank_size, std::vector<std::size_t>& rank) {
  std::sort(order.begin(), order.end(), [&](core::PeerId a, core::PeerId b) {
    const double ca = capacity_of(a);
    const double cb = capacity_of(b);
    if (ca != cb) return ca > cb;
    return a < b;
  });
  rank.assign(rank_size, 0);
  for (std::size_t r = 0; r < order.size(); ++r) rank[order[r]] = r;
}

/// Recomputes leecher bandwidth ranks into `rank`, indexed by external
/// peer id over [0, peer_count) with `stats_of(id)` supplying each
/// peer's record. Returns the leecher count. Shared by both data
/// planes: stratification output is bitwise-compared between them, and
/// the accessor indirection lets the flat plane serve departed peers
/// from its retired archive.
template <typename StatsFn>
std::size_t rebuild_bandwidth_ranks_by(std::size_t peer_count, StatsFn&& stats_of,
                                       std::vector<std::size_t>& rank) {
  std::vector<core::PeerId> order;
  order.reserve(peer_count);
  for (std::size_t p = 0; p < peer_count; ++p) {
    if (!stats_of(static_cast<core::PeerId>(p)).seed) {
      order.push_back(static_cast<core::PeerId>(p));
    }
  }
  assign_capacity_ranks(
      order, [&](core::PeerId p) { return stats_of(p).upload_kbps; }, peer_count, rank);
  return order.size();
}

/// Convenience overload for a plane that keeps PeerStats densely
/// indexed by external id (the reference plane).
inline std::size_t rebuild_bandwidth_ranks(const std::vector<PeerStats>& stats,
                                           std::vector<std::size_t>& rank) {
  return rebuild_bandwidth_ranks_by(
      stats.size(), [&](core::PeerId p) -> const PeerStats& { return stats[p]; }, rank);
}

}  // namespace detail

/// The simulator.
namespace snapshot_detail {
class Writer;  // snapshot.hpp — save_impl() serializes through it
}  // namespace snapshot_detail

class Swarm {
 public:
  using Row = PeerTable::Row;

  /// `upload_kbps` has one entry per leecher; seeds reuse the top
  /// capacity. Throws std::invalid_argument on inconsistent inputs.
  Swarm(const SwarmConfig& config, std::vector<double> upload_kbps, graph::Rng& rng);

  /// Advances one choke interval.
  void run_round();

  /// Advances `rounds` intervals.
  void run(std::size_t rounds);

  // --- checkpoint/restore ---------------------------------------------

  /// Serializes the complete run state — config, peer table, per-row
  /// hot state, edge-slot pool, retired records, choker and RNG state
  /// (the swarm's structural generator included), round/churn counters
  /// — as one versioned, checksummed binary snapshot (see
  /// snapshot.hpp for the format constants and README "Snapshot format
  /// and resume contract" for the layout). Call between rounds only:
  /// run_round() is atomic, so any point outside it is a valid
  /// checkpoint. resume() continues bitwise-identically to the
  /// uninterrupted run at any `threads` setting. Not serialized:
  /// phase_profile() wall-clock accumulators and per-worker scratch
  /// (reset on resume), neither of which feeds back into simulation
  /// state. Throws SnapshotError if the stream write fails.
  void save(std::ostream& out) const;

  /// save() appending to a string buffer — same bytes, but skips the
  /// ostream machinery (which dominates the cost at 10^5 peers). This
  /// is the fast path behind save_to_string()/fork_snapshot().
  void save(std::string& out) const;

  /// Reconstructs a swarm from a save()d snapshot. `rng` becomes the
  /// swarm's structural generator and is *overwritten* with the
  /// checkpointed state, so subsequent draws — the swarm's and any
  /// lockstep ChurnDriver's — continue the uninterrupted sequence.
  /// Throws SnapshotError on bad magic, version mismatch, truncation,
  /// checksum failure or any structural inconsistency (every index is
  /// validated before use; a corrupt snapshot can never yield a swarm
  /// with broken invariants).
  [[nodiscard]] static Swarm resume(std::istream& in, graph::Rng& rng);

  /// resume() with a config override: `config` must equal the
  /// checkpointed config in every simulation-semantic field, but
  /// `threads` may differ — results are bitwise identical at any
  /// fan-out, so a snapshot taken on a laptop resumes unchanged on a
  /// 64-core box. Throws SnapshotError if any other field differs.
  [[nodiscard]] static Swarm resume(std::istream& in, graph::Rng& rng,
                                    const SwarmConfig& config);

  /// Arms periodic crash-safe checkpoints: every `every` rounds,
  /// run_round() serializes the swarm through save() and publishes it
  /// under `dir` via temp-file + atomic rename, keeping the newest
  /// `keep` generations (see autosave.hpp; recover_latest_swarm() in
  /// snapshot.hpp resumes from the newest valid one). Host-side
  /// policy, not simulation state: snapshots don't carry it, and it
  /// never affects results.
  void autosave_every(std::size_t every, const std::filesystem::path& dir, std::size_t keep = 3);

  // --- dynamic overlay ------------------------------------------------

  /// Adds a fresh leecher holding `have` (a possibly partial bitfield;
  /// availability counters pick it up) and announces it to the tracker:
  /// it connects to up to llround(neighbor_degree) live peers chosen
  /// uniformly from the current population, deterministic from the
  /// swarm RNG. Returns the new peer id. Edge slots are recycled from
  /// the free list before the pool grows, and the peer claims a dense
  /// table row.
  core::PeerId join(double upload_kbps, const Bitfield& have);

  /// join() with an empty bitfield (a flash-crowd arrival).
  core::PeerId join(double upload_kbps);

  /// Voluntary (possibly seedless) departure: drops the peer's piece
  /// copies from availability, discards partial/in-flight state,
  /// releases every incident edge slot to the free list, flushes the
  /// affected pairs' mutual-unchoke history, archives the final
  /// PeerStats (unless retain_departed is off) and compacts the peer's
  /// table row away. No-op if already departed.
  void leave(core::PeerId p);

  /// Tracker re-announce: tops p's degree back up toward
  /// llround(neighbor_degree) with uniform picks from the live
  /// non-neighbor population (deterministic from the swarm RNG).
  /// Returns the number of fresh connections. No-op for departed peers.
  std::size_t reannounce(core::PeerId p);

  /// Externally-driven capacity update: replaces p's upload capacity
  /// before the next round — the hook TrackerSim's cross-swarm
  /// capacity splitting uses when a multi-torrent peer's membership
  /// count changes. Call between rounds only, like save(): capacity
  /// feeds the per-round upload budget and the bandwidth ranks, both
  /// of which are round-scoped. No-op when the capacity is unchanged
  /// (ranks stay clean) or the peer has departed (its archived
  /// capacity stays what it had while present). Throws
  /// std::out_of_range for unknown ids and std::invalid_argument for
  /// non-positive capacities.
  void set_upload_capacity(core::PeerId p, double kbps);

  // --- queries --------------------------------------------------------

  /// The construction-time configuration (num_peers reflects the
  /// initial population, not arrivals). Callers that rebuild companion
  /// state after resume() — e.g. TrackerSim re-deriving a ChurnDriver
  /// per restored swarm — read it from here.
  [[nodiscard]] const SwarmConfig& config() const noexcept { return config_; }

  [[nodiscard]] std::size_t rounds_elapsed() const noexcept { return round_; }

  /// Peers ever (initial population + seeds + arrivals) — the external
  /// id space. Backing per-peer storage is O(live), not O(this).
  [[nodiscard]] std::size_t peer_count() const noexcept { return table_.id_space(); }

  /// Final (departed) or current (live) accounting for p. Throws
  /// std::out_of_range for unknown ids, or for departed peers when
  /// retain_departed is off.
  [[nodiscard]] const PeerStats& stats(core::PeerId p) const;

  /// True iff p was never a seed (initial leecher or join() arrival).
  [[nodiscard]] bool is_leecher(core::PeerId p) const { return !stats(p).seed; }

  /// Peers currently present (never departed).
  [[nodiscard]] std::size_t live_peer_count() const noexcept { return table_.size(); }

  /// Live external ids in dense row order (the announce sampling
  /// order). Valid until the next join/leave.
  [[nodiscard]] std::span<const core::PeerId> live_ids() const noexcept { return table_.ids(); }

  /// join() arrivals so far (excludes the initial population).
  [[nodiscard]] std::size_t arrivals() const noexcept { return arrivals_; }

  /// Departures so far (voluntary and completion-driven).
  [[nodiscard]] std::size_t departures() const noexcept { return departures_; }

  /// Leechers that hold every piece (live or departed-complete).
  [[nodiscard]] std::size_t completed_leechers() const;

  /// Mean download rate (kbps) of leecher p over its elapsed presence.
  [[nodiscard]] double mean_download_kbps(core::PeerId p) const;

  /// Mean download rate of p over its *leeching* phase only (from join
  /// until it completed or departed, or until now). The per-peer QoS
  /// figure predicted by the §6 efficiency model.
  [[nodiscard]] double leech_download_kbps(core::PeerId p) const;

  /// Stratification metrics accumulated since construction (or the
  /// last reset_stratification()), retired pairs included. With
  /// retain_departed off, only pairs whose endpoints are both still
  /// live are reported (departed capacities are gone).
  [[nodiscard]] StratificationReport stratification() const;

  /// Clears the accumulated mutual-unchoke history, so stratification()
  /// reflects a fresh measurement window (e.g. after a burn-in phase).
  void reset_stratification();

  /// Reciprocated TFT pairs of the last round (mutual unchokes between
  /// two leechers), as (better peer, worse peer) by bandwidth.
  [[nodiscard]] std::vector<std::pair<core::PeerId, core::PeerId>> reciprocated_pairs() const;

  /// True iff p left the swarm (leave(), or completion with
  /// stay_as_seed == false). Throws std::out_of_range for unknown ids.
  [[nodiscard]] bool departed(core::PeerId p) const;

  /// Piece-availability dispersion across the swarm. The §6 assumption
  /// ("content availability is not a bottleneck") holds when rarest-
  /// first has equalized block repartition — i.e. when the coefficient
  /// of variation is small.
  struct AvailabilityStats {
    double mean = 0.0;                  // average copies per piece
    std::uint32_t min = 0;
    std::uint32_t max = 0;
    double coefficient_of_variation = 0.0;
  };
  [[nodiscard]] AvailabilityStats availability_stats() const;

  /// Neighbor set (tracker overlay) of peer p, sorted ascending by
  /// external id. Empty for departed peers.
  [[nodiscard]] std::span<const core::PeerId> neighbors(core::PeerId p) const;

  /// Current overlay degree of p (0 once departed).
  [[nodiscard]] std::size_t degree(core::PeerId p) const { return neighbors(p).size(); }

  // --- storage introspection (leak/recycling/scaling invariants) ------

  /// Directed edge-slot pool capacity (live + free).
  [[nodiscard]] std::size_t edge_slot_capacity() const noexcept { return edge_peer_.size(); }

  /// Slots currently carrying an edge.
  [[nodiscard]] std::size_t live_edge_slots() const noexcept {
    return edge_peer_.size() - free_slots_.size();
  }

  /// Slots parked on the free list.
  [[nodiscard]] std::size_t free_edge_slots() const noexcept { return free_slots_.size(); }

  /// Times slot `s` has been released back to the pool.
  [[nodiscard]] std::uint32_t slot_generation(std::size_t s) const { return slot_gen_.at(s); }

  /// The dense peer table (row order, generations) for invariants.
  [[nodiscard]] const PeerTable& peer_table() const noexcept { return table_; }

  /// Where the bytes live. peer_state_bytes + edge_slot_bytes is the
  /// hot data plane and must stay O(live population) under unbounded
  /// churn; id_index_bytes is the O(ids-ever) price of stable external
  /// ids (4-8 bytes per arrival); retired_bytes is the archive
  /// (empty when retain_departed is off).
  struct MemoryFootprint {
    std::size_t live_peers = 0;
    std::size_t peer_state_bytes = 0;  // row-indexed per-peer containers
    std::size_t edge_slot_bytes = 0;   // directed edge-slot pool
    std::size_t id_index_bytes = 0;    // id->row map + retired index
    std::size_t retired_bytes = 0;     // archived stats + retired pair history
  };
  [[nodiscard]] MemoryFootprint memory_footprint() const;

  /// Cumulative wall-clock seconds per run_round() phase since
  /// construction. The thread-scaling acceptance bar reads the
  /// parallel portion (choke + transfer compute + fold) from here, so
  /// speedups are measured per phase instead of inferred from
  /// whole-round times that the serial commit stage dilutes.
  struct PhaseProfile {
    double choke_seconds = 0.0;     // parallel: score/select fan-out
    double endgame_seconds = 0.0;   // parallel: incoming-unchoke count
    double mutual_seconds = 0.0;    // serial: mutual-unchoke recording
    double transfer_seconds = 0.0;  // whole transfer phase (compute + commit)
    double fold_seconds = 0.0;      // parallel: rate smoothing fold
    // Transfer-phase breakdown — sub-timings *inside* transfer_seconds,
    // not additional phases (the five fields above partition the round).
    double transfer_compute_seconds = 0.0;  // parallel: sender plan fan-out
    double transfer_commit_seconds = 0.0;   // serial: validate + apply (repairs included)
    double transfer_rerun_seconds = 0.0;    // serial: stale-lane repairs only
    std::uint64_t transfer_lanes = 0;       // (sender, receiver) lanes carrying >= 1 grant
    std::uint64_t transfer_reruns = 0;      // lanes discarded as stale and re-driven live
    // Fault injection (zero when faults are off). fault_seconds times
    // the serial fault_step (announce retries); the counters mirror the
    // authoritative FaultState totals, refreshed at every round's end.
    double fault_seconds = 0.0;
    std::uint64_t fault_failed_announces = 0;  // announces lost to outages
    std::uint64_t fault_retries = 0;           // backoff retries attempted
    std::uint64_t fault_connect_failures = 0;  // candidates lost after all trials
    std::uint64_t fault_nat_rejections = 0;    // dials refused by NAT-ed peers
    std::uint64_t fault_lost_lanes = 0;        // committed lanes forfeited
    std::uint64_t fault_degraded_peers = 0;    // retry pending at round end
    /// Share of planned lanes the commit had to discard and re-drive
    /// serially — the conflict cost of the speculative compute stage.
    [[nodiscard]] double rerun_fraction() const noexcept {
      if (transfer_lanes == 0) return 0.0;
      return static_cast<double>(transfer_reruns) / static_cast<double>(transfer_lanes);
    }
  };
  /// Read-only view of the accumulated per-phase timings. Profiling
  /// output only — the values never feed back into simulation state,
  /// which is why `profile_` carries a strat-lint `not-serialized`
  /// waiver (R4): a resumed run restarts its timers at zero yet stays
  /// bitwise-identical to the uninterrupted one.
  [[nodiscard]] const PhaseProfile& phase_profile() const noexcept { return profile_; }

  /// Live fault state (per-row NAT flags, backoff schedules, lifetime
  /// counters). Row-indexed like every other per-peer container; all
  /// entries are inert when faults are disabled.
  [[nodiscard]] const FaultState& fault_state() const noexcept { return faults_; }

 private:
  /// Tag ctor for resume(): binds config/rng and sizes the piece
  /// containers, leaving every other member for the snapshot loader
  /// (snapshot.cpp) to fill.
  struct ResumeTag {};
  Swarm(ResumeTag, const SwarmConfig& config, graph::Rng& rng)
      : config_(config),
        rng_(rng),
        picker_(config.num_pieces),
        reserved_scratch_(config.num_pieces) {}
  /// Shared loader behind both resume() overloads (`override` may be
  /// null); defined in snapshot.cpp next to save().
  [[nodiscard]] static Swarm resume_impl(std::istream& in, graph::Rng& rng,
                                         const SwarmConfig* override_config);
  /// Shared body behind both save() overloads; defined in snapshot.cpp.
  void save_impl(snapshot_detail::Writer& w) const;
  /// Cheap upper bound on save()'s byte count, so the string overload
  /// reserves once (mid-save reallocation copies of a 10^5-peer
  /// snapshot would cost more than the serialization itself).
  [[nodiscard]] std::size_t snapshot_byte_bound() const;

  struct TransferScratch;

  void choke_step();
  /// Score/select for one row, drawing from the row's per-peer stream;
  /// `candidates` is the calling worker's scratch.
  void choke_row(Row r, std::vector<ChokeCandidate>& candidates);
  /// config_.threads with 0 resolved to the hardware concurrency.
  [[nodiscard]] std::size_t fan_out() const noexcept;
  void record_mutual_unchokes();
  void count_incoming_unchokes();
  void transfer_step();
  void fold_rates();
  /// Compute stage: plans sender p's whole round against the immutable
  /// phase-start snapshot (read-only on shared state), appending grants
  /// and the sender plan to the calling worker's `scratch`.
  void plan_transfers(core::PeerId p, TransferScratch& scratch);
  /// Rarest-first pick for the compute stage: endgame reservations come
  /// from the phase-start in-flight snapshot and the lane's local
  /// completions are always excluded (via the chunk-private bitfield).
  [[nodiscard]] std::optional<PieceId> plan_pick(const detail::TransferLane& lane, Row qr,
                                                Row pr, graph::Rng& rng,
                                                TransferScratch& scratch);
  /// Commit stage: replays every plan in sender order, validating each
  /// (sender, receiver) lane's grant chain against live state. Valid
  /// lanes apply verbatim; a stale lane (receiver departed, piece
  /// completed by an earlier commit, or partial progress moved since
  /// the snapshot) is discarded whole and its planned KB re-driven
  /// against live state — redistributed across the sender's live
  /// still-hungry receivers (redistribute_upload over send_to), so a
  /// receiver that completed early strands no budget while a sibling
  /// still starves. Lane granularity matters:
  /// rarest-first concentrates fresh picks onto the same small
  /// minimum-availability tie set, so same-receiver pick collisions are
  /// structural — invalidating whole sender plans would amplify a few
  /// percent of stale grants into a majority of plans re-run.
  void commit_transfers(std::size_t chunks);
  /// The per-sender transfer stream (see kTransferStreamSalt).
  [[nodiscard]] graph::Rng transfer_stream(core::PeerId p) const {
    return graph::Rng::stream(choke_key_ ^ kTransferStreamSalt, p, round_);
  }
  /// The per-sender lane-repair stream (see kTransferRerunSalt); one
  /// per sender per round, shared by all of that plan's lane repairs.
  [[nodiscard]] graph::Rng rerun_stream(core::PeerId p) const {
    return graph::Rng::stream(choke_key_ ^ kTransferRerunSalt, p, round_);
  }
  /// Partial progress of (receiver row, piece) in KB; 0 when absent
  /// (entries are created at the first contribution, so absent == 0).
  [[nodiscard]] double partial_progress(Row qr, PieceId piece) const;
  /// Sends up to `budget` KB from p to q against live state (the rerun
  /// path); returns the KB actually transferred (less than `budget`
  /// when q runs out of pickable pieces, or q completed and departed
  /// mid-round). Randomness comes from the caller-supplied stream.
  double send_to(core::PeerId p, core::PeerId q, std::size_t slot_pq, double budget,
                 graph::Rng& rng);
  /// Rarest-first pick for receiver row qr from sender row pr,
  /// honoring the endgame request discipline when configured (slot_qp
  /// is q's slot toward p, exempt from the reservation scan).
  [[nodiscard]] std::optional<PieceId> pick_for(Row qr, Row pr, std::size_t slot_qp,
                                                graph::Rng& rng);
  void complete_piece(core::PeerId q, Row qr, PieceId piece);
  /// Removes a peer from the data plane at round coordinate `when`:
  /// availability counters drop, partial/in-flight state is discarded,
  /// incident edge slots are released and mutual history flushed, the
  /// final stats are archived and the table row is compacted away.
  void depart_peer(core::PeerId p, double when);
  [[nodiscard]] bool wants_from(Row receiver, Row sender) const {
    return have_[receiver].interested_in(have_[sender]);
  }
  /// Edge slot of neighbor q in row pr's sorted adjacency.
  [[nodiscard]] std::size_t slot_of(Row pr, core::PeerId q) const;
  /// Claims a slot (free list first, pool growth second).
  std::size_t claim_slot();
  /// Zeroes a slot's dynamic state, bumps its generation and parks it
  /// on the free list. The pair's mutual count must be flushed first.
  void release_slot(std::size_t s);
  /// Connects p and q: claims both directed slots and inserts each into
  /// the other's sorted adjacency row.
  void connect(core::PeerId p, core::PeerId q);
  /// Releases every edge incident to p / row pr (slots freed, mutual
  /// flushed, p removed from each neighbor's row).
  void release_all_edges(core::PeerId p, Row pr);
  /// Moves a live pair's mutual-unchoke count into the retired records
  /// (or drops it when retain_departed is off).
  void flush_mutual(core::PeerId p, core::PeerId q, std::size_t slot_min);
  /// Connects p to up to `need` distinct live non-neighbors chosen
  /// uniformly (the tracker announce).
  std::size_t connect_random_live(core::PeerId p, std::size_t need);
  /// The announce every caller routes through: plain connect_random_live
  /// when connect-level faults are off, announce_connect_faulty (NAT
  /// rejections + bounded connect-retry trials from the per-announce
  /// counter stream) when they're on.
  std::size_t announce_with_faults(core::PeerId p, std::size_t need);
  /// Serial backoff sweep at the top of run_round: peers whose retry
  /// deadline arrived re-announce (or reschedule if the tracker is
  /// still down). No-op unless outages are configured.
  void fault_step();
  /// Rebuilds bandwidth_rank_ if a join (or, without the archive, a
  /// departure) made it stale.
  void refresh_ranks() const;
  void refresh_ranks_force() const;
  /// Tracker target degree (llround(neighbor_degree)).
  [[nodiscard]] std::size_t target_degree() const;

  // strat-lint: serialized-via(write_config, read_config)
  SwarmConfig config_;
  // strat-lint: serialized-via(rng_, restore) -- xoshiro words + Box-Muller
  // cache captured in save_impl, restored into the caller's generator.
  graph::Rng& rng_;
  /// Run key for the per-peer choke streams (one structural draw at
  /// construction): peer p's round-r choke randomness is
  /// Rng::stream(choke_key_, p, r), identical in both data planes.
  std::uint64_t choke_key_ = 0;
  PiecePicker picker_;

  // --- dense peer rows -------------------------------------------------
  // External id <-> row indirection; every container below named
  // "row-indexed" compacts in lockstep with table_ removals.
  PeerTable table_;
  std::vector<PeerStats> stats_;    // row-indexed
  std::vector<Bitfield> have_;      // row-indexed
  std::vector<TftChoker> chokers_;  // row-indexed
  std::vector<std::vector<core::PeerId>> unchoked_;  // row-indexed, this round
  // Per-peer adjacency (row-indexed): nbr_[r] is the external neighbor
  // ids sorted ascending, nslot_[r] the parallel directed slot carrying
  // (owner -> nbr) state.
  std::vector<std::vector<core::PeerId>> nbr_;
  std::vector<std::vector<std::size_t>> nslot_;
  // Partial piece progress (row-indexed): per receiver, (piece, KB
  // accumulated) pairs. At most one entry per active sender, so linear
  // scans win over hashing.
  std::vector<std::vector<std::pair<PieceId, double>>> partial_;
  // Live fault state (row-indexed vectors + lifetime counters),
  // compacted in lockstep with the table like every row container.
  // Maintained even with faults off (push/compact only — no draws), so
  // enabling faults never changes container shapes.
  // strat-lint: serialized-via(write_faults, read_faults)
  FaultState faults_;
  // strat-lint: not-serialized -- host-side checkpoint policy
  // (autosave_every), never simulation state; a resumed run re-arms it.
  std::optional<Autosaver> autosaver_;
  // Endgame-mode scratch: per-row count of inbound unchokes this round
  // (row-indexed, compacted mid-round with the table), and a reusable
  // exclusion bitfield for the request discipline (reserved_list_
  // tracks its set bits for O(deg) clears).
  // strat-lint: not-serialized -- rebuilt from unchoked_ every round
  std::vector<std::uint32_t> incoming_unchokes_;
  // strat-lint: not-serialized -- sized by the ResumeTag ctor, cleared per use
  Bitfield reserved_scratch_;
  // strat-lint: not-serialized -- per-transfer scratch, cleared per use
  std::vector<PieceId> reserved_list_;
  // Sender-order snapshot for transfer_step (externals stay valid
  // while completion departures compact rows mid-round).
  // strat-lint: not-serialized -- rebuilt at the top of every transfer_step
  std::vector<core::PeerId> order_scratch_;
  // Per-chunk scratch of the transfer compute stage: the planned
  // grants, the hungry/next-hungry redistribution lists (hoisted from
  // per-call locals), per-receiver lane state and the pick exclusion
  // bitfield. One instance per compute worker, indexed by chunk id.
  struct TransferScratch {
    std::vector<std::pair<core::PeerId, std::size_t>> hungry;       // (receiver, sender slot)
    std::vector<std::pair<core::PeerId, std::size_t>> next_hungry;
    std::vector<detail::TransferLane> lanes;
    std::vector<detail::TransferGrant> grants;
    std::vector<detail::SenderPlan> plans;
    Bitfield reserved;  // sized lazily to num_pieces
    std::vector<PieceId> reserved_list;
    std::vector<PieceId> reserved_partials;  // soft tier, released on fallback
  };
  // strat-lint: not-serialized -- per-worker compute scratch, cleared per phase
  std::vector<TransferScratch> transfer_scratch_;
  // Per-plan lane table for the commit's validation pass, indexed by
  // the grants' plan-local lane ordinal: receiver, its sender-side
  // slot, its row as resolved at grouping time (rows cannot move
  // during a single plan's grouping pass, so one lookup serves every
  // grant until a completion departure compacts them), the lane's
  // planned KB and its staleness verdict (re-sized per plan).
  struct CommitLane {
    core::PeerId receiver = 0;
    std::size_t slot_pq = 0;
    Row row = 0;
    double kb = 0.0;
    bool used = false;  // lane ordinal actually granted to in this plan
    bool stale = false;
    bool lost = false;  // fault injection dropped this lane's bytes
  };
  // strat-lint: not-serialized -- commit-stage scratch, cleared per plan
  std::vector<CommitLane> commit_lanes_;
  // Repair-path redistribution lists, (receiver, sender-side slot) like
  // the per-chunk hungry scratch (hoisted members: the commit stage is
  // caller-only, so one pair suffices).
  // strat-lint: not-serialized -- cleared per use
  std::vector<std::pair<core::PeerId, std::size_t>> hungry_scratch_;
  // strat-lint: not-serialized -- cleared per use
  std::vector<std::pair<core::PeerId, std::size_t>> next_hungry_scratch_;
  // Per-chunk scratch for the parallel phases: one candidates buffer
  // per choke worker (the hoisted per-row allocation), one tally
  // vector per endgame-count worker. Sized lazily to the chunk count.
  // strat-lint: not-serialized -- per-worker scratch, resized to the fan-out
  std::vector<std::vector<ChokeCandidate>> choke_scratch_;
  // strat-lint: not-serialized -- per-worker scratch, resized to the fan-out
  std::vector<std::vector<std::uint32_t>> incoming_scratch_;
  // strat-lint: not-serialized -- wall-clock accounting, never simulation state
  PhaseProfile profile_;

  // --- retired records --------------------------------------------------
  // Final PeerStats of departed peers (departure order) + id -> index,
  // populated only when config_.retain_departed. Aggregate counters are
  // maintained in both modes.
  std::vector<PeerStats> retired_stats_;
  std::vector<std::uint32_t> retired_ix_;  // external id -> retired index
  std::size_t retired_completed_ = 0;      // departed leechers holding all pieces

  // --- dynamic edge-slot data plane -----------------------------------
  // Slot pool. edge_peer_[s]/mirror_[s] identify the slot's neighbor
  // (by external id) and reverse slot while live; they go stale (not
  // cleared) once the slot is released — slot_gen_[s] is bumped on
  // every release so stale references are detectable. free_slots_
  // holds released ids.
  std::vector<core::PeerId> edge_peer_;   // slot -> neighbor (external id)
  std::vector<std::size_t> mirror_;       // slot -> reverse slot
  std::vector<std::uint32_t> slot_gen_;   // release count
  std::vector<std::size_t> free_slots_;   // recycling free list
  std::vector<double> rate_in_;   // smoothed KB/round received on slot
  // strat-lint: not-serialized -- provably zero between rounds (fold_rates
  // clears it; save() may only run at round boundaries); re-zeroed on load
  std::vector<double> now_in_;    // current round's receipts on slot
  std::vector<double> rate_out_;  // smoothed KB/round sent on slot (seed policy)
  // strat-lint: not-serialized -- provably zero between rounds, like now_in_
  std::vector<double> now_out_;   // current round's sends on slot
  // In-flight target piece per receiver-owned slot (receiver = slot
  // owner, sender = edge_peer_[slot]); kNoPiece when idle.
  std::vector<PieceId> inflight_;
  // Rounds each leecher pair spent mutually unchoked while both were
  // present and downloading, on the lower-endpoint-owned slot. Flushed
  // into retired_mutual_ when the edge is released.
  std::vector<std::uint32_t> mutual_rounds_;
  // Mutual-unchoke history of disconnected pairs: (min<<32|max, rounds).
  std::vector<std::pair<std::uint64_t, std::uint32_t>> retired_mutual_;

  // Leecher bandwidth ranks (external id -> rank), rebuilt lazily:
  // join() only marks them dirty, so churn-heavy rounds never pay the
  // O(L log L) sort — the readers (stratification, reciprocated_pairs)
  // refresh on demand.
  // strat-lint: not-serialized -- derived cache; refresh_ranks_force() on load
  mutable std::vector<std::size_t> bandwidth_rank_;
  // strat-lint: not-serialized -- dirty bit of the derived rank cache
  mutable bool ranks_dirty_ = false;
  // Leechers covered by bandwidth_rank_ (ever with the archive, live
  // without) — the offset normalization in stratification().
  // strat-lint: not-serialized -- derived with bandwidth_rank_ on refresh
  mutable std::size_t leechers_ranked_ = 0;
  std::size_t round_ = 0;
  std::size_t leechers_ = 0;     // leechers ever (initial + arrivals)
  std::size_t arrivals_ = 0;
  std::size_t departures_ = 0;
};

}  // namespace strat::bt
