// Round-based BitTorrent swarm simulator (§6 validation substrate).
//
// Simulates a swarm at the choke-interval granularity (10 s rounds):
// every round each peer runs its TFT choker, then upload capacity flows
// from unchokers to interested unchokees, with bytes applied to pieces
// chosen rarest-first. The simulator exists to check, at the protocol
// level, the matching-model predictions the paper derives analytically:
// TFT exchanges stratify by bandwidth, and per-peer download rates
// follow the Figure 11 efficiency curve.
//
// In post-flash-crowd mode each leecher starts with a uniformly random
// subset of pieces (the paper's assumption that rarest-first has
// already equalized block repartition); flash-crowd mode starts all
// leechers empty with `seeds` complete peers.
//
// Data plane: the tracker overlay is static, so all per-neighbor state
// (smoothed rate estimates, in-flight piece locks, mutual-unchoke
// counters) lives in flat arrays indexed by *edge slot* — a CSR layout
// with one directed slot per (peer, neighbor) pair, preallocated at
// construction. This keeps a round O(edges) with no hashing or
// allocation on the hot path and scales to 10^4..10^5 peers; see
// reference_swarm.hpp for the retained map-based implementation used to
// differential-test this one.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "bittorrent/choker.hpp"
#include "bittorrent/piece_picker.hpp"
#include "core/types.hpp"
#include "graph/graph.hpp"
#include "graph/rng.hpp"

namespace strat::bt {

/// Swarm parameters.
struct SwarmConfig {
  std::size_t num_peers = 200;    // leechers (seeds are extra)
  std::size_t seeds = 1;          // initial complete peers
  std::size_t num_pieces = 256;
  double piece_kb = 256.0;        // KB per piece
  std::size_t tft_slots = 3;      // regular unchoke slots
  std::size_t optimistic_rounds = 3;
  double round_seconds = 10.0;
  double neighbor_degree = 20.0;  // tracker-provided mean degree
  bool post_flashcrowd = true;
  double initial_completion = 0.5;  // post-flash-crowd starting fraction
  bool stay_as_seed = true;         // finished leechers keep uploading
  /// Upload capacity of the initial seeds; 0 = median leecher capacity.
  double seed_upload_kbps = 0.0;
  /// Exponential smoothing of the per-neighbor rate estimate the choker
  /// ranks on: score = alpha * last_round + (1 - alpha) * previous.
  /// 1.0 reproduces the raw last-interval estimate; the reference client
  /// effectively averages over ~2 intervals (alpha ~ 0.5).
  double rate_smoothing = 0.5;
  /// Per-leecher regular unchoke slots. Empty = every leecher uses
  /// `tft_slots`; otherwise one entry per leecher (seeds always use
  /// `tft_slots`). Enables upload-slot heterogeneity scenarios.
  std::vector<std::size_t> tft_slots_per_peer;
};

/// Per-peer accounting, exposed for metrics.
struct PeerStats {
  double upload_kbps = 0.0;     // capacity
  double uploaded_kb = 0.0;     // total sent
  double downloaded_kb = 0.0;   // total received
  std::size_t pieces = 0;       // currently held
  double completion_round = -1.0;  // first round with all pieces (-1: not yet)
  bool seed = false;            // started as a seed
};

/// Swarm-level stratification summary, accumulated over every elapsed
/// round while both endpoints were still downloading.
struct StratificationReport {
  /// Spearman correlation between peers' bandwidth rank and the mean
  /// bandwidth rank of their *reciprocated* TFT partners. 1 = perfect
  /// stratification.
  double partner_rank_correlation = 0.0;
  /// Mean absolute rank offset between reciprocated TFT partners,
  /// normalized by the number of leechers (0..1), weighted by how many
  /// rounds each pair exchanged.
  double mean_normalized_offset = 0.0;
  /// Number of distinct reciprocated (mutual-unchoke) TFT pairs seen.
  std::size_t reciprocated_pairs = 0;
};

/// Sentinel "no piece in flight on this edge" value.
inline constexpr PieceId kNoPiece = std::numeric_limits<PieceId>::max();

/// Upload budget (KB) below which a round's redistribution loop stops.
/// Shared by Swarm and ReferenceSwarm: both transfer loops must agree
/// on which receivers count as satiated or the differential tests
/// diverge.
inline constexpr double kBudgetEpsilon = 1e-9;

/// The simulator.
class Swarm {
 public:
  /// `upload_kbps` has one entry per leecher; seeds reuse the top
  /// capacity. Throws std::invalid_argument on inconsistent inputs.
  Swarm(const SwarmConfig& config, std::vector<double> upload_kbps, graph::Rng& rng);

  /// Advances one choke interval.
  void run_round();

  /// Advances `rounds` intervals.
  void run(std::size_t rounds);

  [[nodiscard]] std::size_t rounds_elapsed() const noexcept { return round_; }
  [[nodiscard]] std::size_t peer_count() const noexcept { return stats_.size(); }
  [[nodiscard]] const PeerStats& stats(core::PeerId p) const { return stats_.at(p); }

  /// Leechers that hold every piece.
  [[nodiscard]] std::size_t completed_leechers() const;

  /// Mean download rate (kbps) of leecher p over elapsed rounds.
  [[nodiscard]] double mean_download_kbps(core::PeerId p) const;

  /// Mean download rate of p over its *leeching* phase only (until it
  /// completed, or until now if still downloading). The per-peer QoS
  /// figure predicted by the §6 efficiency model.
  [[nodiscard]] double leech_download_kbps(core::PeerId p) const;

  /// Stratification metrics accumulated since construction (or the
  /// last reset_stratification()).
  [[nodiscard]] StratificationReport stratification() const;

  /// Clears the accumulated mutual-unchoke history, so stratification()
  /// reflects a fresh measurement window (e.g. after a burn-in phase).
  void reset_stratification();

  /// Reciprocated TFT pairs of the last round (mutual unchokes between
  /// two leechers), as (better peer, worse peer) by bandwidth.
  [[nodiscard]] std::vector<std::pair<core::PeerId, core::PeerId>> reciprocated_pairs() const;

  /// True iff p finished and left the swarm (stay_as_seed == false).
  [[nodiscard]] bool departed(core::PeerId p) const { return departed_.at(p); }

  /// Piece-availability dispersion across the swarm. The §6 assumption
  /// ("content availability is not a bottleneck") holds when rarest-
  /// first has equalized block repartition — i.e. when the coefficient
  /// of variation is small.
  struct AvailabilityStats {
    double mean = 0.0;                  // average copies per piece
    std::uint32_t min = 0;
    std::uint32_t max = 0;
    double coefficient_of_variation = 0.0;
  };
  [[nodiscard]] AvailabilityStats availability_stats() const;

  /// Neighbor set (tracker overlay) of peer p.
  [[nodiscard]] std::span<const graph::Vertex> neighbors(core::PeerId p) const {
    return overlay_.neighbors(p);
  }

  /// Number of directed overlay edge slots (data-plane footprint).
  [[nodiscard]] std::size_t edge_slot_count() const noexcept { return edge_peer_.size(); }

 private:
  void choke_step();
  void record_mutual_unchokes();
  void transfer_step();
  void fold_rates();
  /// Sends up to `budget` KB from p to q; returns the KB actually
  /// transferred (less than `budget` when q runs out of pickable
  /// pieces).
  double send_to(core::PeerId p, core::PeerId q, std::size_t slot_pq, double budget);
  void complete_piece(core::PeerId p, PieceId piece);
  /// Removes a completed leecher from the data plane: availability
  /// counters drop, partial/in-flight state is discarded.
  void depart_peer(core::PeerId p);
  [[nodiscard]] bool wants_from(core::PeerId receiver, core::PeerId sender) const;
  /// Edge slot of neighbor q in p's CSR row (adjacency is sorted).
  [[nodiscard]] std::size_t slot_of(core::PeerId p, core::PeerId q) const;

  SwarmConfig config_;
  graph::Rng& rng_;
  graph::Graph overlay_;
  PiecePicker picker_;
  std::vector<PeerStats> stats_;
  std::vector<Bitfield> have_;
  std::vector<TftChoker> chokers_;
  std::vector<std::vector<core::PeerId>> unchoked_;  // per peer, this round

  // --- CSR edge-slot data plane -------------------------------------
  // Directed slot s belongs to peer p (edge_offset_[p] <= s <
  // edge_offset_[p+1]) and names neighbor edge_peer_[s]; mirror_[s] is
  // the opposite-direction slot. All per-neighbor state below is
  // indexed by slot and preallocated once (the overlay is static).
  std::vector<std::size_t> edge_offset_;    // |V|+1 prefix sums
  std::vector<core::PeerId> edge_peer_;     // slot -> neighbor
  std::vector<std::size_t> mirror_;         // slot -> reverse slot
  std::vector<double> rate_in_;   // smoothed KB/round received on slot
  std::vector<double> now_in_;    // current round's receipts on slot
  std::vector<double> rate_out_;  // smoothed KB/round sent on slot (seed policy)
  std::vector<double> now_out_;   // current round's sends on slot
  // In-flight target piece per receiver-owned slot (receiver = slot
  // owner, sender = edge_peer_[slot]); kNoPiece when idle.
  std::vector<PieceId> inflight_;
  // Rounds each leecher pair spent mutually unchoked while both were
  // still downloading, on the lower-endpoint-owned slot (owner < nbr).
  std::vector<std::uint32_t> mutual_rounds_;

  // Partial piece progress: per receiver, (piece, KB accumulated)
  // pairs. At most one entry per active sender, so linear scans win
  // over hashing.
  std::vector<std::vector<std::pair<PieceId, double>>> partial_;

  std::vector<std::size_t> bandwidth_rank_;  // leecher -> rank by capacity
  std::vector<bool> departed_;
  std::size_t round_ = 0;
  std::size_t leechers_ = 0;
};

}  // namespace strat::bt
