// Deterministic fault injection for both swarm data planes.
//
// The simulator's baseline models a perfect protocol world: every
// announce reaches the tracker, every connect sticks, every planned
// transfer lane commits unless churn stole it. Real deployments are
// messier — trackers go down and clients retry on capped exponential
// backoff (running degraded with stale neighbor lists in between),
// TCP connects to advertised peers fail, a large NAT-ed fraction
// silently rejects inbound dials, and in-flight transfers time out.
// `FaultSpec` configures those four degradations; `FaultState` is the
// live per-peer fault state (NAT flags, backoff deadlines, retry
// counters, per-announce draw cursors) plus lifetime counters.
//
// Determinism contract (same rules as choke/transfer randomness):
// every fault draw comes from a counter-based stream keyed off the
// run key, a salt naming the fault class, and stable coordinates
// (external peer id, round, or per-peer announce sequence number) —
// never from the shared sequential generator inside a parallel
// region. Faulted runs are therefore bitwise invariant to
// `SwarmConfig::threads` and TrackerSim shard count, and
// ReferenceSwarm applies the identical algorithm serially so the
// differential suites extend to faulted runs unchanged.
//
// Zero-cost-when-off: with a default `FaultSpec` no fault stream is
// ever constructed and no fault branch draws randomness, so disabled
// runs are bitwise identical to the pre-fault simulator.
//
// FaultState is live run state and serializes as its own tagged
// snapshot section (snapshot.cpp: write_faults/read_faults) under the
// strat-lint R4 contract.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace strat::bt {

/// Salt for the per-peer NAT membership draw: stream(key ^ salt, id, 0).
inline constexpr std::uint64_t kFaultNatSalt = 0x6e61742d666c6167ull;  // "nat-flag"
/// Salt for per-announce connect-failure trials:
/// stream(key ^ salt, id, announce_seq).
inline constexpr std::uint64_t kFaultConnectSalt = 0x636f6e6e656374ull;  // "connect"
/// Salt for per-sender lane-loss draws: stream(key ^ salt, id, round).
inline constexpr std::uint64_t kFaultLaneSalt = 0x6c616e652d6c6f73ull;  // "lane-los"

/// Fault configuration. All knobs default to "off"; a
/// default-constructed spec reproduces the fault-free simulator
/// bit-for-bit.
struct FaultSpec {
  /// Tracker outage schedule: the tracker is down for rounds r with
  /// ((r + outage_phase) % outage_period) < outage_duration. Both
  /// period and duration must be nonzero for outages to occur.
  std::size_t outage_period = 0;
  std::size_t outage_duration = 0;
  std::size_t outage_phase = 0;
  /// Probability a single connect attempt to a sampled neighbor fails.
  double connect_failure_prob = 0.0;
  /// Connect attempts per candidate before the dialer gives up on it.
  std::size_t connect_attempts = 3;
  /// Fraction of peers that are NAT-ed: they dial out normally but
  /// reject every inbound connect (announce sampling skips them).
  double nat_fraction = 0.0;
  /// Probability a planned transfer lane is lost at commit: its bytes
  /// are forfeited this round and the sender's budget re-enters the
  /// normal redistribute path next round.
  double lane_loss_prob = 0.0;
  /// Announce retry backoff: delay after the k-th consecutive failure
  /// is min(backoff_base << (k-1), backoff_cap) rounds.
  std::size_t backoff_base = 1;
  std::size_t backoff_cap = 64;

  [[nodiscard]] bool outages() const noexcept {
    return outage_period > 0 && outage_duration > 0;
  }
  [[nodiscard]] bool flaky_connects() const noexcept {
    return nat_fraction > 0.0 || connect_failure_prob > 0.0;
  }
  [[nodiscard]] bool lossy_lanes() const noexcept { return lane_loss_prob > 0.0; }
  [[nodiscard]] bool enabled() const noexcept {
    return outages() || flaky_connects() || lossy_lanes();
  }
  /// Pure function of the round — no RNG, no cursor — so every peer,
  /// shard, and plane agrees on the tracker's state for free.
  [[nodiscard]] bool tracker_down(std::size_t round) const noexcept {
    return outages() && ((round + outage_phase) % outage_period) < outage_duration;
  }
  /// Backoff delay (rounds) after the `failures`-th consecutive failed
  /// announce (1-based). Overflow-safe capped doubling.
  [[nodiscard]] std::size_t retry_delay(std::size_t failures) const noexcept {
    std::size_t d = backoff_base;
    for (std::size_t i = 1; i < failures && d < backoff_cap; ++i) d <<= 1;
    return d < backoff_cap ? d : backoff_cap;
  }
};

/// Live fault state. The flat plane indexes the per-peer vectors by
/// table row (compacted in lockstep with every other row container);
/// ReferenceSwarm indexes them by external id (departed entries go
/// inert, like its other id-keyed state). Counters are lifetime
/// totals, serialized with the rest.
class FaultState {
 public:
  /// Sentinel for retry_round_: no announce retry pending.
  static constexpr std::uint32_t kNoRetry = 0xFFFFFFFFu;

  std::vector<std::uint8_t> nat_;           // rejects inbound connects
  std::vector<std::uint32_t> retry_round_;  // next announce retry, or kNoRetry
  std::vector<std::uint32_t> retry_count_;  // consecutive failed announces
  std::vector<std::uint32_t> announce_seq_; // connect-trial stream cursor
  std::uint64_t failed_announces_ = 0;
  std::uint64_t announce_retries_ = 0;
  std::uint64_t connect_failures_ = 0;
  std::uint64_t nat_rejections_ = 0;
  std::uint64_t lost_lanes_ = 0;

  void add_peer(bool nat);
  /// Swap-with-last row compaction, mirroring the flat plane's
  /// depart_peer: move `last` into `row`, then drop the tail.
  void compact(std::size_t row, std::size_t last);
  [[nodiscard]] std::size_t size() const noexcept { return nat_.size(); }

  [[nodiscard]] bool rejects_inbound(std::size_t i) const { return nat_[i] != 0; }
  [[nodiscard]] bool retry_pending(std::size_t i) const {
    return retry_round_[i] != kNoRetry;
  }
  /// Records a failed announce and schedules the next retry.
  void fail_announce(std::size_t i, std::size_t round, const FaultSpec& spec);
  /// Announce reached the tracker: clear any pending retry schedule.
  void reset_retry(std::size_t i);
  /// Peers currently running degraded (a retry is pending).
  [[nodiscard]] std::size_t degraded_count() const noexcept;
};

}  // namespace strat::bt
