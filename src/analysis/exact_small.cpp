#include "analysis/exact_small.hpp"

#include <cmath>
#include <stdexcept>

#include "core/acceptance.hpp"
#include "core/matching.hpp"
#include "core/ranking.hpp"
#include "core/solver.hpp"
#include "graph/graph.hpp"

namespace strat::analysis {

ExactSmallModel::ExactSmallModel(std::size_t n, double p, std::size_t b0) : n_(n), b0_(b0) {
  if (n > 7) throw std::invalid_argument("ExactSmallModel: n too large (max 7)");
  if (p < 0.0 || p > 1.0) throw std::invalid_argument("ExactSmallModel: p out of [0,1]");
  if (b0 == 0) throw std::invalid_argument("ExactSmallModel: b0 must be >= 1");
  pair_.assign(n * n, 0.0);
  choice_.assign(n * b0 * n, 0.0);
  mass_.assign(n * b0, 0.0);
  if (n < 2) return;

  const core::GlobalRanking ranking = core::GlobalRanking::identity(n);
  const std::size_t pairs = n * (n - 1) / 2;
  // Pair index -> (u, v) decode table.
  std::vector<std::pair<core::PeerId, core::PeerId>> decode;
  decode.reserve(pairs);
  for (core::PeerId u = 0; u + 1 < n; ++u) {
    for (core::PeerId v = u + 1; v < n; ++v) decode.emplace_back(u, v);
  }

  for (std::uint64_t mask = 0; mask < (std::uint64_t{1} << pairs); ++mask) {
    const int edges = __builtin_popcountll(mask);
    const double weight = std::pow(p, edges) * std::pow(1.0 - p, static_cast<int>(pairs) - edges);
    if (weight == 0.0) continue;
    graph::Graph g(n);
    for (std::size_t e = 0; e < pairs; ++e) {
      if (mask & (std::uint64_t{1} << e)) g.add_edge(decode[e].first, decode[e].second);
    }
    g.finalize();
    const core::ExplicitAcceptance acc(g, ranking);
    const core::Matching m = core::stable_configuration(
        acc, ranking, std::vector<std::uint32_t>(n, static_cast<std::uint32_t>(b0)));
    for (core::PeerId i = 0; i < n; ++i) {
      const auto mates = m.mates(i);
      for (std::size_t c = 0; c < mates.size(); ++c) {
        pair_[i * n + mates[c]] += weight;
        choice_[(i * b0_ + c) * n + mates[c]] += weight;
        mass_[i * b0_ + c] += weight;
      }
    }
  }
}

double ExactSmallModel::d(core::PeerId i, core::PeerId j) const {
  if (i >= n_ || j >= n_) throw std::out_of_range("ExactSmallModel::d: bad index");
  return pair_[static_cast<std::size_t>(i) * n_ + j];
}

double ExactSmallModel::d_choice(core::PeerId i, std::size_t c, core::PeerId j) const {
  if (i >= n_ || j >= n_ || c >= b0_) {
    throw std::out_of_range("ExactSmallModel::d_choice: bad index");
  }
  return choice_[(static_cast<std::size_t>(i) * b0_ + c) * n_ + j];
}

double ExactSmallModel::match_mass(core::PeerId i, std::size_t c) const {
  if (i >= n_ || c >= b0_) throw std::out_of_range("ExactSmallModel::match_mass: bad index");
  return mass_[static_cast<std::size_t>(i) * b0_ + c];
}

}  // namespace strat::analysis
