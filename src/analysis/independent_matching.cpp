#include "analysis/independent_matching.hpp"

#include <algorithm>
#include <stdexcept>

namespace strat::analysis {

Independent1Matching::Independent1Matching(std::size_t n, double p) : n_(n), p_(p) {
  if (p < 0.0 || p > 1.0) throw std::invalid_argument("Independent1Matching: p out of [0,1]");
  d_.assign(n * n, 0.0);
  // g[j] = sum_{k<i} D(j, k) for the current outer index i; within a
  // row, h = sum_{k<j} D(i, k). g is advanced only after the inner loop
  // completes, because the recurrence needs prefixes strictly below i.
  std::vector<double> g(n, 0.0);
  std::vector<double> col(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double h = g[i];  // at j = i+1, sum_{k<j} D(i,k) == sum_{k<i} D(i,k)
    for (std::size_t j = i + 1; j < n; ++j) {
      const double value = p_ * (1.0 - h) * (1.0 - g[j]);
      d_[i * n + j] = value;
      d_[j * n + i] = value;
      h += value;
      col[j] = value;
    }
    for (std::size_t j = i + 1; j < n; ++j) g[j] += col[j];
  }
}

double Independent1Matching::d(core::PeerId i, core::PeerId j) const {
  if (i >= n_ || j >= n_) throw std::out_of_range("Independent1Matching::d: bad index");
  return d_[static_cast<std::size_t>(i) * n_ + j];
}

std::vector<double> Independent1Matching::row(core::PeerId i) const {
  if (i >= n_) throw std::out_of_range("Independent1Matching::row: bad index");
  return {d_.begin() + static_cast<long>(i) * static_cast<long>(n_),
          d_.begin() + (static_cast<long>(i) + 1) * static_cast<long>(n_)};
}

double Independent1Matching::mass(core::PeerId i) const {
  const auto r = row(i);
  double sum = 0.0;
  for (double v : r) sum += v;
  return sum;
}

double Independent1Matching::expected_mate_rank(core::PeerId i) const {
  const auto r = row(i);
  double sum = 0.0;
  double weighted = 0.0;
  for (std::size_t j = 0; j < r.size(); ++j) {
    sum += r[j];
    weighted += r[j] * static_cast<double>(j);
  }
  return sum > 0.0 ? weighted / sum : 0.0;
}

StreamingResult independent_1matching_streaming(const StreamingOptions& options) {
  const std::size_t n = options.n;
  const double p = options.p;
  if (p < 0.0 || p > 1.0) {
    throw std::invalid_argument("independent_1matching_streaming: p out of [0,1]");
  }
  for (core::PeerId r : options.capture_rows) {
    if (r >= n) throw std::invalid_argument("independent_1matching_streaming: bad capture row");
  }
  StreamingResult out;
  out.mass.assign(n, 0.0);
  for (core::PeerId r : options.capture_rows) out.rows[r].assign(n, 0.0);

  // g[j] = sum_{k<i} D(j, k) for the current outer i.
  std::vector<double> g(n, 0.0);
  std::vector<double> col(n, 0.0);  // D(j, i) of the current outer i
  for (std::size_t i = 0; i < n; ++i) {
    double h = g[i];  // sum_{k<j} D(i,k), starting at j = i+1
    auto captured_i = out.rows.find(static_cast<core::PeerId>(i));
    for (std::size_t j = i + 1; j < n; ++j) {
      const double value = p * (1.0 - h) * (1.0 - g[j]);
      h += value;
      col[j] = value;
      out.mass[i] += value;
      out.mass[j] += value;
      if (captured_i != out.rows.end()) captured_i->second[j] = value;
      if (auto it = out.rows.find(static_cast<core::PeerId>(j)); it != out.rows.end()) {
        it->second[i] = value;
      }
    }
    // Advance g: for the next outer i+1, g[j] = sum_{k<i+1} D(j,k).
    for (std::size_t j = i + 1; j < n; ++j) g[j] += col[j];
  }
  return out;
}

}  // namespace strat::analysis
