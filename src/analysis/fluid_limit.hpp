// Fluid limit of the mate distribution (§5.2.1, Conjecture 1).
//
// With p_n = d/n and peer i_n = 1 + floor(n·alpha), the scaled measure
// M_{i_n}(p_n)(n·dx) converges to an absolutely continuous limit
// M_{alpha,d}. For alpha = 0 (the best peer) the paper derives the
// density M_{0,d}(d beta) = d e^{-beta d} d beta: the best peer's mate
// rank offset, in units of n, is Exponential(d).
#pragma once

#include <cstddef>
#include <vector>

namespace strat::analysis {

/// Density of the alpha = 0 fluid limit at offset beta (>= 0):
/// f(beta) = d·exp(-beta·d). Throws std::invalid_argument for d <= 0.
[[nodiscard]] double fluid_density_alpha0(double beta, double d);

/// One point of a scaled empirical/analytic distribution.
struct ScaledPoint {
  double beta = 0.0;     // rank offset / n
  double density = 0.0;  // n * D(i, j)
};

/// Rescales a mate-rank distribution row D(i, ·) (length n) into the
/// fluid-limit coordinates relative to `i`: beta = (j - i)/n for j > i,
/// density = n·D(i, j). Only offsets to *worse* peers are kept when
/// `worse_only` (the alpha = 0 limit concerns the best peer, whose
/// mates are all worse).
[[nodiscard]] std::vector<ScaledPoint> rescale_row(const std::vector<double>& row, std::size_t i,
                                                   bool worse_only = true);

/// Sup-norm distance between the scaled row of the best peer and the
/// analytic density d·e^{-beta d}, sampled at the row's support points.
/// Used to check Conjecture 1 numerically (it decays as n grows).
[[nodiscard]] double fluid_limit_sup_error(const std::vector<double>& best_peer_row, double d);

}  // namespace strat::analysis
