// Exact mate distributions for tiny n by enumerating all graphs (§5.1.1).
//
// For n peers there are 2^(n(n-1)/2) acceptance graphs; each occurs with
// probability p^{edges} (1-p)^{missing}. Enumerating them and solving
// each instance exactly gives the exact D(i, j) (Eq. 1's solution), used
// to quantify the independence-approximation error (Figure 7: for n = 3,
// D_exact(2,3) = p(1-p)^2 while Algorithm 2 yields an extra p^3(1-p)
// term — 1-based peer labels).
#pragma once

#include <cstddef>
#include <vector>

#include "core/types.hpp"

namespace strat::analysis {

/// Exact mate-probability matrices for the stable b0-matching on
/// G(n, p). Feasible for n <= 7 (2^21 graphs).
class ExactSmallModel {
 public:
  /// Throws std::invalid_argument if n > 7, p outside [0,1], or b0 == 0.
  ExactSmallModel(std::size_t n, double p, std::size_t b0 = 1);

  [[nodiscard]] std::size_t size() const noexcept { return n_; }

  /// Exact P(i and j are matched together) — summed over choices.
  [[nodiscard]] double d(core::PeerId i, core::PeerId j) const;

  /// Exact P(the c-th best mate of i is j), c 0-based.
  [[nodiscard]] double d_choice(core::PeerId i, std::size_t c, core::PeerId j) const;

  /// Exact P(i has at least c+1 mates).
  [[nodiscard]] double match_mass(core::PeerId i, std::size_t c = 0) const;

 private:
  std::size_t n_;
  std::size_t b0_;
  std::vector<double> pair_;    // n*n
  std::vector<double> choice_;  // n*b0*n
  std::vector<double> mass_;    // n*b0
};

}  // namespace strat::analysis
