// Algorithm 2: the independent 1-matching model (§5.1.2).
//
// D(i, j) is the probability that peer i is matched with peer j in the
// unique stable 1-matching of an Erdős–Rényi acceptance graph, under
// Assumption 1 (the two "not with better" events are independent):
//
//   D(i, j) = p (1 - sum_{k<j} D(i, k)) (1 - sum_{k<i} D(j, k)),  i < j.
//
// Indices here are 0-based ranks (peer 0 is the best), i.e. code index
// i corresponds to the paper's peer i+1.
//
// Two implementations:
//  * full matrix — a direct transcription of Algorithm 2, O(n^2) memory;
//    used by tests and small studies;
//  * streaming  — O(n) memory with running prefix sums, capturing only
//    requested rows and accumulators; used for the n = 5000 figures.
#pragma once

#include <cstddef>
#include <map>
#include <vector>

#include "core/types.hpp"

namespace strat::analysis {

/// Full O(n^2) mate-probability matrix (Algorithm 2, verbatim).
class Independent1Matching {
 public:
  /// Computes D for `n` peers and ER edge probability `p`.
  /// Throws std::invalid_argument for p outside [0, 1].
  Independent1Matching(std::size_t n, double p);

  [[nodiscard]] std::size_t size() const noexcept { return n_; }
  [[nodiscard]] double edge_probability() const noexcept { return p_; }

  /// D(i, j); symmetric, zero diagonal. 0-based ranks.
  [[nodiscard]] double d(core::PeerId i, core::PeerId j) const;

  /// Row D(i, ·) as a dense vector of length n.
  [[nodiscard]] std::vector<double> row(core::PeerId i) const;

  /// Match mass of peer i: sum_j D(i, j) = P(i is matched). Lemma 1
  /// says this tends to 1 as peers are appended below.
  [[nodiscard]] double mass(core::PeerId i) const;

  /// Expected (0-based) mate rank of i conditioned on being matched.
  [[nodiscard]] double expected_mate_rank(core::PeerId i) const;

 private:
  std::size_t n_;
  double p_;
  std::vector<double> d_;  // row-major n*n
};

/// What the streaming pass should collect.
struct StreamingOptions {
  std::size_t n = 0;
  double p = 0.0;
  /// Peers whose full row D(i, ·) should be captured.
  std::vector<core::PeerId> capture_rows;
};

/// Results of the streaming pass.
struct StreamingResult {
  /// Captured rows, keyed by peer.
  std::map<core::PeerId, std::vector<double>> rows;
  /// mass[i] = P(i matched).
  std::vector<double> mass;
};

/// O(n) memory evaluation of the same recurrence (used at n ~ 10^4+).
/// Throws std::invalid_argument on bad options.
[[nodiscard]] StreamingResult independent_1matching_streaming(const StreamingOptions& options);

}  // namespace strat::analysis
