#include "analysis/independent_bmatching.hpp"

#include <stdexcept>

namespace strat::analysis {

double BMatchingResult::mass(core::PeerId i, std::size_t c) const {
  if (i >= n || c >= b0) throw std::out_of_range("BMatchingResult::mass: bad index");
  return choice_mass.at(static_cast<std::size_t>(i) * b0 + c);
}

BMatchingResult analyze_bmatching(const BMatchingOptions& options) {
  const std::size_t n = options.n;
  const std::size_t b0 = options.b0;
  const double p = options.p;
  if (p < 0.0 || p > 1.0) throw std::invalid_argument("analyze_bmatching: p out of [0,1]");
  if (b0 == 0) throw std::invalid_argument("analyze_bmatching: b0 must be >= 1");
  if (!options.weights.empty() && options.weights.size() != n) {
    throw std::invalid_argument("analyze_bmatching: weights must have length n");
  }
  for (core::PeerId r : options.capture_rows) {
    if (r >= n) throw std::invalid_argument("analyze_bmatching: capture row out of range");
  }
  const bool weighted = !options.weights.empty();

  BMatchingResult out;
  out.n = n;
  out.b0 = b0;
  out.choice_mass.assign(n * b0, 0.0);
  out.expected_mates.assign(n, 0.0);
  if (weighted) out.expected_weight.assign(n, 0.0);
  for (core::PeerId r : options.capture_rows) {
    out.rows[r].assign(b0, std::vector<double>(n, 0.0));
  }

  // g[j*b0 + c] = F_{c+1}(j, i) = sum_{k<i} D_{c+1}(j, k) for the
  // current outer i (choice indices shifted: slot c stores choice c+1;
  // F_0 == 1 is implicit). col stores this outer round's D_c(j, i)
  // contributions, folded into g only after the inner loop.
  std::vector<double> g(n * b0, 0.0);
  std::vector<double> col(n * b0, 0.0);
  // h[c] = F_{c+1}(i, j) for the current (i, j), advanced over j.
  std::vector<double> h(b0, 0.0);

  for (std::size_t i = 0; i < n; ++i) {
    // At j = i+1, F_c(i, j) = sum_{k<i} D_c(i, k) = g[i*b0 + c].
    for (std::size_t c = 0; c < b0; ++c) h[c] = g[i * b0 + c];
    auto captured_i = out.rows.find(static_cast<core::PeerId>(i));
    for (std::size_t j = i + 1; j < n; ++j) {
      // One minus the full-capacity prefixes: probability the partner
      // side has not already filled all b0 choices with better peers.
      const double open_i = 1.0 - h[b0 - 1];
      const double open_j = 1.0 - g[j * b0 + b0 - 1];
      auto captured_j = out.rows.find(static_cast<core::PeerId>(j));
      // Forward direction: D_c(i, j) = p (F_{c-1}(i,j) - F_c(i,j)) open_j.
      double prev_f = 1.0;  // F_0
      for (std::size_t c = 0; c < b0; ++c) {
        const double f_c = h[c];
        const double value = p * (prev_f - f_c) * open_j;
        prev_f = f_c;
        h[c] += value;
        out.choice_mass[i * b0 + c] += value;
        out.expected_mates[i] += value;
        if (weighted) out.expected_weight[i] += value * options.weights[j];
        if (captured_i != out.rows.end()) captured_i->second[c][j] = value;
      }
      // Reverse direction: D_c(j, i) = p (F_{c-1}(j,i) - F_c(j,i)) open_i.
      prev_f = 1.0;
      for (std::size_t c = 0; c < b0; ++c) {
        const double f_c = g[j * b0 + c];
        const double value = p * (prev_f - f_c) * open_i;
        prev_f = f_c;
        col[j * b0 + c] = value;
        out.choice_mass[j * b0 + c] += value;
        out.expected_mates[j] += value;
        if (weighted) out.expected_weight[j] += value * options.weights[i];
        if (captured_j != out.rows.end()) captured_j->second[c][i] = value;
      }
    }
    // Fold this round's reverse columns into g for the next outer i.
    for (std::size_t j = i + 1; j < n; ++j) {
      for (std::size_t c = 0; c < b0; ++c) g[j * b0 + c] += col[j * b0 + c];
    }
  }
  return out;
}

}  // namespace strat::analysis
