// Algorithm 3: the independent b0-matching model (§5.4).
//
// D_c(i, j) is the probability that the c-th choice (c = 1..b0, best
// mate first) of peer i is peer j. Under Assumption 2 the joint
// probability that i's choice ci is j *and* j's choice cj is i factors:
//
//   D_{ci,cj}(i,j) = p · (F_{ci-1}(i,j) - F_{ci}(i,j))
//                      · (F_{cj-1}(j,i) - F_{cj}(j,i)),
//
// where F_c(i,j) = sum_{k<j} D_c(i,k) is the probability that choice c
// of i is matched with somebody better than j, and F_0 ≡ 1. (The
// paper's Eq. 4 prints the summation limits garbled; this is the form
// consistent with Eq. 2, Algorithm 3's code, and the Figure 7/9 checks —
// see DESIGN.md §5.) Marginalizing over cj telescopes:
//
//   D_ci(i,j) = p · (F_{ci-1}(i,j) - F_{ci}(i,j)) · (1 - F_{b0}(j,i)),
//
// so the full (ci, cj) tensor is never materialized. The paper hints at
// keeping partial sums in memory "to gain a linear factor"; this
// implementation goes further and streams in O(n·b0) memory and
// O(n^2·b0) time.
//
// Indices are 0-based ranks; choices are 0-based too (choice 0 = best).
#pragma once

#include <cstddef>
#include <map>
#include <vector>

#include "core/types.hpp"

namespace strat::analysis {

/// Inputs of the streaming b0-matching analysis.
struct BMatchingOptions {
  std::size_t n = 0;
  double p = 0.0;
  std::size_t b0 = 1;
  /// Peers whose per-choice rows D_c(i, ·) should be captured.
  std::vector<core::PeerId> capture_rows;
  /// Optional per-peer weights w(j) (e.g. upload bandwidth per slot);
  /// when set (size n), expected_weight[i] = sum_{c,j} D_c(i,j) w(j) is
  /// produced — the expected total download rate in the BitTorrent
  /// application (§6).
  std::vector<double> weights;
};

/// Outputs of the streaming analysis.
struct BMatchingResult {
  /// rows[i][c][j] = D_c(i, j) for captured peers i.
  std::map<core::PeerId, std::vector<std::vector<double>>> rows;
  /// choice_mass[i*b0 + c] = P(choice c of i is matched) = sum_j D_c(i,j).
  std::vector<double> choice_mass;
  /// expected_mates[i] = expected number of mates = sum_c choice_mass.
  std::vector<double> expected_mates;
  /// expected_weight[i] (only when weights were provided).
  std::vector<double> expected_weight;

  std::size_t n = 0;
  std::size_t b0 = 1;

  /// P(choice c of i matched). Bounds-checked.
  [[nodiscard]] double mass(core::PeerId i, std::size_t c) const;
};

/// Runs the streaming evaluation. Throws std::invalid_argument on bad
/// parameters (p outside [0,1], b0 == 0, wrong weight length, capture
/// row out of range).
[[nodiscard]] BMatchingResult analyze_bmatching(const BMatchingOptions& options);

}  // namespace strat::analysis
