// Monte-Carlo estimation of mate-rank distributions (§5.4.3, Figure 9).
//
// The paper validates the independent b0-matching model by simulating a
// million Erdős–Rényi realizations (n = 5000, p = 1%, b0 = 2, "several
// weeks") and comparing the first- and second-choice distributions of
// peer 3000 with Algorithm 3's output. This module is that estimator:
// draw G(n, p), solve the unique stable b0-matching exactly, record the
// c-th best mate of each tracked peer, repeat. Optionally multithreaded
// (independent RNG streams, merged at the end).
#pragma once

#include <cstddef>
#include <vector>

#include "core/types.hpp"
#include "graph/rng.hpp"

namespace strat::analysis {

/// Parameters of the estimator.
struct MonteCarloOptions {
  std::size_t n = 0;
  double p = 0.0;
  std::size_t b0 = 1;
  std::size_t realizations = 1000;
  /// Peers whose per-choice mate distributions are tracked.
  std::vector<core::PeerId> tracked;
  /// Worker threads (1 = sequential).
  std::size_t threads = 1;
};

/// Estimated distributions. freq[t][c][j] counts, over realizations,
/// how often tracked peer t's choice-c mate was peer j; unmatched[t][c]
/// counts realizations where choice c stayed empty.
struct MonteCarloResult {
  std::size_t realizations = 0;
  std::vector<std::vector<std::vector<std::uint64_t>>> freq;
  std::vector<std::vector<std::uint64_t>> unmatched;

  /// Empirical probability that tracked peer `t_index`'s choice c is j.
  [[nodiscard]] double probability(std::size_t t_index, std::size_t c, core::PeerId j) const;

  /// Empirical P(choice c of tracked peer t_index is matched).
  [[nodiscard]] double match_mass(std::size_t t_index, std::size_t c) const;

  /// Full probability row for a tracked peer/choice (length n).
  [[nodiscard]] std::vector<double> probability_row(std::size_t t_index, std::size_t c) const;
};

/// Runs the estimator. Throws std::invalid_argument on bad parameters.
[[nodiscard]] MonteCarloResult estimate_mate_distribution(const MonteCarloOptions& options,
                                                          graph::Rng& rng);

}  // namespace strat::analysis
