#include "analysis/fluid_limit.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace strat::analysis {

double fluid_density_alpha0(double beta, double d) {
  if (d <= 0.0) throw std::invalid_argument("fluid_density_alpha0: d must be positive");
  if (beta < 0.0) return 0.0;
  return d * std::exp(-beta * d);
}

std::vector<ScaledPoint> rescale_row(const std::vector<double>& row, std::size_t i,
                                     bool worse_only) {
  const std::size_t n = row.size();
  std::vector<ScaledPoint> out;
  out.reserve(n);
  const double dn = static_cast<double>(n);
  for (std::size_t j = 0; j < n; ++j) {
    if (j == i) continue;
    if (worse_only && j < i) continue;
    ScaledPoint pt;
    pt.beta = (static_cast<double>(j) - static_cast<double>(i)) / dn;
    pt.density = dn * row[j];
    out.push_back(pt);
  }
  return out;
}

double fluid_limit_sup_error(const std::vector<double>& best_peer_row, double d) {
  const auto scaled = rescale_row(best_peer_row, 0, /*worse_only=*/true);
  double sup = 0.0;
  for (const ScaledPoint& pt : scaled) {
    sup = std::max(sup, std::abs(pt.density - fluid_density_alpha0(pt.beta, d)));
  }
  return sup;
}

}  // namespace strat::analysis
