#include "analysis/monte_carlo.hpp"

#include <stdexcept>
#include <thread>

#include "core/acceptance.hpp"
#include "core/matching.hpp"
#include "core/ranking.hpp"
#include "core/solver.hpp"
#include "graph/erdos_renyi.hpp"

namespace strat::analysis {

double MonteCarloResult::probability(std::size_t t_index, std::size_t c, core::PeerId j) const {
  if (realizations == 0) return 0.0;
  return static_cast<double>(freq.at(t_index).at(c).at(j)) / static_cast<double>(realizations);
}

double MonteCarloResult::match_mass(std::size_t t_index, std::size_t c) const {
  if (realizations == 0) return 0.0;
  return 1.0 - static_cast<double>(unmatched.at(t_index).at(c)) /
                   static_cast<double>(realizations);
}

std::vector<double> MonteCarloResult::probability_row(std::size_t t_index, std::size_t c) const {
  const auto& counts = freq.at(t_index).at(c);
  std::vector<double> row(counts.size(), 0.0);
  if (realizations == 0) return row;
  for (std::size_t j = 0; j < counts.size(); ++j) {
    row[j] = static_cast<double>(counts[j]) / static_cast<double>(realizations);
  }
  return row;
}

namespace {

MonteCarloResult make_empty(const MonteCarloOptions& options) {
  MonteCarloResult out;
  out.freq.assign(options.tracked.size(),
                  std::vector<std::vector<std::uint64_t>>(
                      options.b0, std::vector<std::uint64_t>(options.n, 0)));
  out.unmatched.assign(options.tracked.size(), std::vector<std::uint64_t>(options.b0, 0));
  return out;
}

void run_worker(const MonteCarloOptions& options, std::size_t realizations, graph::Rng rng,
                MonteCarloResult& out) {
  const core::GlobalRanking ranking = core::GlobalRanking::identity(options.n);
  for (std::size_t r = 0; r < realizations; ++r) {
    const graph::Graph g = graph::erdos_renyi_gnp(options.n, options.p, rng);
    const core::ExplicitAcceptance acc(g, ranking);
    const core::Matching m = core::stable_configuration(
        acc, ranking,
        std::vector<std::uint32_t>(options.n, static_cast<std::uint32_t>(options.b0)));
    for (std::size_t t = 0; t < options.tracked.size(); ++t) {
      const auto mates = m.mates(options.tracked[t]);
      for (std::size_t c = 0; c < options.b0; ++c) {
        if (c < mates.size()) {
          ++out.freq[t][c][mates[c]];
        } else {
          ++out.unmatched[t][c];
        }
      }
    }
  }
  out.realizations = realizations;
}

void merge(MonteCarloResult& into, const MonteCarloResult& from) {
  into.realizations += from.realizations;
  for (std::size_t t = 0; t < into.freq.size(); ++t) {
    for (std::size_t c = 0; c < into.freq[t].size(); ++c) {
      for (std::size_t j = 0; j < into.freq[t][c].size(); ++j) {
        into.freq[t][c][j] += from.freq[t][c][j];
      }
      into.unmatched[t][c] += from.unmatched[t][c];
    }
  }
}

}  // namespace

MonteCarloResult estimate_mate_distribution(const MonteCarloOptions& options, graph::Rng& rng) {
  if (options.p < 0.0 || options.p > 1.0) {
    throw std::invalid_argument("estimate_mate_distribution: p out of [0,1]");
  }
  if (options.b0 == 0) throw std::invalid_argument("estimate_mate_distribution: b0 >= 1");
  if (options.n < 2) throw std::invalid_argument("estimate_mate_distribution: n >= 2");
  for (core::PeerId t : options.tracked) {
    if (t >= options.n) throw std::invalid_argument("estimate_mate_distribution: bad peer");
  }
  const std::size_t threads = std::max<std::size_t>(1, options.threads);
  if (threads == 1) {
    MonteCarloResult out = make_empty(options);
    run_worker(options, options.realizations, rng.split(), out);
    return out;
  }
  std::vector<MonteCarloResult> partials(threads);
  for (auto& partial : partials) partial = make_empty(options);
  std::vector<std::thread> pool;
  pool.reserve(threads);
  const std::size_t base = options.realizations / threads;
  const std::size_t extra = options.realizations % threads;
  for (std::size_t w = 0; w < threads; ++w) {
    const std::size_t quota = base + (w < extra ? 1 : 0);
    pool.emplace_back(run_worker, std::cref(options), quota, rng.split(),
                      std::ref(partials[w]));
  }
  for (auto& worker : pool) worker.join();
  MonteCarloResult out = make_empty(options);
  for (const auto& partial : partials) merge(out, partial);
  return out;
}

}  // namespace strat::analysis
