// Preference systems and Tan's cycle criterion (§3).
//
// A general preference system gives every peer an ordered list of
// acceptable peers. Tan (1991) showed a stable configuration exists iff
// there is no odd preference cycle of length > 1, and is unique if
// additionally no even cycle of length > 2 exists. A preference cycle
// p_1,...,p_k (k >= 3, distinct) has every p_i preferring p_{i+1} to
// p_{i-1} (cyclically). A strict global ranking admits no such cycle,
// which yields the paper's existence + uniqueness result; this module
// provides machinery to check such claims on arbitrary instances (used
// by tests and the exact-enumeration analysis).
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "core/ranking.hpp"
#include "core/types.hpp"

namespace strat::core {

/// Explicit preference system: prefs[p] lists p's acceptable peers,
/// most preferred first.
using PreferenceSystem = std::vector<std::vector<PeerId>>;

/// Builds the preference system induced by a global ranking restricted
/// to an acceptance graph given as adjacency lists (unordered).
[[nodiscard]] PreferenceSystem preferences_from_ranking(
    const GlobalRanking& ranking, const std::vector<std::vector<PeerId>>& adjacency);

/// True iff q appears in prefs[p] strictly before r. A peer missing
/// from the list ranks below every listed peer.
[[nodiscard]] bool pref_prefers(const PreferenceSystem& prefs, PeerId p, PeerId q, PeerId r);

/// True iff `cycle` (k >= 3 distinct peers) is a preference cycle.
[[nodiscard]] bool is_preference_cycle(const PreferenceSystem& prefs,
                                       const std::vector<PeerId>& cycle);

/// Searches for a preference cycle. Exhaustive (hence complete) for
/// n <= 10; for larger systems it walks the directed state graph on
/// ordered acceptable pairs ((a,b) -> (b,c) iff b prefers c to a) and
/// verifies extracted witnesses, which is sound but may miss cycles in
/// adversarial large instances. Every returned witness is verified.
[[nodiscard]] std::optional<std::vector<PeerId>> find_preference_cycle(
    const PreferenceSystem& prefs);

/// Exact certificate of cycle-freeness: the state graph on ordered
/// acceptable pairs is acyclic. Any preference cycle induces a state
/// cycle, so `true` proves no preference cycle exists (the direction
/// Theorem 1 needs). Global rankings always return true.
[[nodiscard]] bool is_cycle_free(const PreferenceSystem& prefs);

}  // namespace strat::core
