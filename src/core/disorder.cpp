#include "core/disorder.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <stdexcept>

namespace strat::core {

namespace {

/// 1-based mate rank, or n+1 when unmatched.
double sigma(const Matching& c, const GlobalRanking& ranking, PeerId i) {
  const PeerId mate = c.mate(i);
  if (mate == kNoPeer) return static_cast<double>(ranking.size() + 1);
  return static_cast<double>(ranking.rank_of(mate)) + 1.0;
}

}  // namespace

double disorder_1matching(const Matching& c1, const Matching& c2, const GlobalRanking& ranking) {
  if (c1.size() != c2.size() || c1.size() != ranking.size()) {
    throw std::invalid_argument("disorder_1matching: size mismatch");
  }
  const std::size_t n = c1.size();
  if (n == 0) return 0.0;
  for (PeerId p = 0; p < n; ++p) {
    if (c1.degree(p) > 1 || c2.degree(p) > 1) {
      throw std::invalid_argument("disorder_1matching: not a 1-matching");
    }
  }
  double sum = 0.0;
  for (PeerId i = 0; i < n; ++i) {
    sum += std::abs(sigma(c1, ranking, i) - sigma(c2, ranking, i));
  }
  const double dn = static_cast<double>(n);
  return sum * 2.0 / (dn * (dn + 1.0));
}

double disorder_bmatching(const Matching& c1, const Matching& c2, const GlobalRanking& ranking) {
  if (c1.size() != c2.size() || c1.size() != ranking.size()) {
    throw std::invalid_argument("disorder_bmatching: size mismatch");
  }
  const std::size_t n = c1.size();
  if (n == 0) return 0.0;
  double sum = 0.0;
  double total_capacity = 0.0;
  const double unmatched = static_cast<double>(n + 1);
  for (PeerId i = 0; i < n; ++i) {
    if (c1.capacity(i) != c2.capacity(i)) {
      throw std::invalid_argument("disorder_bmatching: capacity mismatch");
    }
    const auto m1 = c1.mates(i);
    const auto m2 = c2.mates(i);
    const std::size_t b = c1.capacity(i);
    total_capacity += static_cast<double>(b);
    for (std::size_t k = 0; k < b; ++k) {
      const double r1 =
          k < m1.size() ? static_cast<double>(ranking.rank_of(m1[k])) + 1.0 : unmatched;
      const double r2 =
          k < m2.size() ? static_cast<double>(ranking.rank_of(m2[k])) + 1.0 : unmatched;
      sum += std::abs(r1 - r2);
    }
  }
  if (total_capacity == 0.0) return 0.0;
  return sum * 2.0 / (total_capacity * static_cast<double>(n + 1));
}

double disorder_1matching_active(const Matching& c1, const Matching& c2,
                                 const GlobalRanking& ranking,
                                 const std::vector<PeerId>& active) {
  const std::size_t n = active.size();
  if (n == 0) return 0.0;
  // Rank positions within the active population, best first.
  std::vector<PeerId> sorted = active;
  std::sort(sorted.begin(), sorted.end(),
            [&](PeerId a, PeerId b) { return ranking.prefers(a, b); });
  // Sparse map id -> active rank (1-based); 0 = inactive.
  std::vector<std::uint32_t> active_rank(ranking.size(), 0);
  for (std::size_t r = 0; r < sorted.size(); ++r) {
    active_rank[sorted[r]] = static_cast<std::uint32_t>(r + 1);
  }
  const double unmatched = static_cast<double>(n + 1);
  auto sig = [&](const Matching& c, PeerId i) {
    const PeerId mate = i < c.size() ? c.mate(i) : kNoPeer;
    if (mate == kNoPeer || active_rank[mate] == 0) return unmatched;
    return static_cast<double>(active_rank[mate]);
  };
  double sum = 0.0;
  for (PeerId i : active) sum += std::abs(sig(c1, i) - sig(c2, i));
  const double dn = static_cast<double>(n);
  return sum * 2.0 / (dn * (dn + 1.0));
}

}  // namespace strat::core
