#include "core/gossip.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/blocking.hpp"
#include "core/solver.hpp"

namespace strat::core {

PeerSampling::PeerSampling(std::size_t peers, std::size_t view_size, graph::Rng& rng)
    : view_size_(view_size), views_(peers) {
  if (peers < 2) throw std::invalid_argument("PeerSampling: need >= 2 peers");
  if (view_size == 0 || view_size >= peers) {
    throw std::invalid_argument("PeerSampling: view size in [1, peers)");
  }
  for (PeerId p = 0; p < peers; ++p) {
    auto& view = views_[p];
    while (view.size() < view_size) {
      const auto q = static_cast<PeerId>(rng.below(peers));
      if (q == p || std::find(view.begin(), view.end(), q) != view.end()) continue;
      view.push_back(q);
    }
  }
}

bool PeerSampling::knows(PeerId p, PeerId q) const {
  const auto& view = views_.at(p);
  return std::find(view.begin(), view.end(), q) != view.end();
}

void PeerSampling::merge_view(PeerId owner, const std::vector<PeerId>& incoming) {
  auto& view = views_[owner];
  for (PeerId entry : incoming) {
    if (entry == owner) continue;
    if (std::find(view.begin(), view.end(), entry) != view.end()) continue;
    view.push_back(entry);
  }
  // Bounded views: the freshest entries (just appended) survive; excess
  // is trimmed from the oldest half, which is what keeps the network
  // mixing (a simplified Jelasity-style shuffle).
  while (view.size() > view_size_) view.erase(view.begin());
}

void PeerSampling::shuffle(PeerId p, graph::Rng& rng) {
  auto& view = views_[p];
  if (view.empty()) return;
  const PeerId q = view[static_cast<std::size_t>(rng.below(view.size()))];

  auto sample_half = [&](PeerId owner, PeerId partner) {
    std::vector<PeerId> pool = views_[owner];
    pool.erase(std::remove(pool.begin(), pool.end(), partner), pool.end());
    rng.shuffle(pool);
    pool.resize(std::min(pool.size(), view_size_ / 2));
    pool.push_back(owner);  // gossip your own address
    return pool;
  };

  const std::vector<PeerId> from_p = sample_half(p, q);
  const std::vector<PeerId> from_q = sample_half(q, p);
  merge_view(q, from_p);
  merge_view(p, from_q);
}

GossipSimulator::GossipSimulator(const GossipParams& params, graph::Rng& rng)
    : params_(params),
      rng_(rng),
      ranking_(GlobalRanking::identity(params.peers)),
      sampling_(params.peers, params.view_size, rng),
      matching_(params.peers, params.capacity),
      complete_stable_(stable_configuration_complete(
          std::vector<std::uint32_t>(params.peers, params.capacity))) {
  if (params.strategy == Strategy::kDecremental) {
    throw std::invalid_argument(
        "GossipSimulator: decremental scanning is undefined over mutating views; "
        "use best or random");
  }
}

bool GossipSimulator::step() {
  shuffle_debt_ += params_.shuffles_per_unit;
  while (shuffle_debt_ >= 1.0) {
    sampling_.shuffle(static_cast<PeerId>(rng_.below(params_.peers)), rng_);
    shuffle_debt_ -= 1.0;
  }
  const auto p = static_cast<PeerId>(rng_.below(params_.peers));
  ++initiatives_;

  // Candidates: the peers p currently knows, by decreasing rank.
  std::vector<PeerId> candidates = sampling_.view(p);
  std::sort(candidates.begin(), candidates.end(),
            [&](PeerId a, PeerId b) { return ranking_.prefers(a, b); });
  if (params_.strategy == Strategy::kRandom && !candidates.empty()) {
    const PeerId q = candidates[static_cast<std::size_t>(rng_.below(candidates.size()))];
    candidates.assign(1, q);
  }
  for (PeerId q : candidates) {
    if (q == p || matching_.are_matched(p, q)) continue;
    if (!wishes(matching_, ranking_, p, q)) break;  // sorted: rest are worse
    if (wishes(matching_, ranking_, q, p)) {
      execute_blocking_pair(ranking_, matching_, p, q);
      return true;
    }
  }
  return false;
}

double GossipSimulator::disorder() const {
  if (params_.capacity == 1) {
    return disorder_1matching(matching_, complete_stable_, ranking_);
  }
  return disorder_bmatching(matching_, complete_stable_, ranking_);
}

std::vector<TrajectoryPoint> GossipSimulator::run(double units, std::size_t samples_per_unit) {
  if (samples_per_unit == 0) throw std::invalid_argument("run: samples_per_unit >= 1");
  const std::size_t n = params_.peers;
  const auto total = static_cast<std::size_t>(units * static_cast<double>(n));
  const std::size_t stride = std::max<std::size_t>(1, n / samples_per_unit);
  std::vector<TrajectoryPoint> points;
  std::size_t window = 0;
  std::size_t active = 0;
  auto sample = [&]() {
    TrajectoryPoint pt;
    pt.initiatives_per_peer = static_cast<double>(initiatives_) / static_cast<double>(n);
    pt.disorder = disorder();
    pt.active_fraction =
        window == 0 ? 0.0 : static_cast<double>(active) / static_cast<double>(window);
    points.push_back(pt);
  };
  sample();
  for (std::size_t s = 0; s < total; ++s) {
    if (step()) ++active;
    if (++window == stride) {
      sample();
      window = 0;
      active = 0;
    }
  }
  if (window != 0) sample();
  return points;
}

}  // namespace strat::core
