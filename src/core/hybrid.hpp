// Hybrid overlays: combining utility functions (§7).
//
// Pure global-ranking matching stratifies: collaborations only join
// rank-close peers, so the collaboration graph has a large diameter —
// bad for streaming play-out delay. The paper proposes combining "a
// second type of collaborations depending on ... a symmetric ranking
// such as latency". This module builds that hybrid: every peer runs
// `rank_slots` TFT-style slots matched by the global ranking *and*
// `proximity_slots` slots matched by a symmetric latency utility
// (closer = better), each as its own stable configuration, and exposes
// the union overlay for structural analysis.
//
// Latency comes from a simple coordinate model: peers sit on a ring of
// circumference 1 (think one-dimensional network coordinates) and the
// pair utility is -distance, perturbed infinitesimally to keep weights
// distinct.
#pragma once

#include <cstdint>
#include <vector>

#include "core/acceptance.hpp"
#include "core/matching.hpp"
#include "core/ranking.hpp"
#include "core/symmetric.hpp"
#include "graph/graph.hpp"
#include "graph/rng.hpp"

namespace strat::core {

/// Parameters of a hybrid overlay.
struct HybridConfig {
  std::uint32_t rank_slots = 3;       // global-ranking collaborations
  std::uint32_t proximity_slots = 1;  // symmetric-latency collaborations
};

/// The two stable configurations plus their union.
struct HybridOverlay {
  Matching rank_matching;
  Matching proximity_matching;
  /// Union of the two collaboration graphs (parallel edges merged).
  graph::Graph combined;
};

/// Ring distance between coordinates in [0, 1).
[[nodiscard]] double ring_distance(double x, double y);

/// Builds the latency edge list for an acceptance graph: one weighted
/// edge per acceptable pair, weight = -ring_distance (closer = better),
/// deterministically jittered to break exact ties.
[[nodiscard]] std::vector<WeightedEdge> latency_edges(const graph::Graph& acceptance,
                                                      const std::vector<double>& coordinates);

/// Builds the hybrid overlay over a shared acceptance graph.
/// `coordinates` holds each peer's ring position in [0, 1).
/// Throws std::invalid_argument on size mismatches or coordinates
/// outside [0, 1).
[[nodiscard]] HybridOverlay build_hybrid_overlay(const graph::Graph& acceptance,
                                                 const GlobalRanking& ranking,
                                                 const std::vector<double>& coordinates,
                                                 const HybridConfig& config);

/// Structural comparison used by the streaming bench: largest-component
/// diameter of a collaboration graph, or SIZE_MAX when the graph has no
/// edges at all.
[[nodiscard]] std::size_t largest_component_diameter(const graph::Graph& g);

}  // namespace strat::core
