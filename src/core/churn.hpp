// Continuous churn simulation (§3, Figure 3).
//
// Peers can be removed or introduced at any time, governed by a churn
// rate: at each initiative step, an independent Bernoulli(rate) trial
// decides whether a churn event occurs first. The default event is a
// *replacement* (one uniformly random active peer departs and one fresh
// peer arrives), which keeps the population size stationary and matches
// the paper's "x/1000" rate notation for n = 1000; removal-only and
// arrival-only events are available for the ablation bench.
//
// Arrivals draw a fresh uniform intrinsic score and connect to each
// active peer independently with the Erdős–Rényi edge probability, so
// the acceptance graph stays G(n, d)-distributed under churn. Disorder
// is measured against the *instant* stable configuration of the current
// population, recomputed at sampling points.
#pragma once

#include <cstddef>
#include <vector>

#include "core/acceptance.hpp"
#include "core/dynamics.hpp"
#include "core/initiative.hpp"
#include "core/matching.hpp"
#include "core/ranking.hpp"
#include "graph/rng.hpp"

namespace strat::core {

/// What a churn event does to the population.
enum class ChurnKind {
  kReplacement,  // departure + arrival (stationary n)
  kRemovalOnly,
  kArrivalOnly,
};

/// Parameters of a churn run.
struct ChurnParams {
  std::size_t initial_peers = 1000;
  double expected_degree = 10.0;  // ER acceptance-graph mean degree
  std::uint32_t capacity = 1;     // b(p), uniform
  double churn_rate = 0.01;       // events per initiative step
  ChurnKind kind = ChurnKind::kReplacement;
  Strategy strategy = Strategy::kBestMate;
};

/// Churn simulator over a growing id space (departed peers become
/// inactive ghosts; arrivals get fresh ids).
class ChurnSimulator {
 public:
  ChurnSimulator(const ChurnParams& params, graph::Rng& rng);

  /// One step: maybe a churn event, then one random-active-peer
  /// initiative. Returns true iff the initiative was active.
  bool step();

  /// Runs `units` base units (initial_peers initiatives each), sampling
  /// disorder vs the instant stable configuration `samples_per_unit`
  /// times per unit.
  std::vector<TrajectoryPoint> run(double units, std::size_t samples_per_unit = 4);

  /// Disorder vs the instant stable configuration (recomputed now).
  [[nodiscard]] double instant_disorder() const;

  /// Currently active peers.
  [[nodiscard]] std::size_t active_count() const noexcept { return active_.size(); }

  /// Total arrivals (excluding the initial population) so far.
  [[nodiscard]] std::size_t arrivals() const noexcept { return arrivals_; }

  /// Total departures so far.
  [[nodiscard]] std::size_t departures() const noexcept { return departures_; }

  [[nodiscard]] const Matching& current() const noexcept { return matching_; }
  [[nodiscard]] const GlobalRanking& ranking() const noexcept { return ranking_; }
  [[nodiscard]] const std::vector<PeerId>& active() const noexcept { return active_; }

 private:
  void churn_event();
  void remove_random_peer();
  void add_peer();

  ChurnParams params_;
  graph::Rng& rng_;
  GlobalRanking ranking_;
  ExplicitAcceptance acceptance_;
  Matching matching_;
  std::vector<PeerId> active_;         // dense list for uniform sampling
  std::vector<std::size_t> active_ix_; // id -> index in active_, or npos
  std::vector<std::size_t> cursors_;
  std::size_t arrivals_ = 0;
  std::size_t departures_ = 0;
  std::size_t initiatives_ = 0;
};

}  // namespace strat::core
