// Global ranking S(p): every peer has a distinct intrinsic mark.
//
// The paper's model (§2) assumes a strict global utility: each peer p has
// a score S(p) (bandwidth, storage, ELO, ...) and all peers agree that
// higher-scored partners are better. Ties are excluded (§3 "Note on
// ties"); the constructor enforces distinctness.
//
// Ranks are 0-based: rank 0 is the best peer. With churn, peers may be
// appended; rank queries reflect the extended population (lazily
// recomputed), while score comparisons are always O(1).
#pragma once

#include <cstddef>
#include <vector>

#include "core/types.hpp"

namespace strat::core {

/// Strict global ranking over peers 0..n-1.
class GlobalRanking {
 public:
  /// Identity ranking on n peers: peer i has rank i (score n - i), i.e.
  /// peer 0 is best — the labelling used throughout the paper's §3–§5.
  static GlobalRanking identity(std::size_t n);

  /// Ranking from explicit scores (higher score = better peer).
  /// Throws std::invalid_argument if two scores are equal.
  static GlobalRanking from_scores(std::vector<double> scores);

  GlobalRanking() = default;

  /// Number of peers.
  [[nodiscard]] std::size_t size() const noexcept { return scores_.size(); }

  /// Intrinsic mark of peer p. Throws std::out_of_range on a bad id.
  [[nodiscard]] double score(PeerId p) const { return scores_.at(p); }

  /// True iff peer a is strictly better than peer b (higher score).
  /// Unchecked (hot path): both ids must be < size().
  [[nodiscard]] bool prefers(PeerId a, PeerId b) const noexcept {
    return scores_[a] > scores_[b];
  }

  /// 0-based rank of p (0 = best). O(1) after an internal O(n log n)
  /// refresh when the population changed since the last rank query.
  [[nodiscard]] Rank rank_of(PeerId p) const;

  /// Peer holding rank r.
  [[nodiscard]] PeerId peer_at(Rank r) const;

  /// Appends one peer with the given score; returns its id.
  /// Throws std::invalid_argument if the score collides with an
  /// existing one.
  PeerId append(double score);

  /// All scores, indexed by peer id.
  [[nodiscard]] const std::vector<double>& scores() const noexcept { return scores_; }

 private:
  void refresh() const;

  std::vector<double> scores_;
  mutable std::vector<Rank> rank_of_;    // peer -> rank
  mutable std::vector<PeerId> peer_at_;  // rank -> peer
  mutable bool dirty_ = false;
};

}  // namespace strat::core
