// Shared identifiers for the matching core.
#pragma once

#include <cstdint>
#include <limits>

namespace strat::core {

/// Dense 0-based peer identifier. With a static population the library
/// conventionally uses id == rank (peer 0 is the best peer); under churn
/// ids are arrival order and ranks are derived from scores.
using PeerId = std::uint32_t;

/// Sentinel "no peer" value.
inline constexpr PeerId kNoPeer = std::numeric_limits<PeerId>::max();

/// 0-based rank: 0 is the best peer, n-1 the worst.
using Rank = std::uint32_t;

}  // namespace strat::core
