// Convergence dynamics (§3, Figures 1 and 2).
//
// The DynamicsEngine repeats the paper's simulated process: at each step
// a peer chosen uniformly at random takes one initiative (active or
// not). A *base unit* is n successive initiatives ("one expected
// initiative per peer"); disorder is sampled at a configurable cadence
// against the (precomputed) stable configuration.
#pragma once

#include <cstddef>
#include <vector>

#include "core/acceptance.hpp"
#include "core/disorder.hpp"
#include "core/initiative.hpp"
#include "core/matching.hpp"
#include "core/ranking.hpp"
#include "core/solver.hpp"
#include "graph/rng.hpp"

namespace strat::core {

/// One sampled point of a convergence trajectory.
struct TrajectoryPoint {
  /// Elapsed initiatives divided by n ("initiatives per peer").
  double initiatives_per_peer = 0.0;
  /// Distance to the stable configuration (paper's 1-matching metric
  /// when all capacities are 1, the generalized metric otherwise).
  double disorder = 0.0;
  /// Fraction of initiatives since the previous sample that were active.
  double active_fraction = 0.0;
};

/// Drives random-peer initiatives over a fixed population.
class DynamicsEngine {
 public:
  /// The acceptance graph, ranking and capacities define the instance;
  /// the engine computes the stable configuration up front. The three
  /// references must outlive the engine.
  DynamicsEngine(const AcceptanceGraph& acc, const GlobalRanking& ranking,
                 std::vector<std::uint32_t> capacities, Strategy strategy, graph::Rng& rng);

  /// Current configuration (starts empty, C_0 = C_emptyset).
  [[nodiscard]] const Matching& current() const noexcept { return current_; }
  [[nodiscard]] Matching& current() noexcept { return current_; }

  /// Replaces the current configuration (e.g. to study recovery from a
  /// perturbed stable state, Figure 2). Throws std::invalid_argument on
  /// size or capacity mismatch.
  void set_current(Matching m);

  /// The unique stable configuration of the instance.
  [[nodiscard]] const Matching& stable() const noexcept { return stable_; }

  /// Performs one initiative by a uniformly random peer.
  /// Returns true iff it was active.
  bool step();

  /// Runs `units` base units (n initiatives each), sampling disorder
  /// `samples_per_unit` times per unit. The first returned point is the
  /// state *before* any initiative of this call.
  std::vector<TrajectoryPoint> run(double units, std::size_t samples_per_unit = 4);

  /// Runs until disorder reaches zero or `max_units` elapse; returns the
  /// number of initiatives per peer consumed (== max_units on timeout).
  double run_until_stable(double max_units);

  /// Disorder of the current configuration.
  [[nodiscard]] double disorder() const;

  /// Total initiatives taken so far.
  [[nodiscard]] std::size_t initiatives() const noexcept { return initiatives_; }

  /// Total *active* initiatives taken so far.
  [[nodiscard]] std::size_t active_initiatives() const noexcept { return active_; }

 private:
  const AcceptanceGraph& acc_;
  const GlobalRanking& ranking_;
  Strategy strategy_;
  graph::Rng& rng_;
  Matching current_;
  Matching stable_;
  std::vector<std::size_t> cursors_;
  std::size_t initiatives_ = 0;
  std::size_t active_ = 0;
  bool all_unit_capacity_ = true;
};

}  // namespace strat::core
