// Algorithm 1: the unique stable configuration under a global ranking.
//
// With a strict global ranking there are no preference cycles, so by
// Tan's criterion exactly one stable b-matching exists (§3). It is
// computed greedily: the best peer picks its best b(p1) acceptable
// peers, the second best follows with whatever slots remain, and so on.
//
// Two code paths:
//  * generic, for any AcceptanceGraph: O(sum_p degree_acc(p));
//  * complete-graph fast path using an ordered free list: O(n + B)
//    where B = sum_p b(p), which makes the n ~ 10^5..10^6 cluster
//    studies of §4 (Table 1, Figure 6) cheap.
#pragma once

#include <cstddef>
#include <vector>

#include "core/acceptance.hpp"
#include "core/matching.hpp"
#include "core/ranking.hpp"

namespace strat::core {

/// Result of running Algorithm 1.
struct SolveStats {
  /// Collaborations established (== matching.connection_count()).
  std::size_t connections = 0;
  /// Slots left unfilled across all peers (the paper notes the worst
  /// peers may not satisfy all their connections).
  std::size_t unfilled_slots = 0;
};

/// Computes the unique stable configuration for `capacities` over `acc`.
/// `matching` is cleared and refilled; returns stats.
/// Throws std::invalid_argument if sizes disagree.
SolveStats stable_configuration(const AcceptanceGraph& acc, const GlobalRanking& ranking,
                                Matching& matching);

/// Convenience overload constructing the matching.
[[nodiscard]] Matching stable_configuration(const AcceptanceGraph& acc,
                                            const GlobalRanking& ranking,
                                            std::vector<std::uint32_t> capacities);

/// Fast path for the complete acceptance graph (§4): peers in rank order
/// take the nearest lower-ranked available peers. `capacities[i]` is
/// b(peer with rank i); the returned mate lists use rank ids (peer id ==
/// rank, i.e. the identity ranking convention).
/// O(n + B) time, O(n) memory; never materializes the K_n graph.
[[nodiscard]] Matching stable_configuration_complete(const std::vector<std::uint32_t>& capacities);

}  // namespace strat::core
