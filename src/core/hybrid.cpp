#include "core/hybrid.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "core/solver.hpp"
#include "graph/components.hpp"

namespace strat::core {

double ring_distance(double x, double y) {
  const double direct = std::abs(x - y);
  return std::min(direct, 1.0 - direct);
}

std::vector<WeightedEdge> latency_edges(const graph::Graph& acceptance,
                                        const std::vector<double>& coordinates) {
  if (coordinates.size() != acceptance.order()) {
    throw std::invalid_argument("latency_edges: one coordinate per peer required");
  }
  for (double c : coordinates) {
    if (c < 0.0 || c >= 1.0) throw std::invalid_argument("latency_edges: coordinate in [0,1)");
  }
  std::vector<WeightedEdge> edges;
  edges.reserve(acceptance.size());
  for (graph::Vertex u = 0; u < acceptance.order(); ++u) {
    for (graph::Vertex v : acceptance.neighbors(u)) {
      if (v <= u) continue;
      WeightedEdge e;
      e.a = u;
      e.b = v;
      // Deterministic per-pair jitter keeps weights strictly distinct
      // even for symmetric coordinate layouts.
      const double jitter =
          1e-12 * static_cast<double>((static_cast<std::uint64_t>(u) << 20) ^ v);
      e.weight = -(ring_distance(coordinates[u], coordinates[v]) + jitter);
      edges.push_back(e);
    }
  }
  return edges;
}

HybridOverlay build_hybrid_overlay(const graph::Graph& acceptance, const GlobalRanking& ranking,
                                   const std::vector<double>& coordinates,
                                   const HybridConfig& config) {
  const std::size_t n = acceptance.order();
  if (ranking.size() < n) throw std::invalid_argument("build_hybrid_overlay: ranking too small");
  const ExplicitAcceptance acc(acceptance, ranking);

  HybridOverlay overlay{
      stable_configuration(acc, ranking, std::vector<std::uint32_t>(n, config.rank_slots)),
      stable_symmetric_matching(latency_edges(acceptance, coordinates),
                                std::vector<std::uint32_t>(n, config.proximity_slots)),
      graph::Graph(n)};

  for (PeerId p = 0; p < n; ++p) {
    for (PeerId q : overlay.rank_matching.mates(p)) {
      if (q > p) overlay.combined.add_edge(p, q);
    }
    for (PeerId q : overlay.proximity_matching.mates(p)) {
      if (q > p && !overlay.combined.has_edge(p, q)) overlay.combined.add_edge(p, q);
    }
  }
  overlay.combined.finalize();
  return overlay;
}

std::size_t largest_component_diameter(const graph::Graph& g) {
  if (g.size() == 0) return std::numeric_limits<std::size_t>::max();
  const graph::Components comps = graph::connected_components(g);
  // Identify the largest component's label.
  std::uint32_t best_label = 0;
  for (std::uint32_t c = 0; c < comps.count(); ++c) {
    if (comps.size[c] > comps.size[best_label]) best_label = c;
  }
  // Run BFS from every member; track the eccentricity maximum.
  std::size_t diameter = 0;
  for (graph::Vertex u = 0; u < g.order(); ++u) {
    if (comps.label[u] != best_label) continue;
    const auto dist = graph::bfs_distances(g, u);
    for (graph::Vertex v = 0; v < g.order(); ++v) {
      if (comps.label[v] == best_label && dist[v] != std::numeric_limits<std::size_t>::max()) {
        diameter = std::max(diameter, dist[v]);
      }
    }
  }
  return diameter;
}

}  // namespace strat::core
