// Acceptance graphs: who may collaborate with whom (§2).
//
// A pair (p, q) is in the acceptance graph iff both peers are willing to
// collaborate; acceptability is symmetric. Two implementations:
//
//  * ExplicitAcceptance — wraps an arbitrary undirected graph (e.g. an
//    Erdős–Rényi sample) and keeps each peer's acceptable list in
//    *preference order* (best first, per the global ranking), which is
//    what every initiative strategy scans. Mutable, to support churn.
//
//  * CompleteAcceptance — the §4 toy model where everybody accepts
//    everybody, stored implicitly in O(1) memory.
//
// The interface exposes index-based access in preference order so the
// strategies (best-mate / decremental / random) need no allocation.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "core/ranking.hpp"
#include "core/types.hpp"
#include "graph/graph.hpp"

namespace strat::core {

/// Abstract symmetric acceptance relation with preference-ordered access.
class AcceptanceGraph {
 public:
  virtual ~AcceptanceGraph() = default;

  /// Number of peers.
  [[nodiscard]] virtual std::size_t size() const = 0;

  /// Symmetric acceptability test; false for p == q.
  [[nodiscard]] virtual bool accepts(PeerId p, PeerId q) const = 0;

  /// Number of peers acceptable to p.
  [[nodiscard]] virtual std::size_t degree(PeerId p) const = 0;

  /// i-th acceptable peer of p in preference order (0 = most preferred).
  /// Requires i < degree(p).
  [[nodiscard]] virtual PeerId neighbor(PeerId p, std::size_t i) const = 0;
};

/// Acceptance relation backed by an explicit graph, preference-ordered.
///
/// Holds a non-owning pointer to the ranking used for ordering; the
/// ranking must outlive this object. Supports the mutations churn needs.
class ExplicitAcceptance final : public AcceptanceGraph {
 public:
  /// Builds from an undirected graph; vertex v of `g` is peer v.
  /// Sorts every adjacency list by preference (O(E log d)).
  ExplicitAcceptance(const graph::Graph& g, const GlobalRanking& ranking);

  [[nodiscard]] std::size_t size() const override { return ordered_.size(); }
  [[nodiscard]] bool accepts(PeerId p, PeerId q) const override;
  [[nodiscard]] std::size_t degree(PeerId p) const override { return ordered_[p].size(); }
  [[nodiscard]] PeerId neighbor(PeerId p, std::size_t i) const override {
    return ordered_[p][i];
  }

  /// Adds a mutual acceptance edge, keeping both lists preference-sorted.
  /// Throws std::invalid_argument on loops, out-of-range ids, or
  /// duplicate edges.
  void add_edge(PeerId p, PeerId q);

  /// Removes all of p's acceptances (both directions). Used on departure.
  void isolate(PeerId p);

  /// Appends one fresh peer with no acceptances; returns its id. The
  /// ranking must already contain a score for it.
  PeerId add_peer();

  /// Preference-ordered acceptable list of p (best first).
  [[nodiscard]] const std::vector<PeerId>& ordered_neighbors(PeerId p) const {
    return ordered_[p];
  }

 private:
  const GlobalRanking* ranking_;  // non-owning; must outlive *this
  std::vector<std::vector<PeerId>> ordered_;
};

/// Implicit complete acceptance graph on n peers (§4 toy model).
///
/// Preference order is simply rank order with self skipped.
class CompleteAcceptance final : public AcceptanceGraph {
 public:
  CompleteAcceptance(std::size_t n, const GlobalRanking& ranking);

  [[nodiscard]] std::size_t size() const override { return n_; }
  [[nodiscard]] bool accepts(PeerId p, PeerId q) const override {
    return p != q && p < n_ && q < n_;
  }
  [[nodiscard]] std::size_t degree(PeerId p) const override;
  [[nodiscard]] PeerId neighbor(PeerId p, std::size_t i) const override;

 private:
  std::size_t n_;
  const GlobalRanking* ranking_;  // non-owning; must outlive *this
};

}  // namespace strat::core
