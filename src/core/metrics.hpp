// Stratification metrics (§4): collaboration-graph clustering and the
// Mean Max Offset (MMO).
//
// The *collaboration graph* is the configuration viewed as a plain
// undirected graph. Clustering = its connected components. The MMO is
// the mean, over matched peers, of the largest rank offset between a
// peer and any of its direct collaborators; small MMO with large
// clusters is exactly the paper's "stratification": everyone is in one
// component but only collaborates with peers of nearly equal rank.
#pragma once

#include <cstddef>
#include <vector>

#include "core/matching.hpp"
#include "core/ranking.hpp"
#include "graph/components.hpp"
#include "graph/graph.hpp"

namespace strat::core {

/// Exports a configuration as an undirected graph (vertex = peer id).
[[nodiscard]] graph::Graph collaboration_graph(const Matching& m);

/// Cluster statistics of a configuration.
struct ClusterStats {
  std::size_t components = 0;       // including isolated peers
  std::size_t largest = 0;
  double mean_size = 0.0;           // components-averaged
  double vertex_mean_size = 0.0;    // peer-experienced average (Table 1)
  std::size_t isolated_peers = 0;   // peers with no collaboration
};

[[nodiscard]] ClusterStats cluster_stats(const Matching& m);

/// Max rank offset of peer p to its direct mates; 0 if unmatched.
[[nodiscard]] std::size_t max_offset(const Matching& m, const GlobalRanking& ranking, PeerId p);

/// Mean Max Offset over *matched* peers; 0 if nobody is matched.
[[nodiscard]] double mean_max_offset(const Matching& m, const GlobalRanking& ranking);

/// Closed-form MMO of constant b0-matching on a complete acceptance
/// graph (§4.2): the stable configuration is disjoint K_{b0+1} clusters,
/// so MMO = (1/(b0+1)) * sum_{j=1}^{b0+1} max(j-1, b0+1-j) -> (3/4) b0.
/// Throws std::invalid_argument for b0 == 0.
[[nodiscard]] double mmo_closed_form(std::size_t b0);

/// Mean |rank(p) - rank(mate)| over all collaborations (both directions
/// averaged once per edge). A direct stratification-width measure.
[[nodiscard]] double mean_abs_offset(const Matching& m, const GlobalRanking& ranking);

/// Per-peer stratification profile: for each peer (by rank order), the
/// mean rank of its mates, or -1 when unmatched. Used by example apps.
[[nodiscard]] std::vector<double> mate_rank_profile(const Matching& m,
                                                    const GlobalRanking& ranking);

}  // namespace strat::core
