#include "core/metrics.hpp"

#include <algorithm>
#include <stdexcept>

namespace strat::core {

graph::Graph collaboration_graph(const Matching& m) {
  graph::Graph g(m.size());
  for (PeerId p = 0; p < m.size(); ++p) {
    for (PeerId q : m.mates(p)) {
      if (q > p) g.add_edge(p, q);
    }
  }
  g.finalize();
  return g;
}

ClusterStats cluster_stats(const Matching& m) {
  const graph::Graph g = collaboration_graph(m);
  const graph::Components comps = graph::connected_components(g);
  ClusterStats out;
  out.components = comps.count();
  out.largest = comps.largest();
  out.mean_size = comps.mean_size();
  out.vertex_mean_size = comps.vertex_mean_size();
  for (PeerId p = 0; p < m.size(); ++p) {
    if (m.degree(p) == 0) ++out.isolated_peers;
  }
  return out;
}

std::size_t max_offset(const Matching& m, const GlobalRanking& ranking, PeerId p) {
  std::size_t best = 0;
  const auto rp = static_cast<long>(ranking.rank_of(p));
  for (PeerId q : m.mates(p)) {
    const auto rq = static_cast<long>(ranking.rank_of(q));
    best = std::max(best, static_cast<std::size_t>(std::abs(rp - rq)));
  }
  return best;
}

double mean_max_offset(const Matching& m, const GlobalRanking& ranking) {
  double sum = 0.0;
  std::size_t matched = 0;
  for (PeerId p = 0; p < m.size(); ++p) {
    if (m.degree(p) == 0) continue;
    sum += static_cast<double>(max_offset(m, ranking, p));
    ++matched;
  }
  return matched == 0 ? 0.0 : sum / static_cast<double>(matched);
}

double mmo_closed_form(std::size_t b0) {
  if (b0 == 0) throw std::invalid_argument("mmo_closed_form: b0 must be >= 1");
  const std::size_t cluster = b0 + 1;
  std::size_t sum = 0;
  for (std::size_t j = 1; j <= cluster; ++j) sum += std::max(j - 1, cluster - j);
  return static_cast<double>(sum) / static_cast<double>(cluster);
}

double mean_abs_offset(const Matching& m, const GlobalRanking& ranking) {
  double sum = 0.0;
  std::size_t edges = 0;
  for (PeerId p = 0; p < m.size(); ++p) {
    const auto rp = static_cast<long>(ranking.rank_of(p));
    for (PeerId q : m.mates(p)) {
      if (q <= p) continue;
      const auto rq = static_cast<long>(ranking.rank_of(q));
      sum += static_cast<double>(std::abs(rp - rq));
      ++edges;
    }
  }
  return edges == 0 ? 0.0 : sum / static_cast<double>(edges);
}

std::vector<double> mate_rank_profile(const Matching& m, const GlobalRanking& ranking) {
  std::vector<double> profile(m.size(), -1.0);
  for (Rank r = 0; r < m.size(); ++r) {
    const PeerId p = ranking.peer_at(r);
    const auto mates = m.mates(p);
    if (mates.empty()) continue;
    double sum = 0.0;
    for (PeerId q : mates) sum += static_cast<double>(ranking.rank_of(q));
    profile[r] = sum / static_cast<double>(mates.size());
  }
  return profile;
}

}  // namespace strat::core
