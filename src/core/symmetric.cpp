#include "core/symmetric.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

namespace strat::core {

namespace {

std::uint64_t pair_key(PeerId a, PeerId b) {
  if (a > b) std::swap(a, b);
  return (static_cast<std::uint64_t>(a) << 32) | b;
}

void validate_edges(const std::vector<WeightedEdge>& edges, std::size_t n) {
  std::unordered_set<std::uint64_t> pairs;
  std::unordered_set<double> weights;
  pairs.reserve(edges.size());
  weights.reserve(edges.size());
  for (const WeightedEdge& e : edges) {
    if (e.a == e.b) throw std::invalid_argument("symmetric matching: loop edge");
    if (e.a >= n || e.b >= n) throw std::invalid_argument("symmetric matching: bad peer id");
    if (!pairs.insert(pair_key(e.a, e.b)).second) {
      throw std::invalid_argument("symmetric matching: duplicate pair");
    }
    if (!weights.insert(e.weight).second) {
      throw std::invalid_argument("symmetric matching: duplicate weight (ties excluded)");
    }
  }
}

std::unordered_map<std::uint64_t, double> weight_map(const std::vector<WeightedEdge>& edges) {
  std::unordered_map<std::uint64_t, double> w;
  w.reserve(edges.size());
  for (const WeightedEdge& e : edges) w[pair_key(e.a, e.b)] = e.weight;
  return w;
}

}  // namespace

Matching stable_symmetric_matching(std::vector<WeightedEdge> edges,
                                   const std::vector<std::uint32_t>& capacities) {
  const std::size_t n = capacities.size();
  validate_edges(edges, n);
  std::sort(edges.begin(), edges.end(),
            [](const WeightedEdge& x, const WeightedEdge& y) { return x.weight > y.weight; });
  Matching m{std::vector<std::uint32_t>(capacities)};
  // Matching's internal ordering needs *some* strict ranking; mate-list
  // order is documented as by-id here.
  const GlobalRanking id_order = GlobalRanking::identity(n);
  for (const WeightedEdge& e : edges) {
    if (!m.is_full(e.a) && !m.is_full(e.b)) m.connect(e.a, e.b, id_order);
  }
  return m;
}

PreferenceSystem preferences_from_weights(const std::vector<WeightedEdge>& edges, std::size_t n) {
  validate_edges(edges, n);
  std::vector<std::vector<std::pair<double, PeerId>>> ranked(n);
  for (const WeightedEdge& e : edges) {
    ranked[e.a].emplace_back(e.weight, e.b);
    ranked[e.b].emplace_back(e.weight, e.a);
  }
  PreferenceSystem prefs(n);
  for (PeerId p = 0; p < n; ++p) {
    std::sort(ranked[p].begin(), ranked[p].end(),
              [](const auto& x, const auto& y) { return x.first > y.first; });
    prefs[p].reserve(ranked[p].size());
    for (const auto& [w, q] : ranked[p]) prefs[p].push_back(q);
  }
  return prefs;
}

namespace {

bool blocking_with_map(const std::unordered_map<std::uint64_t, double>& weights,
                       const Matching& m, PeerId p, PeerId q) {
  if (p == q) return false;
  const auto it = weights.find(pair_key(p, q));
  if (it == weights.end()) return false;  // not acceptable
  if (m.are_matched(p, q)) return false;
  const double w_pq = it->second;
  auto wishes = [&](PeerId owner) {
    if (!m.is_full(owner)) return true;
    // Full: wishes iff some current mate is connected by a lighter edge.
    for (PeerId mate : m.mates(owner)) {
      const auto found = weights.find(pair_key(owner, mate));
      if (found != weights.end() && found->second < w_pq) return true;
    }
    return false;
  };
  return wishes(p) && wishes(q);
}

}  // namespace

bool is_symmetric_blocking_pair(const std::vector<WeightedEdge>& edges, const Matching& m,
                                PeerId p, PeerId q) {
  return blocking_with_map(weight_map(edges), m, p, q);
}

bool is_symmetric_stable(const std::vector<WeightedEdge>& edges, const Matching& m) {
  const auto weights = weight_map(edges);
  for (const WeightedEdge& e : edges) {
    if (blocking_with_map(weights, m, e.a, e.b)) return false;
  }
  return true;
}

}  // namespace strat::core
