// Blocking pairs and stability (§2).
//
// A blocking pair is two acceptable, unmatched peers who each either
// have a free slot or prefer the other to their worst current mate. A
// configuration with no blocking pair is stable — a Nash equilibrium.
#pragma once

#include <optional>
#include <utility>
#include <vector>

#include "core/acceptance.hpp"
#include "core/matching.hpp"
#include "core/ranking.hpp"

namespace strat::core {

/// True iff q would accept a (new) collaboration with p: q has a free
/// slot, or q strictly prefers p to its worst current mate.
[[nodiscard]] bool wishes(const Matching& m, const GlobalRanking& ranking, PeerId q, PeerId p);

/// True iff {p, q} is a blocking pair of `m` under `acc`/`ranking`.
[[nodiscard]] bool is_blocking_pair(const AcceptanceGraph& acc, const GlobalRanking& ranking,
                                    const Matching& m, PeerId p, PeerId q);

/// Establishes the collaboration {p, q}, dropping each side's worst
/// current mate first if it has no free slot (the §2 "even if it means
/// dropping one of their current collaborations" semantics).
/// Precondition: is_blocking_pair(p, q) — not re-checked here.
void execute_blocking_pair(const GlobalRanking& ranking, Matching& m, PeerId p, PeerId q);

/// Finds any blocking pair, or nullopt if the configuration is stable.
/// O(sum_p degree_acc(p) ) worst case.
[[nodiscard]] std::optional<std::pair<PeerId, PeerId>> find_blocking_pair(
    const AcceptanceGraph& acc, const GlobalRanking& ranking, const Matching& m);

/// Lists every blocking pair (p < q by id). Intended for tests/metrics.
[[nodiscard]] std::vector<std::pair<PeerId, PeerId>> all_blocking_pairs(
    const AcceptanceGraph& acc, const GlobalRanking& ranking, const Matching& m);

/// True iff the configuration admits no blocking pair.
[[nodiscard]] bool is_stable(const AcceptanceGraph& acc, const GlobalRanking& ranking,
                             const Matching& m);

}  // namespace strat::core
