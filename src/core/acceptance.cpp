#include "core/acceptance.hpp"

#include <algorithm>
#include <stdexcept>

namespace strat::core {

ExplicitAcceptance::ExplicitAcceptance(const graph::Graph& g, const GlobalRanking& ranking)
    : ranking_(&ranking) {
  if (g.order() > ranking.size()) {
    throw std::invalid_argument("ExplicitAcceptance: graph larger than ranking");
  }
  ordered_.resize(g.order());
  for (PeerId p = 0; p < g.order(); ++p) {
    const auto nbrs = g.neighbors(p);
    ordered_[p].assign(nbrs.begin(), nbrs.end());
    std::sort(ordered_[p].begin(), ordered_[p].end(),
              [&](PeerId a, PeerId b) { return ranking.prefers(a, b); });
  }
}

bool ExplicitAcceptance::accepts(PeerId p, PeerId q) const {
  if (p == q || p >= size() || q >= size()) return false;
  // Scan the shorter list; they are preference-sorted, not id-sorted,
  // so use a preference-ordered binary search.
  const auto& list = ordered_[p].size() <= ordered_[q].size() ? ordered_[p] : ordered_[q];
  const PeerId needle = ordered_[p].size() <= ordered_[q].size() ? q : p;
  auto it = std::lower_bound(list.begin(), list.end(), needle, [&](PeerId a, PeerId b) {
    return ranking_->prefers(a, b);
  });
  return it != list.end() && *it == needle;
}

void ExplicitAcceptance::add_edge(PeerId p, PeerId q) {
  if (p == q) throw std::invalid_argument("ExplicitAcceptance::add_edge: loop");
  if (p >= size() || q >= size()) {
    throw std::invalid_argument("ExplicitAcceptance::add_edge: peer out of range");
  }
  if (accepts(p, q)) throw std::invalid_argument("ExplicitAcceptance::add_edge: duplicate");
  auto insert_sorted = [&](PeerId owner, PeerId other) {
    auto& list = ordered_[owner];
    auto it = std::lower_bound(list.begin(), list.end(), other, [&](PeerId a, PeerId b) {
      return ranking_->prefers(a, b);
    });
    list.insert(it, other);
  };
  insert_sorted(p, q);
  insert_sorted(q, p);
}

void ExplicitAcceptance::isolate(PeerId p) {
  if (p >= size()) throw std::invalid_argument("ExplicitAcceptance::isolate: out of range");
  for (PeerId q : ordered_[p]) {
    auto& list = ordered_[q];
    list.erase(std::remove(list.begin(), list.end(), p), list.end());
  }
  ordered_[p].clear();
}

PeerId ExplicitAcceptance::add_peer() {
  // Callers append the new peer's score to the ranking first, so the
  // ranking must already cover the id we are about to hand out.
  if (ordered_.size() >= ranking_->size()) {
    throw std::invalid_argument("ExplicitAcceptance::add_peer: append the score first");
  }
  ordered_.emplace_back();
  return static_cast<PeerId>(ordered_.size() - 1);
}

CompleteAcceptance::CompleteAcceptance(std::size_t n, const GlobalRanking& ranking)
    : n_(n), ranking_(&ranking) {
  if (n > ranking.size()) {
    throw std::invalid_argument("CompleteAcceptance: n larger than ranking");
  }
}

std::size_t CompleteAcceptance::degree(PeerId p) const {
  if (p >= n_) throw std::out_of_range("CompleteAcceptance::degree: bad peer");
  return n_ == 0 ? 0 : n_ - 1;
}

PeerId CompleteAcceptance::neighbor(PeerId p, std::size_t i) const {
  if (p >= n_ || i + 1 >= n_ + 1 || i >= degree(p)) {
    throw std::out_of_range("CompleteAcceptance::neighbor: bad index");
  }
  const Rank own = ranking_->rank_of(p);
  const Rank r = i < own ? static_cast<Rank>(i) : static_cast<Rank>(i + 1);
  return ranking_->peer_at(r);
}

}  // namespace strat::core
