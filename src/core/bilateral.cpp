#include "core/bilateral.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>

namespace strat::core {

std::size_t BilateralAssignment::connection_count() const {
  std::size_t total = 0;
  for (const auto& list : serves) total += list.size();
  return total;
}

namespace {

std::uint64_t mix(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return x;
}

}  // namespace

double server_priority(const GlobalRanking& ranking, ServerPolicy policy, std::uint64_t salt,
                       PeerId server, PeerId client) {
  if (policy == ServerPolicy::kGlobalRank) return ranking.score(client);
  const std::uint64_t h =
      mix(salt ^ (static_cast<std::uint64_t>(server) << 32) ^ static_cast<std::uint64_t>(client));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

BilateralAssignment bilateral_assignment(const AcceptanceGraph& acc,
                                         const GlobalRanking& ranking,
                                         const BilateralConfig& config, graph::Rng& rng) {
  if (config.upload_slots == 0 || config.download_slots == 0) {
    throw std::invalid_argument("bilateral_assignment: slot counts must be >= 1");
  }
  const std::size_t n = acc.size();
  BilateralAssignment out;
  out.serves.resize(n);
  out.sources.resize(n);
  out.priority_salt = rng();

  auto priority = [&](PeerId server, PeerId client) {
    return server_priority(ranking, config.policy, out.priority_salt, server, client);
  };

  // Deferred acceptance: clients walk their preference-ordered source
  // lists (best source first); servers keep the top `upload_slots`
  // proposals by priority and bump the weakest on overflow.
  std::vector<std::size_t> cursor(n, 0);
  std::deque<PeerId> pending;
  for (PeerId p = 0; p < n; ++p) pending.push_back(p);

  while (!pending.empty()) {
    const PeerId p = pending.front();
    pending.pop_front();
    while (out.sources[p].size() < config.download_slots && cursor[p] < acc.degree(p)) {
      const PeerId q = acc.neighbor(p, cursor[p]++);
      auto& accepted = out.serves[q];
      if (accepted.size() < config.upload_slots) {
        accepted.push_back(p);
        out.sources[p].push_back(q);
        continue;
      }
      // Find the weakest currently accepted client of q.
      std::size_t weakest = 0;
      for (std::size_t i = 1; i < accepted.size(); ++i) {
        if (priority(q, accepted[i]) < priority(q, accepted[weakest])) weakest = i;
      }
      if (priority(q, p) > priority(q, accepted[weakest])) {
        const PeerId bumped = accepted[weakest];
        accepted[weakest] = p;
        out.sources[p].push_back(q);
        auto& bumped_sources = out.sources[bumped];
        bumped_sources.erase(std::find(bumped_sources.begin(), bumped_sources.end(), q));
        pending.push_back(bumped);  // resumes from its cursor
      }
      // else: rejected; continue down the list.
    }
  }
  return out;
}

bool bilateral_is_stable(const AcceptanceGraph& acc, const GlobalRanking& ranking,
                         const BilateralConfig& config, const BilateralAssignment& assignment) {
  const std::size_t n = acc.size();
  auto priority = [&](PeerId server, PeerId client) {
    return server_priority(ranking, config.policy, assignment.priority_salt, server, client);
  };
  for (PeerId p = 0; p < n; ++p) {
    // The worst current source of p by client preference (global score).
    const auto& sources = assignment.sources[p];
    const bool client_has_room = sources.size() < config.download_slots;
    PeerId worst_source = kNoPeer;
    for (PeerId s : sources) {
      if (worst_source == kNoPeer || ranking.prefers(worst_source, s)) worst_source = s;
    }
    for (std::size_t i = 0; i < acc.degree(p); ++i) {
      const PeerId q = acc.neighbor(p, i);
      if (std::find(sources.begin(), sources.end(), q) != sources.end()) continue;
      const bool client_wants =
          client_has_room || (worst_source != kNoPeer && ranking.prefers(q, worst_source));
      if (!client_wants) continue;
      const auto& accepted = assignment.serves[q];
      bool server_wants = accepted.size() < config.upload_slots;
      if (!server_wants) {
        for (PeerId c : accepted) {
          if (priority(q, p) > priority(q, c)) {
            server_wants = true;
            break;
          }
        }
      }
      if (server_wants) return false;
    }
  }
  return true;
}

std::vector<double> bilateral_download(const BilateralAssignment& assignment,
                                       const std::vector<double>& per_slot_weight) {
  if (per_slot_weight.size() != assignment.size()) {
    throw std::invalid_argument("bilateral_download: weight per peer required");
  }
  std::vector<double> download(assignment.size(), 0.0);
  for (PeerId p = 0; p < assignment.size(); ++p) {
    for (PeerId q : assignment.sources[p]) download[p] += per_slot_weight[q];
  }
  return download;
}

}  // namespace strat::core
