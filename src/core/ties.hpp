// Ties in the global ranking (§3 "Note on ties").
//
// The paper excludes ties from the equations (stable matchings with
// ties are hard: existence is not even guaranteed) but reports that
// "simulations have shown our results hold if we allow ties". This
// module provides the machinery for those simulations: quantize the
// intrinsic scores into discrete levels (peers inside a level are
// genuinely tied), break the ties deterministically by id to obtain a
// strict ranking the solver can use, and check the *weak* stability of
// the result — no pair may exist where BOTH sides strictly improve
// across tie levels.
#pragma once

#include <cstdint>
#include <vector>

#include "core/acceptance.hpp"
#include "core/matching.hpp"
#include "core/ranking.hpp"

namespace strat::core {

/// A quantized score system: the strict tie-broken ranking plus each
/// peer's tie level (level 0 = best).
struct TieLevels {
  GlobalRanking ranking;             // strict, ties broken by id
  std::vector<std::uint32_t> level;  // peer -> tie class
  std::size_t levels = 0;            // number of distinct classes

  /// Strictly-better comparison across tie classes.
  [[nodiscard]] bool strictly_prefers(PeerId a, PeerId b) const {
    return level[a] < level[b];
  }
};

/// Quantizes `scores` into at most `levels` equal-width classes over
/// the score range (higher score = better = lower level index), then
/// breaks ties by id (smaller id preferred). Throws
/// std::invalid_argument for empty scores or levels == 0.
[[nodiscard]] TieLevels quantize_scores(const std::vector<double>& scores, std::size_t levels);

/// True iff {p, q} is a *strictly* blocking pair under tie levels:
/// acceptable, unmatched, and each side has a free slot or a current
/// worst mate in a strictly worse tie class than the other peer.
[[nodiscard]] bool is_strictly_blocking_pair(const AcceptanceGraph& acc, const TieLevels& ties,
                                             const Matching& m, PeerId p, PeerId q);

/// Weak stability: no strictly blocking pair exists. Any configuration
/// stable under a tie-breaking strict ranking is weakly stable for the
/// underlying tied preferences (the §3 simulation claim).
[[nodiscard]] bool is_weakly_stable(const AcceptanceGraph& acc, const TieLevels& ties,
                                    const Matching& m);

}  // namespace strat::core
