#include "core/blocking.hpp"

namespace strat::core {

bool wishes(const Matching& m, const GlobalRanking& ranking, PeerId q, PeerId p) {
  if (!m.is_full(q)) return true;
  return ranking.prefers(p, m.worst_mate(q));
}

bool is_blocking_pair(const AcceptanceGraph& acc, const GlobalRanking& ranking, const Matching& m,
                      PeerId p, PeerId q) {
  if (p == q) return false;
  if (!acc.accepts(p, q)) return false;
  if (m.are_matched(p, q)) return false;
  return wishes(m, ranking, p, q) && wishes(m, ranking, q, p);
}

void execute_blocking_pair(const GlobalRanking& ranking, Matching& m, PeerId p, PeerId q) {
  if (m.is_full(p)) m.disconnect(p, m.worst_mate(p));
  if (m.is_full(q)) m.disconnect(q, m.worst_mate(q));
  m.connect(p, q, ranking);
}

std::optional<std::pair<PeerId, PeerId>> find_blocking_pair(const AcceptanceGraph& acc,
                                                            const GlobalRanking& ranking,
                                                            const Matching& m) {
  for (PeerId p = 0; p < acc.size(); ++p) {
    const std::size_t deg = acc.degree(p);
    for (std::size_t i = 0; i < deg; ++i) {
      const PeerId q = acc.neighbor(p, i);
      // Preference-ordered scan: once p itself no longer wishes q (q is
      // no better than p's worst mate and p is full), later neighbors
      // are even worse — stop.
      if (!wishes(m, ranking, p, q)) break;
      if (!m.are_matched(p, q) && wishes(m, ranking, q, p)) return std::make_pair(p, q);
    }
  }
  return std::nullopt;
}

std::vector<std::pair<PeerId, PeerId>> all_blocking_pairs(const AcceptanceGraph& acc,
                                                          const GlobalRanking& ranking,
                                                          const Matching& m) {
  std::vector<std::pair<PeerId, PeerId>> out;
  for (PeerId p = 0; p < acc.size(); ++p) {
    const std::size_t deg = acc.degree(p);
    for (std::size_t i = 0; i < deg; ++i) {
      const PeerId q = acc.neighbor(p, i);
      if (q < p) continue;  // report each pair once
      if (is_blocking_pair(acc, ranking, m, p, q)) out.emplace_back(p, q);
    }
  }
  return out;
}

bool is_stable(const AcceptanceGraph& acc, const GlobalRanking& ranking, const Matching& m) {
  return !find_blocking_pair(acc, ranking, m).has_value();
}

}  // namespace strat::core
