// Configurations (b-matchings) of the collaboration graph (§2).
//
// A Matching stores, for every peer p, its current mates sorted best
// first (by the global ranking) and its slot bound b(p). It is a pure
// data structure: preference queries that need ordering take the ranking
// explicitly, so the Matching has no hidden lifetime coupling.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/ranking.hpp"
#include "core/types.hpp"

namespace strat::core {

/// A b-matching configuration: degree(p) <= capacity(p) for all p.
class Matching {
 public:
  Matching() = default;

  /// n peers, uniform capacity b0 (the constant b0-matching of §4.1).
  Matching(std::size_t n, std::size_t b0);

  /// Per-peer capacities b(p) (the variable b-matching of §4.2).
  explicit Matching(std::vector<std::uint32_t> capacities);

  /// Number of peers.
  [[nodiscard]] std::size_t size() const noexcept { return mates_.size(); }

  /// Slot bound b(p).
  [[nodiscard]] std::uint32_t capacity(PeerId p) const { return capacities_.at(p); }

  /// Current number of mates of p.
  [[nodiscard]] std::size_t degree(PeerId p) const { return mates_.at(p).size(); }

  /// True iff p has no free slot left.
  [[nodiscard]] bool is_full(PeerId p) const { return degree(p) >= capacity(p); }

  /// Mates of p, sorted best first. Valid until the next mutation.
  [[nodiscard]] std::span<const PeerId> mates(PeerId p) const {
    const auto& m = mates_.at(p);
    return {m.data(), m.size()};
  }

  /// Worst current mate of p. Requires degree(p) > 0 (throws otherwise).
  [[nodiscard]] PeerId worst_mate(PeerId p) const;

  /// Best current mate of p. Requires degree(p) > 0 (throws otherwise).
  [[nodiscard]] PeerId best_mate(PeerId p) const;

  /// For 1-matchings: the unique mate of p, or kNoPeer if unmatched.
  [[nodiscard]] PeerId mate(PeerId p) const;

  /// True iff p and q are currently matched together.
  [[nodiscard]] bool are_matched(PeerId p, PeerId q) const;

  /// Connects p and q, keeping both mate lists preference-sorted.
  /// Throws std::invalid_argument on p == q, a full endpoint, an
  /// out-of-range id, or an already-matched pair.
  void connect(PeerId p, PeerId q, const GlobalRanking& ranking);

  /// Disconnects p and q. Throws std::invalid_argument if not matched.
  void disconnect(PeerId p, PeerId q);

  /// Drops all collaborations of p (used on departure).
  void clear_peer(PeerId p);

  /// Appends a fresh peer with the given capacity; returns its id.
  PeerId add_peer(std::uint32_t capacity);

  /// Total number of established collaborations (edges).
  [[nodiscard]] std::size_t connection_count() const noexcept { return connections_; }

  /// Sum of capacities B = sum_p b(p) (Theorem 1's bound is B/2).
  [[nodiscard]] std::size_t total_capacity() const noexcept;

  /// Internal consistency check (symmetry, bounds, sortedness).
  /// Throws std::logic_error with a description on violation.
  void validate(const GlobalRanking& ranking) const;

 private:
  std::vector<std::vector<PeerId>> mates_;  // each sorted best first
  std::vector<std::uint32_t> capacities_;
  std::size_t connections_ = 0;
};

}  // namespace strat::core
