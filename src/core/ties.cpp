#include "core/ties.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace strat::core {

TieLevels quantize_scores(const std::vector<double>& scores, std::size_t levels) {
  if (scores.empty()) throw std::invalid_argument("quantize_scores: empty scores");
  if (levels == 0) throw std::invalid_argument("quantize_scores: need >= 1 level");
  const auto [lo_it, hi_it] = std::minmax_element(scores.begin(), scores.end());
  const double lo = *lo_it;
  const double span = std::max(*hi_it - lo, 1e-300);

  TieLevels out;
  out.level.resize(scores.size());
  std::vector<double> broken(scores.size());
  std::uint32_t max_level = 0;
  for (std::size_t p = 0; p < scores.size(); ++p) {
    const double norm = (scores[p] - lo) / span;  // 0 = worst, 1 = best
    auto bucket = static_cast<std::uint32_t>(norm * static_cast<double>(levels));
    bucket = std::min<std::uint32_t>(bucket, static_cast<std::uint32_t>(levels - 1));
    // Level 0 = best class.
    out.level[p] = static_cast<std::uint32_t>(levels - 1) - bucket;
    max_level = std::max(max_level, out.level[p]);
    // Strict tie-break: inside a class, smaller id wins. The id term is
    // scaled far below one class width.
    broken[p] = static_cast<double>(levels - out.level[p]) -
                static_cast<double>(p) / (2.0 * static_cast<double>(scores.size()));
  }
  out.levels = static_cast<std::size_t>(max_level) + 1;
  out.ranking = GlobalRanking::from_scores(std::move(broken));
  return out;
}

bool is_strictly_blocking_pair(const AcceptanceGraph& acc, const TieLevels& ties,
                               const Matching& m, PeerId p, PeerId q) {
  if (p == q) return false;
  if (!acc.accepts(p, q)) return false;
  if (m.are_matched(p, q)) return false;
  auto strictly_wishes = [&](PeerId owner, PeerId other) {
    if (!m.is_full(owner)) return true;
    return ties.strictly_prefers(other, m.worst_mate(owner));
  };
  return strictly_wishes(p, q) && strictly_wishes(q, p);
}

bool is_weakly_stable(const AcceptanceGraph& acc, const TieLevels& ties, const Matching& m) {
  for (PeerId p = 0; p < acc.size(); ++p) {
    for (std::size_t i = 0; i < acc.degree(p); ++i) {
      const PeerId q = acc.neighbor(p, i);
      if (q < p) continue;
      if (is_strictly_blocking_pair(acc, ties, m, p, q)) return false;
    }
  }
  return true;
}

}  // namespace strat::core
