#include "core/churn.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <unordered_set>

#include "core/solver.hpp"
#include "graph/erdos_renyi.hpp"

namespace strat::core {

namespace {

constexpr std::size_t kNpos = std::numeric_limits<std::size_t>::max();

std::vector<double> distinct_uniform_scores(std::size_t n, graph::Rng& rng) {
  std::unordered_set<double> seen;
  std::vector<double> scores;
  scores.reserve(n);
  while (scores.size() < n) {
    const double s = rng.uniform();
    if (seen.insert(s).second) scores.push_back(s);
  }
  return scores;
}

/// Slotwise disorder restricted to the active population (generalizes
/// disorder_1matching_active to b-matchings; coincides with it at b=1).
double disorder_active(const Matching& c1, const Matching& c2, const GlobalRanking& ranking,
                       const std::vector<PeerId>& active) {
  const std::size_t n = active.size();
  if (n == 0) return 0.0;
  std::vector<PeerId> sorted = active;
  std::sort(sorted.begin(), sorted.end(),
            [&](PeerId a, PeerId b) { return ranking.prefers(a, b); });
  std::vector<std::uint32_t> active_rank(ranking.size(), 0);  // 1-based; 0 = inactive
  for (std::size_t r = 0; r < sorted.size(); ++r) {
    active_rank[sorted[r]] = static_cast<std::uint32_t>(r + 1);
  }
  const double unmatched = static_cast<double>(n + 1);
  double sum = 0.0;
  double total_capacity = 0.0;
  for (PeerId i : active) {
    const auto m1 = i < c1.size() ? c1.mates(i) : std::span<const PeerId>{};
    const auto m2 = i < c2.size() ? c2.mates(i) : std::span<const PeerId>{};
    const std::uint32_t b = std::max(i < c1.size() ? c1.capacity(i) : 0u,
                                     i < c2.size() ? c2.capacity(i) : 0u);
    total_capacity += static_cast<double>(b);
    auto slot_rank = [&](std::span<const PeerId> mates, std::size_t k) {
      if (k >= mates.size()) return unmatched;
      const std::uint32_t r = active_rank[mates[k]];
      return r == 0 ? unmatched : static_cast<double>(r);
    };
    for (std::uint32_t k = 0; k < b; ++k) {
      sum += std::abs(slot_rank(m1, k) - slot_rank(m2, k));
    }
  }
  if (total_capacity == 0.0) return 0.0;
  return sum * 2.0 / (total_capacity * static_cast<double>(n + 1));
}

}  // namespace

ChurnSimulator::ChurnSimulator(const ChurnParams& params, graph::Rng& rng)
    : params_(params),
      rng_(rng),
      ranking_(GlobalRanking::from_scores(distinct_uniform_scores(params.initial_peers, rng))),
      acceptance_(graph::erdos_renyi_gnd(params.initial_peers, params.expected_degree, rng),
                  ranking_),
      matching_(params.initial_peers, params.capacity),
      cursors_(params.initial_peers, 0) {
  if (params.initial_peers < 2) throw std::invalid_argument("ChurnSimulator: need >= 2 peers");
  if (params.churn_rate < 0.0 || params.churn_rate > 1.0) {
    throw std::invalid_argument("ChurnSimulator: churn_rate out of [0,1]");
  }
  active_.resize(params.initial_peers);
  active_ix_.resize(params.initial_peers);
  for (std::size_t i = 0; i < params.initial_peers; ++i) {
    active_[i] = static_cast<PeerId>(i);
    active_ix_[i] = i;
  }
}

void ChurnSimulator::remove_random_peer() {
  if (active_.empty()) return;
  const std::size_t idx = static_cast<std::size_t>(rng_.below(active_.size()));
  const PeerId id = active_[idx];
  matching_.clear_peer(id);
  acceptance_.isolate(id);
  // Swap-remove from the dense active list.
  active_[idx] = active_.back();
  active_ix_[active_[idx]] = idx;
  active_.pop_back();
  active_ix_[id] = kNpos;
  ++departures_;
}

void ChurnSimulator::add_peer() {
  double score = rng_.uniform();
  while (std::find(ranking_.scores().begin(), ranking_.scores().end(), score) !=
         ranking_.scores().end()) {
    score = rng_.uniform();
  }
  const PeerId id = ranking_.append(score);
  const PeerId acc_id = acceptance_.add_peer();
  const PeerId match_id = matching_.add_peer(params_.capacity);
  if (acc_id != id || match_id != id) {
    throw std::logic_error("ChurnSimulator: id spaces diverged");
  }
  cursors_.push_back(0);
  // Keep the acceptance graph G(n, d)-distributed: the newcomer links to
  // each active peer with the nominal ER edge probability.
  const double p_edge =
      params_.expected_degree / static_cast<double>(params_.initial_peers - 1);
  for (PeerId q : active_) {
    if (rng_.bernoulli(p_edge)) acceptance_.add_edge(id, q);
  }
  active_ix_.push_back(active_.size());
  active_.push_back(id);
  ++arrivals_;
}

void ChurnSimulator::churn_event() {
  switch (params_.kind) {
    case ChurnKind::kReplacement:
      remove_random_peer();
      add_peer();
      break;
    case ChurnKind::kRemovalOnly:
      remove_random_peer();
      break;
    case ChurnKind::kArrivalOnly:
      add_peer();
      break;
  }
}

bool ChurnSimulator::step() {
  if (params_.churn_rate > 0.0 && rng_.bernoulli(params_.churn_rate)) churn_event();
  if (active_.empty()) return false;
  const PeerId p = active_[static_cast<std::size_t>(rng_.below(active_.size()))];
  ++initiatives_;
  return take_initiative(acceptance_, ranking_, matching_, p, params_.strategy, cursors_, rng_);
}

double ChurnSimulator::instant_disorder() const {
  // Instant stable configuration of the current population: ghosts get
  // capacity 0 so they never match.
  std::vector<std::uint32_t> capacities(matching_.size(), 0);
  for (PeerId id : active_) capacities[id] = params_.capacity;
  const Matching stable = stable_configuration(acceptance_, ranking_, std::move(capacities));
  return disorder_active(matching_, stable, ranking_, active_);
}

std::vector<TrajectoryPoint> ChurnSimulator::run(double units, std::size_t samples_per_unit) {
  if (samples_per_unit == 0) throw std::invalid_argument("run: samples_per_unit must be >= 1");
  const std::size_t n = params_.initial_peers;
  const auto total_steps = static_cast<std::size_t>(units * static_cast<double>(n));
  const std::size_t stride = std::max<std::size_t>(1, n / samples_per_unit);
  std::vector<TrajectoryPoint> points;
  std::size_t active_in_window = 0;
  std::size_t window = 0;
  auto sample = [&]() {
    TrajectoryPoint pt;
    pt.initiatives_per_peer = static_cast<double>(initiatives_) / static_cast<double>(n);
    pt.disorder = instant_disorder();
    pt.active_fraction =
        window == 0 ? 0.0 : static_cast<double>(active_in_window) / static_cast<double>(window);
    points.push_back(pt);
  };
  sample();
  for (std::size_t s = 0; s < total_steps; ++s) {
    if (step()) ++active_in_window;
    if (++window == stride) {
      sample();
      window = 0;
      active_in_window = 0;
    }
  }
  if (window != 0) sample();
  return points;
}

}  // namespace strat::core
