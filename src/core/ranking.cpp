#include "core/ranking.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <unordered_set>

namespace strat::core {

GlobalRanking GlobalRanking::identity(std::size_t n) {
  GlobalRanking r;
  r.scores_.resize(n);
  r.rank_of_.resize(n);
  r.peer_at_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    r.scores_[i] = static_cast<double>(n - i);
    r.rank_of_[i] = static_cast<Rank>(i);
    r.peer_at_[i] = static_cast<PeerId>(i);
  }
  return r;
}

GlobalRanking GlobalRanking::from_scores(std::vector<double> scores) {
  std::unordered_set<double> seen;
  seen.reserve(scores.size());
  for (double s : scores) {
    if (!seen.insert(s).second) {
      throw std::invalid_argument("GlobalRanking: scores must be distinct (ties excluded, §3)");
    }
  }
  GlobalRanking r;
  r.scores_ = std::move(scores);
  r.dirty_ = true;
  return r;
}

void GlobalRanking::refresh() const {
  const std::size_t n = scores_.size();
  peer_at_.resize(n);
  std::iota(peer_at_.begin(), peer_at_.end(), PeerId{0});
  std::sort(peer_at_.begin(), peer_at_.end(),
            [&](PeerId a, PeerId b) { return scores_[a] > scores_[b]; });
  rank_of_.resize(n);
  for (std::size_t r = 0; r < n; ++r) rank_of_[peer_at_[r]] = static_cast<Rank>(r);
  dirty_ = false;
}

Rank GlobalRanking::rank_of(PeerId p) const {
  if (p >= scores_.size()) throw std::out_of_range("GlobalRanking::rank_of: bad peer id");
  if (dirty_) refresh();
  return rank_of_[p];
}

PeerId GlobalRanking::peer_at(Rank r) const {
  if (r >= scores_.size()) throw std::out_of_range("GlobalRanking::peer_at: bad rank");
  if (dirty_) refresh();
  return peer_at_[r];
}

PeerId GlobalRanking::append(double score) {
  for (double s : scores_) {
    if (s == score) throw std::invalid_argument("GlobalRanking::append: duplicate score");
  }
  scores_.push_back(score);
  dirty_ = true;
  return static_cast<PeerId>(scores_.size() - 1);
}

}  // namespace strat::core
