#include "core/dynamics.hpp"

#include <algorithm>
#include <stdexcept>

namespace strat::core {

DynamicsEngine::DynamicsEngine(const AcceptanceGraph& acc, const GlobalRanking& ranking,
                               std::vector<std::uint32_t> capacities, Strategy strategy,
                               graph::Rng& rng)
    : acc_(acc),
      ranking_(ranking),
      strategy_(strategy),
      rng_(rng),
      current_(capacities),
      stable_(stable_configuration(acc, ranking, std::move(capacities))),
      cursors_(acc.size(), 0) {
  if (acc.size() != ranking.size()) {
    throw std::invalid_argument("DynamicsEngine: acceptance/ranking size mismatch");
  }
  for (PeerId p = 0; p < current_.size(); ++p) {
    if (current_.capacity(p) != 1) {
      all_unit_capacity_ = false;
      break;
    }
  }
}

void DynamicsEngine::set_current(Matching m) {
  if (m.size() != current_.size()) {
    throw std::invalid_argument("set_current: size mismatch");
  }
  for (PeerId p = 0; p < m.size(); ++p) {
    if (m.capacity(p) != current_.capacity(p)) {
      throw std::invalid_argument("set_current: capacity mismatch");
    }
  }
  current_ = std::move(m);
}

bool DynamicsEngine::step() {
  const auto p = static_cast<PeerId>(rng_.below(acc_.size()));
  const bool active = take_initiative(acc_, ranking_, current_, p, strategy_, cursors_, rng_);
  ++initiatives_;
  if (active) ++active_;
  return active;
}

double DynamicsEngine::disorder() const {
  return all_unit_capacity_ ? disorder_1matching(current_, stable_, ranking_)
                            : disorder_bmatching(current_, stable_, ranking_);
}

std::vector<TrajectoryPoint> DynamicsEngine::run(double units, std::size_t samples_per_unit) {
  if (samples_per_unit == 0) throw std::invalid_argument("run: samples_per_unit must be >= 1");
  const std::size_t n = acc_.size();
  const auto total_steps = static_cast<std::size_t>(units * static_cast<double>(n));
  const std::size_t stride = std::max<std::size_t>(1, n / samples_per_unit);
  std::vector<TrajectoryPoint> points;
  points.reserve(total_steps / stride + 2);
  std::size_t active_in_window = 0;
  auto sample = [&](std::size_t window) {
    TrajectoryPoint pt;
    pt.initiatives_per_peer = static_cast<double>(initiatives_) / static_cast<double>(n);
    pt.disorder = disorder();
    pt.active_fraction =
        window == 0 ? 0.0 : static_cast<double>(active_in_window) / static_cast<double>(window);
    points.push_back(pt);
  };
  sample(0);
  std::size_t since_sample = 0;
  for (std::size_t s = 0; s < total_steps; ++s) {
    if (step()) ++active_in_window;
    if (++since_sample == stride) {
      sample(since_sample);
      since_sample = 0;
      active_in_window = 0;
    }
  }
  if (since_sample != 0) sample(since_sample);
  return points;
}

double DynamicsEngine::run_until_stable(double max_units) {
  const std::size_t n = acc_.size();
  const auto max_steps = static_cast<std::size_t>(max_units * static_cast<double>(n));
  const std::size_t start = initiatives_;
  // Check disorder only once per half-unit: it costs O(n).
  const std::size_t stride = std::max<std::size_t>(1, n / 2);
  if (disorder() == 0.0) return 0.0;
  for (std::size_t s = 0; s < max_steps; ++s) {
    step();
    if ((s + 1) % stride == 0 && disorder() == 0.0) break;
  }
  return static_cast<double>(initiatives_ - start) / static_cast<double>(n);
}

}  // namespace strat::core
