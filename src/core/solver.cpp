#include "core/solver.hpp"

#include <stdexcept>

#include "core/blocking.hpp"

namespace strat::core {

SolveStats stable_configuration(const AcceptanceGraph& acc, const GlobalRanking& ranking,
                                Matching& matching) {
  const std::size_t n = acc.size();
  if (matching.size() != n) {
    throw std::invalid_argument("stable_configuration: matching size mismatch");
  }
  for (PeerId p = 0; p < n; ++p) matching.clear_peer(p);

  // Peers in rank order, best first. Each takes its most preferred
  // acceptable peers that still have free slots. Peers better than the
  // current one were fully served earlier, so only worse peers are
  // considered (mirrors Algorithm 1's "starting just after i").
  for (Rank r = 0; r < n; ++r) {
    const PeerId p = ranking.peer_at(r);
    if (matching.is_full(p)) continue;
    const std::size_t deg = acc.degree(p);
    for (std::size_t i = 0; i < deg && !matching.is_full(p); ++i) {
      const PeerId q = acc.neighbor(p, i);
      if (ranking.prefers(q, p)) continue;  // handled when q's turn came
      if (matching.is_full(q)) continue;
      matching.connect(p, q, ranking);
    }
  }

  SolveStats stats;
  stats.connections = matching.connection_count();
  for (PeerId p = 0; p < n; ++p) {
    stats.unfilled_slots += matching.capacity(p) - matching.degree(p);
  }
  return stats;
}

Matching stable_configuration(const AcceptanceGraph& acc, const GlobalRanking& ranking,
                              std::vector<std::uint32_t> capacities) {
  if (capacities.size() != acc.size()) {
    throw std::invalid_argument("stable_configuration: capacities size mismatch");
  }
  Matching m(std::move(capacities));
  stable_configuration(acc, ranking, m);
  return m;
}

Matching stable_configuration_complete(const std::vector<std::uint32_t>& capacities) {
  const std::size_t n = capacities.size();
  Matching m{std::vector<std::uint32_t>(capacities)};
  if (n == 0) return m;
  const GlobalRanking ranking = GlobalRanking::identity(n);

  // Doubly-linked free list over ranks with remaining slots, ascending.
  // Peer r (rank order == id order here) greedily takes the nearest
  // worse free peers: any *better* free peer already connected to r on
  // its own earlier turn, so only ranks after r need scanning — this is
  // exactly Algorithm 1's inner loop "starting just after i".
  const auto kEnd = static_cast<std::uint32_t>(n);
  std::vector<std::uint32_t> next(n, kEnd);
  std::vector<std::uint32_t> prev(n, kEnd);
  std::vector<std::uint32_t> free_slots(capacities);
  {
    std::uint32_t last = kEnd;
    for (std::uint32_t r = 0; r < n; ++r) {
      if (free_slots[r] == 0) continue;
      if (last != kEnd) {
        next[last] = r;
        prev[r] = last;
      }
      last = r;
    }
  }
  auto unlink = [&](std::uint32_t r) {
    const std::uint32_t a = prev[r];
    const std::uint32_t b = next[r];
    if (a != kEnd) next[a] = b;
    if (b != kEnd) prev[b] = a;
  };

  for (std::uint32_t r = 0; r < n; ++r) {
    if (free_slots[r] == 0) continue;
    std::uint32_t q = next[r];
    while (free_slots[r] > 0 && q != kEnd) {
      const std::uint32_t after = next[q];
      m.connect(static_cast<PeerId>(r), static_cast<PeerId>(q), ranking);
      --free_slots[r];
      --free_slots[q];
      if (free_slots[q] == 0) unlink(q);
      q = after;
    }
    // Retire r even if slots remain unfilled: later peers only look at
    // ranks after themselves, so r can never be picked again.
    unlink(r);
    free_slots[r] = 0;
  }
  return m;
}

}  // namespace strat::core
