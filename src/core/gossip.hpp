// Gossip-based peer discovery (§1's peer-sampling reference).
//
// The paper notes its framework "also fits gossip-based protocols used
// by a peer to discover its rank" (Jelasity et al.'s peer sampling
// service). This module provides that substrate: every peer maintains a
// bounded random view refreshed by a shuffle protocol (contact a random
// view member, exchange random half-views), and the matching dynamics
// run over the *discovered* acceptance relation instead of a static
// graph. With continuing shuffles every pair is eventually acceptable,
// so the attractor is the complete-graph stable configuration —
// adjacent ranks pair up — which is what the simulator measures
// disorder against.
#pragma once

#include <cstddef>
#include <vector>

#include "core/dynamics.hpp"
#include "core/initiative.hpp"
#include "core/matching.hpp"
#include "core/ranking.hpp"
#include "graph/rng.hpp"

namespace strat::core {

/// Parameters of a gossip-discovery run.
struct GossipParams {
  std::size_t peers = 500;
  std::size_t view_size = 10;
  /// Shuffle exchanges per peer per base unit (n initiatives).
  double shuffles_per_unit = 1.0;
  Strategy strategy = Strategy::kBestMate;
  std::uint32_t capacity = 1;
};

/// Bounded-view peer sampling service (shuffle protocol).
class PeerSampling {
 public:
  /// Initializes every view with distinct uniformly random peers.
  PeerSampling(std::size_t peers, std::size_t view_size, graph::Rng& rng);

  [[nodiscard]] std::size_t peers() const noexcept { return views_.size(); }
  [[nodiscard]] const std::vector<PeerId>& view(PeerId p) const { return views_.at(p); }

  /// One shuffle by peer p: contact a random view member q; p and q
  /// swap random halves of their views (self/duplicate entries are
  /// dropped, views stay <= view_size).
  void shuffle(PeerId p, graph::Rng& rng);

  /// True iff q is currently in p's view.
  [[nodiscard]] bool knows(PeerId p, PeerId q) const;

 private:
  void merge_view(PeerId owner, const std::vector<PeerId>& incoming);

  std::size_t view_size_;
  std::vector<std::vector<PeerId>> views_;
};

/// Matching dynamics over gossip-discovered views.
class GossipSimulator {
 public:
  GossipSimulator(const GossipParams& params, graph::Rng& rng);

  /// One step = maybe some shuffles + one initiative by a random peer
  /// over its current view (plus its current mates).
  bool step();

  /// Runs `units` base units, sampling disorder vs the complete-graph
  /// stable configuration.
  std::vector<TrajectoryPoint> run(double units, std::size_t samples_per_unit = 2);

  /// Disorder of the current configuration vs the complete-knowledge
  /// stable configuration (adjacent-rank pairing).
  [[nodiscard]] double disorder() const;

  [[nodiscard]] const Matching& current() const noexcept { return matching_; }
  [[nodiscard]] const PeerSampling& sampling() const noexcept { return sampling_; }
  [[nodiscard]] std::size_t initiatives() const noexcept { return initiatives_; }

 private:
  GossipParams params_;
  graph::Rng& rng_;
  GlobalRanking ranking_;
  PeerSampling sampling_;
  Matching matching_;
  Matching complete_stable_;
  std::size_t initiatives_ = 0;
  double shuffle_debt_ = 0.0;
};

}  // namespace strat::core
