// Initiatives: the decentralized re-matching moves of §3.
//
// A peer p "takes the initiative" by proposing partnership to acceptable
// peers; the initiative is *active* when it finds a blocking mate and
// changes the configuration. Three scanning strategies from the paper:
//
//  * best mate   — p knows every acceptable peer's rank and willingness
//                  and grabs the best available blocking mate;
//  * decremental — p knows ranks but not willingness: it scans its
//                  preference list circularly from where it last stopped;
//  * random      — p knows nothing until it asks: one uniformly random
//                  acceptable peer per initiative.
//
// All three only ever *execute* blocking pairs, so Theorem 1 applies to
// any schedule mixing them: the process converges to the unique stable
// configuration.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/acceptance.hpp"
#include "core/blocking.hpp"
#include "core/matching.hpp"
#include "core/ranking.hpp"
#include "graph/rng.hpp"

namespace strat::core {

/// Scanning strategy for initiatives.
enum class Strategy {
  kBestMate,
  kDecremental,
  kRandom,
};

/// Parses "best"/"decremental"/"random"; throws std::invalid_argument.
[[nodiscard]] Strategy parse_strategy(const std::string& name);
[[nodiscard]] const char* strategy_name(Strategy s);

/// Best-mate initiative by p. Returns true iff active (config changed).
bool best_mate_initiative(const AcceptanceGraph& acc, const GlobalRanking& ranking, Matching& m,
                          PeerId p);

/// Decremental initiative by p: circular scan of p's preference list
/// starting just after `cursor[p]`; updates the cursor. Returns true iff
/// active. `cursors` must have size >= acc.size().
bool decremental_initiative(const AcceptanceGraph& acc, const GlobalRanking& ranking, Matching& m,
                            PeerId p, std::vector<std::size_t>& cursors);

/// Random initiative by p: asks one uniformly random acceptable peer.
/// Returns true iff active.
bool random_initiative(const AcceptanceGraph& acc, const GlobalRanking& ranking, Matching& m,
                       PeerId p, graph::Rng& rng);

/// Dispatches one initiative of the given strategy.
bool take_initiative(const AcceptanceGraph& acc, const GlobalRanking& ranking, Matching& m,
                     PeerId p, Strategy strategy, std::vector<std::size_t>& cursors,
                     graph::Rng& rng);

}  // namespace strat::core
