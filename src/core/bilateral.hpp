// Bilateral (eDonkey-style) exchange: the baseline the paper contrasts
// with BitTorrent (§2).
//
// "A protocol like eDonkey optimizes independently two preference lists
// on the server and on the client sides" — whom I upload to is decided
// separately from whom I download from, with no reciprocity coupling.
// This module implements that baseline as a many-to-many deferred-
// acceptance matching:
//
//  * client side: every peer proposes to its preferred sources (by the
//    global ranking — faster sources first) for up to
//    `download_slots` download connections;
//  * server side: every source keeps the best `upload_slots` proposals
//    according to its *server policy* and rejects the rest. Rejected
//    clients propose further down their list.
//
// Two server policies bound the design space:
//  * kRandomQueue — eDonkey's arrival-queue flavour: server priority is
//    uncorrelated with the client's rank. Download becomes independent
//    of upload: free-riding is viable and no stratification appears.
//  * kGlobalRank — a credit-style policy preferring high-rank clients:
//    reciprocity is re-introduced through the ranking and the outcome
//    stratifies like the TFT matching.
//
// Deferred acceptance with responsive preferences converges to the
// client-optimal stable assignment in O(E) proposals.
#pragma once

#include <cstdint>
#include <vector>

#include "core/acceptance.hpp"
#include "core/ranking.hpp"
#include "core/types.hpp"
#include "graph/rng.hpp"

namespace strat::core {

/// How a server ranks the clients asking for one of its upload slots.
enum class ServerPolicy {
  kRandomQueue,
  kGlobalRank,
};

/// Parameters of the bilateral exchange.
struct BilateralConfig {
  std::uint32_t upload_slots = 4;
  std::uint32_t download_slots = 4;
  ServerPolicy policy = ServerPolicy::kRandomQueue;
};

/// The resulting directed assignment.
struct BilateralAssignment {
  /// serves[p] = clients peer p uploads to (<= upload_slots each).
  std::vector<std::vector<PeerId>> serves;
  /// sources[p] = servers peer p downloads from (<= download_slots).
  std::vector<std::vector<PeerId>> sources;
  /// Salt of the random-queue priority table (so stability checks can
  /// reconstruct the server-side preferences).
  std::uint64_t priority_salt = 0;

  [[nodiscard]] std::size_t size() const noexcept { return serves.size(); }
  /// Total directed serve relations.
  [[nodiscard]] std::size_t connection_count() const;
};

/// The priority server q gives client p: under kGlobalRank the client's
/// intrinsic score; under kRandomQueue a deterministic pseudo-random
/// value derived from (salt, q, p) — rank-independent, as in an
/// arrival queue.
[[nodiscard]] double server_priority(const GlobalRanking& ranking, ServerPolicy policy,
                                     std::uint64_t salt, PeerId server, PeerId client);

/// Runs deferred acceptance over the acceptance graph. `rng` seeds the
/// random-queue priority salt (unused under kGlobalRank).
/// Throws std::invalid_argument if either slot count is zero.
[[nodiscard]] BilateralAssignment bilateral_assignment(const AcceptanceGraph& acc,
                                                       const GlobalRanking& ranking,
                                                       const BilateralConfig& config,
                                                       graph::Rng& rng);

/// True iff no client-server pair blocks the assignment: the client
/// wants another source (free download slot or a worse current source)
/// and the server would accept it under its priority order.
[[nodiscard]] bool bilateral_is_stable(const AcceptanceGraph& acc, const GlobalRanking& ranking,
                                       const BilateralConfig& config,
                                       const BilateralAssignment& assignment);

/// Convenience: per-peer expected download rate given per-slot upload
/// weights (weight[q] credited for each serve q -> p).
[[nodiscard]] std::vector<double> bilateral_download(const BilateralAssignment& assignment,
                                                     const std::vector<double>& per_slot_weight);

}  // namespace strat::core
