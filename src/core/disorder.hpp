// The disorder metric of §3.
//
// For 1-matchings the paper defines the distance between two
// configurations C1, C2 as
//
//   D(C1, C2) = sum_i |sigma(C1,i) - sigma(C2,i)| * 2 / (n(n+1))
//
// where sigma(C, i) is the (1-based) rank of i's mate, or n+1 when i is
// unmatched. D is normalized: a perfect matching is at distance 1 from
// the empty configuration. "Disorder" is the distance between the
// current configuration and the stable one.
//
// For b-matchings we provide a documented generalization (DESIGN.md §6):
// per-peer mate-rank vectors padded to b(p) with n+1, compared slotwise,
// normalized by 2/(B(n+1)) with B = sum b(p); it coincides with the
// paper's metric when b == 1.
#pragma once

#include <vector>

#include "core/matching.hpp"
#include "core/ranking.hpp"

namespace strat::core {

/// Paper metric for 1-matchings. Throws std::invalid_argument if sizes
/// differ or either configuration has a peer with more than one mate.
[[nodiscard]] double disorder_1matching(const Matching& c1, const Matching& c2,
                                        const GlobalRanking& ranking);

/// Generalized slotwise metric for b-matchings (see header comment).
/// Requires equal sizes and equal capacity vectors.
[[nodiscard]] double disorder_bmatching(const Matching& c1, const Matching& c2,
                                        const GlobalRanking& ranking);

/// Restricted variant used under churn: compares only the peers listed
/// in `active` (ranks are positions within the active set, best first;
/// mates outside `active` count as unmatched).
[[nodiscard]] double disorder_1matching_active(const Matching& c1, const Matching& c2,
                                               const GlobalRanking& ranking,
                                               const std::vector<PeerId>& active);

}  // namespace strat::core
