#include "core/preference_cycle.hpp"

#include <algorithm>
#include <cstdint>
#include <numeric>

namespace strat::core {

PreferenceSystem preferences_from_ranking(const GlobalRanking& ranking,
                                          const std::vector<std::vector<PeerId>>& adjacency) {
  PreferenceSystem prefs(adjacency.size());
  for (PeerId p = 0; p < adjacency.size(); ++p) {
    prefs[p] = adjacency[p];
    std::sort(prefs[p].begin(), prefs[p].end(),
              [&](PeerId a, PeerId b) { return ranking.prefers(a, b); });
  }
  return prefs;
}

bool pref_prefers(const PreferenceSystem& prefs, PeerId p, PeerId q, PeerId r) {
  const auto& list = prefs.at(p);
  for (PeerId x : list) {
    if (x == q) return true;   // q seen first
    if (x == r) return false;  // r seen first
  }
  return false;  // q not acceptable: never preferred
}

bool is_preference_cycle(const PreferenceSystem& prefs, const std::vector<PeerId>& cycle) {
  const std::size_t k = cycle.size();
  if (k < 3) return false;
  std::vector<PeerId> sorted = cycle;
  std::sort(sorted.begin(), sorted.end());
  if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) return false;
  for (std::size_t i = 0; i < k; ++i) {
    const PeerId prev = cycle[(i + k - 1) % k];
    const PeerId cur = cycle[i];
    const PeerId next = cycle[(i + 1) % k];
    if (!pref_prefers(prefs, cur, next, prev)) return false;
  }
  return true;
}

namespace {

constexpr std::size_t kExhaustiveLimit = 10;

/// Exhaustive DFS over simple paths; complete for small n.
bool dfs_exhaustive(const PreferenceSystem& prefs, std::vector<PeerId>& path,
                    std::vector<bool>& used, std::vector<PeerId>* out) {
  const PeerId cur = path.back();
  const PeerId prev = path.size() >= 2 ? path[path.size() - 2] : kNoPeer;
  for (PeerId next : prefs[cur]) {
    // Interior step needs cur to prefer next over prev.
    if (prev != kNoPeer && !pref_prefers(prefs, cur, next, prev)) continue;
    if (next == path.front() && path.size() >= 3) {
      // Close the cycle; check the two wrap-around triples.
      std::vector<PeerId> candidate = path;
      if (is_preference_cycle(prefs, candidate)) {
        *out = std::move(candidate);
        return true;
      }
      continue;
    }
    if (next < used.size() && used[next]) continue;
    used[next] = true;
    path.push_back(next);
    if (dfs_exhaustive(prefs, path, used, out)) return true;
    path.pop_back();
    used[next] = false;
  }
  return false;
}

/// State-graph cycle detection on ordered acceptable pairs.
/// State (a, b) -> (b, c) iff b prefers c to a. Any preference cycle
/// induces a state cycle. Returns a state cycle's peer walk, if any.
std::optional<std::vector<PeerId>> find_state_cycle(const PreferenceSystem& prefs) {
  const std::size_t n = prefs.size();
  // Enumerate states (a, idx of b in prefs[a]) densely.
  std::vector<std::size_t> offset(n + 1, 0);
  for (std::size_t p = 0; p < n; ++p) offset[p + 1] = offset[p] + prefs[p].size();
  const std::size_t states = offset[n];
  enum : std::uint8_t { kWhite, kGray, kBlack };
  std::vector<std::uint8_t> color(states, kWhite);

  // Iterative DFS storing (state, next-successor index).
  struct Frame {
    std::size_t state;
    std::size_t succ = 0;
  };
  auto state_of = [&](PeerId a, std::size_t bi) { return offset[a] + bi; };
  auto peers_of = [&](std::size_t s) {
    const auto a = static_cast<PeerId>(
        std::upper_bound(offset.begin(), offset.end(), s) - offset.begin() - 1);
    const std::size_t bi = s - offset[a];
    return std::pair<PeerId, PeerId>(a, prefs[a][bi]);
  };
  for (std::size_t root = 0; root < states; ++root) {
    if (color[root] != kWhite) continue;
    std::vector<Frame> stack{{root, 0}};
    color[root] = kGray;
    while (!stack.empty()) {
      Frame& f = stack.back();
      const auto [a, b] = peers_of(f.state);
      // Successors: states (b, c) with b preferring c to a, i.e. every
      // entry of prefs[b] strictly before a.
      const auto& list = prefs[b];
      bool descended = false;
      while (f.succ < list.size()) {
        const std::size_t ci = f.succ++;
        if (list[ci] == a) {
          f.succ = list.size();  // entries after a are not preferred to a
          break;
        }
        const std::size_t next_state = state_of(b, ci);
        if (color[next_state] == kGray) {
          // Found a cycle: unwind the stack to build the peer walk.
          std::vector<PeerId> walk;
          bool recording = false;
          for (const Frame& fr : stack) {
            if (fr.state == next_state) recording = true;
            if (recording) walk.push_back(peers_of(fr.state).first);
          }
          walk.push_back(b);
          return walk;
        }
        if (color[next_state] == kWhite) {
          color[next_state] = kGray;
          stack.push_back({next_state, 0});
          descended = true;
          break;
        }
      }
      if (!descended && (stack.back().succ >= list.size())) {
        color[stack.back().state] = kBlack;
        stack.pop_back();
      }
    }
  }
  return std::nullopt;
}

}  // namespace

std::optional<std::vector<PeerId>> find_preference_cycle(const PreferenceSystem& prefs) {
  if (prefs.size() <= kExhaustiveLimit) {
    std::vector<PeerId> out;
    for (PeerId start = 0; start < prefs.size(); ++start) {
      std::vector<PeerId> path{start};
      std::vector<bool> used(prefs.size(), false);
      used[start] = true;
      if (dfs_exhaustive(prefs, path, used, &out)) return out;
    }
    return std::nullopt;
  }
  // Large instances: extract from a state cycle and verify.
  auto walk = find_state_cycle(prefs);
  if (!walk) return std::nullopt;
  // Trim to the first repeated peer, then verify; the walk may visit a
  // peer twice, in which case the naive trim can fail verification.
  std::vector<PeerId> cycle;
  for (PeerId p : *walk) {
    auto it = std::find(cycle.begin(), cycle.end(), p);
    if (it != cycle.end()) {
      std::vector<PeerId> candidate(it, cycle.end());
      if (is_preference_cycle(prefs, candidate)) return candidate;
      break;
    }
    cycle.push_back(p);
  }
  if (is_preference_cycle(prefs, cycle)) return cycle;
  return std::nullopt;
}

bool is_cycle_free(const PreferenceSystem& prefs) { return !find_state_cycle(prefs).has_value(); }

}  // namespace strat::core
