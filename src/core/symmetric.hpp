// Stable b-matching under *symmetric* utilities (§7 outlook).
//
// The paper closes by noting that applications needing a small overlay
// diameter (e.g. streaming) should combine the global-ranking utility
// with "a symmetric ranking such as latency". A symmetric utility
// assigns each acceptable pair {p, q} one weight w(p, q) = w(q, p);
// both peers prefer heavier partners. Distinct weights admit no
// preference cycle (around any cycle the edge weights would have to
// strictly increase), so by Tan's criterion the stable configuration
// exists and is unique; it is computed by the classic greedy: repeatedly
// match the globally heaviest pair whose endpoints both have free slots.
#pragma once

#include <cstdint>
#include <vector>

#include "core/matching.hpp"
#include "core/preference_cycle.hpp"
#include "core/types.hpp"

namespace strat::core {

/// One acceptable pair with its symmetric utility (higher = better).
struct WeightedEdge {
  PeerId a = 0;
  PeerId b = 0;
  double weight = 0.0;
};

/// Computes the unique stable b-matching of a symmetric-utility
/// instance. `capacities` has one entry per peer; `edges` lists the
/// acceptance graph with weights (each unordered pair at most once).
///
/// The returned Matching's mate lists are ordered by peer id (weights
/// are per-pair, so no single global order applies; use the edge list
/// to rank a peer's mates by utility). O(E log E). Throws
/// std::invalid_argument on loops, out-of-range ids, duplicate pairs,
/// or duplicate weights (ties excluded, as in the paper's
/// global-ranking model).
[[nodiscard]] Matching stable_symmetric_matching(std::vector<WeightedEdge> edges,
                                                 const std::vector<std::uint32_t>& capacities);

/// The preference system induced by symmetric weights (per-peer lists
/// sorted by descending weight). Useful for cycle-freeness checks and
/// for feeding the generic machinery in tests.
[[nodiscard]] PreferenceSystem preferences_from_weights(const std::vector<WeightedEdge>& edges,
                                                        std::size_t n);

/// True iff {p, q} is a blocking pair of `m` under the symmetric
/// instance: acceptable, unmatched, and each endpoint either has a free
/// slot or holds a mate connected by a strictly lighter edge.
[[nodiscard]] bool is_symmetric_blocking_pair(const std::vector<WeightedEdge>& edges,
                                              const Matching& m, PeerId p, PeerId q);

/// Exhaustive stability check against every listed edge.
[[nodiscard]] bool is_symmetric_stable(const std::vector<WeightedEdge>& edges, const Matching& m);

}  // namespace strat::core
