#include "core/initiative.hpp"

#include <stdexcept>
#include <string>

namespace strat::core {

Strategy parse_strategy(const std::string& name) {
  if (name == "best") return Strategy::kBestMate;
  if (name == "decremental") return Strategy::kDecremental;
  if (name == "random") return Strategy::kRandom;
  throw std::invalid_argument("parse_strategy: unknown strategy '" + name + "'");
}

const char* strategy_name(Strategy s) {
  switch (s) {
    case Strategy::kBestMate: return "best";
    case Strategy::kDecremental: return "decremental";
    case Strategy::kRandom: return "random";
  }
  return "?";
}

bool best_mate_initiative(const AcceptanceGraph& acc, const GlobalRanking& ranking, Matching& m,
                          PeerId p) {
  const std::size_t deg = acc.degree(p);
  for (std::size_t i = 0; i < deg; ++i) {
    const PeerId q = acc.neighbor(p, i);
    // Preference-ordered: once p itself would refuse q, everything
    // later is worse — the initiative cannot be active.
    if (!wishes(m, ranking, p, q)) return false;
    if (!m.are_matched(p, q) && wishes(m, ranking, q, p)) {
      execute_blocking_pair(ranking, m, p, q);
      return true;
    }
  }
  return false;
}

bool decremental_initiative(const AcceptanceGraph& acc, const GlobalRanking& ranking, Matching& m,
                            PeerId p, std::vector<std::size_t>& cursors) {
  const std::size_t deg = acc.degree(p);
  if (deg == 0) return false;
  std::size_t& cursor = cursors.at(p);
  for (std::size_t step = 0; step < deg; ++step) {
    cursor = (cursor + 1) % deg;
    const PeerId q = acc.neighbor(p, cursor);
    if (is_blocking_pair(acc, ranking, m, p, q)) {
      execute_blocking_pair(ranking, m, p, q);
      return true;
    }
  }
  return false;
}

bool random_initiative(const AcceptanceGraph& acc, const GlobalRanking& ranking, Matching& m,
                       PeerId p, graph::Rng& rng) {
  const std::size_t deg = acc.degree(p);
  if (deg == 0) return false;
  const PeerId q = acc.neighbor(p, static_cast<std::size_t>(rng.below(deg)));
  if (!is_blocking_pair(acc, ranking, m, p, q)) return false;
  execute_blocking_pair(ranking, m, p, q);
  return true;
}

bool take_initiative(const AcceptanceGraph& acc, const GlobalRanking& ranking, Matching& m,
                     PeerId p, Strategy strategy, std::vector<std::size_t>& cursors,
                     graph::Rng& rng) {
  switch (strategy) {
    case Strategy::kBestMate: return best_mate_initiative(acc, ranking, m, p);
    case Strategy::kDecremental: return decremental_initiative(acc, ranking, m, p, cursors);
    case Strategy::kRandom: return random_initiative(acc, ranking, m, p, rng);
  }
  return false;
}

}  // namespace strat::core
