#include "core/matching.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace strat::core {

Matching::Matching(std::size_t n, std::size_t b0)
    : mates_(n), capacities_(n, static_cast<std::uint32_t>(b0)) {}

Matching::Matching(std::vector<std::uint32_t> capacities)
    : mates_(capacities.size()), capacities_(std::move(capacities)) {}

PeerId Matching::worst_mate(PeerId p) const {
  const auto& m = mates_.at(p);
  if (m.empty()) throw std::invalid_argument("Matching::worst_mate: peer has no mates");
  return m.back();
}

PeerId Matching::best_mate(PeerId p) const {
  const auto& m = mates_.at(p);
  if (m.empty()) throw std::invalid_argument("Matching::best_mate: peer has no mates");
  return m.front();
}

PeerId Matching::mate(PeerId p) const {
  const auto& m = mates_.at(p);
  return m.empty() ? kNoPeer : m.front();
}

bool Matching::are_matched(PeerId p, PeerId q) const {
  const auto& m = mates_.at(p);
  return std::find(m.begin(), m.end(), q) != m.end();
}

void Matching::connect(PeerId p, PeerId q, const GlobalRanking& ranking) {
  if (p == q) throw std::invalid_argument("Matching::connect: self-collaboration");
  if (p >= size() || q >= size()) throw std::invalid_argument("Matching::connect: bad peer id");
  if (is_full(p) || is_full(q)) throw std::invalid_argument("Matching::connect: no free slot");
  if (are_matched(p, q)) throw std::invalid_argument("Matching::connect: already matched");
  auto insert_sorted = [&](PeerId owner, PeerId other) {
    auto& list = mates_[owner];
    auto it = std::lower_bound(list.begin(), list.end(), other, [&](PeerId a, PeerId b) {
      return ranking.prefers(a, b);
    });
    list.insert(it, other);
  };
  insert_sorted(p, q);
  insert_sorted(q, p);
  ++connections_;
}

void Matching::disconnect(PeerId p, PeerId q) {
  auto remove_one = [&](PeerId owner, PeerId other) {
    auto& list = mates_.at(owner);
    auto it = std::find(list.begin(), list.end(), other);
    if (it == list.end()) throw std::invalid_argument("Matching::disconnect: not matched");
    list.erase(it);
  };
  remove_one(p, q);
  remove_one(q, p);
  --connections_;
}

void Matching::clear_peer(PeerId p) {
  // Copy: disconnect mutates the list we'd be iterating.
  const std::vector<PeerId> current(mates_.at(p).begin(), mates_.at(p).end());
  for (PeerId q : current) disconnect(p, q);
}

PeerId Matching::add_peer(std::uint32_t capacity) {
  mates_.emplace_back();
  capacities_.push_back(capacity);
  return static_cast<PeerId>(mates_.size() - 1);
}

std::size_t Matching::total_capacity() const noexcept {
  return std::accumulate(capacities_.begin(), capacities_.end(), std::size_t{0});
}

void Matching::validate(const GlobalRanking& ranking) const {
  std::size_t half_edges = 0;
  for (PeerId p = 0; p < size(); ++p) {
    const auto& m = mates_[p];
    if (m.size() > capacities_[p]) throw std::logic_error("Matching: capacity exceeded");
    for (std::size_t i = 0; i < m.size(); ++i) {
      if (m[i] == p) throw std::logic_error("Matching: self-collaboration");
      if (i + 1 < m.size() && !ranking.prefers(m[i], m[i + 1])) {
        throw std::logic_error("Matching: mate list not preference-sorted");
      }
      if (!are_matched(m[i], p)) throw std::logic_error("Matching: asymmetric collaboration");
    }
    half_edges += m.size();
  }
  if (half_edges != 2 * connections_) throw std::logic_error("Matching: edge count mismatch");
}

}  // namespace strat::core
