#include "sim/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace strat::sim {

std::size_t recommended_threads() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

void parallel_for(std::size_t count, std::size_t threads,
                  const std::function<void(std::size_t)>& body) {
  threads = std::min(threads, count);
  if (threads <= 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        body(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        return;
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

std::size_t chunk_count(std::size_t count, std::size_t threads,
                        std::size_t min_per_chunk) noexcept {
  if (count == 0 || threads <= 1) return count == 0 ? 0 : 1;
  const std::size_t by_grain =
      min_per_chunk == 0 ? count : std::max<std::size_t>(1, count / min_per_chunk);
  return std::min(threads, by_grain);
}

void parallel_for_chunks(
    std::size_t count, std::size_t threads, std::size_t min_per_chunk,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body) {
  const std::size_t chunks = chunk_count(count, threads, min_per_chunk);
  if (chunks == 0) return;
  // Balanced contiguous split: the first `count % chunks` chunks get one
  // extra index.
  const auto run_chunk = [&](std::size_t c) {
    const std::size_t base = count / chunks;
    const std::size_t extra = count % chunks;
    const std::size_t begin = c * base + std::min(c, extra);
    const std::size_t end = begin + base + (c < extra ? 1 : 0);
    body(begin, end, c);
  };
  if (chunks == 1) {
    run_chunk(0);
    return;
  }
  // One spawned worker per chunk except the last, which the caller runs
  // itself — a phase of N chunks costs N - 1 thread spawns per call.
  std::exception_ptr first_error;
  std::mutex error_mutex;
  std::vector<std::thread> pool;
  pool.reserve(chunks - 1);
  const auto guarded = [&](std::size_t c) noexcept {
    try {
      run_chunk(c);
    } catch (...) {
      const std::lock_guard<std::mutex> lock(error_mutex);
      if (!first_error) first_error = std::current_exception();
    }
  };
  for (std::size_t c = 0; c + 1 < chunks; ++c) {
    pool.emplace_back([&guarded, c] { guarded(c); });
  }
  guarded(chunks - 1);
  for (std::thread& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace strat::sim
