#include "sim/parallel.hpp"

#include <algorithm>
#include <thread>

#include "sim/worker_pool.hpp"

namespace strat::sim {

std::size_t recommended_threads() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

void parallel_for(std::size_t count, std::size_t threads,
                  const std::function<void(std::size_t)>& body) {
  threads = std::min(threads, count);
  if (threads <= 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }
  WorkerPool::shared().run(count, threads, body);
}

std::size_t chunk_count(std::size_t count, std::size_t threads,
                        std::size_t min_per_chunk) noexcept {
  if (count == 0 || threads <= 1) return count == 0 ? 0 : 1;
  const std::size_t by_grain =
      min_per_chunk == 0 ? count : std::max<std::size_t>(1, count / min_per_chunk);
  return std::min(threads, by_grain);
}

void parallel_for_chunks(
    std::size_t count, std::size_t threads, std::size_t min_per_chunk,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body) {
  const std::size_t chunks = chunk_count(count, threads, min_per_chunk);
  if (chunks == 0) return;
  // Balanced contiguous split: the first `count % chunks` chunks get one
  // extra index.
  const auto run_chunk = [&](std::size_t c) {
    const std::size_t base = count / chunks;
    const std::size_t extra = count % chunks;
    const std::size_t begin = c * base + std::min(c, extra);
    const std::size_t end = begin + base + (c < extra ? 1 : 0);
    body(begin, end, c);
  };
  if (chunks == 1) {
    run_chunk(0);
    return;
  }
  // One pool worker per chunk except one the caller claims itself; the
  // persistent pool makes an N-chunk phase cost N - 1 wakeups instead
  // of N - 1 thread spawns per call.
  WorkerPool::shared().run(chunks, chunks, run_chunk);
}

}  // namespace strat::sim
