#include "sim/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace strat::sim {

void OnlineStats::add(double x) noexcept {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void OnlineStats::merge(const OnlineStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double OnlineStats::variance() const noexcept {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double OnlineStats::stddev() const noexcept { return std::sqrt(variance()); }

double quantile_sorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) throw std::invalid_argument("quantile_sorted: empty sample");
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("quantile_sorted: q out of [0,1]");
  if (sorted.size() == 1) return sorted.front();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

Summary summarize(const std::vector<double>& values) {
  Summary s;
  if (values.empty()) return s;
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  OnlineStats acc;
  for (double v : sorted) acc.add(v);
  s.count = acc.count();
  s.mean = acc.mean();
  s.stddev = acc.stddev();
  s.min = sorted.front();
  s.p25 = quantile_sorted(sorted, 0.25);
  s.median = quantile_sorted(sorted, 0.50);
  s.p75 = quantile_sorted(sorted, 0.75);
  s.p95 = quantile_sorted(sorted, 0.95);
  s.max = sorted.back();
  return s;
}

double pearson(const std::vector<double>& xs, const std::vector<double>& ys) {
  if (xs.size() != ys.size()) throw std::invalid_argument("pearson: size mismatch");
  if (xs.size() < 2) throw std::invalid_argument("pearson: need at least 2 points");
  const double n = static_cast<double>(xs.size());
  const double mx = std::accumulate(xs.begin(), xs.end(), 0.0) / n;
  const double my = std::accumulate(ys.begin(), ys.end(), 0.0) / n;
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

namespace {

std::vector<double> average_ranks(const std::vector<double>& xs) {
  const std::size_t n = xs.size();
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  std::sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) { return xs[a] < xs[b]; });
  std::vector<double> ranks(n, 0.0);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && xs[idx[j + 1]] == xs[idx[i]]) ++j;
    const double avg = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) ranks[idx[k]] = avg;
    i = j + 1;
  }
  return ranks;
}

}  // namespace

double spearman(const std::vector<double>& xs, const std::vector<double>& ys) {
  if (xs.size() != ys.size()) throw std::invalid_argument("spearman: size mismatch");
  if (xs.size() < 2) throw std::invalid_argument("spearman: need at least 2 points");
  return pearson(average_ranks(xs), average_ranks(ys));
}

}  // namespace strat::sim
