// Minimal parallel loops over a persistent worker pool.
//
// Scenario sweeps and Monte-Carlo replications are embarrassingly
// parallel: every index gets its own Rng seeded independently, and
// results are written to per-index slots. parallel_for() distributes
// indices over up to `threads` workers of the process-wide
// sim::WorkerPool via an atomic counter, so the *schedule* is
// nondeterministic but the per-index results are not: running with 1
// thread or N threads produces identical output.
//
// parallel_for_chunks() is the intra-round variant: it splits a dense
// index range into at most `threads` contiguous chunks (each at least
// `min_per_chunk` wide, so tiny ranges run inline instead of paying a
// pool wakeup) and hands each worker a [begin, end) range plus a
// stable chunk id it can key per-worker scratch buffers by. The swarm
// round phases fan over this; their per-index work is either pure
// (fold_rates), draws from per-peer counter-based RNG streams
// (choke_step), or writes only per-chunk plan buffers (transfer
// compute), so results stay bitwise identical at any thread count.
//
// Both loops share WorkerPool::shared() (see worker_pool.hpp): threads
// are spawned once, on demand, and reused across every phase of every
// round instead of being spawned per call. Nested calls (a parallel
// loop issued from inside a pool task) degrade to inline execution.
#pragma once

#include <cstddef>
#include <functional>

namespace strat::sim {

/// Worker count to use by default: std::thread::hardware_concurrency(),
/// with a floor of 1 when the runtime reports 0.
[[nodiscard]] std::size_t recommended_threads() noexcept;

/// Invokes body(i) for every i in [0, count), distributed over up to
/// `threads` worker threads (capped at `count`; <= 1 runs inline, in
/// order). body must be safe to call concurrently for distinct indices.
/// The first exception thrown by any invocation is rethrown on the
/// calling thread after all workers join.
void parallel_for(std::size_t count, std::size_t threads,
                  const std::function<void(std::size_t)>& body);

/// Number of contiguous chunks parallel_for_chunks() will use for the
/// same arguments: min(threads, count / min_per_chunk), floored at 1.
/// Callers size per-chunk scratch with this.
[[nodiscard]] std::size_t chunk_count(std::size_t count, std::size_t threads,
                                      std::size_t min_per_chunk) noexcept;

/// Invokes body(begin, end, chunk) over a partition of [0, count) into
/// chunk_count(...) contiguous ranges; chunk ids are dense in
/// [0, chunk_count) and each is claimed by exactly one worker, so
/// body may use `chunk` to index scratch without synchronization.
/// The caller participates (N chunks cost at most N - 1 pool wakeups,
/// zero thread spawns once the pool is warm). body must be safe to
/// call concurrently for distinct chunks; the first exception is
/// rethrown on the caller after the job completes.
void parallel_for_chunks(
    std::size_t count, std::size_t threads, std::size_t min_per_chunk,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body);

}  // namespace strat::sim
