// Minimal thread-pool-style parallel loop for independent replications.
//
// Scenario sweeps and Monte-Carlo replications are embarrassingly
// parallel: every index gets its own Rng seeded independently, and
// results are written to per-index slots. parallel_for() distributes
// indices over `threads` std::thread workers via an atomic counter, so
// the *schedule* is nondeterministic but the per-index results are not:
// running with 1 thread or N threads produces identical output. A
// single seeded simulation therefore stays bitwise-deterministic — only
// whole replications are parallelized, never the inside of a run.
#pragma once

#include <cstddef>
#include <functional>

namespace strat::sim {

/// Worker count to use by default: std::thread::hardware_concurrency(),
/// with a floor of 1 when the runtime reports 0.
[[nodiscard]] std::size_t recommended_threads() noexcept;

/// Invokes body(i) for every i in [0, count), distributed over up to
/// `threads` worker threads (capped at `count`; <= 1 runs inline, in
/// order). body must be safe to call concurrently for distinct indices.
/// The first exception thrown by any invocation is rethrown on the
/// calling thread after all workers join.
void parallel_for(std::size_t count, std::size_t threads,
                  const std::function<void(std::size_t)>& body);

}  // namespace strat::sim
