// Minimal command-line flag parsing for bench harnesses.
//
// Supports `--name=value`, `--name value`, and boolean `--name`. Unknown
// flags raise an error so typos in sweep scripts fail loudly.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace strat::sim {

/// Parsed command-line flags. Construct with declared flag names, then
/// query typed getters with per-flag defaults.
class Cli {
 public:
  /// Parses argv. `known` lists accepted flag names (without `--`).
  /// Throws std::invalid_argument on an unknown or malformed flag.
  Cli(int argc, const char* const* argv, std::vector<std::string> known);

  /// True if the flag appeared at all.
  [[nodiscard]] bool has(const std::string& name) const;

  [[nodiscard]] std::string get_string(const std::string& name, const std::string& fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& name, double fallback) const;
  /// Boolean flags: present without a value (or with value "true"/"1") = true.
  [[nodiscard]] bool get_bool(const std::string& name, bool fallback = false) const;

  /// Program name (argv[0]).
  [[nodiscard]] const std::string& program() const noexcept { return program_; }

 private:
  [[nodiscard]] std::optional<std::string> raw(const std::string& name) const;

  std::string program_;
  std::map<std::string, std::string> values_;
};

}  // namespace strat::sim
