// ASCII / CSV table emitters used by every bench harness.
//
// A Table is built row by row; render() produces an aligned ASCII table
// (what the benches print by default) and to_csv() a CSV document
// (printed when --csv is passed). Cells are stored as strings; helpers
// format doubles with a fixed precision.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace strat::sim {

/// Formats `v` with `precision` digits after the decimal point.
[[nodiscard]] std::string fmt(double v, int precision = 4);

/// Formats `v` in scientific notation with `precision` significant digits.
[[nodiscard]] std::string fmt_sci(double v, int precision = 3);

/// Simple row-major string table with a header.
class Table {
 public:
  /// Creates a table with the given column headers (at least one).
  /// Throws std::invalid_argument on an empty header list.
  explicit Table(std::vector<std::string> headers);

  /// Appends one row; must match the header width.
  /// Throws std::invalid_argument on width mismatch.
  void add_row(std::vector<std::string> cells);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t cols() const noexcept { return headers_.size(); }
  [[nodiscard]] const std::vector<std::string>& header() const noexcept { return headers_; }
  [[nodiscard]] const std::vector<std::string>& row(std::size_t i) const { return rows_.at(i); }

  /// Aligned ASCII rendering with a separator under the header.
  [[nodiscard]] std::string render() const;

  /// RFC-4180-ish CSV (quotes cells containing commas/quotes/newlines).
  [[nodiscard]] std::string to_csv() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Renders an x/y series as a crude ASCII line chart, one row per point:
/// `x | ####### y`. Useful to eyeball the shape of reproduced figures.
[[nodiscard]] std::string ascii_series(const std::vector<double>& xs,
                                       const std::vector<double>& ys, std::size_t width = 60,
                                       int x_precision = 2, int y_precision = 4);

}  // namespace strat::sim
