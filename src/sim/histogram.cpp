#include "sim/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace strat::sim {

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_(lo), hi_(hi) {
  if (!(lo < hi)) throw std::invalid_argument("Histogram: lo must be < hi");
  if (bins == 0) throw std::invalid_argument("Histogram: need at least one bin");
  bin_width_ = (hi - lo) / static_cast<double>(bins);
  counts_.assign(bins, 0.0);
}

void Histogram::add(double x, double weight) {
  auto idx = static_cast<long>(std::floor((x - lo_) / bin_width_));
  idx = std::clamp<long>(idx, 0, static_cast<long>(counts_.size()) - 1);
  counts_[static_cast<std::size_t>(idx)] += weight;
  total_ += weight;
}

double Histogram::center(std::size_t i) const {
  return lo_ + (static_cast<double>(i) + 0.5) * bin_width_;
}

double Histogram::edge(std::size_t i) const { return lo_ + static_cast<double>(i) * bin_width_; }

std::vector<double> Histogram::density() const {
  std::vector<double> d(counts_.size(), 0.0);
  if (total_ <= 0.0) return d;
  for (std::size_t i = 0; i < counts_.size(); ++i) d[i] = counts_[i] / (total_ * bin_width_);
  return d;
}

std::string Histogram::render(std::size_t width) const {
  std::ostringstream out;
  const double peak = counts_.empty() ? 0.0 : *std::max_element(counts_.begin(), counts_.end());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar =
        peak > 0.0 ? static_cast<std::size_t>(counts_[i] / peak * static_cast<double>(width)) : 0;
    out << "[" << edge(i) << ", " << edge(i + 1) << ") " << std::string(bar, '#') << " "
        << counts_[i] << "\n";
  }
  return out.str();
}

LogHistogram::LogHistogram(double lo, double hi, std::size_t bins) {
  if (!(lo > 0.0 && lo < hi)) throw std::invalid_argument("LogHistogram: need 0 < lo < hi");
  if (bins == 0) throw std::invalid_argument("LogHistogram: need at least one bin");
  log_lo_ = std::log(lo);
  log_hi_ = std::log(hi);
  bin_width_ = (log_hi_ - log_lo_) / static_cast<double>(bins);
  counts_.assign(bins, 0.0);
}

void LogHistogram::add(double x, double weight) {
  if (x <= 0.0) throw std::invalid_argument("LogHistogram::add: x must be positive");
  auto idx = static_cast<long>(std::floor((std::log(x) - log_lo_) / bin_width_));
  idx = std::clamp<long>(idx, 0, static_cast<long>(counts_.size()) - 1);
  counts_[static_cast<std::size_t>(idx)] += weight;
  total_ += weight;
}

double LogHistogram::center(std::size_t i) const {
  return std::exp(log_lo_ + (static_cast<double>(i) + 0.5) * bin_width_);
}

double LogHistogram::edge(std::size_t i) const {
  return std::exp(log_lo_ + static_cast<double>(i) * bin_width_);
}

std::vector<double> LogHistogram::cumulative_fraction() const {
  std::vector<double> cum(counts_.size(), 0.0);
  double running = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    running += counts_[i];
    cum[i] = total_ > 0.0 ? running / total_ : 0.0;
  }
  return cum;
}

}  // namespace strat::sim
