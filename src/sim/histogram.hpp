// Fixed-bin histograms (linear and logarithmic) for bench output.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace strat::sim {

/// Equal-width histogram over [lo, hi). Out-of-range samples are clamped
/// into the first/last bin so total mass is conserved.
class Histogram {
 public:
  /// Throws std::invalid_argument unless lo < hi and bins >= 1.
  Histogram(double lo, double hi, std::size_t bins);

  /// Adds one observation with optional weight.
  void add(double x, double weight = 1.0);

  /// Number of bins.
  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }

  /// Weight accumulated in bin `i`.
  [[nodiscard]] double count(std::size_t i) const { return counts_.at(i); }

  /// Center of bin `i`.
  [[nodiscard]] double center(std::size_t i) const;

  /// Lower edge of bin `i` (edge(bins()) is the upper bound).
  [[nodiscard]] double edge(std::size_t i) const;

  /// Total accumulated weight.
  [[nodiscard]] double total() const noexcept { return total_; }

  /// counts normalized so the histogram integrates to 1 (density).
  /// Returns all-zero densities if the histogram is empty.
  [[nodiscard]] std::vector<double> density() const;

  /// ASCII sparkline-style rendering, one line per bin.
  [[nodiscard]] std::string render(std::size_t width = 50) const;

 private:
  double lo_;
  double hi_;
  double bin_width_;
  double total_ = 0.0;
  std::vector<double> counts_;
};

/// Histogram with logarithmically spaced bins over [lo, hi); lo must be > 0.
class LogHistogram {
 public:
  /// Throws std::invalid_argument unless 0 < lo < hi and bins >= 1.
  LogHistogram(double lo, double hi, std::size_t bins);

  void add(double x, double weight = 1.0);
  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  [[nodiscard]] double count(std::size_t i) const { return counts_.at(i); }
  /// Geometric center of bin `i`.
  [[nodiscard]] double center(std::size_t i) const;
  [[nodiscard]] double edge(std::size_t i) const;
  [[nodiscard]] double total() const noexcept { return total_; }
  /// Cumulative fraction of mass at or below each bin's upper edge.
  [[nodiscard]] std::vector<double> cumulative_fraction() const;

 private:
  double log_lo_;
  double log_hi_;
  double bin_width_;  // in log space
  double total_ = 0.0;
  std::vector<double> counts_;
};

}  // namespace strat::sim
