// Summary statistics used by the simulation harnesses and benches.
//
// OnlineStats accumulates mean/variance in one pass (Welford); Summary
// computes order statistics from a stored sample. Both are deliberately
// simple value types so benches can copy them around freely.
#pragma once

#include <cstddef>
#include <vector>

namespace strat::sim {

/// One-pass mean/variance accumulator (Welford's algorithm).
///
/// Numerically stable for long streams; O(1) memory. Use when the sample
/// itself need not be retained (e.g. per-round swarm rates).
class OnlineStats {
 public:
  /// Adds one observation.
  void add(double x) noexcept;

  /// Merges another accumulator (parallel reduction support).
  void merge(const OnlineStats& other) noexcept;

  /// Number of observations added so far.
  [[nodiscard]] std::size_t count() const noexcept { return count_; }

  /// Sample mean; 0 if empty.
  [[nodiscard]] double mean() const noexcept { return mean_; }

  /// Unbiased sample variance; 0 if fewer than two observations.
  [[nodiscard]] double variance() const noexcept;

  /// Square root of variance().
  [[nodiscard]] double stddev() const noexcept;

  /// Smallest observation; +inf if empty.
  [[nodiscard]] double min() const noexcept { return min_; }

  /// Largest observation; -inf if empty.
  [[nodiscard]] double max() const noexcept { return max_; }

  /// Sum of all observations.
  [[nodiscard]] double sum() const noexcept { return mean_ * static_cast<double>(count_); }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Order-statistics summary of a stored sample.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double p25 = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  double p95 = 0.0;
  double max = 0.0;
};

/// Computes a Summary from `values` (copied and sorted internally).
/// Returns an all-zero summary for an empty input.
[[nodiscard]] Summary summarize(const std::vector<double>& values);

/// Linear-interpolation quantile of a *sorted* sample, q in [0,1].
/// Throws std::invalid_argument if the sample is empty or q is out of range.
[[nodiscard]] double quantile_sorted(const std::vector<double>& sorted, double q);

/// Pearson correlation of two equally sized samples.
/// Throws std::invalid_argument on size mismatch or fewer than 2 points;
/// returns 0 when either sample has zero variance.
[[nodiscard]] double pearson(const std::vector<double>& xs, const std::vector<double>& ys);

/// Spearman rank correlation (ties get average ranks).
/// Same preconditions as pearson().
[[nodiscard]] double spearman(const std::vector<double>& xs, const std::vector<double>& ys);

}  // namespace strat::sim
