#include "sim/worker_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

namespace strat::sim {

namespace {
// Set for the lifetime of every pool thread: a run() issued from inside
// a task must execute inline instead of publishing a nested job (the
// nested caller would participate in draining whatever job is current —
// including its own parent's tasks — and could self-deadlock waiting
// for a task stuck behind it).
thread_local bool tls_pool_worker = false;

void run_inline(std::size_t tasks, const std::function<void(std::size_t)>& body) {
  for (std::size_t i = 0; i < tasks; ++i) body(i);
}
}  // namespace

/// One published fan-out. Heap-held behind a shared_ptr so a worker
/// that wakes late — after the publishing run() already returned and a
/// new job took the slot — still holds a valid Job whose exhausted
/// counter turns its claim loop into a no-op, instead of racing a
/// recycled counter against the wrong body.
struct WorkerPool::Job {
  const std::function<void(std::size_t)>* body = nullptr;
  std::size_t tasks = 0;
  /// Pool workers allowed in (the caller is always in addition).
  std::size_t worker_limit = 0;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> unfinished{0};
  std::atomic<std::size_t> entered{0};
  std::mutex error_mutex;
  std::exception_ptr error;
};

WorkerPool::~WorkerPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

std::size_t WorkerPool::spawned() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return workers_.size();
}

void WorkerPool::ensure_spawned(std::size_t target) {
  target = std::min(target, kMaxWorkers);
  const std::lock_guard<std::mutex> lock(mutex_);
  while (workers_.size() < target) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

void WorkerPool::work(Job& job) {
  for (;;) {
    const std::size_t i = job.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= job.tasks) return;
    try {
      (*job.body)(i);
    } catch (...) {
      const std::lock_guard<std::mutex> lock(job.error_mutex);
      if (!job.error) job.error = std::current_exception();
    }
    job.unfinished.fetch_sub(1, std::memory_order_acq_rel);
  }
}

void WorkerPool::run(std::size_t tasks, std::size_t max_workers,
                     const std::function<void(std::size_t)>& body) {
  if (tasks == 0) return;
  max_workers = std::min(max_workers, tasks);
  if (tasks == 1 || max_workers <= 1 || tls_pool_worker) {
    run_inline(tasks, body);
    return;
  }
  ensure_spawned(max_workers - 1);
  auto job = std::make_shared<Job>();
  job->body = &body;
  job->tasks = tasks;
  job->worker_limit = max_workers - 1;
  job->unfinished.store(tasks, std::memory_order_relaxed);
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    job_ = job;
    ++generation_;
  }
  work_cv_.notify_all();
  work(*job);
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] { return job->unfinished.load(std::memory_order_acquire) == 0; });
    if (job_ == job) job_.reset();
  }
  if (job->error) std::rethrow_exception(job->error);
}

void WorkerPool::worker_loop() {
  tls_pool_worker = true;
  std::uint64_t seen = 0;
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] { return stop_ || (generation_ != seen && job_ != nullptr); });
      if (stop_) return;
      seen = generation_;
      job = job_;
    }
    // Over-subscription guard: only the first worker_limit workers join
    // this job; latecomers go back to sleep until the next generation.
    if (job->entered.fetch_add(1, std::memory_order_relaxed) >= job->worker_limit) continue;
    work(*job);
    // The caller may be asleep in done_cv_ once unfinished hits zero;
    // the empty lock pairs the notify with its predicate check.
    if (job->unfinished.load(std::memory_order_acquire) == 0) {
      { const std::lock_guard<std::mutex> lock(mutex_); }
      done_cv_.notify_all();
    }
  }
}

WorkerPool& WorkerPool::shared() {
  static WorkerPool pool;
  return pool;
}

}  // namespace strat::sim
