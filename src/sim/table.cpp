#include "sim/table.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace strat::sim {

std::string fmt(double v, int precision) {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(precision);
  out << v;
  return out.str();
}

std::string fmt_sci(double v, int precision) {
  std::ostringstream out;
  out.setf(std::ios::scientific);
  out.precision(precision);
  out << v;
  return out.str();
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("Table: need at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table::add_row: expected " + std::to_string(headers_.size()) +
                                " cells, got " + std::to_string(cells.size()));
  }
  rows_.push_back(std::move(cells));
}

std::string Table::render() const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "" : "  ") << row[c] << std::string(widths[c] - row[c].size(), ' ');
    }
    out << "\n";
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) total += widths[c] + (c == 0 ? 0 : 2);
  out << std::string(total, '-') << "\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

namespace {

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string quoted = "\"";
  for (char ch : cell) {
    if (ch == '"') quoted += "\"\"";
    else quoted += ch;
  }
  quoted += '"';
  return quoted;
}

}  // namespace

std::string Table::to_csv() const {
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) out << ',';
      out << csv_escape(row[c]);
    }
    out << "\n";
  };
  emit_row(headers_);
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string ascii_series(const std::vector<double>& xs, const std::vector<double>& ys,
                         std::size_t width, int x_precision, int y_precision) {
  if (xs.size() != ys.size()) throw std::invalid_argument("ascii_series: size mismatch");
  if (xs.empty()) return "";
  const double lo = *std::min_element(ys.begin(), ys.end());
  const double hi = *std::max_element(ys.begin(), ys.end());
  const double span = hi - lo;
  std::ostringstream out;
  std::size_t label_width = 0;
  std::vector<std::string> labels(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    labels[i] = fmt(xs[i], x_precision);
    label_width = std::max(label_width, labels[i].size());
  }
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double frac = span > 0.0 ? (ys[i] - lo) / span : 0.0;
    const auto bar = static_cast<std::size_t>(std::lround(frac * static_cast<double>(width)));
    out << labels[i] << std::string(label_width - labels[i].size(), ' ') << " | "
        << std::string(bar, '#') << " " << fmt(ys[i], y_precision) << "\n";
  }
  return out.str();
}

}  // namespace strat::sim
