#include "sim/cli.hpp"

#include <algorithm>
#include <stdexcept>

namespace strat::sim {

Cli::Cli(int argc, const char* const* argv, std::vector<std::string> known) {
  program_ = argc > 0 ? argv[0] : "";
  auto is_known = [&](const std::string& name) {
    return std::find(known.begin(), known.end(), name) != known.end();
  };
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      throw std::invalid_argument("Cli: expected --flag, got '" + arg + "'");
    }
    arg.erase(0, 2);
    std::string name;
    std::string value;
    if (auto eq = arg.find('='); eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    } else {
      name = arg;
      // `--name value` form: consume the next token unless it is a flag.
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        value = argv[++i];
      } else {
        value = "true";
      }
    }
    if (!is_known(name)) throw std::invalid_argument("Cli: unknown flag --" + name);
    values_[name] = value;
  }
}

bool Cli::has(const std::string& name) const { return values_.count(name) > 0; }

std::optional<std::string> Cli::raw(const std::string& name) const {
  auto it = values_.find(name);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string Cli::get_string(const std::string& name, const std::string& fallback) const {
  return raw(name).value_or(fallback);
}

std::int64_t Cli::get_int(const std::string& name, std::int64_t fallback) const {
  auto v = raw(name);
  if (!v) return fallback;
  return std::stoll(*v);
}

double Cli::get_double(const std::string& name, double fallback) const {
  auto v = raw(name);
  if (!v) return fallback;
  return std::stod(*v);
}

bool Cli::get_bool(const std::string& name, bool fallback) const {
  auto v = raw(name);
  if (!v) return fallback;
  return *v == "true" || *v == "1" || *v == "yes";
}

}  // namespace strat::sim
