// Persistent fork-join worker pool behind the parallel loops.
//
// parallel_for()/parallel_for_chunks() used to spawn fresh std::threads
// on every call — measurable once a swarm round fans out four-plus
// phases (choke, endgame count, transfer compute, fold) at 10^5 peers.
// WorkerPool keeps the threads alive across calls: run() publishes a
// job (a task count plus a body), wakes the sleeping workers, joins in
// itself, and blocks until every task has executed. Workers claim task
// indices from a shared atomic counter, so the *schedule* is
// nondeterministic but callers only ever see the completed result —
// determinism is the caller's per-task contract, exactly as with the
// old spawn-per-call loops.
//
// Lifetime and growth: threads are spawned lazily, on demand, up to the
// largest max_workers any run() has asked for (capped at kMaxWorkers).
// A request for 8 workers on a 1-core box still spawns 8 real threads —
// intentional, so TSan sees genuine interleavings on the 1-core dev
// container. The process-wide pool behind the free-function loops lives
// until exit; tests may construct private pools freely (construction is
// cheap until the first multi-worker run()).
//
// Re-entrancy: a run() issued from inside a pool task (nested
// parallelism) executes inline on that worker rather than deadlocking
// or over-subscribing. Exceptions thrown by tasks are captured, the
// remaining tasks still run, and the first one is rethrown on the
// caller after the job completes — matching the old loops' contract.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include <condition_variable>

namespace strat::sim {

class WorkerPool {
 public:
  /// Hard cap on pool threads, far above any sane fan-out request.
  static constexpr std::size_t kMaxWorkers = 256;

  WorkerPool() = default;
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Runs body(i) for every i in [0, tasks), using the calling thread
  /// plus up to max_workers - 1 pool threads (grown on demand). Blocks
  /// until all tasks finish; rethrows the first task exception.
  /// tasks <= 1, max_workers <= 1, or a call from inside a pool task
  /// all run inline on the caller.
  void run(std::size_t tasks, std::size_t max_workers,
           const std::function<void(std::size_t)>& body);

  /// Threads currently alive in this pool.
  [[nodiscard]] std::size_t spawned() const;

  /// The process-wide pool parallel_for()/parallel_for_chunks() share.
  [[nodiscard]] static WorkerPool& shared();

 private:
  struct Job;

  /// Claim-and-execute loop run by the caller and every participating
  /// worker; returns once the task counter is exhausted.
  static void work(Job& job);
  void worker_loop();
  /// Spawns threads until `target` are alive (capped). Caller must not
  /// hold mutex_.
  void ensure_spawned(std::size_t target);

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::vector<std::thread> workers_;
  std::shared_ptr<Job> job_;     // guarded by mutex_
  std::uint64_t generation_ = 0;  // guarded by mutex_; bumped per job
  bool stop_ = false;             // guarded by mutex_
};

}  // namespace strat::sim
