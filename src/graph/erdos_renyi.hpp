// Erdős–Rényi random graph generation.
//
// The paper uses loopless symmetric G(n, d) graphs where d is the
// *expected degree*: each of the n(n-1)/2 possible edges exists
// independently with probability p = d/(n-1). We provide both the
// p-parameterized and d-parameterized constructors, implemented with the
// O(|E|) geometric edge-skip sampler so sparse large graphs are cheap.
#pragma once

#include <cstddef>

#include "graph/graph.hpp"
#include "graph/rng.hpp"

namespace strat::graph {

/// Samples G(n, p): every unordered pair is an edge with probability p.
/// Requires 0 <= p <= 1; throws std::invalid_argument otherwise.
/// The returned graph is finalized (sorted adjacency).
[[nodiscard]] Graph erdos_renyi_gnp(std::size_t n, double p, Rng& rng);

/// Samples G(n, d) with expected degree d, i.e. p = d/(n-1).
/// Requires 0 <= d <= n-1 (and n >= 2 when d > 0).
[[nodiscard]] Graph erdos_renyi_gnd(std::size_t n, double expected_degree, Rng& rng);

/// Complete graph K_n (materialized; use core::CompleteAcceptance for the
/// implicit O(1)-memory variant).
[[nodiscard]] Graph complete_graph(std::size_t n);

/// Ring lattice where each vertex connects to its k nearest neighbors on
/// each side (k >= 1); the unique connected 2-regular graph is the k=1
/// cycle, used by the b0 >= 3 connectivity discussions.
[[nodiscard]] Graph ring_lattice(std::size_t n, std::size_t k);

/// Random b-regular-ish graph via the configuration model with retries
/// (loops/multi-edges rejected per edge; residual stubs dropped). The
/// result has max degree <= b; most vertices hit b exactly for n >> b.
[[nodiscard]] Graph configuration_model(std::size_t n, std::size_t b, Rng& rng);

}  // namespace strat::graph
