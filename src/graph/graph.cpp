#include "graph/graph.hpp"

#include <algorithm>
#include <stdexcept>

namespace strat::graph {

Graph::Graph(std::size_t n) : adjacency_(n) {}

void Graph::add_edge(Vertex u, Vertex v, bool check_duplicate) {
  if (u == v) throw std::invalid_argument("Graph::add_edge: loops are not allowed");
  if (u >= order() || v >= order()) throw std::invalid_argument("Graph::add_edge: vertex out of range");
  if (check_duplicate && has_edge(u, v)) {
    throw std::invalid_argument("Graph::add_edge: duplicate edge");
  }
  adjacency_[u].push_back(v);
  adjacency_[v].push_back(u);
  ++edge_count_;
  finalized_ = false;
}

void Graph::finalize() {
  for (auto& adj : adjacency_) std::sort(adj.begin(), adj.end());
  finalized_ = true;
}

std::size_t Graph::degree(Vertex u) const { return adjacency_.at(u).size(); }

std::span<const Vertex> Graph::neighbors(Vertex u) const {
  const auto& adj = adjacency_.at(u);
  return {adj.data(), adj.size()};
}

bool Graph::has_edge(Vertex u, Vertex v) const noexcept {
  if (u == v || u >= order() || v >= order()) return false;
  // Scan the smaller adjacency list.
  const auto& a = adjacency_[u].size() <= adjacency_[v].size() ? adjacency_[u] : adjacency_[v];
  const Vertex needle = adjacency_[u].size() <= adjacency_[v].size() ? v : u;
  if (finalized_) return std::binary_search(a.begin(), a.end(), needle);
  return std::find(a.begin(), a.end(), needle) != a.end();
}

void Graph::isolate(Vertex u) {
  if (u >= order()) throw std::invalid_argument("Graph::isolate: vertex out of range");
  for (Vertex v : adjacency_[u]) {
    auto& back = adjacency_[v];
    back.erase(std::remove(back.begin(), back.end(), u), back.end());
  }
  edge_count_ -= adjacency_[u].size();
  adjacency_[u].clear();
}

Vertex Graph::grow(std::size_t count) {
  const auto first = static_cast<Vertex>(order());
  adjacency_.resize(order() + count);
  return first;
}

double Graph::mean_degree() const noexcept {
  if (order() == 0) return 0.0;
  return 2.0 * static_cast<double>(edge_count_) / static_cast<double>(order());
}

}  // namespace strat::graph
